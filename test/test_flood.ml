module F = Csap.Flood
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let test_tree_and_times () =
  let g = Gen.path 5 ~w:4 in
  let r = F.run g ~source:0 in
  Alcotest.(check bool) "spanning" true
    (Csap_graph.Tree.is_spanning_tree_of g r.F.tree);
  Array.iteri
    (fun v t ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "arrival %d" v)
        (float_of_int (4 * v))
        t)
    r.F.arrival

let test_comm_bound () =
  (* Each edge carries at most two copies: comm <= 2 script-E. *)
  let g = Gen.complete 8 ~w:5 in
  let r = F.run g ~source:3 in
  Alcotest.(check bool) "comm <= 2E" true
    (r.F.measures.Csap.Measures.comm <= 2 * G.total_weight g);
  Alcotest.(check bool) "comm >= E - n*W (most edges crossed)" true
    (r.F.measures.Csap.Measures.comm >= G.total_weight g / 2)

let test_time_bound () =
  (* Under Exact delays the wave arrives along shortest paths: time = ecc. *)
  let g = Gen.grid 4 4 ~w:3 in
  let r = F.run g ~source:0 in
  let ecc = float_of_int (Csap_graph.Paths.eccentricity g 0) in
  Alcotest.(check (float 1e-9)) "time = eccentricity" ecc
    r.F.measures.Csap.Measures.time

let test_tree_is_spt_under_exact_delays () =
  let g = Gen.grid 3 5 ~w:2 in
  let r = F.run g ~source:0 in
  let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:0 in
  for v = 0 to G.n g - 1 do
    Alcotest.(check int)
      (Printf.sprintf "depth of %d" v)
      dist.(v)
      (Csap_graph.Tree.depth r.F.tree v)
  done

let test_adversarial_delays_still_span () =
  let g = Gen.lollipop 5 4 ~w:2 in
  List.iter
    (fun delay ->
      let r = F.run ~delay g ~source:6 in
      Alcotest.(check bool) "spanning" true
        (Csap_graph.Tree.is_spanning_tree_of g r.F.tree))
    [
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 8);
      Csap_dsim.Delay.Jitter (Csap_graph.Rng.create 9);
    ]

let prop_flood_spans =
  QCheck.Test.make ~count:60 ~name:"flood spans from any source"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, source) ->
      let r =
        F.run ~delay:(Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 5)) g
          ~source
      in
      Csap_graph.Tree.is_spanning_tree_of g r.F.tree
      && r.F.measures.Csap.Measures.comm <= 2 * G.total_weight g)

let result_fingerprint r =
  ( Csap_graph.Tree.edges r.F.tree,
    Array.to_list r.F.arrival,
    r.F.measures )

let test_engine_reuse_matches_fresh () =
  (* A trial loop over one reused engine must reproduce the fresh-engine
     runs seed for seed. *)
  let g = Gen.grid 4 4 ~w:3 in
  let engine = F.make_engine g in
  List.iter
    (fun seed ->
      let delay () = Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed) in
      let fresh = F.run ~delay:(delay ()) g ~source:0 in
      let reused = F.run ~delay:(delay ()) ~engine g ~source:0 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true
        (result_fingerprint fresh = result_fingerprint reused))
    [ 1; 2; 3 ]

let test_engine_graph_mismatch_rejected () =
  let engine = F.make_engine (Gen.path 3 ~w:1) in
  Alcotest.check_raises "identity checked"
    (Invalid_argument "Flood.run: engine built over a different graph")
    (fun () -> ignore (F.run ~engine (Gen.path 3 ~w:1) ~source:0))

let suite =
  [
    Alcotest.test_case "tree and arrival times" `Quick test_tree_and_times;
    Alcotest.test_case "O(E) communication" `Quick test_comm_bound;
    Alcotest.test_case "O(D) time" `Quick test_time_bound;
    Alcotest.test_case "exact delays give the SPT" `Quick
      test_tree_is_spt_under_exact_delays;
    Alcotest.test_case "adversarial delays" `Quick
      test_adversarial_delays_still_span;
    QCheck_alcotest.to_alcotest prop_flood_spans;
    Alcotest.test_case "reused engine matches fresh runs" `Quick
      test_engine_reuse_matches_fresh;
    Alcotest.test_case "engine over another graph rejected" `Quick
      test_engine_graph_mismatch_rejected;
  ]
