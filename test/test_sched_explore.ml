module S = Csap_sched.Sched_explore
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

let schedules g = S.seeded_schedules 8 @ S.adversarial_schedules g

let targets g =
  [
    S.flood_target ~source:0;
    S.mst_target;
    S.spt_synch_target ~source:0;
    S.spt_recur_target ~source:0 ~strip:2;
    S.sync_alpha_target ~source:0
      ~pulses:(Csap_graph.Paths.eccentricity g 0 + 1);
  ]

let check_all_ok g =
  let summaries = S.explore g ~targets:(targets g) ~schedules:(schedules g) in
  List.iter
    (fun (s : S.summary) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: no invariant violations" s.S.target_name)
        0 s.S.failures;
      Alcotest.(check int)
        (Printf.sprintf "%s: one run per schedule" s.S.target_name)
        (List.length (schedules g))
        (Array.length s.S.runs);
      Alcotest.(check bool)
        (Printf.sprintf "%s: worst comm positive" s.S.target_name)
        true (s.S.worst_comm > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: worst time positive" s.S.target_name)
        true (s.S.worst_time > 0.0))
    summaries;
  Alcotest.(check int) "one summary per target"
    (List.length (targets g))
    (List.length summaries)

(* Three graph families: mesh, random sparse, heavy-chorded cycle. *)
let test_grid () = check_all_ok (Gen.grid 3 3 ~w:4)

let test_random () =
  let rng = Csap_graph.Rng.create 11 in
  check_all_ok (Gen.random_connected rng 10 ~extra_edges:8 ~wmax:6)

let test_chorded () = check_all_ok (Gen.chorded_cycle 8 ~chord_w:8)

let test_schedule_batteries () =
  let g = Gen.grid 3 3 ~w:4 in
  Alcotest.(check int) "seeded count" 8
    (List.length (S.seeded_schedules 8));
  let advs = S.adversarial_schedules g in
  Alcotest.(check int) "three built-in adversaries" 3 (List.length advs);
  let labels = List.map (fun (s : S.schedule) -> s.S.label) advs in
  Alcotest.(check bool) "slow-edge, race, near-zero" true
    (List.exists (fun l -> l = "race-crossing") labels
    && List.exists (fun l -> l = "near-zero") labels
    && List.exists
         (fun l -> String.length l > 9 && String.sub l 0 9 = "slow-edge")
         labels)

(* A target whose "invariant" is genuinely schedule-dependent — the flood
   tree must equal the zero-jitter one — is detected, and the failing
   schedules are dumped as replayable JSONL traces. *)
let test_schedule_dependence_detected () =
  let g = Gen.grid 3 3 ~w:4 in
  let reference =
    (Csap.Flood.run ~delay:Csap_dsim.Delay.Exact g ~source:0).Csap.Flood.tree
  in
  let bogus =
    {
      S.name = "flood-tree-fixed";
      execute =
        (fun g delay ->
          let r = Csap.Flood.run ~delay g ~source:0 in
          if Tree.edges r.Csap.Flood.tree = Tree.edges reference then
            Ok r.Csap.Flood.measures
          else Error "first-contact tree depends on the schedule");
    }
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "csap-sched-test-%d" (Unix.getpid ()))
  in
  let summaries =
    S.explore ~trace_dir:dir g ~targets:[ bogus ]
      ~schedules:(schedules g)
  in
  let s = List.hd summaries in
  Alcotest.(check bool) "schedule dependence detected" true (s.S.failures > 0);
  let dumped = Sys.readdir dir in
  Alcotest.(check int) "one trace per failing schedule" s.S.failures
    (Array.length dumped);
  (* Every dumped trace parses and replays the failure deterministically. *)
  Array.iter
    (fun f ->
      let tr = Csap_dsim.Trace.load_jsonl (Filename.concat dir f) in
      Alcotest.(check bool)
        (Printf.sprintf "%s is non-empty" f)
        true
        (Csap_dsim.Trace.length tr > 0);
      let r =
        Csap.Flood.run ~delay:(Csap_dsim.Trace.recorded tr) g ~source:0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s replays to a differing tree" f)
        true
        (Tree.edges r.Csap.Flood.tree <> Tree.edges reference))
    dumped;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) dumped;
  Sys.rmdir dir

let test_deterministic () =
  (* The sweep is deterministic regardless of pool scheduling: two explores
     agree run for run. *)
  let g = Gen.chorded_cycle 8 ~chord_w:8 in
  let go () = S.explore g ~targets:(targets g) ~schedules:(schedules g) in
  let a = go () and b = go () in
  Alcotest.(check bool) "two sweeps identical" true (a = b)

let suite =
  [
    Alcotest.test_case "grid family passes all schedules" `Quick test_grid;
    Alcotest.test_case "random family passes all schedules" `Quick
      test_random;
    Alcotest.test_case "chorded-cycle family passes all schedules" `Quick
      test_chorded;
    Alcotest.test_case "schedule batteries" `Quick test_schedule_batteries;
    Alcotest.test_case "schedule dependence detected and traced" `Quick
      test_schedule_dependence_detected;
    Alcotest.test_case "sweep is deterministic" `Quick test_deterministic;
  ]
