module S = Csap_sched.Sched_explore
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

module Adv = Csap_dsim.Adversary

let schedules g =
  S.seeded_schedules 8 @ S.adversarial_schedules g @ S.adaptive_schedules ()

(* Unwrap for legacy targets exercising a raw [Csap.Flood.run]-style API
   that only understands delay models. *)
let oblivious_delay = function
  | Adv.Oblivious d -> Ok d
  | Adv.Adaptive a -> Error (a.Adv.name ^ ": oblivious-only target")

(* The registry's clean-sweep roster: flood, GHS, SPT_synch, SPT_recur,
   sync-alpha — all built from Csap.Protocol entries. *)
let targets _g = S.registry_targets ()

let check_all_ok g =
  let summaries = S.explore g ~targets:(targets g) ~schedules:(schedules g) in
  List.iter
    (fun (s : S.summary) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: no invariant violations" s.S.target_name)
        0 s.S.failures;
      Alcotest.(check int)
        (Printf.sprintf "%s: one run per schedule" s.S.target_name)
        (List.length (schedules g))
        (Array.length s.S.runs);
      Alcotest.(check bool)
        (Printf.sprintf "%s: worst comm positive" s.S.target_name)
        true (s.S.worst_comm > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: worst time positive" s.S.target_name)
        true (s.S.worst_time > 0.0))
    summaries;
  Alcotest.(check int) "one summary per target"
    (List.length (targets g))
    (List.length summaries)

(* Three graph families: mesh, random sparse, heavy-chorded cycle. *)
let test_grid () = check_all_ok (Gen.grid 3 3 ~w:4)

let test_random () =
  let rng = Csap_graph.Rng.create 11 in
  check_all_ok (Gen.random_connected rng 10 ~extra_edges:8 ~wmax:6)

let test_chorded () = check_all_ok (Gen.chorded_cycle 8 ~chord_w:8)

let test_schedule_batteries () =
  let g = Gen.grid 3 3 ~w:4 in
  Alcotest.(check int) "seeded count" 8
    (List.length (S.seeded_schedules 8));
  let advs = S.adversarial_schedules g in
  Alcotest.(check int) "three built-in adversaries" 3 (List.length advs);
  let labels = List.map (fun (s : S.schedule) -> s.S.label) advs in
  Alcotest.(check bool) "slow-edge, race, near-zero" true
    (List.exists (fun l -> l = "race-crossing") labels
    && List.exists (fun l -> l = "near-zero") labels
    && List.exists
         (fun l -> String.length l > 9 && String.sub l 0 9 = "slow-edge")
         labels)

(* A target whose "invariant" is genuinely schedule-dependent — the flood
   tree must equal the zero-jitter one — is detected, and the failing
   schedules are dumped as replayable JSONL traces. *)
let test_schedule_dependence_detected () =
  let g = Gen.grid 3 3 ~w:4 in
  let reference =
    (Csap.Flood.run ~delay:Csap_dsim.Delay.Exact g ~source:0).Csap.Flood.tree
  in
  let bogus =
    {
      S.name = "flood-tree-fixed";
      execute =
        (fun g adv ->
          Result.bind (oblivious_delay adv) (fun delay ->
              let r = Csap.Flood.run ~delay g ~source:0 in
              if Tree.edges r.Csap.Flood.tree = Tree.edges reference then
                Ok r.Csap.Flood.measures
              else Error "first-contact tree depends on the schedule"));
    }
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "csap-sched-test-%d" (Unix.getpid ()))
  in
  (* Oblivious schedules only: the bogus target rejects adaptive ones
     before any engine runs, so they would fail without leaving a trace. *)
  let summaries =
    S.explore ~trace_dir:dir g ~targets:[ bogus ]
      ~schedules:(S.seeded_schedules 8 @ S.adversarial_schedules g)
  in
  let s = List.hd summaries in
  Alcotest.(check bool) "schedule dependence detected" true (s.S.failures > 0);
  let dumped = Sys.readdir dir in
  Alcotest.(check int) "one trace per failing schedule" s.S.failures
    (Array.length dumped);
  (* Every dumped trace parses and replays the failure deterministically. *)
  Array.iter
    (fun f ->
      let tr = Csap_dsim.Trace.load_jsonl (Filename.concat dir f) in
      Alcotest.(check bool)
        (Printf.sprintf "%s is non-empty" f)
        true
        (Csap_dsim.Trace.length tr > 0);
      let r =
        Csap.Flood.run ~delay:(Csap_dsim.Trace.recorded tr) g ~source:0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s replays to a differing tree" f)
        true
        (Tree.edges r.Csap.Flood.tree <> Tree.edges reference))
    dumped;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) dumped;
  Sys.rmdir dir

(* The adaptive roster passes the replay audit: every adaptive worst case
   re-executes bit-identically as an oblivious schedule built from its
   own decision trace. *)
let test_adaptive_replay_certified () =
  let g = Gen.grid 3 3 ~w:4 in
  let summaries =
    S.explore ~check_replay:true g ~targets:(targets g)
      ~schedules:(S.adaptive_schedules ())
  in
  List.iter
    (fun (s : S.summary) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: adaptive runs replay cleanly" s.S.target_name)
        0 s.S.failures)
    summaries

let test_deterministic () =
  (* The sweep is deterministic regardless of pool scheduling: two explores
     agree run for run. *)
  let g = Gen.chorded_cycle 8 ~chord_w:8 in
  let go () = S.explore g ~targets:(targets g) ~schedules:(schedules g) in
  let a = go () and b = go () in
  Alcotest.(check bool) "two sweeps identical" true (a = b)

(* ---- fault sweep ------------------------------------------------------- *)

(* The registry's reliable roster: every fault-capable protocol behind the
   shim — strictly more than the original hand-wired three. *)
let fault_targets = S.registry_fault_targets ()

let test_fault_sweep_passes () =
  let g = Gen.grid 3 3 ~w:4 in
  let delays = S.adversarial_schedules g in
  let faults = S.fault_schedules g 4 in
  Alcotest.(check int) "requested plan count" 4 (List.length faults);
  let summaries =
    S.explore_faults ~check_replay:true g ~targets:fault_targets ~delays
      ~faults
  in
  Alcotest.(check int) "one summary per target" (List.length fault_targets)
    (List.length summaries);
  List.iter
    (fun (s : S.fault_summary) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: zero failures" s.S.ftarget_name)
        0 s.S.ffailures;
      Alcotest.(check int)
        (Printf.sprintf "%s: one run per (delay, fault) pair" s.S.ftarget_name)
        (List.length delays * List.length faults)
        (Array.length s.S.fruns);
      Alcotest.(check bool)
        (Printf.sprintf "%s: clean comm positive" s.S.ftarget_name)
        true (s.S.clean_comm > 0);
      (* Retransmissions and duplicate suppression only add traffic. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: overhead factor >= 1" s.S.ftarget_name)
        true
        (s.S.mean_overhead >= 1.0
        && s.S.worst_overhead >= s.S.mean_overhead);
      Array.iter
        (fun (r : S.fault_run) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s/%s passes" r.S.frun_target r.S.fdelay
               r.S.fschedule)
            true r.S.fok)
        s.S.fruns)
    summaries

let test_fault_sweep_deterministic () =
  let g = Gen.chorded_cycle 8 ~chord_w:8 in
  let go () =
    S.explore_faults g ~targets:fault_targets
      ~delays:(S.adversarial_schedules g) ~faults:(S.fault_schedules g 4)
  in
  Alcotest.(check bool) "two fault sweeps identical" true (go () = go ())

(* A target that deadlocks under loss — GHS without the shim — is caught,
   and its failing runs are dumped as replayable JSONL traces. *)
let test_fault_failure_traced () =
  let g = Gen.grid 3 3 ~w:4 in
  let fragile =
    {
      S.fname = "mst-unshimmed";
      fexecute =
        (fun g adv plan ->
          Result.bind (oblivious_delay adv) (fun delay ->
              let r = Csap.Mst_ghs.run ~delay ~faults:plan g in
              if Csap_graph.Mst.is_mst g r.Csap.Mst_ghs.mst then
                Ok r.Csap.Mst_ghs.measures
              else Error "not an MST"));
      fclean =
        (fun g -> (Csap.Mst_ghs.run g).Csap.Mst_ghs.measures);
    }
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "csap-fault-test-%d" (Unix.getpid ()))
  in
  let delays = [ List.hd (S.adversarial_schedules g) ] in
  let summaries =
    S.explore_faults ~trace_dir:dir g ~targets:[ fragile ] ~delays
      ~faults:(S.fault_schedules g 2)
  in
  let s = List.hd summaries in
  Alcotest.(check bool) "unshimmed GHS fails under faults" true
    (s.S.ffailures > 0);
  let dumped = Sys.readdir dir in
  Alcotest.(check bool) "failing traces dumped" true
    (Array.length dumped > 0);
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "%s parses" f)
        true
        (Csap_dsim.Trace.length
           (Csap_dsim.Trace.load_jsonl (Filename.concat dir f))
        >= 0))
    dumped;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) dumped;
  Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "grid family passes all schedules" `Quick test_grid;
    Alcotest.test_case "random family passes all schedules" `Quick
      test_random;
    Alcotest.test_case "chorded-cycle family passes all schedules" `Quick
      test_chorded;
    Alcotest.test_case "schedule batteries" `Quick test_schedule_batteries;
    Alcotest.test_case "schedule dependence detected and traced" `Quick
      test_schedule_dependence_detected;
    Alcotest.test_case "adaptive roster replays as oblivious schedules"
      `Quick test_adaptive_replay_certified;
    Alcotest.test_case "sweep is deterministic" `Quick test_deterministic;
    Alcotest.test_case "fault sweep passes with replay checks" `Quick
      test_fault_sweep_passes;
    Alcotest.test_case "fault sweep is deterministic" `Quick
      test_fault_sweep_deterministic;
    Alcotest.test_case "fault failure detected and traced" `Quick
      test_fault_failure_traced;
  ]
