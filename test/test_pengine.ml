module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree
module Delay = Csap_dsim.Delay
module Pengine = Csap_dsim.Pengine
module Partition = Csap_graph.Partition
module F = Csap.Flood
module S = Csap.Spt_async

(* ---- bit-identity: flood and spt-async vs the sequential engine ------- *)

let flood_fingerprint (r : F.result) =
  ( r.F.measures,
    Array.to_list r.F.arrival,
    List.init (Array.length r.F.arrival) (Tree.parent r.F.tree) )

let spt_fingerprint (r : S.result) =
  ( r.S.measures,
    Array.to_list r.S.dist,
    List.init (Array.length r.S.dist) (Tree.parent r.S.tree) )

(* The delay models exercising both synchronisation paths: positive
   lookahead (Exact / Scaled / Near_zero) and key-space lockstep (the
   seeded oracle has no static bound). *)
let delays seed =
  [
    ("exact", Delay.Exact);
    ("scaled", Delay.Scaled 0.5);
    ("near-zero", Delay.Near_zero);
    ("seeded", Delay.seeded seed);
  ]

let prop_flood_identical =
  QCheck.Test.make ~count:40
    ~name:"flood: partitioned = sequential (all delays, k in {1,2,4})"
    (QCheck.pair (Gen_qcheck.graph_and_vertex ()) QCheck.(int_bound 1000))
    (fun ((g, source), seed) ->
      List.for_all
        (fun (dname, delay) ->
          let seq = flood_fingerprint (F.run ~delay g ~source) in
          List.for_all
            (fun k ->
              let k = min k (G.n g) in
              let par =
                flood_fingerprint (F.run_partitioned ~delay ~domains:k g ~source)
              in
              if par <> seq then
                QCheck.Test.fail_reportf "flood diverged: %s k=%d" dname k
              else true)
            [ 1; 2; 4 ])
        (delays seed))

let prop_spt_async_identical =
  QCheck.Test.make ~count:40
    ~name:"spt-async: partitioned = sequential (all delays, k in {1,2,4})"
    (QCheck.pair (Gen_qcheck.graph_and_vertex ()) QCheck.(int_bound 1000))
    (fun ((g, source), seed) ->
      List.for_all
        (fun (dname, delay) ->
          let seq = spt_fingerprint (S.run ~delay g ~source) in
          List.for_all
            (fun k ->
              let k = min k (G.n g) in
              let par =
                spt_fingerprint (S.run_partitioned ~delay ~domains:k g ~source)
              in
              if par <> seq then
                QCheck.Test.fail_reportf "spt-async diverged: %s k=%d" dname k
              else true)
            [ 1; 2; 4 ])
        (delays seed))

(* The BFS partitioner must give the same answers as the striped one:
   identity cannot depend on where the cut falls. *)
let prop_bfs_partition_identical =
  QCheck.Test.make ~count:30 ~name:"flood: identical under a BFS partition"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, source) ->
      let delay = Delay.seeded 23 in
      let seq = flood_fingerprint (F.run ~delay g ~source) in
      let k = min 3 (G.n g) in
      let part = Partition.bfs g ~k in
      flood_fingerprint
        (F.run_partitioned ~delay ~partition:part ~domains:k g ~source)
      = seq)

(* ---- direct engine use: reset semantics, exceptions, rejections ------- *)

(* A two-round echo on a path: enough traffic to cross partitions in
   both directions and to exercise schedule_ctx. *)
let echo_run eng g =
  let n = G.n g in
  for v = 0 to n - 1 do
    Pengine.set_handler eng v (fun ctx ~src hops ->
        if hops > 0 then
          G.iter_neighbors g v (fun u _ _ ->
              if u <> src then Pengine.send ctx ~src:v ~dst:u (hops - 1)))
  done;
  Pengine.schedule eng ~vertex:0 ~delay:0.0 (fun ctx ->
      Pengine.send ctx ~src:0 ~dst:1 3);
  let events = Pengine.run eng in
  let m = Pengine.metrics eng in
  (events, m.Csap_dsim.Metrics.messages, m.Csap_dsim.Metrics.completion_time)

let test_reset_reproduces () =
  let g = Gen.path 8 ~w:2 in
  let eng = Pengine.create ~domains:3 g in
  let first = echo_run eng g in
  Pengine.reset eng;
  let second = echo_run eng g in
  Alcotest.(check bool) "reset reproduces the run" true (first = second);
  (* A reset engine carries nothing over: a no-op run processes zero
     events and reports zero metrics. *)
  Pengine.reset eng;
  Alcotest.(check int) "empty run" 0 (Pengine.run eng);
  Alcotest.(check int) "no messages" 0
    (Pengine.metrics eng).Csap_dsim.Metrics.messages

let test_reset_changes_delay_and_lookahead () =
  let g = Gen.path 6 ~w:4 in
  let eng = Pengine.create ~domains:2 g in
  Alcotest.(check (float 1e-9)) "exact lookahead" 4.0 (Pengine.lookahead eng);
  Pengine.reset ~delay:(Delay.Scaled 0.5) eng;
  Alcotest.(check (float 1e-9)) "scaled lookahead" 2.0 (Pengine.lookahead eng);
  Pengine.reset ~delay:(Delay.seeded 3) eng;
  Alcotest.(check (float 1e-9)) "oracle forces lockstep" 0.0
    (Pengine.lookahead eng)

let test_order_dependent_delay_rejected () =
  let g = Gen.path 4 ~w:1 in
  let uniform () = Delay.Uniform (Csap_graph.Rng.create 1) in
  Alcotest.(check bool)
    "create rejects Uniform" true
    (match Pengine.create ~delay:(uniform ()) ~domains:2 g with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let eng = Pengine.create ~domains:2 g in
  Alcotest.(check bool)
    "reset rejects Uniform" true
    (match Pengine.reset ~delay:(uniform ()) eng with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_partition_validated () =
  let g = Gen.path 6 ~w:1 in
  let other = Gen.path 6 ~w:1 in
  let part = Partition.striped g ~k:2 in
  Alcotest.(check bool)
    "domains mismatch rejected" true
    (match Pengine.create ~partition:part ~domains:3 g with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool)
    "foreign partition rejected" true
    (match Pengine.create ~partition:part ~domains:2 other with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool)
    "domains < 1 rejected" true
    (match Pengine.create ~domains:0 g with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* A handler exception on a worker domain must unwind every domain and
   re-raise in the caller — not deadlock at the next barrier. *)
let test_handler_exception_propagates () =
  let g = Gen.path 6 ~w:1 in
  let eng = Pengine.create ~domains:2 g in
  (* Vertex 5 lives on the second domain and has no handler. *)
  Pengine.set_handler eng 4 (fun ctx ~src:_ () ->
      Pengine.send ctx ~src:4 ~dst:5 ());
  Pengine.schedule eng ~vertex:4 ~delay:0.0 (fun ctx ->
      Pengine.send ctx ~src:4 ~dst:3 ();
      Pengine.send ctx ~src:4 ~dst:5 ());
  Alcotest.(check bool)
    "missing handler raises across domains" true
    (match Pengine.run eng with
    | exception Failure _ -> true
    | _ -> false)

let test_foreign_src_rejected () =
  let g = Gen.path 4 ~w:1 in
  let eng = Pengine.create ~domains:4 g in
  (* The bootstrap runs on vertex 3's domain; sending with src = 0 would
     touch another domain's send counters and must be refused. *)
  Pengine.schedule eng ~vertex:3 ~delay:0.0 (fun ctx ->
      Pengine.send ctx ~src:0 ~dst:1 ());
  Alcotest.(check bool)
    "foreign src rejected" true
    (match Pengine.run eng with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- registry-level routing ------------------------------------------- *)

let test_protocol_domains_knob () =
  let module P = Csap.Protocol in
  let g = Gen.grid 4 4 ~w:2 in
  let entry = P.find_exn "flood" in
  let seq = P.run entry g in
  let par = P.run ~domains:3 entry g in
  Alcotest.(check bool)
    "registry routes domains to the partitioned engine" true
    (seq.P.Outcome.measures = par.P.Outcome.measures);
  Alcotest.(check (list (pair string string)))
    "domains recorded in info"
    [ ("domains", "3") ]
    par.P.Outcome.info;
  (* Unsupported combinations are rejected by uniform validation. *)
  List.iter
    (fun bad ->
      Alcotest.(check bool) "invalid cfg rejected" true
        (match bad () with
        | exception Invalid_argument _ -> true
        | (_ : P.Outcome.t) -> false))
    [
      (fun () -> P.run ~domains:2 (P.find_exn "mst-ghs") g);
      (fun () ->
        P.run ~domains:2
          ~delay:(Delay.Uniform (Csap_graph.Rng.create 1))
          entry g);
      (fun () ->
        P.run ~domains:2
          ~faults:(Csap_dsim.Fault.seeded ~loss:0.1 ~dup:0.0 1)
          entry g);
      (fun () -> P.run ~domains:0 entry g);
    ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_flood_identical;
    QCheck_alcotest.to_alcotest prop_spt_async_identical;
    QCheck_alcotest.to_alcotest prop_bfs_partition_identical;
    Alcotest.test_case "reset reproduces a run" `Quick test_reset_reproduces;
    Alcotest.test_case "reset recomputes delay and lookahead" `Quick
      test_reset_changes_delay_and_lookahead;
    Alcotest.test_case "order-dependent delays rejected" `Quick
      test_order_dependent_delay_rejected;
    Alcotest.test_case "partition validated" `Quick test_partition_validated;
    Alcotest.test_case "handler exception propagates" `Quick
      test_handler_exception_propagates;
    Alcotest.test_case "foreign src rejected" `Quick test_foreign_src_rejected;
    Alcotest.test_case "registry domains knob" `Quick
      test_protocol_domains_knob;
  ]
