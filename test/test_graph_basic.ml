module G = Csap_graph.Graph

let triangle () = G.create ~n:3 [ (0, 1, 2); (1, 2, 3); (0, 2, 7) ]

let test_create () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (G.n g);
  Alcotest.(check int) "m" 3 (G.m g);
  Alcotest.(check int) "total weight" 12 (G.total_weight g);
  Alcotest.(check int) "max weight" 7 (G.max_weight g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_normalisation () =
  let g = G.create ~n:3 [ (2, 0, 5) ] in
  let e = G.edge g 0 in
  Alcotest.(check int) "u" 0 e.G.u;
  Alcotest.(check int) "v" 2 e.G.v

let test_neighbors () =
  let g = triangle () in
  let nbrs =
    List.rev (G.fold_neighbors g 1 (fun acc v w _id -> (v, w) :: acc) [])
  in
  Alcotest.(check (list (pair int int)))
    "neighbors of 1"
    [ (0, 2); (2, 3) ]
    (List.sort compare nbrs);
  Alcotest.(check int) "degree" 2 (G.degree g 1)

let test_edge_between () =
  let g = triangle () in
  (match G.edge_between g 0 2 with
  | Some (w, _) -> Alcotest.(check int) "weight" 7 w
  | None -> Alcotest.fail "edge 0-2 should exist");
  let g2 = G.create ~n:4 [ (0, 1, 1) ] in
  Alcotest.(check bool)
    "missing edge" true
    (G.edge_between g2 2 3 = None)

let test_invalid () =
  let expect_invalid name f =
    Alcotest.check_raises name
      (Invalid_argument
         (match name with
         | "self-loop" -> "Graph.create: self-loop"
         | "duplicate" -> "Graph.create: duplicate edge"
         | "zero weight" -> "Graph.create: weight must be >= 1"
         | _ -> "Graph.create: endpoint out of range"))
      f
  in
  expect_invalid "self-loop" (fun () -> ignore (G.create ~n:3 [ (1, 1, 1) ]));
  expect_invalid "duplicate" (fun () ->
      ignore (G.create ~n:3 [ (0, 1, 1); (1, 0, 2) ]));
  expect_invalid "zero weight" (fun () ->
      ignore (G.create ~n:3 [ (0, 1, 0) ]));
  expect_invalid "range" (fun () -> ignore (G.create ~n:3 [ (0, 3, 1) ]))

let test_disconnected () =
  let g = G.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.(check bool) "disconnected" false (G.is_connected g)

let test_map_weights () =
  let g = triangle () in
  let doubled = G.map_weights g (fun e -> 2 * e.G.w) in
  Alcotest.(check int) "doubled total" 24 (G.total_weight doubled)

let test_subgraph () =
  let g = triangle () in
  let light = G.subgraph g ~keep_edge:(fun e -> e.G.w < 5) in
  Alcotest.(check int) "m" 2 (G.m light);
  Alcotest.(check int) "n preserved" 3 (G.n light)

let test_other_endpoint () =
  let e = { G.u = 3; v = 7; w = 1 } in
  Alcotest.(check int) "other of 3" 7 (G.other_endpoint e 3);
  Alcotest.(check int) "other of 7" 3 (G.other_endpoint e 7)

let test_compare_edges () =
  let a = { G.u = 0; v = 1; w = 5 } and b = { G.u = 0; v = 2; w = 5 } in
  Alcotest.(check bool) "w ties broken" true (G.compare_edges a b < 0);
  Alcotest.(check int) "equal" 0 (G.compare_edges a a)

(* The sorted per-vertex edge index must answer exactly like the plain
   adjacency scan, on edges and non-edges alike — including the
   binary-search path taken above the small-degree cutoff. *)
let check_index_agrees g =
  let n = G.n g in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let scan = if u = v then -1 else G.edge_id_between_scan g u v in
      if G.edge_id_between g u v <> scan then ok := false;
      (* neighbor_index points back into adj(u). *)
      let i = G.neighbor_index g u v in
      if scan >= 0 then begin
        (* neighbor_index is an offset into adj(u) in iteration order. *)
        let entry = ref None in
        let j = ref 0 in
        G.iter_neighbors g u (fun x _ id ->
            if !j = i then entry := Some (x, id);
            incr j);
        match !entry with
        | Some (x, id) -> if x <> v || id <> scan then ok := false
        | None -> ok := false
      end
      else if i <> -1 then ok := false
    done
  done;
  !ok

let test_edge_index_high_degree () =
  (* Complete graphs force every lookup through the binary search. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "complete %d" n)
        true
        (check_index_agrees (Csap_graph.Generators.complete n ~w:2)))
    [ 2; 9; 10; 17 ]

let prop_edge_index_agrees_with_scan =
  QCheck.Test.make ~count:100 ~name:"edge index = adjacency scan"
    (Gen_qcheck.connected_graph_gen ())
    check_index_agrees

let suite =
  [
    Alcotest.test_case "create and measures" `Quick test_create;
    Alcotest.test_case "endpoint normalisation" `Quick test_normalisation;
    Alcotest.test_case "neighbors" `Quick test_neighbors;
    Alcotest.test_case "edge_between" `Quick test_edge_between;
    Alcotest.test_case "invalid inputs rejected" `Quick test_invalid;
    Alcotest.test_case "disconnected detection" `Quick test_disconnected;
    Alcotest.test_case "map_weights" `Quick test_map_weights;
    Alcotest.test_case "subgraph" `Quick test_subgraph;
    Alcotest.test_case "other_endpoint" `Quick test_other_endpoint;
    Alcotest.test_case "canonical edge order" `Quick test_compare_edges;
    Alcotest.test_case "edge index on high degree" `Quick
      test_edge_index_high_degree;
    QCheck_alcotest.to_alcotest prop_edge_index_agrees_with_scan;
  ]
