(* Cross-cutting tests: engine budget/until semantics, Euler-tour
   properties, brute-force cross-checks for radius/eccentricity, the
   broadcast instance of global functions, and scan-round bounds for
   MST_fast. *)

module E = Csap_dsim.Engine
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

type ping = Tick of int

let test_engine_comm_budget () =
  (* The budget stops the run mid-flight; resuming without one drains. *)
  let g = Gen.path 6 ~w:10 in
  let eng = E.create g in
  for v = 0 to 5 do
    E.set_handler eng v (fun ~src:_ (Tick k) ->
        if v < 5 then E.send eng ~src:v ~dst:(v + 1) (Tick (k + 1)))
  done;
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Tick 0));
  ignore (E.run ~comm_budget:25 eng);
  let mid = (E.metrics eng).Csap_dsim.Metrics.weighted_comm in
  Alcotest.(check bool) "stopped at/over budget" true (mid >= 25 && mid < 50);
  ignore (E.run eng);
  Alcotest.(check int) "drains to the full relay" 50
    (E.metrics eng).Csap_dsim.Metrics.weighted_comm

let test_engine_until_resume_clock () =
  let g = Gen.path 2 ~w:8 in
  let eng = E.create g in
  E.set_handler eng 1 (fun ~src:_ _ -> ());
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Tick 1));
  ignore (E.run ~until:3.0 eng);
  Alcotest.(check (float 1e-9)) "clock parked at the horizon" 3.0 (E.now eng);
  ignore (E.run eng);
  Alcotest.(check (float 1e-9)) "delivery completes" 8.0 (E.now eng)

let test_traffic_vs_messages () =
  let g = Gen.complete 6 ~w:3 in
  let eng = E.create g in
  for v = 0 to 5 do
    E.set_handler eng v (fun ~src:_ _ -> ())
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      for v = 0 to 5 do
        G.iter_neighbors g v (fun u _ _ -> E.send eng ~src:v ~dst:u (Tick v))
      done);
  ignore (E.run eng);
  let total_traffic = Array.fold_left ( + ) 0 (E.edge_traffic eng) in
  Alcotest.(check int) "traffic sums to messages" (E.send_count eng)
    total_traffic

let prop_euler_tour_properties =
  QCheck.Test.make ~count:80 ~name:"euler tour: closed, 2n-1, edges twice"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, root) ->
      let t = Csap_graph.Traversal.spanning_tree_dfs g ~root in
      let tour = Tree.euler_tour t in
      let n = Tree.n t in
      let counts = Hashtbl.create 16 in
      for i = 0 to Array.length tour - 2 do
        let a = min tour.(i) tour.(i + 1) and b = max tour.(i) tour.(i + 1) in
        Hashtbl.replace counts (a, b)
          (1 + try Hashtbl.find counts (a, b) with Not_found -> 0)
      done;
      Array.length tour = (2 * n) - 1
      && tour.(0) = root
      && tour.(Array.length tour - 1) = root
      && Hashtbl.fold (fun _ c acc -> acc && c = 2) counts true
      && Hashtbl.length counts = n - 1)

let prop_tree_path_weight_is_distance =
  QCheck.Test.make ~count:60
    ~name:"tree path weight = dijkstra distance on the tree"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, v) ->
      let t = Csap_graph.Mst.prim g ~root:0 in
      let tg = Tree.to_graph t in
      let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra tg ~src:v in
      let ok = ref true in
      for u = 0 to G.n g - 1 do
        if Tree.path_weight t v u <> dist.(u) then ok := false
      done;
      !ok)

let prop_radius_center_brute_force =
  QCheck.Test.make ~count:40 ~name:"radius/center match brute force"
    (Gen_qcheck.connected_graph_gen ~max_n:12 ())
    (fun g ->
      let n = G.n g in
      let r, c = Csap_graph.Paths.radius_and_center g in
      let brute =
        let best = ref max_int in
        for v = 0 to n - 1 do
          let e = Csap_graph.Paths.eccentricity g v in
          if e < !best then best := e
        done;
        !best
      in
      r = brute && Csap_graph.Paths.eccentricity g c = r)

let test_broadcast () =
  let g = Gen.grid 4 5 ~w:3 in
  let r = Csap.Global_func.broadcast g ~source:7 ~payload:12345 in
  Array.iter
    (fun out -> Alcotest.(check int) "payload everywhere" 12345 out)
    r.Csap.Global_func.outputs;
  let p = Csap_graph.Params.compute g in
  Alcotest.(check bool) "O(V) comm" true
    (float_of_int r.Csap.Global_func.measures.Csap.Measures.comm
    <= 2.0 *. 2.0 *. float_of_int p.Csap_graph.Params.script_v)

let test_mst_fast_round_bound () =
  (* Per phase, each fragment doubles its guess at most log2 W + 1 times. *)
  let g = Gen.lower_bound_gn 16 ~x:4 in
  let r = Csap.Mst_fast.run g in
  let log2w =
    1 + int_of_float (ceil (log (float_of_int (G.max_weight g)) /. log 2.0))
  in
  (* Fragments per phase halve (at least); sum of fragments over phases is
     at most 2n, each contributing <= log2 W + 1 rounds. *)
  let bound = 2 * G.n g * (log2w + 1) in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d <= %d" r.Csap.Mst_fast.scan_rounds bound)
    true
    (r.Csap.Mst_fast.scan_rounds <= bound)

let test_coarsen_degree_formula () =
  Alcotest.(check int) "bound(16, 4) = ceil(2 * (1 + ln 16))"
    (int_of_float (ceil (2.0 *. (1.0 +. log 16.0))))
    (Csap_cover.Coarsen.degree_bound ~num_clusters:16 ~k:4)

let suite =
  [
    Alcotest.test_case "engine comm budget" `Quick test_engine_comm_budget;
    Alcotest.test_case "engine until/resume" `Quick
      test_engine_until_resume_clock;
    Alcotest.test_case "traffic counters consistent" `Quick
      test_traffic_vs_messages;
    QCheck_alcotest.to_alcotest prop_euler_tour_properties;
    QCheck_alcotest.to_alcotest prop_tree_path_weight_is_distance;
    QCheck_alcotest.to_alcotest prop_radius_center_brute_force;
    Alcotest.test_case "broadcast as a global function" `Quick test_broadcast;
    Alcotest.test_case "MST_fast scan-round bound" `Quick
      test_mst_fast_round_bound;
    Alcotest.test_case "coarsen degree-bound formula" `Quick
      test_coarsen_degree_formula;
  ]
