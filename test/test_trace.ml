module T = Csap_dsim.Trace
module E = Csap_dsim.Engine
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let ev ?(kind = T.Send) ?(time = 0.0) ?(seq = 0) ?(edge = 0) ?(dir = 0)
    ?(nth = 0) ?(src = 0) ?(dst = 1) ?(delay = 1.0) () =
  { T.kind; time; seq; edge; dir; nth; src; dst; delay }

let test_jsonl_roundtrip () =
  let t = T.create () in
  T.add t (ev ~time:0.1 ~seq:3 ~delay:0.30000000000000004 ());
  T.add t
    (ev ~kind:T.Deliver ~time:1.5e-7 ~seq:4 ~edge:7 ~dir:1 ~nth:2 ~src:9
       ~dst:3 ~delay:0.0 ());
  T.add t
    (ev ~kind:T.Local ~time:12.0 ~seq:5 ~edge:(-1) ~dir:(-1) ~nth:(-1)
       ~src:(-1) ~dst:(-1) ~delay:0.0 ());
  let t' = T.of_jsonl (T.to_jsonl t) in
  Alcotest.(check bool) "round-trips exactly" true (T.equal t t');
  Alcotest.check_raises "malformed line rejected"
    (Invalid_argument "Trace.of_jsonl: line 1: unparsable line \"{oops}\"")
    (fun () -> ignore (T.of_jsonl "{oops}"))

let test_jsonl_error_context () =
  (* A corrupted line in the middle of an otherwise valid stream is
     reported by its 1-based line number; checkpoint resume depends on
     being able to point at the truncation point of a half-written
     file. *)
  let t = T.create () in
  for i = 0 to 3 do
    T.add t (ev ~time:(float_of_int i) ~seq:i ())
  done;
  let good = T.to_jsonl t in
  let lines = String.split_on_char '\n' good in
  let truncated =
    (* Keep two good lines, then a half-written third (a crash mid
       append), then a trailing good one. *)
    String.concat "\n"
      [
        List.nth lines 0; List.nth lines 1;
        String.sub (List.nth lines 2) 0 17; List.nth lines 3;
      ]
  in
  (match T.of_jsonl truncated with
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "line number in %S" msg)
      true
      (let sub = "line 3:" in
       let rec find i =
         i + String.length sub <= String.length msg
         && (String.sub msg i (String.length sub) = sub || find (i + 1))
       in
       find 0)
  | _ -> Alcotest.fail "truncated line must be rejected");
  (* Unknown kind keeps its specific message, now with line context. *)
  (match
     T.of_jsonl
       ((List.nth lines 0 ^ "\n")
       ^ "{\"kind\":\"warp\",\"time\":0,\"seq\":9,\"edge\":0,\"dir\":0,\"nth\":0,\"src\":0,\"dst\":1,\"delay\":1}")
   with
  | exception Invalid_argument msg ->
    Alcotest.(check string) "unknown kind named with line"
      "Trace.of_jsonl: line 2: unknown kind \"warp\"" msg
  | _ -> Alcotest.fail "unknown kind must be rejected")

let test_jsonl_file_error_names_file () =
  let t = T.create () in
  T.add t (ev ());
  let path = Filename.temp_file "csap-trace-bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (T.to_jsonl t);
      output_string oc "{\"kind\":\"send\",\"ti";
      close_out oc;
      match T.load_jsonl path with
      | exception Invalid_argument msg ->
        let expect = Printf.sprintf "Trace.of_jsonl: %s: line 2:" path in
        Alcotest.(check bool)
          (Printf.sprintf "file and line in %S" msg)
          true
          (String.length msg >= String.length expect
          && String.sub msg 0 (String.length expect) = expect)
      | _ -> Alcotest.fail "truncated file must be rejected")

let test_jsonl_file_roundtrip () =
  let t = T.create () in
  for i = 0 to 9 do
    T.add t (ev ~time:(float_of_int i /. 3.0) ~seq:i ())
  done;
  let path = Filename.temp_file "csap-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.save_jsonl t path;
      Alcotest.(check bool) "file round-trips" true
        (T.equal t (T.load_jsonl path)))

let test_ring_drops_oldest () =
  let t = T.create ~capacity:3 () in
  for i = 0 to 9 do
    T.add t (ev ~seq:i ())
  done;
  Alcotest.(check int) "length capped" 3 (T.length t);
  Alcotest.(check int) "dropped counted" 7 (T.dropped t);
  Alcotest.(check (list int)) "last three kept" [ 7; 8; 9 ]
    (Array.to_list (Array.map (fun e -> e.T.seq) (T.events t)));
  (match T.recorded t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "recorded on a lossy ring must raise");
  T.clear t;
  Alcotest.(check int) "clear resets length" 0 (T.length t);
  Alcotest.(check int) "clear resets dropped" 0 (T.dropped t)

let test_collector_scopes () =
  (* Engines created inside a collector scope register traces, in creation
     order; outside, none. *)
  let g = Gen.path 3 ~w:2 in
  let outside = E.create g in
  Alcotest.(check bool) "no ambient trace" true (E.trace outside = None);
  let (e1, e2), traces =
    T.with_collector (fun () -> (E.create g, E.create g))
  in
  Alcotest.(check int) "one trace per engine" 2 (List.length traces);
  Alcotest.(check bool) "attached in order" true
    (E.trace e1 = Some (List.nth traces 0)
    && E.trace e2 = Some (List.nth traces 1));
  let (), nested =
    T.with_collector (fun () ->
        let (), inner = T.with_collector (fun () -> ignore (E.create g)) in
        Alcotest.(check int) "inner scope sees its engine" 1
          (List.length inner))
  in
  Alcotest.(check int) "outer scope does not see inner's" 0
    (List.length nested)

(* Record a run, rebuild the schedule with [recorded], re-run: the replay
   must reproduce the execution event for event and metric for metric. *)
let record_and_replay g ~source ~delay =
  let r, traces =
    T.with_collector (fun () -> Csap.Flood.run ~delay g ~source)
  in
  let tr = match traces with [ tr ] -> tr | _ -> Alcotest.fail "one engine" in
  let r', traces' =
    T.with_collector (fun () ->
        Csap.Flood.run ~delay:(T.recorded tr) g ~source)
  in
  let tr' = match traces' with [ t ] -> t | _ -> Alcotest.fail "one engine" in
  (r, tr, r', tr')

let test_replay_reproduces () =
  let g = Gen.grid 4 4 ~w:7 in
  let rng = Csap_graph.Rng.create 42 in
  let r, tr, r', tr' =
    record_and_replay g ~source:0 ~delay:(Csap_dsim.Delay.Uniform rng)
  in
  Alcotest.(check bool) "identical event order" true (T.equal tr tr');
  Alcotest.(check bool) "identical measures" true
    (r.Csap.Flood.measures = r'.Csap.Flood.measures);
  Alcotest.(check bool) "identical arrivals" true
    (r.Csap.Flood.arrival = r'.Csap.Flood.arrival)

let test_replay_through_jsonl () =
  (* The JSONL round trip preserves enough precision that replay-from-file
     is still exact. *)
  let g = Gen.grid 3 5 ~w:9 in
  let rng = Csap_graph.Rng.create 7 in
  let delay = Csap_dsim.Delay.Uniform rng in
  let r, traces =
    T.with_collector (fun () -> Csap.Flood.run ~delay g ~source:2)
  in
  let tr = List.hd traces in
  let tr = T.of_jsonl (T.to_jsonl tr) in
  let r', traces' =
    T.with_collector (fun () ->
        Csap.Flood.run ~delay:(T.recorded tr) g ~source:2)
  in
  Alcotest.(check bool) "event order survives JSONL" true
    (T.equal tr (List.hd traces'));
  Alcotest.(check bool) "measures survive JSONL" true
    (r.Csap.Flood.measures = r'.Csap.Flood.measures)

let test_diverged_replay_detected () =
  (* Replaying a recording on a different graph asks for sends the
     recording never made. *)
  let g = Gen.path 4 ~w:3 in
  let _, traces =
    T.with_collector (fun () -> Csap.Flood.run g ~source:0)
  in
  let oracle = T.recorded (List.hd traces) in
  let bigger = Gen.grid 3 3 ~w:3 in
  match Csap.Flood.run ~delay:oracle bigger ~source:0 with
  | _ -> Alcotest.fail "diverged replay must raise"
  | exception Invalid_argument _ -> ()

let prop_replay =
  QCheck.Test.make ~count:30 ~name:"record/replay reproduces any flood"
    (Gen_qcheck.graph_and_vertex ~max_n:16 ())
    (fun (g, source) ->
      let r, tr, r', tr' =
        record_and_replay g ~source
          ~delay:(Csap_dsim.Delay.seeded (G.n g + source))
      in
      T.equal tr tr'
      && r.Csap.Flood.measures = r'.Csap.Flood.measures
      && r.Csap.Flood.arrival = r'.Csap.Flood.arrival)

let prop_jsonl_roundtrip =
  QCheck.Test.make ~count:100 ~name:"JSONL round-trips random events"
    QCheck.(
      list
        (tup4 (int_range 0 4)
           (pair (float_bound_inclusive 100.0) small_nat)
           (pair small_nat small_nat)
           (float_bound_inclusive 50.0)))
    (fun entries ->
      let t = T.create () in
      List.iter
        (fun (k, (time, seq), (edge, nth), delay) ->
          let kind =
            match k with
            | 0 -> T.Send
            | 1 -> T.Deliver
            | 2 -> T.Local
            | 3 -> T.Dropped
            | _ -> T.Dup
          in
          T.add t (ev ~kind ~time ~seq ~edge ~nth ~delay ()))
        entries;
      T.equal t (T.of_jsonl (T.to_jsonl t)))

let test_faulty_trace_records_fault_kinds () =
  (* A run under an aggressive fault plan leaves Dropped and Dup records in
     its trace, and the whole trace survives the JSONL round trip. *)
  let g = Gen.grid 3 3 ~w:4 in
  let faults = Csap_dsim.Fault.seeded ~loss:0.4 ~dup:0.4 99 in
  let _, traces =
    T.with_collector (fun () ->
        Csap.Flood.run_reliable ~faults g ~source:0)
  in
  let tr = List.hd traces in
  let count k =
    Array.fold_left
      (fun acc e -> if e.T.kind = k then acc + 1 else acc)
      0 (T.events tr)
  in
  Alcotest.(check bool) "some drops recorded" true (count T.Dropped > 0);
  Alcotest.(check bool) "some dups recorded" true (count T.Dup > 0);
  Alcotest.(check bool) "faulty trace round-trips" true
    (T.equal tr (T.of_jsonl (T.to_jsonl tr)))

let suite =
  [
    Alcotest.test_case "JSONL round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "JSONL file round-trip" `Quick
      test_jsonl_file_roundtrip;
    Alcotest.test_case "JSONL parse errors carry line numbers" `Quick
      test_jsonl_error_context;
    Alcotest.test_case "JSONL file parse errors name the file" `Quick
      test_jsonl_file_error_names_file;
    Alcotest.test_case "ring keeps the newest events" `Quick
      test_ring_drops_oldest;
    Alcotest.test_case "collector scopes are nested and isolated" `Quick
      test_collector_scopes;
    Alcotest.test_case "replay reproduces the recorded run" `Quick
      test_replay_reproduces;
    Alcotest.test_case "replay survives the JSONL round-trip" `Quick
      test_replay_through_jsonl;
    Alcotest.test_case "diverged replay detected" `Quick
      test_diverged_replay_detected;
    QCheck_alcotest.to_alcotest prop_replay;
    QCheck_alcotest.to_alcotest prop_jsonl_roundtrip;
    Alcotest.test_case "faulty run records Dropped/Dup" `Quick
      test_faulty_trace_records_fault_kinds;
  ]
