module Q = Csap_dsim.Event_queue

(* Reference: drain order must equal the (time, seq) lexicographic sort of
   the inserted keys. Seqs are distinct by construction (the engine's send
   counter), so the order is total. *)
let drain q n =
  List.init n (fun _ ->
      let t = Q.min_time q and s = Q.min_seq q in
      let v = Q.pop q in
      (t, s, v))

let sorted_oracle entries =
  List.sort
    (fun (t1, s1, _) (t2, s2, _) ->
      match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
    entries

let fill q entries = List.iter (fun (t, s, v) -> Q.add q ~time:t ~seq:s v) entries

let test_empty_raises () =
  let q = Q.create ~dummy:(-1) in
  Alcotest.check_raises "min_time" (Invalid_argument "Event_queue.min_time: empty")
    (fun () -> ignore (Q.min_time q));
  Alcotest.check_raises "min_seq" (Invalid_argument "Event_queue.min_seq: empty")
    (fun () -> ignore (Q.min_seq q));
  Alcotest.check_raises "pop" (Invalid_argument "Event_queue.pop: empty")
    (fun () -> ignore (Q.pop q))

let test_duplicate_times () =
  (* Equal times drain in seq (insertion) order. *)
  let q = Q.create ~dummy:(-1) in
  let entries = [ (2.0, 3, 30); (1.0, 1, 10); (2.0, 2, 20); (1.0, 0, 0) ] in
  fill q entries;
  Alcotest.(check (list (triple (float 1e-9) int int)))
    "seq breaks ties" (sorted_oracle entries) (drain q 4)

let test_min_seq_tracks_min () =
  let q = Q.create ~dummy:(-1) in
  Q.add q ~time:5.0 ~seq:0 100;
  Q.add q ~time:1.0 ~seq:1 101;
  Alcotest.(check int) "seq of the earliest event" 1 (Q.min_seq q);
  ignore (Q.pop q);
  Alcotest.(check int) "after pop" 0 (Q.min_seq q)

(* Random keys with possibly-duplicate times; distinct seqs. *)
let entries_arb =
  QCheck.(
    make
      ~print:(fun l ->
        String.concat ";"
          (List.map (fun (t, s, v) -> Printf.sprintf "(%g,%d,%d)" t s v) l))
      Gen.(
        map
          (fun ts -> List.mapi (fun i t -> (float_of_int t /. 4.0, i, i)) ts)
          (list_size (int_range 0 200) (int_range 0 40))))

let prop_pop_order =
  QCheck.Test.make ~count:300 ~name:"pop order = sorted (time, seq)"
    entries_arb
    (fun entries ->
      let q = Q.create ~dummy:(-1) in
      fill q entries;
      drain q (List.length entries) = sorted_oracle entries)

let prop_pop_order_after_clear =
  (* A cleared, reused queue behaves exactly like a fresh one. *)
  QCheck.Test.make ~count:300 ~name:"pop order after clear and reuse"
    QCheck.(pair entries_arb entries_arb)
    (fun (first, second) ->
      let q = Q.create ~dummy:(-1) in
      fill q first;
      ignore (drain q (List.length first / 2));
      Q.clear q;
      Alcotest.(check bool) "cleared" true (Q.is_empty q);
      fill q second;
      drain q (List.length second) = sorted_oracle second)

let prop_interleaved =
  (* Interleaving adds and pops keeps the invariant: every pop returns the
     least remaining (time, seq). *)
  QCheck.Test.make ~count:300 ~name:"interleaved add/pop stays ordered"
    QCheck.(list_of_size (Gen.int_range 1 120) (int_range 0 30))
    (fun times ->
      let q = Q.create ~dummy:(-1) in
      let pending = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun t ->
          let time = float_of_int t /. 2.0 in
          Q.add q ~time ~seq:!seq !seq;
          pending := (time, !seq) :: !pending;
          incr seq;
          (* Pop every other step. *)
          if !seq mod 2 = 0 then begin
            let expect =
              List.sort
                (fun (t1, s1) (t2, s2) ->
                  match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
                !pending
              |> List.hd
            in
            let t' = Q.min_time q and s' = Q.min_seq q in
            ignore (Q.pop q);
            if (t', s') <> expect then ok := false;
            pending := List.filter (fun e -> e <> expect) !pending
          end)
        times;
      !ok)

let suite =
  [
    Alcotest.test_case "empty queue raises" `Quick test_empty_raises;
    Alcotest.test_case "duplicate times drain in seq order" `Quick
      test_duplicate_times;
    Alcotest.test_case "min_seq tracks the minimum" `Quick
      test_min_seq_tracks_min;
    QCheck_alcotest.to_alcotest prop_pop_order;
    QCheck_alcotest.to_alcotest prop_pop_order_after_clear;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
