module Q = Csap_dsim.Event_queue

(* Reference: drain order must equal the (time, seq) lexicographic sort of
   the inserted keys. Seqs are distinct by construction (the engine's send
   counter), so the order is total. Each entry is read back field-by-field
   — the SOA queue never materialises an event value. *)
let drain q n =
  List.init n (fun _ ->
      let t = Q.min_time q and s = Q.min_seq q in
      let v = Q.min_payload q in
      Q.drop_min q;
      (t, s, v))

let sorted_oracle entries =
  List.sort
    (fun (t1, s1, _) (t2, s2, _) ->
      match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
    entries

let fill q entries =
  List.iter
    (fun (t, s, v) ->
      Q.push_deliver q ~time:t ~seq:s ~src:(v * 3) ~dst:(v * 5) ~epoch:v v)
    entries

let test_empty_raises () =
  let q : int Q.t = Q.create () in
  Alcotest.check_raises "min_time" (Invalid_argument "Event_queue.min_time: empty")
    (fun () -> ignore (Q.min_time q));
  Alcotest.check_raises "min_seq" (Invalid_argument "Event_queue.min_seq: empty")
    (fun () -> ignore (Q.min_seq q));
  Alcotest.check_raises "drop_min" (Invalid_argument "Event_queue.drop_min: empty")
    (fun () -> Q.drop_min q)

let test_duplicate_times () =
  (* Equal times drain in seq (insertion) order. *)
  let q = Q.create () in
  let entries = [ (2.0, 3, 30); (1.0, 1, 10); (2.0, 2, 20); (1.0, 0, 0) ] in
  fill q entries;
  Alcotest.(check (list (triple (float 1e-9) int int)))
    "seq breaks ties" (sorted_oracle entries) (drain q 4)

let test_min_fields_track_min () =
  (* Every SOA column of the minimum moves together under pops. *)
  let q = Q.create ~capacity:1 () in
  Q.push_deliver q ~time:5.0 ~seq:0 ~src:7 ~dst:8 ~epoch:2 100;
  Q.push_deliver q ~time:1.0 ~seq:1 ~src:3 ~dst:4 ~epoch:1 101;
  Alcotest.(check int) "seq of the earliest event" 1 (Q.min_seq q);
  Alcotest.(check int) "src" 3 (Q.min_src q);
  Alcotest.(check int) "dst" 4 (Q.min_dst q);
  Alcotest.(check int) "epoch" 1 (Q.min_epoch q);
  Alcotest.(check int) "payload" 101 (Q.min_payload q);
  Alcotest.(check bool) "a delivery is not local" false (Q.min_is_local q);
  Q.drop_min q;
  Alcotest.(check int) "after pop: seq" 0 (Q.min_seq q);
  Alcotest.(check int) "after pop: src" 7 (Q.min_src q);
  Alcotest.(check int) "after pop: payload" 100 (Q.min_payload q)

let test_local_slots_recycle () =
  (* Local closures live in the side slot table; popping releases the
     slot, clear wipes it, and interleaved deliver/local pops keep the
     (time, seq) order. *)
  let q : int Q.t = Q.create () in
  let fired = ref [] in
  let mark k () = fired := k :: !fired in
  Q.push_local q ~time:2.0 ~seq:0 (mark 0);
  Q.push_deliver q ~time:1.0 ~seq:1 ~src:0 ~dst:1 ~epoch:0 11;
  Q.push_local q ~time:1.0 ~seq:2 (mark 2);
  Alcotest.(check bool) "delivery first" false (Q.min_is_local q);
  Q.drop_min q;
  Alcotest.(check bool) "local at t=1" true (Q.min_is_local q);
  (Q.min_local q) ();
  Q.drop_min q;
  (Q.min_local q) ();
  Q.drop_min q;
  (* (1.0, seq 2) pops before (2.0, seq 0). *)
  Alcotest.(check (list int)) "closures in order" [ 2; 0 ] (List.rev !fired);
  (* Slots recycle: many push/pop rounds keep the table small and the
     closures correct. *)
  for round = 0 to 99 do
    Q.push_local q ~time:0.0 ~seq:round (mark round);
    (Q.min_local q) ();
    Q.drop_min q
  done;
  Alcotest.(check int) "all rounds fired" 102 (List.length !fired);
  Q.push_local q ~time:0.0 ~seq:0 (mark (-1));
  Q.clear q;
  Alcotest.(check bool) "cleared" true (Q.is_empty q)

(* Random keys with possibly-duplicate times; distinct seqs. *)
let entries_arb =
  QCheck.(
    make
      ~print:(fun l ->
        String.concat ";"
          (List.map (fun (t, s, v) -> Printf.sprintf "(%g,%d,%d)" t s v) l))
      Gen.(
        map
          (fun ts -> List.mapi (fun i t -> (float_of_int t /. 4.0, i, i)) ts)
          (list_size (int_range 0 200) (int_range 0 40))))

let prop_pop_order =
  QCheck.Test.make ~count:300 ~name:"pop order = sorted (time, seq)"
    entries_arb
    (fun entries ->
      let q = Q.create () in
      fill q entries;
      drain q (List.length entries) = sorted_oracle entries)

let prop_pop_order_after_clear =
  (* A cleared, reused queue behaves exactly like a fresh one. *)
  QCheck.Test.make ~count:300 ~name:"pop order after clear and reuse"
    QCheck.(pair entries_arb entries_arb)
    (fun (first, second) ->
      let q = Q.create () in
      fill q first;
      ignore (drain q (List.length first / 2));
      Q.clear q;
      Alcotest.(check bool) "cleared" true (Q.is_empty q);
      fill q second;
      drain q (List.length second) = sorted_oracle second)

let prop_interleaved =
  (* Interleaving adds and pops keeps the invariant: every pop returns the
     least remaining (time, seq), with its own src/dst/epoch columns. *)
  QCheck.Test.make ~count:300 ~name:"interleaved add/pop stays ordered"
    QCheck.(list_of_size (Gen.int_range 1 120) (int_range 0 30))
    (fun times ->
      let q = Q.create ~capacity:1 () in
      let pending = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun t ->
          let time = float_of_int t /. 2.0 in
          Q.push_deliver q ~time ~seq:!seq ~src:!seq ~dst:(!seq + 1)
            ~epoch:(!seq mod 3) !seq;
          pending := (time, !seq) :: !pending;
          incr seq;
          (* Pop every other step. *)
          if !seq mod 2 = 0 then begin
            let expect =
              List.sort
                (fun (t1, s1) (t2, s2) ->
                  match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
                !pending
              |> List.hd
            in
            let t' = Q.min_time q and s' = Q.min_seq q in
            if Q.min_src q <> s' || Q.min_dst q <> s' + 1 then ok := false;
            if Q.min_payload q <> s' then ok := false;
            Q.drop_min q;
            if (t', s') <> expect then ok := false;
            pending := List.filter (fun e -> e <> expect) !pending
          end)
        times;
      !ok)

let suite =
  [
    Alcotest.test_case "empty queue raises" `Quick test_empty_raises;
    Alcotest.test_case "duplicate times drain in seq order" `Quick
      test_duplicate_times;
    Alcotest.test_case "min fields track the minimum" `Quick
      test_min_fields_track_min;
    Alcotest.test_case "local slots recycle" `Quick test_local_slots_recycle;
    QCheck_alcotest.to_alcotest prop_pop_order;
    QCheck_alcotest.to_alcotest prop_pop_order_after_clear;
    QCheck_alcotest.to_alcotest prop_interleaved;
  ]
