(* The CSR adjacency layout and the pool-sharded all-sources sweeps,
   checked against naive oracles: the flat rows must list exactly the
   incident edges of [Graph.edges] in per-vertex edge-id order, and the
   parallel [Paths.extrema] / [all_pairs] must be bit-identical to their
   sequential counterparts whatever the pool's schedule. *)

module G = Csap_graph.Graph
module P = Csap_graph.Paths
module Gen = Csap_graph.Generators

(* The oracle: vertex [v]'s incident (u, w, id) triples read off the
   edge array in edge-id order — by construction the order the CSR rows
   (and the historical tuple shim) present. *)
let naive_adjacency g =
  let adj = Array.make (G.n g) [] in
  Array.iteri
    (fun id e ->
      adj.(e.G.u) <- (e.G.v, e.G.w, id) :: adj.(e.G.u);
      adj.(e.G.v) <- (e.G.u, e.G.w, id) :: adj.(e.G.v))
    (G.edges g);
  Array.map List.rev adj

let row_of_iter g v =
  let acc = ref [] in
  G.iter_neighbors g v (fun u w id -> acc := (u, w, id) :: !acc);
  List.rev !acc

let check_against_oracle g =
  let oracle = naive_adjacency g in
  let ok = ref true in
  for v = 0 to G.n g - 1 do
    if row_of_iter g v <> oracle.(v) then ok := false;
    let folded =
      List.rev (G.fold_neighbors g v (fun acc u w id -> (u, w, id) :: acc) [])
    in
    if folded <> oracle.(v) then ok := false;
    if G.degree g v <> List.length oracle.(v) then ok := false
  done;
  !ok

let check_edge_id_between g =
  let oracle = naive_adjacency g in
  let ok = ref true in
  for u = 0 to G.n g - 1 do
    for v = 0 to G.n g - 1 do
      let expect =
        match List.find_opt (fun (x, _, _) -> x = v) oracle.(u) with
        | Some (_, _, id) when u <> v -> id
        | _ -> -1
      in
      if G.edge_id_between g u v <> expect then ok := false
    done
  done;
  !ok

(* Structural invariants of the flat rows themselves. *)
let check_layout g =
  let n = G.n g and m = G.m g in
  let off = G.csr_offsets g in
  let nbr = G.csr_neighbors g in
  let wt = G.csr_weights g in
  let eid = G.csr_edge_ids g in
  let ok = ref (Array.length off = n + 1 && off.(0) = 0 && off.(n) = 2 * m) in
  ok :=
    !ok
    && Array.length nbr = 2 * m
    && Array.length wt = 2 * m
    && Array.length eid = 2 * m;
  for v = 0 to n - 1 do
    ok := !ok && off.(v) <= off.(v + 1);
    for i = off.(v) to off.(v + 1) - 1 do
      (* Each slot describes a real edge incident to [v]. *)
      let e = G.edge g eid.(i) in
      ok :=
        !ok
        && G.other_endpoint e v = nbr.(i)
        && e.G.w = wt.(i)
        && (e.G.u = v || e.G.v = v)
    done
  done;
  !ok

let test_layout_families () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " layout") true (check_layout g);
      Alcotest.(check bool) (name ^ " rows") true (check_against_oracle g);
      Alcotest.(check bool)
        (name ^ " edge ids") true (check_edge_id_between g))
    [
      ("path", Gen.path 6 ~w:3);
      ("star", Gen.star 7 ~w:2);
      ("complete", Gen.complete 9 ~w:4);
      ("single edge", G.create ~n:2 [ (0, 1, 5) ]);
      ("edgeless", G.create ~n:3 []);
    ]

let prop_rows_match_oracle =
  QCheck.Test.make ~count:150 ~name:"iter/fold/degree = edge-list oracle"
    (Gen_qcheck.connected_graph_gen ())
    (fun g -> check_against_oracle g && check_layout g)

let prop_edge_id_matches_oracle =
  QCheck.Test.make ~count:80 ~name:"edge_id_between = edge-list oracle"
    (Gen_qcheck.connected_graph_gen ())
    check_edge_id_between

let prop_dijkstra_matches_tuple =
  QCheck.Test.make ~count:100 ~name:"CSR dijkstra = tuple dijkstra"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, src) ->
      let a = P.dijkstra g ~src and b = P.dijkstra_tuple g ~src in
      a.P.dist = b.P.dist && a.P.parent = b.P.parent)

(* Seeded instances above [Paths]'s sequential cutoff, so the parallel
   sharding genuinely runs; a pool wider than the sweep's task count
   never exists, but 3 domains on >= 64 sources exercises stealing. *)
let big_graph seed =
  Gen.random_connected (Csap_graph.Rng.create seed) 96 ~extra_edges:160
    ~wmax:24

let test_parallel_extrema_matches_seq () =
  let pool = Csap_pool.create ~domains:3 () in
  List.iter
    (fun seed ->
      let g = big_graph seed in
      let seq = P.extrema_seq g and par = P.extrema ~pool g in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true (seq = par))
    [ 1; 2; 3; 4; 5 ]

let test_parallel_all_pairs_matches_dijkstra () =
  let pool = Csap_pool.create ~domains:3 () in
  let g = big_graph 11 in
  let rows = P.all_pairs ~pool g in
  Alcotest.(check int) "row count" (G.n g) (Array.length rows);
  List.iter
    (fun src ->
      Alcotest.(check bool)
        (Printf.sprintf "row %d" src)
        true
        (rows.(src) = (P.dijkstra g ~src).P.dist))
    [ 0; 1; G.n g / 2; G.n g - 1 ]

let prop_parallel_extrema_matches_seq =
  (* Small instances fall under the cutoff (sequential path) — still a
     valid equality; the seeded family above covers the sharded path. *)
  QCheck.Test.make ~count:60 ~name:"extrema = extrema_seq"
    (Gen_qcheck.connected_graph_gen ())
    (fun g -> P.extrema g = P.extrema_seq g)

let suite =
  [
    Alcotest.test_case "layout on named families" `Quick test_layout_families;
    QCheck_alcotest.to_alcotest prop_rows_match_oracle;
    QCheck_alcotest.to_alcotest prop_edge_id_matches_oracle;
    QCheck_alcotest.to_alcotest prop_dijkstra_matches_tuple;
    Alcotest.test_case "parallel extrema = sequential (3 domains)" `Quick
      test_parallel_extrema_matches_seq;
    Alcotest.test_case "parallel all_pairs rows = dijkstra" `Quick
      test_parallel_all_pairs_matches_dijkstra;
    QCheck_alcotest.to_alcotest prop_parallel_extrema_matches_seq;
  ]
