module C = Csap_cover.Cluster
module Coarsen = Csap_cover.Coarsen
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let test_connected () =
  let g = Gen.path 5 ~w:1 in
  Alcotest.(check bool) "contiguous" true
    (C.is_connected g (C.of_list [ 1; 2; 3 ]));
  Alcotest.(check bool) "gap" false (C.is_connected g (C.of_list [ 1; 3 ]));
  Alcotest.(check bool) "empty" false (C.is_connected g (C.of_list []))

let test_radius () =
  let g = Gen.path 5 ~w:2 in
  (* Whole path: centre 2, radius 4. *)
  let r, c = C.radius_and_center g (C.of_list [ 0; 1; 2; 3; 4 ]) in
  Alcotest.(check int) "radius" 4 r;
  Alcotest.(check int) "center" 2 c

let test_radius_induced () =
  (* Induced radius ignores vertices outside the cluster: on a cycle,
     removing one vertex forces the long way round. *)
  let g = Gen.cycle 6 ~w:1 in
  let all_but_0 = C.of_list [ 1; 2; 3; 4; 5 ] in
  let r, _ = C.radius_and_center g all_but_0 in
  Alcotest.(check int) "path-like radius" 2 r

let test_dijkstra_within () =
  let g = Gen.cycle 6 ~w:1 in
  let s = C.of_list [ 0; 1; 2; 3 ] in
  let dist = C.dijkstra_within g s ~src:0 in
  Alcotest.(check int) "inside short way" 1 dist.(1);
  Alcotest.(check int) "inside long way" 3 dist.(3);
  Alcotest.(check int) "outside" max_int dist.(4)

let test_cover_checks () =
  let g = Gen.path 4 ~w:1 in
  let cover = [ C.of_list [ 0; 1 ]; C.of_list [ 1; 2; 3 ] ] in
  Alcotest.(check bool) "is cover" true (C.is_cover g cover);
  Alcotest.(check int) "degree" 2 (C.max_degree 4 cover);
  Alcotest.(check bool) "not a cover" false
    (C.is_cover g [ C.of_list [ 0; 1 ] ]);
  Alcotest.(check bool) "subsumes" true
    (C.subsumes ~coarse:[ C.of_list [ 0; 1; 2; 3 ] ] ~fine:cover);
  Alcotest.(check bool) "no subsume" false
    (C.subsumes ~coarse:[ C.of_list [ 0; 1 ] ] ~fine:cover)

let singleton_cover g =
  List.init (G.n g) (fun v -> C.of_list [ v ])

let check_theorem_1_1 g clusters k =
  let coarse = Coarsen.coarsen g ~clusters ~k in
  let rad_s = C.max_radius g clusters in
  let rad_t = C.max_radius g coarse in
  let bound_rad = ((2 * k) - 1) * max 1 rad_s in
  let deg = C.max_degree (G.n g) coarse in
  let bound_deg =
    Coarsen.degree_bound ~num_clusters:(List.length clusters) ~k
  in
  C.is_cover g coarse
  && C.subsumes ~coarse ~fine:clusters
  && (rad_s = 0 || rad_t <= bound_rad)
  && (rad_s > 0 || rad_t <= (2 * k) - 1)
  && deg <= bound_deg
  && List.for_all (C.is_connected g) coarse

let test_coarsen_path () =
  let g = Gen.path 16 ~w:1 in
  Alcotest.(check bool) "thm 1.1 on path, k=2" true
    (check_theorem_1_1 g (singleton_cover g) 2);
  Alcotest.(check bool) "thm 1.1 on path, k=4" true
    (check_theorem_1_1 g (singleton_cover g) 4)

let test_coarsen_k1_merges_everything_or_nothing () =
  (* k = 1: growth factor = |S|, so kernels never grow; output = input. *)
  let g = Gen.cycle 8 ~w:1 in
  let coarse = Coarsen.coarsen g ~clusters:(singleton_cover g) ~k:1 in
  Alcotest.(check int) "no growth at k=1" 8 (List.length coarse)

let test_coarsen_invalid () =
  let g = Gen.path 4 ~w:1 in
  Alcotest.check_raises "k=0" (Invalid_argument "Coarsen.coarsen: k >= 1 required")
    (fun () -> ignore (Coarsen.coarsen g ~clusters:(singleton_cover g) ~k:0));
  Alcotest.check_raises "disconnected cluster"
    (Invalid_argument "Coarsen.coarsen: cluster not connected") (fun () ->
      ignore (Coarsen.coarsen g ~clusters:[ C.of_list [ 0; 3 ] ] ~k:2))

let prop_theorem_1_1 =
  QCheck.Test.make ~count:60 ~name:"Theorem 1.1 (subsume/radius/degree)"
    QCheck.(
      pair (Gen_qcheck.connected_graph_gen ~max_n:16 ~max_wmax:6 ())
        (int_range 1 5))
    (fun (g, k) ->
      (* Initial cover: singletons plus each edge's endpoints. *)
      let singles = singleton_cover g in
      let pairs =
        Array.to_list (G.edges g)
        |> List.map (fun (e : G.edge) -> C.of_list [ e.u; e.v ])
      in
      check_theorem_1_1 g (singles @ pairs) k)

let prop_dijkstra_within_full =
  QCheck.Test.make ~count:40 ~name:"dijkstra_within on V = full Dijkstra"
    (Gen_qcheck.graph_and_vertex ~max_n:16 ~max_wmax:8 ())
    (fun (g, v) ->
      let all = C.of_list (List.init (G.n g) Fun.id) in
      let within = C.dijkstra_within g all ~src:v in
      let full = (Csap_graph.Paths.dijkstra g ~src:v).Csap_graph.Paths.dist in
      within = full)

let prop_radius_center =
  (* On the star cluster {v} + N(v) (connected by construction): the
     returned centre is a member attaining the radius, and no member has a
     smaller eccentricity. Induced distances can only exceed full-graph
     distances. *)
  QCheck.Test.make ~count:40 ~name:"radius_and_center optimal over members"
    (Gen_qcheck.graph_and_vertex ~max_n:14 ~max_wmax:8 ())
    (fun (g, v) ->
      let s =
        C.of_list (G.fold_neighbors g v (fun acc u _ _ -> u :: acc) [ v ])
      in
      let members = C.Vset.elements s in
      let rad, c = C.radius_and_center g s in
      C.is_connected g s
      && C.Vset.mem c s
      && C.eccentricity_within g s c = rad
      && List.for_all (fun u -> C.eccentricity_within g s u >= rad) members
      && rad = C.radius g s
      && List.for_all
           (fun u ->
             let d = (C.dijkstra_within g s ~src:v).(u) in
             d >= Csap_graph.Paths.dist g v u)
           members)

let suite =
  [
    Alcotest.test_case "cluster connectivity" `Quick test_connected;
    Alcotest.test_case "radius and center" `Quick test_radius;
    Alcotest.test_case "induced radius" `Quick test_radius_induced;
    Alcotest.test_case "restricted dijkstra" `Quick test_dijkstra_within;
    Alcotest.test_case "cover predicates" `Quick test_cover_checks;
    Alcotest.test_case "coarsen a path" `Quick test_coarsen_path;
    Alcotest.test_case "k=1 keeps the cover" `Quick
      test_coarsen_k1_merges_everything_or_nothing;
    Alcotest.test_case "invalid inputs" `Quick test_coarsen_invalid;
    QCheck_alcotest.to_alcotest prop_theorem_1_1;
    QCheck_alcotest.to_alcotest prop_dijkstra_within_full;
    QCheck_alcotest.to_alcotest prop_radius_center;
  ]
