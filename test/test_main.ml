(* Hidden re-exec hook for the farm crash-resume test: the crash child
   must be a fresh process (Unix.fork is unavailable once domains have
   been spawned), so the test re-runs this binary with this flag. *)
let () =
  match Sys.argv with
  | [| _; "--farm-crash-child"; dir |] -> Test_farm.crash_child ~dir
  | _ -> ()

let () =
  Alcotest.run "csap"
    [
      ("rng", Test_rng.suite);
      ("heap", Test_heap.suite);
      ("indexed-heap", Test_indexed_heap.suite);
      ("union-find", Test_union_find.suite);
      ("graph", Test_graph_basic.suite);
      ("csr", Test_csr.suite);
      ("pool", Test_pool.suite);
      ("tree", Test_tree.suite);
      ("traversal", Test_traversal.suite);
      ("paths", Test_paths.suite);
      ("mst", Test_mst.suite);
      ("params", Test_params.suite);
      ("generators", Test_generators.suite);
      ("partition", Test_partition.suite);
      ("engine", Test_engine.suite);
      ("pengine", Test_pengine.suite);
      ("event-queue", Test_event_queue.suite);
      ("alloc", Test_alloc.suite);
      ("trace", Test_trace.suite);
      ("fault", Test_fault.suite);
      ("reliable", Test_reliable.suite);
      ("adversary", Test_adversary.suite);
      ("sched-explore", Test_sched_explore.suite);
      ("cover", Test_cover.suite);
      ("tree-cover", Test_tree_cover.suite);
      ("slt", Test_slt.suite);
      ("global-func", Test_global_func.suite);
      ("flood", Test_flood.suite);
      ("dfs-token", Test_dfs_token.suite);
      ("centr-growth", Test_centr_growth.suite);
      ("con-hybrid", Test_con_hybrid.suite);
      ("clock-sync", Test_clock_sync.suite);
      ("normalize", Test_normalize.suite);
      ("synchronizer", Test_synchronizer.suite);
      ("spt-synch", Test_spt_synch.suite);
      ("controller", Test_controller.suite);
      ("mst-ghs", Test_mst_ghs.suite);
      ("mst-fast", Test_mst_fast.suite);
      ("mst-hybrid", Test_mst_hybrid.suite);
      ("spt-recur", Test_spt_recur.suite);
      ("spt-hybrid", Test_spt_hybrid.suite);
      ("spt-async", Test_spt_async.suite);
      ("slt-distributed", Test_slt_distributed.suite);
      ("extra", Test_extra.suite);
      ("classical", Test_classical.suite);
      ("sync-runner", Test_sync_runner.suite);
      ("bound", Test_bound.suite);
      ("measures", Test_measures.suite);
      ("protocol", Test_protocol.suite);
      ("farm", Test_farm.suite);
    ]
