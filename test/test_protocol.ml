module P = Csap.Protocol
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

let expected_names =
  [
    "flood";
    "dfs-token";
    "con-hybrid";
    "mst-centr";
    "mst-ghs";
    "mst-fast";
    "mst-hybrid";
    "spt-centr";
    "spt-synch";
    "spt-recur";
    "spt-hybrid";
    "spt-async";
    "slt-dist";
    "global-sum";
    "clock-alpha";
    "clock-beta";
    "clock-gamma";
    "sync-alpha";
    "sync-beta";
    "sync-gamma-w";
    "lower-bound-gn";
  ]

(* The registry is complete: every protocol in the library, by name, in
   paper order. A protocol added to lib/core must be added both there and
   to this list. *)
let test_completeness () =
  Alcotest.(check (list string)) "registry names" expected_names (P.names ());
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " found") true (P.find n <> None))
    expected_names;
  Alcotest.(check bool) "unknown name rejected" true (P.find "nope" = None);
  Alcotest.check_raises "find_exn raises"
    (Invalid_argument "Protocol.find_exn: unknown protocol \"nope\"")
    (fun () -> ignore (P.find_exn "nope"))

(* Every entry runs cleanly and passes its own oracle invariant. *)
let smoke g =
  List.iter
    (fun entry ->
      let (module M : P.S) = entry in
      let cfg = P.Run.make g in
      let o = P.execute entry cfg in
      (match M.invariant cfg o with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invariant failed: %s" M.name e);
      Alcotest.(check string)
        (M.name ^ ": outcome labelled")
        M.name o.P.Outcome.protocol;
      Alcotest.(check bool)
        (M.name ^ ": communication positive")
        true
        (o.P.Outcome.measures.Csap.Measures.comm > 0))
    P.registry

let test_smoke_k4 () = smoke (Gen.complete 4 ~w:3)

let test_smoke_random () =
  smoke
    (Gen.random_connected (Csap_graph.Rng.create 7) 10 ~extra_edges:8 ~wmax:6)

(* Zero-fault registry runs are bit-identical to direct calls: the
   registry adds routing, not semantics. *)
let test_bit_identical () =
  let g = Gen.grid 3 3 ~w:4 in
  let delay = Csap_dsim.Delay.seeded 42 in
  let tree_of o =
    match P.Outcome.tree o with
    | Some t -> Tree.edges t
    | None -> Alcotest.fail "no tree in outcome"
  in
  let via_flood = P.run ~delay (P.find_exn "flood") g in
  let direct_flood = Csap.Flood.run ~delay g ~source:0 in
  Alcotest.(check bool) "flood measures identical" true
    (via_flood.P.Outcome.measures = direct_flood.Csap.Flood.measures);
  Alcotest.(check bool) "flood tree identical" true
    (tree_of via_flood = Tree.edges direct_flood.Csap.Flood.tree);
  let via_ghs = P.run ~delay (P.find_exn "mst-ghs") g in
  let direct_ghs = Csap.Mst_ghs.run ~delay g in
  Alcotest.(check bool) "ghs measures identical" true
    (via_ghs.P.Outcome.measures = direct_ghs.Csap.Mst_ghs.measures);
  Alcotest.(check bool) "ghs tree identical" true
    (tree_of via_ghs = Tree.edges direct_ghs.Csap.Mst_ghs.mst);
  let via_spt = P.run ~delay (P.find_exn "spt-synch") g in
  let direct_spt = Csap.Spt_synch.run ~delay g ~source:0 in
  Alcotest.(check bool) "spt-synch measures identical" true
    (via_spt.P.Outcome.measures = direct_spt.Csap.Spt_synch.measures);
  Alcotest.(check bool) "spt-synch tree identical" true
    (tree_of via_spt = Tree.edges direct_spt.Csap.Spt_synch.tree)

(* Uniform validation: one root-range message shape for every protocol
   that needs a root, and capability rejections for the rest. *)
let test_validation () =
  let g = Gen.complete 4 ~w:3 in
  List.iter
    (fun entry ->
      let (module M : P.S) = entry in
      if M.caps.P.needs_root then begin
        let expected =
          Printf.sprintf "%s: root 99 out of range [0, %d)" M.name (G.n g)
        in
        Alcotest.check_raises
          (M.name ^ ": root validated")
          (Invalid_argument expected)
          (fun () -> ignore (P.run ~root:99 entry g))
      end;
      if not M.caps.P.supports_faults then
        Alcotest.check_raises
          (M.name ^ ": faults rejected")
          (Invalid_argument (M.name ^ ": fault plans not supported"))
          (fun () ->
            ignore
              (P.run ~faults:(Csap_dsim.Fault.seeded ~loss:0.1 1) entry g));
      if not M.caps.P.supports_reliable then
        Alcotest.check_raises
          (M.name ^ ": reliable rejected")
          (Invalid_argument (M.name ^ ": reliable transport not supported"))
          (fun () -> ignore (P.run ~reliable:true entry g));
      (* Adversary rejections name their knob uniformly, like domains. *)
      if not M.caps.P.supports_adaptive then
        Alcotest.check_raises
          (M.name ^ ": adaptive rejected")
          (Invalid_argument
             (M.name ^ ": adversary: adaptive adversaries not supported"))
          (fun () ->
            ignore
              (P.run ~adversary:(Csap_dsim.Adversary.greedy_commax ()) entry
                 g));
      Alcotest.check_raises
        (M.name ^ ": adversary/delay conflict rejected")
        (Invalid_argument
           (M.name ^ ": adversary: conflicts with an explicit delay model"))
        (fun () ->
          ignore
            (P.run ~delay:Csap_dsim.Delay.Exact
               ~adversary:(Csap_dsim.Adversary.of_delay Csap_dsim.Delay.Exact)
               entry g)))
    P.registry;
  (* Only the lower-bound family (which ignores its delay model) opts
     out of adaptivity. *)
  List.iter
    (fun entry ->
      let (module M : P.S) = entry in
      Alcotest.(check bool)
        (M.name ^ ": adv capability")
        (M.name <> "lower-bound-gn")
        M.caps.P.supports_adaptive)
    P.registry

(* Every fault-capable entry survives seeded loss behind the shim and
   still passes its invariant — the fault roster extends registry-wide,
   not just to the original hand-wired three. *)
let test_reliable_under_loss () =
  let g = Gen.grid 3 3 ~w:4 in
  let faults = Csap_dsim.Fault.seeded ~loss:0.1 5 in
  let covered =
    List.filter
      (fun entry ->
        let (module M : P.S) = entry in
        M.caps.P.supports_faults && M.caps.P.supports_reliable)
      P.registry
  in
  Alcotest.(check bool) "strictly more than three fault targets" true
    (List.length covered > 3);
  List.iter
    (fun entry ->
      let (module M : P.S) = entry in
      let cfg = P.Run.make ~faults ~reliable:true g in
      let o = P.execute entry cfg in
      match M.invariant cfg o with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s: invariant failed under loss: %s" M.name e)
    covered

(* The flood entry's reusable engine handle is accepted and changes
   nothing about the result. *)
let test_engine_reuse () =
  let g = Gen.grid 3 3 ~w:4 in
  let entry = P.find_exn "flood" in
  let (module M : P.S) = entry in
  Alcotest.(check bool) "flood advertises engine reuse" true
    M.caps.P.reuses_engine;
  let engine =
    match M.make_engine g with
    | Some h -> h
    | None -> Alcotest.fail "flood returned no engine"
  in
  let fresh = P.run entry g in
  let reused1 = P.run ~engine entry g in
  let reused2 = P.run ~engine entry g in
  Alcotest.(check bool) "reused engine, same measures" true
    (fresh.P.Outcome.measures = reused1.P.Outcome.measures
    && reused1.P.Outcome.measures = reused2.P.Outcome.measures)

(* cfg.trace dumps one parseable JSONL trace per engine run. *)
let test_trace_dump () =
  let g = Gen.complete 4 ~w:3 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "csap-protocol-test-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let prefix = Filename.concat dir "t" in
  ignore (P.run ~trace:prefix (P.find_exn "flood") g);
  let dumped = Sys.readdir dir in
  Alcotest.(check bool) "at least one trace dumped" true
    (Array.length dumped > 0);
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "%s parses and is non-empty" f)
        true
        (Csap_dsim.Trace.length
           (Csap_dsim.Trace.load_jsonl (Filename.concat dir f))
        > 0))
    dumped;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) dumped;
  Sys.rmdir dir

(* Every entry declares machine-checkable cost claims, and those claims
   speak only in the variables its category is allowed to mention (a
   clock claim may use d and W; an MST claim may not). *)
let test_claims_complete () =
  List.iter
    (fun entry ->
      let (module M : P.S) = entry in
      Alcotest.(check bool)
        (M.name ^ ": has at least one claim")
        true (M.claimed <> []);
      Alcotest.(check bool)
        (M.name ^ ": claims a communication bound")
        true
        (List.exists (fun c -> c.P.Claim.metric = P.Claim.Comm) M.claimed);
      let allowed = P.allowed_vars M.category in
      List.iter
        (fun c ->
          let b = c.P.Claim.bound in
          List.iter
            (fun v ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s uses allowed var %s" M.name
                   (P.Claim.to_string c) (Csap.Bound.var_name v))
                true (List.mem v allowed))
            (Csap.Bound.vars b);
          (* Claims are stored canonically and survive a print/parse
             round trip, so tables and the CLI show exactly what is
             checked. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s is canonical" M.name (P.Claim.to_string c))
            true
            (Csap.Bound.equal b (Csap.Bound.canon b)
            && Csap.Bound.equal b
                 (Csap.Bound.of_string_exn (Csap.Bound.to_string b))))
        M.claimed)
    P.registry

(* The [bounds] listing is the registry: same names, same order. The CI
   job diffs the actual CLI output; this pins the library-side source
   both draw from. *)
let test_bounds_names_match_registry () =
  Alcotest.(check (list string))
    "claim-bearing names = registry names" expected_names
    (List.filter_map
       (fun entry ->
         let (module M : P.S) = entry in
         if M.claimed <> [] then Some M.name else None)
       P.registry)

let suite =
  [
    Alcotest.test_case "registry is complete" `Quick test_completeness;
    Alcotest.test_case "every entry has checkable claims" `Quick
      test_claims_complete;
    Alcotest.test_case "bounds listing matches registry" `Quick
      test_bounds_names_match_registry;
    Alcotest.test_case "all entries pass on K4" `Quick test_smoke_k4;
    Alcotest.test_case "all entries pass on a random family" `Quick
      test_smoke_random;
    Alcotest.test_case "registry runs bit-identical to direct calls" `Quick
      test_bit_identical;
    Alcotest.test_case "uniform root and capability validation" `Quick
      test_validation;
    Alcotest.test_case "fault-capable entries survive loss" `Quick
      test_reliable_under_loss;
    Alcotest.test_case "flood engine handle reused" `Quick test_engine_reuse;
    Alcotest.test_case "traces dumped and parseable" `Quick test_trace_dump;
  ]
