(* The indexed heap behind the Dijkstra/Prim hot paths: unit tests for
   the decrease_key semantics, plus qcheck properties checking it
   against the generic lazy-deletion [Heap] over (priority, key) tuples
   on random operation sequences. *)

module IH = Csap_graph.Indexed_heap
module H = Csap_graph.Heap

let test_empty () =
  let h = IH.create 8 in
  Alcotest.(check bool) "is_empty" true (IH.is_empty h);
  Alcotest.(check int) "capacity" 8 (IH.capacity h);
  Alcotest.(check int) "size" 0 (IH.size h);
  Alcotest.(check int) "min_key" (-1) (IH.min_key h);
  Alcotest.(check int) "pop_min" (-1) (IH.pop_min h)

let test_order_and_ties () =
  let h = IH.create 8 in
  (* Keys 3 and 5 tie on priority 2: key order breaks the tie. *)
  List.iter
    (fun (k, p) -> IH.insert h k p)
    [ (0, 9); (5, 2); (3, 2); (7, 1); (1, 4) ];
  let drained = List.init 5 (fun _ -> IH.pop_min h) in
  Alcotest.(check (list int)) "drain order" [ 7; 3; 5; 1; 0 ] drained;
  Alcotest.(check bool) "empty after" true (IH.is_empty h)

let test_decrease_key () =
  let h = IH.create 4 in
  IH.insert h 0 10;
  IH.insert h 1 5;
  IH.decrease_key h 0 3;
  Alcotest.(check int) "priority updated" 3 (IH.priority h 0);
  Alcotest.(check int) "new min" 0 (IH.min_key h);
  (* Raising a priority is rejected. *)
  Alcotest.check_raises "increase rejected"
    (Invalid_argument "Indexed_heap.decrease_key: priority increase") (fun () ->
      IH.decrease_key h 0 7);
  (* Absent keys are rejected. *)
  Alcotest.check_raises "absent rejected"
    (Invalid_argument "Indexed_heap.decrease_key: absent key") (fun () ->
      IH.decrease_key h 2 1)

let test_insert_duplicate_rejected () =
  let h = IH.create 4 in
  IH.insert h 1 5;
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Indexed_heap.insert: key present") (fun () ->
      IH.insert h 1 3)

let test_push_semantics () =
  let h = IH.create 4 in
  IH.push h 2 10;
  Alcotest.(check int) "inserted" 10 (IH.priority h 2);
  IH.push h 2 4;
  Alcotest.(check int) "decreased" 4 (IH.priority h 2);
  IH.push h 2 9;
  Alcotest.(check int) "no-op on larger" 4 (IH.priority h 2);
  Alcotest.(check int) "size stays 1" 1 (IH.size h)

let test_clear () =
  let h = IH.create 6 in
  List.iter (fun k -> IH.insert h k (10 - k)) [ 0; 2; 4 ];
  IH.clear h;
  Alcotest.(check bool) "cleared" true (IH.is_empty h);
  Alcotest.(check bool) "mem false" false (IH.mem h 2);
  (* Reusable after clear. *)
  IH.insert h 2 1;
  Alcotest.(check int) "reinsert" 2 (IH.pop_min h)

(* An operation sequence: for each (key, prio) pair, push into the
   indexed heap and add into a lazy-deletion tuple heap; interleave pops.
   Both must drain keys in the same order — the equivalence the Dijkstra
   rewrite relies on. *)
let prop_matches_lazy_heap =
  QCheck.Test.make ~count:300
    ~name:"indexed heap drains like a lazy (priority, key) heap"
    QCheck.(
      pair (int_range 1 32)
        (small_list (pair (int_bound 31) (int_bound 100))))
    (fun (capacity, ops) ->
      let ih = IH.create capacity in
      let lazy_heap = H.create ~cmp:compare in
      (* best.(k) mirrors the indexed heap's current priority; the tuple
         heap keeps stale entries, dropped when popped. *)
      let best = Array.make capacity max_int in
      let popped = Array.make capacity false in
      List.iter
        (fun (k, p) ->
          let k = k mod capacity in
          if (not popped.(k)) && p < best.(k) then begin
            best.(k) <- p;
            H.add lazy_heap (p, k)
          end;
          if not popped.(k) then IH.push ih k p)
        ops;
      let rec drain acc =
        match IH.pop_min ih with
        | -1 -> List.rev acc
        | k -> drain (k :: acc)
      in
      let indexed_order = drain [] in
      let rec drain_lazy acc =
        match H.pop_min lazy_heap with
        | None -> List.rev acc
        | Some (_, k) ->
          if popped.(k) then drain_lazy acc
          else begin
            popped.(k) <- true;
            drain_lazy (k :: acc)
          end
      in
      let lazy_order = drain_lazy [] in
      indexed_order = lazy_order)

(* After a run of pushes, pop_min yields (priority, key) pairs in
   non-decreasing lexicographic order and each key at most once. *)
let prop_sorted_drain =
  QCheck.Test.make ~count:300 ~name:"pop_min is sorted and duplicate-free"
    QCheck.(small_list (pair (int_bound 15) (int_bound 50)))
    (fun ops ->
      let h = IH.create 16 in
      List.iter (fun (k, p) -> IH.push h k p) ops;
      let rec drain acc =
        match IH.min_key h with
        | -1 -> List.rev acc
        | k ->
          let p = IH.priority h k in
          let k' = IH.pop_min h in
          if k' <> k then failwith "min_key / pop_min disagree";
          drain ((p, k) :: acc)
      in
      let drained = drain [] in
      let keys = List.map snd drained in
      List.sort_uniq compare keys = List.sort compare keys
      && List.sort compare drained = drained)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "drain order with ties" `Quick test_order_and_ties;
    Alcotest.test_case "decrease_key" `Quick test_decrease_key;
    Alcotest.test_case "duplicate insert rejected" `Quick
      test_insert_duplicate_rejected;
    Alcotest.test_case "push insert/decrease/no-op" `Quick test_push_semantics;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_matches_lazy_heap;
    QCheck_alcotest.to_alcotest prop_sorted_drain;
  ]
