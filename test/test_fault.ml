module E = Csap_dsim.Engine
module F = Csap_dsim.Fault
module T = Csap_dsim.Trace
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

type ping = Ping of int

let all_handlers eng n f =
  for v = 0 to n - 1 do
    E.set_handler eng v (f v)
  done

(* ---- plan construction and validation -------------------------------- *)

let test_plan_validation () =
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> F.seeded ~loss:1.0 7);
  bad (fun () -> F.seeded ~loss:(-0.1) 7);
  bad (fun () -> F.seeded ~dup:1.5 7);
  bad (fun () -> F.seeded ~dup:nan 7);
  bad (fun () ->
      F.seeded
        ~outages:[ { F.edge = None; from_time = 2.0; until_time = 1.0 } ]
        7);
  bad (fun () ->
      F.seeded
        ~outages:[ { F.edge = None; from_time = -1.0; until_time = 1.0 } ]
        7);
  bad (fun () -> F.seeded ~crashes:[ { F.vertex = 0; at = 3.0; restart = 3.0 } ] 7);
  bad (fun () ->
      F.seeded ~crashes:[ { F.vertex = 0; at = 1.0; restart = infinity } ] 7);
  (* Well-formed plans build. *)
  ignore (F.seeded ~loss:0.5 ~dup:1.0 7);
  ignore (F.seeded 7)

let test_seeded_deterministic () =
  let p1 = F.seeded ~loss:0.3 ~dup:0.3 42 in
  let p2 = F.seeded ~loss:0.3 ~dup:0.3 42 in
  let p3 = F.seeded ~loss:0.3 ~dup:0.3 43 in
  let sample (p : F.plan) =
    List.init 200 (fun i ->
        p.F.disposition ~edge_id:(i mod 5) ~dir:(i mod 2) ~nth:i ~now:0.0)
  in
  Alcotest.(check bool) "same seed, same fates" true (sample p1 = sample p2);
  Alcotest.(check bool) "different seed, different fates" false
    (sample p1 = sample p3);
  let fates = sample p1 in
  Alcotest.(check bool) "a 0.3/0.3 plan drops something" true
    (List.mem F.Drop fates);
  Alcotest.(check bool) "a 0.3/0.3 plan duplicates something" true
    (List.exists (function F.Duplicate _ -> true | _ -> false) fates);
  List.iter
    (function
      | F.Duplicate u ->
        Alcotest.(check bool) "dup fraction in (0,1]" true (u > 0.0 && u <= 1.0)
      | _ -> ())
    fates

(* ---- zero-fault plan is bit-identical -------------------------------- *)

let test_none_bit_identical () =
  let g = Gen.grid 4 4 ~w:6 in
  let r, tr =
    T.with_collector (fun () ->
        Csap.Flood.run ~delay:(Csap_dsim.Delay.seeded 5) g ~source:0)
  in
  let r', tr' =
    T.with_collector (fun () ->
        Csap.Flood.run ~delay:(Csap_dsim.Delay.seeded 5) ~faults:F.none g
          ~source:0)
  in
  Alcotest.(check bool) "same measures" true
    (r.Csap.Flood.measures = r'.Csap.Flood.measures);
  Alcotest.(check bool) "same trace" true
    (T.equal (List.hd tr) (List.hd tr'))

let prop_none_bit_identical =
  QCheck.Test.make ~count:30
    ~name:"Fault.none run = fault-free run (measures and arrivals)"
    (Gen_qcheck.graph_and_vertex ~max_n:16 ())
    (fun (g, source) ->
      let delay () = Csap_dsim.Delay.seeded (G.n g + source) in
      let r = Csap.Flood.run ~delay:(delay ()) g ~source in
      let r' = Csap.Flood.run ~delay:(delay ()) ~faults:F.none g ~source in
      r.Csap.Flood.measures = r'.Csap.Flood.measures
      && r.Csap.Flood.arrival = r'.Csap.Flood.arrival)

(* ---- loss, outage, duplication at the engine level ------------------- *)

let drop_all =
  F.make ~name:"drop-all" (fun ~edge_id:_ ~dir:_ ~nth:_ ~now:_ -> F.Drop)

let test_loss_pays_but_never_arrives () =
  let g = Gen.path 2 ~w:4 in
  let eng = E.create ~faults:drop_all g in
  let got = ref 0 in
  all_handlers eng 2 (fun _ ~src:_ (Ping _) -> incr got);
  E.schedule eng ~delay:0.0 (fun () ->
      E.send eng ~src:0 ~dst:1 (Ping 1);
      E.send eng ~src:0 ~dst:1 (Ping 2));
  ignore (E.run eng);
  Alcotest.(check int) "nothing delivered" 0 !got;
  let m = E.metrics eng in
  Alcotest.(check int) "dropped sends still pay comm" 8
    m.Csap_dsim.Metrics.weighted_comm;
  Alcotest.(check int) "dropped sends still count" 2
    m.Csap_dsim.Metrics.messages;
  Alcotest.(check (float 1e-9)) "no delivery, no time" 0.0
    m.Csap_dsim.Metrics.last_delivery_time

let test_outage_window () =
  (* Edge 0 blacked out during [2, 5): a message at t=0 passes, one at
     t=3 is lost, one at t=6 passes. *)
  let g = Gen.path 2 ~w:1 in
  let plan =
    F.seeded
      ~outages:[ { F.edge = Some 0; from_time = 2.0; until_time = 5.0 } ]
      0
  in
  let eng = E.create ~faults:plan g in
  let got = ref [] in
  all_handlers eng 2 (fun _ ~src:_ (Ping k) -> got := k :: !got);
  List.iter
    (fun (at, k) ->
      E.schedule eng ~delay:at (fun () -> E.send eng ~src:0 ~dst:1 (Ping k)))
    [ (0.0, 1); (3.0, 2); (6.0, 3) ];
  ignore (E.run eng);
  Alcotest.(check (list int)) "only the in-window send lost" [ 3; 1 ] !got

let test_duplicate_delivers_twice_costs_once () =
  let g = Gen.path 2 ~w:4 in
  let plan =
    F.make ~name:"dup-all" (fun ~edge_id:_ ~dir:_ ~nth:_ ~now:_ ->
        F.Duplicate 0.25)
  in
  let eng = E.create ~faults:plan g in
  let got = ref [] in
  all_handlers eng 2 (fun _ ~src:_ (Ping k) ->
      got := (k, E.now eng) :: !got);
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 9));
  ignore (E.run eng);
  (match List.rev !got with
  | [ (9, t1); (9, t2) ] ->
    (* Exact delay model: original at w = 4. The copy's own delay is
       0.25 * 4 = 1, but the per-directed-edge FIFO clamp forbids it
       overtaking the original, so it lands at t = 4 right behind it. *)
    Alcotest.(check (float 1e-9)) "original at w" 4.0 t1;
    Alcotest.(check (float 1e-9)) "copy clamped behind the original" 4.0 t2
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l));
  let m = E.metrics eng in
  Alcotest.(check int) "the network's copy is free" 4
    m.Csap_dsim.Metrics.weighted_comm;
  Alcotest.(check int) "one protocol message" 1 m.Csap_dsim.Metrics.messages

(* ---- crash-restart at the engine level ------------------------------- *)

let test_crash_restart () =
  let g = Gen.path 3 ~w:2 in
  let plan =
    F.seeded ~crashes:[ { F.vertex = 1; at = 3.0; restart = 10.0 } ] 0
  in
  let eng = E.create ~faults:plan g in
  let got = ref [] in
  let restarted = ref [] in
  all_handlers eng 3 (fun v ~src:_ (Ping k) -> got := (v, k) :: !got);
  E.set_restart_handler eng 1 (fun () ->
      restarted := E.now eng :: !restarted);
  (* In flight across the crash: sent at t=2, would arrive at t=4 while 1
     is down — dropped. *)
  E.schedule eng ~delay:2.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 1));
  (* Sent while down (t=5): dropped at send, and free (the sender is the
     crashed vertex itself for the second one). *)
  E.schedule eng ~delay:5.0 (fun () ->
      E.send eng ~src:0 ~dst:1 (Ping 2);
      Alcotest.(check bool) "down during window" true (E.is_down eng 1);
      E.send eng ~src:1 ~dst:2 (Ping 3));
  (* After restart (t=11): delivered. *)
  E.schedule eng ~delay:11.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 4));
  ignore (E.run eng);
  Alcotest.(check (list (pair int int))) "only the post-restart message"
    [ (1, 4) ] !got;
  Alcotest.(check (list (float 1e-9))) "restart handler ran at restart"
    [ 10.0 ] !restarted;
  Alcotest.(check bool) "back up" false (E.is_down eng 1);
  let m = E.metrics eng in
  (* Ping 1 and Ping 2 pay w=2 each, Ping 3 is free (down sender),
     Ping 4 pays 2. *)
  Alcotest.(check int) "down sender's sends are free" 6
    m.Csap_dsim.Metrics.weighted_comm

let test_reset_clears_fault_state () =
  (* Engine reused faulty-then-clean: the clean trial must be untouched
     by the previous plan — same metrics and trace as a fresh engine. *)
  let g = Gen.grid 3 3 ~w:4 in
  let faulty =
    F.seeded ~loss:0.2 ~dup:0.3
      ~crashes:[ { F.vertex = 4; at = 1.0; restart = 2.0 } ]
      77
  in
  let (reused, fresh), traces =
    T.with_collector (fun () ->
        let engine = Csap.Flood.make_engine g in
        let _faulty_run =
          Csap.Flood.run ~delay:(Csap_dsim.Delay.seeded 3) ~faults:faulty
            ~engine g ~source:0
        in
        let reused =
          Csap.Flood.run ~delay:(Csap_dsim.Delay.seeded 3) ~engine g ~source:0
        in
        let fresh =
          Csap.Flood.run ~delay:(Csap_dsim.Delay.seeded 3) g ~source:0
        in
        (reused, fresh))
  in
  Alcotest.(check bool) "clean-after-faulty measures = fresh clean" true
    (reused.Csap.Flood.measures = fresh.Csap.Flood.measures);
  Alcotest.(check bool) "arrivals too" true
    (reused.Csap.Flood.arrival = fresh.Csap.Flood.arrival);
  (* Two engines were created (reused + fresh); the reused engine's trace
     holds the clean run only (reset clears it) and must equal the fresh
     engine's. *)
  match traces with
  | [ reused_tr; fresh_tr ] ->
    Alcotest.(check bool) "reused engine's clean trace = fresh trace" true
      (T.equal reused_tr fresh_tr)
  | l -> Alcotest.failf "expected 2 traces, got %d" (List.length l)

(* ---- faulty replay --------------------------------------------------- *)

let test_faulty_replay () =
  (* A faulty execution replays exactly: recorded delays + same plan. *)
  let g = Gen.grid 3 3 ~w:5 in
  let plan () = F.seeded ~loss:0.15 ~dup:0.2 9 in
  let delay () = Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 13) in
  let r, traces =
    T.with_collector (fun () ->
        Csap.Flood.run_reliable ~delay:(delay ()) ~faults:(plan ()) g
          ~source:0)
  in
  let tr = List.hd traces in
  let r', traces' =
    T.with_collector (fun () ->
        Csap.Flood.run_reliable ~delay:(T.recorded tr) ~faults:(plan ()) g
          ~source:0)
  in
  Alcotest.(check bool) "identical trace" true
    (T.equal tr (List.hd traces'));
  Alcotest.(check bool) "identical measures" true
    (r.Csap.Flood.result.Csap.Flood.measures
    = r'.Csap.Flood.result.Csap.Flood.measures);
  Alcotest.(check int) "identical retransmissions"
    r.Csap.Flood.retransmissions r'.Csap.Flood.retransmissions

(* ---- exactly-once FIFO through the shim (qcheck) --------------------- *)

(* Every vertex streams numbered payloads to every neighbour over the
   shim while the plan drops/duplicates/blacks out; the application must
   see each payload exactly once, in per-sender FIFO order. *)
let prop_exactly_once_fifo =
  QCheck.Test.make ~count:40
    ~name:"shim delivers exactly once, per-edge FIFO, under loss+dup+outage"
    QCheck.(
      pair
        (Gen_qcheck.connected_graph_gen ~max_n:10 ~max_wmax:6 ())
        (int_bound 10_000))
    (fun (g, seed) ->
      let n = G.n g in
      let per_link = 5 in
      let plan =
        Csap_dsim.Fault.seeded ~loss:0.25 ~dup:0.2
          ~outages:
            [ { F.edge = Some 0; from_time = 0.5; until_time = 3.5 } ]
          seed
      in
      let net =
        Csap_dsim.Net.reliable ~delay:(Csap_dsim.Delay.seeded seed)
          ~faults:plan g
      in
      let got = Hashtbl.create 64 in
      for v = 0 to n - 1 do
        net.Csap_dsim.Net.set_handler v (fun ~src k ->
            let prev =
              try Hashtbl.find got (src, v) with Not_found -> []
            in
            Hashtbl.replace got (src, v) (k :: prev))
      done;
      net.Csap_dsim.Net.schedule ~delay:0.0 (fun () ->
          for v = 0 to n - 1 do
            G.iter_neighbors g v (fun u _ _ ->
                for k = 0 to per_link - 1 do
                  net.Csap_dsim.Net.send ~src:v ~dst:u k
                done)
          done);
      ignore (net.Csap_dsim.Net.run ());
      let expected = List.init per_link (fun i -> per_link - 1 - i) in
      let ok = ref true in
      for v = 0 to n - 1 do
        G.iter_neighbors g v (fun u _ _ ->
            let l = try Hashtbl.find got (v, u) with Not_found -> [] in
            if l <> expected then ok := false)
      done;
      !ok)

let prop_clean_shim_never_retransmits =
  QCheck.Test.make ~count:30
    ~name:"fault-free shim: no retransmissions, delivered = sends"
    (Gen_qcheck.graph_and_vertex ~max_n:14 ())
    (fun (g, source) ->
      let r =
        Csap.Flood.run_reliable ~delay:(Csap_dsim.Delay.seeded source) g
          ~source
      in
      r.Csap.Flood.retransmissions = 0 && r.Csap.Flood.restarts = 0)

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "seeded plans are deterministic" `Quick
      test_seeded_deterministic;
    Alcotest.test_case "Fault.none is bit-identical" `Quick
      test_none_bit_identical;
    Alcotest.test_case "loss pays but never arrives" `Quick
      test_loss_pays_but_never_arrives;
    Alcotest.test_case "outage window drops in-window sends" `Quick
      test_outage_window;
    Alcotest.test_case "duplicate delivers twice, costs once" `Quick
      test_duplicate_delivers_twice_costs_once;
    Alcotest.test_case "crash-restart: down window, epochs, handler" `Quick
      test_crash_restart;
    Alcotest.test_case "reset clears fault state (faulty-then-clean reuse)"
      `Quick test_reset_clears_fault_state;
    Alcotest.test_case "faulty execution replays exactly" `Quick
      test_faulty_replay;
    QCheck_alcotest.to_alcotest prop_none_bit_identical;
    QCheck_alcotest.to_alcotest prop_exactly_once_fifo;
    QCheck_alcotest.to_alcotest prop_clean_shim_never_retransmits;
  ]
