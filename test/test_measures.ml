(* The measures layer: ratio edge cases, the last-delivery-vs-completion
   split in [of_metrics], and bit-identity between the measures the
   bound-check sweep (figure BD) reports and a direct
   [Protocol.execute] run of the same instance. *)

module M = Csap.Measures
module Metrics = Csap_dsim.Metrics
module P = Csap.Protocol
module BC = Csap.Bound_check

let test_ratio_edge_cases () =
  Alcotest.(check (float 1e-9)) "plain quotient" 2.0
    (M.ratio ~measured:6.0 ~bound:3.0);
  Alcotest.(check bool) "zero bound -> nan" true
    (Float.is_nan (M.ratio ~measured:6.0 ~bound:0.0));
  Alcotest.(check bool) "negative bound -> nan" true
    (Float.is_nan (M.ratio ~measured:6.0 ~bound:(-3.0)));
  Alcotest.(check bool) "nan bound -> nan" true
    (Float.is_nan (M.ratio ~measured:6.0 ~bound:Float.nan));
  Alcotest.(check bool) "nan measured propagates" true
    (Float.is_nan (M.ratio ~measured:Float.nan ~bound:3.0));
  Alcotest.(check (float 1e-9)) "zero measured is fine" 0.0
    (M.ratio ~measured:0.0 ~bound:3.0)

(* The paper's time measure is the last message *delivery*: a local
   timer scheduled past it (completion_time) must not be charged. *)
let test_of_metrics_split () =
  let m = Metrics.create () in
  m.Metrics.weighted_comm <- 7;
  m.Metrics.messages <- 3;
  m.Metrics.last_delivery_time <- 5.0;
  m.Metrics.completion_time <- 9.0;
  let ms = M.of_metrics m in
  Alcotest.(check int) "comm" 7 ms.M.comm;
  Alcotest.(check int) "messages" 3 ms.M.messages;
  Alcotest.(check (float 1e-9)) "time is last delivery, not completion" 5.0
    ms.M.time

let test_add () =
  let a = { M.comm = 2; time = 1.5; messages = 4 }
  and b = { M.comm = 3; time = 2.5; messages = 1 } in
  let s = M.add a b in
  Alcotest.(check int) "comm" 5 s.M.comm;
  Alcotest.(check (float 1e-9)) "time" 4.0 s.M.time;
  Alcotest.(check int) "messages" 5 s.M.messages;
  Alcotest.(check int) "zero is neutral" a.M.comm (M.add a M.zero).M.comm

(* Figure BD and a direct registry run must agree bit-for-bit: the
   sweep harness goes through the same [Protocol.execute] with the same
   default configuration. *)
let test_bd_measures_bit_identical () =
  List.iter
    (fun name ->
      let entry = P.find_exn name in
      let _, instances = BC.sweep entry in
      let label, g = List.hd instances in
      let bd = BC.measure entry g in
      let direct = (P.execute entry (P.Run.make g)).P.Outcome.measures in
      Alcotest.(check int)
        (Printf.sprintf "%s %s comm" name label)
        direct.M.comm bd.BC.measures.M.comm;
      Alcotest.(check bool)
        (Printf.sprintf "%s %s time bit-identical" name label)
        true
        (Int64.equal
           (Int64.bits_of_float direct.M.time)
           (Int64.bits_of_float bd.BC.measures.M.time));
      Alcotest.(check int)
        (Printf.sprintf "%s %s messages" name label)
        direct.M.messages bd.BC.measures.M.messages)
    [ "flood"; "mst-ghs"; "global-sum"; "sync-alpha"; "lower-bound-gn" ]

let suite =
  [
    Alcotest.test_case "ratio edge cases" `Quick test_ratio_edge_cases;
    Alcotest.test_case "of_metrics last-delivery split" `Quick
      test_of_metrics_split;
    Alcotest.test_case "add / zero" `Quick test_add;
    Alcotest.test_case "BD measures = direct execute (bit identity)" `Quick
      test_bd_measures_bit_identical;
  ]
