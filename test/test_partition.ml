module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Partition = Csap_graph.Partition

(* Structural invariants shared by both partitioners: every vertex in a
   block in range, sizes summing to n, the cut being exactly the edges
   with endpoints in different blocks, in ascending id order. *)
let check_partition name g part ~k =
  Alcotest.(check int) (name ^ " k") k (Partition.k part);
  Alcotest.(check int) (name ^ " graph id") (G.id g) (Partition.graph_id part);
  let sizes = Array.make k 0 in
  for v = 0 to G.n g - 1 do
    let p = Partition.part_of part v in
    Alcotest.(check bool) (name ^ " block in range") true (p >= 0 && p < k);
    sizes.(p) <- sizes.(p) + 1
  done;
  Array.iteri
    (fun p s -> Alcotest.(check int) (name ^ " size") s (Partition.size part p))
    sizes;
  Alcotest.(check int)
    (name ^ " sizes sum")
    (G.n g)
    (Array.fold_left ( + ) 0 sizes);
  let expected_cut = ref [] in
  for id = G.m g - 1 downto 0 do
    let e = G.edge g id in
    if Partition.part_of part e.G.u <> Partition.part_of part e.G.v then
      expected_cut := id :: !expected_cut
  done;
  Alcotest.(check (array int))
    (name ^ " cut edges")
    (Array.of_list !expected_cut)
    (Partition.cut_edges part);
  Alcotest.(check int)
    (name ^ " cut size")
    (List.length !expected_cut)
    (Partition.cut_size part);
  let mcw =
    List.fold_left
      (fun acc id -> min acc (G.edge g id).G.w)
      max_int !expected_cut
  in
  Alcotest.(check int)
    (name ^ " min cut weight")
    mcw
    (Partition.min_cut_weight g part)

let test_striped_grid () =
  let g = Gen.grid 4 5 ~w:3 in
  List.iter
    (fun k -> check_partition "striped" g (Partition.striped g ~k) ~k)
    [ 1; 2; 3; 4; 20 ]

let test_bfs_grid () =
  let g = Gen.grid 4 5 ~w:3 in
  List.iter
    (fun k -> check_partition "bfs" g (Partition.bfs g ~k) ~k)
    [ 1; 2; 3; 4; 20 ]

let test_single_block_has_no_cut () =
  let g = Gen.complete 6 ~w:2 in
  let part = Partition.striped g ~k:1 in
  Alcotest.(check int) "cut" 0 (Partition.cut_size part);
  Alcotest.(check int) "min cut weight" max_int
    (Partition.min_cut_weight g part)

let test_k_validated () =
  let g = Gen.path 4 ~w:1 in
  List.iter
    (fun (label, k) ->
      match Partition.striped g ~k with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "striped accepted %s" label)
    [ ("k=0", 0); ("k=-1", -1); ("k=n+1", 5) ]

let test_graph_identity_validated () =
  let g = Gen.path 5 ~w:1 in
  let other = Gen.path 5 ~w:1 in
  let part = Partition.striped g ~k:2 in
  Alcotest.(check bool)
    "wrong graph rejected" true
    (match Partition.min_cut_weight other part with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The BFS partitioner must beat (or match) striping on a family whose
   vertex ids carry no locality: a grid with ids scrambled would be the
   real case, but even on the row-major grid BFS must stay sane. *)
let prop_partitions_valid =
  QCheck.Test.make ~count:60 ~name:"both partitioners produce valid partitions"
    (QCheck.pair
       (Gen_qcheck.connected_graph_gen ())
       QCheck.(int_range 1 6))
    (fun (g, k) ->
      let k = min k (G.n g) in
      let s = Partition.striped g ~k and b = Partition.bfs g ~k in
      let valid part =
        let sizes = Array.make k 0 in
        for v = 0 to G.n g - 1 do
          let p = Partition.part_of part v in
          if p < 0 || p >= k then QCheck.Test.fail_report "block out of range";
          sizes.(p) <- sizes.(p) + 1
        done;
        Array.fold_left ( + ) 0 sizes = G.n g
        && Array.for_all
             (fun id ->
               let e = G.edge g id in
               Partition.part_of part e.G.u <> Partition.part_of part e.G.v)
             (Partition.cut_edges part)
      in
      valid s && valid b)

let suite =
  [
    Alcotest.test_case "striped on a grid" `Quick test_striped_grid;
    Alcotest.test_case "bfs on a grid" `Quick test_bfs_grid;
    Alcotest.test_case "single block has no cut" `Quick
      test_single_block_has_no_cut;
    Alcotest.test_case "k out of range rejected" `Quick test_k_validated;
    Alcotest.test_case "graph identity validated" `Quick
      test_graph_identity_validated;
    QCheck_alcotest.to_alcotest prop_partitions_valid;
  ]
