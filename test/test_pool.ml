(* The reusable domain pool: every task index runs exactly once, worker
   indices stay in range, exceptions surface after the join, busy
   counters accumulate, and a [run] from inside a worker domain degrades
   to an inline loop instead of nest-spawning. *)

module Pool = Csap_pool

let test_each_task_once () =
  let pool = Pool.create ~domains:4 () in
  let tasks = 100 in
  let hits = Array.init tasks (fun _ -> Atomic.make 0) in
  Pool.run pool ~tasks (fun ~worker:_ i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "task %d" i) 1 (Atomic.get c))
    hits

let test_worker_indices_valid () =
  let pool = Pool.create ~domains:3 () in
  let tasks = 64 in
  let workers = Array.make tasks (-1) in
  Pool.run pool ~tasks (fun ~worker i -> workers.(i) <- worker);
  Array.iter
    (fun w ->
      Alcotest.(check bool)
        "0 <= worker < domains" true
        (w >= 0 && w < Pool.domains pool))
    workers

let test_exception_propagates () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.check_raises "re-raised after join" (Failure "boom") (fun () ->
      Pool.run pool ~tasks:8 (fun ~worker:_ i ->
          if i = 3 then failwith "boom"))

let test_busy_ms_accumulates_and_resets () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check int) "one slot per worker" 2
    (Array.length (Pool.busy_ms pool));
  Pool.run pool ~tasks:8 (fun ~worker:_ _ ->
      ignore (Sys.opaque_identity (Array.init 10_000 Fun.id)));
  Array.iter
    (fun b -> Alcotest.(check bool) "non-negative" true (b >= 0.0))
    (Pool.busy_ms pool);
  Alcotest.(check bool) "some busy time recorded" true
    (Array.fold_left ( +. ) 0.0 (Pool.busy_ms pool) >= 0.0);
  Pool.reset_stats pool;
  Array.iter
    (fun b -> Alcotest.(check (float 0.0)) "reset to zero" 0.0 b)
    (Pool.busy_ms pool)

let test_inline_from_worker_domain () =
  (* Inside a spawned domain the pool must not spawn again: the run
     degrades to an inline loop on the calling domain (worker 0). *)
  let d =
    Domain.spawn (fun () ->
        let pool = Pool.create ~domains:4 () in
        let hits = Array.make 32 0 in
        let on_zero = ref true in
        Pool.run pool ~tasks:32 (fun ~worker i ->
            if worker <> 0 then on_zero := false;
            hits.(i) <- hits.(i) + 1);
        !on_zero && Array.for_all (fun c -> c = 1) hits)
  in
  Alcotest.(check bool) "inline fallback ran every task on worker 0" true
    (Domain.join d)

let test_validation_and_edge_cases () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Csap_pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  let pool = Pool.create ~domains:2 () in
  Alcotest.check_raises "negative tasks"
    (Invalid_argument "Csap_pool.run: negative tasks") (fun () ->
      Pool.run pool ~tasks:(-1) (fun ~worker:_ _ -> ()));
  (* Zero tasks: a no-op that must not call f. *)
  Pool.run pool ~tasks:0 (fun ~worker:_ _ -> Alcotest.fail "called on 0 tasks");
  Alcotest.(check int) "domains accessor" 2 (Pool.domains pool);
  Alcotest.(check bool) "default pool is shared" true
    (Pool.default () == Pool.default ())

let suite =
  [
    Alcotest.test_case "every task runs exactly once" `Quick
      test_each_task_once;
    Alcotest.test_case "worker indices in range" `Quick
      test_worker_indices_valid;
    Alcotest.test_case "task exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "busy counters accumulate and reset" `Quick
      test_busy_ms_accumulates_and_resets;
    Alcotest.test_case "inline fallback off the main domain" `Quick
      test_inline_from_worker_domain;
    Alcotest.test_case "validation and edge cases" `Quick
      test_validation_and_edge_cases;
  ]
