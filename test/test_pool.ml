(* The reusable domain pool: every task index runs exactly once, worker
   indices stay in range, exceptions surface after the join, busy
   counters accumulate, and a [run] from inside a worker domain degrades
   to an inline loop instead of nest-spawning. *)

module Pool = Csap_pool

let test_each_task_once () =
  let pool = Pool.create ~domains:4 () in
  let tasks = 100 in
  let hits = Array.init tasks (fun _ -> Atomic.make 0) in
  Pool.run pool ~tasks (fun ~worker:_ i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "task %d" i) 1 (Atomic.get c))
    hits

let test_worker_indices_valid () =
  let pool = Pool.create ~domains:3 () in
  let tasks = 64 in
  let workers = Array.make tasks (-1) in
  Pool.run pool ~tasks (fun ~worker i -> workers.(i) <- worker);
  Array.iter
    (fun w ->
      Alcotest.(check bool)
        "0 <= worker < domains" true
        (w >= 0 && w < Pool.domains pool))
    workers

let test_exception_propagates () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.check_raises "re-raised after join" (Failure "boom") (fun () ->
      Pool.run pool ~tasks:8 (fun ~worker:_ i ->
          if i = 3 then failwith "boom"))

let test_busy_ms_accumulates_and_resets () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check int) "one slot per worker" 2
    (Array.length (Pool.busy_ms pool));
  Pool.run pool ~tasks:8 (fun ~worker:_ _ ->
      ignore (Sys.opaque_identity (Array.init 10_000 Fun.id)));
  Array.iter
    (fun b -> Alcotest.(check bool) "non-negative" true (b >= 0.0))
    (Pool.busy_ms pool);
  Alcotest.(check bool) "some busy time recorded" true
    (Array.fold_left ( +. ) 0.0 (Pool.busy_ms pool) >= 0.0);
  Pool.reset_stats pool;
  Array.iter
    (fun b -> Alcotest.(check (float 0.0)) "reset to zero" 0.0 b)
    (Pool.busy_ms pool)

let test_inline_from_worker_domain () =
  (* Inside a spawned domain the pool must not spawn again: the run
     degrades to an inline loop on the calling domain (worker 0). *)
  let d =
    Domain.spawn (fun () ->
        let pool = Pool.create ~domains:4 () in
        let hits = Array.make 32 0 in
        let on_zero = ref true in
        Pool.run pool ~tasks:32 (fun ~worker i ->
            if worker <> 0 then on_zero := false;
            hits.(i) <- hits.(i) + 1);
        !on_zero && Array.for_all (fun c -> c = 1) hits)
  in
  Alcotest.(check bool) "inline fallback ran every task on worker 0" true
    (Domain.join d)

let test_validation_and_edge_cases () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Csap_pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  let pool = Pool.create ~domains:2 () in
  Alcotest.check_raises "negative tasks"
    (Invalid_argument "Csap_pool.run: negative tasks") (fun () ->
      Pool.run pool ~tasks:(-1) (fun ~worker:_ _ -> ()));
  (* Zero tasks: a no-op that must not call f. *)
  Pool.run pool ~tasks:0 (fun ~worker:_ _ -> Alcotest.fail "called on 0 tasks");
  Alcotest.(check int) "domains accessor" 2 (Pool.domains pool);
  Alcotest.(check bool) "default pool is shared" true
    (Pool.default () == Pool.default ())

(* ------------------------------------------------------------------ *)
(* Bqueue: the bounded blocking queue under the farm's worker domains. *)

let test_bqueue_fifo_and_bounds () =
  let q = Pool.Bqueue.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Pool.Bqueue.capacity q);
  Alcotest.(check bool) "push 1" true (Pool.Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Pool.Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3" true (Pool.Bqueue.try_push q 3);
  (* Full: the backpressure signal. *)
  Alcotest.(check bool) "push on full rejected" false
    (Pool.Bqueue.try_push q 4);
  Alcotest.(check int) "length" 3 (Pool.Bqueue.length q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Pool.Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Pool.Bqueue.try_push q 4);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Pool.Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Pool.Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 4" (Some 4) (Pool.Bqueue.pop q)

let test_bqueue_close_drains () =
  let q = Pool.Bqueue.create ~capacity:4 () in
  Pool.Bqueue.push q 1;
  Pool.Bqueue.push q 2;
  Pool.Bqueue.close q;
  Pool.Bqueue.close q;  (* idempotent *)
  Alcotest.(check bool) "closed" true (Pool.Bqueue.is_closed q);
  Alcotest.(check bool) "no pushes after close" false
    (Pool.Bqueue.try_push q 3);
  Alcotest.check_raises "blocking push after close raises"
    (Invalid_argument "Bqueue.push: closed") (fun () ->
      Pool.Bqueue.push q 3);
  (* Queued elements still drain; then pops signal shutdown. *)
  Alcotest.(check (option int)) "drain 1" (Some 1) (Pool.Bqueue.pop q);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Pool.Bqueue.pop q);
  Alcotest.(check (option int)) "drained" None (Pool.Bqueue.pop q);
  Alcotest.(check (option int)) "still drained" None (Pool.Bqueue.pop q)

let test_bqueue_cross_domain () =
  (* One producer pushing a tight stream through a tiny queue into two
     consumer domains: every element arrives exactly once, and the
     bound forces the producer to block (backpressure) rather than
     grow a backlog. *)
  let total = 200 in
  let q = Pool.Bqueue.create ~capacity:2 () in
  let seen = Array.make total (Atomic.make 0) in
  Array.iteri (fun i _ -> seen.(i) <- Atomic.make 0) seen;
  let consumer () =
    let rec loop () =
      match Pool.Bqueue.pop q with
      | None -> ()
      | Some i ->
        Atomic.incr seen.(i);
        loop ()
    in
    loop ()
  in
  let d1 = Domain.spawn consumer and d2 = Domain.spawn consumer in
  for i = 0 to total - 1 do
    Pool.Bqueue.push q i
  done;
  Pool.Bqueue.close q;
  Domain.join d1;
  Domain.join d2;
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "element %d delivered once" i)
        1 (Atomic.get c))
    seen;
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Bqueue.create: capacity < 1") (fun () ->
      ignore (Pool.Bqueue.create ~capacity:0 ()))

let suite =
  [
    Alcotest.test_case "every task runs exactly once" `Quick
      test_each_task_once;
    Alcotest.test_case "worker indices in range" `Quick
      test_worker_indices_valid;
    Alcotest.test_case "task exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "busy counters accumulate and reset" `Quick
      test_busy_ms_accumulates_and_resets;
    Alcotest.test_case "inline fallback off the main domain" `Quick
      test_inline_from_worker_domain;
    Alcotest.test_case "validation and edge cases" `Quick
      test_validation_and_edge_cases;
    Alcotest.test_case "bqueue FIFO, bounds and backpressure signal" `Quick
      test_bqueue_fifo_and_bounds;
    Alcotest.test_case "bqueue close drains then signals shutdown" `Quick
      test_bqueue_close_drains;
    Alcotest.test_case "bqueue delivers once across domains" `Quick
      test_bqueue_cross_domain;
  ]
