(* The PR's acceptance tests: (1) the packed delivery hot path performs
   (essentially) zero minor-heap allocation per delivered message, and
   (2) the packed SOA queue is bit-identical to the retained boxed
   oracle across graphs, delay models, faults and seeds. The boxed
   queue is used here as the oracle — exactly the use its alert
   protects. *)
[@@@alert "-boxed_oracle"]

module E = Csap_dsim.Engine
module D = Csap_dsim.Delay
module F = Csap_dsim.Fault
module M = Csap_dsim.Metrics
module Trace = Csap_dsim.Trace
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

(* Ping-pong [n] messages over one edge and return the minor-heap words
   allocated by [E.run]. The handlers are allocation-free themselves
   (int payload, int-ref countdown), so the delta is the engine's own
   per-message cost plus a small per-[run] constant ([Gc.quick_stat]
   snapshots, loop-local refs). *)
let pingpong_words queue n =
  let g = Gen.path 2 ~w:3 in
  let eng = E.create ~event_queue:queue g in
  let remaining = ref 0 in
  let install () =
    E.set_handler eng 0 (fun ~src:_ (_ : int) ->
        if !remaining > 0 then begin
          decr remaining;
          E.send eng ~src:0 ~dst:1 0
        end);
    E.set_handler eng 1 (fun ~src:_ (_ : int) ->
        if !remaining > 0 then begin
          decr remaining;
          E.send eng ~src:1 ~dst:0 0
        end)
  in
  let round k =
    install ();
    remaining := k;
    E.schedule eng ~delay:0.0 (fun () ->
        decr remaining;
        E.send eng ~src:0 ~dst:1 0);
    let before = Gc.minor_words () in
    ignore (E.run eng);
    let words = Gc.minor_words () -. before in
    (words, (E.metrics eng).M.messages)
  in
  (* Warm-up round: handler installation, queue growth, first-touch. *)
  ignore (round 64);
  E.reset eng;
  round n

let test_packed_send_path_alloc_free () =
  let n = 50_000 in
  let words, msgs = pingpong_words E.Packed n in
  Alcotest.(check int) "all messages delivered" n msgs;
  (* Zero words per message; the allowance covers the constant per-run
     overhead only (two [Gc.quick_stat] records, a handful of loop
     refs), NOT a per-message budget: 2048 words over 50k messages is
     0.04 words/message, far below one field of one box. *)
  Alcotest.(check bool)
    (Printf.sprintf "packed run allocates O(1), got %.0f words for %d msgs"
       words n)
    true
    (words < 2048.0)

let test_boxed_oracle_allocates () =
  (* Detector sanity: the same workload on the boxed oracle allocates
     per message (event record + heap slot), so a hot-path regression
     cannot hide behind a broken measurement. *)
  let n = 50_000 in
  let words, msgs = pingpong_words E.Boxed n in
  Alcotest.(check int) "all messages delivered" n msgs;
  Alcotest.(check bool)
    (Printf.sprintf "boxed run allocates per message, got %.2f words/msg"
       (words /. float_of_int n))
    true
    (words > 2.0 *. float_of_int n)

(* ---- retention audit ---------------------------------------------------- *)
(* Popped/cleared payload and closure slots must be nulled: a trial loop
   reusing one engine must not keep the previous trial's closures (and
   anything they capture) live. The probe is a large array reachable
   ONLY through queue-internal references — a timer closure and a
   delivery payload — watched through a [Weak] pointer while the engine
   itself stays reachable. This held for the packed SOA queue
   ([Event_queue.drop_min]/[clear] null their slots) and was a real leak
   in the boxed oracle's [Heap], whose [pop_min] left popped events —
   closures included — in the backing array. *)

let retention_probe queue =
  let g = Gen.path 2 ~w:2 in
  let eng : float array E.t = E.create ~event_queue:queue g in
  E.set_handler eng 0 (fun ~src:_ (_ : float array) -> ());
  E.set_handler eng 1 (fun ~src:_ (_ : float array) -> ());
  let w = Weak.create 1 in
  (* Inner scope so no stack slot of this frame keeps [big] alive. *)
  (let big = Array.make 4096 0.0 in
   Weak.set w 0 (Some big);
   (* The timer closure captures [big]; the delivery carries it as its
      payload. Both end up in queue slots and are popped by [run]. *)
   E.schedule eng ~delay:0.0 (fun () ->
       big.(0) <- 1.0;
       E.send eng ~src:0 ~dst:1 big));
  ignore (E.run eng);
  (eng, w)

let check_collected ~what w =
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) (what ^ " collectable") false (Weak.check w 0)

let test_packed_queue_releases_popped () =
  let eng, w = retention_probe E.Packed in
  (* No reset: popped slots alone must not retain the trial's data. *)
  check_collected ~what:"packed popped closure+payload" w;
  ignore (Sys.opaque_identity eng)

let test_boxed_queue_releases_popped () =
  let eng, w = retention_probe E.Boxed in
  check_collected ~what:"boxed popped closure+payload" w;
  ignore (Sys.opaque_identity eng)

let test_reset_releases_pending () =
  (* Events still queued (not popped) at [reset] time: [clear] must null
     them too. [~until:0.5] stops before the 1.0-delayed timer fires. *)
  List.iter
    (fun queue ->
      let g = Gen.path 2 ~w:2 in
      let eng : float array E.t = E.create ~event_queue:queue g in
      E.set_handler eng 0 (fun ~src:_ (_ : float array) -> ());
      E.set_handler eng 1 (fun ~src:_ (_ : float array) -> ());
      let w = Weak.create 1 in
      (let big = Array.make 4096 0.0 in
       Weak.set w 0 (Some big);
       E.schedule eng ~delay:1.0 (fun () -> big.(0) <- 1.0));
      ignore (E.run ~until:0.5 eng);
      E.reset eng;
      check_collected ~what:"pending closure after reset" w;
      ignore (Sys.opaque_identity eng))
    [ E.Packed; E.Boxed ]

let test_heap_pop_releases () =
  (* The raw generic heap: popped elements must leave no reference in
     the backing array (and growth must not pin an element as filler). *)
  let module H = Csap_graph.Heap in
  let h = H.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  let w = Weak.create 1 in
  (let big = Array.make 4096 0.0 in
   Weak.set w 0 (Some big);
   for i = 0 to 20 do
     H.add h (i, fun () -> ignore big.(0))
   done);
  for _ = 0 to 20 do
    ignore (H.pop_min h)
  done;
  check_collected ~what:"popped heap elements" w;
  ignore (Sys.opaque_identity h)

let test_metrics_alloc_snapshot () =
  (* [run] records its own GC footprint into the metrics. *)
  let g = Gen.path 2 ~w:1 in
  let eng = E.create ~event_queue:E.Boxed g in
  E.set_handler eng 0 (fun ~src:_ (_ : int) -> ());
  E.set_handler eng 1 (fun ~src:_ (_ : int) -> ());
  E.schedule eng ~delay:0.0 (fun () ->
      for _ = 1 to 10_000 do
        E.send eng ~src:0 ~dst:1 0
      done);
  ignore (E.run eng);
  let m = E.metrics eng in
  Alcotest.(check bool) "minor words recorded" true
    (m.M.alloc_minor_words > 10_000.0);
  Alcotest.(check bool) "promoted words non-negative" true
    (m.M.alloc_promoted_words >= 0.0);
  Alcotest.(check bool) "major collections non-negative" true
    (m.M.alloc_major_collections >= 0);
  E.reset eng;
  let m = E.metrics eng in
  Alcotest.(check (float 0.0)) "reset clears alloc" 0.0 m.M.alloc_minor_words

(* One full faulty traced execution; everything observable is returned
   so polymorphic equality compares packed vs boxed runs field for
   field. The alloc_* metrics are deliberately excluded — differing
   allocation is the point of the packed queue. *)
let execute queue ~gseed ~delay_ix ~fault_ix =
  let rng = Csap_graph.Rng.create (1000 + gseed) in
  let g = Gen.random_connected rng 18 ~extra_edges:24 ~wmax:9 in
  let delay =
    match delay_ix with
    | 0 -> D.Exact
    | 1 -> D.Scaled 0.5
    | 2 -> D.Near_zero
    | 3 -> D.seeded ((gseed * 7) + 1)
    | 4 -> D.Uniform (Csap_graph.Rng.create (gseed + 100))
    | _ -> D.Jitter (Csap_graph.Rng.create (gseed + 200))
  in
  let faults =
    match fault_ix with
    | 0 -> None
    | 1 -> Some (F.seeded ~loss:0.15 ~dup:0.15 (gseed + 3))
    | _ ->
      Some
        (F.seeded ~loss:0.05 ~dup:0.1
           ~crashes:
             [
               { F.vertex = 1; at = 2.0; restart = 9.0 };
               { F.vertex = 4; at = 5.0; restart = 30.0 };
             ]
           (gseed + 5))
  in
  let tr = Trace.create () in
  let eng = E.create ~delay ?faults ~event_queue:queue g in
  E.set_trace eng (Some tr);
  let seen = Array.make (G.n g) false in
  let log = ref [] in
  for v = 0 to G.n g - 1 do
    E.set_restart_handler eng v (fun () -> log := (-1, v, -1) :: !log);
    E.set_handler eng v (fun ~src k ->
        log := (v, src, k) :: !log;
        if not seen.(v) then begin
          seen.(v) <- true;
          G.iter_neighbors g v (fun u _ _ ->
              if u <> src then E.send eng ~src:v ~dst:u (k + 1))
        end)
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      seen.(0) <- true;
      G.iter_neighbors g 0 (fun u _ _ -> E.send eng ~src:0 ~dst:u 0));
  ignore (E.run ~max_events:200_000 eng);
  let m = E.metrics eng in
  ( List.rev !log,
    m.M.messages,
    m.M.weighted_comm,
    m.M.events,
    m.M.completion_time,
    m.M.last_delivery_time,
    Array.to_list (E.edge_traffic eng),
    Trace.to_jsonl tr )

let prop_packed_equals_boxed =
  QCheck.Test.make ~count:60
    ~name:"packed execution = boxed oracle (graphs x delays x faults)"
    QCheck.(
      triple (int_range 0 10_000) (int_range 0 5) (int_range 0 2))
    (fun (gseed, delay_ix, fault_ix) ->
      execute E.Packed ~gseed ~delay_ix ~fault_ix
      = execute E.Boxed ~gseed ~delay_ix ~fault_ix)

let suite =
  [
    Alcotest.test_case "packed send path allocates zero words/message"
      `Quick test_packed_send_path_alloc_free;
    Alcotest.test_case "boxed oracle allocates (detector sanity)" `Quick
      test_boxed_oracle_allocates;
    Alcotest.test_case "packed queue releases popped slots" `Quick
      test_packed_queue_releases_popped;
    Alcotest.test_case "boxed queue releases popped slots" `Quick
      test_boxed_queue_releases_popped;
    Alcotest.test_case "reset releases still-queued closures" `Quick
      test_reset_releases_pending;
    Alcotest.test_case "heap pop releases elements" `Quick
      test_heap_pop_releases;
    Alcotest.test_case "run records GC footprint in metrics" `Quick
      test_metrics_alloc_snapshot;
    QCheck_alcotest.to_alcotest prop_packed_equals_boxed;
  ]
