module TC = Csap_cover.Tree_cover
module C = Csap_cover.Cluster
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let check_properties g =
  let tc = TC.build g in
  let n = G.n g in
  (* Property 3: every edge has a tree containing both endpoints. *)
  Array.iter
    (fun (e : G.edge) -> ignore (TC.covering_tree tc ~u:e.u ~v:e.v))
    (G.edges g);
  (* Property 2: tree depth O(d log n): assert <= (2k-1) d with the k used,
     plus slack 1 for d = 0 corner cases. *)
  let bound_height = ((2 * tc.TC.k) - 1) * max 1 tc.TC.d in
  Alcotest.(check bool)
    (Printf.sprintf "height %d <= (2k-1)d = %d" (TC.max_height tc) bound_height)
    true
    (TC.max_height tc <= bound_height);
  (* Property 1: edge sharing O(log n) — use the implementation's own
     documented degree bound. *)
  let m = G.m g in
  let deg_bound = Csap_cover.Coarsen.degree_bound ~num_clusters:m ~k:tc.TC.k in
  Alcotest.(check bool)
    (Printf.sprintf "sharing %d <= %d" (TC.max_edge_sharing g tc) deg_bound)
    true
    (TC.max_edge_sharing g tc <= deg_bound);
  (* Trees are valid: root in members, parents consistent, depths match. *)
  List.iter
    (fun (tr : TC.cluster_tree) ->
      Alcotest.(check bool) "root is member" true
        (List.mem tr.TC.root tr.TC.members);
      List.iter
        (fun v ->
          let p = tr.TC.parent.(v) in
          if v = tr.TC.root then Alcotest.(check int) "root parent" (-1) p
          else begin
            Alcotest.(check bool) "parent in members" true
              (List.mem p tr.TC.members);
            (match G.edge_between g v p with
            | Some (w, _) ->
              Alcotest.(check int) "depth consistent"
                (tr.TC.depth.(p) + w) tr.TC.depth.(v);
              Alcotest.(check int) "parent weight" w tr.TC.parent_weight.(v)
            | None -> Alcotest.fail "tree edge not a graph edge")
          end)
        tr.TC.members)
    tc.TC.trees;
  ignore n

let test_path () = check_properties (Gen.path 12 ~w:3)
let test_cycle () = check_properties (Gen.cycle 10 ~w:2)
let test_grid () = check_properties (Gen.grid 4 4 ~w:1)

let test_chorded_cycle () =
  (* The motivating case for gamma*: heavy chords, light ring. *)
  let g = Gen.chorded_cycle 12 ~chord_w:64 in
  check_properties g;
  let tc = TC.build g in
  (* d = 2 here, so tree heights must stay near d log n, far below W=64. *)
  Alcotest.(check bool) "heights << W" true (TC.max_height tc < 64)

let test_random () =
  let rng = Csap_graph.Rng.create 12 in
  check_properties (Gen.random_connected rng 20 ~extra_edges:15 ~wmax:8)

let test_trees_at () =
  let g = Gen.path 6 ~w:1 in
  let tc = TC.build g in
  for v = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "vertex %d in a tree" v)
      true
      (TC.trees_at tc v <> [])
  done

let test_spt_of_cluster () =
  let g = Gen.cycle 6 ~w:1 in
  let c = C.of_list [ 0; 1; 2; 3 ] in
  let tr = TC.spt_of_cluster g ~tree_id:0 c ~center:1 in
  Alcotest.(check int) "root" 1 tr.TC.root;
  Alcotest.(check int) "depth of 3 inside cluster" 2 tr.TC.depth.(3);
  Alcotest.(check int) "outside marker" (-1) tr.TC.depth.(4);
  Alcotest.(check int) "outside parent" (-2) tr.TC.parent.(4);
  Alcotest.(check int) "height" 2 tr.TC.height

let prop_tree_cover_random =
  QCheck.Test.make ~count:25 ~name:"tree edge-cover properties (random)"
    (Gen_qcheck.connected_graph_gen ~max_n:14 ~max_wmax:8 ())
    (fun g ->
      let tc = TC.build g in
      let ok_cover =
        Array.for_all
          (fun (e : G.edge) ->
            List.exists
              (fun (tr : TC.cluster_tree) ->
                tr.TC.depth.(e.u) >= 0 && tr.TC.depth.(e.v) >= 0)
              tc.TC.trees)
          (G.edges g)
      in
      let bound_height = ((2 * tc.TC.k) - 1) * max 1 tc.TC.d in
      ok_cover && TC.max_height tc <= bound_height)

let prop_covering_consistency =
  (* covering_tree really returns a tree containing both endpoints, and
     trees_at v lists exactly the trees whose cluster contains v. *)
  QCheck.Test.make ~count:25 ~name:"covering_tree / trees_at consistency"
    (Gen_qcheck.connected_graph_gen ~max_n:14 ~max_wmax:8 ())
    (fun g ->
      let tc = TC.build g in
      let by_id = Hashtbl.create 16 in
      List.iter
        (fun (tr : TC.cluster_tree) -> Hashtbl.replace by_id tr.TC.tree_id tr)
        tc.TC.trees;
      let edge_ok =
        Array.for_all
          (fun (e : G.edge) ->
            let tr = Hashtbl.find by_id (TC.covering_tree tc ~u:e.u ~v:e.v) in
            tr.TC.depth.(e.u) >= 0 && tr.TC.depth.(e.v) >= 0)
          (G.edges g)
      in
      let at_ok =
        List.for_all
          (fun v ->
            let ids = TC.trees_at tc v in
            List.for_all
              (fun (tr : TC.cluster_tree) ->
                tr.TC.depth.(v) >= 0 = List.mem tr.TC.tree_id ids)
              tc.TC.trees)
          (List.init (G.n g) Fun.id)
      in
      edge_ok && at_ok)

let prop_depth_is_induced_distance =
  (* Each cluster tree is a shortest-path tree of the induced subgraph:
     depths equal dijkstra_within distances from the root, and the
     recorded height is their maximum. *)
  QCheck.Test.make ~count:25 ~name:"tree depth = induced SPT distance"
    (Gen_qcheck.connected_graph_gen ~max_n:12 ~max_wmax:8 ())
    (fun g ->
      let tc = TC.build g in
      List.for_all
        (fun (tr : TC.cluster_tree) ->
          let dist = C.dijkstra_within g (TC.members_set tr) ~src:tr.TC.root in
          List.for_all (fun v -> tr.TC.depth.(v) = dist.(v)) tr.TC.members
          && tr.TC.height
             = List.fold_left
                 (fun acc v -> max acc tr.TC.depth.(v))
                 0 tr.TC.members)
        tc.TC.trees)

let suite =
  [
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "chorded cycle (gamma* case)" `Quick test_chorded_cycle;
    Alcotest.test_case "random graph" `Quick test_random;
    Alcotest.test_case "trees_at covers all vertices" `Quick test_trees_at;
    Alcotest.test_case "cluster SPT" `Quick test_spt_of_cluster;
    QCheck_alcotest.to_alcotest prop_tree_cover_random;
    QCheck_alcotest.to_alcotest prop_covering_consistency;
    QCheck_alcotest.to_alcotest prop_depth_is_induced_distance;
  ]
