module Params = Csap_graph.Params
module Gen = Csap_graph.Generators

let test_path_params () =
  let p = Params.compute (Gen.path 5 ~w:2) in
  Alcotest.(check int) "E" 8 p.Params.script_e;
  Alcotest.(check int) "V" 8 p.Params.script_v;
  Alcotest.(check int) "D" 8 p.Params.script_d;
  Alcotest.(check int) "d" 2 p.Params.d;
  Alcotest.(check int) "W" 2 p.Params.w_max

let test_star_params () =
  let p = Params.compute (Gen.star 6 ~w:3) in
  Alcotest.(check int) "E" 15 p.Params.script_e;
  Alcotest.(check int) "V" 15 p.Params.script_v;
  Alcotest.(check int) "D" 6 p.Params.script_d

let test_gn_params () =
  (* On G_n the weighted parameters separate: E >> n V. *)
  let p = Params.compute (Gen.lower_bound_gn 12 ~x:3) in
  Alcotest.(check int) "V" 33 p.Params.script_v;
  Alcotest.(check bool) "E dominates n*V" true
    (p.Params.script_e > p.Params.n * p.Params.script_v)

let test_chorded_params () =
  (* The chorded cycle separates d from W. *)
  let p = Params.compute (Gen.chorded_cycle 12 ~chord_w:77) in
  Alcotest.(check int) "d" 2 p.Params.d;
  Alcotest.(check int) "W" 77 p.Params.w_max

let test_cache_eviction () =
  let old = Params.cache_capacity () in
  Params.cache_clear ();
  Params.set_cache_capacity 3;
  Fun.protect
    ~finally:(fun () ->
      Params.set_cache_capacity old;
      Params.cache_clear ())
    (fun () ->
      let gs = Array.init 4 (fun i -> Gen.path (3 + i) ~w:1) in
      Array.iter (fun g -> ignore (Params.compute g)) gs;
      (* Capacity 3: the oldest insertion is gone, the newest three stay. *)
      Alcotest.(check int) "size bounded" 3 (Params.cache_size ());
      Alcotest.(check bool) "oldest evicted" false (Params.cached gs.(0));
      for i = 1 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "recent %d cached" i)
          true
          (Params.cached gs.(i))
      done;
      (* Recomputing an evicted graph re-enters it at the back of the
         FIFO, pushing out the now-oldest entry. *)
      ignore (Params.compute gs.(0));
      Alcotest.(check bool) "re-entered" true (Params.cached gs.(0));
      Alcotest.(check bool) "next-oldest evicted" false (Params.cached gs.(1));
      Alcotest.(check int) "still bounded" 3 (Params.cache_size ());
      (* Shrinking the capacity evicts down immediately. *)
      Params.set_cache_capacity 1;
      Alcotest.(check int) "shrunk" 1 (Params.cache_size ());
      Alcotest.(check bool) "newest survives" true (Params.cached gs.(0));
      Alcotest.check_raises "capacity must be >= 1"
        (Invalid_argument "Params.set_cache_capacity: capacity < 1")
        (fun () -> Params.set_cache_capacity 0))

(* The memo cache is shared mutable state behind a mutex; hammer it from
   several domains computing overlapping graphs and check every answer
   against a sequential recomputation. *)
let test_cache_domain_safe () =
  Params.cache_clear ();
  let gs =
    [|
      Gen.grid 5 6 ~w:3;
      Gen.lower_bound_gn 8 ~x:2;
      Gen.chorded_cycle 14 ~chord_w:9;
      Gen.random_connected (Csap_graph.Rng.create 7) 20 ~extra_edges:15 ~wmax:6;
    |]
  in
  let worker d () =
    (* Each domain walks the graphs in a different rotation so lookups
       and inserts interleave. *)
    Array.init 40 (fun i -> Params.compute gs.((d + i) mod Array.length gs))
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  let results = List.map Domain.join domains in
  Params.cache_clear ();
  let expected = Array.map Params.compute gs in
  List.iteri
    (fun d got ->
      Array.iteri
        (fun i p ->
          Alcotest.(check bool)
            (Printf.sprintf "domain %d compute %d" d i)
            true
            (p = expected.((d + i) mod Array.length gs)))
        got)
    results

let prop_invariants =
  QCheck.Test.make ~count:120 ~name:"paper parameter relations hold"
    (Gen_qcheck.connected_graph_gen ())
    (fun g -> Params.invariants_hold (Params.compute g))

let suite =
  [
    Alcotest.test_case "path parameters" `Quick test_path_params;
    Alcotest.test_case "star parameters" `Quick test_star_params;
    Alcotest.test_case "lower-bound separation" `Quick test_gn_params;
    Alcotest.test_case "d vs W separation" `Quick test_chorded_params;
    Alcotest.test_case "memo cache FIFO eviction" `Quick test_cache_eviction;
    Alcotest.test_case "memo cache is domain-safe" `Quick test_cache_domain_safe;
    QCheck_alcotest.to_alcotest prop_invariants;
  ]
