module A = Csap_dsim.Adversary
module D = Csap_dsim.Delay
module T = Csap_dsim.Trace
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module P = Csap.Protocol

let flood = P.find_exn "flood"
let ghs = P.find_exn "mst-ghs"

(* ---- specs and names --------------------------------------------------- *)

let test_spec_parsing () =
  Alcotest.(check (list string))
    "builtin roster" [ "greedy"; "stretch" ] A.builtin_specs;
  (match A.of_spec "greedy" with
  | Ok (A.Adaptive a) ->
    Alcotest.(check string) "greedy name" "greedy-commax" a.A.name
  | _ -> Alcotest.fail "greedy must parse to an adaptive adversary");
  (match A.of_spec "stretch" with
  | Ok t ->
    Alcotest.(check bool) "stretch is adaptive" true (A.is_adaptive t);
    Alcotest.(check string) "stretch name" "time-stretcher" (A.name t)
  | Error e -> Alcotest.fail e);
  (match A.of_spec "bogus" with
  | Error msg ->
    Alcotest.(check string) "error lists the vocabulary"
      "unknown adversary spec \"bogus\" (expected one of: greedy, stretch)"
      msg
  | Ok _ -> Alcotest.fail "bogus spec must be rejected");
  Alcotest.(check bool) "oblivious is not adaptive" false
    (A.is_adaptive (A.of_delay D.Exact))

let test_ambient_scope () =
  Alcotest.(check bool) "no ambient by default" true (A.ambient () = None);
  let adv =
    match A.greedy_commax () with
    | A.Adaptive a -> a
    | _ -> Alcotest.fail "greedy is adaptive"
  in
  A.with_ambient adv (fun () ->
      (match A.ambient () with
      | Some a -> Alcotest.(check string) "installed" a.A.name adv.A.name
      | None -> Alcotest.fail "ambient must be set inside the scope");
      let inner =
        match A.time_stretcher () with
        | A.Adaptive a -> a
        | _ -> assert false
      in
      A.with_ambient inner (fun () ->
          match A.ambient () with
          | Some a ->
            Alcotest.(check string) "nested scope wins" "time-stretcher"
              a.A.name
          | None -> Alcotest.fail "nested ambient must be set"));
  Alcotest.(check bool) "restored after the scope" true (A.ambient () = None);
  (try
     A.with_ambient adv (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "restored after an exception" true
    (A.ambient () = None)

(* ---- the oblivious path is unchanged ----------------------------------- *)

let test_oblivious_identical () =
  (* Wrapping a delay model as [Oblivious] must be bit-identical to
     passing it directly: same measures, same trace. *)
  let g = Gen.grid 4 4 ~w:6 in
  let run adversary delay =
    T.with_collector (fun () -> P.run ?adversary ?delay flood g)
  in
  let o1, tr1 = run None (Some (D.seeded 5)) in
  let o2, tr2 = run (Some (A.of_delay (D.seeded 5))) None in
  Alcotest.(check bool) "identical measures" true
    (o1.P.Outcome.measures = o2.P.Outcome.measures);
  Alcotest.(check bool) "identical traces" true
    (T.equal (List.hd tr1) (List.hd tr2));
  Alcotest.(check int) "no decision records on the oblivious path" 0
    (Array.length (T.decisions (List.hd tr2)))

(* ---- the observation view ---------------------------------------------- *)

let test_probe_observations () =
  (* A probing adversary checks the [Obs] invariants at every send. *)
  let g = Gen.grid 3 3 ~w:4 in
  let m = G.m g in
  let calls = ref 0 and last_now = ref neg_infinity in
  let probe =
    {
      A.name = "probe";
      next_delay =
        (fun obs ~edge_id ~dir ~nth ~w ->
          incr calls;
          Alcotest.(check int) "edges = m" m (A.Obs.edges obs);
          Alcotest.(check bool) "clock is monotone" true
            (A.Obs.now obs >= !last_now);
          last_now := A.Obs.now obs;
          Alcotest.(check bool) "legal send site" true
            (edge_id >= 0 && edge_id < m && (dir = 0 || dir = 1) && nth >= 0);
          Alcotest.(check bool) "pending non-negative" true
            (A.Obs.pending_on obs ~edge_id ~dir >= 0
            && A.Obs.pending_edge obs ~edge_id
               >= A.Obs.pending_on obs ~edge_id ~dir);
          Alcotest.(check bool) "busiest edge in range or -1" true
            (let b = A.Obs.busiest_edge obs in
             b = -1 || (b >= 0 && b < m));
          (* This send is not yet counted; totals only ever grow. *)
          Alcotest.(check bool) "delivered <= sent" true
            (A.Obs.delivered_total obs <= A.Obs.sent_total obs);
          Alcotest.(check bool) "queue_size non-negative" true
            (A.Obs.queue_size obs >= 0);
          (let qm = A.Obs.queue_min_time obs in
           Alcotest.(check bool) "queue head not in the past" true
             (Float.is_nan qm || qm >= A.Obs.now obs));
          float_of_int w)
      ;
      next_disposition = None;
    }
  in
  let o = P.run ~adversary:(A.Adaptive probe) flood g in
  Alcotest.(check int) "consulted once per paid message"
    o.P.Outcome.measures.Csap.Measures.messages !calls

let test_adaptive_disposition () =
  (* An adversary that drops every reverse-direction message: the run
     still terminates, drops are paid for, and the trace records them.
     (A grid, not a path: flooding a path from 0 only ever sends
     forward, so there would be nothing to drop.) *)
  let g = Gen.grid 3 3 ~w:3 in
  let dropper =
    {
      A.name = "echo-dropper";
      next_delay = (fun _ ~edge_id:_ ~dir:_ ~nth:_ ~w -> float_of_int w);
      next_disposition =
        Some
          (fun _ ~edge_id:_ ~dir ~nth:_ ~now:_ ->
            if dir = 1 then Csap_dsim.Fault.Drop else Csap_dsim.Fault.Pass);
    }
  in
  let o, traces =
    T.with_collector (fun () ->
        (* [check] would rightly fail: echoes are load-bearing for the
           parent counts some invariants inspect — run unchecked. *)
        A.with_ambient dropper (fun () ->
            Csap.Flood.run g ~source:0))
  in
  let tr = List.hd traces in
  let dropped =
    Array.length
      (Array.of_seq
         (Seq.filter
            (fun ev -> ev.T.kind = T.Dropped)
            (Array.to_seq (T.events tr))))
  in
  Alcotest.(check bool) "reverse messages dropped" true (dropped > 0);
  Alcotest.(check bool) "forward wave still delivered" true
    (o.Csap.Flood.measures.Csap.Measures.messages > 0)

(* ---- decision traces and replay ---------------------------------------- *)

let record_run entry adversary g =
  let o, traces =
    T.with_collector (fun () -> P.run ~adversary entry g)
  in
  match traces with
  | [ tr ] -> (o, tr)
  | l -> Alcotest.fail (Printf.sprintf "expected one trace, got %d"
                          (List.length l))

let test_decision_trace_roundtrip () =
  let g = Gen.grid 4 4 ~w:5 in
  let _, tr = record_run flood (A.greedy_commax ()) g in
  let decisions = T.decisions tr in
  Alcotest.(check bool) "decisions recorded" true
    (Array.length decisions > 0);
  (* Every decision twins a send: same identity, same delay. *)
  let sends =
    Array.of_seq
      (Seq.filter (fun ev -> ev.T.kind = T.Send)
         (Array.to_seq (T.events tr)))
  in
  Alcotest.(check int) "one decision per send" (Array.length sends)
    (Array.length decisions);
  Array.iter2
    (fun d s ->
      Alcotest.(check bool) "decision twins its send" true
        (d.T.edge = s.T.edge && d.T.dir = s.T.dir && d.T.nth = s.T.nth
        && d.T.delay = s.T.delay))
    decisions sends;
  (* JSONL round-trips the new kind. *)
  let tr' = T.of_jsonl (T.to_jsonl tr) in
  Alcotest.(check bool) "decision kind survives JSONL" true (T.equal tr tr');
  Alcotest.(check int) "without_decisions strips them" 0
    (Array.length (T.decisions (T.without_decisions tr)))

let replay_matches entry adversary g =
  let o, tr = record_run entry adversary g in
  let o', tr' = record_run entry (A.of_delay (T.recorded tr)) g in
  T.equal (T.without_decisions tr) tr'
  && o.P.Outcome.measures = o'.P.Outcome.measures

let test_replay_reproduces () =
  let g = Gen.grid 4 4 ~w:5 in
  List.iter
    (fun adv ->
      Alcotest.(check bool)
        (A.name adv ^ " replays bit-identically")
        true
        (replay_matches flood adv g))
    [ A.greedy_commax (); A.time_stretcher () ];
  (* The decision trace alone is a sufficient schedule: stripping the
     Send records before building the oracle changes nothing. *)
  let _, tr = record_run ghs (A.time_stretcher ()) g in
  let decision_only = T.create () in
  Array.iter
    (fun ev -> if ev.T.kind = T.Decision then T.add decision_only ev)
    (T.events tr);
  let _, tr' = record_run ghs (A.of_delay (T.recorded decision_only)) g in
  Alcotest.(check bool) "decision records alone replay the run" true
    (T.equal (T.without_decisions tr) tr')

(* ---- capability guards -------------------------------------------------- *)

let test_pengine_rejects_adaptive () =
  let g = Gen.grid 4 4 ~w:4 in
  (* Uniform knob-named validation error through the registry... *)
  (match P.run ~adversary:(A.greedy_commax ()) ~domains:2 flood g with
  | exception Invalid_argument msg ->
    Alcotest.(check string) "knob-named rejection"
      "flood: adversary: partitioned execution requires an oblivious \
       (order-independent) adversary"
      msg
  | _ -> Alcotest.fail "adaptive + domains must be rejected");
  (* ...and defense in depth in Pengine itself for ambient installs. *)
  let adv =
    match A.greedy_commax () with A.Adaptive a -> a | _ -> assert false
  in
  match
    A.with_ambient adv (fun () ->
        (Csap_dsim.Pengine.create ~domains:2 g : unit Csap_dsim.Pengine.t))
  with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "Pengine.create guard names the adversary" true
      (String.length msg > 0
      && String.sub msg 0 14 = "Pengine.create")
  | _ -> Alcotest.fail "Pengine must reject an ambient adaptive adversary"

(* ---- the QCheck replay property ---------------------------------------- *)

(* Across graph families x seeds x protocols x built-ins: an adaptive
   run's decision trace, replayed as an oblivious oracle, reproduces
   measures and trace bit for bit. *)
let prop_adaptive_replay =
  QCheck.Test.make ~count:25 ~name:"adaptive runs replay as oblivious"
    QCheck.(
      triple (int_range 0 2) (int_range 1 1000) (int_range 0 3))
    (fun (fam, seed, pick) ->
      let g =
        match fam with
        | 0 -> Gen.grid 3 3 ~w:(1 + (seed mod 7))
        | 1 ->
          Gen.random_connected
            (Csap_graph.Rng.create seed)
            9 ~extra_edges:6 ~wmax:8
        | _ -> Gen.chorded_cycle 8 ~chord_w:(1 + (seed mod 9))
      in
      let entry = if pick land 1 = 0 then flood else ghs in
      let adversary =
        if pick land 2 = 0 then A.greedy_commax () else A.time_stretcher ()
      in
      replay_matches entry adversary g)

let suite =
  [
    Alcotest.test_case "spec parsing and names" `Quick test_spec_parsing;
    Alcotest.test_case "ambient scope installs and restores" `Quick
      test_ambient_scope;
    Alcotest.test_case "oblivious wrapper bit-identical to delay" `Quick
      test_oblivious_identical;
    Alcotest.test_case "observation view invariants at every send" `Quick
      test_probe_observations;
    Alcotest.test_case "adaptive disposition drops are traced" `Quick
      test_adaptive_disposition;
    Alcotest.test_case "decision trace twins sends, survives JSONL" `Quick
      test_decision_trace_roundtrip;
    Alcotest.test_case "built-ins replay bit-identically" `Quick
      test_replay_reproduces;
    Alcotest.test_case "pengine rejects adaptive adversaries" `Quick
      test_pengine_rejects_adaptive;
    QCheck_alcotest.to_alcotest prop_adaptive_replay;
  ]
