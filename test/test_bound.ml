(* The symbolic bound layer: parser/printer round trips on random
   expression trees, canonicalisation is idempotent and evaluation-
   preserving, the log-log fitter recovers known growth exponents from
   noisy synthetic a * n^k * log^j n data, and — the point of the whole
   exercise — a deliberately wrong claim is rejected. *)

module B = Csap.Bound
module Params = Csap_graph.Params

let qcheck = QCheck_alcotest.to_alcotest

(* Synthetic parameter vectors: consistent enough for evaluation (the
   evaluator reads fields, it never checks the paper's relations). *)
let params_of_n n =
  let root = int_of_float (Float.sqrt (float_of_int n)) in
  {
    Params.n;
    m = 2 * n;
    script_e = 6 * n;
    script_v = 3 * (n - 1);
    script_d = 3 * (max 2 (2 * root));
    d = 3;
    w_max = 3;
  }

(* ------------------------------------------------------------------ *)
(* Random expression trees                                             *)

let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun v -> B.Var v) (oneofl B.all_vars);
        map (fun c -> B.Num (float_of_int (1 + c))) (int_bound 7);
      ]
  in
  let exponent = oneofl [ 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  sized_size (int_bound 5)
    (fix (fun self size ->
         if size <= 0 then leaf
         else
           let sub = self (size / 2) in
           oneof
             [
               leaf;
               map (fun xs -> B.Add xs) (list_size (int_range 1 3) sub);
               map (fun xs -> B.Mul xs) (list_size (int_range 1 3) sub);
               map (fun xs -> B.Max xs) (list_size (int_range 1 3) sub);
               map (fun xs -> B.Min xs) (list_size (int_range 1 3) sub);
               map2 (fun b k -> B.Pow (b, k)) sub exponent;
             ]))

let arbitrary_expr =
  QCheck.make ~print:(fun e -> B.to_string e) expr_gen

let close a b =
  a = b
  || Float.abs (a -. b)
     <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let prop_roundtrip =
  QCheck.Test.make ~name:"of_string (to_string e) = canon e" ~count:500
    arbitrary_expr (fun e ->
      match B.of_string (B.to_string e) with
      | Ok e' -> B.compare_expr e' (B.canon e) = 0
      | Error m ->
        QCheck.Test.fail_reportf "reparse of %S failed: %s" (B.to_string e) m)

let prop_canon_idempotent =
  QCheck.Test.make ~name:"canon is idempotent" ~count:500 arbitrary_expr
    (fun e ->
      let c = B.canon e in
      B.compare_expr c (B.canon c) = 0)

let prop_canon_preserves_eval =
  QCheck.Test.make ~name:"canonicalisation preserves evaluation" ~count:500
    QCheck.(pair arbitrary_expr (int_range 4 200))
    (fun (e, n) ->
      let p = params_of_n n in
      close (B.eval e p) (B.eval (B.canon e) p))

let prop_commutative =
  QCheck.Test.make ~name:"a + b = b + a, a * b = b * a (canonically)"
    ~count:300
    QCheck.(pair arbitrary_expr arbitrary_expr)
    (fun (a, b) ->
      B.equal (B.Add [ a; b ]) (B.Add [ b; a ])
      && B.equal (B.Mul [ a; b ]) (B.Mul [ b; a ]))

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)

let test_parser_cases () =
  let ok s expected =
    match B.of_string s with
    | Ok e -> Alcotest.(check string) s expected (B.to_string e)
    | Error m -> Alcotest.failf "%S rejected: %s" s m
  in
  ok "E + D * n * logn" "E + n * logn * D";
  ok "min(E, n * V)" "min(E, n * V)";
  ok "E^1.5" "E^1.5";
  ok "E + 2 * E" "3 * E";
  ok "E * E" "E^2";
  ok "max(E, E)" "E";
  ok "min(E, 5, 3)" "min(3, E)";
  ok "(E^2)^0.5" "E";
  ok "2 * 3 * n" "6 * n";
  ok "E + 0 * V" "E";
  ok "d * W" "d * W";
  let rejected s =
    match B.of_string s with
    | Error _ -> ()
    | Ok e -> Alcotest.failf "%S accepted as %s" s (B.to_string e)
  in
  rejected "E +";
  rejected "foo";
  rejected "max(E)";
  rejected "E ^ V";
  rejected "E } V";
  rejected "E V";
  rejected "min(E, )"

let test_eval_values () =
  let p = params_of_n 16 in
  let eval s = B.eval (B.of_string_exn s) p in
  Alcotest.(check (float 1e-9)) "logn = log2 n" 4.0 (eval "logn");
  Alcotest.(check (float 1e-9)) "E" 96.0 (eval "E");
  Alcotest.(check (float 1e-9)) "min picks the smaller" 45.0
    (eval "min(E, V)");
  Alcotest.(check (float 1e-9)) "max picks the larger" 96.0
    (eval "max(E, V)");
  Alcotest.(check (float 1e-9)) "E^1.5" (96.0 ** 1.5) (eval "E^1.5");
  (* logn never degenerates to 0 on tiny graphs. *)
  Alcotest.(check (float 1e-9)) "logn on n=1 is log2 2" 1.0
    (B.var_value { p with Params.n = 1 } B.LogN)

let test_vars () =
  let vars s = List.map B.var_name (B.vars (B.of_string_exn s)) in
  Alcotest.(check (list string)) "vars sorted, deduped"
    [ "n"; "logn"; "E"; "D" ]
    (vars "E + D * n * logn + E * n");
  Alcotest.(check (list string)) "constants have no vars" [] (vars "42")

(* ------------------------------------------------------------------ *)
(* The fitter                                                          *)

let synthetic ~a ~k ~j ~noise_seed =
  let rng = Csap_graph.Rng.create noise_seed in
  List.map
    (fun n ->
      let x = float_of_int n in
      let log2x = Float.log x /. Float.log 2.0 in
      let noise = 0.9 +. (0.2 *. Csap_graph.Rng.float rng) in
      (x, a *. (x ** k) *. (log2x ** float_of_int j) *. noise))
    [ 8; 16; 32; 64; 128; 256 ]

let prop_fitter_recovers_slope =
  QCheck.Test.make ~name:"fitter recovers k from a * n^k * log^j n + noise"
    ~count:200
    QCheck.(
      quad (int_range 1 8) (oneofl [ 0.5; 1.0; 1.5; 2.0 ]) (int_bound 1)
        (int_bound 1_000_000))
    (fun (a2, k, j, seed) ->
      let a = float_of_int a2 /. 2.0 in
      match B.loglog_fit (synthetic ~a ~k ~j ~noise_seed:seed) with
      | None -> QCheck.Test.fail_report "fit unexpectedly degenerate"
      | Some f ->
        (* A log factor over n = 8..256 adds ~0.28 to the fitted
           exponent; +-10% noise moves it by at most ~0.08. *)
        if j = 0 then Float.abs (f.B.slope -. k) <= 0.1
        else f.B.slope -. k >= 0.15 && f.B.slope -. k <= 0.4)

let test_fit_exact_power () =
  let pts = List.map (fun n -> (float_of_int n, 3.0 *. (float_of_int n ** 2.0)))
      [ 4; 8; 16; 32; 64 ]
  in
  match B.loglog_fit pts with
  | None -> Alcotest.fail "degenerate fit"
  | Some f ->
    Alcotest.(check (float 1e-9)) "slope = 2" 2.0 f.B.slope;
    Alcotest.(check (float 1e-9)) "intercept = log2 3"
      (Float.log 3.0 /. Float.log 2.0)
      f.B.intercept;
    Alcotest.(check (float 1e-9)) "r2 = 1" 1.0 f.B.r2

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)

let sweep_samples ~growth =
  List.map
    (fun n -> (params_of_n n, growth (float_of_int n)))
    [ 8; 16; 32; 64; 128 ]

let test_check_accepts_matching_claim () =
  let claim = B.of_string_exn "n^2" in
  let v = B.check claim (sweep_samples ~growth:(fun x -> 3.0 *. (x ** 2.0))) in
  Alcotest.(check bool) "within" true v.B.within;
  Alcotest.(check (float 0.05)) "slope ~ 1" 1.0 v.B.slope

let test_check_rejects_wrong_claim () =
  (* The deliberately wrong claim: a linear bound against genuinely
     quadratic measurements must be rejected. *)
  let claim = B.of_string_exn "n" in
  let v = B.check claim (sweep_samples ~growth:(fun x -> x ** 2.0)) in
  Alcotest.(check bool) "over bound" false v.B.within;
  Alcotest.(check (float 0.1)) "slope ~ 2" 2.0 v.B.slope

let prop_wrong_exponent_rejected =
  QCheck.Test.make
    ~name:"claim n^kc vs measured n^km: within iff kc close enough to km"
    ~count:100
    QCheck.(
      triple (oneofl [ 1.0; 1.5; 2.0 ]) (oneofl [ 0.5; 1.0; 1.5; 2.0; 2.5 ])
        (int_bound 1_000_000))
    (fun (kc, km, seed) ->
      let claim = B.Pow (B.Var B.N, kc) in
      let rng = Csap_graph.Rng.create seed in
      let samples =
        List.map
          (fun n ->
            let noise = 0.95 +. (0.1 *. Csap_graph.Rng.float rng) in
            (params_of_n n, (float_of_int n ** km) *. noise))
          [ 8; 16; 32; 64; 128; 256 ]
      in
      let v = B.check claim samples in
      (* The fitted slope is km/kc up to noise; stay away from the
         tolerance boundary to keep the property crisp. *)
      let ratio = km /. kc in
      if ratio <= 1.15 then v.B.within
      else if ratio >= 1.35 then not v.B.within
      else true)

let test_check_flat_bound_fallback () =
  let flat = B.of_string_exn "7" in
  let ok = B.check flat (sweep_samples ~growth:(fun _ -> 5.0)) in
  Alcotest.(check bool) "flat bound + flat measurement passes" true
    ok.B.within;
  Alcotest.(check bool) "notes the fallback" true (ok.B.note <> None);
  let bad = B.check flat (sweep_samples ~growth:(fun x -> x)) in
  Alcotest.(check bool) "flat bound + growing measurement fails" false
    bad.B.within

let test_check_too_few_points () =
  let v = B.check_points [ (1.0, 1.0); (2.0, 2.0) ] in
  Alcotest.(check bool) "unfittable is not within" false v.B.within;
  Alcotest.(check bool) "explains itself" true (v.B.note <> None);
  (* Non-positive samples are discarded, not fitted. *)
  let v' =
    B.check_points
      [ (1.0, 1.0); (2.0, 0.0); (4.0, -3.0); (8.0, Float.nan) ]
  in
  Alcotest.(check bool) "degenerate samples dropped" false v'.B.within

let suite =
  [
    qcheck prop_roundtrip;
    qcheck prop_canon_idempotent;
    qcheck prop_canon_preserves_eval;
    qcheck prop_commutative;
    Alcotest.test_case "parser cases" `Quick test_parser_cases;
    Alcotest.test_case "evaluator values" `Quick test_eval_values;
    Alcotest.test_case "vars" `Quick test_vars;
    qcheck prop_fitter_recovers_slope;
    Alcotest.test_case "fit of exact power data" `Quick test_fit_exact_power;
    Alcotest.test_case "matching claim accepted" `Quick
      test_check_accepts_matching_claim;
    Alcotest.test_case "wrong claim rejected" `Quick
      test_check_rejects_wrong_claim;
    qcheck prop_wrong_exponent_rejected;
    Alcotest.test_case "flat-bound fallback" `Quick
      test_check_flat_bound_fallback;
    Alcotest.test_case "unfittable inputs" `Quick test_check_too_few_points;
  ]
