module C = Csap.Controller
module E = Csap_dsim.Engine
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

(* A controlled flooding broadcast: the canonical correct diffusing
   computation (c_pi = its flooding cost). *)
type fmsg = Wave

let run_controlled_flood ?delay g ~source ~threshold =
  let n = G.n g in
  let eng = E.create ?delay g in
  let aborted_flag = ref false in
  let ctl =
    C.create ~engine:eng ~inject:Fun.id ~initiator:source ~threshold
      ~on_abort:(fun () -> aborted_flag := true)
      ()
  in
  let reached = Array.make n false in
  let forward v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then C.send ctl ~src:v ~dst:u Wave)
  in
  for v = 0 to n - 1 do
    E.set_handler eng v (fun ~src wire ->
        match C.handle ctl ~me:v ~src wire with
        | None -> ()
        | Some Wave ->
          if not reached.(v) then begin
            reached.(v) <- true;
            forward v ~except:src
          end)
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      reached.(source) <- true;
      forward source ~except:(-1));
  ignore (E.run eng);
  (reached, ctl, E.metrics eng, !aborted_flag)

(* A runaway protocol: two nodes ping-pong forever (diverged execution). *)
type rmsg = Ping

let run_runaway g ~threshold =
  let eng = E.create g in
  let aborted_flag = ref false in
  let ctl =
    C.create ~engine:eng ~inject:Fun.id ~initiator:0 ~threshold
      ~on_abort:(fun () -> aborted_flag := true)
      ()
  in
  for v = 0 to G.n g - 1 do
    E.set_handler eng v (fun ~src wire ->
        match C.handle ctl ~me:v ~src wire with
        | None -> ()
        | Some Ping ->
          (* Echo forever. *)
          C.send ctl ~src:v ~dst:src Ping)
  done;
  E.schedule eng ~delay:0.0 (fun () -> C.send ctl ~src:0 ~dst:1 Ping);
  let events = E.run ~max_events:200_000 eng in
  (ctl, events, !aborted_flag, E.metrics eng)

let flood_cost g = 2 * G.total_weight g

let test_correct_execution_unaffected () =
  let g = Gen.grid 4 4 ~w:3 in
  let threshold = 2 * flood_cost g in
  let reached, ctl, _, aborted = run_controlled_flood g ~source:0 ~threshold in
  Alcotest.(check bool) "no abort" false aborted;
  Alcotest.(check bool) "all reached" true (Array.for_all Fun.id reached);
  Alcotest.(check bool) "consumed within threshold" true
    (C.consumed ctl <= threshold);
  Alcotest.(check bool) "spent = protocol cost" true
    (C.spent ctl <= flood_cost g);
  Alcotest.(check int) "nothing pending" 0 (C.pending_sends ctl)

let test_overhead_envelope () =
  (* Corollary 5.1: c_phi = O(c_pi log^2 c_pi). *)
  let g = Gen.grid 5 5 ~w:4 in
  let c_pi = flood_cost g in
  let threshold = 2 * c_pi in
  let _, _, metrics, aborted = run_controlled_flood g ~source:0 ~threshold in
  Alcotest.(check bool) "no abort" false aborted;
  let log2 x = log (float_of_int x) /. log 2.0 in
  let bound = 4.0 *. float_of_int c_pi *. log2 c_pi *. log2 c_pi in
  Alcotest.(check bool)
    (Printf.sprintf "total %d <= 4 c log^2 c = %.0f"
       metrics.Csap_dsim.Metrics.weighted_comm bound)
    true
    (float_of_int metrics.Csap_dsim.Metrics.weighted_comm <= bound)

let test_runaway_contained () =
  let g = Gen.path 2 ~w:5 in
  let threshold = 100 in
  let ctl, events, aborted, metrics = run_runaway g ~threshold in
  Alcotest.(check bool) "aborted" true aborted;
  Alcotest.(check bool) "terminated before event cap" true (events < 200_000);
  Alcotest.(check bool) "spend bounded by threshold" true
    (C.spent ctl <= threshold);
  Alcotest.(check bool) "total traffic bounded" true
    (metrics.Csap_dsim.Metrics.weighted_comm <= 20 * threshold)

let test_runaway_unbounded_without_controller () =
  (* The same protocol without the controller runs forever (cut by the
     event cap) — the controller is doing real work. *)
  let g = Gen.path 2 ~w:5 in
  let eng = E.create g in
  E.set_handler eng 0 (fun ~src:_ Ping -> E.send eng ~src:0 ~dst:1 Ping);
  E.set_handler eng 1 (fun ~src:_ Ping -> E.send eng ~src:1 ~dst:0 Ping);
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 Ping);
  let events = E.run ~max_events:5_000 eng in
  Alcotest.(check int) "hits the cap" 5_000 events

let test_doubling_discipline_per_edge () =
  (* Requests per execution-tree edge stay logarithmic in c. *)
  let g = Gen.path 12 ~w:2 in
  let threshold = 4 * flood_cost g in
  let reached, _, _, _ = run_controlled_flood g ~source:0 ~threshold in
  Alcotest.(check bool) "all reached" true (Array.for_all Fun.id reached)

let test_tight_threshold_aborts () =
  (* A threshold below c_pi must abort a correct but expensive run. *)
  let g = Gen.complete 6 ~w:10 in
  let threshold = flood_cost g / 8 in
  let _, ctl, _, aborted = run_controlled_flood g ~source:0 ~threshold in
  Alcotest.(check bool) "aborted" true aborted;
  Alcotest.(check bool) "spend within threshold" true
    (C.spent ctl <= threshold)

let test_delay_models () =
  let g = Gen.lollipop 4 4 ~w:3 in
  let threshold = 2 * flood_cost g in
  List.iter
    (fun delay ->
      let reached, _, _, aborted =
        run_controlled_flood ~delay g ~source:0 ~threshold
      in
      Alcotest.(check bool) "no abort" false aborted;
      Alcotest.(check bool) "all reached" true (Array.for_all Fun.id reached))
    [
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 61);
    ]

(* The multiple-initiator extension: one diffusing computation started at
   several sources (a multi-source broadcast), each source metering its own
   execution tree against its own threshold. *)
type cmsg = Spark

let run_multi_source_flood g ~t0 ~t1 =
  let n = G.n g in
  let eng = E.create g in
  let aborts = ref 0 in
  let ctl =
    C.create_multi ~engine:eng ~inject:Fun.id
      ~initiators:[ (0, t0); (n - 1, t1) ]
      ~suspend:false
      ~on_abort:(fun () -> incr aborts)
      ()
  in
  let seen = Array.make n false in
  let forward v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then C.send ctl ~src:v ~dst:u Spark)
  in
  for v = 0 to n - 1 do
    E.set_handler eng v (fun ~src wire ->
        match C.handle ctl ~me:v ~src wire with
        | None -> ()
        | Some Spark ->
          if not seen.(v) then begin
            seen.(v) <- true;
            forward v ~except:src
          end)
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      seen.(0) <- true;
      forward 0 ~except:(-1);
      seen.(n - 1) <- true;
      forward (n - 1) ~except:(-1));
  ignore (E.run ~max_events:300_000 eng);
  (seen, ctl, !aborts)

let test_multi_initiator_completes () =
  let g = Gen.grid 4 4 ~w:3 in
  let budget = 2 * flood_cost g in
  let seen, ctl, aborts = run_multi_source_flood g ~t0:budget ~t1:budget in
  Alcotest.(check int) "no aborts" 0 aborts;
  Alcotest.(check bool) "wave everywhere" true (Array.for_all Fun.id seen);
  Alcotest.(check bool) "consumed within combined threshold" true
    (C.consumed ctl <= 2 * budget);
  Alcotest.(check bool) "spent within protocol cost" true
    (C.spent ctl <= flood_cost g)

let test_multi_initiator_per_root_budgets () =
  (* One root is starved: its tree stalls at its threshold while the other
     root keeps minting; total spend respects the sum of thresholds. *)
  let g = Gen.grid 4 4 ~w:3 in
  let big = 2 * flood_cost g in
  let seen, ctl, aborts = run_multi_source_flood g ~t0:9 ~t1:big in
  Alcotest.(check bool) "the starved root aborted" true (aborts >= 1);
  Alcotest.(check bool) "spend within combined thresholds" true
    (C.spent ctl <= 9 + big);
  (* The richly funded source keeps spreading regardless. *)
  Alcotest.(check bool) "the funded source's corner is covered" true
    seen.(G.n g - 2)

let prop_controller_transparent =
  QCheck.Test.make ~count:30
    ~name:"controller is transparent for correct executions"
    (Gen_qcheck.graph_and_vertex ~max_n:14 ())
    (fun (g, source) ->
      let threshold = 2 * flood_cost g in
      let reached, ctl, _, aborted =
        run_controlled_flood g ~source ~threshold
      in
      (not aborted)
      && Array.for_all Fun.id reached
      && C.spent ctl <= flood_cost g
      && C.consumed ctl <= threshold)

let suite =
  [
    Alcotest.test_case "correct executions unaffected" `Quick
      test_correct_execution_unaffected;
    Alcotest.test_case "O(c log^2 c) envelope" `Quick test_overhead_envelope;
    Alcotest.test_case "runaway contained" `Quick test_runaway_contained;
    Alcotest.test_case "runaway unbounded without controller" `Quick
      test_runaway_unbounded_without_controller;
    Alcotest.test_case "doubling discipline" `Quick
      test_doubling_discipline_per_edge;
    Alcotest.test_case "tight threshold aborts" `Quick
      test_tight_threshold_aborts;
    Alcotest.test_case "delay models" `Quick test_delay_models;
    Alcotest.test_case "multi-initiator: multi-source broadcast" `Quick
      test_multi_initiator_completes;
    Alcotest.test_case "multi-initiator: per-root budgets" `Quick
      test_multi_initiator_per_root_budgets;
    QCheck_alcotest.to_alcotest prop_controller_transparent;
  ]
