module E = Csap_dsim.Engine
module R = Csap_dsim.Reliable
module F = Csap_dsim.Fault
module Net = Csap_dsim.Net
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Mst = Csap_graph.Mst
module Tree = Csap_graph.Tree

(* A plan that drops the first [k] data-bearing attempts on directed
   edge (edge_id=0, dir=0) and passes everything else. With the shim on
   a single edge, dir 0 carries data and dir 1 carries acks. *)
let drop_first_data k =
  F.make
    ~name:(Printf.sprintf "drop-first-%d" k)
    (fun ~edge_id ~dir ~nth ~now:_ ->
      if edge_id = 0 && dir = 0 && nth < k then F.Drop else F.Pass)

let shim_on_path ?(rto = 3.0) ?(max_rto = 64.0) ~faults ~w () =
  let g = Gen.path 2 ~w in
  let eng = E.create ~faults g in
  let shim = R.create ~rto ~max_rto eng in
  (g, eng, shim)

let collect_handler got v = fun ~src k -> got := (v, src, k) :: !got

let test_retransmission_recovers () =
  let _, eng, shim = shim_on_path ~faults:(drop_first_data 1) ~w:2 () in
  let got = ref [] in
  R.set_handler shim 0 (collect_handler got 0);
  R.set_handler shim 1 (collect_handler got 1);
  E.schedule eng ~delay:0.0 (fun () -> R.send shim ~src:0 ~dst:1 42);
  ignore (E.run eng);
  Alcotest.(check (list (triple int int int))) "delivered despite the drop"
    [ (1, 0, 42) ] !got;
  Alcotest.(check bool) "retransmitted at least once" true
    (R.retransmissions shim >= 1);
  Alcotest.(check int) "delivered exactly once" 1 (R.delivered shim);
  Alcotest.(check int) "nothing left unacked" 0 (R.in_flight shim);
  Alcotest.(check bool) "receiver acked" true (R.acks_sent shim >= 1)

let test_backoff_doubles () =
  (* Dropping the first 3 attempts: timeouts fire at rto*w, then 2x,
     then 4x — the 4th attempt (nth=3) passes and lands at
     (1 + 2 + 4) * rto * w + w. *)
  let w = 2 and rto = 3.0 in
  let _, eng, shim = shim_on_path ~rto ~faults:(drop_first_data 3) ~w () in
  let at = ref nan in
  R.set_handler shim 0 (fun ~src:_ _ -> ());
  R.set_handler shim 1 (fun ~src:_ _ -> at := E.now eng);
  E.schedule eng ~delay:0.0 (fun () -> R.send shim ~src:0 ~dst:1 1);
  ignore (E.run eng);
  let expect = (7.0 *. rto *. float_of_int w) +. float_of_int w in
  Alcotest.(check (float 1e-9)) "exponential backoff timing" expect !at;
  Alcotest.(check int) "3 retransmissions" 3 (R.retransmissions shim)

let test_rto_cap_and_reset () =
  (* max_rto caps the backoff: with rto=1, max_rto=2 and 3 drops, the
     waits are w, 2w, 2w (capped), so delivery at 5w + w. *)
  let w = 3 in
  let _, eng, shim =
    shim_on_path ~rto:1.0 ~max_rto:2.0 ~faults:(drop_first_data 3) ~w ()
  in
  let at = ref nan in
  R.set_handler shim 0 (fun ~src:_ _ -> ());
  R.set_handler shim 1 (fun ~src:_ _ -> at := E.now eng);
  E.schedule eng ~delay:0.0 (fun () -> R.send shim ~src:0 ~dst:1 1);
  ignore (E.run eng);
  Alcotest.(check (float 1e-9)) "capped backoff timing"
    (float_of_int ((5 * w) + w))
    !at

let test_duplicate_suppressed () =
  let plan =
    F.make ~name:"dup-data" (fun ~edge_id:_ ~dir ~nth:_ ~now:_ ->
        if dir = 0 then F.Duplicate 0.5 else F.Pass)
  in
  let _, eng, shim = shim_on_path ~faults:plan ~w:4 () in
  let got = ref [] in
  R.set_handler shim 0 (fun ~src:_ _ -> ());
  R.set_handler shim 1 (fun ~src:_ k -> got := k :: !got);
  E.schedule eng ~delay:0.0 (fun () ->
      R.send shim ~src:0 ~dst:1 1;
      R.send shim ~src:0 ~dst:1 2);
  ignore (E.run eng);
  Alcotest.(check (list int)) "each payload once, in order" [ 2; 1 ] !got;
  Alcotest.(check int) "delivered counts app deliveries" 2
    (R.delivered shim)

let test_ack_loss_recovered () =
  (* Acks flow on dir=1; dropping the first ack forces a retransmission
     of already-delivered data, which the receiver absorbs. *)
  let plan =
    F.make ~name:"drop-first-ack" (fun ~edge_id:_ ~dir ~nth ~now:_ ->
        if dir = 1 && nth = 0 then F.Drop else F.Pass)
  in
  let _, eng, shim = shim_on_path ~faults:plan ~w:2 () in
  let got = ref [] in
  R.set_handler shim 0 (fun ~src:_ _ -> ());
  R.set_handler shim 1 (fun ~src:_ k -> got := k :: !got);
  E.schedule eng ~delay:0.0 (fun () -> R.send shim ~src:0 ~dst:1 7);
  ignore (E.run eng);
  Alcotest.(check (list int)) "still exactly once" [ 7 ] !got;
  Alcotest.(check bool) "data was retransmitted" true
    (R.retransmissions shim >= 1);
  Alcotest.(check int) "eventually acked" 0 (R.in_flight shim)

let test_out_of_order_buffered () =
  (* Drop the first copy of seqno 0 only: seqno 1 arrives first and must
     wait; the retransmitted 0 releases both in order. *)
  let plan =
    F.make ~name:"drop-nth0" (fun ~edge_id:_ ~dir ~nth ~now:_ ->
        if dir = 0 && nth = 0 then F.Drop else F.Pass)
  in
  let _, eng, shim = shim_on_path ~faults:plan ~w:2 () in
  let got = ref [] in
  R.set_handler shim 0 (fun ~src:_ _ -> ());
  R.set_handler shim 1 (fun ~src:_ k -> got := (k, E.now eng) :: !got);
  E.schedule eng ~delay:0.0 (fun () ->
      R.send shim ~src:0 ~dst:1 10;
      R.send shim ~src:0 ~dst:1 11);
  ignore (E.run eng);
  (match List.rev !got with
  | [ (10, t10); (11, t11) ] ->
    Alcotest.(check bool) "FIFO order restored" true (t10 <= t11)
  | l -> Alcotest.failf "expected [10;11], got %d deliveries" (List.length l));
  Alcotest.(check (list int)) "payload order" [ 11; 10 ]
    (List.map fst !got)

let test_no_edge_rejected () =
  let g = Gen.path 3 ~w:1 in
  let shim = R.create (E.create g) in
  Alcotest.check_raises "non-edge send"
    (Invalid_argument "Reliable.send: no edge between 0 and 2") (fun () ->
      R.send shim ~src:0 ~dst:2 0)

(* ---- crash-restart regressions through whole protocols --------------- *)

let test_crash_mid_flood () =
  (* Crash a cut vertex of the path mid-broadcast: the wave must still
     cover the graph once it restarts. *)
  let g = Gen.path 6 ~w:2 in
  (* Down from the start: the cut vertex holds the wave back until its
     restart at t = 30, so completion time witnesses the crash. *)
  let faults =
    F.seeded ~loss:0.1
      ~crashes:[ { F.vertex = 2; at = 0.0; restart = 30.0 } ]
      21
  in
  let r =
    Csap.Flood.run_reliable ~delay:(Csap_dsim.Delay.seeded 4) ~faults g
      ~source:0
  in
  Alcotest.(check bool) "spanning tree despite the crash" true
    (Tree.is_spanning_tree_of g r.Csap.Flood.result.Csap.Flood.tree);
  Alcotest.(check int) "vertex 2 restarted once" 1 r.Csap.Flood.restarts;
  Alcotest.(check bool) "wave stalled behind the crash" true
    (r.Csap.Flood.result.Csap.Flood.measures.Csap.Measures.time >= 30.0)

let test_crash_mid_ghs () =
  let g =
    Csap_graph.Generators.random_connected (Csap_graph.Rng.create 5) 10
      ~extra_edges:10 ~wmax:8
  in
  let faults =
    F.seeded ~loss:0.08 ~dup:0.1
      ~crashes:[ { F.vertex = 3; at = 2.0; restart = 20.0 } ]
      33
  in
  let r =
    Csap.Mst_ghs.run_reliable ~delay:(Csap_dsim.Delay.seeded 6) ~faults g
  in
  Alcotest.(check bool) "MST despite crash + loss + dup" true
    (Mst.is_mst g r.Csap.Mst_ghs.result.Csap.Mst_ghs.mst);
  Alcotest.(check int) "restart observed" 1 r.Csap.Mst_ghs.restarts

let test_crash_during_outage_spt () =
  (* The synchronizer pipeline under a compound plan: loss + outage +
     crash, reliable transport. Oracle: Dijkstra distances. *)
  let g = Gen.grid 3 3 ~w:4 in
  let faults =
    F.seeded ~loss:0.1
      ~outages:[ { F.edge = Some 2; from_time = 1.0; until_time = 6.0 } ]
      ~crashes:[ { F.vertex = 5; at = 2.0; restart = 9.0 } ]
      55
  in
  let r =
    Csap.Spt_synch.run ~delay:(Csap_dsim.Delay.seeded 8) ~faults
      ~reliable:true g ~source:0
  in
  let sp = Csap_graph.Paths.dijkstra g ~src:0 in
  let dist_ok = ref true in
  for v = 0 to G.n g - 1 do
    let rec go v acc =
      match Tree.parent r.Csap.Spt_synch.tree v with
      | None -> acc
      | Some (p, w) -> go p (acc + w)
    in
    if go v 0 <> sp.Csap_graph.Paths.dist.(v) then dist_ok := false
  done;
  Alcotest.(check bool) "SPT exact under compound faults" true !dist_ok

let test_net_make_picks_transport () =
  let g = Gen.path 2 ~w:1 in
  let plain = Net.make g in
  let rel = Net.make ~reliable:true g in
  Alcotest.(check int) "plain reports zero retransmissions" 0
    (plain.Net.retransmissions ());
  Alcotest.(check int) "reliable starts at zero" 0 (rel.Net.retransmissions ());
  Alcotest.(check bool) "same graph" true
    (G.id plain.Net.graph = G.id rel.Net.graph)

let test_create_validation () =
  let g = Gen.path 2 ~w:1 in
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> R.create ~rto:0.0 (E.create g));
  bad (fun () -> R.create ~rto:4.0 ~max_rto:2.0 (E.create g))

(* ---- property: GHS under pure loss stays correct ---------------------- *)

let prop_ghs_reliable_under_loss =
  QCheck.Test.make ~count:15 ~name:"reliable GHS computes the MST under loss"
    QCheck.(
      pair
        (Gen_qcheck.connected_graph_gen ~max_n:9 ~max_wmax:8 ())
        (int_bound 10_000))
    (fun (g, seed) ->
      let faults = F.seeded ~loss:0.15 ~dup:0.1 seed in
      let r =
        Csap.Mst_ghs.run_reliable ~delay:(Csap_dsim.Delay.seeded seed)
          ~faults g
      in
      Mst.is_mst g r.Csap.Mst_ghs.result.Csap.Mst_ghs.mst)

let suite =
  [
    Alcotest.test_case "retransmission recovers a dropped message" `Quick
      test_retransmission_recovers;
    Alcotest.test_case "timeout backoff doubles" `Quick test_backoff_doubles;
    Alcotest.test_case "backoff capped at max_rto; reset on progress" `Quick
      test_rto_cap_and_reset;
    Alcotest.test_case "network duplicates suppressed" `Quick
      test_duplicate_suppressed;
    Alcotest.test_case "lost ack recovered, no double delivery" `Quick
      test_ack_loss_recovered;
    Alcotest.test_case "out-of-order arrivals buffered to FIFO" `Quick
      test_out_of_order_buffered;
    Alcotest.test_case "send to non-edge rejected" `Quick
      test_no_edge_rejected;
    Alcotest.test_case "crash mid-flood still spans" `Quick
      test_crash_mid_flood;
    Alcotest.test_case "crash mid-GHS still yields the MST" `Quick
      test_crash_mid_ghs;
    Alcotest.test_case "SPT pipeline exact under compound faults" `Quick
      test_crash_during_outage_spt;
    Alcotest.test_case "Net.make picks the transport" `Quick
      test_net_make_picks_transport;
    Alcotest.test_case "Reliable.create validates rto" `Quick
      test_create_validation;
    QCheck_alcotest.to_alcotest prop_ghs_reliable_under_loss;
  ]
