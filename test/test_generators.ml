module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module P = Csap_graph.Paths

let check_connected name g =
  Alcotest.(check bool) (name ^ " connected") true (G.is_connected g)

let test_path () =
  let g = Gen.path 6 ~w:3 in
  Alcotest.(check int) "m" 5 (G.m g);
  check_connected "path" g;
  Alcotest.(check int) "diameter" 15 (P.diameter g)

let test_cycle () =
  let g = Gen.cycle 8 ~w:2 in
  Alcotest.(check int) "m" 8 (G.m g);
  Alcotest.(check int) "all degree 2" 2 (G.degree g 5);
  check_connected "cycle" g

let test_star () =
  let g = Gen.star 7 ~w:4 in
  Alcotest.(check int) "hub degree" 6 (G.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (G.degree g 3);
  check_connected "star" g

let test_complete () =
  let g = Gen.complete 6 ~w:1 in
  Alcotest.(check int) "m" 15 (G.m g);
  check_connected "complete" g

let test_grid () =
  let g = Gen.grid 3 4 ~w:1 in
  Alcotest.(check int) "n" 12 (G.n g);
  Alcotest.(check int) "m" 17 (G.m g);
  Alcotest.(check int) "diameter" 5 (P.diameter g);
  check_connected "grid" g

let test_binary_tree () =
  let g = Gen.binary_tree 7 ~w:1 in
  Alcotest.(check int) "m" 6 (G.m g);
  Alcotest.(check int) "root degree" 2 (G.degree g 0);
  check_connected "binary tree" g

let test_random_tree () =
  let rng = Csap_graph.Rng.create 42 in
  let g = Gen.random_tree rng 30 ~wmax:9 in
  Alcotest.(check int) "m = n-1" 29 (G.m g);
  Alcotest.(check bool) "weights in range" true
    (Array.for_all (fun (e : G.edge) -> e.w >= 1 && e.w <= 9) (G.edges g));
  check_connected "random tree" g

let test_random_connected () =
  let rng = Csap_graph.Rng.create 7 in
  let g = Gen.random_connected rng 20 ~extra_edges:15 ~wmax:5 in
  Alcotest.(check int) "m" 34 (G.m g);
  check_connected "random connected" g

let test_random_connected_deterministic () =
  let mk seed =
    Gen.random_connected (Csap_graph.Rng.create seed) 15 ~extra_edges:8 ~wmax:6
  in
  let fingerprint g =
    Array.to_list (G.edges g) |> List.map (fun (e : G.edge) -> (e.u, e.v, e.w))
  in
  Alcotest.(check bool) "same seed same graph" true
    (fingerprint (mk 99) = fingerprint (mk 99));
  Alcotest.(check bool) "different seed different graph" true
    (fingerprint (mk 99) <> fingerprint (mk 100))

let test_random_geometric () =
  let rng = Csap_graph.Rng.create 3 in
  let g = Gen.random_geometric rng 40 ~degree:4 ~scale:1000.0 in
  check_connected "geometric" g;
  Alcotest.(check bool) "enough edges" true (G.m g >= 39)

let test_lollipop () =
  let g = Gen.lollipop 5 4 ~w:2 in
  Alcotest.(check int) "n" 9 (G.n g);
  Alcotest.(check int) "m" 14 (G.m g);
  check_connected "lollipop" g

let test_lower_bound_gn () =
  let n = 10 and x = 3 in
  let g = Gen.lower_bound_gn n ~x in
  check_connected "G_n" g;
  Alcotest.(check int) "path + bypass edges" (9 + 4) (G.m g);
  (* MST is the light path: script-V = (n-1) x. *)
  Alcotest.(check int) "script V" ((n - 1) * x) (Csap_graph.Mst.weight g);
  (* Bypass edges have weight x^4. *)
  (match G.edge_between g 0 (n - 1) with
  | Some (w, _) -> Alcotest.(check int) "bypass weight" 81 w
  | None -> Alcotest.fail "bypass edge 0..n-1 missing")

let test_lower_bound_gn_i () =
  let n = 10 and x = 2 in
  let g = Gen.lower_bound_gn_i n ~i:2 ~x in
  Alcotest.(check int) "two extra vertices" (n + 2) (G.n g);
  check_connected "G_n^i" g;
  (* Bypass (2, 7) replaced by pendants (2, 10) and (7, 11). *)
  Alcotest.(check bool) "bypass removed" true (G.edge_between g 2 7 = None);
  Alcotest.(check bool) "pendant v" true (G.edge_between g 2 10 <> None);
  Alcotest.(check bool) "pendant w" true (G.edge_between g 7 11 <> None)

let test_chorded_cycle () =
  let g = Gen.chorded_cycle 10 ~chord_w:100 in
  check_connected "chorded" g;
  Alcotest.(check int) "d stays 2" 2 (P.max_neighbor_distance g);
  Alcotest.(check int) "W is the chord" 100 (G.max_weight g)

let test_bkj_star_cycle () =
  let g = Gen.bkj_star_cycle 8 ~heavy:50 in
  check_connected "bkj" g;
  (* SPT from the hub uses all spokes: weight k * heavy = 400, while the MST
     uses one spoke + rim: weight 50 + 7. *)
  let spt_w =
    Csap_graph.Tree.total_weight (P.spt g ~src:0)
  in
  Alcotest.(check int) "SPT heavy" (8 * 50) spt_w;
  Alcotest.(check int) "MST light" 57 (Csap_graph.Mst.weight g)

(* ---- streaming CSR builders ------------------------------------------- *)

let same_graph name a b =
  Alcotest.(check int) (name ^ " n") (G.n a) (G.n b);
  Alcotest.(check int) (name ^ " m") (G.m a) (G.m b);
  for id = 0 to G.m a - 1 do
    let ea = G.edge a id and eb = G.edge b id in
    if (ea.G.u, ea.G.v, ea.G.w) <> (eb.G.u, eb.G.v, eb.G.w) then
      Alcotest.failf "%s: edge %d differs" name id
  done

let test_grid_stream_identical () =
  List.iter
    (fun (r, c) ->
      same_graph
        (Printf.sprintf "grid %dx%d" r c)
        (Gen.grid r c ~w:4) (Gen.grid_stream r c ~w:4))
    [ (1, 1); (1, 7); (5, 1); (4, 5); (13, 9) ]

let test_lower_bound_gn_stream_identical () =
  List.iter
    (fun (n, x) ->
      same_graph
        (Printf.sprintf "gn n=%d x=%d" n x)
        (Gen.lower_bound_gn n ~x)
        (Gen.lower_bound_gn_stream n ~x))
    [ (9, 2); (16, 3); (25, 4) ]

let test_gnp () =
  let g = Gen.gnp ~seed:42 300 ~p:0.03 ~wmax:7 in
  (* Deterministic in the seed, different across seeds. *)
  same_graph "gnp replay" g (Gen.gnp ~seed:42 300 ~p:0.03 ~wmax:7);
  let h = Gen.gnp ~seed:43 300 ~p:0.03 ~wmax:7 in
  Alcotest.(check bool)
    "seed changes the sample" true
    (G.m g <> G.m h
    ||
    try
      same_graph "" g h;
      false
    with _ -> true);
  (* Simple graph: ordered endpoints, no duplicates, weights in range. *)
  let seen = Hashtbl.create (G.m g) in
  for id = 0 to G.m g - 1 do
    let e = G.edge g id in
    Alcotest.(check bool) "ordered endpoints" true (e.G.u < e.G.v);
    Alcotest.(check bool) "weight in range" true (e.G.w >= 1 && e.G.w <= 7);
    if Hashtbl.mem seen (e.G.u, e.G.v) then Alcotest.failf "duplicate edge %d" id;
    Hashtbl.add seen (e.G.u, e.G.v) ()
  done;
  (* Density lands near the n*(n-1)/2 * p expectation. *)
  let expect = float_of_int (300 * 299 / 2) *. 0.03 in
  Alcotest.(check bool)
    "density plausible" true
    (float_of_int (G.m g) > 0.6 *. expect
    && float_of_int (G.m g) < 1.4 *. expect)

let test_gnp_connected () =
  (* Far below the connectivity threshold, the backbone still connects. *)
  let g = Gen.gnp ~connected:true ~seed:7 500 ~p:0.001 ~wmax:5 in
  check_connected "gnp backbone" g;
  (* The backbone only adds the path edges the sample missed. *)
  let plain = Gen.gnp ~seed:7 500 ~p:0.001 ~wmax:5 in
  Alcotest.(check bool)
    "at most n-1 extra edges" true
    (G.m g - G.m plain <= 499)

let test_of_stream_replay_validated () =
  let flaky grow =
    let calls = ref 0 in
    fun emit ->
      incr calls;
      emit 0 1 1;
      (* Second pass emits a different number of edges. *)
      if grow = (!calls > 1) then emit 1 2 1
  in
  List.iter
    (fun (label, grow, msg) ->
      Alcotest.check_raises label (Invalid_argument msg) (fun () ->
          ignore (G.of_stream ~n:3 (flaky grow))))
    [
      ("growing stream", true, "Graph.of_stream: stream grew between passes");
      ("shrinking stream", false, "Graph.of_stream: stream shrank between passes");
    ]

let prop_generated_graphs_connected =
  QCheck.Test.make ~count:100 ~name:"random_connected is connected"
    (Gen_qcheck.connected_graph_gen ())
    G.is_connected

let suite =
  [
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "binary tree" `Quick test_binary_tree;
    Alcotest.test_case "random tree" `Quick test_random_tree;
    Alcotest.test_case "random connected" `Quick test_random_connected;
    Alcotest.test_case "determinism" `Quick test_random_connected_deterministic;
    Alcotest.test_case "random geometric" `Quick test_random_geometric;
    Alcotest.test_case "lollipop" `Quick test_lollipop;
    Alcotest.test_case "lower-bound G_n" `Quick test_lower_bound_gn;
    Alcotest.test_case "lower-bound G_n^i" `Quick test_lower_bound_gn_i;
    Alcotest.test_case "chorded cycle" `Quick test_chorded_cycle;
    Alcotest.test_case "BKJ star-cycle" `Quick test_bkj_star_cycle;
    Alcotest.test_case "grid_stream = grid" `Quick test_grid_stream_identical;
    Alcotest.test_case "lower_bound_gn_stream = lower_bound_gn" `Quick
      test_lower_bound_gn_stream_identical;
    Alcotest.test_case "gnp determinism and simplicity" `Quick test_gnp;
    Alcotest.test_case "gnp connected backbone" `Quick test_gnp_connected;
    Alcotest.test_case "of_stream replay validated" `Quick
      test_of_stream_replay_validated;
    QCheck_alcotest.to_alcotest prop_generated_graphs_connected;
  ]
