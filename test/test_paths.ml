module P = Csap_graph.Paths
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

(* Weighted square with a diagonal: 0-1:1, 1-2:1, 2-3:1, 0-3:5, 0-2:10. *)
let square () =
  G.create ~n:4 [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (0, 3, 5); (0, 2, 10) ]

let test_dijkstra_simple () =
  let { P.dist; parent; _ } = P.dijkstra (square ()) ~src:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3 |] dist;
  Alcotest.(check int) "parent of 2 is 1" 1 parent.(2);
  Alcotest.(check int) "parent of 3 is 2" 2 parent.(3)

let test_dijkstra_unreachable () =
  let g = G.create ~n:3 [ (0, 1, 4) ] in
  let { P.dist; parent; _ } = P.dijkstra g ~src:0 in
  Alcotest.(check int) "unreachable dist" max_int dist.(2);
  Alcotest.(check int) "unreachable parent" (-1) parent.(2)

let test_spt_structure () =
  let t = P.spt (square ()) ~src:0 in
  Alcotest.(check bool) "spans" true
    (Csap_graph.Tree.is_spanning_tree_of (square ()) t);
  Alcotest.(check int) "depth of 3" 3 (Csap_graph.Tree.depth t 3)

let test_spt_disconnected () =
  let g = G.create ~n:3 [ (0, 1, 1) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Paths.spt: graph is disconnected") (fun () ->
      ignore (P.spt g ~src:0))

let test_diameter () =
  Alcotest.(check int) "path diameter" 12
    (P.diameter (Gen.path 5 ~w:3));
  Alcotest.(check int) "cycle diameter" 6
    (P.diameter (Gen.cycle 6 ~w:2));
  Alcotest.(check int) "star diameter" 2 (P.diameter (Gen.star 5 ~w:1))

let test_radius_center () =
  let r, c = P.radius_and_center (Gen.path 5 ~w:1) in
  Alcotest.(check int) "radius" 2 r;
  Alcotest.(check int) "center" 2 c

let test_max_neighbor_distance () =
  (* Heavy edge 0-2 is bypassed by the light path, so d < W. *)
  let g = G.create ~n:3 [ (0, 1, 1); (1, 2, 1); (0, 2, 100) ] in
  Alcotest.(check int) "d" 2 (P.max_neighbor_distance g);
  Alcotest.(check int) "W" 100 (G.max_weight g);
  let chord = Gen.chorded_cycle 12 ~chord_w:50 in
  Alcotest.(check int) "chorded cycle d" 2 (P.max_neighbor_distance chord)

let test_dist () =
  Alcotest.(check int) "dist" 3 (P.dist (square ()) 0 3);
  Alcotest.(check int) "dist sym" 3 (P.dist (square ()) 3 0)

let prop_dijkstra_vs_bellman_ford =
  QCheck.Test.make ~count:120 ~name:"dijkstra = bellman-ford"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, src) ->
      let a = P.dijkstra g ~src and b = P.bellman_ford g ~src in
      a.P.dist = b.P.dist)

let prop_triangle_inequality =
  QCheck.Test.make ~count:60 ~name:"distances satisfy triangle inequality"
    (Gen_qcheck.connected_graph_gen ~max_n:14 ())
    (fun g ->
      let n = G.n g in
      let d = Array.init n (fun v -> (P.dijkstra g ~src:v).P.dist) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if d.(i).(j) > d.(i).(k) + d.(k).(j) then ok := false
          done
        done
      done;
      !ok)

let prop_spt_depth_is_distance =
  QCheck.Test.make ~count:100 ~name:"SPT depth equals weighted distance"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, src) ->
      let t = P.spt g ~src in
      let { P.dist; _ } = P.dijkstra g ~src in
      let ok = ref true in
      for v = 0 to G.n g - 1 do
        if Csap_graph.Tree.depth t v <> dist.(v) then ok := false
      done;
      !ok)

let prop_spt_weight_bound =
  QCheck.Test.make ~count:80 ~name:"Fact 6.5: w(SPT) <= (n-1) * V"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, src) ->
      let t = P.spt g ~src in
      Csap_graph.Tree.total_weight t
      <= (G.n g - 1) * Csap_graph.Mst.weight g)

(* The indexed-heap Dijkstra must reproduce the historical lazy-deletion
   implementation bit for bit — distances AND the parent tie-breaking. *)
let check_dijkstra_matches_lazy g ~src =
  let a = P.dijkstra g ~src in
  let b = P.dijkstra_lazy g ~src in
  a.P.dist = b.P.dist && a.P.parent = b.P.parent

let test_dijkstra_regression_families () =
  let families =
    [
      ("grid", Csap_graph.Generators.grid 6 7 ~w:5);
      ("bkj", Csap_graph.Generators.bkj_star_cycle 24 ~heavy:40);
      ("chorded", Csap_graph.Generators.chorded_cycle 20 ~chord_w:64);
      ("gn", Csap_graph.Generators.lower_bound_gn 12 ~x:4);
      ("complete", Csap_graph.Generators.complete 12 ~w:3);
      ( "random",
        Csap_graph.Generators.random_connected (Csap_graph.Rng.create 42) 40
          ~extra_edges:60 ~wmax:9 );
    ]
  in
  List.iter
    (fun (name, g) ->
      for src = 0 to min 4 (G.n g - 1) do
        Alcotest.(check bool)
          (Printf.sprintf "%s src=%d dist+parent unchanged" name src)
          true
          (check_dijkstra_matches_lazy g ~src)
      done)
    families

let prop_dijkstra_matches_lazy =
  QCheck.Test.make ~count:150
    ~name:"indexed-heap dijkstra = lazy dijkstra (dist and parent)"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, src) -> check_dijkstra_matches_lazy g ~src)

let prop_extrema_consistent =
  QCheck.Test.make ~count:80
    ~name:"extrema agrees with per-vertex eccentricities"
    (Gen_qcheck.connected_graph_gen ())
    (fun g ->
      let e = P.extrema g in
      let ecc = Array.init (G.n g) (P.eccentricity g) in
      let diameter = Array.fold_left max 0 ecc in
      let radius = Array.fold_left min max_int ecc in
      e.P.diameter = diameter
      && e.P.radius = radius
      && ecc.(e.P.center) = radius
      && e.P.max_neighbor = P.max_neighbor_distance g)

let suite =
  [
    Alcotest.test_case "dijkstra on square" `Quick test_dijkstra_simple;
    Alcotest.test_case "dijkstra regression vs lazy heap" `Quick
      test_dijkstra_regression_families;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "SPT structure" `Quick test_spt_structure;
    Alcotest.test_case "SPT rejects disconnected" `Quick test_spt_disconnected;
    Alcotest.test_case "diameters" `Quick test_diameter;
    Alcotest.test_case "radius and center" `Quick test_radius_center;
    Alcotest.test_case "max neighbour distance d" `Quick
      test_max_neighbor_distance;
    Alcotest.test_case "pairwise dist" `Quick test_dist;
    QCheck_alcotest.to_alcotest prop_dijkstra_matches_lazy;
    QCheck_alcotest.to_alcotest prop_extrema_consistent;
    QCheck_alcotest.to_alcotest prop_dijkstra_vs_bellman_ford;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_spt_depth_is_distance;
    QCheck_alcotest.to_alcotest prop_spt_weight_bound;
  ]
