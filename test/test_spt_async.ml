module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Paths = Csap_graph.Paths
module Delay = Csap_dsim.Delay
module S = Csap.Spt_async

let dijkstra_dist g ~source = (Paths.dijkstra g ~src:source).Paths.dist

(* At quiescence the relaxation wave has explored every improving path,
   so the distances are exact under ANY delay model — the adversarial
   ones merely pay more messages for the same answer. *)
let check_distances name g ~source delay =
  let r = S.run ~delay g ~source in
  Alcotest.(check (array int))
    (name ^ " distances")
    (dijkstra_dist g ~source)
    r.S.dist

let test_distances_exact () =
  check_distances "grid" (Gen.grid 4 5 ~w:3) ~source:2 Delay.Exact;
  check_distances "gn" (Gen.lower_bound_gn 12 ~x:2) ~source:0 Delay.Exact

let test_distances_adversarial () =
  let g =
    Gen.random_connected (Csap_graph.Rng.create 3) 25 ~extra_edges:30 ~wmax:9
  in
  List.iter
    (fun (name, d) -> check_distances name g ~source:4 d)
    [
      ("near-zero", Delay.Near_zero);
      ("race", Delay.race_crossing);
      ("seeded", Delay.seeded 77);
      ("uniform", Delay.Uniform (Csap_graph.Rng.create 9));
    ]

(* Under the normalised schedule a candidate of value d arrives at time
   d, so each vertex improves exactly once: at most 2m messages (the
   source announces once, every other vertex re-announces deg - 1), and
   completion time = the weighted eccentricity of the source. *)
let test_exact_is_linear () =
  let g = Gen.grid 6 6 ~w:4 in
  let r = S.run g ~source:0 in
  Alcotest.(check bool)
    "messages <= 2m" true
    (r.S.measures.Csap.Measures.messages <= 2 * G.m g);
  Alcotest.(check (float 1e-9))
    "time = eccentricity"
    (float_of_int (Paths.eccentricity g 0))
    r.S.measures.Csap.Measures.time

(* The tree is a shortest-path tree: every tree path realises the
   distance. (Parents can differ from Dijkstra's tie-break; the paths
   must not.) *)
let test_tree_is_spt () =
  let g =
    Gen.random_connected (Csap_graph.Rng.create 5) 30 ~extra_edges:45 ~wmax:7
  in
  let r = S.run ~delay:(Delay.seeded 13) g ~source:3 in
  let dist = r.S.dist in
  for v = 0 to G.n g - 1 do
    match Csap_graph.Tree.parent r.S.tree v with
    | None -> Alcotest.(check int) "root distance" 0 dist.(v)
    | Some (p, w) ->
      Alcotest.(check int)
        (Printf.sprintf "tree edge realises distance at %d" v)
        dist.(v)
        (dist.(p) + w)
  done

let prop_distances_match_dijkstra =
  QCheck.Test.make ~count:80 ~name:"spt-async = Dijkstra on random graphs"
    (QCheck.pair (Gen_qcheck.graph_and_vertex ()) QCheck.(int_bound 1000))
    (fun ((g, source), seed) ->
      let r = S.run ~delay:(Delay.seeded seed) g ~source in
      r.S.dist = dijkstra_dist g ~source)

let test_source_validated () =
  let g = Gen.path 4 ~w:1 in
  Alcotest.(check bool)
    "source out of range rejected" true
    (match S.run g ~source:4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "distances under exact delays" `Quick
      test_distances_exact;
    Alcotest.test_case "distances under adversarial delays" `Quick
      test_distances_adversarial;
    Alcotest.test_case "exact schedule is message-linear" `Quick
      test_exact_is_linear;
    Alcotest.test_case "tree realises the distances" `Quick test_tree_is_spt;
    QCheck_alcotest.to_alcotest prop_distances_match_dijkstra;
    Alcotest.test_case "source validated" `Quick test_source_validated;
  ]
