(* The bench farm: JSON codec, canonical cells, checkpoint manifests,
   sweep execution, cancellation, and the crash-resume round trip — a
   sweep killed mid-flight (after at least one cell completed) resumed
   from its manifest must skip the completed cells and produce results
   identical to an uninterrupted run. *)

module Jsonx = Csap_farm.Jsonx
module Cell = Csap_farm.Cell
module Manifest = Csap_farm.Manifest
module Farm = Csap_farm.Farm

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let tmp_dir =
  let counter = ref 0 in
  fun name ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "csap-farm-%s-%d-%d" name (Unix.getpid ()) !counter)
    in
    if Sys.file_exists d then
      Array.iter
        (fun f -> Sys.remove (Filename.concat d f))
        (Sys.readdir d);
    d

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)

let test_jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [ ("s", Jsonx.Str "a\"b\\c\nd");
        ("i", Jsonx.Int (-42));
        ("f", Jsonx.Float 0.1);
        ("t", Jsonx.Bool true);
        ("nil", Jsonx.Null);
        ("a", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Str "x"; Jsonx.Obj [] ]) ]
  in
  let s = Jsonx.to_string v in
  (match Jsonx.parse s with
  | Ok v' ->
    Alcotest.(check string) "print-parse-print is stable" s
      (Jsonx.to_string v')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (* Whitespace, nesting, unicode escapes. *)
  (match Jsonx.parse {|  { "k" : [ 1 , 2.5 , "A\n" ] , "e" : {} }  |} with
  | Ok j ->
    Alcotest.(check (option string)) "escape decode" None (Jsonx.to_str None);
    (match Jsonx.member "k" j with
    | Some (Jsonx.Arr [ Jsonx.Int 1; Jsonx.Float f; Jsonx.Str u ]) ->
      Alcotest.(check (float 1e-9)) "float" 2.5 f;
      Alcotest.(check string) "unicode + escape" "A\n" u
    | _ -> Alcotest.fail "unexpected shape")
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Errors are positioned, and trailing garbage is rejected. *)
  (match Jsonx.parse "{\"a\":1" with
  | Error e ->
    Alcotest.(check bool) "names a byte offset" true (contains ~needle:"byte" e)
  | Ok _ -> Alcotest.fail "accepted truncated object");
  match Jsonx.parse "1 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)

let test_cell_canonical () =
  let c =
    Cell.make ~family:"grid" ~n:25 ~w:4 ~seed:7 ~delay:"seeded:3" ~loss:0.1
      ~pulses:5 ~check:true "flood"
  in
  let s = Cell.to_json c in
  (match Cell.of_json s with
  | Ok c' ->
    Alcotest.(check bool) "round-trips structurally" true (c = c');
    Alcotest.(check string) "digest stable under round trip" (Cell.digest c)
      (Cell.digest c')
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* Distinct cfgs get distinct digests. *)
  Alcotest.(check bool) "digest discriminates" false
    (Cell.digest c = Cell.digest { c with Cell.seed = 8 });
  (* The new adversary/trace knobs are omitted when unset, so every
     pre-existing cell keeps its digest (manifests resume across the
     upgrade); setting them round-trips and changes the digest. *)
  Alcotest.(check bool) "unset knobs leave the canonical JSON alone" false
    (contains ~needle:"adversary" s || contains ~needle:"trace" s);
  let ca = { c with Cell.adversary = Some "greedy"; trace = Some "/tmp/t" } in
  (match Cell.of_json (Cell.to_json ca) with
  | Ok ca' ->
    Alcotest.(check bool) "adversary/trace round-trip" true (ca = ca');
    Alcotest.(check bool) "adversary/trace feed the digest" false
      (Cell.digest ca = Cell.digest c)
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* Hand-written minimal object: defaults fill in. *)
  (match Cell.of_json {|{"protocol":"flood","family":"path","n":4}|} with
  | Ok c ->
    Alcotest.(check int) "default w" 8 c.Cell.w;
    Alcotest.(check bool) "default check" true c.Cell.check
  | Error e -> Alcotest.failf "minimal object rejected: %s" e);
  match Cell.of_json {|{"family":"path"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted cell without protocol"

let test_cell_error_classification () =
  let code c = Cell.error_exit_code c in
  Alcotest.(check int) "invariant -> 1" 1 (code (Cell.Invariant_failed "x"));
  Alcotest.(check int) "unknown -> 2" 2 (code (Cell.Unknown_protocol "x"));
  Alcotest.(check int) "bad spec -> 3" 3 (code (Cell.Bad_spec "x"));
  Alcotest.(check int) "crash -> 4" 4 (code (Cell.Execution_error "x"));
  let classify cell =
    match (Cell.run cell).Cell.result with
    | Ok _ -> "ok"
    | Error e -> string_of_int (Cell.error_exit_code e)
  in
  Alcotest.(check string) "unknown protocol" "2"
    (classify (Cell.make "nosuch"));
  Alcotest.(check string) "bad delay spec" "3"
    (classify (Cell.make ~delay:"bogus" "flood"));
  Alcotest.(check string) "bad adversary spec" "3"
    (classify (Cell.make ~adversary:"bogus" "flood"));
  Alcotest.(check string) "adversary/delay conflict" "3"
    (classify (Cell.make ~adversary:"greedy" ~delay:"exact" "flood"));
  Alcotest.(check string) "bad family" "3"
    (classify (Cell.make ~family:"nope" "flood"));
  Alcotest.(check string) "bad loss" "3"
    (classify (Cell.make ~loss:1.5 "flood"));
  Alcotest.(check string) "root out of range" "3"
    (classify (Cell.make ~root:999 "flood"));
  Alcotest.(check string) "clean run" "ok"
    (classify (Cell.make ~family:"grid" ~n:9 "flood"))

(* ------------------------------------------------------------------ *)
(* Manifests                                                           *)

let test_manifest_roundtrip () =
  let dir = tmp_dir "manifest" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "MANIFEST.jsonl" in
  let m = Manifest.create path in
  let c0 = Cell.make ~family:"grid" ~n:9 "flood" in
  let c1 = Cell.make ~family:"path" ~n:4 "mst-ghs" in
  let e0 = Manifest.add m c0 in
  let e1 = Manifest.add m c1 in
  Manifest.set_state m e0 Manifest.Running;
  Manifest.set_state m e0
    ~result:
      {
        Manifest.comm = 12;
        time = 3.5;
        messages = 6;
        retransmissions = 0;
        restarts = 0;
        wall_ms = 1.25;
      }
    Manifest.Done;
  Manifest.set_state m e1 ~error:"boom" Manifest.Failed;
  Manifest.close m;
  let m' = Manifest.load path in
  Alcotest.(check bool) "not torn" false (Manifest.torn m');
  let p, r, d, f, c = Manifest.counts m' in
  Alcotest.(check (list int)) "counts" [ 0; 0; 1; 1; 0 ] [ p; r; d; f; c ];
  (match Manifest.entries m' with
  | [ a; b ] ->
    Alcotest.(check string) "digest preserved" (Cell.digest c0)
      a.Manifest.digest;
    Alcotest.(check bool) "cell preserved" true (a.Manifest.cell = c0);
    (match a.Manifest.result with
    | Some r ->
      Alcotest.(check int) "comm" 12 r.Manifest.comm;
      Alcotest.(check (float 1e-9)) "wall" 1.25 r.Manifest.wall_ms
    | None -> Alcotest.fail "done entry lost its result");
    Alcotest.(check (option string)) "error preserved" (Some "boom")
      b.Manifest.error
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Manifest.close m'

let test_manifest_torn_tail_and_corruption () =
  let dir = tmp_dir "torn" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "MANIFEST.jsonl" in
  let m = Manifest.create path in
  let e = Manifest.add m (Cell.make ~family:"grid" ~n:9 "flood") in
  Manifest.set_state m e Manifest.Running;
  Manifest.close m;
  (* A crash mid-append leaves a truncated final line: tolerated. *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"kind":"state","id":0,"st|};
  close_out oc;
  let m' = Manifest.load ~readonly:true path in
  Alcotest.(check bool) "torn tail detected" true (Manifest.torn m');
  Alcotest.(check bool) "state from the last whole line" true
    ((List.hd (Manifest.entries m')).Manifest.state = Manifest.Running);
  (* The same garbage mid-file is corruption, named by file and line. *)
  let body =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let oc = open_out_bin path in
  output_string oc body;
  output_string oc "\n";
  output_string oc (Jsonx.to_string (Jsonx.Obj [ ("kind", Jsonx.Str "state");
    ("id", Jsonx.Int 0); ("state", Jsonx.Str "done") ]));
  output_string oc "\n";
  close_out oc;
  match Manifest.load ~readonly:true path with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the file" true (contains ~needle:path msg);
    Alcotest.(check bool) "names the line" true
      (contains ~needle:": line 4:" msg)
  | _ -> Alcotest.fail "interior corruption was not rejected"

(* Regression: a *writable* load after a torn tail must truncate the
   partial line before appending. Without that, the next append is
   glued onto the torn bytes; the glued line is then itself the torn
   tail, so the appended transition silently vanishes on the next
   load — and anything appended after it becomes interior corruption. *)
let test_manifest_writable_load_truncates_torn () =
  let dir = tmp_dir "torn-trunc" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "MANIFEST.jsonl" in
  let m = Manifest.create path in
  let e = Manifest.add m (Cell.make ~family:"grid" ~n:9 "flood") in
  Manifest.set_state m e Manifest.Running;
  Manifest.close m;
  let read_file () =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"kind":"state","id":0,"st|};
  close_out oc;
  let torn_body = read_file () in
  (* Readonly loads must not rewrite the file under a live server. *)
  Manifest.close (Manifest.load ~readonly:true path);
  Alcotest.(check string) "readonly load leaves the file untouched"
    torn_body (read_file ());
  (* A writable load drops the partial line, then appends cleanly. *)
  let m' = Manifest.load path in
  Alcotest.(check bool) "torn tail reported" true (Manifest.torn m');
  let e' = List.hd (Manifest.entries m') in
  Manifest.set_state m' e'
    ~result:
      {
        Manifest.comm = 12;
        time = 3.5;
        messages = 6;
        retransmissions = 0;
        restarts = 0;
        wall_ms = 1.0;
      }
    Manifest.Done;
  ignore (Manifest.add m' (Cell.make ~family:"path" ~n:4 "dfs-token"));
  Manifest.close m';
  (* The reload sees every post-crash append; nothing was glued onto
     the torn bytes or lost. *)
  let m'' = Manifest.load ~readonly:true path in
  Alcotest.(check bool) "clean after recovery" false (Manifest.torn m'');
  (match Manifest.entries m'' with
  | [ a; _ ] ->
    Alcotest.(check bool) "transition survived" true
      (a.Manifest.state = Manifest.Done);
    Alcotest.(check bool) "result survived" true (a.Manifest.result <> None)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Manifest.close m''

(* Torn-manifest reproductions must live under the farm's own directory
   (tmp_dir here), never as debris in the working directory — a previous
   repro left a stray [_torn_repro/] at the repo root. *)
let test_torn_repro_confined_to_farm_dir () =
  let cwd = Sys.getcwd () in
  let before = Array.to_list (Sys.readdir cwd) in
  let dir = tmp_dir "torn-confined" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "MANIFEST.jsonl" in
  let m = Manifest.create path in
  ignore (Manifest.add m (Cell.make ~family:"grid" ~n:9 "flood"));
  Manifest.close m;
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"kind":"cell","id":1,"dig|};
  close_out oc;
  let m' = Manifest.load path in
  Alcotest.(check bool) "repro reproduces the torn tail" true
    (Manifest.torn m');
  Manifest.close m';
  Alcotest.(check bool) "manifest lives under the farm dir" true
    (String.length path > String.length dir
    && String.sub path 0 (String.length dir) = dir);
  Alcotest.(check (list string))
    "no artifacts leaked into the working directory" before
    (Array.to_list (Sys.readdir cwd))

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)

let sweep_cells =
  [
    Cell.make ~family:"grid" ~n:16 ~delay:"exact" "flood";
    Cell.make ~family:"grid" ~n:16 ~delay:"seeded:3" "flood";
    Cell.make ~family:"complete" ~n:8 ~w:5 "mst-ghs";
  ]

let results_of_manifest path =
  List.map
    (fun (e : Manifest.entry) ->
      match e.Manifest.result with
      | Some r -> (e.Manifest.digest, r.Manifest.comm, r.Manifest.messages)
      | None -> (e.Manifest.digest, -1, -1))
    (Manifest.entries (Manifest.load ~readonly:true path))

let test_sweep_runs_and_resume_skips () =
  let dir = tmp_dir "sweep" in
  let cfg = Farm.config ~workers:2 ~dir () in
  let s = Farm.sweep cfg sweep_cells in
  Alcotest.(check int) "all completed" 3 s.Farm.completed;
  Alcotest.(check int) "none failed" 0 s.Farm.failed;
  Alcotest.(check int) "none skipped" 0 s.Farm.skipped;
  (* Resuming a finished sweep executes nothing. *)
  let s' = Farm.sweep ~resume:true cfg sweep_cells in
  Alcotest.(check int) "resume skips everything" 3 s'.Farm.skipped;
  Alcotest.(check int) "resume completes nothing" 0 s'.Farm.completed;
  (* A fresh sweep refuses to clobber the checkpoint. *)
  (match Farm.sweep cfg sweep_cells with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clobbered an existing manifest");
  (* A mismatched cell list is rejected on resume. *)
  match Farm.sweep ~resume:true cfg (List.tl sweep_cells) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resumed with a mismatched cell list"

(* Satellite of the adversary layer: a farm cell carrying both an
   adaptive adversary and a trace prefix dumps replayable JSONL from
   inside the farm worker — and the decision trace re-executes the run
   bit-identically as an oblivious schedule. *)
let test_cell_trace_replayable () =
  let dir = tmp_dir "trace-cell" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let prefix = Filename.concat dir "adv" in
  let cell =
    Cell.make ~family:"grid" ~n:9 ~w:4 ~adversary:"greedy" ~trace:prefix
      ~check:true "flood"
  in
  let s = Farm.sweep (Farm.config ~workers:1 ~dir ()) [ cell ] in
  Alcotest.(check int) "cell completed" 1 s.Farm.completed;
  Alcotest.(check int) "cell passed its invariant" 0 s.Farm.failed;
  let dumped = Printf.sprintf "%s--flood--0.jsonl" prefix in
  Alcotest.(check bool) "worker honoured the cell's trace knob" true
    (Sys.file_exists dumped);
  let module T = Csap_dsim.Trace in
  let tr = T.load_jsonl dumped in
  Alcotest.(check bool) "decision records dumped" true
    (Array.length (T.decisions tr) > 0);
  (* Replay: the recorded decisions, run as an oblivious oracle through
     the same registry entry, reproduce the trace modulo decisions. *)
  let g = Cell.graph cell in
  let module P = Csap.Protocol in
  let _, traces =
    T.with_collector (fun () ->
        P.run
          ~adversary:(Csap_dsim.Adversary.of_delay (T.recorded tr))
          (P.find_exn "flood") g)
  in
  Alcotest.(check bool) "farm trace replays bit-identically" true
    (T.equal (T.without_decisions tr) (List.hd traces))

let test_sweep_cancellation () =
  let dir = tmp_dir "cancel" in
  (* Pre-placed cancel requests are honored at dequeue: the cell is
     recorded cancelled, never executed. *)
  Farm.request_cancel ~dir 1;
  let cfg = Farm.config ~workers:1 ~dir () in
  let s = Farm.sweep cfg sweep_cells in
  Alcotest.(check int) "two completed" 2 s.Farm.completed;
  Alcotest.(check int) "one cancelled" 1 s.Farm.cancelled;
  Alcotest.(check int) "none failed" 0 s.Farm.failed;
  let m = Manifest.load ~readonly:true (Farm.manifest_path ~dir) in
  let e1 = Option.get (Manifest.find m 1) in
  Alcotest.(check bool) "cell 1 cancelled" true
    (e1.Manifest.state = Manifest.Cancelled);
  Alcotest.(check bool) "cell 1 has no result" true (e1.Manifest.result = None)

let test_failed_cell_recorded () =
  let dir = tmp_dir "fail" in
  let cells = [ Cell.make ~family:"grid" ~n:9 "flood"; Cell.make "nosuch" ] in
  let s = Farm.sweep (Farm.config ~workers:1 ~dir ()) cells in
  Alcotest.(check int) "one completed" 1 s.Farm.completed;
  Alcotest.(check int) "one failed" 1 s.Farm.failed;
  let m = Manifest.load ~readonly:true (Farm.manifest_path ~dir) in
  let e = Option.get (Manifest.find m 1) in
  Alcotest.(check bool) "failure state" true
    (e.Manifest.state = Manifest.Failed);
  Alcotest.(check bool) "failure reason recorded" true
    (e.Manifest.error <> None)

(* The satellite's round trip: kill the sweep after the first cell's
   terminal state hits the manifest, resume, and demand (a) completed
   cells were not re-executed and (b) the merged results equal an
   uninterrupted run's. The crash is [Unix._exit] deep inside a worker
   domain — process death without unwinding, the file-state equivalent
   of SIGKILL. It must happen in a separate process so the test runner
   survives, and [Unix.fork] is unavailable once any domain has been
   spawned — so the test re-execs its own binary with a hidden flag
   that [Test_main] routes to {!crash_child}. *)

let crash_child ~dir =
  (try
     ignore
       (Farm.sweep (Farm.config ~workers:1 ~crash_after:1 ~dir ()) sweep_cells)
   with _ -> ());
  (* Reachable only if the crash hook never fired. *)
  Unix._exit 99

let test_crash_resume_roundtrip () =
  let dir = tmp_dir "crash" in
  let baseline_dir = tmp_dir "crash-baseline" in
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process exe
      [| exe; "--farm-crash-child"; dir |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "child died in the crash hook (exit 37)" true
    (status = Unix.WEXITED 37);
  (* The manifest must show a completed prefix and an incomplete rest. *)
  let m = Manifest.load ~readonly:true (Farm.manifest_path ~dir) in
  let _, _, d, _, _ = Manifest.counts m in
  Alcotest.(check int) "exactly one cell completed before the crash" 1 d;
  (* Resume. Completed cells are skipped, the remainder runs. *)
  let s =
    Farm.sweep ~resume:true (Farm.config ~workers:1 ~dir ()) sweep_cells
  in
  Alcotest.(check int) "resume skipped the completed cell" 1 s.Farm.skipped;
  Alcotest.(check int) "resume ran the remainder" 2 s.Farm.completed;
  Alcotest.(check int) "nothing failed" 0 s.Farm.failed;
  (* (a) Not re-executed: a cell's execution leaves exactly one
     "running" transition in the append-only manifest. The completed
     cell must still have exactly one; the re-run ones exactly two
     would be wrong too — they crashed before starting. *)
  let running_lines =
    let ic = open_in (Farm.manifest_path ~dir) in
    let lines = In_channel.input_lines ic in
    close_in ic;
    List.fold_left
      (fun acc line ->
        match Jsonx.parse line with
        | Ok j
          when Jsonx.to_str (Jsonx.member "kind" j) = Some "state"
               && Jsonx.to_str (Jsonx.member "state" j) = Some "running" -> (
          match Jsonx.to_int (Jsonx.member "id" j) with
          | Some id -> (id :: acc)
          | None -> acc)
        | _ -> acc)
      [] lines
  in
  let count id = List.length (List.filter (( = ) id) running_lines) in
  Alcotest.(check int) "completed cell started exactly once" 1 (count 0);
  Alcotest.(check int) "resumed cell 1 started exactly once" 1 (count 1);
  Alcotest.(check int) "resumed cell 2 started exactly once" 1 (count 2);
  (* (b) Merged results identical to an uninterrupted run. *)
  let uninterrupted =
    Farm.sweep (Farm.config ~workers:1 ~dir:baseline_dir ()) sweep_cells
  in
  Alcotest.(check int) "baseline clean" 0 uninterrupted.Farm.failed;
  Alcotest.(check (list (triple string int int)))
    "crash+resume results equal the uninterrupted run's"
    (results_of_manifest (Farm.manifest_path ~dir:baseline_dir))
    (results_of_manifest (Farm.manifest_path ~dir))

let test_serve_spool_and_events () =
  let dir = tmp_dir "serve" in
  (* Spool two cells before the server starts; quota exit after both. *)
  ignore (Farm.submit ~dir (List.nth sweep_cells 0));
  ignore (Farm.submit ~dir (List.nth sweep_cells 2));
  (* A malformed spool file is rejected, not fatal. *)
  let bad = Filename.concat (Filename.concat dir "spool") "job-zzz.json" in
  let oc = open_out bad in
  output_string oc "{nope}";
  close_out oc;
  let s =
    Farm.serve
      (Farm.config ~workers:1 ~max_jobs:2 ~poll_s:0.01 ~dir ())
  in
  Alcotest.(check int) "both spooled cells ran" 2 s.Farm.completed;
  Alcotest.(check int) "none failed" 0 s.Farm.failed;
  Alcotest.(check bool) "bad file quarantined" true
    (Sys.file_exists (bad ^ ".bad"));
  (* Lifecycle events: submitted/started/finished per cell, in order
     per cell, plus serving/stopped bracketing. *)
  let events =
    let ic = open_in (Farm.events_path ~dir) in
    let lines = In_channel.input_lines ic in
    close_in ic;
    List.filter_map
      (fun l ->
        match Jsonx.parse l with
        | Ok j -> Jsonx.to_str (Jsonx.member "event" j)
        | Error _ -> None)
      lines
  in
  Alcotest.(check bool) "has serving" true (List.mem "serving" events);
  Alcotest.(check bool) "has stopped" true (List.mem "stopped" events);
  Alcotest.(check bool) "has rejected" true (List.mem "rejected" events);
  Alcotest.(check int) "two submissions" 2
    (List.length (List.filter (( = ) "submitted") events));
  Alcotest.(check int) "two completions" 2
    (List.length (List.filter (( = ) "finished") events))

let suite =
  [
    Alcotest.test_case "jsonx round trip and errors" `Quick
      test_jsonx_roundtrip;
    Alcotest.test_case "cell canonical JSON and digest" `Quick
      test_cell_canonical;
    Alcotest.test_case "cell error classification and exit codes" `Quick
      test_cell_error_classification;
    Alcotest.test_case "manifest create/replay round trip" `Quick
      test_manifest_roundtrip;
    Alcotest.test_case "manifest torn tail tolerated, corruption named"
      `Quick test_manifest_torn_tail_and_corruption;
    Alcotest.test_case "writable load truncates a torn tail" `Quick
      test_manifest_writable_load_truncates_torn;
    Alcotest.test_case "torn repro confined to the farm dir" `Quick
      test_torn_repro_confined_to_farm_dir;
    Alcotest.test_case "sweep completes and resume skips" `Quick
      test_sweep_runs_and_resume_skips;
    Alcotest.test_case "farm cell dumps a replayable adaptive trace" `Quick
      test_cell_trace_replayable;
    Alcotest.test_case "cancellation short-circuits a queued cell" `Quick
      test_sweep_cancellation;
    Alcotest.test_case "failed cell recorded with reason" `Quick
      test_failed_cell_recorded;
    Alcotest.test_case "crash-resume round trip" `Quick
      test_crash_resume_roundtrip;
    Alcotest.test_case "serve ingests spool and streams events" `Quick
      test_serve_spool_and_events;
  ]
