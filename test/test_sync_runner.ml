module SR = Csap_dsim.Sync_runner
module SP = Csap_dsim.Sync_protocol
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

(* A wave protocol: vertex 0 emits its id at pulse 0; everyone forwards the
   minimum id seen, once, to all neighbours. Every vertex ends with value 0
   at a pulse equal to its weighted distance from 0 (messages travel at speed
   exactly w). Sends happen right when a vertex first learns the value, which
   keeps it simple but *not* in synch in general. *)
type wave_state = { value : int option; heard_at : int }

let wave =
  {
    SP.init = (fun _ ~me -> { value = (if me = 0 then Some 0 else None); heard_at = -1 });
    on_pulse =
      (fun g ~me ~pulse ~inbox state ->
        match state.value with
        | Some _ when state.heard_at >= 0 || me <> 0 -> (state, [])
        | Some v ->
          (* vertex 0 at pulse 0: broadcast *)
          let sends =
            List.rev (G.fold_neighbors g me (fun acc u _ _ -> (u, v) :: acc) [])
          in
          ({ state with heard_at = pulse }, sends)
        | None -> (
          match inbox with
          | [] -> (state, [])
          | (_, v) :: _ ->
            let sends =
              List.rev
                (G.fold_neighbors g me (fun acc u _ _ -> (u, v) :: acc) [])
            in
            ({ value = Some v; heard_at = pulse }, sends)))
  }

let test_wave_arrival_times () =
  let g = Gen.path 4 ~w:3 in
  let outcome = SR.run g wave ~pulses:20 in
  Array.iteri
    (fun v (s : wave_state) ->
      let expected = if v = 0 then 0 else 3 * v in
      Alcotest.(check int)
        (Printf.sprintf "vertex %d heard at distance" v)
        expected
        (if v = 0 then 0 else s.heard_at))
    outcome.SR.states

let test_wave_takes_shortcuts () =
  (* Square with a heavy direct edge: the light two-hop path wins. *)
  let g = G.create ~n:3 [ (0, 1, 1); (1, 2, 1); (0, 2, 10) ] in
  let outcome = SR.run g wave ~pulses:15 in
  let s = outcome.SR.states.(2) in
  Alcotest.(check int) "arrives via light path" 2 s.heard_at

let test_comm_accounting () =
  let g = Gen.path 3 ~w:4 in
  let outcome = SR.run g wave ~pulses:20 in
  (* Sends: v0 -> 1 (4), v1 -> both (8), v2 -> 1 (4): total 16 weighted. *)
  Alcotest.(check int) "messages" 4 outcome.SR.messages;
  Alcotest.(check int) "weighted comm" 16 outcome.SR.weighted_comm

let test_deliveries_log () =
  let g = Gen.path 2 ~w:2 in
  let outcome = SR.run g wave ~pulses:10 in
  let expected : int SP.delivery list =
    [
      { SP.pulse = 2; src = 0; dst = 1; payload = 0 };
      { SP.pulse = 4; src = 1; dst = 0; payload = 0 };
    ]
  in
  Alcotest.(check bool) "delivery log" true (outcome.SR.deliveries = expected)

(* An in-synch counter protocol: on every pulse divisible by w(e), send the
   current pulse number across e. *)
let in_synch_counter =
  {
    SP.init = (fun _ ~me:_ -> 0);
    on_pulse =
      (fun g ~me ~pulse ~inbox state ->
        let received = List.fold_left (fun acc (_, v) -> acc + v) 0 inbox in
        let sends =
          List.rev
            (G.fold_neighbors g me
               (fun acc u w _ -> if pulse mod w = 0 then (u, pulse) :: acc else acc)
               [])
        in
        (state + received, sends))
  }

let test_in_synch_accepted () =
  let g = G.create ~n:3 [ (0, 1, 2); (1, 2, 4) ] in
  let outcome = SR.run ~check_in_synch:true g in_synch_counter ~pulses:8 in
  Alcotest.(check bool) "ran" true (outcome.SR.messages > 0)

let test_out_of_synch_rejected () =
  let g = Gen.path 2 ~w:3 in
  (* wave sends at arbitrary pulses: on this graph vertex 1 replies at pulse
     3 which IS divisible; use a graph with weight 2 and odd arrival. *)
  let g2 = G.create ~n:3 [ (0, 1, 1); (1, 2, 2) ] in
  ignore g;
  let raised =
    try
      ignore (SR.run ~check_in_synch:true g2 wave ~pulses:10);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rejected" true raised

let test_late_messages_logged () =
  (* A message sent near the horizon is logged even if it arrives after the
     last pulse. *)
  let g = Gen.path 2 ~w:5 in
  let outcome = SR.run g wave ~pulses:4 in
  Alcotest.(check int) "send happened" 1 outcome.SR.messages;
  Alcotest.(check int) "logged late delivery" 1
    (List.length outcome.SR.deliveries)

let suite =
  [
    Alcotest.test_case "wave arrival times = weighted distance" `Quick
      test_wave_arrival_times;
    Alcotest.test_case "wave takes light shortcuts" `Quick
      test_wave_takes_shortcuts;
    Alcotest.test_case "communication accounting" `Quick test_comm_accounting;
    Alcotest.test_case "delivery log" `Quick test_deliveries_log;
    Alcotest.test_case "in-synch accepted" `Quick test_in_synch_accepted;
    Alcotest.test_case "out-of-synch rejected" `Quick
      test_out_of_synch_rejected;
    Alcotest.test_case "late messages logged" `Quick test_late_messages_logged;
  ]
