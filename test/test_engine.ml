(* The Boxed event queue is exactly what this file cross-checks the
   packed queue against — the oracle use the alert exists to protect. *)
[@@@alert "-boxed_oracle"]

module E = Csap_dsim.Engine
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

type ping = Ping of int

let test_delivery_and_cost () =
  let g = Gen.path 3 ~w:5 in
  let eng = E.create g in
  let got = ref [] in
  E.set_handler eng 1 (fun ~src (Ping k) -> got := (src, k) :: !got);
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.set_handler eng 2 (fun ~src:_ _ -> ());
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 7));
  ignore (E.run eng);
  Alcotest.(check (list (pair int int))) "delivered" [ (0, 7) ] !got;
  let m = E.metrics eng in
  Alcotest.(check int) "weighted comm" 5 m.Csap_dsim.Metrics.weighted_comm;
  Alcotest.(check int) "messages" 1 m.Csap_dsim.Metrics.messages;
  Alcotest.(check (float 1e-9)) "time = weight" 5.0
    m.Csap_dsim.Metrics.completion_time

let test_non_edge_rejected () =
  let g = Gen.path 3 ~w:1 in
  let eng = E.create g in
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Engine.send: no edge between 0 and 2") (fun () ->
      E.send eng ~src:0 ~dst:2 (Ping 0))

let test_missing_handler () =
  let g = Gen.path 2 ~w:1 in
  let eng = E.create g in
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 0));
  Alcotest.check_raises "no handler"
    (Failure "Engine: no handler at vertex 1 (message sent from 0)")
    (fun () -> ignore (E.run eng))

let test_fifo_order () =
  (* Under random delays, two messages on the same directed edge must still
     arrive in send order. *)
  let g = Gen.path 2 ~w:10 in
  let rng = Csap_graph.Rng.create 99 in
  let eng = E.create ~delay:(Csap_dsim.Delay.Uniform rng) g in
  let got = ref [] in
  E.set_handler eng 1 (fun ~src:_ (Ping k) -> got := k :: !got);
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.schedule eng ~delay:0.0 (fun () ->
      for k = 1 to 50 do
        E.send eng ~src:0 ~dst:1 (Ping k)
      done);
  ignore (E.run eng);
  Alcotest.(check (list int)) "fifo" (List.init 50 (fun i -> 50 - i)) !got

let test_relay_time_accumulates () =
  (* A token relayed along a weight-3 path of 4 edges finishes at time 12. *)
  let g = Gen.path 5 ~w:3 in
  let eng = E.create g in
  for v = 0 to 4 do
    E.set_handler eng v (fun ~src:_ (Ping k) ->
        if v < 4 then E.send eng ~src:v ~dst:(v + 1) (Ping (k + 1)))
  done;
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 0));
  ignore (E.run eng);
  let m = E.metrics eng in
  Alcotest.(check (float 1e-9)) "relay time" 12.0
    m.Csap_dsim.Metrics.completion_time;
  Alcotest.(check int) "relay comm" 12 m.Csap_dsim.Metrics.weighted_comm

let test_run_until () =
  let g = Gen.path 2 ~w:10 in
  let eng = E.create g in
  E.set_handler eng 1 (fun ~src:_ _ -> ());
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 1));
  let processed = E.run ~until:5.0 eng in
  Alcotest.(check int) "only the local event ran" 1 processed;
  Alcotest.(check bool) "still pending" false (E.quiescent eng);
  ignore (E.run eng);
  Alcotest.(check bool) "drained" true (E.quiescent eng)

let test_max_events () =
  (* Two nodes ping-pong forever; max_events must stop the run. *)
  let g = Gen.path 2 ~w:1 in
  let eng = E.create g in
  E.set_handler eng 0 (fun ~src:_ (Ping k) ->
      E.send eng ~src:0 ~dst:1 (Ping (k + 1)));
  E.set_handler eng 1 (fun ~src:_ (Ping k) ->
      E.send eng ~src:1 ~dst:0 (Ping (k + 1)));
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 0));
  let processed = E.run ~max_events:100 eng in
  Alcotest.(check int) "bounded" 100 processed

let test_edge_traffic () =
  let g = Gen.path 3 ~w:2 in
  let eng = E.create g in
  for v = 0 to 2 do
    E.set_handler eng v (fun ~src:_ _ -> ())
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      E.send eng ~src:0 ~dst:1 (Ping 1);
      E.send eng ~src:1 ~dst:0 (Ping 2);
      E.send eng ~src:1 ~dst:2 (Ping 3));
  ignore (E.run eng);
  let traffic = E.edge_traffic eng in
  Alcotest.(check int) "edge 0-1 both directions" 2 traffic.(0);
  Alcotest.(check int) "edge 1-2" 1 traffic.(1)

let test_determinism () =
  (* Same seed, same uniform-delay execution trace. *)
  let trace seed =
    let g = Gen.cycle 6 ~w:7 in
    let rng = Csap_graph.Rng.create seed in
    let eng = E.create ~delay:(Csap_dsim.Delay.Uniform rng) g in
    let log = ref [] in
    for v = 0 to 5 do
      E.set_handler eng v (fun ~src (Ping k) ->
          log := (v, src, k, E.now eng) :: !log;
          if k < 20 then E.send eng ~src:v ~dst:((v + 1) mod 6) (Ping (k + 1)))
    done;
    E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 0));
    ignore (E.run eng);
    !log
  in
  Alcotest.(check bool) "reproducible" true (trace 5 = trace 5);
  Alcotest.(check bool) "seed-sensitive" true (trace 5 <> trace 6)

let test_delay_models_bounds () =
  (* Every model keeps delays in (0, w]. *)
  let rng = Csap_graph.Rng.create 1 in
  let models =
    [
      Csap_dsim.Delay.Exact;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 2);
      Csap_dsim.Delay.Scaled 0.25;
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Jitter (Csap_graph.Rng.create 3);
    ]
  in
  List.iter
    (fun model ->
      for _ = 1 to 200 do
        let w = 1 + Csap_graph.Rng.int rng 50 in
        let d = Csap_dsim.Delay.sample model ~w in
        Alcotest.(check bool)
          (Format.asprintf "%a in (0,w]" Csap_dsim.Delay.pp model)
          true
          (d > 0.0 && d <= float_of_int w)
      done)
    models

(* The packed event queue and the historical boxed heap implement the
   same (time, send-order) total order, so a full execution — delivery
   sequence and metrics — must be identical under either. *)
let test_event_queue_equivalence () =
  let trace queue =
    let g =
      Gen.random_connected (Csap_graph.Rng.create 7) 24 ~extra_edges:30
        ~wmax:8
    in
    let eng = E.create ~event_queue:queue g in
    let log = ref [] in
    let seen = Array.make (G.n g) false in
    for v = 0 to G.n g - 1 do
      E.set_handler eng v (fun ~src (Ping k) ->
          log := (v, src, k) :: !log;
          if not seen.(v) then begin
            seen.(v) <- true;
            G.iter_neighbors g v (fun u _ _ ->
                if u <> src then E.send eng ~src:v ~dst:u (Ping (k + 1)))
          end)
    done;
    E.schedule eng ~delay:0.0 (fun () ->
        seen.(0) <- true;
        G.iter_neighbors g 0 (fun u _ _ -> E.send eng ~src:0 ~dst:u (Ping 0)));
    ignore (E.run eng);
    let m = E.metrics eng in
    ( List.rev !log,
      m.Csap_dsim.Metrics.messages,
      m.Csap_dsim.Metrics.weighted_comm,
      m.Csap_dsim.Metrics.completion_time )
  in
  let log_p, msg_p, comm_p, t_p = trace E.Packed in
  let log_b, msg_b, comm_b, t_b = trace E.Boxed in
  Alcotest.(check bool) "same delivery sequence" true (log_p = log_b);
  Alcotest.(check int) "same messages" msg_b msg_p;
  Alcotest.(check int) "same weighted comm" comm_b comm_p;
  Alcotest.(check (float 1e-9)) "same completion time" t_b t_p

(* A full execution after [reset] must be indistinguishable from one on
   a freshly created engine: same delivery trace, metrics and per-edge
   traffic, with clock, queue and handlers all rewound. *)
let flood_trace g eng =
  let seen = Array.make (G.n g) false in
  let log = ref [] in
  for v = 0 to G.n g - 1 do
    E.set_handler eng v (fun ~src (Ping k) ->
        log := (v, src, k, E.now eng) :: !log;
        if not seen.(v) then begin
          seen.(v) <- true;
          G.iter_neighbors g v (fun u _ _ ->
              if u <> src then E.send eng ~src:v ~dst:u (Ping (k + 1)))
        end)
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      seen.(0) <- true;
      G.iter_neighbors g 0 (fun u _ _ -> E.send eng ~src:0 ~dst:u (Ping 0)));
  ignore (E.run eng);
  let m = E.metrics eng in
  ( List.rev !log,
    m.Csap_dsim.Metrics.messages,
    m.Csap_dsim.Metrics.weighted_comm,
    m.Csap_dsim.Metrics.completion_time,
    Array.copy (E.edge_traffic eng) )

let test_reset_equals_fresh () =
  let g =
    Gen.random_connected (Csap_graph.Rng.create 21) 16 ~extra_edges:20 ~wmax:6
  in
  let eng = E.create g in
  let first = flood_trace g eng in
  E.reset eng;
  Alcotest.(check bool) "quiescent after reset" true (E.quiescent eng);
  Alcotest.(check (float 0.0)) "clock rewound" 0.0 (E.now eng);
  let m = E.metrics eng in
  Alcotest.(check int) "metrics rewound" 0 m.Csap_dsim.Metrics.messages;
  Alcotest.(check int) "traffic rewound" 0
    (Array.fold_left ( + ) 0 (E.edge_traffic eng));
  let again = flood_trace g eng in
  let fresh = flood_trace g (E.create g) in
  Alcotest.(check bool) "reset rerun = fresh engine" true (again = fresh);
  Alcotest.(check bool) "reset rerun = first run" true (again = first)

let test_reset_boxed_queue () =
  (* The boxed event queue must rewind too. *)
  let g = Gen.grid 3 3 ~w:2 in
  let eng = E.create ~event_queue:E.Boxed g in
  let first = flood_trace g eng in
  E.reset eng;
  let again = flood_trace g eng in
  Alcotest.(check bool) "boxed reset rerun = first run" true (again = first)

let test_reset_swaps_delay () =
  (* [reset ~delay] installs the new model for the next run. *)
  let g = Gen.path 2 ~w:10 in
  let eng = E.create g in
  let one_send () =
    E.set_handler eng 0 (fun ~src:_ _ -> ());
    E.set_handler eng 1 (fun ~src:_ _ -> ());
    E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 0));
    ignore (E.run eng);
    (E.metrics eng).Csap_dsim.Metrics.completion_time
  in
  Alcotest.(check (float 1e-9)) "exact delay" 10.0 (one_send ());
  E.reset ~delay:(Csap_dsim.Delay.Scaled 0.25) eng;
  Alcotest.(check (float 1e-9)) "scaled delay installed" 2.5 (one_send ());
  E.reset eng;
  Alcotest.(check (float 1e-9)) "delay kept when not given" 2.5 (one_send ())

(* Regression: [run ~until] used to leave the clock at the last event on
   quiescence, so a timer scheduled between slices fired earlier than in a
   continuous run. *)
let test_until_advances_on_quiescence () =
  let g = Gen.path 2 ~w:1 in
  let eng = E.create g in
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.set_handler eng 1 (fun ~src:_ _ -> ());
  ignore (E.run ~until:5.0 eng);
  Alcotest.(check (float 1e-9)) "clock at the slice end" 5.0 (E.now eng);
  let fired_at = ref nan in
  E.schedule eng ~delay:1.0 (fun () -> fired_at := E.now eng);
  ignore (E.run eng);
  Alcotest.(check (float 1e-9)) "timer relative to slice end" 6.0 !fired_at

(* Regression: [run ~until] used to assign the limit to the clock even when
   the limit was in the past, moving simulated time backwards. *)
let test_until_never_backwards () =
  let g = Gen.path 2 ~w:1 in
  let eng = E.create g in
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.set_handler eng 1 (fun ~src:_ _ -> ());
  E.schedule eng ~delay:6.0 (fun () -> ());
  ignore (E.run eng);
  Alcotest.(check (float 1e-9)) "clock at 6" 6.0 (E.now eng);
  E.schedule eng ~delay:10.0 (fun () -> ());
  let n = E.run ~until:2.0 eng in
  Alcotest.(check int) "stale limit processes nothing" 0 n;
  Alcotest.(check (float 1e-9)) "clock not moved backwards" 6.0 (E.now eng);
  let n = E.run ~until:16.0 eng in
  Alcotest.(check int) "pending event still delivered" 1 n;
  Alcotest.(check (float 1e-9)) "clock at the limit" 16.0 (E.now eng)

(* Sliced runs must visit the same states as one continuous run. *)
let test_until_slices_compose () =
  let g = Gen.path 5 ~w:3 in
  let relay eng =
    for v = 0 to 4 do
      E.set_handler eng v (fun ~src:_ (Ping k) ->
          if v < 4 then E.send eng ~src:v ~dst:(v + 1) (Ping (k + 1)))
    done;
    E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 0))
  in
  let continuous = E.create g in
  relay continuous;
  ignore (E.run continuous);
  let sliced = E.create g in
  relay sliced;
  let total = ref 0 in
  for i = 1 to 12 do
    total := !total + E.run ~until:(float_of_int i) sliced
  done;
  total := !total + E.run sliced;
  Alcotest.(check int) "same event count"
    (E.metrics continuous).Csap_dsim.Metrics.events !total;
  Alcotest.(check (float 1e-9)) "same completion time"
    (E.metrics continuous).Csap_dsim.Metrics.completion_time
    (E.metrics sliced).Csap_dsim.Metrics.completion_time

(* Regression: [completion_time] is bumped by every event, so a local timer
   firing after the last delivery inflated the paper's time measure; the
   measure must read the last *delivery* instead. *)
let test_local_timer_is_free () =
  let g = Gen.path 2 ~w:5 in
  let eng = E.create g in
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.set_handler eng 1 (fun ~src:_ _ -> ());
  E.schedule eng ~delay:0.0 (fun () -> E.send eng ~src:0 ~dst:1 (Ping 0));
  E.schedule eng ~delay:100.0 (fun () -> ());
  ignore (E.run eng);
  let m = E.metrics eng in
  Alcotest.(check (float 1e-9)) "last event at the timer" 100.0
    m.Csap_dsim.Metrics.completion_time;
  Alcotest.(check (float 1e-9)) "last delivery at the message" 5.0
    m.Csap_dsim.Metrics.last_delivery_time;
  Alcotest.(check (float 1e-9)) "paper time ignores the timer" 5.0
    (Csap.Measures.of_metrics m).Csap.Measures.time

(* Regression: NaN passed the [delay < 0] guard and corrupted the event
   queue's strict ordering; non-finite delays must be rejected. *)
let test_invalid_delays_rejected () =
  let g = Gen.path 2 ~w:5 in
  let eng = E.create g in
  E.set_handler eng 0 (fun ~src:_ _ -> ());
  E.set_handler eng 1 (fun ~src:_ _ -> ());
  let rejected d =
    match E.schedule eng ~delay:d (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "NaN rejected" true (rejected nan);
  Alcotest.(check bool) "inf rejected" true (rejected infinity);
  Alcotest.(check bool) "negative rejected" true (rejected (-1.0));
  Alcotest.(check bool) "zero accepted" false (rejected 0.0);
  (* A broken delay model is caught at the send site. *)
  let bad name v =
    let eng =
      E.create
        ~delay:(Csap_dsim.Delay.oracle ~name (fun ~edge_id:_ ~dir:_ ~nth:_ ~w:_ -> v))
        g
    in
    E.set_handler eng 1 (fun ~src:_ _ -> ());
    match E.send eng ~src:0 ~dst:1 (Ping 0) with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "NaN sample rejected" true (bad "nan" nan);
  Alcotest.(check bool) "inf sample rejected" true (bad "inf" infinity);
  Alcotest.(check bool) "negative sample rejected" true (bad "neg" (-0.5))

let suite =
  [
    Alcotest.test_case "delivery and cost accounting" `Quick
      test_delivery_and_cost;
    Alcotest.test_case "non-edge send rejected" `Quick test_non_edge_rejected;
    Alcotest.test_case "missing handler fails loudly" `Quick
      test_missing_handler;
    Alcotest.test_case "FIFO per directed edge" `Quick test_fifo_order;
    Alcotest.test_case "relay time accumulates" `Quick
      test_relay_time_accumulates;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "max_events bounds runaways" `Quick test_max_events;
    Alcotest.test_case "edge traffic counters" `Quick test_edge_traffic;
    Alcotest.test_case "deterministic executions" `Quick test_determinism;
    Alcotest.test_case "delay models respect (0,w]" `Quick
      test_delay_models_bounds;
    Alcotest.test_case "packed and boxed event queues agree" `Quick
      test_event_queue_equivalence;
    Alcotest.test_case "reset rewinds to a fresh engine" `Quick
      test_reset_equals_fresh;
    Alcotest.test_case "reset rewinds the boxed queue" `Quick
      test_reset_boxed_queue;
    Alcotest.test_case "reset swaps the delay model" `Quick
      test_reset_swaps_delay;
    Alcotest.test_case "run ~until advances on quiescence" `Quick
      test_until_advances_on_quiescence;
    Alcotest.test_case "run ~until never moves the clock back" `Quick
      test_until_never_backwards;
    Alcotest.test_case "sliced runs compose" `Quick test_until_slices_compose;
    Alcotest.test_case "post-completion local timer is free" `Quick
      test_local_timer_is_free;
    Alcotest.test_case "NaN and infinite delays rejected" `Quick
      test_invalid_delays_rejected;
  ]
