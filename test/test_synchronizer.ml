module Sync = Csap.Synchronizer
module SP = Csap_dsim.Sync_protocol
module SR = Csap_dsim.Sync_runner
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

(* An in-synch protocol: on every pulse divisible by w(e), send the pulse
   number; fold everything received. Deterministic, message-heavy, and its
   state depends on exactly which messages arrived at which pulse — a good
   probe for execution equivalence. *)
let tick_protocol =
  {
    SP.init = (fun _ ~me -> me * 1_000_003);
    on_pulse =
      (fun g ~me ~pulse ~inbox state ->
        let state =
          List.fold_left
            (fun acc (src, v) -> (acc * 31) + (src * 7) + v)
            state inbox
        in
        let sends =
          List.rev
            (G.fold_neighbors g me
               (fun acc u w _ ->
                 if pulse mod w = 0 then (u, (me * 100) + pulse) :: acc else acc)
               [])
        in
        (state, sends))
  }

let sorted_deliveries ds =
  List.sort (SP.compare_delivery ~cmp_payload:compare) ds

let equivalent_to_reference g outcome ~pulses =
  let reference = SR.run g tick_protocol ~pulses in
  outcome.Sync.states = reference.SR.states
  && sorted_deliveries outcome.Sync.deliveries
     = sorted_deliveries reference.SR.deliveries

let delay_models seed =
  [
    Csap_dsim.Delay.Exact;
    Csap_dsim.Delay.Near_zero;
    Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed);
    Csap_dsim.Delay.Jitter (Csap_graph.Rng.create (seed + 1));
  ]

let test_alpha_exact_simulation () =
  let g = G.create ~n:4 [ (0, 1, 2); (1, 2, 4); (2, 3, 1); (0, 3, 8) ] in
  List.iter
    (fun delay ->
      let o = Sync.run_alpha ~delay g tick_protocol ~pulses:12 in
      Alcotest.(check bool) "alpha simulates exactly" true
        (equivalent_to_reference g o ~pulses:12))
    (delay_models 31)

let test_beta_exact_simulation () =
  let g = Gen.lollipop 4 3 ~w:2 in
  List.iter
    (fun delay ->
      let o = Sync.run_beta ~delay g tick_protocol ~pulses:10 in
      Alcotest.(check bool) "beta simulates exactly" true
        (equivalent_to_reference g o ~pulses:10))
    (delay_models 41)

let test_gamma_exact_simulation () =
  let g = G.create ~n:5 [ (0, 1, 1); (1, 2, 2); (2, 3, 4); (3, 4, 1); (0, 4, 8) ] in
  List.iter
    (fun delay ->
      let o = Sync.run_gamma_w ~delay g tick_protocol ~pulses:16 in
      Alcotest.(check bool) "gamma_w simulates exactly" true
        (equivalent_to_reference g o ~pulses:16))
    (delay_models 51)

let test_gamma_rejects_unnormalized () =
  let g = G.create ~n:3 [ (0, 1, 3); (1, 2, 1) ] in
  Alcotest.check_raises "unnormalized"
    (Invalid_argument "Synchronizer.run_gamma_w: network not normalized")
    (fun () -> ignore (Sync.run_gamma_w g tick_protocol ~pulses:4))

let test_comm_split_accounting () =
  let g = Gen.cycle 6 ~w:2 in
  let o = Sync.run_gamma_w g tick_protocol ~pulses:8 in
  Alcotest.(check int) "split sums to total"
    o.Sync.total.Csap.Measures.comm
    (o.Sync.proto_comm + o.Sync.ack_comm + o.Sync.control_comm);
  Alcotest.(check bool) "acks mirror protocol" true
    (o.Sync.ack_comm = o.Sync.proto_comm)

let test_amortized_overheads_separate () =
  (* gamma_w must clean heavy edges lazily: on a normalized graph with one
     very heavy matching, alpha_w pays the heavy edges every pulse while
     gamma_w pays them once per W pulses. *)
  let heavy = 64 in
  let ring = List.init 12 (fun i -> (i, (i + 1) mod 12, 1)) in
  let chords = [ (0, 6, heavy); (2, 8, heavy); (4, 10, heavy) ] in
  let g = G.create ~n:12 (ring @ chords) in
  let pulses = 128 in
  let a = Sync.run_alpha g tick_protocol ~pulses in
  let c = Sync.run_gamma_w ~k:2 g tick_protocol ~pulses in
  Alcotest.(check bool)
    (Printf.sprintf "gamma_w overhead %.1f < alpha_w overhead %.1f"
       c.Sync.amortized_comm a.Sync.amortized_comm)
    true
    (c.Sync.amortized_comm < a.Sync.amortized_comm);
  Alcotest.(check bool) "gamma still exact" true
    (equivalent_to_reference g c ~pulses)

let test_partition_properties () =
  let g = Gen.grid 4 5 ~w:1 in
  let edges = List.init (G.m g) Fun.id in
  List.iter
    (fun k ->
      let p = Sync.Partition.build g ~edges ~k in
      (* Every vertex clustered; tree parents stay inside the cluster. *)
      Array.iteri
        (fun v c ->
          Alcotest.(check bool) "clustered" true (c >= 0);
          let parent = p.Sync.Partition.parent.(v) in
          if parent >= 0 then
            Alcotest.(check int) "parent same cluster" c
              p.Sync.Partition.cluster_of.(parent))
        p.Sync.Partition.cluster_of;
      (* Radius bound: hop radius <= log_k n. *)
      let bound =
        int_of_float (ceil (log (float_of_int (G.n g)) /. log (float_of_int k)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "radius %d <= log_%d n = %d"
           p.Sync.Partition.hop_radius k bound)
        true
        (p.Sync.Partition.hop_radius <= bound);
      (* Preferred edges: at most one per cluster pair. *)
      let pairs = Hashtbl.create 16 in
      List.iter
        (fun (a, b) ->
          let ca = p.Sync.Partition.cluster_of.(a)
          and cb = p.Sync.Partition.cluster_of.(b) in
          let key = (min ca cb, max ca cb) in
          Alcotest.(check bool) "unique pair" false (Hashtbl.mem pairs key);
          Hashtbl.replace pairs key ())
        p.Sync.Partition.preferred)
    [ 2; 3; 4 ]

let test_partition_disconnected_levels () =
  (* A level graph may be disconnected: clusters must stay within
     components. *)
  let g = G.create ~n:6 [ (0, 1, 1); (2, 3, 1); (4, 5, 1); (1, 2, 4) ] in
  let level0 = [ 0; 1; 2 ] in
  (* edge ids of weight-1 edges *)
  let p = Sync.Partition.build g ~edges:level0 ~k:2 in
  Alcotest.(check bool) "all vertices clustered" true
    (Array.for_all (fun c -> c >= 0) p.Sync.Partition.cluster_of)

let test_divisible_levels_exact_and_dearer () =
  (* The paper's literal level sets give the same (exact) simulation with
     strictly more control traffic than the partition form. *)
  let g =
    Csap.Normalize.graph
      (Gen.random_connected (Csap_graph.Rng.create 13) 16 ~extra_edges:16
         ~wmax:16)
  in
  let pulses = 32 in
  let part = Sync.run_gamma_w ~levels:`Partition g tick_protocol ~pulses in
  let divi = Sync.run_gamma_w ~levels:`Divisible g tick_protocol ~pulses in
  Alcotest.(check bool) "partition exact" true
    (equivalent_to_reference g part ~pulses);
  Alcotest.(check bool) "divisible exact" true
    (equivalent_to_reference g divi ~pulses);
  Alcotest.(check bool)
    (Printf.sprintf "divisible control %d >= partition control %d"
       divi.Sync.control_comm part.Sync.control_comm)
    true
    (divi.Sync.control_comm >= part.Sync.control_comm)

let prop_divisible_exact_random =
  QCheck.Test.make ~count:15
    ~name:"gamma_w (divisible levels) = synchronous reference"
    QCheck.(pair (Gen_qcheck.connected_graph_gen ~max_n:8 ~max_wmax:8 ()) (int_bound 1000))
    (fun (g0, seed) ->
      let g = Csap.Normalize.graph g0 in
      let pulses = 10 in
      let o =
        Sync.run_gamma_w ~levels:`Divisible
          ~delay:(Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed))
          g tick_protocol ~pulses
      in
      equivalent_to_reference g o ~pulses)

let prop_gamma_exact_random =
  QCheck.Test.make ~count:25 ~name:"gamma_w execution = synchronous reference"
    QCheck.(pair (Gen_qcheck.connected_graph_gen ~max_n:10 ~max_wmax:8 ()) (int_bound 1000))
    (fun (g0, seed) ->
      let g = Csap.Normalize.graph g0 in
      let pulses = 12 in
      let o =
        Sync.run_gamma_w
          ~delay:(Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed))
          g tick_protocol ~pulses
      in
      equivalent_to_reference g o ~pulses)

let prop_alpha_exact_random =
  QCheck.Test.make ~count:25 ~name:"alpha_w execution = synchronous reference"
    QCheck.(pair (Gen_qcheck.connected_graph_gen ~max_n:10 ~max_wmax:9 ()) (int_bound 1000))
    (fun (g, seed) ->
      let pulses = 10 in
      let o =
        Sync.run_alpha
          ~delay:(Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed))
          g tick_protocol ~pulses
      in
      equivalent_to_reference g o ~pulses)

let suite =
  [
    Alcotest.test_case "alpha_w exact, all delays" `Quick
      test_alpha_exact_simulation;
    Alcotest.test_case "beta_w exact, all delays" `Quick
      test_beta_exact_simulation;
    Alcotest.test_case "gamma_w exact, all delays" `Quick
      test_gamma_exact_simulation;
    Alcotest.test_case "gamma_w rejects unnormalized nets" `Quick
      test_gamma_rejects_unnormalized;
    Alcotest.test_case "communication accounting splits" `Quick
      test_comm_split_accounting;
    Alcotest.test_case "gamma_w amortizes heavy edges" `Quick
      test_amortized_overheads_separate;
    Alcotest.test_case "partition properties" `Quick test_partition_properties;
    Alcotest.test_case "partition on disconnected levels" `Quick
      test_partition_disconnected_levels;
    Alcotest.test_case "divisible-levels ablation" `Quick
      test_divisible_levels_exact_and_dearer;
    QCheck_alcotest.to_alcotest prop_divisible_exact_random;
    QCheck_alcotest.to_alcotest prop_gamma_exact_random;
    QCheck_alcotest.to_alcotest prop_alpha_exact_random;
  ]
