module M = Csap.Mst_fast
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let edge_set t =
  Csap_graph.Tree.edges t
  |> List.map (fun (p, c, w) -> (min p c, max p c, w))
  |> List.sort compare

let check_mst g =
  let r = M.run g in
  Alcotest.(check bool) "is the canonical MST" true
    (edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0));
  r

let test_small_graphs () =
  ignore (check_mst (Gen.path 6 ~w:3));
  ignore (check_mst (Gen.cycle 8 ~w:2));
  ignore
    (check_mst
       (G.create ~n:5
          [ (0, 1, 4); (1, 2, 7); (2, 3, 1); (3, 4, 9); (0, 4, 2); (1, 3, 3) ]))

let test_phase_bound () =
  let r = check_mst (Gen.complete 16 ~w:4) in
  Alcotest.(check bool)
    (Printf.sprintf "phases %d <= log2 n" r.M.phases)
    true (r.M.phases <= 5)

let test_comm_bound () =
  (* The paper's bound O(E log n log V): heavy edges are only probed after
     the guess reaches them, and every edge at most O(1) times per phase. *)
  let g = Gen.lower_bound_gn 16 ~x:8 in
  let r = check_mst g in
  let e = float_of_int (G.total_weight g) in
  let v = float_of_int (Csap_graph.Mst.weight g) in
  let log2 x = log x /. log 2.0 in
  let bound = 8.0 *. e *. log2 16.0 *. log2 v in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d within O(E log n log V) = %.0f"
       r.M.measures.Csap.Measures.comm bound)
    true
    (float_of_int r.M.measures.Csap.Measures.comm <= bound)

let test_beats_ghs_time_when_dense () =
  (* The point of MST_fast: parallel scanning. On dense graphs GHS tests
     its incident edges serially and pays for it in time. *)
  let g = Gen.complete 20 ~w:100 in
  let fast = M.run g in
  let ghs = Csap.Mst_ghs.run g in
  Alcotest.(check bool)
    (Printf.sprintf "fast time %.0f < ghs time %.0f"
       fast.M.measures.Csap.Measures.time
       ghs.Csap.Mst_ghs.measures.Csap.Measures.time)
    true
    (fast.M.measures.Csap.Measures.time
    < ghs.Csap.Mst_ghs.measures.Csap.Measures.time)

let test_delay_models () =
  let g = Gen.lollipop 5 4 ~w:4 in
  List.iter
    (fun delay ->
      let r = M.run ~delay g in
      Alcotest.(check bool) "MST under adversarial delays" true
        (edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0)))
    [
      Csap_dsim.Delay.Exact;
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 81);
      Csap_dsim.Delay.Jitter (Csap_graph.Rng.create 82);
    ]

let prop_fast_correct =
  QCheck.Test.make ~count:60 ~name:"MST_fast = sequential MST (random)"
    QCheck.(pair (Gen_qcheck.connected_graph_gen ~max_n:16 ()) (int_bound 10_000))
    (fun (g, seed) ->
      let r =
        M.run ~delay:(Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed)) g
      in
      edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0))

let suite =
  [
    Alcotest.test_case "small graphs" `Quick test_small_graphs;
    Alcotest.test_case "phase bound" `Quick test_phase_bound;
    Alcotest.test_case "O(E log n log V) communication" `Quick
      test_comm_bound;
    Alcotest.test_case "beats GHS time on dense graphs" `Quick
      test_beats_ghs_time_when_dense;
    Alcotest.test_case "delay models" `Quick test_delay_models;
    QCheck_alcotest.to_alcotest prop_fast_correct;
  ]
