module M = Csap.Mst_ghs
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let edge_set t =
  Csap_graph.Tree.edges t
  |> List.map (fun (p, c, w) -> (min p c, max p c, w))
  |> List.sort compare

let check_mst g =
  let r = M.run g in
  Alcotest.(check bool) "is the canonical MST" true
    (edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0));
  r

let test_small_graphs () =
  ignore (check_mst (Gen.path 6 ~w:3));
  ignore (check_mst (Gen.cycle 8 ~w:2));
  ignore
    (check_mst
       (G.create ~n:5
          [ (0, 1, 4); (1, 2, 7); (2, 3, 1); (3, 4, 9); (0, 4, 2); (1, 3, 3) ]))

let test_equal_weights () =
  (* Canonical tie-breaking must keep the fragments consistent. *)
  ignore (check_mst (Gen.complete 7 ~w:5));
  ignore (check_mst (Gen.grid 4 4 ~w:1))

let test_level_bound () =
  let g = Gen.complete 16 ~w:3 in
  let r = check_mst g in
  Alcotest.(check bool)
    (Printf.sprintf "levels %d <= log2 n" r.M.max_level)
    true
    (r.M.max_level <= 4)

let test_comm_bound () =
  (* Lemma 8.1: O(E + V log n). *)
  let g = Gen.lower_bound_gn 16 ~x:4 in
  let r = check_mst g in
  let e = G.total_weight g and v = Csap_graph.Mst.weight g in
  let log2n = 4.0 in
  let bound = 8.0 *. (float_of_int e +. (float_of_int v *. log2n)) in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d within O(E + V log n) = %.0f"
       r.M.measures.Csap.Measures.comm bound)
    true
    (float_of_int r.M.measures.Csap.Measures.comm <= bound)

let test_delay_models () =
  let g = Gen.lollipop 5 4 ~w:4 in
  List.iter
    (fun delay ->
      let r = M.run ~delay g in
      Alcotest.(check bool) "MST under adversarial delays" true
        (edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0)))
    [
      Csap_dsim.Delay.Exact;
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 71);
      Csap_dsim.Delay.Jitter (Csap_graph.Rng.create 72);
      Csap_dsim.Delay.Scaled 0.1;
    ]

let prop_ghs_correct =
  QCheck.Test.make ~count:60 ~name:"GHS = sequential MST (random graphs)"
    QCheck.(pair (Gen_qcheck.connected_graph_gen ~max_n:16 ()) (int_bound 10_000))
    (fun (g, seed) ->
      let r =
        M.run ~delay:(Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed)) g
      in
      edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0))

let suite =
  [
    Alcotest.test_case "small graphs" `Quick test_small_graphs;
    Alcotest.test_case "equal weights" `Quick test_equal_weights;
    Alcotest.test_case "level bound" `Quick test_level_bound;
    Alcotest.test_case "O(E + V log n) communication" `Quick test_comm_bound;
    Alcotest.test_case "delay models" `Quick test_delay_models;
    QCheck_alcotest.to_alcotest prop_ghs_correct;
  ]
