module Rng = Csap_graph.Rng

let test_determinism () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_int_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done;
  for _ = 1 to 1000 do
    let x = Rng.int_in rng 3 9 in
    Alcotest.(check bool) "in closed range" true (x >= 3 && x <= 9)
  done

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_int_coverage () =
  (* All residues of a small bound appear within a reasonable sample. *)
  let rng = Rng.create 17 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_split_independence () =
  let parent = Rng.create 23 in
  let child = Rng.split parent in
  let xs = List.init 10 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 10 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_shuffle_permutation () =
  let rng = Rng.create 31 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_copy () =
  let a = Rng.create 47 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copies agree" (Rng.bits64 a) (Rng.bits64 b)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int ranges" `Quick test_int_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int coverage" `Quick test_int_coverage;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "shuffle is a permutation" `Quick
      test_shuffle_permutation;
    Alcotest.test_case "copy" `Quick test_copy;
  ]
