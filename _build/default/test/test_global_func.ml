module GF = Csap.Global_func
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

let delays seed =
  [
    Csap_dsim.Delay.Exact;
    Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed);
    Csap_dsim.Delay.Near_zero;
    Csap_dsim.Delay.Jitter (Csap_graph.Rng.create (seed + 1));
  ]

let test_sum_all_outputs () =
  let g = Gen.grid 3 4 ~w:2 in
  let values = Array.init 12 (fun i -> i * i) in
  let expected = Array.fold_left ( + ) 0 values in
  List.iter
    (fun delay ->
      let r = GF.run_optimal ~delay g ~root:0 ~values GF.sum in
      Array.iter
        (fun out -> Alcotest.(check int) "sum at every vertex" expected out)
        r.GF.outputs)
    (delays 17)

let test_specs () =
  let g = Gen.cycle 7 ~w:3 in
  let values = [| 4; -2; 9; 0; 7; 9; 1 |] in
  let check spec expected =
    let r = GF.run_optimal g ~root:2 ~values spec in
    Alcotest.(check int) spec.GF.name expected r.GF.outputs.(5)
  in
  check GF.sum 28;
  check GF.max_value 9;
  check GF.min_value (-2);
  check GF.xor (4 lxor (-2) lxor 9 lxor 0 lxor 7 lxor 9 lxor 1)

let test_bool_specs () =
  let g = Gen.path 4 ~w:1 in
  let r =
    GF.run_optimal g ~root:0 ~values:[| true; true; false; true |]
      GF.logical_and
  in
  Alcotest.(check bool) "and" false r.GF.outputs.(3);
  let r =
    GF.run_optimal g ~root:0 ~values:[| false; false; true; false |]
      GF.logical_or
  in
  Alcotest.(check bool) "or" true r.GF.outputs.(0)

let test_comm_is_twice_tree_weight () =
  let g = Gen.grid 4 4 ~w:3 in
  let tree = Csap_graph.Paths.spt g ~src:0 in
  let values = Array.make 16 1 in
  let r = GF.run g ~tree ~values GF.sum in
  Alcotest.(check int) "comm = 2 w(T)"
    (2 * Tree.total_weight tree)
    r.GF.measures.Csap.Measures.comm;
  Alcotest.(check int) "messages = 2 (n-1)" 30
    r.GF.measures.Csap.Measures.messages

let test_upper_bound_theorem () =
  (* Corollary 2.3: O(V) comm and O(D) time via the SLT; check the concrete
     constants implied by the construction at q = 2. *)
  let g = Gen.bkj_star_cycle 10 ~heavy:25 in
  let p = Csap_graph.Params.compute g in
  let values = Array.init (Csap_graph.Graph.n g) (fun i -> i) in
  let r = GF.run_optimal ~q:2.0 g ~root:0 ~values GF.sum in
  let v = p.Csap_graph.Params.script_v and d = p.Csap_graph.Params.script_d in
  Alcotest.(check bool) "comm <= 2 (1+2/q) V" true
    (float_of_int r.GF.measures.Csap.Measures.comm <= 2.0 *. 2.0 *. float_of_int v);
  Alcotest.(check bool) "time <= 2 (2q+1) D" true
    (r.GF.measures.Csap.Measures.time <= 2.0 *. 5.0 *. float_of_int d)

let test_lower_bound_comparison () =
  (* Theorem 2.1: communication is Omega(V): no run can beat w(MST). *)
  let g = Gen.bkj_star_cycle 8 ~heavy:12 in
  let p = Csap_graph.Params.compute g in
  let values = Array.make (Csap_graph.Graph.n g) 1 in
  let r = GF.run_optimal g ~root:0 ~values GF.sum in
  Alcotest.(check bool) "comm >= V" true
    (r.GF.measures.Csap.Measures.comm >= p.Csap_graph.Params.script_v)

let test_rejects_bad_tree () =
  let g = Gen.path 4 ~w:2 in
  let other = Gen.path 4 ~w:3 in
  let tree = Csap_graph.Paths.spt other ~src:0 in
  Alcotest.check_raises "weight mismatch"
    (Invalid_argument "Global_func.run: not a spanning tree of the graph")
    (fun () -> ignore (GF.run g ~tree ~values:[| 1; 2; 3; 4 |] GF.sum))

let prop_global_sum_random =
  QCheck.Test.make ~count:60 ~name:"global sum correct on random graphs"
    (Gen_qcheck.graph_and_vertex ~max_n:16 ())
    (fun (g, root) ->
      let n = Csap_graph.Graph.n g in
      let values = Array.init n (fun i -> (i * 37) mod 101) in
      let r = GF.run_optimal g ~root ~values GF.sum in
      let expected = Array.fold_left ( + ) 0 values in
      Array.for_all (fun x -> x = expected) r.GF.outputs)

let suite =
  [
    Alcotest.test_case "sum reaches every vertex, all delay models" `Quick
      test_sum_all_outputs;
    Alcotest.test_case "int specs" `Quick test_specs;
    Alcotest.test_case "bool specs" `Quick test_bool_specs;
    Alcotest.test_case "comm = 2 w(T)" `Quick test_comm_is_twice_tree_weight;
    Alcotest.test_case "Corollary 2.3 bounds" `Quick test_upper_bound_theorem;
    Alcotest.test_case "Theorem 2.1 lower bound" `Quick
      test_lower_bound_comparison;
    Alcotest.test_case "rejects non-spanning tree" `Quick test_rejects_bad_tree;
    QCheck_alcotest.to_alcotest prop_global_sum_random;
  ]
