(* Shared QCheck generators for random connected weighted graphs. *)

module G = Csap_graph.Graph

(* A connected random graph described by (seed, n, extra_edges, wmax);
   shrinks toward smaller n. *)
let connected_graph_gen ?(max_n = 24) ?(max_wmax = 16) () =
  let open QCheck in
  let gen =
    Gen.map
      (fun (seed, n, extra, wmax) ->
        let n = 2 + n and wmax = 1 + wmax in
        let rng = Csap_graph.Rng.create seed in
        Csap_graph.Generators.random_connected rng n ~extra_edges:extra ~wmax)
      (Gen.quad (Gen.int_bound 1_000_000)
         (Gen.int_bound (max_n - 2))
         (Gen.int_bound 20)
         (Gen.int_bound (max_wmax - 1)))
  in
  make ~print:(Format.asprintf "%a" G.pp) gen

let graph_and_vertex ?(max_n = 24) ?(max_wmax = 16) () =
  let open QCheck in
  let gen =
    Gen.map
      (fun (seed, n, extra, wmax) ->
        let n = 2 + n and wmax = 1 + wmax in
        let rng = Csap_graph.Rng.create seed in
        let g =
          Csap_graph.Generators.random_connected rng n ~extra_edges:extra ~wmax
        in
        (g, Csap_graph.Rng.int rng n))
      (Gen.quad (Gen.int_bound 1_000_000)
         (Gen.int_bound (max_n - 2))
         (Gen.int_bound 20)
         (Gen.int_bound (max_wmax - 1)))
  in
  make
    ~print:(fun (g, v) -> Format.asprintf "%a / src=%d" G.pp g v)
    gen
