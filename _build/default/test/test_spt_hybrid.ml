module SH = Csap.Spt_hybrid
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let check ?delay ?strip g source =
  let r = SH.run ?delay ?strip g ~source in
  let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:source in
  for v = 0 to G.n g - 1 do
    Alcotest.(check int)
      (Printf.sprintf "depth %d" v)
      dist.(v)
      (Csap_graph.Tree.depth r.SH.tree v)
  done;
  r

let test_small () = ignore (check (Gen.grid 3 4 ~w:3) 0)

let test_total_near_min () =
  let g = Gen.bkj_star_cycle 10 ~heavy:16 in
  let r = check g 0 in
  let synch = (Csap.Spt_synch.run g ~source:0).Csap.Spt_synch.measures in
  let recur =
    (Csap.Spt_recur.run g ~source:0 ~strip:(Csap.Spt_recur.default_strip g))
      .Csap.Spt_recur.measures
  in
  let best = min synch.Csap.Measures.comm recur.Csap.Measures.comm in
  Alcotest.(check bool)
    (Printf.sprintf "total %d <= 8 min(%d, %d)" r.SH.total_comm
       synch.Csap.Measures.comm recur.Csap.Measures.comm)
    true
    (r.SH.total_comm <= 8 * best + 256)

let test_delay_models () =
  let g = Gen.lollipop 4 3 ~w:3 in
  List.iter
    (fun delay -> ignore (check ~delay g 0))
    [ Csap_dsim.Delay.Exact; Csap_dsim.Delay.Near_zero ]

let prop_spt_hybrid_correct =
  QCheck.Test.make ~count:25 ~name:"SPT_hybrid = Dijkstra"
    (Gen_qcheck.graph_and_vertex ~max_n:10 ~max_wmax:8 ())
    (fun (g, source) ->
      let r = SH.run g ~source in
      let { Csap_graph.Paths.dist; _ } =
        Csap_graph.Paths.dijkstra g ~src:source
      in
      let ok = ref true in
      for v = 0 to G.n g - 1 do
        if Csap_graph.Tree.depth r.SH.tree v <> dist.(v) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "small" `Quick test_small;
    Alcotest.test_case "total near the min" `Quick test_total_near_min;
    Alcotest.test_case "delay models" `Quick test_delay_models;
    QCheck_alcotest.to_alcotest prop_spt_hybrid_correct;
  ]
