module SR = Csap.Spt_recur
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let check_spt ?delay g source strip =
  let r = SR.run ?delay g ~source ~strip in
  let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:source in
  for v = 0 to G.n g - 1 do
    Alcotest.(check int)
      (Printf.sprintf "depth %d (strip %d)" v strip)
      dist.(v)
      (Csap_graph.Tree.depth r.SR.tree v)
  done;
  r

let test_strip_one () = ignore (check_spt (Gen.grid 3 4 ~w:3) 0 1)
let test_strip_large () =
  (* One giant strip = pure asynchronous Bellman-Ford + a single barrier. *)
  let g = Gen.grid 3 4 ~w:3 in
  let d = Csap_graph.Paths.diameter g in
  let r = check_spt g 0 (d + 1) in
  Alcotest.(check int) "one strip" 1 r.SR.strips

let test_strip_sweep_correct () =
  let g = Gen.bkj_star_cycle 10 ~heavy:20 in
  List.iter (fun s -> ignore (check_spt g 0 s)) [ 1; 2; 4; 8; 16; 64 ]

let test_tradeoff_direction () =
  (* Smaller strips => more synchronisation traffic; bigger strips => no
     more sync than smaller ones. *)
  let g = Gen.grid 4 5 ~w:4 in
  let sync s = (SR.run g ~source:0 ~strip:s).SR.sync_comm in
  Alcotest.(check bool) "sync monotone" true (sync 1 >= sync 8);
  Alcotest.(check bool) "sync monotone 2" true (sync 8 >= sync 64)

let test_heavy_edges_sleep () =
  (* Offers over heavy edges are deferred to their strip: on the chorded
     cycle the chords' offers are never useful and arrive only once. *)
  let g = Gen.chorded_cycle 10 ~chord_w:64 in
  let r = check_spt g 0 4 in
  Alcotest.(check bool) "bounded offers" true
    (r.SR.offer_comm <= 4 * G.total_weight g)

let test_delay_models () =
  let g = Gen.lollipop 4 4 ~w:3 in
  List.iter
    (fun delay -> ignore (check_spt ~delay g 0 3))
    [
      Csap_dsim.Delay.Exact;
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 15);
    ]

let test_budget_interrupt () =
  let g = Gen.grid 4 4 ~w:5 in
  Alcotest.(check bool) "tiny budget fails" true
    (SR.try_run ~comm_budget:4 g ~source:0 ~strip:4 = None);
  Alcotest.(check bool) "huge budget succeeds" true
    (SR.try_run ~comm_budget:max_int g ~source:0 ~strip:4 <> None)

let test_ds_detection_under_adversarial_delays () =
  (* The Dijkstra-Scholten machinery must detect strip completion under
     every delay model, including the near-zero adversary that maximises
     in-strip corrections. *)
  let g = Gen.random_connected (Csap_graph.Rng.create 23) 30 ~extra_edges:40 ~wmax:9 in
  List.iter
    (fun delay -> ignore (check_spt ~delay g 0 5))
    [
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Jitter (Csap_graph.Rng.create 24);
      Csap_dsim.Delay.Scaled 0.3;
    ]

let prop_spt_recur_correct =
  QCheck.Test.make ~count:60 ~name:"SPT_recur = Dijkstra for any strip"
    QCheck.(
      pair (Gen_qcheck.graph_and_vertex ~max_n:12 ()) (int_range 1 30))
    (fun ((g, source), strip) ->
      let r = SR.run g ~source ~strip in
      let { Csap_graph.Paths.dist; _ } =
        Csap_graph.Paths.dijkstra g ~src:source
      in
      let ok = ref true in
      for v = 0 to G.n g - 1 do
        if Csap_graph.Tree.depth r.SR.tree v <> dist.(v) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "strip = 1" `Quick test_strip_one;
    Alcotest.test_case "single giant strip" `Quick test_strip_large;
    Alcotest.test_case "strip sweep correctness" `Quick
      test_strip_sweep_correct;
    Alcotest.test_case "sync/work trade-off direction" `Quick
      test_tradeoff_direction;
    Alcotest.test_case "heavy edges sleep" `Quick test_heavy_edges_sleep;
    Alcotest.test_case "delay models" `Quick test_delay_models;
    Alcotest.test_case "budget interruption" `Quick test_budget_interrupt;
    Alcotest.test_case "DS termination under adversarial delays" `Quick
      test_ds_detection_under_adversarial_delays;
    QCheck_alcotest.to_alcotest prop_spt_recur_correct;
  ]
