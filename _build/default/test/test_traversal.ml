module T = Csap_graph.Traversal
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let test_bfs_hops () =
  let g = Gen.path 5 ~w:100 in
  Alcotest.(check (array int)) "hops ignore weights" [| 0; 1; 2; 3; 4 |]
    (T.bfs_hops g ~src:0)

let test_bfs_unreachable () =
  let g = G.create ~n:3 [ (0, 1, 1) ] in
  Alcotest.(check int) "unreachable" (-1) (T.bfs_hops g ~src:0).(2)

let test_hop_diameter () =
  Alcotest.(check int) "cycle" 3 (T.hop_diameter (Gen.cycle 6 ~w:50));
  Alcotest.(check int) "star" 2 (T.hop_diameter (Gen.star 5 ~w:9))

let test_dfs_preorder () =
  let g = Gen.path 4 ~w:1 in
  Alcotest.(check (array int)) "path order" [| 1; 0; 2; 3 |]
    (T.dfs_preorder g ~src:1)

let test_components () =
  let g = G.create ~n:5 [ (0, 1, 1); (3, 4, 1) ] in
  let ids, count = T.components g in
  Alcotest.(check int) "count" 3 count;
  Alcotest.(check bool) "0~1" true (ids.(0) = ids.(1));
  Alcotest.(check bool) "3~4" true (ids.(3) = ids.(4));
  Alcotest.(check bool) "0!~3" true (ids.(0) <> ids.(3))

let test_spanning_tree () =
  let g = Gen.complete 6 ~w:2 in
  let t = T.spanning_tree_dfs g ~root:3 in
  Alcotest.(check bool) "spans" true (Csap_graph.Tree.is_spanning_tree_of g t);
  Alcotest.(check int) "root" 3 (Csap_graph.Tree.root t)

let prop_spanning_tree_spans =
  QCheck.Test.make ~count:100 ~name:"DFS spanning tree spans any graph"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, root) ->
      Csap_graph.Tree.is_spanning_tree_of g (T.spanning_tree_dfs g ~root))

let suite =
  [
    Alcotest.test_case "bfs hops" `Quick test_bfs_hops;
    Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "hop diameter" `Quick test_hop_diameter;
    Alcotest.test_case "dfs preorder" `Quick test_dfs_preorder;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "spanning tree" `Quick test_spanning_tree;
    QCheck_alcotest.to_alcotest prop_spanning_tree_spans;
  ]
