module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module P = Csap_graph.Paths

let check_connected name g =
  Alcotest.(check bool) (name ^ " connected") true (G.is_connected g)

let test_path () =
  let g = Gen.path 6 ~w:3 in
  Alcotest.(check int) "m" 5 (G.m g);
  check_connected "path" g;
  Alcotest.(check int) "diameter" 15 (P.diameter g)

let test_cycle () =
  let g = Gen.cycle 8 ~w:2 in
  Alcotest.(check int) "m" 8 (G.m g);
  Alcotest.(check int) "all degree 2" 2 (G.degree g 5);
  check_connected "cycle" g

let test_star () =
  let g = Gen.star 7 ~w:4 in
  Alcotest.(check int) "hub degree" 6 (G.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (G.degree g 3);
  check_connected "star" g

let test_complete () =
  let g = Gen.complete 6 ~w:1 in
  Alcotest.(check int) "m" 15 (G.m g);
  check_connected "complete" g

let test_grid () =
  let g = Gen.grid 3 4 ~w:1 in
  Alcotest.(check int) "n" 12 (G.n g);
  Alcotest.(check int) "m" 17 (G.m g);
  Alcotest.(check int) "diameter" 5 (P.diameter g);
  check_connected "grid" g

let test_binary_tree () =
  let g = Gen.binary_tree 7 ~w:1 in
  Alcotest.(check int) "m" 6 (G.m g);
  Alcotest.(check int) "root degree" 2 (G.degree g 0);
  check_connected "binary tree" g

let test_random_tree () =
  let rng = Csap_graph.Rng.create 42 in
  let g = Gen.random_tree rng 30 ~wmax:9 in
  Alcotest.(check int) "m = n-1" 29 (G.m g);
  Alcotest.(check bool) "weights in range" true
    (Array.for_all (fun (e : G.edge) -> e.w >= 1 && e.w <= 9) (G.edges g));
  check_connected "random tree" g

let test_random_connected () =
  let rng = Csap_graph.Rng.create 7 in
  let g = Gen.random_connected rng 20 ~extra_edges:15 ~wmax:5 in
  Alcotest.(check int) "m" 34 (G.m g);
  check_connected "random connected" g

let test_random_connected_deterministic () =
  let mk seed =
    Gen.random_connected (Csap_graph.Rng.create seed) 15 ~extra_edges:8 ~wmax:6
  in
  let fingerprint g =
    Array.to_list (G.edges g) |> List.map (fun (e : G.edge) -> (e.u, e.v, e.w))
  in
  Alcotest.(check bool) "same seed same graph" true
    (fingerprint (mk 99) = fingerprint (mk 99));
  Alcotest.(check bool) "different seed different graph" true
    (fingerprint (mk 99) <> fingerprint (mk 100))

let test_random_geometric () =
  let rng = Csap_graph.Rng.create 3 in
  let g = Gen.random_geometric rng 40 ~degree:4 ~scale:1000.0 in
  check_connected "geometric" g;
  Alcotest.(check bool) "enough edges" true (G.m g >= 39)

let test_lollipop () =
  let g = Gen.lollipop 5 4 ~w:2 in
  Alcotest.(check int) "n" 9 (G.n g);
  Alcotest.(check int) "m" 14 (G.m g);
  check_connected "lollipop" g

let test_lower_bound_gn () =
  let n = 10 and x = 3 in
  let g = Gen.lower_bound_gn n ~x in
  check_connected "G_n" g;
  Alcotest.(check int) "path + bypass edges" (9 + 4) (G.m g);
  (* MST is the light path: script-V = (n-1) x. *)
  Alcotest.(check int) "script V" ((n - 1) * x) (Csap_graph.Mst.weight g);
  (* Bypass edges have weight x^4. *)
  (match G.edge_between g 0 (n - 1) with
  | Some (w, _) -> Alcotest.(check int) "bypass weight" 81 w
  | None -> Alcotest.fail "bypass edge 0..n-1 missing")

let test_lower_bound_gn_i () =
  let n = 10 and x = 2 in
  let g = Gen.lower_bound_gn_i n ~i:2 ~x in
  Alcotest.(check int) "two extra vertices" (n + 2) (G.n g);
  check_connected "G_n^i" g;
  (* Bypass (2, 7) replaced by pendants (2, 10) and (7, 11). *)
  Alcotest.(check bool) "bypass removed" true (G.edge_between g 2 7 = None);
  Alcotest.(check bool) "pendant v" true (G.edge_between g 2 10 <> None);
  Alcotest.(check bool) "pendant w" true (G.edge_between g 7 11 <> None)

let test_chorded_cycle () =
  let g = Gen.chorded_cycle 10 ~chord_w:100 in
  check_connected "chorded" g;
  Alcotest.(check int) "d stays 2" 2 (P.max_neighbor_distance g);
  Alcotest.(check int) "W is the chord" 100 (G.max_weight g)

let test_bkj_star_cycle () =
  let g = Gen.bkj_star_cycle 8 ~heavy:50 in
  check_connected "bkj" g;
  (* SPT from the hub uses all spokes: weight k * heavy = 400, while the MST
     uses one spoke + rim: weight 50 + 7. *)
  let spt_w =
    Csap_graph.Tree.total_weight (P.spt g ~src:0)
  in
  Alcotest.(check int) "SPT heavy" (8 * 50) spt_w;
  Alcotest.(check int) "MST light" 57 (Csap_graph.Mst.weight g)

let prop_generated_graphs_connected =
  QCheck.Test.make ~count:100 ~name:"random_connected is connected"
    (Gen_qcheck.connected_graph_gen ())
    G.is_connected

let suite =
  [
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "binary tree" `Quick test_binary_tree;
    Alcotest.test_case "random tree" `Quick test_random_tree;
    Alcotest.test_case "random connected" `Quick test_random_connected;
    Alcotest.test_case "determinism" `Quick test_random_connected_deterministic;
    Alcotest.test_case "random geometric" `Quick test_random_geometric;
    Alcotest.test_case "lollipop" `Quick test_lollipop;
    Alcotest.test_case "lower-bound G_n" `Quick test_lower_bound_gn;
    Alcotest.test_case "lower-bound G_n^i" `Quick test_lower_bound_gn_i;
    Alcotest.test_case "chorded cycle" `Quick test_chorded_cycle;
    Alcotest.test_case "BKJ star-cycle" `Quick test_bkj_star_cycle;
    QCheck_alcotest.to_alcotest prop_generated_graphs_connected;
  ]
