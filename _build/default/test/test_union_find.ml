module Uf = Csap_graph.Union_find

let test_singletons () =
  let uf = Uf.create 5 in
  Alcotest.(check int) "count" 5 (Uf.count uf);
  for i = 0 to 4 do
    Alcotest.(check int) "own root" i (Uf.find uf i)
  done

let test_union () =
  let uf = Uf.create 4 in
  Alcotest.(check bool) "fresh union" true (Uf.union uf 0 1);
  Alcotest.(check bool) "repeat union" false (Uf.union uf 1 0);
  Alcotest.(check bool) "same" true (Uf.same uf 0 1);
  Alcotest.(check bool) "not same" false (Uf.same uf 0 2);
  Alcotest.(check int) "count" 3 (Uf.count uf)

let test_transitive () =
  let uf = Uf.create 6 in
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 2 3);
  ignore (Uf.union uf 1 2);
  Alcotest.(check bool) "0~3" true (Uf.same uf 0 3);
  Alcotest.(check int) "count" 3 (Uf.count uf)

let prop_union_find_partition =
  QCheck.Test.make ~count:100 ~name:"union-find matches naive partition"
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let n = 20 in
      let uf = Uf.create n in
      (* Naive partition via component relabeling. *)
      let label = Array.init n (fun i -> i) in
      let relabel a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then
          Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Uf.union uf a b);
          relabel a b)
        pairs;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Uf.same uf i j <> (label.(i) = label.(j)) then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "union semantics" `Quick test_union;
    Alcotest.test_case "transitivity" `Quick test_transitive;
    QCheck_alcotest.to_alcotest prop_union_find_partition;
  ]
