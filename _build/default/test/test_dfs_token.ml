module D = Csap.Dfs_token
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let test_path_traversal () =
  let g = Gen.path 5 ~w:3 in
  let r = D.run g ~root:0 in
  Alcotest.(check bool) "spanning" true
    (Csap_graph.Tree.is_spanning_tree_of g r.D.dfs_tree);
  (* On a path the DFS tree is the path itself. *)
  Alcotest.(check int) "tree weight" 12
    (Csap_graph.Tree.total_weight r.D.dfs_tree)

let traversal_weight g (tree : Csap_graph.Tree.t) =
  (* Tree edges carry Forward+Retreat (2 traversals); every non-tree edge is
     attempted from both sides, Forward+Reject twice (4 traversals). *)
  (4 * G.total_weight g) - (2 * Csap_graph.Tree.total_weight tree)

let test_estimates () =
  let g = Gen.cycle 6 ~w:2 in
  let r = D.run g ~root:0 in
  Alcotest.(check int) "center estimate"
    (traversal_weight g r.D.dfs_tree)
    r.D.final_center_estimate;
  Alcotest.(check bool) "root estimate within factor 2" true
    (r.D.final_root_estimate * 2 >= r.D.final_center_estimate
    && r.D.final_root_estimate <= r.D.final_center_estimate)

let test_comm_bound () =
  (* Token traversals are 2E; estimate refreshes add at most ~2x on top. *)
  let g = Gen.complete 7 ~w:4 in
  let r = D.run g ~root:0 in
  let e = G.total_weight g in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d within O(E)=%d" r.D.measures.Csap.Measures.comm e)
    true
    (r.D.measures.Csap.Measures.comm <= 8 * e)

let test_time_equals_comm_shape () =
  (* The token is sequential: under Exact delays, time tracks weighted
     traversal count. *)
  let g = Gen.grid 3 3 ~w:2 in
  let r = D.run g ~root:0 in
  Alcotest.(check bool) "time within O(E)" true
    (r.D.measures.Csap.Measures.time
    <= 8.0 *. float_of_int (G.total_weight g))

let test_each_edge_twice () =
  (* Tree edges are traversed exactly twice, non-tree edges exactly four
     times (twice per endpoint). *)
  let g = Gen.complete 5 ~w:1 in
  let r = D.run g ~root:0 in
  Alcotest.(check int) "center estimate = 4E - 2 w(T)"
    (traversal_weight g r.D.dfs_tree)
    r.D.final_center_estimate

let test_deep_graph_estimate_refreshes () =
  (* A long path forces many doublings; the DFS must still finish and the
     root estimate stays a 2-approximation. *)
  let g = Gen.path 64 ~w:1 in
  let r = D.run g ~root:0 in
  Alcotest.(check bool) "approx" true
    (r.D.final_root_estimate <= r.D.final_center_estimate
    && 2 * r.D.final_root_estimate >= r.D.final_center_estimate)

let prop_dfs_tree_valid =
  QCheck.Test.make ~count:80 ~name:"DFS spans; estimates 2-approximate"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, root) ->
      let r =
        D.run ~delay:(Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 3)) g
          ~root
      in
      Csap_graph.Tree.is_spanning_tree_of g r.D.dfs_tree
      && r.D.final_center_estimate = traversal_weight g r.D.dfs_tree
      && r.D.final_root_estimate <= r.D.final_center_estimate
      && 2 * r.D.final_root_estimate >= r.D.final_center_estimate)

let suite =
  [
    Alcotest.test_case "path traversal" `Quick test_path_traversal;
    Alcotest.test_case "estimates" `Quick test_estimates;
    Alcotest.test_case "O(E) communication" `Quick test_comm_bound;
    Alcotest.test_case "O(E) time" `Quick test_time_equals_comm_shape;
    Alcotest.test_case "every edge exactly twice" `Quick test_each_edge_twice;
    Alcotest.test_case "long path refreshes" `Quick
      test_deep_graph_estimate_refreshes;
    QCheck_alcotest.to_alcotest prop_dfs_tree_valid;
  ]
