module G = Csap_graph.Graph

let triangle () = G.create ~n:3 [ (0, 1, 2); (1, 2, 3); (0, 2, 7) ]

let test_create () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (G.n g);
  Alcotest.(check int) "m" 3 (G.m g);
  Alcotest.(check int) "total weight" 12 (G.total_weight g);
  Alcotest.(check int) "max weight" 7 (G.max_weight g);
  Alcotest.(check bool) "connected" true (G.is_connected g)

let test_normalisation () =
  let g = G.create ~n:3 [ (2, 0, 5) ] in
  let e = G.edge g 0 in
  Alcotest.(check int) "u" 0 e.G.u;
  Alcotest.(check int) "v" 2 e.G.v

let test_neighbors () =
  let g = triangle () in
  let nbrs =
    Array.to_list (G.neighbors g 1) |> List.map (fun (v, w, _) -> (v, w))
  in
  Alcotest.(check (list (pair int int)))
    "neighbors of 1"
    [ (0, 2); (2, 3) ]
    (List.sort compare nbrs);
  Alcotest.(check int) "degree" 2 (G.degree g 1)

let test_edge_between () =
  let g = triangle () in
  (match G.edge_between g 0 2 with
  | Some (w, _) -> Alcotest.(check int) "weight" 7 w
  | None -> Alcotest.fail "edge 0-2 should exist");
  let g2 = G.create ~n:4 [ (0, 1, 1) ] in
  Alcotest.(check bool)
    "missing edge" true
    (G.edge_between g2 2 3 = None)

let test_invalid () =
  let expect_invalid name f =
    Alcotest.check_raises name
      (Invalid_argument
         (match name with
         | "self-loop" -> "Graph.create: self-loop"
         | "duplicate" -> "Graph.create: duplicate edge"
         | "zero weight" -> "Graph.create: weight must be >= 1"
         | _ -> "Graph.create: endpoint out of range"))
      f
  in
  expect_invalid "self-loop" (fun () -> ignore (G.create ~n:3 [ (1, 1, 1) ]));
  expect_invalid "duplicate" (fun () ->
      ignore (G.create ~n:3 [ (0, 1, 1); (1, 0, 2) ]));
  expect_invalid "zero weight" (fun () ->
      ignore (G.create ~n:3 [ (0, 1, 0) ]));
  expect_invalid "range" (fun () -> ignore (G.create ~n:3 [ (0, 3, 1) ]))

let test_disconnected () =
  let g = G.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.(check bool) "disconnected" false (G.is_connected g)

let test_map_weights () =
  let g = triangle () in
  let doubled = G.map_weights g (fun e -> 2 * e.G.w) in
  Alcotest.(check int) "doubled total" 24 (G.total_weight doubled)

let test_subgraph () =
  let g = triangle () in
  let light = G.subgraph g ~keep_edge:(fun e -> e.G.w < 5) in
  Alcotest.(check int) "m" 2 (G.m light);
  Alcotest.(check int) "n preserved" 3 (G.n light)

let test_other_endpoint () =
  let e = { G.u = 3; v = 7; w = 1 } in
  Alcotest.(check int) "other of 3" 7 (G.other_endpoint e 3);
  Alcotest.(check int) "other of 7" 3 (G.other_endpoint e 7)

let test_compare_edges () =
  let a = { G.u = 0; v = 1; w = 5 } and b = { G.u = 0; v = 2; w = 5 } in
  Alcotest.(check bool) "w ties broken" true (G.compare_edges a b < 0);
  Alcotest.(check int) "equal" 0 (G.compare_edges a a)

let suite =
  [
    Alcotest.test_case "create and measures" `Quick test_create;
    Alcotest.test_case "endpoint normalisation" `Quick test_normalisation;
    Alcotest.test_case "neighbors" `Quick test_neighbors;
    Alcotest.test_case "edge_between" `Quick test_edge_between;
    Alcotest.test_case "invalid inputs rejected" `Quick test_invalid;
    Alcotest.test_case "disconnected detection" `Quick test_disconnected;
    Alcotest.test_case "map_weights" `Quick test_map_weights;
    Alcotest.test_case "subgraph" `Quick test_subgraph;
    Alcotest.test_case "other_endpoint" `Quick test_other_endpoint;
    Alcotest.test_case "canonical edge order" `Quick test_compare_edges;
  ]
