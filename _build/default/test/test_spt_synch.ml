module SS = Csap.Spt_synch
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let states_match_dijkstra g source (states : SS.state array) =
  let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:source in
  let ok = ref true in
  Array.iteri
    (fun v (s : SS.state) -> if s.SS.dist <> dist.(v) && v <> source then ok := false)
    states;
  states.(source).SS.dist = 0 && !ok

let test_synchronous_reference () =
  let g = Gen.grid 3 4 ~w:3 in
  let states, comm = SS.run_synchronous g ~source:0 in
  Alcotest.(check bool) "distances correct" true
    (states_match_dijkstra g 0 states);
  (* Every vertex announces exactly once: comm = 2 script-E. *)
  Alcotest.(check int) "comm = 2E" (2 * G.total_weight g) comm

let test_async_pipeline_small () =
  let g = G.create ~n:4 [ (0, 1, 2); (1, 2, 3); (2, 3, 1); (0, 3, 9) ] in
  let r = SS.run g ~source:0 in
  Alcotest.(check bool) "SPT depths" true
    (Csap_graph.Tree.is_spanning_tree_of g r.SS.tree);
  let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:0 in
  for v = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "depth %d" v)
      dist.(v)
      (Csap_graph.Tree.depth r.SS.tree v)
  done

let test_async_pipeline_delays () =
  let g = Gen.bkj_star_cycle 7 ~heavy:9 in
  List.iter
    (fun delay ->
      let r = SS.run ~delay g ~source:0 in
      let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:0 in
      for v = 0 to G.n g - 1 do
        Alcotest.(check int)
          (Printf.sprintf "depth %d" v)
          dist.(v)
          (Csap_graph.Tree.depth r.SS.tree v)
      done)
    [
      Csap_dsim.Delay.Exact;
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 77);
    ]

let test_proto_comm_is_small () =
  (* Corollary 9.1: the protocol part stays O(E) (x2 for normalization). *)
  let g = Gen.grid 4 4 ~w:5 in
  let r = SS.run g ~source:0 in
  Alcotest.(check bool) "proto comm <= 4E" true
    (r.SS.proto_comm <= 4 * G.total_weight g)

let prop_spt_synch_correct =
  QCheck.Test.make ~count:20 ~name:"SPT_synch = Dijkstra (async, random)"
    (Gen_qcheck.graph_and_vertex ~max_n:10 ~max_wmax:9 ())
    (fun (g, source) ->
      let r = SS.run g ~source in
      let { Csap_graph.Paths.dist; _ } =
        Csap_graph.Paths.dijkstra g ~src:source
      in
      let ok = ref true in
      for v = 0 to G.n g - 1 do
        if Csap_graph.Tree.depth r.SS.tree v <> dist.(v) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "synchronous reference" `Quick
      test_synchronous_reference;
    Alcotest.test_case "async pipeline (small)" `Quick
      test_async_pipeline_small;
    Alcotest.test_case "async pipeline (delay models)" `Quick
      test_async_pipeline_delays;
    Alcotest.test_case "protocol communication O(E)" `Quick
      test_proto_comm_is_small;
    QCheck_alcotest.to_alcotest prop_spt_synch_correct;
  ]
