let int_heap () = Csap_graph.Heap.create ~cmp:compare

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "empty" true (Csap_graph.Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Csap_graph.Heap.peek_min h);
  Alcotest.(check (option int)) "pop" None (Csap_graph.Heap.pop_min h)

let test_order () =
  let h = int_heap () in
  List.iter (Csap_graph.Heap.add h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (list int))
    "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ]
    (Csap_graph.Heap.to_sorted_list h)

let test_duplicates () =
  let h = int_heap () in
  List.iter (Csap_graph.Heap.add h) [ 4; 4; 4; 1; 1 ];
  Alcotest.(check (list int))
    "duplicates kept" [ 1; 1; 4; 4; 4 ]
    (Csap_graph.Heap.to_sorted_list h)

let test_of_list () =
  let h = Csap_graph.Heap.of_list ~cmp:compare [ 9; 1; 5; 5; 0 ] in
  Alcotest.(check int) "size" 5 (Csap_graph.Heap.size h);
  Alcotest.(check (option int)) "min" (Some 0) (Csap_graph.Heap.peek_min h)

let test_clear () =
  let h = int_heap () in
  List.iter (Csap_graph.Heap.add h) [ 1; 2; 3 ];
  Csap_graph.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Csap_graph.Heap.is_empty h)

let test_interleaved () =
  let h = int_heap () in
  Csap_graph.Heap.add h 10;
  Csap_graph.Heap.add h 5;
  Alcotest.(check (option int)) "pop1" (Some 5) (Csap_graph.Heap.pop_min h);
  Csap_graph.Heap.add h 1;
  Csap_graph.Heap.add h 20;
  Alcotest.(check (option int)) "pop2" (Some 1) (Csap_graph.Heap.pop_min h);
  Alcotest.(check (option int)) "pop3" (Some 10) (Csap_graph.Heap.pop_min h);
  Alcotest.(check (option int)) "pop4" (Some 20) (Csap_graph.Heap.pop_min h)

let prop_heap_sort =
  QCheck.Test.make ~count:200 ~name:"heap drains sorted"
    QCheck.(list int)
    (fun xs ->
      let h = Csap_graph.Heap.of_list ~cmp:compare xs in
      Csap_graph.Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_min =
  QCheck.Test.make ~count:200 ~name:"peek_min is the minimum"
    QCheck.(list_of_size (Gen.int_range 1 50) int)
    (fun xs ->
      let h = Csap_graph.Heap.of_list ~cmp:compare xs in
      Csap_graph.Heap.peek_min h = Some (List.fold_left min (List.hd xs) xs))

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "drains in order" `Quick test_order;
    Alcotest.test_case "keeps duplicates" `Quick test_duplicates;
    Alcotest.test_case "of_list heapifies" `Quick test_of_list;
    Alcotest.test_case "clear empties" `Quick test_clear;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_heap_min;
  ]
