module Params = Csap_graph.Params
module Gen = Csap_graph.Generators

let test_path_params () =
  let p = Params.compute (Gen.path 5 ~w:2) in
  Alcotest.(check int) "E" 8 p.Params.script_e;
  Alcotest.(check int) "V" 8 p.Params.script_v;
  Alcotest.(check int) "D" 8 p.Params.script_d;
  Alcotest.(check int) "d" 2 p.Params.d;
  Alcotest.(check int) "W" 2 p.Params.w_max

let test_star_params () =
  let p = Params.compute (Gen.star 6 ~w:3) in
  Alcotest.(check int) "E" 15 p.Params.script_e;
  Alcotest.(check int) "V" 15 p.Params.script_v;
  Alcotest.(check int) "D" 6 p.Params.script_d

let test_gn_params () =
  (* On G_n the weighted parameters separate: E >> n V. *)
  let p = Params.compute (Gen.lower_bound_gn 12 ~x:3) in
  Alcotest.(check int) "V" 33 p.Params.script_v;
  Alcotest.(check bool) "E dominates n*V" true
    (p.Params.script_e > p.Params.n * p.Params.script_v)

let test_chorded_params () =
  (* The chorded cycle separates d from W. *)
  let p = Params.compute (Gen.chorded_cycle 12 ~chord_w:77) in
  Alcotest.(check int) "d" 2 p.Params.d;
  Alcotest.(check int) "W" 77 p.Params.w_max

let prop_invariants =
  QCheck.Test.make ~count:120 ~name:"paper parameter relations hold"
    (Gen_qcheck.connected_graph_gen ())
    (fun g -> Params.invariants_hold (Params.compute g))

let suite =
  [
    Alcotest.test_case "path parameters" `Quick test_path_params;
    Alcotest.test_case "star parameters" `Quick test_star_params;
    Alcotest.test_case "lower-bound separation" `Quick test_gn_params;
    Alcotest.test_case "d vs W separation" `Quick test_chorded_params;
    QCheck_alcotest.to_alcotest prop_invariants;
  ]
