test/test_slt.ml: Alcotest Array Csap Csap_graph Format Gen_qcheck List QCheck QCheck_alcotest
