test/test_con_hybrid.ml: Alcotest Csap Csap_graph Gen_qcheck Printf QCheck QCheck_alcotest
