test/test_tree_cover.ml: Alcotest Array Csap_cover Csap_graph Gen_qcheck List Printf QCheck QCheck_alcotest
