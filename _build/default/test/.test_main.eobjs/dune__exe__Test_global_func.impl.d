test/test_global_func.ml: Alcotest Array Csap Csap_dsim Csap_graph Gen_qcheck List QCheck QCheck_alcotest
