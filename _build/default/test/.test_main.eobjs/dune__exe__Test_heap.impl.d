test/test_heap.ml: Alcotest Csap_graph Gen List QCheck QCheck_alcotest
