test/test_mst_fast.ml: Alcotest Csap Csap_dsim Csap_graph Gen_qcheck List Printf QCheck QCheck_alcotest
