test/test_engine.ml: Alcotest Array Csap_dsim Csap_graph Format List
