test/test_params.ml: Alcotest Csap_graph Gen_qcheck QCheck QCheck_alcotest
