test/test_synchronizer.ml: Alcotest Array Csap Csap_dsim Csap_graph Fun Gen_qcheck Hashtbl List Printf QCheck QCheck_alcotest
