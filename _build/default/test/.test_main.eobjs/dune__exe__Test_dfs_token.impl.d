test/test_dfs_token.ml: Alcotest Csap Csap_dsim Csap_graph Gen_qcheck Printf QCheck QCheck_alcotest
