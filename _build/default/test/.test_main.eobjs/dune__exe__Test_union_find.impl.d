test/test_union_find.ml: Alcotest Array Csap_graph List QCheck QCheck_alcotest
