test/test_flood.ml: Alcotest Array Csap Csap_dsim Csap_graph Gen_qcheck List Printf QCheck QCheck_alcotest
