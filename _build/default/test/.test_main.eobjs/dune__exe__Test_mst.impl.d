test/test_mst.ml: Alcotest Array Csap_graph Gen_qcheck List QCheck QCheck_alcotest
