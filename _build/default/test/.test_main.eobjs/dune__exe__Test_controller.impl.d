test/test_controller.ml: Alcotest Array Csap Csap_dsim Csap_graph Fun Gen_qcheck List Printf QCheck QCheck_alcotest
