test/test_extra.ml: Alcotest Array Csap Csap_cover Csap_dsim Csap_graph Gen_qcheck Hashtbl Printf QCheck QCheck_alcotest
