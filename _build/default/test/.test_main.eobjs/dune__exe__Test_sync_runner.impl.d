test/test_sync_runner.ml: Alcotest Array Csap_dsim Csap_graph List Printf
