test/test_slt_distributed.ml: Alcotest Csap Csap_dsim Csap_graph Gen_qcheck List Printf QCheck QCheck_alcotest
