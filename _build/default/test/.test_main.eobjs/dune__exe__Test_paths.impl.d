test/test_paths.ml: Alcotest Array Csap_graph Gen_qcheck QCheck QCheck_alcotest
