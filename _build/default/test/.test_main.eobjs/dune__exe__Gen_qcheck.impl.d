test/gen_qcheck.ml: Csap_graph Format Gen QCheck
