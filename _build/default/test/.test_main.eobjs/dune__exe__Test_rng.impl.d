test/test_rng.ml: Alcotest Array Csap_graph Fun List
