test/test_tree.ml: Alcotest Array Csap_graph Gen_qcheck Hashtbl List Printf QCheck QCheck_alcotest
