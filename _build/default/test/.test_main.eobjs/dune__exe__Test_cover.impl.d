test/test_cover.ml: Alcotest Array Csap_cover Csap_graph Gen_qcheck List QCheck QCheck_alcotest
