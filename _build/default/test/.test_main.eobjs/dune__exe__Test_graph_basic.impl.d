test/test_graph_basic.ml: Alcotest Array Csap_graph List
