test/test_classical.ml: Alcotest Array Csap Csap_dsim Csap_graph Fun Printf
