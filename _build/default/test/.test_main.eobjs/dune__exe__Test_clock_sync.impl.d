test/test_clock_sync.ml: Alcotest Array Csap Csap_dsim Csap_graph Float Gen_qcheck List Printf QCheck QCheck_alcotest
