test/test_normalize.ml: Alcotest Array Csap Csap_dsim Csap_graph Gen_qcheck List Option Printf QCheck QCheck_alcotest
