module M = Csap.Mst_hybrid
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let edge_set t =
  Csap_graph.Tree.edges t
  |> List.map (fun (p, c, w) -> (min p c, max p c, w))
  |> List.sort compare

let check_mst ?delay g root =
  let r = M.run ?delay g ~root in
  Alcotest.(check bool) "is the canonical MST" true
    (edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0));
  r

let test_small_graphs () =
  ignore (check_mst (Gen.path 6 ~w:3) 0);
  ignore (check_mst (Gen.cycle 8 ~w:2) 3);
  ignore (check_mst (Gen.grid 3 4 ~w:5) 0)

let test_min_on_gn () =
  (* On G_n, script-E >> n V, so MST_centr must win and the hybrid's cost
     must track n V, not E. *)
  let g = Gen.lower_bound_gn 16 ~x:8 in
  let r = check_mst g 0 in
  Alcotest.(check bool) "centr wins" true (r.M.winner = M.Mst_centr);
  let nv = 16 * Csap_graph.Mst.weight g in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d = O(nV = %d), below E = %d"
       r.M.measures.Csap.Measures.comm nv (G.total_weight g))
    true
    (r.M.measures.Csap.Measures.comm <= 16 * nv)

let test_min_on_sparse () =
  (* On a light path, E + V log n << n V: GHS must win. The controlled GHS
     pays the Corollary 5.1 envelope on top: O((E + V log n) log^2 c). *)
  let g = Gen.path 32 ~w:1 in
  let r = check_mst g 0 in
  Alcotest.(check bool) "ghs wins" true (r.M.winner = M.Ghs);
  let e = float_of_int (G.total_weight g) in
  let v = float_of_int (Csap_graph.Mst.weight g) in
  let log2 x = log x /. log 2.0 in
  let c = e +. (v *. log2 32.0) in
  let bound = 4.0 *. c *. log2 c *. log2 c in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d <= controlled envelope %.0f"
       r.M.measures.Csap.Measures.comm bound)
    true
    (float_of_int r.M.measures.Csap.Measures.comm <= bound)

let test_delay_models () =
  let g = Gen.lollipop 5 4 ~w:4 in
  List.iter
    (fun delay ->
      ignore (check_mst ~delay g 0))
    [
      Csap_dsim.Delay.Exact;
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 91);
    ]

let prop_hybrid_correct_and_min =
  QCheck.Test.make ~count:40 ~name:"MST_hybrid = MST, cost near min"
    (Gen_qcheck.graph_and_vertex ~max_n:12 ())
    (fun (g, root) ->
      let r = M.run g ~root in
      let e = G.total_weight g in
      let v = Csap_graph.Mst.weight g in
      let n = G.n g in
      let ghs_bound = 8 * (e + (v * 4)) in
      let centr_bound = 8 * n * v in
      edge_set r.M.mst = edge_set (Csap_graph.Mst.prim g ~root:0)
      && r.M.measures.Csap.Measures.comm
         <= (4 * min ghs_bound centr_bound) + (16 * G.max_weight g))

let suite =
  [
    Alcotest.test_case "small graphs" `Quick test_small_graphs;
    Alcotest.test_case "O(nV) side of the min (G_n)" `Quick test_min_on_gn;
    Alcotest.test_case "O(E + V log n) side of the min" `Quick
      test_min_on_sparse;
    Alcotest.test_case "delay models" `Quick test_delay_models;
    QCheck_alcotest.to_alcotest prop_hybrid_correct_and_min;
  ]
