module SD = Csap.Slt_distributed
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

let check ?delay ?q g root =
  let r = SD.run ?delay ?q g ~root in
  let p = Csap_graph.Params.compute g in
  Alcotest.(check bool) "spans" true (Tree.is_spanning_tree_of g r.SD.tree);
  Alcotest.(check bool) "weight bound" true
    (float_of_int (Tree.total_weight r.SD.tree)
    <= Csap.Slt.weight_bound ~q:r.SD.q
         ~script_v:p.Csap_graph.Params.script_v
       +. 1e-9);
  Alcotest.(check bool) "depth bound" true
    (float_of_int (Tree.height r.SD.tree)
    <= Csap.Slt.depth_bound ~q:r.SD.q
         ~script_d:p.Csap_graph.Params.script_d
       +. 1e-9);
  r

let test_matches_sequential () =
  (* Same breakpoint scan, same subgraph: the weights agree with the
     sequential algorithm (tie-breaking in the final SPT may differ, so
     compare the invariant quantities). *)
  let g = Gen.bkj_star_cycle 10 ~heavy:30 in
  let dist_r = check g 0 in
  let seq = Csap.Slt.build ~q:2.0 g ~root:0 in
  Alcotest.(check int) "same tree weight"
    (Tree.total_weight seq.Csap.Slt.tree)
    (Tree.total_weight dist_r.SD.tree);
  Alcotest.(check int) "same height"
    (Tree.height seq.Csap.Slt.tree)
    (Tree.height dist_r.SD.tree)

let test_q_sweep () =
  let g = Gen.bkj_star_cycle 8 ~heavy:25 in
  List.iter (fun q -> ignore (check ~q g 0)) [ 0.5; 1.0; 2.0; 4.0 ]

let test_comm_bound () =
  (* Theorem 2.7: O(V n^2) communication. *)
  let g = Gen.grid 3 4 ~w:3 in
  let r = check g 0 in
  let n = G.n g and v = Csap_graph.Mst.weight g in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d within O(V n^2) = %d"
       r.SD.measures.Csap.Measures.comm (8 * v * n * n))
    true
    (r.SD.measures.Csap.Measures.comm <= 8 * v * n * n)

let test_delay_models () =
  let g = Gen.lollipop 4 3 ~w:2 in
  List.iter
    (fun delay -> ignore (check ~delay g 0))
    [ Csap_dsim.Delay.Near_zero; Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 19) ]

let prop_distributed_slt =
  QCheck.Test.make ~count:25 ~name:"distributed SLT satisfies both bounds"
    (Gen_qcheck.graph_and_vertex ~max_n:10 ~max_wmax:8 ())
    (fun (g, root) ->
      let r = SD.run g ~root in
      let p = Csap_graph.Params.compute g in
      Tree.is_spanning_tree_of g r.SD.tree
      && float_of_int (Tree.total_weight r.SD.tree)
         <= Csap.Slt.weight_bound ~q:2.0
              ~script_v:p.Csap_graph.Params.script_v
            +. 1e-9
      && float_of_int (Tree.height r.SD.tree)
         <= Csap.Slt.depth_bound ~q:2.0
              ~script_d:p.Csap_graph.Params.script_d
            +. 1e-9)

let suite =
  [
    Alcotest.test_case "matches sequential SLT" `Quick test_matches_sequential;
    Alcotest.test_case "q sweep" `Quick test_q_sweep;
    Alcotest.test_case "Theorem 2.7 communication" `Quick test_comm_bound;
    Alcotest.test_case "delay models" `Quick test_delay_models;
    QCheck_alcotest.to_alcotest prop_distributed_slt;
  ]
