module CG = Csap.Centr_growth
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

let edge_set t =
  Tree.edges t
  |> List.map (fun (p, c, w) -> (min p c, max p c, w))
  |> List.sort compare

let test_mst_matches_prim () =
  let g = Gen.lollipop 5 4 ~w:3 in
  let r = CG.run_mst g ~root:2 in
  Alcotest.(check bool) "same edge set" true
    (edge_set r.CG.grown_tree = edge_set (Csap_graph.Mst.prim g ~root:2))

let test_mst_weighted () =
  let g =
    G.create ~n:5
      [ (0, 1, 4); (1, 2, 7); (2, 3, 1); (3, 4, 9); (0, 4, 2); (1, 3, 3) ]
  in
  let r = CG.run_mst g ~root:0 in
  Alcotest.(check int) "MST weight" (Csap_graph.Mst.weight g)
    (Tree.total_weight r.CG.grown_tree);
  Alcotest.(check int) "phases = n-1" 4 r.CG.phases

let test_spt_matches_dijkstra () =
  let g = Gen.grid 3 4 ~w:2 in
  let r = CG.run_spt g ~root:0 in
  let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:0 in
  for v = 0 to G.n g - 1 do
    Alcotest.(check int)
      (Printf.sprintf "depth %d" v)
      dist.(v)
      (Tree.depth r.CG.grown_tree v)
  done

let test_mst_comm_bound () =
  (* Corollary 6.4: O(n V) communication. *)
  let g = Gen.complete 8 ~w:3 in
  let r = CG.run_mst g ~root:0 in
  let bound = 8 * Csap_graph.Mst.weight g in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d <= c n V = %d" r.CG.measures.Csap.Measures.comm
       (8 * bound))
    true
    (r.CG.measures.Csap.Measures.comm <= 8 * bound)

let test_mst_time_bound () =
  (* Corollary 6.4: O(n Diam(MST)) time. *)
  let g = Gen.grid 4 4 ~w:2 in
  let r = CG.run_mst g ~root:0 in
  let mst = Csap_graph.Mst.prim g ~root:0 in
  let bound = float_of_int (16 * (Tree.diameter mst + G.max_weight g)) in
  Alcotest.(check bool) "time O(n Diam(MST))" true
    (r.CG.measures.Csap.Measures.time <= 8.0 *. bound)

let test_delay_robustness () =
  let g = Gen.cycle 9 ~w:5 in
  List.iter
    (fun delay ->
      let r = CG.run_mst ~delay g ~root:4 in
      Alcotest.(check bool) "MST under any delays" true
        (Csap_graph.Mst.is_mst g r.CG.grown_tree))
    [
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 21);
      Csap_dsim.Delay.Jitter (Csap_graph.Rng.create 22);
    ]

let prop_mst_correct =
  QCheck.Test.make ~count:50 ~name:"MST_centr = sequential MST"
    (Gen_qcheck.graph_and_vertex ~max_n:12 ())
    (fun (g, root) ->
      let r = CG.run_mst g ~root in
      edge_set r.CG.grown_tree = edge_set (Csap_graph.Mst.prim g ~root))

let prop_spt_correct =
  QCheck.Test.make ~count:50 ~name:"SPT_centr depths = Dijkstra"
    (Gen_qcheck.graph_and_vertex ~max_n:12 ())
    (fun (g, root) ->
      let r = CG.run_spt g ~root in
      let { Csap_graph.Paths.dist; _ } = Csap_graph.Paths.dijkstra g ~src:root in
      let ok = ref true in
      for v = 0 to G.n g - 1 do
        if Tree.depth r.CG.grown_tree v <> dist.(v) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "MST matches Prim" `Quick test_mst_matches_prim;
    Alcotest.test_case "weighted MST" `Quick test_mst_weighted;
    Alcotest.test_case "SPT matches Dijkstra" `Quick test_spt_matches_dijkstra;
    Alcotest.test_case "O(n V) communication" `Quick test_mst_comm_bound;
    Alcotest.test_case "O(n Diam) time" `Quick test_mst_time_bound;
    Alcotest.test_case "delay robustness" `Quick test_delay_robustness;
    QCheck_alcotest.to_alcotest prop_mst_correct;
    QCheck_alcotest.to_alcotest prop_spt_correct;
  ]
