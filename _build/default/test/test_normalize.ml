module N = Csap.Normalize
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module SR = Csap_dsim.Sync_runner

let test_power () =
  List.iter
    (fun (w, expected) ->
      Alcotest.(check int) (Printf.sprintf "power %d" w) expected (N.power w))
    [ (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (7, 8); (8, 8); (9, 16); (100, 128) ]

let test_next_mult () =
  Alcotest.(check int) "already multiple" 12 (N.next_mult ~w:4 12);
  Alcotest.(check int) "round up" 16 (N.next_mult ~w:4 13);
  Alcotest.(check int) "zero" 0 (N.next_mult ~w:8 0);
  Alcotest.(check int) "w=1" 7 (N.next_mult ~w:1 7)

let test_is_normalized () =
  Alcotest.(check bool) "powers" true
    (N.is_normalized (G.create ~n:3 [ (0, 1, 4); (1, 2, 1) ]));
  Alcotest.(check bool) "not powers" false
    (N.is_normalized (G.create ~n:3 [ (0, 1, 3) ]))

let test_graph_rounding () =
  let g = G.create ~n:3 [ (0, 1, 3); (1, 2, 5) ] in
  let g' = N.graph g in
  Alcotest.(check bool) "normalized" true (N.is_normalized g');
  Alcotest.(check int) "3 -> 4" 4 (fst (Option.get (G.edge_between g' 0 1)));
  Alcotest.(check int) "5 -> 8" 8 (fst (Option.get (G.edge_between g' 1 2)))

(* Property 3 and 4 of Lemma 4.5: identical output, bounded overhead,
   in-synch. Exercised with the SPT wave protocol. *)
let check_transform g source =
  let p = Csap.Spt_synch.protocol ~source in
  let d = Csap_graph.Paths.diameter g in
  let reference = SR.run g p ~pulses:(d + 1) in
  let g' = N.graph g in
  let p' = N.protocol ~original:g p in
  let pulses' = N.pulses_needed ~original_pulses:(d + 1) ~w_max:(G.max_weight g) in
  let transformed = SR.run ~check_in_synch:true g' p' ~pulses:pulses' in
  let inner_states = Array.map N.inner_state transformed.SR.states in
  let same_states =
    Array.for_all2
      (fun (a : Csap.Spt_synch.state) (b : Csap.Spt_synch.state) ->
        a.Csap.Spt_synch.dist = b.Csap.Spt_synch.dist
        && a.Csap.Spt_synch.parent = b.Csap.Spt_synch.parent)
      reference.SR.states inner_states
  in
  let comm_ok =
    transformed.SR.weighted_comm <= 2 * reference.SR.weighted_comm
  in
  let msgs_ok = transformed.SR.messages = reference.SR.messages in
  same_states && comm_ok && msgs_ok

let test_transform_simple () =
  Alcotest.(check bool) "path" true (check_transform (Gen.path 6 ~w:3) 0);
  Alcotest.(check bool) "cycle" true (check_transform (Gen.cycle 7 ~w:5) 2);
  Alcotest.(check bool) "bkj" true
    (check_transform (Gen.bkj_star_cycle 8 ~heavy:11) 0)

let prop_transform_equivalent =
  QCheck.Test.make ~count:40
    ~name:"Lemma 4.5: identical outputs, <= 2x comm, in synch"
    (Gen_qcheck.graph_and_vertex ~max_n:12 ~max_wmax:13 ())
    (fun (g, source) -> check_transform g source)

let suite =
  [
    Alcotest.test_case "power of two" `Quick test_power;
    Alcotest.test_case "next multiple" `Quick test_next_mult;
    Alcotest.test_case "normalization predicate" `Quick test_is_normalized;
    Alcotest.test_case "graph rounding" `Quick test_graph_rounding;
    Alcotest.test_case "transform on fixed graphs" `Quick test_transform_simple;
    QCheck_alcotest.to_alcotest prop_transform_equivalent;
  ]
