(* Section 1.3: "The classical complexity measures correspond to the case
   where w(e) = 1 for all e". On unit weights, weighted communication =
   message count and the weighted parameters collapse to |E|, |V|-ish, D —
   so every algorithm must land on its classical complexity. *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let unit_graph seed n =
  Gen.random_connected (Csap_graph.Rng.create seed) n ~extra_edges:(2 * n)
    ~wmax:1

let test_parameters_collapse () =
  let g = unit_graph 1 24 in
  let p = Csap_graph.Params.compute g in
  Alcotest.(check int) "E = m" (G.m g) p.Csap_graph.Params.script_e;
  Alcotest.(check int) "V = n - 1" (G.n g - 1) p.Csap_graph.Params.script_v;
  Alcotest.(check int) "D = hop diameter"
    (Csap_graph.Traversal.hop_diameter g)
    p.Csap_graph.Params.script_d;
  Alcotest.(check int) "d = 1" 1 p.Csap_graph.Params.d;
  Alcotest.(check int) "W = 1" 1 p.Csap_graph.Params.w_max

let test_flood_classical () =
  (* Classical flooding: <= 2m messages, time <= hop diameter. *)
  let g = unit_graph 2 30 in
  let r = Csap.Flood.run g ~source:0 in
  Alcotest.(check bool) "messages <= 2m" true
    (r.Csap.Flood.measures.Csap.Measures.messages <= 2 * G.m g);
  Alcotest.(check bool) "time <= D" true
    (r.Csap.Flood.measures.Csap.Measures.time
    <= float_of_int (Csap_graph.Traversal.hop_diameter g));
  Alcotest.(check int) "comm = message count on unit weights"
    r.Csap.Flood.measures.Csap.Measures.messages
    r.Csap.Flood.measures.Csap.Measures.comm

let test_global_func_classical () =
  (* Convergecast + broadcast on a tree: exactly 2(n-1) messages. *)
  let g = unit_graph 3 25 in
  let tree = Csap_graph.Paths.spt g ~src:0 in
  let values = Array.init (G.n g) Fun.id in
  let r = Csap.Global_func.run g ~tree ~values Csap.Global_func.sum in
  Alcotest.(check int) "2(n-1) messages"
    (2 * (G.n g - 1))
    r.Csap.Global_func.measures.Csap.Measures.messages

let test_ghs_classical () =
  (* The classical GHS bound: O(m + n log n) messages. *)
  let g = unit_graph 4 32 in
  let r = Csap.Mst_ghs.run g in
  let n = float_of_int (G.n g) and m = float_of_int (G.m g) in
  let bound = 8.0 *. (m +. (n *. (log n /. log 2.0))) in
  Alcotest.(check bool)
    (Printf.sprintf "messages %d <= O(m + n log n) = %.0f"
       r.Csap.Mst_ghs.measures.Csap.Measures.messages bound)
    true
    (float_of_int r.Csap.Mst_ghs.measures.Csap.Measures.messages <= bound)

let test_dfs_classical () =
  (* Classical token DFS: Theta(m) messages and time. *)
  let g = unit_graph 5 28 in
  let r = Csap.Dfs_token.run g ~root:0 in
  Alcotest.(check bool) "messages O(m)" true
    (r.Csap.Dfs_token.measures.Csap.Measures.messages <= 8 * G.m g);
  Alcotest.(check bool) "time O(m)" true
    (r.Csap.Dfs_token.measures.Csap.Measures.time
    <= 8.0 *. float_of_int (G.m g))

let test_synchronizer_alpha_classical () =
  (* Classical alpha: O(m) messages per pulse, O(1) time per pulse. *)
  let g = unit_graph 6 20 in
  let tick =
    {
      Csap_dsim.Sync_protocol.init = (fun _ ~me -> me);
      on_pulse = (fun _ ~me:_ ~pulse:_ ~inbox:_ s -> (s, []));
    }
  in
  let pulses = 32 in
  let o = Csap.Synchronizer.run_alpha g tick ~pulses in
  let per_pulse =
    float_of_int o.Csap.Synchronizer.total.Csap.Measures.messages
    /. float_of_int pulses
  in
  (* The first and last pulses' safe messages amortize over the run: allow
     the boundary slack of roughly two extra rounds. *)
  Alcotest.(check bool)
    (Printf.sprintf "%.1f msgs/pulse ~ 2m = %d" per_pulse (2 * G.m g))
    true
    (per_pulse
    <= float_of_int (2 * G.m g)
       *. (1.0 +. (4.0 /. float_of_int pulses)));
  Alcotest.(check bool) "O(1) time per pulse" true
    (o.Csap.Synchronizer.amortized_time <= 4.0)

let test_slt_on_unit_weights () =
  (* With unit weights the BFS tree is both shallow and light; the SLT must
     match: w(T) = n - 1 and height <= (2q+1) D. *)
  let g = unit_graph 7 26 in
  let slt = Csap.Slt.build ~q:2.0 g ~root:0 in
  Alcotest.(check int) "weight n-1" (G.n g - 1)
    (Csap_graph.Tree.total_weight slt.Csap.Slt.tree)

let suite =
  [
    Alcotest.test_case "parameters collapse to |E|, n-1, D, 1, 1" `Quick
      test_parameters_collapse;
    Alcotest.test_case "flood = classical flooding" `Quick
      test_flood_classical;
    Alcotest.test_case "global function = 2(n-1) messages" `Quick
      test_global_func_classical;
    Alcotest.test_case "GHS = classical O(m + n log n)" `Quick
      test_ghs_classical;
    Alcotest.test_case "DFS = classical Theta(m)" `Quick test_dfs_classical;
    Alcotest.test_case "synchronizer alpha = classical" `Quick
      test_synchronizer_alpha_classical;
    Alcotest.test_case "SLT on unit weights" `Quick test_slt_on_unit_weights;
  ]
