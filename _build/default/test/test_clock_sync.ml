module CS = Csap.Clock_sync
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let all_pulsed r =
  Array.for_all
    (fun row -> Array.for_all (fun t -> not (Float.is_nan t)) row)
    r.CS.pulse_times

let test_alpha_basic () =
  let g = Gen.cycle 6 ~w:3 in
  let r = CS.run_alpha g ~pulses:10 in
  Alcotest.(check bool) "all pulses generated" true (all_pulsed r);
  Alcotest.(check bool) "causality" true (CS.check_causality g r);
  (* Exact delays: pulse delay is exactly the heaviest incident edge. *)
  Alcotest.(check (float 1e-9)) "delay = W" 3.0 r.CS.max_pulse_delay

let test_alpha_pays_w () =
  (* Heavy chords force alpha* to W even though d = 2. *)
  let g = Gen.chorded_cycle 12 ~chord_w:50 in
  let r = CS.run_alpha g ~pulses:8 in
  Alcotest.(check bool) "causality" true (CS.check_causality g r);
  Alcotest.(check (float 1e-9)) "delay = W" 50.0 r.CS.max_pulse_delay

let test_beta_basic () =
  let g = Gen.grid 3 3 ~w:2 in
  let r = CS.run_beta g ~pulses:10 in
  Alcotest.(check bool) "all pulses generated" true (all_pulsed r);
  Alcotest.(check bool) "causality" true (CS.check_causality g r)

let test_beta_tracks_diameter () =
  let g = Gen.path 16 ~w:4 in
  let d = float_of_int (Csap_graph.Paths.diameter g) in
  let r = CS.run_beta g ~pulses:6 in
  Alcotest.(check bool) "causality" true (CS.check_causality g r);
  (* Convergecast + broadcast on the tree: between D and ~4 D. *)
  Alcotest.(check bool)
    (Printf.sprintf "delay %.1f ~ Theta(D=%.0f)" r.CS.max_pulse_delay d)
    true
    (r.CS.max_pulse_delay >= d /. 2.0 && r.CS.max_pulse_delay <= 4.0 *. d)

let test_gamma_basic () =
  let g = Gen.grid 3 3 ~w:2 in
  let r = CS.run_gamma g ~pulses:8 in
  Alcotest.(check bool) "all pulses generated" true (all_pulsed r);
  Alcotest.(check bool) "causality" true (CS.check_causality g r)

let test_gamma_beats_w () =
  (* The headline result: on the chorded cycle (d = 2, W large), gamma*'s
     pulse delay is O(d log^2 n) — far below alpha*'s Theta(W). *)
  let g = Gen.chorded_cycle 16 ~chord_w:200 in
  let alpha = CS.run_alpha g ~pulses:6 in
  let gamma = CS.run_gamma g ~pulses:6 in
  Alcotest.(check bool) "gamma causality" true (CS.check_causality g gamma);
  Alcotest.(check (float 1e-9)) "alpha pays W" 200.0 alpha.CS.max_pulse_delay;
  Alcotest.(check bool)
    (Printf.sprintf "gamma delay %.1f << W" gamma.CS.max_pulse_delay)
    true
    (gamma.CS.max_pulse_delay < 100.0);
  let d = float_of_int (Csap_graph.Paths.max_neighbor_distance g) in
  let n = float_of_int (G.n g) in
  let log2 x = log x /. log 2.0 in
  let bound = 8.0 *. d *. log2 n *. log2 n in
  Alcotest.(check bool)
    (Printf.sprintf "gamma delay %.1f <= 8 d log^2 n = %.1f"
       gamma.CS.max_pulse_delay bound)
    true
    (gamma.CS.max_pulse_delay <= bound)

let test_gamma_all_delay_models () =
  let g = Gen.chorded_cycle 10 ~chord_w:40 in
  List.iter
    (fun delay ->
      let r = CS.run_gamma ~delay g ~pulses:5 in
      Alcotest.(check bool) "all pulsed" true (all_pulsed r);
      Alcotest.(check bool) "causality" true (CS.check_causality g r))
    [
      Csap_dsim.Delay.Exact;
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 4);
      Csap_dsim.Delay.Jitter (Csap_graph.Rng.create 5);
    ]

let test_beta_all_delay_models () =
  let g = Gen.lollipop 4 4 ~w:3 in
  List.iter
    (fun delay ->
      let r = CS.run_beta ~delay g ~pulses:5 in
      Alcotest.(check bool) "all pulsed" true (all_pulsed r);
      Alcotest.(check bool) "causality" true (CS.check_causality g r))
    [
      Csap_dsim.Delay.Near_zero;
      Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 6);
    ]

let test_pulse_monotonicity () =
  let g = Gen.cycle 8 ~w:2 in
  let r = CS.run_gamma g ~pulses:6 in
  Array.iter
    (fun row ->
      for p = 1 to 6 do
        Alcotest.(check bool) "times nondecreasing" true
          (row.(p) >= row.(p - 1))
      done)
    r.CS.pulse_times

let test_gamma_neighbor_phase_ablation () =
  (* Without the alpha-among-trees phase, causality must still hold (the
     cover already spans every edge) while pulses release sooner and the
     inter-tree traffic disappears. *)
  let g = Gen.chorded_cycle 16 ~chord_w:120 in
  let full = CS.run_gamma g ~pulses:6 in
  let lean = CS.run_gamma ~neighbor_phase:false g ~pulses:6 in
  Alcotest.(check bool) "full causal" true (CS.check_causality g full);
  Alcotest.(check bool) "lean causal" true (CS.check_causality g lean);
  Alcotest.(check bool) "lean no slower" true
    (lean.CS.max_pulse_delay <= full.CS.max_pulse_delay +. 1e-9);
  Alcotest.(check bool) "lean cheaper" true
    (lean.CS.comm_per_pulse <= full.CS.comm_per_pulse)

let prop_synchronizers_causal =
  QCheck.Test.make ~count:20 ~name:"all clock synchronizers causal (random)"
    (Gen_qcheck.connected_graph_gen ~max_n:12 ~max_wmax:10 ())
    (fun g ->
      let checks =
        [
          CS.run_alpha g ~pulses:4;
          CS.run_beta g ~pulses:4;
          CS.run_gamma g ~pulses:4;
        ]
      in
      List.for_all (fun r -> all_pulsed r && CS.check_causality g r) checks)

let suite =
  [
    Alcotest.test_case "alpha* basics" `Quick test_alpha_basic;
    Alcotest.test_case "alpha* pays Theta(W)" `Quick test_alpha_pays_w;
    Alcotest.test_case "beta* basics" `Quick test_beta_basic;
    Alcotest.test_case "beta* tracks Theta(D)" `Quick
      test_beta_tracks_diameter;
    Alcotest.test_case "gamma* basics" `Quick test_gamma_basic;
    Alcotest.test_case "gamma* beats W (headline)" `Quick test_gamma_beats_w;
    Alcotest.test_case "gamma* under all delay models" `Quick
      test_gamma_all_delay_models;
    Alcotest.test_case "beta* under adversarial delays" `Quick
      test_beta_all_delay_models;
    Alcotest.test_case "pulse times monotone" `Quick test_pulse_monotonicity;
    Alcotest.test_case "gamma* neighbor-phase ablation" `Quick
      test_gamma_neighbor_phase_ablation;
    QCheck_alcotest.to_alcotest prop_synchronizers_causal;
  ]
