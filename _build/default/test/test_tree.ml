module T = Csap_graph.Tree

(*      0
       / \
      1   2     weights: 0-1:3  0-2:1  1-3:2  1-4:5  2-5:4
     / \   \
    3   4   5  *)
let sample () =
  T.of_parents ~root:0
    ~parents:[| -1; 0; 0; 1; 1; 2 |]
    ~weights:[| 0; 3; 1; 2; 5; 4 |]

let test_basic () =
  let t = sample () in
  Alcotest.(check int) "n" 6 (T.n t);
  Alcotest.(check int) "root" 0 (T.root t);
  Alcotest.(check int) "total weight" 15 (T.total_weight t);
  Alcotest.(check (option (pair int int))) "parent of 4" (Some (1, 5))
    (T.parent t 4);
  Alcotest.(check (option (pair int int))) "parent of root" None (T.parent t 0)

let test_depth_height () =
  let t = sample () in
  Alcotest.(check int) "depth 0" 0 (T.depth t 0);
  Alcotest.(check int) "depth 3" 5 (T.depth t 3);
  Alcotest.(check int) "depth 4" 8 (T.depth t 4);
  Alcotest.(check int) "depth 5" 5 (T.depth t 5);
  Alcotest.(check int) "height" 8 (T.height t)

let test_diameter () =
  let t = sample () in
  (* Longest path: 4 - 1 - 0 - 2 - 5 = 5 + 3 + 1 + 4 = 13. *)
  Alcotest.(check int) "diameter" 13 (T.diameter t)

let test_path () =
  let t = sample () in
  Alcotest.(check (list int)) "path 3-4" [ 3; 1; 4 ] (T.path t 3 4);
  Alcotest.(check (list int)) "path 4-5" [ 4; 1; 0; 2; 5 ] (T.path t 4 5);
  Alcotest.(check (list int)) "path to self" [ 3 ] (T.path t 3 3);
  Alcotest.(check (list int)) "path root-leaf" [ 0; 1; 3 ] (T.path t 0 3);
  Alcotest.(check int) "path weight 4-5" 13 (T.path_weight t 4 5);
  Alcotest.(check int) "path weight self" 0 (T.path_weight t 3 3)

let test_euler_tour () =
  let t = sample () in
  let tour = T.euler_tour t in
  Alcotest.(check int) "length" 11 (Array.length tour);
  Alcotest.(check int) "starts at root" 0 tour.(0);
  Alcotest.(check int) "ends at root" 0 tour.(Array.length tour - 1);
  (* Consecutive entries must be tree neighbours. *)
  for i = 0 to Array.length tour - 2 do
    let a = tour.(i) and b = tour.(i + 1) in
    let neighbours =
      match (T.parent t a, T.parent t b) with
      | Some (p, _), _ when p = b -> true
      | _, Some (p, _) when p = a -> true
      | _ -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "tour step %d-%d adjacent" a b)
      true neighbours
  done;
  (* Every tree edge appears exactly twice. *)
  let counts = Hashtbl.create 16 in
  for i = 0 to Array.length tour - 2 do
    let a = min tour.(i) tour.(i + 1) and b = max tour.(i) tour.(i + 1) in
    Hashtbl.replace counts (a, b)
      (1 + try Hashtbl.find counts (a, b) with Not_found -> 0)
  done;
  Hashtbl.iter
    (fun _ c -> Alcotest.(check int) "each edge twice" 2 c)
    counts

let test_invalid () =
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Tree.of_parents: not all vertices reachable from root")
    (fun () ->
      ignore
        (T.of_parents ~root:0 ~parents:[| -1; 2; 1 |] ~weights:[| 0; 1; 1 |]))

let test_singleton () =
  let t = T.of_parents ~root:0 ~parents:[| -1 |] ~weights:[| 0 |] in
  Alcotest.(check int) "weight" 0 (T.total_weight t);
  Alcotest.(check int) "diameter" 0 (T.diameter t);
  Alcotest.(check int) "tour length" 1 (Array.length (T.euler_tour t))

let test_spanning_check () =
  let g = Csap_graph.Generators.path 4 ~w:2 in
  let t =
    T.of_parents ~root:0 ~parents:[| -1; 0; 1; 2 |] ~weights:[| 0; 2; 2; 2 |]
  in
  Alcotest.(check bool) "is spanning tree" true (T.is_spanning_tree_of g t);
  let wrong =
    T.of_parents ~root:0 ~parents:[| -1; 0; 1; 2 |] ~weights:[| 0; 2; 3; 2 |]
  in
  Alcotest.(check bool) "weight mismatch" false (T.is_spanning_tree_of g wrong)

let test_to_graph () =
  let t = sample () in
  let g = T.to_graph t in
  Alcotest.(check int) "edges" 5 (Csap_graph.Graph.m g);
  Alcotest.(check int) "weight preserved" 15 (Csap_graph.Graph.total_weight g)

let prop_path_symmetric =
  QCheck.Test.make ~count:100 ~name:"tree path is symmetric"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, v) ->
      let t = Csap_graph.Traversal.spanning_tree_dfs g ~root:0 in
      let u = (v + 1) mod Csap_graph.Graph.n g in
      T.path t u v = List.rev (T.path t v u)
      && T.path_weight t u v = T.path_weight t v u)

let prop_depth_vs_path =
  QCheck.Test.make ~count:100 ~name:"depth equals path weight to root"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, v) ->
      let t = Csap_graph.Traversal.spanning_tree_dfs g ~root:0 in
      T.depth t v = T.path_weight t 0 v)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "depth and height" `Quick test_depth_height;
    Alcotest.test_case "diameter" `Quick test_diameter;
    Alcotest.test_case "paths" `Quick test_path;
    Alcotest.test_case "euler tour" `Quick test_euler_tour;
    Alcotest.test_case "invalid parents rejected" `Quick test_invalid;
    Alcotest.test_case "singleton tree" `Quick test_singleton;
    Alcotest.test_case "spanning-tree check" `Quick test_spanning_check;
    Alcotest.test_case "to_graph" `Quick test_to_graph;
    QCheck_alcotest.to_alcotest prop_path_symmetric;
    QCheck_alcotest.to_alcotest prop_depth_vs_path;
  ]
