module M = Csap_graph.Mst
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let diamond () =
  G.create ~n:4 [ (0, 1, 1); (1, 3, 2); (0, 2, 4); (2, 3, 3); (0, 3, 10) ]

let test_prim_weight () =
  let t = M.prim (diamond ()) ~root:0 in
  Alcotest.(check int) "mst weight" 6 (Csap_graph.Tree.total_weight t);
  Alcotest.(check bool) "spans" true
    (Csap_graph.Tree.is_spanning_tree_of (diamond ()) t)

let test_kruskal_matches () =
  Alcotest.(check int) "weight agreement" (M.weight (diamond ()))
    (Csap_graph.Tree.total_weight (M.prim (diamond ()) ~root:2))

let test_path_mst () =
  (* MST of the lower-bound family is exactly the light path (Section 7.1). *)
  let g = Gen.lower_bound_gn 10 ~x:3 in
  Alcotest.(check int) "V = (n-1) x" (9 * 3) (M.weight g)

let test_is_mst () =
  let g = diamond () in
  Alcotest.(check bool) "prim is mst" true (M.is_mst g (M.prim g ~root:0));
  let spt = Csap_graph.Paths.spt g ~src:0 in
  (* The SPT of the diamond has weight 1+2+4=7 > 6 so it is not an MST. *)
  Alcotest.(check bool) "spt not mst" false (M.is_mst g spt)

let test_disconnected_rejected () =
  let g = G.create ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.check_raises "prim rejects"
    (Invalid_argument "Mst.prim: graph is disconnected") (fun () ->
      ignore (M.prim g ~root:0));
  Alcotest.(check int) "kruskal forest size" 2 (List.length (M.kruskal g))

let prop_prim_kruskal_agree =
  QCheck.Test.make ~count:120 ~name:"prim weight = kruskal weight"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, root) ->
      Csap_graph.Tree.total_weight (M.prim g ~root) = M.weight g)

let prop_prim_root_independent =
  QCheck.Test.make ~count:100 ~name:"MST edge set independent of root"
    (Gen_qcheck.graph_and_vertex ())
    (fun (g, root) ->
      let edge_set t =
        Csap_graph.Tree.edges t
        |> List.map (fun (p, c, w) -> (min p c, max p c, w))
        |> List.sort compare
      in
      edge_set (M.prim g ~root) = edge_set (M.prim g ~root:0))

let prop_cut_property =
  QCheck.Test.make ~count:80 ~name:"MST respects the cut property"
    (Gen_qcheck.connected_graph_gen ~max_n:12 ())
    (fun g ->
      (* For every tree edge, removing it splits the tree in two; the edge
         must be minimal (in canonical order) across that cut. *)
      let t = M.prim g ~root:0 in
      List.for_all
        (fun (p, c, w) ->
          (* Vertices on c's side = c's subtree. *)
          let side = Array.make (G.n g) false in
          let rec mark v =
            side.(v) <- true;
            List.iter mark (Csap_graph.Tree.children t v)
          in
          mark c;
          let tree_edge = { G.u = min p c; v = max p c; w } in
          Array.for_all
            (fun (e : G.edge) ->
              if side.(e.u) = side.(e.v) then true
              else G.compare_edges tree_edge e <= 0)
            (G.edges g))
        (Csap_graph.Tree.edges t))

let prop_fact_6_3 =
  QCheck.Test.make ~count:100
    ~name:"Fact 6.3: Diam(MST) <= V <= (n-1) * D"
    (Gen_qcheck.connected_graph_gen ())
    (fun g ->
      let t = M.prim g ~root:0 in
      let v = Csap_graph.Tree.total_weight t in
      Csap_graph.Tree.diameter t <= v
      && v <= (G.n g - 1) * Csap_graph.Paths.diameter g)

let suite =
  [
    Alcotest.test_case "prim weight" `Quick test_prim_weight;
    Alcotest.test_case "kruskal matches prim" `Quick test_kruskal_matches;
    Alcotest.test_case "lower-bound family MST" `Quick test_path_mst;
    Alcotest.test_case "is_mst" `Quick test_is_mst;
    Alcotest.test_case "disconnected graphs" `Quick test_disconnected_rejected;
    QCheck_alcotest.to_alcotest prop_prim_kruskal_agree;
    QCheck_alcotest.to_alcotest prop_prim_root_independent;
    QCheck_alcotest.to_alcotest prop_cut_property;
    QCheck_alcotest.to_alcotest prop_fact_6_3;
  ]
