module Slt = Csap.Slt
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree

let check_slt ?(q = 2.0) g =
  let params = Csap_graph.Params.compute g in
  let slt = Slt.build ~q g ~root:0 in
  Alcotest.(check bool) "spans" true (Tree.is_spanning_tree_of g slt.Slt.tree);
  Alcotest.(check bool)
    (Format.asprintf "shallow-light (w=%d V=%d h=%d D=%d q=%.2f)"
       (Tree.total_weight slt.Slt.tree)
       params.Csap_graph.Params.script_v
       (Tree.height slt.Slt.tree)
       params.Csap_graph.Params.script_d q)
    true
    (Slt.is_shallow_light slt ~script_v:params.Csap_graph.Params.script_v
       ~script_d:params.Csap_graph.Params.script_d);
  slt

let test_path () = ignore (check_slt (Gen.path 10 ~w:3))
let test_grid () = ignore (check_slt (Gen.grid 4 5 ~w:2))

let test_bkj_conflict () =
  (* The BKJ83 family where MST and SPT genuinely conflict: the SLT must
     stay within both bounds even though each extreme tree violates one. *)
  let g = Gen.bkj_star_cycle 12 ~heavy:40 in
  let params = Csap_graph.Params.compute g in
  let spt = Csap_graph.Paths.spt g ~src:0 in
  let mst = Csap_graph.Mst.prim g ~root:0 in
  (* Sanity: SPT too heavy, MST too deep relative to the other bound. *)
  Alcotest.(check bool) "SPT heavy" true
    (Tree.total_weight spt > 3 * params.Csap_graph.Params.script_v);
  Alcotest.(check bool) "MST deep" true
    (Tree.height mst > params.Csap_graph.Params.script_d);
  List.iter
    (fun q -> ignore (check_slt ~q g))
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ]

let test_breakpoints_structure () =
  let g = Gen.bkj_star_cycle 10 ~heavy:30 in
  let slt = Slt.build ~q:1.0 g ~root:0 in
  (match slt.Slt.breakpoints with
  | 0 :: _ -> ()
  | _ -> Alcotest.fail "first breakpoint must be line position 0");
  (* Breakpoints strictly increase. *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing" true (increasing slt.Slt.breakpoints);
  Alcotest.(check int) "one added path per extra breakpoint"
    (List.length slt.Slt.breakpoints - 1)
    (List.length slt.Slt.added_paths)

let test_line_is_euler_tour () =
  let g = Gen.path 6 ~w:2 in
  let slt = Slt.build g ~root:0 in
  Alcotest.(check int) "line length 2n-1" 11 (Array.length slt.Slt.line);
  Alcotest.(check int) "starts at root" 0 slt.Slt.line.(0)

let test_q_tradeoff_direction () =
  (* Larger q should not increase the tree weight (fewer shortcuts). *)
  let g = Gen.bkj_star_cycle 14 ~heavy:60 in
  let w q = Tree.total_weight (Slt.build ~q g ~root:0).Slt.tree in
  Alcotest.(check bool) "weight monotone-ish in q" true (w 8.0 <= w 0.5)

let test_invalid_q () =
  Alcotest.check_raises "q=0" (Invalid_argument "Slt.build: q must be positive")
    (fun () -> ignore (Slt.build ~q:0.0 (Gen.path 3 ~w:1) ~root:0))

let test_mst_is_valid_when_light () =
  (* On a uniform path MST = SPT; breakpoints on the Euler return leg only
     ever add MST edges back, so the SLT is exactly the MST. *)
  let g = Gen.path 8 ~w:1 in
  let slt = Slt.build ~q:2.0 g ~root:0 in
  Alcotest.(check int) "weight equals MST" 7
    (Tree.total_weight slt.Slt.tree)

let prop_slt_bounds =
  QCheck.Test.make ~count:80 ~name:"Theorem 2.2: SLT bounds on random graphs"
    QCheck.(
      pair
        (Gen_qcheck.connected_graph_gen ~max_n:18 ~max_wmax:12 ())
        (QCheck.map (fun x -> 0.5 +. (float_of_int x /. 10.0)) (int_bound 75)))
    (fun (g, q) ->
      let params = Csap_graph.Params.compute g in
      let slt = Slt.build ~q g ~root:0 in
      Tree.is_spanning_tree_of g slt.Slt.tree
      && Slt.is_shallow_light slt
           ~script_v:params.Csap_graph.Params.script_v
           ~script_d:params.Csap_graph.Params.script_d)

let prop_slt_any_root =
  QCheck.Test.make ~count:60 ~name:"SLT valid from any root"
    (Gen_qcheck.graph_and_vertex ~max_n:14 ())
    (fun (g, root) ->
      let params = Csap_graph.Params.compute g in
      let slt = Slt.build ~q:2.0 g ~root in
      Slt.is_shallow_light slt
        ~script_v:params.Csap_graph.Params.script_v
        ~script_d:params.Csap_graph.Params.script_d)

let suite =
  [
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "BKJ conflict family, q sweep" `Quick test_bkj_conflict;
    Alcotest.test_case "breakpoint structure" `Quick test_breakpoints_structure;
    Alcotest.test_case "euler line" `Quick test_line_is_euler_tour;
    Alcotest.test_case "q trade-off direction" `Quick test_q_tradeoff_direction;
    Alcotest.test_case "invalid q" `Quick test_invalid_q;
    Alcotest.test_case "light graphs need no shortcuts" `Quick
      test_mst_is_valid_when_light;
    QCheck_alcotest.to_alcotest prop_slt_bounds;
    QCheck_alcotest.to_alcotest prop_slt_any_root;
  ]
