module CH = Csap.Con_hybrid
module LB = Csap.Lower_bound
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let test_produces_spanning_tree () =
  let g = Gen.grid 4 4 ~w:2 in
  let r = CH.run g ~root:0 in
  Alcotest.(check bool) "spanning" true
    (Csap_graph.Tree.is_spanning_tree_of g r.CH.spanning_tree)

let test_light_graph_dfs_wins () =
  (* When script-E << n V (no heavy edges, sparse), DFS should be cheap and
     the hybrid must stay near min{E, nV} = E. *)
  let g = Gen.path 24 ~w:1 in
  let r = CH.run g ~root:0 in
  let e = G.total_weight g in
  Alcotest.(check bool)
    (Printf.sprintf "comm %d = O(E=%d)" r.CH.measures.Csap.Measures.comm e)
    true
    (r.CH.measures.Csap.Measures.comm <= 16 * e)

let test_gn_hybrid_beats_flood () =
  (* On the lower-bound family, E = Theta(n X^4) while n V = Theta(n^2 X):
     the hybrid must track n V, flood must pay E. *)
  let run = LB.run_on_gn ~n:16 ~x:8 in
  (* Separation requires x^3 >> n: here E ~ 28k while n V ~ 1.9k. *)
  Alcotest.(check bool) "E dominates nV" true
    (run.LB.script_e > 4 * run.LB.n_times_v);
  Alcotest.(check bool) "flood pays Theta(E)" true
    (run.LB.flood_comm > run.LB.script_e / 2);
  Alcotest.(check bool) "hybrid = O(min{E, nV})" true
    (run.LB.hybrid_comm <= 16 * min run.LB.script_e run.LB.n_times_v);
  Alcotest.(check bool) "hybrid beats flood by a wide margin" true
    (4 * run.LB.hybrid_comm < run.LB.flood_comm)

let test_lower_bound_terms () =
  Alcotest.(check int) "ferrying cost n=8"
    (3 * (7 + 5 + 3 + 1))
    (LB.id_ferrying_cost ~n:8 ~x:3);
  Alcotest.(check bool) "ferrying >= n^2 X / 4" true
    (LB.id_ferrying_cost ~n:20 ~x:5 >= 20 * 20 * 5 / 4)

let test_split_indistinguishable () =
  (* G_n and G_n^i differ in exactly 3 edges: the removed bypass and the two
     pendant replacements. *)
  for i = 1 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "difference at i=%d" i)
      3
      (LB.check_split_indistinguishable ~n:12 ~i ~x:2)
  done

let test_winner_consistency () =
  let g = Gen.lower_bound_gn 12 ~x:3 in
  let r = CH.run g ~root:0 in
  (* On G_n, DFS must traverse bypass edges (Theta(E)) so MST_centr wins. *)
  Alcotest.(check bool) "MST_centr wins on G_n" true (r.CH.winner = CH.Mst_centr)

let prop_hybrid_is_min =
  QCheck.Test.make ~count:40 ~name:"hybrid within O(min{E, nV})"
    (Gen_qcheck.graph_and_vertex ~max_n:12 ())
    (fun (g, root) ->
      let r = CH.run g ~root in
      let e = G.total_weight g in
      let nv = G.n g * Csap_graph.Mst.weight g in
      Csap_graph.Tree.is_spanning_tree_of g r.CH.spanning_tree
      && r.CH.measures.Csap.Measures.comm <= 16 * min e nv + 16 * G.max_weight g)

let suite =
  [
    Alcotest.test_case "spanning tree" `Quick test_produces_spanning_tree;
    Alcotest.test_case "sparse graph: near O(E)" `Quick
      test_light_graph_dfs_wins;
    Alcotest.test_case "G_n: hybrid near O(nV), flood pays E" `Quick
      test_gn_hybrid_beats_flood;
    Alcotest.test_case "lower-bound arithmetic" `Quick test_lower_bound_terms;
    Alcotest.test_case "Figure 8 indistinguishability" `Quick
      test_split_indistinguishable;
    Alcotest.test_case "winner on G_n" `Quick test_winner_consistency;
    QCheck_alcotest.to_alcotest prop_hybrid_is_min;
  ]
