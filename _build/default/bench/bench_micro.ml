(* Bechamel micro-benchmarks: per-operation cost (with OLS fit) of the
   sequential kernels behind each figure — one Test.make per table. *)

open Bechamel

module Gen = Csap_graph.Generators

let graph =
  lazy
    (Gen.random_connected (Csap_graph.Rng.create 77) 64 ~extra_edges:128
       ~wmax:32)

let bkj = lazy (Gen.bkj_star_cycle 48 ~heavy:200)

let tests =
  [
    (* F1/F5: the SLT construction. *)
    Test.make ~name:"f5: slt-build"
      (Staged.stage (fun () ->
           ignore (Csap.Slt.build ~q:2.0 (Lazy.force bkj) ~root:0)));
    (* F3: the sequential MST reference. *)
    Test.make ~name:"f3: mst-prim"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Mst.prim (Lazy.force graph) ~root:0)));
    (* F4: the sequential SPT reference. *)
    Test.make ~name:"f4: dijkstra"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Paths.dijkstra (Lazy.force graph) ~src:0)));
    (* F2/F7: the lower-bound family generator. *)
    Test.make ~name:"f7: gn-generator"
      (Staged.stage (fun () ->
           ignore (Gen.lower_bound_gn 32 ~x:8)));
    (* CS: the tree edge-cover preprocessing of gamma*. *)
    Test.make ~name:"cs: tree-edge-cover"
      (Staged.stage (fun () ->
           ignore (Csap_cover.Tree_cover.build (Gen.chorded_cycle 16 ~chord_w:64))));
    (* SY: the per-level cluster partition of gamma_w. *)
    Test.make ~name:"sy: partition"
      (Staged.stage (fun () ->
           let g = Lazy.force graph in
           let edges = List.init (Csap_graph.Graph.m g) Fun.id in
           ignore (Csap.Synchronizer.Partition.build g ~edges ~k:2)));
    (* CT: one controlled-flood event loop (end to end, small). *)
    Test.make ~name:"ct: flood-run"
      (Staged.stage (fun () ->
           ignore (Csap.Flood.run (Lazy.force graph) ~source:0)));
  ]

let run () =
  Report.heading "MICRO" "bechamel micro-benchmarks (sequential kernels)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"csap" tests in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Report.table ~columns:[ "kernel"; "ns/run" ]
    (List.map (fun (name, ns) -> [ Report.Str name; Report.Float ns ]) rows)
