(* Benches F1, F5, F6: global function computation and the shallow-light
   tree algorithm (paper Figures 1, 5, 6). *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree
module P = Csap_graph.Params

let families n =
  [
    ("grid", Gen.grid (max 2 (n / 8)) 8 ~w:4);
    ( "geometric",
      Gen.random_geometric (Csap_graph.Rng.create 11) n ~degree:4 ~scale:200.0
    );
    ( "random",
      Gen.random_connected (Csap_graph.Rng.create 12) n ~extra_edges:(2 * n)
        ~wmax:16 );
    ("bkj star-cycle", Gen.bkj_star_cycle (n - 1) ~heavy:(4 * n));
  ]

(* --- F1: Figure 1 — global function computation ---------------------- *)

let f1 () =
  Report.heading "F1" "global function computation (Figure 1)";
  Format.printf
    "paper: communication Theta(V), time Theta(D) (Thm 2.1 + Cor 2.3)@.";
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (name, g) ->
            let p = P.compute g in
            let values = Array.init (G.n g) (fun i -> i) in
            let r =
              Csap.Global_func.run_optimal ~q:2.0 g ~root:0 ~values
                Csap.Global_func.sum
            in
            let m = r.Csap.Global_func.measures in
            [
              Report.Str name;
              Report.Int (G.n g);
              Report.Int p.P.script_v;
              Report.Int p.P.script_d;
              Report.Int m.Csap.Measures.comm;
              Report.Float (Report.ratio (float_of_int m.Csap.Measures.comm)
                              (float_of_int p.P.script_v));
              Report.Float m.Csap.Measures.time;
              Report.Float (Report.ratio m.Csap.Measures.time
                              (float_of_int p.P.script_d));
            ])
          (families n))
      [ 32; 64; 96 ]
  in
  Report.table
    ~columns:[ "family"; "n"; "V"; "D"; "comm"; "comm/V"; "time"; "time/D" ]
    rows;
  Format.printf
    "shape check: comm/V and time/D stay bounded (upper bound) and >= 1 \
     (lower bound Thm 2.1).@."

(* --- F5: Figure 5 — the SLT trade-off --------------------------------- *)

let f5 () =
  Report.heading "F5" "shallow-light tree trade-off (Figure 5)";
  Format.printf
    "paper: w(T) <= (1 + 2/q) V (Lemma 2.4), depth O(q) D (Lemma 2.5)@.";
  (* Spokes ~ k/3 make the MST genuinely deep relative to D while the SPT
     stays genuinely heavy relative to V - both extremes violate a bound. *)
  let g = Gen.bkj_star_cycle 48 ~heavy:16 in
  let p = P.compute g in
  Format.printf "instance: bkj star-cycle, %a@." P.pp p;
  let rows =
    List.map
      (fun q ->
        let slt = Csap.Slt.build ~q g ~root:0 in
        let w = Tree.total_weight slt.Csap.Slt.tree in
        let h = Tree.height slt.Csap.Slt.tree in
        [
          Report.Float q;
          Report.Int w;
          Report.Float (Report.ratio (float_of_int w) (float_of_int p.P.script_v));
          Report.Float (1.0 +. (2.0 /. q));
          Report.Int h;
          Report.Float (Report.ratio (float_of_int h) (float_of_int p.P.script_d));
          Report.Float ((2.0 *. q) +. 1.0);
        ])
      [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]
  in
  Report.table
    ~columns:
      [ "q"; "w(T)"; "w(T)/V"; "<=1+2/q"; "height"; "height/D"; "<=2q+1" ]
    rows;
  (* Reference extremes. *)
  let spt = Csap_graph.Paths.spt g ~src:0 in
  let mst = Csap_graph.Mst.prim g ~root:0 in
  Format.printf "extremes: SPT w=%d h=%d | MST w=%d h=%d@."
    (Tree.total_weight spt) (Tree.height spt) (Tree.total_weight mst)
    (Tree.height mst);
  Format.printf
    "shape check: w(T)/V falls with q, height/D grows with q; both within \
     their bound columns.@."

(* --- F6: Figure 6 — a traced run of the SLT breakpoint scan ----------- *)

let f6 () =
  Report.heading "F6" "SLT example run (Figure 6)";
  let g = Gen.bkj_star_cycle 11 ~heavy:40 in
  let slt = Csap.Slt.build ~q:1.0 g ~root:0 in
  Format.printf "instance: 12-vertex bkj star-cycle, q = 1@.";
  Format.printf "euler line (v(i)): ";
  Array.iter (fun v -> Format.printf "%d " v) slt.Csap.Slt.line;
  Format.printf "@.breakpoints (mileage indices): ";
  List.iter (fun b -> Format.printf "%d " b) slt.Csap.Slt.breakpoints;
  Format.printf "@.SPT paths grafted onto the MST: ";
  List.iter (fun (a, b) -> Format.printf "(%d->%d) " a b)
    slt.Csap.Slt.added_paths;
  Format.printf "@.result: w(T)=%d height=%d (MST w=%d, SPT h=%d)@."
    (Tree.total_weight slt.Csap.Slt.tree)
    (Tree.height slt.Csap.Slt.tree)
    (Tree.total_weight slt.Csap.Slt.mst)
    (Tree.height slt.Csap.Slt.spt);
  (* The distributed construction of Theorem 2.7 on the same instance. *)
  let d = Csap.Slt_distributed.run ~q:1.0 g ~root:0 in
  Format.printf
    "distributed construction (Thm 2.7): same tree weight %d, comm %d, \
     comm / (V n^2) = %.2f@."
    (Tree.total_weight d.Csap.Slt_distributed.tree)
    d.Csap.Slt_distributed.measures.Csap.Measures.comm
    (Report.ratio
       (float_of_int d.Csap.Slt_distributed.measures.Csap.Measures.comm)
       (float_of_int (Csap_graph.Mst.weight g * 12 * 12)))
