(* Table-printing helpers shared by the per-figure benchmarks. Each bench
   regenerates one of the paper's figures: it prints the same rows the
   figure states, with measured weighted costs next to the bound evaluated
   on the instance, so the *shape* (who wins, by what factor, where the
   crossovers fall) can be read off directly. *)

let heading id title = Format.printf "@.==== %s: %s ====@." id title

let subheading text = Format.printf "-- %s@." text

type cell =
  | Int of int
  | Float of float
  | Str of string

let cell_to_string = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_nan f then "-"
    else if Float.abs f >= 100.0 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.2f" f
  | Str s -> s

let table ~columns rows =
  let widths =
    List.mapi
      (fun i name ->
        List.fold_left
          (fun acc row ->
            max acc (String.length (cell_to_string (List.nth row i))))
          (String.length name) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        Format.printf "%*s  " (List.nth widths i) (cell_to_string cell))
      cells;
    Format.printf "@."
  in
  print_row (List.map (fun name -> Str name) columns);
  List.iter print_row rows

(* Ratio of a measurement against a bound: the headline number for shape
   checks ("stays flat across the sweep" = matching asymptotics). *)
let ratio measured bound = if bound <= 0.0 then nan else measured /. bound

let log2 x = log x /. log 2.0
