bench/bench_sync.ml: Array Csap Csap_dsim Csap_graph Format List Report
