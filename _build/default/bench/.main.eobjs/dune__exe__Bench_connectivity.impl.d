bench/bench_connectivity.ml: Csap Csap_graph Float Format List Report
