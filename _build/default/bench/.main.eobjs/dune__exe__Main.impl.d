bench/main.ml: Array Bench_connectivity Bench_ctrl Bench_micro Bench_mst Bench_spt Bench_sync Bench_trees Format List String Sys
