bench/bench_mst.ml: Csap Csap_graph Float Format Report
