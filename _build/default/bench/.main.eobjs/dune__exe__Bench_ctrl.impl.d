bench/bench_ctrl.ml: Array Csap Csap_dsim Csap_graph Format Fun List Report
