bench/bench_trees.ml: Array Csap Csap_graph Format List Report
