bench/bench_spt.ml: Csap Csap_dsim Csap_graph Format List Report
