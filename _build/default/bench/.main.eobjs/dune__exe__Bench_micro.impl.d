bench/bench_micro.ml: Analyze Bechamel Benchmark Csap Csap_cover Csap_graph Fun Hashtbl Lazy List Measure Report Staged Test Time Toolkit
