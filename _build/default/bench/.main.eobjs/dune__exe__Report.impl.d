bench/report.ml: Float Format List Printf String
