bench/main.mli:
