(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (see DESIGN.md section 3 for the index).

   Usage:
     dune exec bench/main.exe            # all figures
     dune exec bench/main.exe f3 cs      # selected figures
     dune exec bench/main.exe micro      # bechamel micro-benchmarks *)

let benches =
  [
    ("f1", Bench_trees.f1);
    ("f2", Bench_connectivity.f2);
    ("f3", Bench_mst.f3);
    ("f4", Bench_spt.f4);
    ("f5", Bench_trees.f5);
    ("f6", Bench_trees.f6);
    ("f7", Bench_connectivity.f7);
    ("f8", Bench_connectivity.f8);
    ("f9", Bench_spt.f9);
    ("cs", Bench_sync.cs);
    ("sy", Bench_sync.sy);
    ("ct", Bench_ctrl.ct);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> List.map String.lowercase_ascii rest
    | [] -> []
  in
  let run_micro = List.mem "micro" args in
  let selected = List.filter (fun a -> a <> "micro") args in
  let to_run =
    if selected = [] && not run_micro then benches
    else
      List.filter_map
        (fun id ->
          match List.assoc_opt id benches with
          | Some f -> Some (id, f)
          | None ->
            Format.eprintf "unknown bench id: %s@." id;
            exit 1)
        selected
  in
  Format.printf
    "cost-sensitive analysis of communication protocols -- benchmark \
     harness@.";
  Format.printf
    "(paper: Awerbuch, Baratz, Peleg, PODC 1990 / MIT-LCS-TM-453)@.";
  List.iter (fun (_, f) -> f ()) to_run;
  if run_micro then Bench_micro.run ();
  Format.printf "@.done.@."
