(* The Section 7 lower-bound family G_n (Figures 7-8): a light path with
   heavy bypass edges. Any connectivity algorithm must either touch the
   heavy edges (paying script-E) or ferry endpoint ids along the path
   (paying Omega(n V)); CON_hybrid tracks the min.

   Run with: dune exec examples/lower_bound_demo.exe *)

let () =
  Format.printf
    "G_n: path edges weight x, bypass edges weight x^4 (x = 8)@.@.";
  Format.printf "%6s %12s %12s %12s %12s %12s@." "n" "E" "nV" "flood" "DFS"
    "hybrid";
  List.iter
    (fun n ->
      let r = Csap.Lower_bound.run_on_gn ~n ~x:8 in
      Format.printf "%6d %12d %12d %12d %12d %12d@." n
        r.Csap.Lower_bound.script_e r.Csap.Lower_bound.n_times_v
        r.Csap.Lower_bound.flood_comm r.Csap.Lower_bound.dfs_comm
        r.Csap.Lower_bound.hybrid_comm)
    [ 8; 12; 16; 20; 24 ];
  Format.printf
    "@.flood and DFS pay Theta(E) = Theta(n x^4); the hybrid follows@.";
  Format.printf
    "min(E, nV) = Theta(n^2 x) - the lower bound Lemma 7.2 proves optimal.@.";
  let n = 16 in
  Format.printf
    "@.Lemma 7.1 witness: G_%d vs the split graph G_%d^i differ in exactly@."
    n n;
  for i = 1 to 4 do
    Format.printf "  i=%d: %d edges (the bypass and its two pendants)@." i
      (Csap.Lower_bound.check_split_indistinguishable ~n ~i ~x:4)
  done;
  Format.printf
    "so an execution that never crosses a bypass edge cannot tell them apart.@."
