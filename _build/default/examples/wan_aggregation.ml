(* The paper's motivating scenario (Section 1.1): network services should
   respect the traffic-load weights they themselves are computed for.

   A WAN-like geometric network: link weight tracks geographic distance.
   An application repeatedly aggregates a metric at a coordinator. Three
   spanning-tree choices:

   - the SPT: fastest possible, but heavy — it duplicates long-haul links;
   - the MST: lightest possible, but deep — aggregation latency blows up;
   - the SLT (the paper's contribution): within a small factor of both
     optima simultaneously.

   Run with: dune exec examples/wan_aggregation.exe *)

let aggregate g tree values =
  let r = Csap.Global_func.run g ~tree ~values Csap.Global_func.sum in
  r.Csap.Global_func.measures

let () =
  let rng = Csap_graph.Rng.create 2026 in
  let g = Csap_graph.Generators.random_geometric rng 80 ~degree:4 ~scale:500.0 in
  let params = Csap_graph.Params.compute g in
  Format.printf "WAN: %a@.@." Csap_graph.Params.pp params;

  let root = 0 in
  let values = Array.init (Csap_graph.Graph.n g) (fun v -> v) in
  let spt = Csap_graph.Paths.spt g ~src:root in
  let mst = Csap_graph.Mst.prim g ~root in
  let slt = (Csap.Slt.build ~q:2.0 g ~root).Csap.Slt.tree in

  Format.printf "%-14s %12s %12s %10s %10s@." "tree" "w(T)" "height" "comm"
    "time";
  List.iter
    (fun (name, tree) ->
      let m = aggregate g tree values in
      Format.printf "%-14s %12d %12d %10d %10.0f@." name
        (Csap_graph.Tree.total_weight tree)
        (Csap_graph.Tree.height tree)
        m.Csap.Measures.comm m.Csap.Measures.time)
    [ ("shortest-path", spt); ("minimum", mst); ("shallow-light", slt) ];

  Format.printf
    "@.per 1000 aggregation queries, the SLT saves %.0f%% traffic vs the \
     SPT@."
    (100.0
    *. (1.0
       -. float_of_int (Csap_graph.Tree.total_weight slt)
          /. float_of_int (Csap_graph.Tree.total_weight spt)));
  Format.printf
    "while keeping latency within %.1fx of optimal (MST would be %.1fx)@."
    (float_of_int (Csap_graph.Tree.height slt)
    /. float_of_int params.Csap_graph.Params.script_d)
    (float_of_int (Csap_graph.Tree.height mst)
    /. float_of_int params.Csap_graph.Params.script_d)
