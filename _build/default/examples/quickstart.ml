(* Quickstart: build a weighted network, compute a global function over a
   shallow-light tree, and compare the measured cost with the paper's
   optimal bounds (communication Theta(V), time Theta(D)).

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 6x6 mesh with weight-3 links: 36 routers, uniform latency. *)
  let g = Csap_graph.Generators.grid 6 6 ~w:3 in
  let params = Csap_graph.Params.compute g in
  Format.printf "network: %a@." Csap_graph.Params.pp params;

  (* Every vertex holds a local reading; we want the global maximum known
     at every vertex. *)
  let values =
    Array.init (Csap_graph.Graph.n g) (fun v -> (v * 7919) mod 101)
  in
  let expected = Array.fold_left max min_int values in

  (* The paper's recipe (Corollary 2.3): build a shallow-light tree, then
     convergecast + broadcast on it. *)
  let result =
    Csap.Global_func.run_optimal g ~root:0 ~values Csap.Global_func.max_value
  in
  assert (Array.for_all (fun x -> x = expected) result.Csap.Global_func.outputs);
  Format.printf "global max = %d, known at every vertex@." expected;
  Format.printf "measured:   %a@." Csap.Measures.pp
    result.Csap.Global_func.measures;
  Format.printf "bounds:     comm >= V = %d (Thm 2.1), comm <= 2(1+2/q)V = %.0f@."
    params.Csap_graph.Params.script_v
    (2.0 *. Csap.Slt.weight_bound ~q:2.0
       ~script_v:params.Csap_graph.Params.script_v);
  Format.printf "            time >= D = %d, time <= 2(2q+1)D = %.0f@."
    params.Csap_graph.Params.script_d
    (2.0 *. Csap.Slt.depth_bound ~q:2.0
       ~script_d:params.Csap_graph.Params.script_d)
