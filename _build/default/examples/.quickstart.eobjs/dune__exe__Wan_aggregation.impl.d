examples/wan_aggregation.ml: Array Csap Csap_graph Format List
