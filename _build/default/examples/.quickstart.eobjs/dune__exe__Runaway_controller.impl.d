examples/runaway_controller.ml: Array Csap Csap_dsim Csap_graph Format Fun
