examples/quickstart.ml: Array Csap Csap_graph Format
