examples/synchronizer_demo.ml: Array Csap Csap_dsim Csap_graph Format List
