examples/runaway_controller.mli:
