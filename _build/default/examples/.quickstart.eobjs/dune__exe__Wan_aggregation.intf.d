examples/wan_aggregation.mli:
