examples/quickstart.mli:
