examples/synchronizer_demo.mli:
