examples/lower_bound_demo.ml: Csap Format List
