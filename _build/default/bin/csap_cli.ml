(* Command-line driver: generate a graph family, run one of the paper's
   algorithms on it, print the weighted complexity measures.

   Examples:
     csap_cli --algo mst-ghs --family complete -n 16 -w 5
     csap_cli --algo clock-gamma --family chorded -n 20 -w 100
     csap_cli --algo spt-recur --family grid -n 25 --strip 4 *)

let make_graph family n w seed =
  let rng = Csap_graph.Rng.create seed in
  match family with
  | "path" -> Csap_graph.Generators.path n ~w
  | "cycle" -> Csap_graph.Generators.cycle n ~w
  | "star" -> Csap_graph.Generators.star n ~w
  | "complete" -> Csap_graph.Generators.complete n ~w
  | "grid" ->
    let side = max 2 (int_of_float (sqrt (float_of_int n))) in
    Csap_graph.Generators.grid side side ~w
  | "random" ->
    Csap_graph.Generators.random_connected rng n ~extra_edges:(2 * n) ~wmax:w
  | "geometric" ->
    Csap_graph.Generators.random_geometric rng n ~degree:4
      ~scale:(float_of_int (10 * w))
  | "gn" -> Csap_graph.Generators.lower_bound_gn n ~x:(max 2 w)
  | "chorded" -> Csap_graph.Generators.chorded_cycle n ~chord_w:w
  | "bkj" -> Csap_graph.Generators.bkj_star_cycle n ~heavy:w
  | _ -> invalid_arg ("unknown family: " ^ family)

let print_measures name (m : Csap.Measures.t) =
  Format.printf "%-12s %a@." name Csap.Measures.pp m

let run_algo algo g strip pulses =
  match algo with
  | "params" -> ()
  | "flood" ->
    print_measures algo (Csap.Flood.run g ~source:0).Csap.Flood.measures
  | "dfs" ->
    print_measures algo (Csap.Dfs_token.run g ~root:0).Csap.Dfs_token.measures
  | "con-hybrid" ->
    let r = Csap.Con_hybrid.run g ~root:0 in
    print_measures algo r.Csap.Con_hybrid.measures;
    Format.printf "winner: %s@."
      (match r.Csap.Con_hybrid.winner with
      | Csap.Con_hybrid.Dfs -> "dfs"
      | Csap.Con_hybrid.Mst_centr -> "mst-centr")
  | "mst-centr" ->
    print_measures algo
      (Csap.Centr_growth.run_mst g ~root:0).Csap.Centr_growth.measures
  | "spt-centr" ->
    print_measures algo
      (Csap.Centr_growth.run_spt g ~root:0).Csap.Centr_growth.measures
  | "mst-ghs" ->
    print_measures algo (Csap.Mst_ghs.run g).Csap.Mst_ghs.measures
  | "mst-fast" ->
    print_measures algo (Csap.Mst_fast.run g).Csap.Mst_fast.measures
  | "mst-hybrid" ->
    let r = Csap.Mst_hybrid.run g ~root:0 in
    print_measures algo r.Csap.Mst_hybrid.measures;
    Format.printf "winner: %s@."
      (match r.Csap.Mst_hybrid.winner with
      | Csap.Mst_hybrid.Ghs -> "ghs"
      | Csap.Mst_hybrid.Mst_centr -> "mst-centr")
  | "spt-synch" ->
    print_measures algo (Csap.Spt_synch.run g ~source:0).Csap.Spt_synch.measures
  | "spt-recur" ->
    let strip =
      match strip with Some s -> s | None -> Csap.Spt_recur.default_strip g
    in
    let r = Csap.Spt_recur.run g ~source:0 ~strip in
    print_measures algo r.Csap.Spt_recur.measures;
    Format.printf "strips: %d, offers: %d, sync: %d@." r.Csap.Spt_recur.strips
      r.Csap.Spt_recur.offer_comm r.Csap.Spt_recur.sync_comm
  | "spt-hybrid" ->
    let r = Csap.Spt_hybrid.run g ~source:0 in
    Format.printf "%-12s total comm=%d epochs=%d winner=%s@." algo
      r.Csap.Spt_hybrid.total_comm r.Csap.Spt_hybrid.epochs
      (match r.Csap.Spt_hybrid.winner with
      | Csap.Spt_hybrid.Synch -> "synch"
      | Csap.Spt_hybrid.Recur -> "recur")
  | "slt" ->
    let r = Csap.Slt.build g ~root:0 in
    Format.printf "%-12s w(T)=%d height=%d diam=%d breakpoints=%d@." algo
      (Csap_graph.Tree.total_weight r.Csap.Slt.tree)
      (Csap_graph.Tree.height r.Csap.Slt.tree)
      (Csap_graph.Tree.diameter r.Csap.Slt.tree)
      (List.length r.Csap.Slt.breakpoints)
  | "slt-dist" ->
    let r = Csap.Slt_distributed.run g ~root:0 in
    print_measures algo r.Csap.Slt_distributed.measures
  | "global-sum" ->
    let values = Array.init (Csap_graph.Graph.n g) (fun i -> i) in
    print_measures algo
      (Csap.Global_func.run_optimal g ~root:0 ~values Csap.Global_func.sum)
        .Csap.Global_func.measures
  | "clock-alpha" | "clock-beta" | "clock-gamma" ->
    let run =
      match algo with
      | "clock-alpha" -> Csap.Clock_sync.run_alpha ?delay:None
      | "clock-beta" -> Csap.Clock_sync.run_beta ?delay:None ?tree:None
      | _ -> Csap.Clock_sync.run_gamma ?delay:None ?cover:None ?neighbor_phase:None
    in
    let r = run g ~pulses in
    Format.printf
      "%-12s max pulse delay=%.1f avg=%.1f comm/pulse=%.1f@." algo
      r.Csap.Clock_sync.max_pulse_delay r.Csap.Clock_sync.avg_pulse_delay
      r.Csap.Clock_sync.comm_per_pulse
  | _ -> invalid_arg ("unknown algorithm: " ^ algo)

let main algo family n w seed strip pulses =
  let g = make_graph family n w seed in
  Format.printf "graph: %a@." Csap_graph.Params.pp
    (Csap_graph.Params.compute g);
  run_algo algo g strip pulses

open Cmdliner

let algo =
  let doc =
    "Algorithm: params, flood, dfs, con-hybrid, mst-centr, spt-centr, \
     mst-ghs, mst-fast, mst-hybrid, spt-synch, spt-recur, spt-hybrid, slt, \
     slt-dist, global-sum, clock-alpha, clock-beta, clock-gamma."
  in
  Arg.(value & opt string "params" & info [ "algo"; "a" ] ~doc)

let family =
  let doc =
    "Graph family: path, cycle, star, complete, grid, random, geometric, \
     gn, chorded, bkj."
  in
  Arg.(value & opt string "random" & info [ "family"; "f" ] ~doc)

let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Number of vertices.")
let w = Arg.(value & opt int 8 & info [ "w" ] ~doc:"Weight parameter.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let strip =
  Arg.(value & opt (some int) None & info [ "strip" ] ~doc:"Strip depth.")

let pulses =
  Arg.(value & opt int 10 & info [ "pulses" ] ~doc:"Clock pulses to run.")

let cmd =
  let doc = "cost-sensitive communication protocols (Awerbuch-Baratz-Peleg)" in
  Cmd.v
    (Cmd.info "csap_cli" ~doc)
    Term.(const main $ algo $ family $ n $ w $ seed $ strip $ pulses)

let () = exit (Cmd.eval cmd)
