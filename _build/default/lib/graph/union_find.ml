type t = {
  parent : int array;
  rank : int array;
  mutable count : int;
}

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rx, ry = if t.rank.(rx) < t.rank.(ry) then (ry, rx) else (rx, ry) in
    t.parent.(ry) <- rx;
    if t.rank.(rx) = t.rank.(ry) then t.rank.(rx) <- t.rank.(rx) + 1;
    t.count <- t.count - 1;
    true
  end

let same t x y = find t x = find t y

let count t = t.count
