type t = {
  root : int;
  parents : int array;
  weights : int array;
  children : int list array;
  depth : int array;
  preorder : int array;
}

(* Builds children lists, then computes depths and a preorder without
   recursion so that very deep trees (paths) do not overflow the stack. *)
let of_parents ~root ~parents ~weights =
  let n = Array.length parents in
  if Array.length weights <> n then
    invalid_arg "Tree.of_parents: array length mismatch";
  if root < 0 || root >= n then invalid_arg "Tree.of_parents: bad root";
  if parents.(root) <> -1 then
    invalid_arg "Tree.of_parents: root must have parent -1";
  let children = Array.make n [] in
  Array.iteri
    (fun v p ->
      if v <> root then begin
        if p < 0 || p >= n then
          invalid_arg "Tree.of_parents: parent out of range";
        if weights.(v) < 1 then
          invalid_arg "Tree.of_parents: non-positive edge weight";
        children.(p) <- v :: children.(p)
      end)
    parents;
  Array.iteri (fun v cs -> children.(v) <- List.sort compare cs) children;
  let depth = Array.make n (-1) in
  let preorder = Array.make n (-1) in
  let stack = ref [ root ] in
  depth.(root) <- 0;
  let count = ref 0 in
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      preorder.(!count) <- v;
      incr count;
      List.iter
        (fun c ->
          if depth.(c) >= 0 then
            invalid_arg "Tree.of_parents: cycle in parent pointers";
          depth.(c) <- depth.(v) + weights.(c);
          stack := c :: !stack)
        children.(v);
      loop ()
  in
  loop ();
  if !count <> n then
    invalid_arg "Tree.of_parents: not all vertices reachable from root";
  { root; parents = Array.copy parents; weights = Array.copy weights;
    children; depth; preorder }

let n t = Array.length t.parents
let root t = t.root

let parent t v =
  if v = t.root then None else Some (t.parents.(v), t.weights.(v))

let children t v = t.children.(v)

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun v p -> if v <> t.root then acc := (p, v, t.weights.(v)) :: !acc)
    t.parents;
  List.rev !acc

let total_weight t =
  let sum = ref 0 in
  Array.iteri (fun v _ -> if v <> t.root then sum := !sum + t.weights.(v))
    t.parents;
  !sum

let depth t v = t.depth.(v)

let height t = Array.fold_left max 0 t.depth

(* Longest weighted downward path from each vertex, combined pairwise at each
   vertex, gives the tree diameter in one bottom-up pass over the reversed
   preorder. *)
let diameter t =
  let n = n t in
  let down = Array.make n 0 in
  let best = ref 0 in
  for i = n - 1 downto 0 do
    let v = t.preorder.(i) in
    let top1 = ref 0 and top2 = ref 0 in
    List.iter
      (fun c ->
        let len = down.(c) + t.weights.(c) in
        if len > !top1 then begin
          top2 := !top1;
          top1 := len
        end
        else if len > !top2 then top2 := len)
      t.children.(v);
    down.(v) <- !top1;
    if !top1 + !top2 > !best then best := !top1 + !top2
  done;
  !best

let path_to_root t v =
  let rec up v acc =
    if v = t.root then List.rev (v :: acc) else up t.parents.(v) (v :: acc)
  in
  up v []

(* The tree path x..y is the root path of x up to the lowest common ancestor,
   then the reversed root path of y below it. *)
let path t x y =
  let px = path_to_root t x and py = path_to_root t y in
  let on_py = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace on_py v ()) py;
  let rec split_at_lca acc = function
    | [] -> assert false
    | v :: rest ->
      if Hashtbl.mem on_py v then (List.rev acc, v) else split_at_lca (v :: acc) rest
  in
  let x_side, lca = split_at_lca [] px in
  let rec below_lca acc = function
    | [] -> assert false
    | v :: rest -> if v = lca then acc else below_lca (v :: acc) rest
  in
  let y_side = below_lca [] py in
  x_side @ (lca :: y_side)

let path_weight t x y =
  let rec sum acc = function
    | [] | [ _ ] -> acc
    | a :: (b :: _ as rest) ->
      let w =
        if t.parents.(a) = b then t.weights.(a)
        else begin
          assert (t.parents.(b) = a);
          t.weights.(b)
        end
      in
      sum (acc + w) rest
  in
  sum 0 (path t x y)

let euler_tour t =
  let n = n t in
  let tour = Array.make ((2 * n) - 1) (-1) in
  let pos = ref 0 in
  let emit v =
    tour.(!pos) <- v;
    incr pos
  in
  (* Explicit stack of (vertex, remaining children) to avoid deep recursion. *)
  let stack = ref [ (t.root, t.children.(t.root)) ] in
  emit t.root;
  let rec loop () =
    match !stack with
    | [] -> ()
    | (_, []) :: rest ->
      stack := rest;
      (match rest with
      | (p, _) :: _ -> emit p
      | [] -> ());
      loop ()
    | (v, c :: cs) :: rest ->
      stack := (c, t.children.(c)) :: (v, cs) :: rest;
      emit c;
      loop ()
  in
  loop ();
  assert (!pos = (2 * n) - 1);
  tour

let vertices_preorder t = Array.copy t.preorder

let is_spanning_tree_of g t =
  Graph.n g = n t
  && List.for_all
       (fun (p, c, w) ->
         match Graph.edge_between g p c with
         | Some (gw, _) -> gw = w
         | None -> false)
       (edges t)

let to_graph t = Graph.create ~n:(n t) (edges t)

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>tree root=%d@ %a@]" t.root
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (p, c, w) ->
         Format.fprintf ppf "%d->%d:%d" p c w))
    (edges t)
