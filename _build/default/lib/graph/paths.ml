type sssp = {
  src : int;
  dist : int array;
  parent : int array;
}

let dijkstra g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let cmp (d1, v1) (d2, v2) =
    let c = compare d1 d2 in
    if c <> 0 then c else compare v1 v2
  in
  let heap = Heap.create ~cmp in
  dist.(src) <- 0;
  Heap.add heap (0, src);
  let relax u du (v, w, _) =
    let dv = du + w in
    if
      (not settled.(v))
      && (dv < dist.(v) || (dv = dist.(v) && u < parent.(v)))
    then begin
      dist.(v) <- dv;
      parent.(v) <- u;
      Heap.add heap (dv, v)
    end
  in
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (du, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        assert (du = dist.(u));
        Array.iter (relax u du) (Graph.neighbors g u);
        loop ()
      end
      else loop ()
  in
  loop ();
  { src; dist; parent }

let bellman_ford g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  dist.(src) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (e : Graph.edge) ->
        let relax a b =
          if dist.(a) < max_int then begin
            let d = dist.(a) + e.w in
            if d < dist.(b) || (d = dist.(b) && a < parent.(b)) then begin
              dist.(b) <- d;
              parent.(b) <- a;
              changed := true
            end
          end
        in
        relax e.u e.v;
        relax e.v e.u)
      (Graph.edges g)
  done;
  { src; dist; parent }

let spt g ~src =
  let { dist; parent; _ } = dijkstra g ~src in
  Array.iter
    (fun d ->
      if d = max_int then invalid_arg "Paths.spt: graph is disconnected")
    dist;
  let n = Graph.n g in
  let weights =
    Array.init n (fun v -> if v = src then 0 else dist.(v) - dist.(parent.(v)))
  in
  Tree.of_parents ~root:src ~parents:parent ~weights

let dist g u v = (dijkstra g ~src:u).dist.(v)

let eccentricity g v =
  Array.fold_left max 0 (dijkstra g ~src:v).dist

let diameter g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.diameter: graph is disconnected";
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    best := max !best (eccentricity g v)
  done;
  !best

let radius_and_center g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.radius_and_center: graph is disconnected";
  let best = ref max_int and center = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e < !best then begin
      best := e;
      center := v
    end
  done;
  (!best, !center)

let max_neighbor_distance g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let { dist; _ } = dijkstra g ~src:v in
    Array.iter
      (fun (u, _, _) -> if dist.(u) > !best then best := dist.(u))
      (Graph.neighbors g v)
  done;
  !best
