type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }

let size t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let new_cap = max 8 (2 * cap) in
    let data = Array.make new_cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t x =
  grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek_min t = if t.len = 0 then None else Some t.data.(0)

let pop_min t =
  if t.len = 0 then None
  else begin
    let min = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some min
  end

let clear t =
  t.data <- [||];
  t.len <- 0

let of_list ~cmp xs =
  match xs with
  | [] -> create ~cmp
  | _ ->
    let data = Array.of_list xs in
    let t = { cmp; data; len = Array.length data } in
    for i = (t.len / 2) - 1 downto 0 do
      sift_down t i
    done;
    t

let to_sorted_list t =
  let rec drain acc =
    match pop_min t with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
