lib/graph/tree.mli: Format Graph
