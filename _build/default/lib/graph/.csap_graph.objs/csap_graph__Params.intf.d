lib/graph/params.mli: Format Graph
