lib/graph/traversal.mli: Graph Tree
