lib/graph/tree.ml: Array Format Graph Hashtbl List
