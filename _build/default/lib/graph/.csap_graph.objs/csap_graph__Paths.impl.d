lib/graph/paths.ml: Array Graph Heap Tree
