lib/graph/traversal.ml: Array Graph List Queue Tree
