lib/graph/generators.mli: Graph Rng
