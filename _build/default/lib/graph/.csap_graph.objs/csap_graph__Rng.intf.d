lib/graph/rng.mli:
