lib/graph/paths.mli: Graph Tree
