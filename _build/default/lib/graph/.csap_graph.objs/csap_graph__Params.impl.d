lib/graph/params.ml: Format Graph Mst Paths
