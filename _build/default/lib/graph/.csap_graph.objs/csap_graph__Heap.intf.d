lib/graph/heap.mli:
