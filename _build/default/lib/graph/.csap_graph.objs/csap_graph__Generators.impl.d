lib/graph/generators.ml: Array Float Graph Hashtbl List Rng
