lib/graph/rng.ml: Array Int64
