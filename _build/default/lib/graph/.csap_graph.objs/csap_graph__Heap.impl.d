lib/graph/heap.ml: Array List
