lib/graph/mst.mli: Graph Tree
