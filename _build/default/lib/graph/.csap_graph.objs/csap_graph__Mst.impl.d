lib/graph/mst.ml: Array Graph Heap List Tree Union_find
