type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
