(** Disjoint-set forest with union by rank and path compression. *)

type t

(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)
val create : int -> t

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns [false] when they
    were already the same set. *)
val union : t -> int -> int -> bool

(** [same t x y] tests whether [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** Number of distinct sets remaining. *)
val count : t -> int
