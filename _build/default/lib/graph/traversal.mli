(** Sequential graph traversals: hop-based BFS, DFS, components. *)

(** [bfs g ~src] is the array of hop distances ([-1] when unreachable). *)
val bfs_hops : Graph.t -> src:int -> int array

(** Unweighted (hop) diameter [D]. Requires a connected graph. *)
val hop_diameter : Graph.t -> int

(** [dfs_preorder g ~src] visits the component of [src] depth-first,
    exploring neighbours in adjacency order; returns the preorder. *)
val dfs_preorder : Graph.t -> src:int -> int array

(** [components g] assigns a component id to every vertex (ids are dense,
    starting at 0) and returns [(ids, count)]. *)
val components : Graph.t -> int array * int

(** [spanning_tree_dfs g ~root] is an arbitrary (DFS) spanning tree; requires
    a connected graph. *)
val spanning_tree_dfs : Graph.t -> root:int -> Tree.t
