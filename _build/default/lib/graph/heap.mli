(** Resizable binary min-heap over an arbitrary ordering.

    Used by Dijkstra / Prim (with [(priority, vertex)] pairs and lazy
    deletion) and by the discrete-event simulator's event queue. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [add t x] inserts [x]; O(log n). *)
val add : 'a t -> 'a -> unit

(** [peek_min t] is the minimum element without removing it. *)
val peek_min : 'a t -> 'a option

(** [pop_min t] removes and returns the minimum element; O(log n). *)
val pop_min : 'a t -> 'a option

(** [clear t] removes every element. *)
val clear : 'a t -> unit

(** [of_list ~cmp xs] heapifies [xs]; O(n). *)
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

(** [to_sorted_list t] drains the heap, returning elements in ascending
    order. The heap is empty afterwards. *)
val to_sorted_list : 'a t -> 'a list
