(** Deterministic pseudo-random number generator (splitmix64).

    All randomised components of the library (graph generators, delay models)
    draw from this generator so that every experiment is reproducible from a
    seed, independent of the OCaml runtime's [Random] state. *)

type t

(** [create seed] returns a fresh generator; equal seeds give equal streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new generator from [t], advancing [t]; streams of the
    parent and child are independent. *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi]; requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
