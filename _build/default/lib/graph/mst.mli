(** Minimum spanning trees (sequential reference algorithms).

    Ties are broken by the canonical order {!Graph.compare_edges}, which makes
    the MST unique and lets distributed algorithms be checked edge-for-edge
    against these references. *)

(** Prim's algorithm from a given root; requires a connected graph. *)
val prim : Graph.t -> root:int -> Tree.t

(** Kruskal's algorithm: the MST edge ids in the canonical order. Works on
    disconnected graphs (returns a minimum spanning forest). *)
val kruskal : Graph.t -> int list

(** Weight of the (unique, canonical) MST; the paper's script-V. Requires a
    connected graph. *)
val weight : Graph.t -> int

(** [is_mst g t] checks [t] spans [g] and has the canonical MST's weight. *)
val is_mst : Graph.t -> Tree.t -> bool
