type t = {
  n : int;
  m : int;
  script_e : int;
  script_v : int;
  script_d : int;
  d : int;
  w_max : int;
}

let compute g =
  {
    n = Graph.n g;
    m = Graph.m g;
    script_e = Graph.total_weight g;
    script_v = Mst.weight g;
    script_d = Paths.diameter g;
    d = Paths.max_neighbor_distance g;
    w_max = Graph.max_weight g;
  }

let pp ppf t =
  Format.fprintf ppf
    "n=%d m=%d E=%d V=%d D=%d d=%d W=%d" t.n t.m t.script_e t.script_v
    t.script_d t.d t.w_max

let invariants_hold t =
  t.script_v <= t.script_e
  && t.script_d <= t.script_e
  && t.d <= t.w_max
  && (t.n <= 1 || t.script_v <= (t.n - 1) * t.script_d)
  && t.script_d <= max 1 t.script_v (* every distance <= some MST path *)
