(** Rooted spanning trees, represented by parent pointers.

    Trees are the central object of the paper: shortest-path trees, minimum
    spanning trees and shallow-light trees are all values of this type. A
    tree over [n] vertices has [parent.(root) = -1] and
    [weight_to_parent.(root) = 0]; vertices not reachable from the root are
    not permitted ([of_parents] rejects them). *)

type t

(** [of_parents ~root ~parents ~weights] validates and builds a tree.

    Raises [Invalid_argument] unless [parents] describes a single tree rooted
    at [root] covering all [n = Array.length parents] vertices, with positive
    weights on every non-root vertex's parent edge. *)
val of_parents : root:int -> parents:int array -> weights:int array -> t

val n : t -> int
val root : t -> int

(** [parent t v] is [Some (p, w)] for a non-root [v], [None] for the root. *)
val parent : t -> int -> (int * int) option

(** Children lists (shared array: do not mutate). *)
val children : t -> int -> int list

(** Edges as [(parent, child, w)] triples, one per non-root vertex. *)
val edges : t -> (int * int * int) list

(** Sum of edge weights [w(T)]. *)
val total_weight : t -> int

(** [depth t v] is the weighted distance from the root to [v]. *)
val depth : t -> int -> int

(** Maximum weighted depth over all vertices. *)
val height : t -> int

(** Weighted diameter of the tree (max over pairs of the tree-path weight). *)
val diameter : t -> int

(** [path_to_root t v] lists vertices from [v] up to (and including) the
    root. *)
val path_to_root : t -> int -> int list

(** [path t x y] is the unique tree path from [x] to [y], inclusive. *)
val path : t -> int -> int -> int list

(** [path_weight t x y] is the weight of the tree path from [x] to [y]. *)
val path_weight : t -> int -> int -> int

(** [euler_tour t] is the closed depth-first tour of the tree from the root:
    a sequence of [2n - 1] vertices where consecutive entries are joined by a
    tree edge and every tree edge is traversed exactly twice. Children are
    visited in increasing order of vertex id. *)
val euler_tour : t -> int array

(** [vertices_preorder t] is a DFS preorder of the vertices. *)
val vertices_preorder : t -> int array

(** [is_spanning_tree_of g t] checks that every tree edge is an edge of [g]
    with matching weight (and that [t] spans [g]'s vertex set). *)
val is_spanning_tree_of : Graph.t -> t -> bool

(** [to_graph t] forgets the rooting, yielding the tree as a graph. *)
val to_graph : t -> Graph.t

val pp : Format.formatter -> t -> unit
