type t =
  | Exact
  | Uniform of Csap_graph.Rng.t
  | Scaled of float
  | Near_zero
  | Jitter of Csap_graph.Rng.t

let epsilon = 1e-6

let sample t ~w =
  assert (w >= 1);
  let fw = float_of_int w in
  match t with
  | Exact -> fw
  | Uniform rng ->
    let u = Csap_graph.Rng.float rng in
    (* (0, w]: map [0,1) to (0, w] by flipping the interval. *)
    (1.0 -. u) *. fw
  | Scaled c ->
    assert (c > 0.0 && c <= 1.0);
    c *. fw
  | Near_zero -> epsilon
  | Jitter rng ->
    let u = Csap_graph.Rng.float rng in
    (0.5 +. (0.5 *. (1.0 -. u))) *. fw

let pp ppf = function
  | Exact -> Format.fprintf ppf "exact"
  | Uniform _ -> Format.fprintf ppf "uniform(0,w]"
  | Scaled c -> Format.fprintf ppf "scaled(%g)" c
  | Near_zero -> Format.fprintf ppf "near-zero"
  | Jitter _ -> Format.fprintf ppf "jitter[w/2,w]"
