(** Weighted synchronous protocols (Section 4).

    A synchronous protocol runs on the weighted synchronous network
    [G(V,E,w)] where a message sent on edge [e] at pulse [p] arrives exactly
    at pulse [p + w(e)]. A protocol is {e in synch} with [G] (Definition 4.2)
    when it transmits on [e] only at pulses divisible by [w(e)].

    The same value is executed by {!Sync_runner} (the reference executor) and
    wrapped by the synchronizers of the core library, which is what makes the
    "synchronizer simulation is exact" property testable. *)

type ('state, 'msg) t = {
  init : Csap_graph.Graph.t -> me:int -> 'state;
      (** Per-vertex initial state, computed before pulse 0. *)
  on_pulse :
    Csap_graph.Graph.t ->
    me:int ->
    pulse:int ->
    inbox:(int * 'msg) list ->
    'state ->
    'state * (int * 'msg) list;
      (** Executed at every pulse. [inbox] lists [(src, payload)] for the
          messages arriving exactly at this pulse, in ascending [src] order.
          The result lists [(dst, payload)] transmissions to neighbours. *)
}

(** One delivery record, used for execution-equivalence checks. *)
type 'msg delivery = {
  pulse : int;  (** arrival pulse *)
  src : int;
  dst : int;
  payload : 'msg;
}

(** Canonical sort order for delivery logs. *)
val compare_delivery :
  cmp_payload:('msg -> 'msg -> int) ->
  'msg delivery ->
  'msg delivery ->
  int
