type ('state, 'msg) outcome = {
  states : 'state array;
  deliveries : 'msg Sync_protocol.delivery list;
  weighted_comm : int;
  messages : int;
  pulses_run : int;
}

let run ?(check_in_synch = false) g protocol ~pulses =
  let n = Csap_graph.Graph.n g in
  let states = Array.init n (fun v -> protocol.Sync_protocol.init g ~me:v) in
  (* in_flight.(p mod horizon) holds messages arriving at pulse p as
     (src, dst, payload); horizon covers the maximal weight. *)
  let horizon = Csap_graph.Graph.max_weight g + 1 in
  let in_flight = Array.make horizon [] in
  let deliveries = ref [] in
  let weighted_comm = ref 0 in
  let messages = ref 0 in
  for pulse = 0 to pulses do
    let slot = pulse mod horizon in
    let arriving = List.rev in_flight.(slot) in
    in_flight.(slot) <- [];
    (* Stable per-destination inboxes, sorted by source. *)
    let inboxes = Array.make n [] in
    List.iter
      (fun (src, dst, payload) ->
        inboxes.(dst) <- (src, payload) :: inboxes.(dst);
        deliveries := { Sync_protocol.pulse; src; dst; payload } :: !deliveries)
      arriving;
    for v = 0 to n - 1 do
      let inbox =
        List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(v)
      in
      let state, sends =
        protocol.Sync_protocol.on_pulse g ~me:v ~pulse ~inbox states.(v)
      in
      states.(v) <- state;
      List.iter
        (fun (dst, payload) ->
          match Csap_graph.Graph.edge_between g v dst with
          | None -> invalid_arg "Sync_runner: send to non-neighbour"
          | Some (w, _) ->
            if check_in_synch && pulse mod w <> 0 then
              invalid_arg
                (Printf.sprintf
                   "Sync_runner: protocol not in synch (edge weight %d, \
                    pulse %d)"
                   w pulse);
            incr messages;
            weighted_comm := !weighted_comm + w;
            let arrival = pulse + w in
            if arrival <= pulses then
              in_flight.(arrival mod horizon) <-
                (v, dst, payload) :: in_flight.(arrival mod horizon)
            else
              (* Still record late deliveries so equivalence checks can
                 compare complete logs. *)
              deliveries :=
                { Sync_protocol.pulse = arrival; src = v; dst; payload }
                :: !deliveries)
        sends
    done
  done;
  {
    states;
    deliveries = List.rev !deliveries;
    weighted_comm = !weighted_comm;
    messages = !messages;
    pulses_run = pulses + 1;
  }
