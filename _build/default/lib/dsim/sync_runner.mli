(** Reference executor for weighted synchronous protocols.

    Runs a {!Sync_protocol.t} for a fixed number of pulses on the weighted
    synchronous network: a message sent on [e] at pulse [p] is delivered at
    pulse [p + w(e)]. This is the ground truth that synchronizer executions
    are compared against, and also the executor for the synchronous halves of
    SPT_synch. *)

(** Outcome of a run. *)
type ('state, 'msg) outcome = {
  states : 'state array;  (** per-vertex states after the last pulse *)
  deliveries : 'msg Sync_protocol.delivery list;
      (** every delivery, in execution order *)
  weighted_comm : int;  (** sum of w(e) over all sends *)
  messages : int;
  pulses_run : int;
}

(** [run ?check_in_synch g p ~pulses] executes pulses [0 .. pulses]
    inclusive. With [check_in_synch] (default [false]), raises
    [Invalid_argument] if the protocol transmits on an edge [e] at a pulse
    not divisible by [w(e)] (Definition 4.2). Sends to non-neighbours raise
    [Invalid_argument]. *)
val run :
  ?check_in_synch:bool ->
  Csap_graph.Graph.t ->
  ('state, 'msg) Sync_protocol.t ->
  pulses:int ->
  ('state, 'msg) outcome
