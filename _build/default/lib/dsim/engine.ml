type 'msg event = {
  time : float;
  seq : int;
  action : 'msg action;
}

and 'msg action =
  | Deliver of { src : int; dst : int; payload : 'msg }
  | Local of (unit -> unit)

type 'msg t = {
  g : Csap_graph.Graph.t;
  delay : Delay.t;
  queue : 'msg event Csap_graph.Heap.t;
  handlers : (src:int -> 'msg -> unit) option array;
  metrics : Metrics.t;
  traffic : int array;
  (* Last scheduled delivery time per directed edge, to keep links FIFO.
     Index: 2 * edge_id + direction (0 when src = edge.u). *)
  last_delivery : float array;
  mutable clock : float;
  mutable seq : int;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(delay = Delay.Exact) g =
  {
    g;
    delay;
    queue = Csap_graph.Heap.create ~cmp:compare_events;
    handlers = Array.make (Csap_graph.Graph.n g) None;
    metrics = Metrics.create ();
    traffic = Array.make (Csap_graph.Graph.m g) 0;
    last_delivery = Array.make (2 * Csap_graph.Graph.m g) 0.0;
    clock = 0.0;
    seq = 0;
  }

let graph t = t.g
let now t = t.clock

let set_handler t v f = t.handlers.(v) <- Some f

let push t time action =
  Csap_graph.Heap.add t.queue { time; seq = t.seq; action };
  t.seq <- t.seq + 1

let send t ~src ~dst payload =
  match Csap_graph.Graph.edge_between t.g src dst with
  | None -> invalid_arg "Engine.send: no such edge"
  | Some (w, id) ->
    Metrics.add_send t.metrics ~w;
    t.traffic.(id) <- t.traffic.(id) + 1;
    let e = Csap_graph.Graph.edge t.g id in
    let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
    let slot = (2 * id) + dir in
    let arrival = t.clock +. Delay.sample t.delay ~w in
    let arrival = Float.max arrival t.last_delivery.(slot) in
    t.last_delivery.(slot) <- arrival;
    push t arrival (Deliver { src; dst; payload })

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  push t (t.clock +. delay) (Local f)

let quiescent t = Csap_graph.Heap.is_empty t.queue

let dispatch t = function
  | Local f -> f ()
  | Deliver { src; dst; payload } -> (
    match t.handlers.(dst) with
    | Some f -> f ~src payload
    | None -> failwith (Printf.sprintf "Engine: no handler at vertex %d" dst))

let run ?until ?(max_events = max_int) ?(comm_budget = max_int) t =
  let processed = ref 0 in
  let continue = ref true in
  while
    !continue && !processed < max_events
    && t.metrics.Metrics.weighted_comm < comm_budget
  do
    match Csap_graph.Heap.peek_min t.queue with
    | None -> continue := false
    | Some ev ->
      (match until with
      | Some limit when ev.time > limit ->
        t.clock <- limit;
        continue := false
      | _ ->
        ignore (Csap_graph.Heap.pop_min t.queue);
        t.clock <- Float.max t.clock ev.time;
        dispatch t ev.action;
        incr processed;
        t.metrics.Metrics.events <- t.metrics.Metrics.events + 1;
        t.metrics.Metrics.completion_time <- t.clock)
  done;
  !processed

let metrics t = t.metrics

let edge_traffic t = Array.copy t.traffic

let send_count t = t.metrics.Metrics.messages
