type ('state, 'msg) t = {
  init : Csap_graph.Graph.t -> me:int -> 'state;
  on_pulse :
    Csap_graph.Graph.t ->
    me:int ->
    pulse:int ->
    inbox:(int * 'msg) list ->
    'state ->
    'state * (int * 'msg) list;
}

type 'msg delivery = {
  pulse : int;
  src : int;
  dst : int;
  payload : 'msg;
}

let compare_delivery ~cmp_payload a b =
  let c = compare (a.pulse, a.src, a.dst) (b.pulse, b.src, b.dst) in
  if c <> 0 then c else cmp_payload a.payload b.payload
