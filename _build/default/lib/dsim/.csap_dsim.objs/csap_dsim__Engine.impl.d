lib/dsim/engine.ml: Array Csap_graph Delay Float Metrics Printf
