lib/dsim/delay.mli: Csap_graph Format
