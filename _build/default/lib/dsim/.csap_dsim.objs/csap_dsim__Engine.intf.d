lib/dsim/engine.mli: Csap_graph Delay Metrics
