lib/dsim/metrics.mli: Format
