lib/dsim/delay.ml: Csap_graph Format
