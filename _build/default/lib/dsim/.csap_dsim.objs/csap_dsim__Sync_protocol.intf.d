lib/dsim/sync_protocol.mli: Csap_graph
