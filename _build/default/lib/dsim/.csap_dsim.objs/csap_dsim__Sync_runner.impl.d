lib/dsim/sync_runner.ml: Array Csap_graph List Printf Sync_protocol
