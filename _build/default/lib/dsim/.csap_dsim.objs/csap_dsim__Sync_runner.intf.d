lib/dsim/sync_runner.mli: Csap_graph Sync_protocol
