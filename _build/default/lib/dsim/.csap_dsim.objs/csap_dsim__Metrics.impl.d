lib/dsim/metrics.ml: Format
