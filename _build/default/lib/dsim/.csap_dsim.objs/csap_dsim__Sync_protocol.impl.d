lib/dsim/sync_protocol.ml: Csap_graph
