(** Weighted cost accounting for protocol executions (Section 1.3).

    [weighted_comm] is the paper's communication complexity: the sum of
    [w(e)] over every message sent. [completion_time] is the physical time of
    the last event processed. *)

type t = {
  mutable messages : int;  (** number of messages sent *)
  mutable weighted_comm : int;  (** sum of w(e) over messages *)
  mutable completion_time : float;
  mutable events : int;  (** events processed by the engine *)
}

val create : unit -> t
val reset : t -> unit

(** [add_send t ~w] accounts for one message on an edge of weight [w]. *)
val add_send : t -> w:int -> unit

val pp : Format.formatter -> t -> unit
