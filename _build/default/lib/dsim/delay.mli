(** Delay models for asynchronous links.

    The paper's model lets the delay of a message on edge [e] vary in
    [(0, w(e)]]. Every model below respects those bounds; protocols must be
    correct under all of them, while complexity measurements use [Exact]
    (the [w(e)]-normalised execution the paper's time bounds refer to). *)

type t =
  | Exact  (** delay is exactly [w(e)] — the normalised schedule *)
  | Uniform of Csap_graph.Rng.t
      (** delay uniform in [(0, w(e)]], independently per message *)
  | Scaled of float
      (** delay is [c * w(e)] for a fixed [0 < c <= 1] — a uniformly
          fast network *)
  | Near_zero
      (** a tiny positive delay regardless of weight — the adversary that
          exposes algorithms relying on weights for timing *)
  | Jitter of Csap_graph.Rng.t
      (** delay in [[w(e)/2, w(e)]] — bounded jitter around the weight *)

(** [sample t ~w] draws a delay in [(0, w]]; [w >= 1] required. *)
val sample : t -> w:int -> float

val pp : Format.formatter -> t -> unit
