(** Cover coarsening — Theorem 1.1 of the paper ([AP91]).

    Given an initial cover [S] and a parameter [k >= 1], builds a cover [T]
    such that:

    + [T] subsumes [S];
    + [Rad(T) <= (2k - 1) * Rad(S)];
    + the maximum degree [A(T)] is low: this implementation uses the
      phase-disjoint greedy variant, giving
      [A(T) <= |S|^(1/k) * (1 + ln |S|)] — which matches the theorem's
      [O(k |S|^(1/k))] at the operating point [k = log n] used by the tree
      edge-cover of Section 3.

    The construction is the classical kernel-growing procedure: pick a seed
    cluster, repeatedly merge every remaining cluster that intersects the
    kernel while the merge multiplies the kernel's cluster count by more than
    [|S|^(1/k)], and output the kernel. Kernels formed within one phase are
    vertex-disjoint, so each phase adds at most one to any vertex's degree. *)

(** [coarsen g ~clusters ~k] returns the coarsened cover.

    Raises [Invalid_argument] when [k < 1], [clusters] is empty, or some
    input cluster is empty or not connected in [g]. *)
val coarsen :
  Csap_graph.Graph.t -> clusters:Cluster.t list -> k:int -> Cluster.t list

(** Upper bound on the output degree guaranteed by this implementation:
    [ceil (|S|^(1/k) * (1 + ln |S|))]. Exposed so tests and callers can
    assert against the actual contract. *)
val degree_bound : num_clusters:int -> k:int -> int
