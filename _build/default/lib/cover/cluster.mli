(** Clusters and covers (Section 1.2).

    A {e cluster} is a set of vertices [S] whose induced subgraph [G(S)] is
    connected. A {e cover} is a collection of clusters whose union is [V].
    Radii are weighted and measured inside the induced subgraph. *)

module Vset : Set.S with type elt = int

type t = Vset.t

val of_list : int list -> t

(** Whether [G(S)] is connected ([false] for the empty set). *)
val is_connected : Csap_graph.Graph.t -> t -> bool

(** [dijkstra_within g s ~src] is the array of weighted distances from [src]
    using only vertices of [s] ([max_int] outside or unreachable).
    Requires [src] to be in [s]. *)
val dijkstra_within : Csap_graph.Graph.t -> t -> src:int -> int array

(** [eccentricity_within g s v] is [max_{u in s} dist(v, u, G(S))]. *)
val eccentricity_within : Csap_graph.Graph.t -> t -> int -> int

(** [radius_and_center g s] minimises eccentricity over members of [s];
    requires [G(S)] connected and non-empty. *)
val radius_and_center : Csap_graph.Graph.t -> t -> int * int

(** [Rad(S)] as defined in the paper. *)
val radius : Csap_graph.Graph.t -> t -> int

(** {2 Covers} *)

(** Union of the clusters equals the whole vertex set. *)
val is_cover : Csap_graph.Graph.t -> t list -> bool

(** [max_degree n cover] is [A(S)]: the max, over vertices, of the number of
    clusters containing it. *)
val max_degree : int -> t list -> int

(** [max_radius g cover] is [Rad(S) = max_i Rad(S_i)]. *)
val max_radius : Csap_graph.Graph.t -> t list -> int

(** [subsumes ~coarse ~fine]: every cluster of [fine] is contained in some
    cluster of [coarse]. *)
val subsumes : coarse:t list -> fine:t list -> bool
