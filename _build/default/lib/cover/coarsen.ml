let degree_bound ~num_clusters ~k =
  let s = float_of_int num_clusters in
  let f = s ** (1.0 /. float_of_int k) in
  int_of_float (ceil (f *. (1.0 +. log s)))

(* One phase of the greedy construction. [pool] is an array of
   (original_index, cluster) pairs still to be processed this phase. Returns
   the kernels output this phase and the clusters deferred to the next
   phase. Kernels within a phase are vertex-disjoint by construction. *)
let run_phase growth_factor pool =
  let alive = Hashtbl.create (List.length pool) in
  List.iter (fun (id, c) -> Hashtbl.replace alive id c) pool;
  let outputs = ref [] in
  let deferred = ref [] in
  let intersecting kernel_vertices =
    Hashtbl.fold
      (fun id c acc ->
        if Cluster.Vset.exists (fun v -> Cluster.Vset.mem v kernel_vertices) c
        then (id, c) :: acc
        else acc)
      alive []
  in
  let rec next_seed () =
    match Hashtbl.fold (fun id c acc ->
              match acc with
              | Some (best_id, _) when best_id <= id -> acc
              | _ -> Some (id, c))
            alive None
    with
    | None -> ()
    | Some (seed_id, seed) ->
      (* Grow the kernel while the intersecting set multiplies fast. *)
      let rec grow members count =
        let hits = intersecting members in
        let hit_count = List.length hits in
        if float_of_int hit_count > growth_factor *. float_of_int count then
          grow
            (List.fold_left
               (fun acc (_, c) -> Cluster.Vset.union acc c)
               members hits)
            hit_count
        else (members, hits)
      in
      let members, hits = grow seed 1 in
      (* Clusters inside the kernel are subsumed; the rest of the hits merely
         collide with it and are deferred to the next phase. *)
      List.iter
        (fun (id, c) ->
          Hashtbl.remove alive id;
          if not (Cluster.Vset.subset c members) then deferred := (id, c) :: !deferred)
        hits;
      (* The seed itself is always part of the kernel. *)
      Hashtbl.remove alive seed_id;
      outputs := members :: !outputs;
      next_seed ()
  in
  next_seed ();
  (!outputs, !deferred)

let coarsen g ~clusters ~k =
  if k < 1 then invalid_arg "Coarsen.coarsen: k >= 1 required";
  if clusters = [] then invalid_arg "Coarsen.coarsen: empty cover";
  List.iter
    (fun c ->
      if Cluster.Vset.is_empty c then
        invalid_arg "Coarsen.coarsen: empty cluster";
      if not (Cluster.is_connected g c) then
        invalid_arg "Coarsen.coarsen: cluster not connected")
    clusters;
  let total = List.length clusters in
  let growth_factor =
    float_of_int total ** (1.0 /. float_of_int k)
  in
  let rec phases pool acc =
    match pool with
    | [] -> acc
    | _ ->
      let outputs, deferred = run_phase growth_factor pool in
      phases deferred (List.rev_append outputs acc)
  in
  phases (List.mapi (fun i c -> (i, c)) clusters) []
