lib/cover/tree_cover.ml: Array Cluster Coarsen Csap_graph Hashtbl List
