lib/cover/cluster.mli: Csap_graph Set
