lib/cover/tree_cover.mli: Cluster Csap_graph Hashtbl
