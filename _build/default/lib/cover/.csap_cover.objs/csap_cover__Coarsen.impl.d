lib/cover/coarsen.ml: Cluster Hashtbl List
