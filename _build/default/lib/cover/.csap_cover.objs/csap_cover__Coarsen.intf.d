lib/cover/coarsen.mli: Cluster Csap_graph
