lib/cover/cluster.ml: Array Csap_graph Fun Hashtbl Int List Set
