(** Tree edge-covers (Definition 3.1, Lemma 3.2) — the preprocessing
    structure of clock synchronizer gamma*.

    A tree edge-cover for [G(V,E,w)] is a collection [M] of (cluster
    spanning) trees such that

    + every edge of [G] is shared by [O(log n)] trees,
    + each tree's weighted depth is [O(d log n)], where
      [d = max_(u,v) dist(u,v)], and
    + for each edge, some tree contains both endpoints.

    Built per Lemma 3.2: coarsen the cover [{Path(u,v,G) : (u,v) in E}]
    with [k = ceil(log2 n)], then take a shortest-path tree of each output
    cluster from its centre. *)

(** A rooted tree spanning a cluster of vertices. Arrays are indexed by
    vertex id; non-members hold [-2] in [parent]. *)
type cluster_tree = {
  tree_id : int;
  root : int;
  members : int list;  (** ascending *)
  parent : int array;  (** [-1] at the root, [-2] outside the cluster *)
  parent_weight : int array;
  depth : int array;  (** weighted depth; [-1] outside *)
  height : int;  (** max weighted depth *)
}

(** [members_set t] as a cluster. *)
val members_set : cluster_tree -> Cluster.t

(** [children t] lists each member's children in [t]. *)
val children : cluster_tree -> (int, int list) Hashtbl.t

(** [spt_of_cluster g ~tree_id c ~center] builds the shortest-path tree of
    the induced subgraph [G(c)] rooted at [center]. *)
val spt_of_cluster :
  Csap_graph.Graph.t -> tree_id:int -> Cluster.t -> center:int -> cluster_tree

type t = {
  trees : cluster_tree list;
  k : int;  (** coarsening parameter used *)
  d : int;  (** the graph's max neighbour distance *)
}

(** [build g] constructs the tree edge-cover of Lemma 3.2. *)
val build : Csap_graph.Graph.t -> t

(** [covering_tree t ~u ~v] is (the id of) a tree containing both endpoints
    of the edge [{u,v}]; guaranteed to exist (property 3). *)
val covering_tree : t -> u:int -> v:int -> int

(** [trees_at t v] lists the ids of trees whose cluster contains [v]. *)
val trees_at : t -> int -> int list

(** Maximum, over edges of [G], of the number of trees containing both
    endpoints — the "sharing" of property 1. *)
val max_edge_sharing : Csap_graph.Graph.t -> t -> int

(** Maximum weighted tree depth — property 2's left-hand side. *)
val max_height : t -> int
