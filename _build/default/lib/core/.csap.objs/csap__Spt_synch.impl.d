lib/core/spt_synch.ml: Array Csap_dsim Csap_graph List Measures Synchronizer
