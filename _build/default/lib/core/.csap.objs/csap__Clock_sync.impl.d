lib/core/clock_sync.ml: Array Csap_cover Csap_dsim Csap_graph Float Hashtbl List Measures Slt
