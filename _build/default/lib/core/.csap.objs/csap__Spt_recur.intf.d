lib/core/spt_recur.mli: Csap_dsim Csap_graph Measures
