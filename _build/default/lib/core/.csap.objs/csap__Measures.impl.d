lib/core/measures.ml: Csap_dsim Format
