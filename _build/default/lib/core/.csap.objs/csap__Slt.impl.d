lib/core/slt.ml: Array Csap_graph Hashtbl List
