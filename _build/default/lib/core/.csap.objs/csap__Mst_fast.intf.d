lib/core/mst_fast.mli: Csap_dsim Csap_graph Measures
