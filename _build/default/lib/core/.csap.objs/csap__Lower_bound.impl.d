lib/core/lower_bound.ml: Array Con_hybrid Csap_graph Dfs_token Flood List Measures
