lib/core/spt_recur.ml: Array Csap_dsim Csap_graph List Measures
