lib/core/synchronizer.ml: Array Csap_dsim Csap_graph Hashtbl List Measures Normalize Slt
