lib/core/controller.ml: Array Csap_dsim Csap_graph List Queue
