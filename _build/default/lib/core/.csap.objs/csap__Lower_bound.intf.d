lib/core/lower_bound.mli:
