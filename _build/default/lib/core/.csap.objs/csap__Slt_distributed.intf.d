lib/core/slt_distributed.mli: Csap_dsim Csap_graph Measures
