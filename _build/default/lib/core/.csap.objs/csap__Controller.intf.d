lib/core/controller.mli: Csap_dsim
