lib/core/measures.mli: Csap_dsim Format
