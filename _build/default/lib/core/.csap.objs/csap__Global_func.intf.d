lib/core/global_func.mli: Csap_dsim Csap_graph Measures
