lib/core/mst_hybrid.mli: Csap_dsim Csap_graph Measures
