lib/core/spt_hybrid.ml: Csap_graph Measures Spt_recur Spt_synch
