lib/core/flood.ml: Array Csap_dsim Csap_graph Float Fun Measures
