lib/core/dfs_token.mli: Csap_dsim Csap_graph Measures
