lib/core/mst_ghs.ml: Array Csap_dsim Csap_graph Fun Hashtbl Measures Queue
