lib/core/flood.mli: Csap_dsim Csap_graph Measures
