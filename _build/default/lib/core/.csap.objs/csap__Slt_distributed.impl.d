lib/core/slt_distributed.ml: Array Centr_growth Csap_dsim Csap_graph Hashtbl List Measures
