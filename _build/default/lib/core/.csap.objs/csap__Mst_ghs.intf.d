lib/core/mst_ghs.mli: Csap_dsim Csap_graph Measures
