lib/core/global_func.ml: Array Csap_dsim Csap_graph Fun List Measures Slt
