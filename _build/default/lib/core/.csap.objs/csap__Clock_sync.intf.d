lib/core/clock_sync.mli: Csap_cover Csap_dsim Csap_graph Measures
