lib/core/centr_growth.mli: Csap_dsim Csap_graph Measures
