lib/core/slt.mli: Csap_graph
