lib/core/synchronizer.mli: Csap_dsim Csap_graph Measures Normalize
