lib/core/normalize.ml: Array Csap_dsim Csap_graph Hashtbl List
