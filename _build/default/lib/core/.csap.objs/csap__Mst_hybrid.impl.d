lib/core/mst_hybrid.ml: Centr_growth Controller Csap_dsim Csap_graph Measures Mst_ghs
