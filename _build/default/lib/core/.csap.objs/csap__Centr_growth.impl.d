lib/core/centr_growth.ml: Array Csap_dsim Csap_graph Fun List Measures Option
