lib/core/dfs_token.ml: Array Csap_dsim Csap_graph Fun Measures
