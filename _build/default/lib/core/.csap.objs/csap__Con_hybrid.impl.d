lib/core/con_hybrid.ml: Centr_growth Csap_dsim Csap_graph Dfs_token Measures
