lib/core/spt_synch.mli: Csap_dsim Csap_graph Measures
