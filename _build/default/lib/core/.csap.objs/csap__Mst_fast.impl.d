lib/core/mst_fast.ml: Array Csap_dsim Csap_graph Fun Hashtbl List Measures Slt
