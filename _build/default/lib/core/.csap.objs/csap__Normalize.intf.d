lib/core/normalize.mli: Csap_dsim Csap_graph
