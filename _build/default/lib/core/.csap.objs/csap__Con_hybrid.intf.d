lib/core/con_hybrid.mli: Csap_dsim Csap_graph Measures
