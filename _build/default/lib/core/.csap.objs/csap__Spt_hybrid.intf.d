lib/core/spt_hybrid.mli: Csap_dsim Csap_graph Measures
