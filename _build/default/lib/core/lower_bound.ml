module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

let id_ferrying_cost ~n ~x =
  let total = ref 0 in
  for i = 1 to n / 2 do
    let hops = n + 1 - (2 * i) in
    if hops > 0 then total := !total + hops
  done;
  x * !total

let omega_n_v ~n ~x = n * (n - 1) * x

let check_split_indistinguishable ~n ~i ~x =
  let gn = Gen.lower_bound_gn n ~x in
  let gni = Gen.lower_bound_gn_i n ~i ~x in
  let edge_set g =
    Array.to_list (G.edges g)
    |> List.map (fun (e : G.edge) -> (e.u, e.v, e.w))
    |> List.sort compare
  in
  let a = edge_set gn and b = edge_set gni in
  let diff =
    List.filter (fun e -> not (List.mem e b)) a
    @ List.filter (fun e -> not (List.mem e a)) b
  in
  List.length diff

type gn_run = {
  n : int;
  x : int;
  script_e : int;
  n_times_v : int;
  flood_comm : int;
  dfs_comm : int;
  hybrid_comm : int;
}

let run_on_gn ~n ~x =
  let g = Gen.lower_bound_gn n ~x in
  let flood = Flood.run g ~source:0 in
  let dfs = Dfs_token.run g ~root:0 in
  let hybrid = Con_hybrid.run g ~root:0 in
  {
    n;
    x;
    script_e = G.total_weight g;
    n_times_v = n * Csap_graph.Mst.weight g;
    flood_comm = flood.Flood.measures.Measures.comm;
    dfs_comm = dfs.Dfs_token.measures.Measures.comm;
    hybrid_comm = hybrid.Con_hybrid.measures.Measures.comm;
  }
