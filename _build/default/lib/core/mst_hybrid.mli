(** Algorithm MST_hybrid (Section 8.2).

    Runs a {e controlled} MST_ghs and the full-information MST_centr in
    parallel on the same network, each with a monotone spend estimate at
    the root:

    - MST_ghs (cost [Theta(script-E + script-V log n)]) runs as a diffusing
      computation from the root through the {!Controller}; the controller's
      permit counter [W_a] is the root's view of its spending, and holding
      back permits suspends it;
    - MST_centr (cost [Theta(n script-V)]) reports its exact spend [W_b]
      and parks between phases.

    The root alternates budgets, always letting the currently-cheaper
    algorithm run (GHS's budget is raised in doubling steps while
    [W_a <= W_b]); whichever finishes first wins. Total communication
    [O(min{script-E + script-V log n, n script-V})] — Corollary 8.2. *)

type winner =
  | Ghs
  | Mst_centr

type result = {
  mst : Csap_graph.Tree.t;
  winner : winner;
  measures : Measures.t;
  ghs_demand : int;  (** final W_a *)
  centr_estimate : int;  (** final W_b *)
}

val run : ?delay:Csap_dsim.Delay.t -> Csap_graph.Graph.t -> root:int -> result
