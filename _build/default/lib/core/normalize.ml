module SP = Csap_dsim.Sync_protocol
module G = Csap_graph.Graph

let power w =
  assert (w >= 1);
  let rec up p = if p >= w then p else up (2 * p) in
  up 1

let next_mult ~w t =
  assert (w >= 1 && t >= 0);
  let r = t mod w in
  if r = 0 then t else t + (w - r)

let is_normalized g =
  Array.for_all (fun (e : G.edge) -> power e.w = e.w) (G.edges g)

let graph g = G.map_weights g (fun e -> power e.w)

type 'm envelope = {
  sent_at : int;
  payload : 'm;
}

type ('s, 'm) state = {
  mutable inner : 's;
  (* Messages waiting for their processing pulse: processing -> (src, m). *)
  in_buffer : (int, (int * 'm) list) Hashtbl.t;
  (* Transmissions waiting for their rounded send pulse: pulse -> sends. *)
  out_buffer : (int, (int * 'm envelope) list) Hashtbl.t;
}

let inner_state s = s.inner

let push tbl key v =
  let old = try Hashtbl.find tbl key with Not_found -> [] in
  Hashtbl.replace tbl key (v :: old)

let pop tbl key =
  match Hashtbl.find_opt tbl key with
  | None -> []
  | Some xs ->
    Hashtbl.remove tbl key;
    List.rev xs

let protocol ~original (p : ('s, 'm) SP.t) =
  let original_weight ~u ~v =
    match G.edge_between original u v with
    | Some (w, _) -> w
    | None -> invalid_arg "Normalize: edge not in the original graph"
  in
  {
    SP.init =
      (fun _g ~me ->
        {
          inner = p.SP.init original ~me;
          in_buffer = Hashtbl.create 8;
          out_buffer = Hashtbl.create 8;
        });
    on_pulse =
      (fun g ~me ~pulse ~inbox state ->
        (* Buffer arrivals until their processing pulse 4 (S_M + w). *)
        List.iter
          (fun (src, { sent_at; payload }) ->
            (* Recover the inner send pulse S_M from the rounded send time:
               sent_at = next_mult (4 S_M), so S_M = ceil to the inner
               grid is not needed — we carry S_M itself scaled by 4 below.
               sent_at is in transformed pulses; inner send pulse is
               sent_at' / 4 where sent_at' was 4 S_M before rounding. The
               envelope stores the *pre-rounding* value, see below. *)
            let w = original_weight ~u:src ~v:me in
            let processing = sent_at + (4 * w) in
            push state.in_buffer processing (src, payload))
          inbox;
        (* Run an inner pulse only on multiples of 4. *)
        if pulse mod 4 = 0 then begin
          let inner_pulse = pulse / 4 in
          let inner_inbox =
            pop state.in_buffer pulse
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          let inner', sends =
            p.SP.on_pulse original ~me ~pulse:inner_pulse ~inbox:inner_inbox
              state.inner
          in
          state.inner <- inner';
          List.iter
            (fun (dst, payload) ->
              let w_hat =
                match G.edge_between g me dst with
                | Some (w, _) -> w
                | None -> invalid_arg "Normalize: send to non-neighbour"
              in
              let send_pulse = next_mult ~w:w_hat pulse in
              push state.out_buffer send_pulse
                (dst, { sent_at = pulse; payload }))
            sends
        end;
        (* Flush transmissions scheduled for this pulse. *)
        let outgoing = pop state.out_buffer pulse in
        (state, outgoing))
  }

let pulses_needed ~original_pulses ~w_max =
  (4 * original_pulses) + (4 * power w_max)
