module Engine = Csap_dsim.Engine
module G = Csap_graph.Graph

type 'm wire =
  | Payload of 'm
  | Request of int
  | Grant of int

type ('m, 'outer) t = {
  engine : 'outer Engine.t;
  inject : 'm wire -> 'outer;
  g : G.t;
  is_root : bool array;  (* the initiators, each rooting its own tree *)
  on_abort : unit -> unit;
  bank : int array;  (* permits held locally *)
  exec_parent : int array;  (* -1 = not yet in the execution tree *)
  queue : (int * 'm * int) Queue.t array;  (* pending (dst, msg, cost) *)
  child_requests : (int * int) Queue.t array;  (* buffered (child, amount) *)
  outstanding : bool array;  (* one request in flight per vertex *)
  suspend : bool;  (* park instead of aborting when over threshold *)
  (* Per-root accounting (indexed by vertex, meaningful at roots). *)
  threshold_at : int array;
  unmet_at : int array;  (* refused root deficit, retried on raise *)
  consumed_at : int array;  (* root permit counters *)
  mutable spent : int;
  mutable aborted : bool;
}

let create_multi ~engine ~inject ~initiators ?(suspend = false)
    ?(on_abort = fun () -> ()) () =
  let g = Engine.graph engine in
  let n = G.n g in
  if initiators = [] then invalid_arg "Controller.create_multi: no initiators";
  let is_root = Array.make n false in
  let threshold_at = Array.make n 0 in
  List.iter
    (fun (root, threshold) ->
      if threshold < 1 then
        invalid_arg "Controller.create_multi: threshold >= 1";
      if is_root.(root) then
        invalid_arg "Controller.create_multi: duplicate initiator";
      is_root.(root) <- true;
      threshold_at.(root) <- threshold)
    initiators;
  {
    engine;
    inject;
    g;
    is_root;
    suspend;
    threshold_at;
    unmet_at = Array.make n 0;
    on_abort;
    bank = Array.make n 0;
    exec_parent = Array.make n (-1);
    queue = Array.init n (fun _ -> Queue.create ());
    child_requests = Array.init n (fun _ -> Queue.create ());
    outstanding = Array.make n false;
    consumed_at = Array.make n 0;
    spent = 0;
    aborted = false;
  }
(* Roots mint permits lazily via [root_grant], so the per-root counters
   cover every permit in circulation. *)

let create ~engine ~inject ~initiator ~threshold ?(suspend = false)
    ?(on_abort = fun () -> ()) () =
  create_multi ~engine ~inject ~initiators:[ (initiator, threshold) ]
    ~suspend ~on_abort ()

(* Flush v's buffered protocol sends while the bank covers them. *)
let rec flush t v =
  while
    (not (Queue.is_empty t.queue.(v)))
    &&
    let _, _, cost = Queue.peek t.queue.(v) in
    cost <= t.bank.(v)
  do
    let dst, msg, cost = Queue.pop t.queue.(v) in
    t.bank.(v) <- t.bank.(v) - cost;
    t.spent <- t.spent + cost;
    Engine.send t.engine ~src:v ~dst (t.inject (Payload msg))
  done;
  if not (Queue.is_empty t.queue.(v)) then request_more t v

(* Serve buffered child requests while the bank covers them. Grants are
   padded up to twice the request when the bank allows: the slack seeds
   the banks down the tree so later requests are absorbed locally instead
   of walking to the root each time. Padding only redistributes permits
   already minted, so the threshold accounting is unchanged. *)
and serve_children t v =
  while
    (not (Queue.is_empty t.child_requests.(v)))
    &&
    let _, amount = Queue.peek t.child_requests.(v) in
    amount <= t.bank.(v)
  do
    let child, amount = Queue.pop t.child_requests.(v) in
    let give = min t.bank.(v) (2 * amount) in
    t.bank.(v) <- t.bank.(v) - give;
    Engine.send t.engine ~src:v ~dst:child (t.inject (Grant give))
  done;
  if not (Queue.is_empty t.child_requests.(v)) then request_more t v

(* Ask the execution-tree parent for the whole current deficit in one
   aggregate request. Aggregation is exact, so the permits minted at the
   root never exceed the protocol's true demand and the threshold is only
   hit by genuinely divergent executions. *)
and request_more t v =
  if not t.outstanding.(v) then begin
    let deficit_sends =
      Queue.fold (fun acc (_, _, cost) -> acc + cost) 0 t.queue.(v)
    in
    let deficit_children =
      Queue.fold (fun acc (_, amount) -> acc + amount) 0 t.child_requests.(v)
    in
    let deficit = deficit_sends + deficit_children - t.bank.(v) in
    if deficit > 0 then begin
      if t.is_root.(v) then root_grant t v deficit
      else begin
        t.outstanding.(v) <- true;
        Engine.send t.engine ~src:v ~dst:t.exec_parent.(v)
          (t.inject (Request deficit))
      end
    end
  end

(* A root mints permits against its threshold; beyond it, abort (or, in
   suspend mode, park the deficit until the threshold is raised). *)
and root_grant t root amount =
  if t.consumed_at.(root) + amount > t.threshold_at.(root) then begin
    t.unmet_at.(root) <- amount;
    if t.suspend then t.on_abort ()
    else if not t.aborted then begin
      t.aborted <- true;
      t.on_abort ()
    end
  end
  else begin
    t.unmet_at.(root) <- 0;
    (* Pad at the root only: the doubled grant leaves slack in the banks
       along the tree, so refill chains amortize instead of recurring per
       message; consumed <= threshold still holds, and with a correct
       threshold of 2 c_pi the padding (at most 2x true demand) never
       triggers an abort. *)
    let padded =
      min (2 * amount) (t.threshold_at.(root) - t.consumed_at.(root))
    in
    t.consumed_at.(root) <- t.consumed_at.(root) + padded;
    t.bank.(root) <- t.bank.(root) + padded;
    flush t root;
    serve_children t root
  end

let send t ~src ~dst msg =
  match G.edge_between t.g src dst with
  | None -> invalid_arg "Controller.send: no such edge"
  | Some (cost, _) ->
    Queue.push (dst, msg, cost) t.queue.(src);
    flush t src

let handle t ~me ~src wire =
  match wire with
  | Payload m ->
    if (not t.is_root.(me)) && t.exec_parent.(me) < 0 then
      t.exec_parent.(me) <- src;
    Some m
  | Request amount ->
    (* Serve from the bank; [serve_children] escalates (or mints, at the
       root) when the bank runs dry. An exhausted root simply refuses to
       mint, which stalls exactly its own tree: every vertex below it ends
       up with one forever-outstanding request and goes quiet, while other
       initiators' computations are untouched. *)
    Queue.push (src, amount) t.child_requests.(me);
    serve_children t me;
    None
  | Grant amount ->
    t.outstanding.(me) <- false;
    t.bank.(me) <- t.bank.(me) + amount;
    flush t me;
    serve_children t me;
    None

let raise_threshold t extra =
  if extra < 0 then invalid_arg "Controller.raise_threshold: negative";
  Array.iteri
    (fun root is_root ->
      if is_root then begin
        t.threshold_at.(root) <- t.threshold_at.(root) + extra;
        if t.unmet_at.(root) > 0 then begin
          let amount = t.unmet_at.(root) in
          t.unmet_at.(root) <- 0;
          root_grant t root amount
        end;
        (* Re-examine buffered work at the root under the new budget. *)
        flush t root;
        serve_children t root
      end)
    t.is_root

let sum_roots t arr =
  let acc = ref 0 in
  Array.iteri (fun v is_root -> if is_root then acc := !acc + arr.(v)) t.is_root;
  !acc

let threshold t = sum_roots t t.threshold_at
let demand t = sum_roots t t.consumed_at + sum_roots t t.unmet_at
let consumed t = sum_roots t t.consumed_at
let spent t = t.spent
let aborted t = t.aborted

let pending_sends t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queue
