(** The protocol transformation of Lemma 4.5 (Section 4.3).

    Synchronizer gamma_w assumes a {e normalized} network (all weights are
    powers of two, Definition 4.3) and a protocol {e in synch} with it
    (transmissions on [e] only at pulses divisible by [w(e)], Definition
    4.2). This module turns an arbitrary synchronous protocol [pi] on
    [G(V,E,w)] into a protocol [pi''] on [G(V,E,power(w))] with both
    properties, identical outputs, and at most twice the communication and
    ~four times the time:

    + slow [pi] down by 4: its pulse [t] events happen at pulse [4t];
    + round weights up to [power(w)], the least power of two [>= w]
      (so [w <= power(w) < 2w]);
    + delay each transmission to the next multiple of the edge weight
      ([next_mult]), and have the receiver buffer the message until its
      original processing pulse [4 (S_M + w)] — always after its arrival.

    Each transformed message carries its original send pulse so the
    receiver can compute the processing pulse; this adds O(log) bits to a
    message, not extra messages. *)

(** [power w] is the smallest power of two [>= w]; [w <= power w < 2 w]. *)
val power : int -> int

(** [next_mult ~w t] is the smallest multiple of [w] that is [>= t]
    (Definition 4.7). *)
val next_mult : w:int -> int -> int

(** True when every edge weight is a power of two (Definition 4.3). *)
val is_normalized : Csap_graph.Graph.t -> bool

(** [graph g] rounds all weights up to powers of two. *)
val graph : Csap_graph.Graph.t -> Csap_graph.Graph.t

(** Wrapper state: the inner protocol state plus in/out buffers. *)
type ('s, 'm) state

val inner_state : ('s, 'm) state -> 's

(** Transformed messages carry the original send pulse. *)
type 'm envelope = {
  sent_at : int;  (** pulse of the transformed network *)
  payload : 'm;
}

(** [protocol ~original p] is the transformed protocol, to be run on
    [graph original]. It is in synch with the normalized network (checked
    by {!Csap_dsim.Sync_runner.run} with [~check_in_synch:true]). *)
val protocol :
  original:Csap_graph.Graph.t ->
  ('s, 'm) Csap_dsim.Sync_protocol.t ->
  (('s, 'm) state, 'm envelope) Csap_dsim.Sync_protocol.t

(** [pulses_needed ~original_pulses ~w_max] is a safe number of transformed
    pulses to simulate [original_pulses] inner pulses: [4 p + 4 W]. *)
val pulses_needed : original_pulses:int -> w_max:int -> int
