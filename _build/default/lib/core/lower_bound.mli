(** The connectivity lower bound of Section 7.1 (Figures 7-8).

    The paper proves that any deterministic comparison-based connectivity /
    spanning-tree algorithm needs [Omega(min{script-E, n V})] communication,
    via the family [G_n]: a light path with heavy bypass edges. The
    indistinguishability argument (Lemma 7.1) says that for every bypass
    pair [(i, n-1-i)], some vertex must learn both an endpoint id and the
    other endpoint's bypass-register content — otherwise the execution on
    [G_n] is identical to the execution on the split graph [G_n^i], where a
    correct algorithm must behave differently.

    This module makes the argument executable:

    - {!id_ferrying_cost} computes the Omega(n V) bound's core quantity,
      [X * sum_i (n + 1 - 2i) ~ n^2 X / 4 = Omega(n V)]: the minimal
      weighted communication needed to ferry the bypass ids together
      (messages must cross [n + 1 - 2i] path edges for pair [i]);
    - {!check_split_indistinguishable} verifies structurally that [G_n] and
      [G_n^i] agree except at the swapped bypass edge, so an execution that
      never uses heavy edges and never joins pair [i]'s information cannot
      distinguish them. *)

(** [id_ferrying_cost ~n ~x] = [X * sum_{i in 1..n/2} (n + 1 - 2i)], the
    lower-bound term of Lemma 7.2 (at least [n^2 X / 4]). *)
val id_ferrying_cost : n:int -> x:int -> int

(** [omega_n_v ~n ~x] = [n * script-V] for [G_n] (with [V = (n-1) X]). *)
val omega_n_v : n:int -> x:int -> int

(** Structural indistinguishability check: the edge sets of [G_n] and
    [G_n^i] restricted to the path (light) edges are identical, and the only
    differences involve the bypass pair [i]. Returns the number of differing
    edges (expected: 3 — the removed bypass and the two pendants). *)
val check_split_indistinguishable : n:int -> i:int -> x:int -> int

(** Executable witness of the trade-off (the content of Figure 2's last
    row): runs CON_flood, DFS and CON_hybrid on [G_n] and returns their
    weighted communication together with both bound terms, so callers
    (tests, bench F7) can check [hybrid = O(min)] while flood/DFS pay
    [Theta(script-E)]. *)
type gn_run = {
  n : int;
  x : int;
  script_e : int;
  n_times_v : int;
  flood_comm : int;
  dfs_comm : int;
  hybrid_comm : int;
}

val run_on_gn : n:int -> x:int -> gn_run
