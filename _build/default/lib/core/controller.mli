(** The MAIN CONTROLLER (Section 5, after [AAPS87]).

    A controller guards a diffusing computation against divergence: every
    transmission must be covered by {e permits}, where sending one message
    over [e] consumes [w(e)] resource units (the weighted reading of
    Section 5 — equivalent to subdividing [e] into [w(e)] unit edges). The
    initiator (root of the execution tree) holds a threshold of [~ 2 c_pi]
    permits; requests travel up the execution tree and grants travel down.

    To keep the control traffic low, a vertex aggregates its entire
    current deficit (buffered sends plus buffered child requests) into one
    in-flight request. Aggregation is exact, so the root mints at most the
    protocol's true demand — a correct execution under a [2 c_pi]
    threshold is never disturbed — and the measured control traffic stays
    within the [c_phi = O(c_pi log^2 c_pi)] envelope of Corollary 5.1
    (checked empirically by bench CT).

    On a correct execution the controller never interferes (all requests
    are granted). When the protocol misbehaves and the root's permit
    counter would exceed the threshold, the execution is suspended: the
    protocol stops growing, having spent at most the threshold plus
    messages already in flight. *)

(** Wire format: the controlled protocol's messages plus control traffic. *)
type 'm wire =
  | Payload of 'm
  | Request of int  (** units asked, travelling up the execution tree *)
  | Grant of int  (** units awarded, travelling back down *)

type ('m, 'outer) t

(** [create ~engine ~inject ~initiator ~threshold ()] installs controller
    state over an engine whose message type embeds ['m wire] via [inject]
    (pass [Fun.id] when the controller owns the engine).

    With [~suspend:true] the controller parks over-threshold demand instead
    of aborting; {!raise_threshold} resumes it — the metering mechanism of
    the hybrid algorithms (Sections 7-8). [on_abort] fires at the root
    whenever demand first exceeds the threshold. *)
val create :
  engine:'outer Csap_dsim.Engine.t ->
  inject:('m wire -> 'outer) ->
  initiator:int ->
  threshold:int ->
  ?suspend:bool ->
  ?on_abort:(unit -> unit) ->
  unit ->
  ('m, 'outer) t

(** The multiple-initiator extension the paper mentions at the end of its
    model discussion: one diffusing computation started at several sources
    (e.g. a multi-source broadcast). Each initiator roots its own execution
    tree with its own threshold; a vertex joins the tree of whichever
    source reaches it first, and its permit requests route to that tree's
    root. An exhausted root stops minting, stalling its own tree, while
    the other sources keep their trees growing. *)
val create_multi :
  engine:'outer Csap_dsim.Engine.t ->
  inject:('m wire -> 'outer) ->
  initiators:(int * int) list ->
  ?suspend:bool ->
  ?on_abort:(unit -> unit) ->
  unit ->
  ('m, 'outer) t

(** [send t ~src ~dst m] routes a protocol transmission through the
    controller: it is sent immediately when [src] holds [w(e)] permits and
    buffered behind a permit request otherwise. *)
val send : ('m, 'outer) t -> src:int -> dst:int -> 'm -> unit

(** [handle t ~me ~src wire] processes one incoming wire message. Returns
    [Some m] for protocol payloads — after recording [me]'s execution-tree
    parent — and [None] for control traffic (handled internally). *)
val handle : ('m, 'outer) t -> me:int -> src:int -> 'm wire -> 'm option

(** [raise_threshold t extra] increases every root's budget by [extra] and
    retries any parked demand (suspend mode). *)
val raise_threshold : ('m, 'outer) t -> int -> unit

val threshold : ('m, 'outer) t -> int

(** Units demanded at the root so far: granted plus currently refused. *)
val demand : ('m, 'outer) t -> int

(** Units the root has granted so far (the permit counter). *)
val consumed : ('m, 'outer) t -> int

(** Units actually spent on protocol messages. *)
val spent : ('m, 'outer) t -> int

val aborted : ('m, 'outer) t -> bool

(** Protocol transmissions still waiting for permits (diagnostics). *)
val pending_sends : ('m, 'outer) t -> int
