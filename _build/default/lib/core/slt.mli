(** Shallow-light trees (Section 2.2, Figures 5-6).

    A spanning tree is {e shallow-light} when its diameter is [O(D)] and its
    weight is [O(V)] simultaneously. The construction (the "SLT algorithm"):

    + build an MST [T_M] and an SPT [T_S] rooted at [v0];
    + unroll [T_M] into its Euler-tour line [L] (each tree edge appears
      twice, so [w(L) <= 2 V]);
    + scan [L] left to right placing breakpoints: the next breakpoint is the
      first point whose line-distance from the previous breakpoint exceeds
      [q] times their distance in [T_S];
    + add the [T_S] paths between consecutive breakpoints to [T_M], and
      return a shortest-path tree of the resulting subgraph [G'].

    Guarantees (Lemmas 2.4-2.5): [w(T) <= (1 + 2/q) V] and depth
    [O(q) * D]; the extended abstract states [Diam(T) <= (q+1) D] — the
    scan argument yields depth [<= (2q+1) D] in general, and both the exact
    weight bound and the [(2q+1) D] depth bound are enforced by this
    implementation's tests, with measured diameters reported by bench F5. *)

type t = {
  tree : Csap_graph.Tree.t;  (** the shallow-light tree *)
  q : float;  (** the trade-off parameter used *)
  line : int array;  (** the Euler line [v(0..2n-2)] of the MST *)
  breakpoints : int list;  (** mileage indices [B_1 = 0 < B_2 < ...] *)
  added_paths : (int * int) list;
      (** [(v(B_i), v(B_i+1))] pairs whose [T_S] path was added to [G'] *)
  mst : Csap_graph.Tree.t;
  spt : Csap_graph.Tree.t;
}

(** [build ?q g ~root] runs the SLT algorithm; [q > 0] (default [2.0]).
    Requires a connected graph. *)
val build : ?q:float -> Csap_graph.Graph.t -> root:int -> t

(** [weight_bound ~q ~script_v] = [(1 + 2/q) * V], Lemma 2.4. *)
val weight_bound : q:float -> script_v:int -> float

(** [depth_bound ~q ~script_d] = [(2q + 1) * D] (see module comment). *)
val depth_bound : q:float -> script_d:int -> float

(** [is_shallow_light t ~script_v ~script_d] checks both guarantees. *)
val is_shallow_light : t -> script_v:int -> script_d:int -> bool
