module Engine = Csap_dsim.Engine
module Tree = Csap_graph.Tree

type 'a spec = {
  name : string;
  combine : 'a -> 'a -> 'a;
}

let sum = { name = "sum"; combine = ( + ) }
let max_value = { name = "max"; combine = max }
let min_value = { name = "min"; combine = min }
let xor = { name = "xor"; combine = ( lxor ) }
let logical_and = { name = "and"; combine = ( && ) }
let logical_or = { name = "or"; combine = ( || ) }

type 'a result = {
  outputs : 'a array;
  measures : Measures.t;
}

type 'a msg =
  | Up of 'a
  | Down of 'a

let run ?delay g ~tree ~values spec =
  let n = Csap_graph.Graph.n g in
  if Array.length values <> n then
    invalid_arg "Global_func.run: one value per vertex required";
  if not (Tree.is_spanning_tree_of g tree) then
    invalid_arg "Global_func.run: not a spanning tree of the graph";
  let eng = Engine.create ?delay g in
  let outputs = Array.map (fun v -> v) values in
  let produced = Array.make n false in
  let acc = Array.copy values in
  let pending = Array.init n (fun v -> List.length (Tree.children tree v)) in
  let send_up v =
    match Tree.parent tree v with
    | Some (p, _) -> Engine.send eng ~src:v ~dst:p (Up acc.(v))
    | None ->
      (* Root: the global value is ready; start the broadcast. *)
      outputs.(v) <- acc.(v);
      produced.(v) <- true;
      List.iter
        (fun c -> Engine.send eng ~src:v ~dst:c (Down acc.(v)))
        (Tree.children tree v)
  in
  for v = 0 to n - 1 do
    Engine.set_handler eng v (fun ~src msg ->
        match msg with
        | Up x ->
          acc.(v) <- spec.combine acc.(v) x;
          pending.(v) <- pending.(v) - 1;
          assert (pending.(v) >= 0);
          if pending.(v) = 0 then send_up v
        | Down x ->
          ignore src;
          outputs.(v) <- x;
          produced.(v) <- true;
          List.iter
            (fun c -> Engine.send eng ~src:v ~dst:c (Down x))
            (Tree.children tree v))
  done;
  Engine.schedule eng ~delay:0.0 (fun () ->
      for v = 0 to n - 1 do
        if pending.(v) = 0 then send_up v
      done);
  ignore (Engine.run eng);
  assert (Array.for_all Fun.id produced);
  { outputs; measures = Measures.of_metrics (Engine.metrics eng) }

let run_optimal ?delay ?q g ~root ~values spec =
  let slt = Slt.build ?q g ~root in
  run ?delay g ~tree:slt.Slt.tree ~values spec

let broadcast ?delay ?q g ~source ~payload =
  let values =
    Array.init (Csap_graph.Graph.n g) (fun v ->
        if v = source then payload else min_int)
  in
  run_optimal ?delay ?q g ~root:source ~values max_value
