module G = Csap_graph.Graph
module Tree = Csap_graph.Tree

type t = {
  tree : Tree.t;
  q : float;
  line : int array;
  breakpoints : int list;
  added_paths : (int * int) list;
  mst : Tree.t;
  spt : Tree.t;
}

let weight_bound ~q ~script_v = (1.0 +. (2.0 /. q)) *. float_of_int script_v

let depth_bound ~q ~script_d = ((2.0 *. q) +. 1.0) *. float_of_int script_d

let build ?(q = 2.0) g ~root =
  if q <= 0.0 then invalid_arg "Slt.build: q must be positive";
  let mst = Csap_graph.Mst.prim g ~root in
  let spt = Csap_graph.Paths.spt g ~src:root in
  let line = Tree.euler_tour mst in
  let len = Array.length line in
  (* Prefix mileage along the line. *)
  let mileage = Array.make len 0 in
  for i = 1 to len - 1 do
    let w =
      match G.edge_between g line.(i - 1) line.(i) with
      | Some (w, _) -> w
      | None -> assert false
    in
    mileage.(i) <- mileage.(i - 1) + w
  done;
  (* Collect the subgraph G' as a set of edge ids: the MST plus the SPT
     paths between consecutive breakpoints. *)
  let edge_ids = Hashtbl.create (G.n g * 2) in
  let add_edge u v =
    match G.edge_between g u v with
    | Some (_, id) -> Hashtbl.replace edge_ids id ()
    | None -> assert false
  in
  List.iter (fun (p, c, _) -> add_edge p c) (Tree.edges mst);
  let add_spt_path x y =
    let rec walk = function
      | a :: (b :: _ as rest) ->
        add_edge a b;
        walk rest
      | _ -> ()
    in
    walk (Tree.path spt x y)
  in
  let breakpoints = ref [ 0 ] in
  let added_paths = ref [] in
  let last = ref 0 in
  for i = 1 to len - 1 do
    let line_dist = mileage.(i) - mileage.(!last) in
    let spt_dist = Tree.path_weight spt line.(!last) line.(i) in
    if float_of_int line_dist > q *. float_of_int spt_dist then begin
      add_spt_path line.(!last) line.(i);
      added_paths := (line.(!last), line.(i)) :: !added_paths;
      breakpoints := i :: !breakpoints;
      last := i
    end
  done;
  let subgraph_edges =
    Hashtbl.fold
      (fun id () acc ->
        let e = G.edge g id in
        (e.G.u, e.G.v, e.G.w) :: acc)
      edge_ids []
  in
  let g' = G.create ~n:(G.n g) subgraph_edges in
  let tree = Csap_graph.Paths.spt g' ~src:root in
  {
    tree;
    q;
    line;
    breakpoints = List.rev !breakpoints;
    added_paths = List.rev !added_paths;
    mst;
    spt;
  }

let is_shallow_light t ~script_v ~script_d =
  float_of_int (Tree.total_weight t.tree)
  <= weight_bound ~q:t.q ~script_v +. 1e-9
  && float_of_int (Tree.height t.tree)
     <= depth_bound ~q:t.q ~script_d +. 1e-9
