(** The flooding algorithm CON_flood (Section 6.1).

    Broadcasts a message from a source: each vertex forwards the first copy
    it receives to all its other neighbours. Communication [O(script-E)]
    (every edge carries at most two copies), time [O(script-D)] (the wave
    follows shortest paths). The first-contact edges form a spanning tree,
    which solves connected components / spanning tree (Section 7), at the
    [O(script-E)] end of the trade-off. *)

type result = {
  tree : Csap_graph.Tree.t;  (** the spanning tree of first contacts *)
  arrival : float array;  (** time the wave reached each vertex *)
  measures : Measures.t;
}

(** [run ?delay g ~source] floods from [source]; requires a connected
    graph. *)
val run : ?delay:Csap_dsim.Delay.t -> Csap_graph.Graph.t -> source:int -> result
