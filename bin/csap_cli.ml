(* Command-line driver over the protocol registry.

   Every protocol in [Csap.Protocol.registry] is runnable by name; the
   registry supplies the runner, the capability flags and the oracle
   invariant, so this file contains no per-protocol wiring. Run
   configurations are [Csap_farm.Cell.t] values, so a one-shot `run`, a
   spooled `submit` and a farm `sweep` cell all share one vocabulary,
   one execution path and one exit-code contract:

     0  success (and, with --check, invariant ok)
     1  invariant failure (or a sweep/serve with failed cells)
     2  unknown protocol
     3  malformed spec or invalid configuration
     4  unexpected execution error

   Examples:
     csap_cli list
     csap_cli run mst-ghs --family complete -n 16 -w 5
     csap_cli run flood --family grid -n 25 --delay seeded:3 --check
     csap_cli sweep --dir /tmp/farm --protocols flood,mst-ghs \
       --delays exact,seeded:3 --family grid -n 25
     csap_cli serve --dir /tmp/farm --idle-exit 5 &
     csap_cli submit flood --dir /tmp/farm --family grid -n 25 --check
     csap_cli status --dir /tmp/farm
     csap_cli params --family gn -n 8 -w 4 *)

module P = Csap.Protocol
module Cell = Csap_farm.Cell
module Farm = Csap_farm.Farm
module Manifest = Csap_farm.Manifest

(* ---- list -------------------------------------------------------------- *)

let list_protocols names_only =
  if names_only then
    List.iter print_endline (P.names ())
  else begin
    Format.printf "%-14s %-13s %-6s %-4s %-4s %-4s %s@." "name" "category"
      "faults" "rel" "dom" "adv" "summary";
    List.iter
      (fun entry ->
        let (module M : P.S) = entry in
        Format.printf "%-14s %-13s %-6s %-4s %-4s %-4s %s@." M.name
          (P.category_name M.category)
          (if M.caps.P.supports_faults then "yes" else "no")
          (if M.caps.P.supports_reliable then "yes" else "no")
          (if M.caps.P.supports_domains then "yes" else "no")
          (if M.caps.P.supports_adaptive then "yes" else "no")
          M.summary)
      P.registry
  end;
  0

(* ---- run --------------------------------------------------------------- *)

let run_protocol name family n w seed root delay adversary loss dup fault_seed
    reliable pulses strip k q domains trace check gc_stats =
  let cell =
    Cell.make ~family ~n ~w ~seed ~root ?delay ?adversary ~loss ~dup
      ~fault_seed ~reliable ?pulses ?strip ?k ?q ?domains ~check name
  in
  match P.find name with
  | None ->
    Format.eprintf "unknown protocol %S; try `csap_cli list`@." name;
    2
  | Some _ -> (
    match Cell.graph cell with
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      3
    | g -> (
      Format.printf "graph: %a@." Csap_graph.Params.pp
        (Csap_graph.Params.compute g);
      (* Pair of (quick_stat, minor_words): quick_stat's minor_words only
         advances at minor collections (OCaml 5.1); the dedicated external
         reads the live allocation pointer. *)
      let g0 =
        if gc_stats then Some (Gc.quick_stat (), Gc.minor_words ()) else None
      in
      let outcome = Cell.run ~graph:g ?trace_prefix:trace cell in
      match outcome.Cell.result with
      | Error (Cell.Invariant_failed _ as err) ->
        Format.eprintf "%s@." (Cell.error_message err);
        Cell.error_exit_code err
      | Error err ->
        Format.eprintf "error: %s@." (Cell.error_message err);
        Cell.error_exit_code err
      | Ok o ->
        (* Snapshot before any printing so formatter allocation doesn't
           pollute the run's numbers. Note: with --domains the workers'
           minor words are invisible here (OCaml 5 GC counters are
           domain-local); this reports the driving domain. *)
        let gc_line =
          match g0 with
          | None -> None
          | Some (s0, w0) ->
            let s1 = Gc.quick_stat () in
            Some
              (Printf.sprintf
                 "minor_words=%.0f promoted_words=%.0f minor_gcs=%d \
                  major_gcs=%d top_heap_mb=%.1f"
                 (Gc.minor_words () -. w0)
                 (s1.Gc.promoted_words -. s0.Gc.promoted_words)
                 (s1.Gc.minor_collections - s0.Gc.minor_collections)
                 (s1.Gc.major_collections - s0.Gc.major_collections)
                 (float_of_int s1.Gc.top_heap_words *. 8.0 /. 1e6))
        in
        Format.printf "%-14s %a@." name Csap.Measures.pp
          o.P.Outcome.measures;
        (match gc_line with
        | Some line -> Format.printf "gc: %s@." line
        | None -> ());
        if o.P.Outcome.retransmissions > 0 || o.P.Outcome.restarts > 0 then
          Format.printf "transport: retransmissions=%d restarts=%d@."
            o.P.Outcome.retransmissions o.P.Outcome.restarts;
        List.iter
          (fun (key, v) -> Format.printf "%s: %s@." key v)
          o.P.Outcome.info;
        if check then Format.printf "invariant: ok@.";
        0))

(* ---- params ------------------------------------------------------------ *)

let show_params family n w seed domains =
  let cell = Cell.make ~family ~n ~w ~seed "params" in
  match Cell.graph cell with
  | exception Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    3
  | g ->
    Format.printf "graph: %a@." Csap_graph.Params.pp
      (Csap_graph.Params.compute g);
    (match domains with
    | Some k when k > 1 ->
      (* Partitioned-execution view: how the striped and BFS partitions cut
         this graph, and the conservative lookahead each would give the
         partitioned engine under exact delays. *)
      List.iter
        (fun (label, part) ->
          let mcw = Csap_graph.Partition.min_cut_weight g part in
          Format.printf "%s: %a lookahead=%s@." label Csap_graph.Partition.pp
            part
            (if mcw = max_int then "inf" else string_of_int mcw))
        [
          ("striped", Csap_graph.Partition.striped g ~k);
          ("bfs", Csap_graph.Partition.bfs g ~k);
        ]
    | _ -> ());
    0

(* ---- farm: serve / sweep / submit / status / cancel -------------------- *)

let summary_exit (s : Farm.summary) =
  Format.printf "farm: %a@." Farm.pp_summary s;
  if s.Farm.failed = 0 then 0 else 1

let serve_farm dir workers queue_cap poll max_jobs idle_exit resume quiet =
  let cfg =
    Farm.config ~workers ~queue_cap ~poll_s:poll ?max_jobs
      ?idle_exit_s:idle_exit ~verbose:(not quiet) ~dir ()
  in
  match Farm.serve ~resume cfg with
  | exception Invalid_argument msg ->
    Format.eprintf "error: %s@." msg;
    3
  | s -> summary_exit s

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let sweep_farm dir workers queue_cap resume quiet cells_file protocols delays
    adversaries family n w seed root loss dup fault_seed reliable no_check =
  let check = not no_check in
  let cells =
    match cells_file with
    | Some path -> (
      let ic = open_in path in
      let lines = In_channel.input_lines ic in
      close_in ic;
      let rec parse i acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          if String.trim line = "" then parse (i + 1) acc rest
          else (
            match Cell.of_json line with
            | Ok c -> parse (i + 1) (c :: acc) rest
            | Error e -> Error (Printf.sprintf "%s: line %d: %s" path i e))
      in
      match parse 1 [] lines with
      | Ok cells -> Ok cells
      | Error e -> Error e)
    | None -> (
      match (protocols, resume) with
      | None, true -> Ok []  (* take the manifest's cells *)
      | None, false -> Error "no cells: pass --protocols or --cells FILE"
      | Some ps, _ ->
        Ok
          (List.concat_map
             (fun p ->
               List.map
                 (fun d ->
                   Cell.make ~family ~n ~w ~seed ~root ~delay:d ~loss ~dup
                     ~fault_seed ~reliable ~check p)
                 (split_commas (Option.value ~default:"exact" delays))
               @ List.map
                   (fun a ->
                     Cell.make ~family ~n ~w ~seed ~root ~adversary:a ~loss
                       ~dup ~fault_seed ~reliable ~check p)
                   (split_commas (Option.value ~default:"" adversaries)))
             (split_commas ps)))
  in
  match cells with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    3
  | Ok cells -> (
    let cfg =
      Farm.config ~workers ~queue_cap ~verbose:(not quiet) ~dir ()
    in
    match Farm.sweep ~resume cfg cells with
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      3
    | s -> summary_exit s)

let submit_cell name dir family n w seed root delay adversary loss dup
    fault_seed reliable pulses strip k q domains trace check =
  match P.find name with
  | None ->
    Format.eprintf "unknown protocol %S; try `csap_cli list`@." name;
    2
  | Some _ -> (
    let bad_spec msg =
      Format.eprintf "error: %s@." msg;
      3
    in
    match Option.map Cell.delay_of_spec delay with
    | Some (Error msg) -> bad_spec msg
    | None | Some (Ok _) -> (
      match Option.map Csap_dsim.Adversary.of_spec adversary with
      | Some (Error msg) -> bad_spec msg
      | None | Some (Ok _) ->
        if loss < 0.0 || loss >= 1.0 then
          bad_spec "loss must be a probability in [0, 1)"
        else if dup < 0.0 || dup >= 1.0 then
          bad_spec "dup must be a probability in [0, 1)"
        else begin
          let cell =
            Cell.make ~family ~n ~w ~seed ~root ?delay ?adversary ~loss ~dup
              ~fault_seed ~reliable ?pulses ?strip ?k ?q ?domains ?trace
              ~check name
          in
          let file = Farm.submit ~dir cell in
          Format.printf "submitted %s (digest %s)@." file (Cell.digest cell);
          0
        end))

let status_farm dir assert_done =
  let path = Farm.manifest_path ~dir in
  if not (Sys.file_exists path) then begin
    Format.eprintf "error: no manifest at %s@." path;
    3
  end
  else
    match Manifest.load ~readonly:true path with
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      4
    | man ->
      List.iter
        (fun (e : Manifest.entry) ->
          Format.printf "%4d  %-9s %-14s %s%s@." e.Manifest.id
            (Manifest.state_name e.Manifest.state)
            e.Manifest.cell.Cell.protocol e.Manifest.digest
            (match e.Manifest.error with
            | Some err -> "  " ^ err
            | None -> ""))
        (Manifest.entries man);
      let p, r, d, f, c = Manifest.counts man in
      Format.printf "pending=%d running=%d done=%d failed=%d cancelled=%d%s@."
        p r d f c
        (if Manifest.torn man then "  (torn trailing line dropped)" else "");
      if assert_done && (p > 0 || r > 0 || f > 0) then 1 else 0

let cancel_farm dir id =
  Farm.request_cancel ~dir id;
  Format.printf "cancel requested for cell %d@." id;
  0

(* ---- bounds ------------------------------------------------------------ *)

let show_bounds name_opt names_only check =
  let entries =
    match name_opt with
    | None -> Ok P.registry
    | Some name -> (
      match P.find name with Some e -> Ok [ e ] | None -> Error name)
  in
  match entries with
  | Error name ->
    Format.eprintf "unknown protocol %S; try `csap_cli list`@." name;
    2
  | Ok entries ->
    if names_only then begin
      List.iter (fun (module M : P.S) -> print_endline M.name) entries;
      0
    end
    else if not check then begin
      List.iter
        (fun (module M : P.S) ->
          List.iter
            (fun c -> Format.printf "%-14s %s@." M.name (P.Claim.to_string c))
            M.claimed)
        entries;
      0
    end
    else begin
      let failed =
        List.fold_left
          (fun acc entry ->
            let r = Csap.Bound_check.check_entry entry in
            Format.printf "%a@." Csap.Bound_check.pp_report r;
            acc + List.length (Csap.Bound_check.failures r))
          0 entries
      in
      if failed = 0 then 0
      else begin
        Format.eprintf "%d claim(s) measured over their bound@." failed;
        1
      end
    end

(* ---- cmdliner ---------------------------------------------------------- *)

open Cmdliner

let exits =
  Cmd.Exit.info 0 ~doc:"Success (with $(b,--check): invariant ok)."
  :: Cmd.Exit.info 1
       ~doc:
         "Invariant failure; for farm commands, at least one failed cell."
  :: Cmd.Exit.info 2 ~doc:"Unknown protocol name."
  :: Cmd.Exit.info 3 ~doc:"Malformed spec or invalid configuration."
  :: Cmd.Exit.info 4 ~doc:"Unexpected execution error."
  :: Cmd.Exit.defaults

let family =
  let doc =
    "Graph family: path, cycle, star, complete, grid, random, geometric, \
     gn, chorded, bkj."
  in
  Arg.(value & opt string "random" & info [ "family"; "f" ] ~doc)

let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Number of vertices.")
let w = Arg.(value & opt int 8 & info [ "w" ] ~doc:"Weight parameter.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let root =
  Arg.(value & opt int 0 & info [ "root" ] ~doc:"Root / source vertex.")

(* Parsed in the command body (not an [Arg.conv]) so a malformed spec
   reports exit code 3, not cmdliner's generic 124. *)
let delay =
  Arg.(
    value
    & opt (some string) None
    & info [ "delay" ] ~docv:"SPEC"
        ~doc:
          "Delay oracle: exact, near-zero, race, scaled:C, seeded:N, \
           slow-edge:ID. Default: exact.")

let adversary =
  Arg.(
    value
    & opt (some string) None
    & info [ "adversary" ] ~docv:"SPEC"
        ~doc:
          "Adaptive adversary observing the execution: greedy (pins \
           delivery on the busiest edge), stretch (serialises the \
           critical path). Conflicts with --delay; protocols without \
           the `adv' capability reject it.")

let loss =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~doc:"Per-message loss probability in [0, 1).")

let dup =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~doc:"Per-message duplication probability in [0, 1).")

let fault_seed =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~doc:"Seed for the fault plan coins.")

let reliable =
  Arg.(
    value & flag
    & info [ "reliable" ] ~doc:"Route through the reliable-delivery shim.")

let pulses =
  Arg.(
    value
    & opt (some int) None
    & info [ "pulses" ] ~doc:"Pulses for clock / synchronizer protocols.")

let strip =
  Arg.(
    value & opt (some int) None
    & info [ "strip" ] ~doc:"SPT_recur strip depth.")

let k_arg =
  Arg.(
    value & opt (some int) None
    & info [ "k" ] ~doc:"Gamma_w cluster parameter.")

let q_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "q" ] ~doc:"SLT balance parameter.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "Run on the partitioned engine across this many OCaml domains \
           (protocols with `dom' capability; excludes faults/reliable).")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Check the outcome against the sequential oracles; exit 1 on \
           failure.")

let pname =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NAME" ~doc:"Protocol name (see `csap_cli list`).")

let farm_dir =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Farm directory.")

let workers =
  Arg.(
    value & opt int 2 & info [ "workers"; "j" ] ~doc:"Worker domains.")

let queue_cap =
  Arg.(
    value & opt int 16
    & info [ "queue-cap" ]
        ~doc:"Bounded worker-queue capacity (backpressure bound).")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume the directory's checkpoint manifest: completed cells \
           are skipped, interrupted ones re-run.")

let quiet =
  Arg.(
    value & flag & info [ "quiet" ] ~doc:"Suppress per-event progress lines.")

let list_cmd =
  let names_only =
    Arg.(
      value & flag
      & info [ "names" ] ~doc:"Print bare protocol names, one per line.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every registered protocol.")
    Term.(const list_protocols $ names_only)

let run_cmd =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:"Dump engine traces as PREFIX--<name>--<i>.jsonl.")
  in
  let gc_stats =
    Arg.(
      value & flag
      & info [ "gc-stats" ]
          ~doc:
            "Print a `gc:' line after the run: minor/promoted words, \
             minor/major collection counts and top heap size measured \
             across the protocol execution (driving domain only).")
  in
  Cmd.v
    (Cmd.info "run" ~exits
       ~doc:"Run one registered protocol on a generated graph.")
    Term.(
      const run_protocol $ pname $ family $ n $ w $ seed $ root $ delay
      $ adversary $ loss $ dup $ fault_seed $ reliable $ pulses $ strip
      $ k_arg $ q_arg $ domains $ trace $ check $ gc_stats)

let serve_cmd =
  let poll =
    Arg.(
      value & opt float 0.05
      & info [ "poll" ] ~doc:"Spool poll interval, seconds.")
  in
  let max_jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-jobs" ]
          ~doc:"Exit after this many cells reach a terminal state.")
  in
  let idle_exit =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-exit" ] ~docv:"SECONDS"
          ~doc:
            "Exit after this long with nothing queued, running or spooled.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the farm job server: ingest spooled cells, execute them on \
          worker domains, checkpoint every transition.")
    Term.(
      const serve_farm $ farm_dir $ workers $ queue_cap $ poll $ max_jobs
      $ idle_exit $ resume $ quiet)

let sweep_cmd =
  let cells_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "cells" ] ~docv:"FILE"
          ~doc:"Read cells from FILE, one JSON object per line.")
  in
  let protocols =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocols"; "p" ] ~docv:"NAMES"
          ~doc:"Comma-separated protocol names to sweep.")
  in
  let delays =
    Arg.(
      value
      & opt (some string) None
      & info [ "delays" ] ~docv:"SPECS"
          ~doc:"Comma-separated delay specs (default: exact).")
  in
  let adversaries =
    Arg.(
      value
      & opt (some string) None
      & info [ "adversaries" ] ~docv:"SPECS"
          ~doc:
            "Comma-separated adaptive adversary specs; each adds one \
             cell per protocol alongside the --delays cells.")
  in
  let no_check =
    Arg.(
      value & flag
      & info [ "no-check" ] ~doc:"Skip the sequential-oracle invariants.")
  in
  Cmd.v
    (Cmd.info "sweep" ~exits
       ~doc:
         "Run a batch of cells to completion through the farm (same code \
          path and checkpoint manifest as `serve').")
    Term.(
      const sweep_farm $ farm_dir $ workers $ queue_cap $ resume $ quiet
      $ cells_file $ protocols $ delays $ adversaries $ family $ n $ w $ seed
      $ root $ loss $ dup $ fault_seed $ reliable $ no_check)

let submit_cmd =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:
            "Bake a trace-dump prefix into the cell: the worker that \
             runs it dumps replayable JSONL as PREFIX--<name>--<i>.jsonl.")
  in
  Cmd.v
    (Cmd.info "submit" ~exits
       ~doc:"Spool one cell into a farm directory for a running server.")
    Term.(
      const submit_cell $ pname $ farm_dir $ family $ n $ w $ seed $ root
      $ delay $ adversary $ loss $ dup $ fault_seed $ reliable $ pulses
      $ strip $ k_arg $ q_arg $ domains $ trace $ check)

let status_cmd =
  let assert_done =
    Arg.(
      value & flag
      & info [ "assert-done" ]
          ~doc:
            "Exit 1 unless every cell is terminal and none failed (for \
             CI assertions).")
  in
  Cmd.v
    (Cmd.info "status" ~exits
       ~doc:"Print a farm manifest's cells, states and counts.")
    Term.(const status_farm $ farm_dir $ assert_done)

let cancel_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"ID" ~doc:"Cell id (see `csap_cli status`).")
  in
  Cmd.v
    (Cmd.info "cancel" ~exits
       ~doc:
         "Request cancellation of a queued cell (cells already running \
          finish normally).")
    Term.(const cancel_farm $ farm_dir $ id)

let params_cmd =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "Also print how a K-way striped and BFS partition would cut \
             the graph for the partitioned engine.")
  in
  Cmd.v
    (Cmd.info "params"
       ~doc:"Print the weighted parameters of a generated graph.")
    Term.(const show_params $ family $ n $ w $ seed $ domains)

let bounds_cmd =
  let name_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Restrict to one protocol (default: the whole registry).")
  in
  let names_only =
    Arg.(
      value & flag
      & info [ "names" ]
          ~doc:"Print the bare names of claim-carrying protocols.")
  in
  let check_fits =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Sweep each protocol over its bound-check family and fit the \
             measured costs against every claim; exit 1 if any measured \
             curve grows over its claimed expression.")
  in
  Cmd.v
    (Cmd.info "bounds" ~exits
       ~doc:
         "List (or, with $(b,--check), verify) the registry's symbolic \
          cost claims.")
    Term.(const show_bounds $ name_opt $ names_only $ check_fits)

let cmd =
  let doc = "cost-sensitive communication protocols (Awerbuch-Baratz-Peleg)" in
  Cmd.group
    (Cmd.info "csap_cli" ~doc)
    [
      list_cmd; run_cmd; params_cmd; bounds_cmd; serve_cmd; sweep_cmd;
      submit_cmd; status_cmd; cancel_cmd;
    ]

let () = exit (Cmd.eval' cmd)
