(* Command-line driver over the protocol registry.

   Every protocol in [Csap.Protocol.registry] is runnable by name; the
   registry supplies the runner, the capability flags and the oracle
   invariant, so this file contains no per-protocol wiring.

   Examples:
     csap_cli list
     csap_cli run mst-ghs --family complete -n 16 -w 5
     csap_cli run flood --family grid -n 25 --delay seeded:3 --check
     csap_cli run flood --family grid -n 10000 --domains 4
     csap_cli run spt-synch --family random -n 12 --loss 0.1 --reliable
     csap_cli params --family gn -n 8 -w 4 *)

module P = Csap.Protocol

let make_graph family n w seed =
  let rng = Csap_graph.Rng.create seed in
  match family with
  | "path" -> Csap_graph.Generators.path n ~w
  | "cycle" -> Csap_graph.Generators.cycle n ~w
  | "star" -> Csap_graph.Generators.star n ~w
  | "complete" -> Csap_graph.Generators.complete n ~w
  | "grid" ->
    let side = max 2 (int_of_float (sqrt (float_of_int n))) in
    Csap_graph.Generators.grid side side ~w
  | "random" ->
    Csap_graph.Generators.random_connected rng n ~extra_edges:(2 * n) ~wmax:w
  | "geometric" ->
    Csap_graph.Generators.random_geometric rng n ~degree:4
      ~scale:(float_of_int (10 * w))
  | "gn" -> Csap_graph.Generators.lower_bound_gn n ~x:(max 2 w)
  | "chorded" -> Csap_graph.Generators.chorded_cycle n ~chord_w:w
  | "bkj" -> Csap_graph.Generators.bkj_star_cycle n ~heavy:w
  | _ -> invalid_arg ("unknown family: " ^ family)

(* --delay SPEC: exact | near-zero | race | scaled:C | seeded:N
   | slow-edge:ID *)
let parse_delay spec =
  let prefixed p =
    let lp = String.length p in
    if String.length spec > lp && String.sub spec 0 lp = p then
      Some (String.sub spec lp (String.length spec - lp))
    else None
  in
  match spec with
  | "exact" -> Ok Csap_dsim.Delay.Exact
  | "near-zero" -> Ok Csap_dsim.Delay.Near_zero
  | "race" -> Ok Csap_dsim.Delay.race_crossing
  | _ -> (
    match prefixed "scaled:" with
    | Some c -> (
      match float_of_string_opt c with
      | Some c when c > 0.0 && c <= 1.0 -> Ok (Csap_dsim.Delay.Scaled c)
      | _ -> Error (`Msg "scaled: factor must be a float in (0, 1]"))
    | None -> (
      match prefixed "seeded:" with
      | Some s -> (
        match int_of_string_opt s with
        | Some s -> Ok (Csap_dsim.Delay.seeded s)
        | None -> Error (`Msg "seeded: seed must be an integer"))
      | None -> (
        match prefixed "slow-edge:" with
        | Some id -> (
          match int_of_string_opt id with
          | Some id when id >= 0 -> Ok (Csap_dsim.Delay.slow_edge id)
          | _ -> Error (`Msg "slow-edge: edge id must be a non-negative int"))
        | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown delay spec %S (exact | near-zero | race | \
                   scaled:C | seeded:N | slow-edge:ID)"
                  spec)))))

(* ---- list -------------------------------------------------------------- *)

let list_protocols names_only =
  if names_only then
    List.iter print_endline (P.names ())
  else begin
    Format.printf "%-14s %-13s %-6s %-4s %-4s %s@." "name" "category"
      "faults" "rel" "dom" "summary";
    List.iter
      (fun entry ->
        let (module M : P.S) = entry in
        Format.printf "%-14s %-13s %-6s %-4s %-4s %s@." M.name
          (P.category_name M.category)
          (if M.caps.P.supports_faults then "yes" else "no")
          (if M.caps.P.supports_reliable then "yes" else "no")
          (if M.caps.P.supports_domains then "yes" else "no")
          M.summary)
      P.registry
  end;
  0

(* ---- run --------------------------------------------------------------- *)

let run_protocol name family n w seed root delay loss dup fault_seed reliable
    pulses strip k q domains trace check gc_stats =
  match P.find name with
  | None ->
    Format.eprintf "unknown protocol %S; try `csap_cli list`@." name;
    1
  | Some entry -> (
    let (module M : P.S) = entry in
    let g = make_graph family n w seed in
    Format.printf "graph: %a@." Csap_graph.Params.pp
      (Csap_graph.Params.compute g);
    let faults =
      if loss > 0.0 || dup > 0.0 then
        Some (Csap_dsim.Fault.seeded ~loss ~dup fault_seed)
      else None
    in
    let cfg =
      P.Run.make ~root ?delay ?faults ~reliable ?trace ?pulses ?strip ?k ?q
        ?domains g
    in
    (* Pair of (quick_stat, minor_words): quick_stat's minor_words only
       advances at minor collections (OCaml 5.1); the dedicated external
       reads the live allocation pointer. *)
    let g0 =
      if gc_stats then Some (Gc.quick_stat (), Gc.minor_words ()) else None
    in
    match P.execute entry cfg with
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      1
    | o ->
      (* Snapshot before any printing so formatter allocation doesn't
         pollute the run's numbers. Note: with --domains the workers'
         minor words are invisible here (OCaml 5 GC counters are
         domain-local); this reports the driving domain. *)
      let gc_line =
        match g0 with
        | None -> None
        | Some (s0, w0) ->
          let s1 = Gc.quick_stat () in
          Some
            (Printf.sprintf
               "minor_words=%.0f promoted_words=%.0f minor_gcs=%d \
                major_gcs=%d top_heap_mb=%.1f"
               (Gc.minor_words () -. w0)
               (s1.Gc.promoted_words -. s0.Gc.promoted_words)
               (s1.Gc.minor_collections - s0.Gc.minor_collections)
               (s1.Gc.major_collections - s0.Gc.major_collections)
               (float_of_int s1.Gc.top_heap_words *. 8.0 /. 1e6))
      in
      Format.printf "%-14s %a@." M.name Csap.Measures.pp
        o.P.Outcome.measures;
      (match gc_line with
      | Some line -> Format.printf "gc: %s@." line
      | None -> ());
      if o.P.Outcome.retransmissions > 0 || o.P.Outcome.restarts > 0 then
        Format.printf "transport: retransmissions=%d restarts=%d@."
          o.P.Outcome.retransmissions o.P.Outcome.restarts;
      List.iter
        (fun (key, v) -> Format.printf "%s: %s@." key v)
        o.P.Outcome.info;
      if check then (
        match M.invariant cfg o with
        | Ok () ->
          Format.printf "invariant: ok@.";
          0
        | Error e ->
          Format.eprintf "invariant FAILED: %s@." e;
          1)
      else 0)

(* ---- params ------------------------------------------------------------ *)

let show_params family n w seed domains =
  let g = make_graph family n w seed in
  Format.printf "graph: %a@." Csap_graph.Params.pp
    (Csap_graph.Params.compute g);
  (match domains with
  | Some k when k > 1 ->
    (* Partitioned-execution view: how the striped and BFS partitions cut
       this graph, and the conservative lookahead each would give the
       partitioned engine under exact delays. *)
    List.iter
      (fun (label, part) ->
        let mcw = Csap_graph.Partition.min_cut_weight g part in
        Format.printf "%s: %a lookahead=%s@." label Csap_graph.Partition.pp
          part
          (if mcw = max_int then "inf" else string_of_int mcw))
      [
        ("striped", Csap_graph.Partition.striped g ~k);
        ("bfs", Csap_graph.Partition.bfs g ~k);
      ]
  | _ -> ());
  0

(* ---- cmdliner ---------------------------------------------------------- *)

open Cmdliner

let family =
  let doc =
    "Graph family: path, cycle, star, complete, grid, random, geometric, \
     gn, chorded, bkj."
  in
  Arg.(value & opt string "random" & info [ "family"; "f" ] ~doc)

let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Number of vertices.")
let w = Arg.(value & opt int 8 & info [ "w" ] ~doc:"Weight parameter.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let list_cmd =
  let names_only =
    Arg.(
      value & flag
      & info [ "names" ] ~doc:"Print bare protocol names, one per line.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every registered protocol.")
    Term.(const list_protocols $ names_only)

let run_cmd =
  let pname =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Protocol name (see `csap_cli list`).")
  in
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~doc:"Root / source vertex.")
  in
  let delay =
    let delay_conv = Arg.conv (parse_delay, Csap_dsim.Delay.pp) in
    Arg.(
      value
      & opt (some delay_conv) None
      & info [ "delay" ] ~docv:"SPEC"
          ~doc:
            "Delay oracle: exact, near-zero, race, scaled:C, seeded:N, \
             slow-edge:ID. Default: exact.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~doc:"Per-message loss probability in [0, 1).")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~doc:"Per-message duplication probability in [0, 1).")
  in
  let fault_seed =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~doc:"Seed for the fault plan coins.")
  in
  let reliable =
    Arg.(
      value & flag
      & info [ "reliable" ] ~doc:"Route through the reliable-delivery shim.")
  in
  let pulses =
    Arg.(
      value
      & opt (some int) None
      & info [ "pulses" ] ~doc:"Pulses for clock / synchronizer protocols.")
  in
  let strip =
    Arg.(
      value & opt (some int) None
      & info [ "strip" ] ~doc:"SPT_recur strip depth.")
  in
  let k =
    Arg.(
      value & opt (some int) None
      & info [ "k" ] ~doc:"Gamma_w cluster parameter.")
  in
  let q =
    Arg.(
      value
      & opt (some float) None
      & info [ "q" ] ~doc:"SLT balance parameter.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "Run on the partitioned engine across this many OCaml domains \
             (protocols with `dom' capability; excludes faults/reliable).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:"Dump engine traces as PREFIX--<name>--<i>.jsonl.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Check the outcome against the sequential oracles; exit \
             non-zero on failure.")
  in
  let gc_stats =
    Arg.(
      value & flag
      & info [ "gc-stats" ]
          ~doc:
            "Print a `gc:' line after the run: minor/promoted words, \
             minor/major collection counts and top heap size measured \
             across the protocol execution (driving domain only).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one registered protocol on a generated graph.")
    Term.(
      const run_protocol $ pname $ family $ n $ w $ seed $ root $ delay $ loss
      $ dup $ fault_seed $ reliable $ pulses $ strip $ k $ q $ domains $ trace
      $ check $ gc_stats)

let params_cmd =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "Also print how a K-way striped and BFS partition would cut \
             the graph for the partitioned engine.")
  in
  Cmd.v
    (Cmd.info "params"
       ~doc:"Print the weighted parameters of a generated graph.")
    Term.(const show_params $ family $ n $ w $ seed $ domains)

let cmd =
  let doc = "cost-sensitive communication protocols (Awerbuch-Baratz-Peleg)" in
  Cmd.group
    (Cmd.info "csap_cli" ~doc)
    [ list_cmd; run_cmd; params_cmd ]

let () = exit (Cmd.eval' cmd)
