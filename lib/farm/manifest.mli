(** Sweep-level checkpoint manifests.

    A manifest is an append-only JSONL file recording every cell of a
    sweep — its canonical spec and digest — and every lifecycle
    transition, each line [fsync]'d before the write is considered
    done. That makes it the crash-safe source of truth: after a
    [SIGKILL], reloading the manifest reconstructs exactly which cells
    had completed (their terminal line reached the disk) and which were
    pending or in flight (re-run them — executions are deterministic,
    so a cell interrupted mid-run is simply repeated).

    Line kinds:
    {v
    {"kind":"manifest","version":1}
    {"kind":"cell","id":0,"digest":"<md5>","cell":{...}}
    {"kind":"state","id":0,"state":"running"}
    {"kind":"state","id":0,"state":"done","result":{"comm":..,...}}
    {"kind":"state","id":0,"state":"failed","error":"..."}
    v}

    The loader tolerates exactly one torn line — an unparsable {e final}
    line, the signature of a crash mid-append — and reports it via
    {!torn}; an unparsable interior line raises [Invalid_argument] with
    the file name and 1-based line number. Appends are serialised by an
    internal mutex, so worker domains may record transitions
    concurrently. *)

type state = Pending | Running | Done | Failed | Cancelled

val state_name : state -> string

(** The summary persisted for a completed cell. *)
type result_line = {
  comm : int;
  time : float;
  messages : int;
  retransmissions : int;
  restarts : int;
  wall_ms : float;
}

type entry = {
  id : int;
  cell : Cell.t;
  digest : string;
  mutable state : state;
  mutable result : result_line option;  (** set when [state = Done] *)
  mutable error : string option;  (** set when [state = Failed] *)
}

type t

val create : string -> t
(** Start a fresh manifest at this path (truncating any previous file)
    and write the header. *)

val load : ?readonly:bool -> string -> t
(** Reload an existing manifest, replaying every transition. With
    [readonly] (default [false]) the file is not reopened for append —
    for status inspection while a server owns the file. A writable load
    that found a torn trailing line truncates it off the file before
    reopening, so subsequent appends start on a clean line boundary
    (readonly loads leave the file untouched). Raises
    [Invalid_argument] (with file and line) on interior corruption,
    [Sys_error] if the file does not exist. *)

val path : t -> string

val torn : t -> bool
(** [load] dropped a truncated trailing line (crash signature). *)

val add : t -> Cell.t -> entry
(** Append a cell with the next free id; fsync'd before returning. *)

val entries : t -> entry list
(** In id order. *)

val find : t -> int -> entry option

val set_state :
  t -> entry -> ?result:result_line -> ?error:string -> state -> unit
(** Record a transition: updates the in-memory entry and appends the
    fsync'd state line. Raises [Invalid_argument] on a readonly
    manifest. *)

val counts : t -> int * int * int * int * int
(** [(pending, running, done, failed, cancelled)]. *)

val result_of_outcome :
  Csap.Protocol.Outcome.t -> wall_ms:float -> result_line

val close : t -> unit
