type state = Pending | Running | Done | Failed | Cancelled

let state_name = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let state_of_name = function
  | "pending" -> Some Pending
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

type result_line = {
  comm : int;
  time : float;
  messages : int;
  retransmissions : int;
  restarts : int;
  wall_ms : float;
}

type entry = {
  id : int;
  cell : Cell.t;
  digest : string;
  mutable state : state;
  mutable result : result_line option;
  mutable error : string option;
}

type t = {
  path : string;
  lock : Mutex.t;
  mutable oc : out_channel option;  (* [None] = readonly *)
  mutable entries_rev : entry list;
  mutable by_id : (int, entry) Hashtbl.t;
  mutable next_id : int;
  mutable torn : bool;
}

let path t = t.path
let torn t = t.torn

(* ------------------------------------------------------------------ *)
(* Line encoding                                                       *)

let header_line = {|{"kind":"manifest","version":1}|}

let cell_line (e : entry) =
  Printf.sprintf {|{"kind":"cell","id":%d,"digest":%s,"cell":%s}|} e.id
    (Jsonx.escape e.digest)
    (Cell.to_json e.cell)

let result_json r =
  Jsonx.Obj
    [ ("comm", Jsonx.Int r.comm); ("time", Jsonx.Float r.time);
      ("messages", Jsonx.Int r.messages);
      ("retransmissions", Jsonx.Int r.retransmissions);
      ("restarts", Jsonx.Int r.restarts);
      ("wall_ms", Jsonx.Float r.wall_ms) ]

let state_line (e : entry) st result error =
  let fields =
    [ ("kind", Jsonx.Str "state"); ("id", Jsonx.Int e.id);
      ("state", Jsonx.Str (state_name st)) ]
    @ (match result with
      | None -> []
      | Some r -> [ ("result", result_json r) ])
    @ match error with None -> [] | Some m -> [ ("error", Jsonx.Str m) ]
  in
  Jsonx.to_string (Jsonx.Obj fields)

(* Durability contract: a line is only "recorded" once it has hit the
   disk, so a resumed sweep can trust every line it reads. *)
let append_sync t line =
  match t.oc with
  | None -> invalid_arg "Manifest: readonly"
  | Some oc ->
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)

let fail_line path lineno msg =
  invalid_arg
    (Printf.sprintf "Manifest.load: %s: line %d: %s" path lineno msg)

let parse_result j =
  match j with
  | None -> None
  | Some r ->
    let int k = Jsonx.to_int (Jsonx.member k r) in
    let flt k = Jsonx.to_float (Jsonx.member k r) in
    Some
      {
        comm = Option.value ~default:0 (int "comm");
        time = Option.value ~default:0.0 (flt "time");
        messages = Option.value ~default:0 (int "messages");
        retransmissions = Option.value ~default:0 (int "retransmissions");
        restarts = Option.value ~default:0 (int "restarts");
        wall_ms = Option.value ~default:0.0 (flt "wall_ms");
      }

let replay_line t path lineno line =
  match Jsonx.parse line with
  | Error e -> fail_line path lineno e
  | Ok j -> (
    match Jsonx.to_str (Jsonx.member "kind" j) with
    | Some "manifest" -> ()
    | Some "cell" -> (
      let id = Jsonx.to_int (Jsonx.member "id" j) in
      let digest = Jsonx.to_str (Jsonx.member "digest" j) in
      let cell =
        match Jsonx.member "cell" j with
        | Some c -> Cell.of_json (Jsonx.to_string c)
        | None -> Error "missing \"cell\" field"
      in
      match (id, digest, cell) with
      | Some id, Some digest, Ok cell ->
        let e = { id; cell; digest; state = Pending; result = None; error = None } in
        if Hashtbl.mem t.by_id id then
          fail_line path lineno (Printf.sprintf "duplicate cell id %d" id);
        Hashtbl.add t.by_id id e;
        t.entries_rev <- e :: t.entries_rev;
        t.next_id <- max t.next_id (id + 1)
      | _, _, Error e -> fail_line path lineno e
      | _ -> fail_line path lineno "cell line missing id or digest")
    | Some "state" -> (
      match
        ( Jsonx.to_int (Jsonx.member "id" j),
          Option.bind (Jsonx.to_str (Jsonx.member "state" j)) state_of_name )
      with
      | Some id, Some st -> (
        match Hashtbl.find_opt t.by_id id with
        | None -> fail_line path lineno (Printf.sprintf "state for unknown cell %d" id)
        | Some e ->
          e.state <- st;
          e.result <- parse_result (Jsonx.member "result" j);
          e.error <- Jsonx.to_str (Jsonx.member "error" j))
      | _ -> fail_line path lineno "malformed state line")
    | Some k -> fail_line path lineno (Printf.sprintf "unknown line kind %S" k)
    | None -> fail_line path lineno "line has no \"kind\" field")

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let fresh path oc =
  {
    path;
    lock = Mutex.create ();
    oc;
    entries_rev = [];
    by_id = Hashtbl.create 64;
    next_id = 0;
    torn = false;
  }

let create path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  let t = fresh path (Some oc) in
  append_sync t header_line;
  t

let load ?(readonly = false) path =
  let body = read_all path in
  let t = fresh path None in
  let lines = String.split_on_char '\n' body in
  let last_nonempty =
    List.fold_left
      (fun (i, last) raw -> (i + 1, if String.trim raw <> "" then i else last))
      (0, -1) lines
    |> snd
  in
  let torn_at = ref None in
  let offset = ref 0 in
  List.iteri
    (fun i raw ->
      let start = !offset in
      offset := start + String.length raw + 1;
      let line = String.trim raw in
      if line <> "" then
        try replay_line t path (i + 1) line
        with Invalid_argument _ as e ->
          (* Only the final non-empty line may be torn: a crash can
             truncate at most the one append in flight. *)
          if i = last_nonempty then begin
            t.torn <- true;
            torn_at := Some start
          end
          else raise e)
    lines;
  if not readonly then begin
    (* Drop the torn partial line before reopening for append:
       appending after it would concatenate the next record onto the
       torn bytes, turning a tolerated torn *tail* into interior
       corruption on the following load. *)
    (match !torn_at with
    | Some at -> Unix.truncate path at
    | None -> ());
    t.oc <- Some (open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path)
  end;
  t

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add t cell =
  locked t (fun () ->
      let e =
        {
          id = t.next_id;
          cell;
          digest = Cell.digest cell;
          state = Pending;
          result = None;
          error = None;
        }
      in
      t.next_id <- t.next_id + 1;
      Hashtbl.add t.by_id e.id e;
      t.entries_rev <- e :: t.entries_rev;
      append_sync t (cell_line e);
      e)

let set_state t e ?result ?error st =
  locked t (fun () ->
      e.state <- st;
      e.result <- result;
      e.error <- error;
      append_sync t (state_line e st result error))

let entries t = locked t (fun () -> List.rev t.entries_rev)

let find t id = locked t (fun () -> Hashtbl.find_opt t.by_id id)

let counts t =
  locked t (fun () ->
      List.fold_left
        (fun (p, r, d, f, c) e ->
          match e.state with
          | Pending -> (p + 1, r, d, f, c)
          | Running -> (p, r + 1, d, f, c)
          | Done -> (p, r, d + 1, f, c)
          | Failed -> (p, r, d, f + 1, c)
          | Cancelled -> (p, r, d, f, c + 1))
        (0, 0, 0, 0, 0) t.entries_rev)

let result_of_outcome (o : Csap.Protocol.Outcome.t) ~wall_ms =
  let m = o.Csap.Protocol.Outcome.measures in
  {
    comm = m.Csap.Measures.comm;
    time = m.Csap.Measures.time;
    messages = m.Csap.Measures.messages;
    retransmissions = o.Csap.Protocol.Outcome.retransmissions;
    restarts = o.Csap.Protocol.Outcome.restarts;
    wall_ms;
  }

let close t =
  locked t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        close_out_noerr oc;
        t.oc <- None)
