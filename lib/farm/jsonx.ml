type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let float_repr f =
  (* [%.17g] round-trips every finite float; JSON has no inf/nan, so
     those become null (farm numbers are validated finite upstream). *)
  if Float.is_finite f then
    let s = Printf.sprintf "%.17g" f in
    (* Ensure the text reparses as a float, not an int, so a re-encode
       of the parse is identical (digest stability). *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  else "null"

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> Buffer.add_string b (escape s)
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (escape k);
        Buffer.add_char b ':';
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Fail (Printf.sprintf "%s at byte %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    &&
    match c.s.[c.pos] with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

(* Decode a Unicode scalar value to UTF-8 bytes. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let d =
      match c.s.[c.pos + i] with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | _ -> fail c "bad \\u escape"
    in
    v := (!v * 16) + d
  done;
  c.pos <- c.pos + 4;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.s then fail c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if c.pos >= String.length c.s then fail c "unterminated escape";
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' -> add_utf8 b (hex4 c)
       | _ -> fail c "bad escape");
      loop ()
    | c -> Buffer.add_char b c; loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let adv () = c.pos <- c.pos + 1 in
  if peek c = Some '-' then adv ();
  while
    match peek c with
    | Some ('0' .. '9') -> true
    | Some ('.' | 'e' | 'E' | '+' | '-') -> is_float := true; true
    | _ -> false
  do
    adv ()
  done;
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Integer literal out of native range: keep the value as float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields (kv :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev (kv :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
    else Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k v =
  match v with
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Some (Int i) -> Some i | _ -> None

let to_float = function
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let to_str = function Some (Str s) -> Some s | _ -> None
let to_bool = function Some (Bool b) -> Some b | _ -> None
