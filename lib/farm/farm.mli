(** A resumable concurrent job server for sweep cells.

    One farm lives in one directory:
    {v
    <dir>/spool/     job-*.json    cells awaiting ingest (one per file)
    <dir>/ctrl/      cancel-<id>   cancellation requests
    <dir>/results/   cell-<id>.json   per-cell outcome records
    <dir>/events.jsonl   lifecycle log (submitted/started/finished/...)
    <dir>/MANIFEST.jsonl the fsync'd checkpoint (see {!Manifest})
    v}

    Two entry points share the worker machinery. {!serve} is the
    long-running mode: a poll loop ingests spool files, worker domains
    execute cells, and the server exits on a job quota or an idle
    timeout. {!sweep} is the batch mode: a fixed cell list is enqueued
    up front and the call returns when every cell is terminal. Both
    record every transition in the manifest, so either can be
    [SIGKILL]ed and resumed — completed cells are never re-executed
    (their digests prove identity), while cells caught mid-run are
    simply re-run (executions are deterministic).

    Backpressure: the worker queue is a bounded {!Csap_pool.Bqueue};
    {!serve} only ingests a spool file when the queue has room, so a
    flood of submissions accumulates as files on disk, not as heap.

    Cancellation is cooperative and queue-level: a cancel request marks
    the cell, and a worker that dequeues a marked cell records it
    [Cancelled] without executing. A cell already running cannot be
    preempted — [Protocol.execute] is atomic — so a cancel that arrives
    mid-run loses the race and the cell completes normally. *)

type config = {
  dir : string;
  workers : int;  (** worker domains executing cells *)
  queue_cap : int;  (** bounded-queue capacity (backpressure) *)
  poll_s : float;  (** serve-mode spool poll interval, seconds *)
  max_jobs : int option;
      (** serve: exit once this many cells reached a terminal state *)
  idle_exit_s : float option;
      (** serve: exit after this long with nothing queued, running or
          spooled *)
  verbose : bool;  (** print one line per lifecycle event *)
  crash_after : int option;
      (** test hook: [Unix._exit 37] immediately after the [n]-th cell
          reaches a terminal {e recorded} state — simulates a crash
          whose manifest suffix is exactly the completed prefix *)
}

val config :
  ?workers:int ->
  ?queue_cap:int ->
  ?poll_s:float ->
  ?max_jobs:int ->
  ?idle_exit_s:float ->
  ?verbose:bool ->
  ?crash_after:int ->
  dir:string ->
  unit ->
  config
(** Defaults: 2 workers, queue capacity 16, 0.05 s poll, no quota, no
    idle exit, quiet. *)

type summary = {
  total : int;
  completed : int;  (** cells that reached [Done] during this run *)
  failed : int;
  cancelled : int;
  skipped : int;  (** already terminal at start — resumed checkpoints *)
}

val pp_summary : Format.formatter -> summary -> unit

val manifest_path : dir:string -> string
val events_path : dir:string -> string

val serve : ?resume:bool -> config -> summary
(** Run the server loop. Fresh start requires no existing manifest
    ([Invalid_argument] otherwise — a checkpoint is never silently
    clobbered); [resume] reloads it and requeues every non-terminal
    cell. Returns when [max_jobs] or [idle_exit_s] triggers. *)

val sweep : ?resume:bool -> config -> Cell.t list -> summary
(** Run a fixed batch to completion. With [resume], the manifest is
    reloaded and [cells] (unless empty, meaning "whatever the manifest
    says") must match it digest-for-digest ([Invalid_argument]
    otherwise); terminal cells are skipped. *)

val submit : dir:string -> Cell.t -> string
(** Drop a cell into the spool (atomic write-then-rename); returns the
    spool file path. The job id is assigned at ingest, visible via
    {!Manifest.load} or the events log. *)

val request_cancel : dir:string -> int -> unit
(** Drop a [ctrl/cancel-<id>] request; honored when the id is still
    queued (see cancellation note above). *)
