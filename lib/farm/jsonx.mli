(** A minimal JSON codec for the farm's wire formats (job cells,
    checkpoint manifests, lifecycle events).

    The repository deliberately has no JSON dependency — traces use a
    fixed printf/scanf line format — but farm cells and manifests are
    {e objects with optional fields}, which a format string cannot
    parse. This is the smallest honest recursive-descent parser that
    covers them: full JSON values, strict syntax, byte-precise error
    positions. Writers emit canonical text (fixed field order is the
    caller's job; numbers via [%d] / [%.17g], strings minimally
    escaped), so digesting [to_string] output is stable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse s] parses one JSON value spanning all of [s] (surrounding
    whitespace allowed). Errors name the byte offset. *)
val parse : string -> (t, string) result

val to_string : t -> string

(** [escape s] is [s] as a quoted JSON string literal. *)
val escape : string -> string

(** {2 Accessors} — total, for destructuring parsed objects. *)

(** Field lookup; [None] on missing field or non-object. *)
val member : string -> t -> t option

val to_int : t option -> int option

(** Accepts both [Int] and [Float]. *)
val to_float : t option -> float option

val to_str : t option -> string option
val to_bool : t option -> bool option
