(** One sweep cell: a protocol name plus a fully-specified run
    configuration, in the CLI's flag vocabulary.

    A cell is the farm's unit of work and the unit of checkpointing: it
    serialises to one canonical JSON object whose digest identifies the
    cell inside a manifest, so a resumed sweep can prove "this completed
    cell is the same work" before skipping it. Everything needed to
    rebuild the run — graph family and size, seeds, delay spec, fault
    probabilities, protocol knobs — lives in the cell; nothing refers to
    in-memory state. *)

type t = {
  protocol : string;
  family : string;  (** graph family, as the CLI's [--family] *)
  n : int;
  w : int;
  seed : int;  (** graph-generator seed *)
  root : int;
  delay : string option;  (** delay spec string, as the CLI's [--delay] *)
  adversary : string option;
      (** adaptive adversary spec, as the CLI's [--adversary]; conflicts
          with [delay] (rejected at run time by protocol validation) *)
  loss : float;
  dup : float;
  fault_seed : int;
  reliable : bool;
  pulses : int option;
  strip : int option;
  k : int option;
  q : float option;
  domains : int option;
  trace : string option;
      (** trace-dump prefix baked into the cell, so farm workers dump
          replayable JSONL for this cell; cells without it keep their
          pre-existing digests ([None] fields are omitted from the
          canonical JSON) *)
  check : bool;  (** run the sequential-oracle invariant *)
}

val make :
  ?family:string ->
  ?n:int ->
  ?w:int ->
  ?seed:int ->
  ?root:int ->
  ?delay:string ->
  ?adversary:string ->
  ?loss:float ->
  ?dup:float ->
  ?fault_seed:int ->
  ?reliable:bool ->
  ?pulses:int ->
  ?strip:int ->
  ?k:int ->
  ?q:float ->
  ?domains:int ->
  ?trace:string ->
  ?check:bool ->
  string ->
  t
(** [make protocol] with CLI defaults: family ["random"], [n = 16],
    [w = 8], [seed = 1], [root = 0], no delay spec (= exact), no faults,
    [check = true]. *)

(** {2 Canonical serialisation} *)

val to_json : t -> string
(** One-line JSON object; field order and number formatting are fixed,
    [None] fields are omitted — so equal cells always produce equal
    text. *)

val of_json : string -> (t, string) result
(** Inverse of [to_json]; also accepts hand-written objects (missing
    optional fields take [make]'s defaults). [protocol] is required. *)

val digest : t -> string
(** Hex digest of [to_json t]; the identity used by checkpoint
    manifests. *)

(** {2 Execution} *)

val graph : t -> Csap_graph.Graph.t
(** Build the cell's graph. Raises [Invalid_argument] on an unknown
    family. *)

val delay_of_spec : string -> (Csap_dsim.Delay.t, string) result
(** Parse a [--delay]-style spec: [exact], [near-zero], [race],
    [scaled:C], [seeded:N], [slow-edge:ID]. *)

(** Why a cell failed, classified for exit codes (see
    {!error_exit_code}). *)
type error =
  | Unknown_protocol of string
  | Bad_spec of string
      (** malformed delay spec / family / probability, or a cfg the
          protocol's capabilities reject *)
  | Invariant_failed of string  (** [check]ed run broke its oracle *)
  | Execution_error of string  (** unexpected exception during the run *)

val error_message : error -> string

val error_exit_code : error -> int
(** The CLI contract: [1] invariant failure, [2] unknown protocol,
    [3] malformed spec / invalid configuration, [4] unexpected
    execution error. *)

type outcome = {
  result : (Csap.Protocol.Outcome.t, error) result;
  wall_ms : float;  (** wall-clock of the execute (+ invariant) call *)
}

val run : ?graph:Csap_graph.Graph.t -> ?trace_prefix:string -> t -> outcome
(** Build the graph, resolve delay, adversary and faults, execute
    through the registry and (when [t.check]) check the invariant. Never
    raises: every failure is classified into [error]. [graph], when
    given, must be [graph t] — callers that already built it (to print
    its parameters) skip the rebuild. [trace_prefix] overrides the
    cell's own [trace] field; with neither, no traces are dumped. *)

val measures_json : Csap.Protocol.Outcome.t -> wall_ms:float -> string
(** The result summary recorded in manifests and result files:
    [{"comm":..,"time":..,"messages":..,"retransmissions":..,
    "restarts":..,"wall_ms":..}]. *)
