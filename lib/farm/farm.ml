module Bqueue = Csap_pool.Bqueue

type config = {
  dir : string;
  workers : int;
  queue_cap : int;
  poll_s : float;
  max_jobs : int option;
  idle_exit_s : float option;
  verbose : bool;
  crash_after : int option;
}

let config ?(workers = 2) ?(queue_cap = 16) ?(poll_s = 0.05) ?max_jobs
    ?idle_exit_s ?(verbose = false) ?crash_after ~dir () =
  if workers < 1 then invalid_arg "Farm.config: workers < 1";
  { dir; workers; queue_cap; poll_s; max_jobs; idle_exit_s; verbose;
    crash_after }

type summary = {
  total : int;
  completed : int;
  failed : int;
  cancelled : int;
  skipped : int;
}

let pp_summary ppf s =
  Format.fprintf ppf "total=%d done=%d failed=%d cancelled=%d skipped=%d"
    s.total s.completed s.failed s.cancelled s.skipped

(* ------------------------------------------------------------------ *)
(* Directory layout                                                    *)

let spool_dir ~dir = Filename.concat dir "spool"
let ctrl_dir ~dir = Filename.concat dir "ctrl"
let results_dir ~dir = Filename.concat dir "results"
let manifest_path ~dir = Filename.concat dir "MANIFEST.jsonl"
let events_path ~dir = Filename.concat dir "events.jsonl"

let ensure_dir d = if not (Sys.file_exists d) then Unix.mkdir d 0o755

let ensure_layout ~dir =
  ensure_dir dir;
  ensure_dir (spool_dir ~dir);
  ensure_dir (ctrl_dir ~dir);
  ensure_dir (results_dir ~dir)

(* ------------------------------------------------------------------ *)
(* Submission and cancellation (client side)                           *)

let submit_counter = ref 0

let submit ~dir cell =
  ensure_layout ~dir;
  incr submit_counter;
  let stamp = int_of_float (Unix.gettimeofday () *. 1e6) in
  let name =
    Printf.sprintf "job-%d-%d-%d.json" stamp (Unix.getpid ()) !submit_counter
  in
  let final = Filename.concat (spool_dir ~dir) name in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Cell.to_json cell);
  output_char oc '\n';
  close_out oc;
  (* Rename is atomic: the ingest loop only ever sees whole files. *)
  Sys.rename tmp final;
  final

let request_cancel ~dir id =
  ensure_layout ~dir;
  let path = Filename.concat (ctrl_dir ~dir) (Printf.sprintf "cancel-%d" id) in
  let oc = open_out_bin path in
  close_out oc

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)

type state = {
  cfg : config;
  man : Manifest.t;
  queue : int Bqueue.t;
  lock : Mutex.t;  (* guards [cancelled] and [events] *)
  cancelled : (int, unit) Hashtbl.t;
  events : out_channel;
  terminal : int Atomic.t;  (* cells recorded terminal during this run *)
}

let make_state cfg man =
  {
    cfg;
    man;
    queue = Bqueue.create ~capacity:cfg.queue_cap ();
    lock = Mutex.create ();
    cancelled = Hashtbl.create 16;
    events =
      open_out_gen
        [ Open_wronly; Open_creat; Open_append ]
        0o644
        (events_path ~dir:cfg.dir);
    terminal = Atomic.make 0;
  }

let event st name fields =
  let line =
    Jsonx.to_string
      (Jsonx.Obj
         (("at", Jsonx.Float (Unix.gettimeofday ()))
         :: ("event", Jsonx.Str name)
         :: fields))
  in
  Mutex.lock st.lock;
  output_string st.events line;
  output_char st.events '\n';
  flush st.events;
  Mutex.unlock st.lock;
  if st.cfg.verbose then Printf.printf "[farm] %s\n%!" line

let cell_fields (e : Manifest.entry) =
  [ ("id", Jsonx.Int e.Manifest.id);
    ("protocol", Jsonx.Str e.Manifest.cell.Cell.protocol);
    ("digest", Jsonx.Str e.Manifest.digest) ]

let is_cancelled st id =
  Mutex.lock st.lock;
  let c = Hashtbl.mem st.cancelled id in
  Mutex.unlock st.lock;
  c

let mark_cancelled st id =
  Mutex.lock st.lock;
  Hashtbl.replace st.cancelled id ();
  Mutex.unlock st.lock

(* ------------------------------------------------------------------ *)
(* Per-cell result records                                             *)

let write_result st (e : Manifest.entry) (o : Cell.outcome) =
  let body =
    let base =
      [ ("id", Jsonx.Int e.Manifest.id);
        ("digest", Jsonx.Str e.Manifest.digest);
        ("protocol", Jsonx.Str e.Manifest.cell.Cell.protocol) ]
    in
    match o.Cell.result with
    | Ok out ->
      let m = out.Csap.Protocol.Outcome.measures in
      Jsonx.Obj
        (base
        @ [ ("state", Jsonx.Str "done");
            ("comm", Jsonx.Int m.Csap.Measures.comm);
            ("time", Jsonx.Float m.Csap.Measures.time);
            ("messages", Jsonx.Int m.Csap.Measures.messages);
            ( "retransmissions",
              Jsonx.Int out.Csap.Protocol.Outcome.retransmissions );
            ("restarts", Jsonx.Int out.Csap.Protocol.Outcome.restarts);
            ("wall_ms", Jsonx.Float o.Cell.wall_ms);
            ( "info",
              Jsonx.Obj
                (List.map
                   (fun (k, v) -> (k, Jsonx.Str v))
                   out.Csap.Protocol.Outcome.info) ) ])
    | Error err ->
      Jsonx.Obj
        (base
        @ [ ("state", Jsonx.Str "failed");
            ("error", Jsonx.Str (Cell.error_message err));
            ("code", Jsonx.Int (Cell.error_exit_code err));
            ("wall_ms", Jsonx.Float o.Cell.wall_ms) ])
  in
  let final =
    Filename.concat
      (results_dir ~dir:st.cfg.dir)
      (Printf.sprintf "cell-%d.json" e.Manifest.id)
  in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Jsonx.to_string body);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp final

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)

let bump_terminal st =
  let n = Atomic.fetch_and_add st.terminal 1 + 1 in
  match st.cfg.crash_after with
  | Some k when n >= k ->
    (* Crash simulation: die without unwinding, exactly as SIGKILL
       would, right after the n-th terminal state hit the manifest. *)
    Unix._exit 37
  | _ -> ()

let run_cell st (e : Manifest.entry) =
  Manifest.set_state st.man e Manifest.Running;
  event st "started" (cell_fields e);
  let o = Cell.run e.Manifest.cell in
  (match o.Cell.result with
  | Ok out ->
    let result = Manifest.result_of_outcome out ~wall_ms:o.Cell.wall_ms in
    write_result st e o;
    Manifest.set_state st.man e ~result Manifest.Done;
    event st "finished"
      (cell_fields e @ [ ("wall_ms", Jsonx.Float o.Cell.wall_ms) ])
  | Error err ->
    write_result st e o;
    Manifest.set_state st.man e
      ~error:(Cell.error_message err)
      Manifest.Failed;
    event st "failed"
      (cell_fields e @ [ ("error", Jsonx.Str (Cell.error_message err)) ]));
  bump_terminal st

let worker st () =
  let rec loop () =
    match Bqueue.pop st.queue with
    | None -> ()  (* closed and drained *)
    | Some id ->
      (match Manifest.find st.man id with
      | None -> ()
      | Some e ->
        if is_cancelled st id then begin
          Manifest.set_state st.man e Manifest.Cancelled;
          event st "cancelled" (cell_fields e);
          bump_terminal st
        end
        else run_cell st e);
      loop ()
  in
  loop ()

let spawn_workers st =
  Array.init st.cfg.workers (fun _ -> Domain.spawn (worker st))

(* ------------------------------------------------------------------ *)
(* Control and spool ingestion                                         *)

let process_ctrl st =
  let dir = ctrl_dir ~dir:st.cfg.dir in
  Array.iter
    (fun name ->
      let prefix = "cancel-" in
      let lp = String.length prefix in
      if String.length name > lp && String.sub name 0 lp = prefix then begin
        (match int_of_string_opt (String.sub name lp (String.length name - lp))
         with
        | Some id ->
          mark_cancelled st id;
          event st "cancel-requested" [ ("id", Jsonx.Int id) ]
        | None -> ());
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ()
      end)
    (Sys.readdir dir)

let spool_files st =
  let dir = spool_dir ~dir:st.cfg.dir in
  let files =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
  in
  List.map (Filename.concat dir) files

(* Ingest spool files only while the bounded queue has room: this
   thread is the sole producer, so a checked slot cannot be stolen.
   Files that do not fit stay in the spool — that is the backpressure
   contract (bounded memory, unbounded disk). *)
let ingest st =
  let rec take = function
    | [] -> ()
    | file :: rest when Bqueue.length st.queue < Bqueue.capacity st.queue ->
      let body =
        try
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error _ -> ""
      in
      (match Cell.of_json (String.trim body) with
      | Ok cell ->
        let e = Manifest.add st.man cell in
        event st "submitted"
          (cell_fields e @ [ ("file", Jsonx.Str (Filename.basename file)) ]);
        Bqueue.push st.queue e.Manifest.id;
        (try Sys.remove file with Sys_error _ -> ())
      | Error msg ->
        event st "rejected"
          [ ("file", Jsonx.Str (Filename.basename file));
            ("error", Jsonx.Str msg) ];
        (try Sys.rename file (file ^ ".bad") with Sys_error _ -> ()));
      take rest
    | _ :: _ -> ()  (* queue full: leave the rest spooled *)
  in
  take (spool_files st)

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)

let summarize st ~skipped =
  let _, _, d, f, c = Manifest.counts st.man in
  let skip_done, skip_failed, skip_cancelled = skipped in
  {
    total = List.length (Manifest.entries st.man);
    completed = d - skip_done;
    failed = f - skip_failed;
    cancelled = c - skip_cancelled;
    skipped = skip_done + skip_failed + skip_cancelled;
  }

let terminal_counts man =
  let _, _, d, f, c = Manifest.counts man in
  (d, f, c)

let finalize st doms ~skipped =
  Bqueue.close st.queue;
  Array.iter Domain.join doms;
  let s = summarize st ~skipped in
  event st "stopped"
    [ ("done", Jsonx.Int s.completed); ("failed", Jsonx.Int s.failed);
      ("cancelled", Jsonx.Int s.cancelled); ("skipped", Jsonx.Int s.skipped) ];
  close_out_noerr st.events;
  Manifest.close st.man;
  s

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let requeue_pending st =
  (* Cells never started re-run as-is; cells caught [Running] by a
     crash are re-run too — execution is deterministic, and their
     terminal line never reached the disk. *)
  List.iter
    (fun (e : Manifest.entry) ->
      match e.Manifest.state with
      | Manifest.Pending | Manifest.Running -> Bqueue.push st.queue e.Manifest.id
      | _ -> ())
    (Manifest.entries st.man)

let open_manifest ~resume ~dir =
  let path = manifest_path ~dir in
  if resume then begin
    if not (Sys.file_exists path) then
      invalid_arg (Printf.sprintf "Farm: no manifest to resume at %s" path);
    Manifest.load path
  end
  else begin
    if Sys.file_exists path then
      invalid_arg
        (Printf.sprintf
           "Farm: %s already exists; resume it or use a fresh directory" path);
    Manifest.create path
  end

let serve ?(resume = false) cfg =
  ensure_layout ~dir:cfg.dir;
  let man = open_manifest ~resume ~dir:cfg.dir in
  let st = make_state cfg man in
  let skipped = terminal_counts man in
  event st "serving"
    [ ("workers", Jsonx.Int cfg.workers);
      ("queue_cap", Jsonx.Int cfg.queue_cap);
      ("resume", Jsonx.Bool resume) ];
  let doms = spawn_workers st in
  requeue_pending st;
  let idle_since = ref None in
  let stop = ref false in
  while not !stop do
    process_ctrl st;
    ingest st;
    (match cfg.max_jobs with
    | Some quota when Atomic.get st.terminal >= quota -> stop := true
    | _ -> ());
    (if not !stop then
       let p, r, _, _, _ = Manifest.counts st.man in
       let busy = p > 0 || r > 0 || Bqueue.length st.queue > 0 in
       if busy then idle_since := None
       else
         match cfg.idle_exit_s with
         | None -> ()
         | Some limit -> (
           let now = Unix.gettimeofday () in
           match !idle_since with
           | None -> idle_since := Some now
           | Some t0 -> if now -. t0 >= limit then stop := true));
    if not !stop then Unix.sleepf cfg.poll_s
  done;
  finalize st doms ~skipped

let sweep ?(resume = false) cfg cells =
  ensure_layout ~dir:cfg.dir;
  let man = open_manifest ~resume ~dir:cfg.dir in
  if resume then begin
    (* The caller's cell list (when given) must be the checkpointed
       sweep: digests prove the skipped work is the requested work. *)
    if cells <> [] then begin
      let have = List.map (fun e -> e.Manifest.digest) (Manifest.entries man) in
      let want = List.map Cell.digest cells in
      if have <> want then
        invalid_arg "Farm.sweep: cell list does not match the manifest"
    end
  end
  else List.iter (fun c -> ignore (Manifest.add man c)) cells;
  let st = make_state cfg man in
  let skipped = terminal_counts man in
  event st "sweep"
    [ ("cells", Jsonx.Int (List.length (Manifest.entries man)));
      ("resume", Jsonx.Bool resume) ];
  process_ctrl st;
  let doms = spawn_workers st in
  requeue_pending st;
  finalize st doms ~skipped
