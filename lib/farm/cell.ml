module P = Csap.Protocol

type t = {
  protocol : string;
  family : string;
  n : int;
  w : int;
  seed : int;
  root : int;
  delay : string option;
  adversary : string option;
  loss : float;
  dup : float;
  fault_seed : int;
  reliable : bool;
  pulses : int option;
  strip : int option;
  k : int option;
  q : float option;
  domains : int option;
  trace : string option;
  check : bool;
}

let make ?(family = "random") ?(n = 16) ?(w = 8) ?(seed = 1) ?(root = 0)
    ?delay ?adversary ?(loss = 0.0) ?(dup = 0.0) ?(fault_seed = 1)
    ?(reliable = false) ?pulses ?strip ?k ?q ?domains ?trace ?(check = true)
    protocol =
  {
    protocol;
    family;
    n;
    w;
    seed;
    root;
    delay;
    adversary;
    loss;
    dup;
    fault_seed;
    reliable;
    pulses;
    strip;
    k;
    q;
    domains;
    trace;
    check;
  }

(* ------------------------------------------------------------------ *)
(* Canonical serialisation                                             *)

let to_json c =
  (* Fixed field order, [None]s omitted: the digest below hashes this
     text, so equal cells must serialise byte-identically. *)
  let opt_int name v rest =
    match v with None -> rest | Some i -> (name, Jsonx.Int i) :: rest
  in
  let fields =
    [ ("protocol", Jsonx.Str c.protocol); ("family", Jsonx.Str c.family);
      ("n", Jsonx.Int c.n); ("w", Jsonx.Int c.w); ("seed", Jsonx.Int c.seed);
      ("root", Jsonx.Int c.root) ]
    @ (match c.delay with
      | None -> []
      | Some d -> [ ("delay", Jsonx.Str d) ])
    @ (match c.adversary with
      | None -> []
      | Some a -> [ ("adversary", Jsonx.Str a) ])
    @ [ ("loss", Jsonx.Float c.loss); ("dup", Jsonx.Float c.dup);
        ("fault_seed", Jsonx.Int c.fault_seed);
        ("reliable", Jsonx.Bool c.reliable) ]
    @ opt_int "pulses" c.pulses
        (opt_int "strip" c.strip
           (opt_int "k" c.k
              ((match c.q with
               | None -> []
               | Some q -> [ ("q", Jsonx.Float q) ])
              @ opt_int "domains" c.domains
                  ((match c.trace with
                   | None -> []
                   | Some t -> [ ("trace", Jsonx.Str t) ])
                  @ [ ("check", Jsonx.Bool c.check) ]))))
  in
  Jsonx.to_string (Jsonx.Obj fields)

let of_json s =
  match Jsonx.parse s with
  | Error e -> Error ("cell: " ^ e)
  | Ok (Jsonx.Obj _ as j) -> (
    let m k = Jsonx.member k j in
    let int k d = Option.value ~default:d (Jsonx.to_int (m k)) in
    let flt k d = Option.value ~default:d (Jsonx.to_float (m k)) in
    let bool k d = Option.value ~default:d (Jsonx.to_bool (m k)) in
    match Jsonx.to_str (m "protocol") with
    | None -> Error "cell: missing \"protocol\" field"
    | Some protocol ->
      Ok
        {
          protocol;
          family = Option.value ~default:"random" (Jsonx.to_str (m "family"));
          n = int "n" 16;
          w = int "w" 8;
          seed = int "seed" 1;
          root = int "root" 0;
          delay = Jsonx.to_str (m "delay");
          adversary = Jsonx.to_str (m "adversary");
          loss = flt "loss" 0.0;
          dup = flt "dup" 0.0;
          fault_seed = int "fault_seed" 1;
          reliable = bool "reliable" false;
          pulses = Jsonx.to_int (m "pulses");
          strip = Jsonx.to_int (m "strip");
          k = Jsonx.to_int (m "k");
          q = Jsonx.to_float (m "q");
          domains = Jsonx.to_int (m "domains");
          trace = Jsonx.to_str (m "trace");
          check = bool "check" true;
        })
  | Ok _ -> Error "cell: expected a JSON object"

let digest c = Digest.to_hex (Digest.string (to_json c))

(* ------------------------------------------------------------------ *)
(* Graph and delay construction (the CLI's vocabulary)                 *)

let graph c =
  let rng = Csap_graph.Rng.create c.seed in
  let n = c.n and w = c.w in
  match c.family with
  | "path" -> Csap_graph.Generators.path n ~w
  | "cycle" -> Csap_graph.Generators.cycle n ~w
  | "star" -> Csap_graph.Generators.star n ~w
  | "complete" -> Csap_graph.Generators.complete n ~w
  | "grid" ->
    let side = max 2 (int_of_float (sqrt (float_of_int n))) in
    Csap_graph.Generators.grid side side ~w
  | "random" ->
    Csap_graph.Generators.random_connected rng n ~extra_edges:(2 * n) ~wmax:w
  | "geometric" ->
    Csap_graph.Generators.random_geometric rng n ~degree:4
      ~scale:(float_of_int (10 * w))
  | "gn" -> Csap_graph.Generators.lower_bound_gn n ~x:(max 2 w)
  | "chorded" -> Csap_graph.Generators.chorded_cycle n ~chord_w:w
  | "bkj" -> Csap_graph.Generators.bkj_star_cycle n ~heavy:w
  | _ -> invalid_arg ("unknown family: " ^ c.family)

let delay_of_spec spec =
  let prefixed p =
    let lp = String.length p in
    if String.length spec > lp && String.sub spec 0 lp = p then
      Some (String.sub spec lp (String.length spec - lp))
    else None
  in
  match spec with
  | "exact" -> Ok Csap_dsim.Delay.Exact
  | "near-zero" -> Ok Csap_dsim.Delay.Near_zero
  | "race" -> Ok Csap_dsim.Delay.race_crossing
  | _ -> (
    match prefixed "scaled:" with
    | Some c -> (
      match float_of_string_opt c with
      | Some c when c > 0.0 && c <= 1.0 -> Ok (Csap_dsim.Delay.Scaled c)
      | _ -> Error "scaled: factor must be a float in (0, 1]")
    | None -> (
      match prefixed "seeded:" with
      | Some s -> (
        match int_of_string_opt s with
        | Some s -> Ok (Csap_dsim.Delay.seeded s)
        | None -> Error "seeded: seed must be an integer")
      | None -> (
        match prefixed "slow-edge:" with
        | Some id -> (
          match int_of_string_opt id with
          | Some id when id >= 0 -> Ok (Csap_dsim.Delay.slow_edge id)
          | _ -> Error "slow-edge: edge id must be a non-negative int")
        | None ->
          Error
            (Printf.sprintf
               "unknown delay spec %S (exact | near-zero | race | scaled:C \
                | seeded:N | slow-edge:ID)"
               spec))))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type error =
  | Unknown_protocol of string
  | Bad_spec of string
  | Invariant_failed of string
  | Execution_error of string

let error_message = function
  | Unknown_protocol name -> Printf.sprintf "unknown protocol %S" name
  | Bad_spec msg -> msg
  | Invariant_failed msg -> "invariant FAILED: " ^ msg
  | Execution_error msg -> msg

let error_exit_code = function
  | Invariant_failed _ -> 1
  | Unknown_protocol _ -> 2
  | Bad_spec _ -> 3
  | Execution_error _ -> 4

type outcome = {
  result : (P.Outcome.t, error) result;
  wall_ms : float;
}

let run ?graph:pre ?trace_prefix c =
  let t0 = Unix.gettimeofday () in
  let finish result =
    { result; wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }
  in
  (* An explicit [trace_prefix] (the CLI's [--trace] on a direct run)
     wins over the path baked into the cell. *)
  let trace_prefix =
    match trace_prefix with Some _ -> trace_prefix | None -> c.trace
  in
  match P.find c.protocol with
  | None -> finish (Error (Unknown_protocol c.protocol))
  | Some entry -> (
    let spec =
      if c.loss < 0.0 || c.loss >= 1.0 then
        Error "loss must be a probability in [0, 1)"
      else if c.dup < 0.0 || c.dup >= 1.0 then
        Error "dup must be a probability in [0, 1)"
      else
        match c.delay with
        | None -> Ok None
        | Some spec -> Result.map Option.some (delay_of_spec spec)
    in
    let adversary =
      match c.adversary with
      | None -> Ok None
      | Some spec ->
        Result.map Option.some (Csap_dsim.Adversary.of_spec spec)
    in
    match (spec, adversary) with
    | Error msg, _ | _, Error msg -> finish (Error (Bad_spec msg))
    | Ok delay, Ok adversary -> (
      match (match pre with Some g -> g | None -> graph c) with
      | exception Invalid_argument msg -> finish (Error (Bad_spec msg))
      | g -> (
        let faults =
          if c.loss > 0.0 || c.dup > 0.0 then
            Some (Csap_dsim.Fault.seeded ~loss:c.loss ~dup:c.dup c.fault_seed)
          else None
        in
        let cfg =
          P.Run.make ~root:c.root ?delay ?adversary ?faults
            ~reliable:c.reliable ?trace:trace_prefix ?pulses:c.pulses
            ?strip:c.strip ?k:c.k ?q:c.q ?domains:c.domains g
        in
        match P.execute entry cfg with
        (* [validate] rejects roots out of range and capability
           mismatches with [Invalid_argument]: a bad spec, not a bug. *)
        | exception Invalid_argument msg -> finish (Error (Bad_spec msg))
        | exception e -> finish (Error (Execution_error (Printexc.to_string e)))
        | o ->
          if c.check then
            let (module M : P.S) = entry in
            match M.invariant cfg o with
            | Ok () -> finish (Ok o)
            | Error msg -> finish (Error (Invariant_failed msg))
            | exception e ->
              finish (Error (Execution_error (Printexc.to_string e)))
          else finish (Ok o))))

let measures_json (o : P.Outcome.t) ~wall_ms =
  let m = o.P.Outcome.measures in
  Jsonx.to_string
    (Jsonx.Obj
       [ ("comm", Jsonx.Int m.Csap.Measures.comm);
         ("time", Jsonx.Float m.Csap.Measures.time);
         ("messages", Jsonx.Int m.Csap.Measures.messages);
         ("retransmissions", Jsonx.Int o.P.Outcome.retransmissions);
         ("restarts", Jsonx.Int o.P.Outcome.restarts);
         ("wall_ms", Jsonx.Float wall_ms) ])
