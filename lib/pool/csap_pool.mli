(** A reusable work-stealing pool of OCaml 5 domains.

    Extracted and generalised from the benchmark harness's ad-hoc pool:
    a [run] fans a fixed number of independent tasks out over the pool's
    domains, claiming task indices from a shared atomic counter, and
    joins every worker before returning — so the caller may freely read
    anything the tasks wrote. Spawning happens per [run] (domains are
    not parked between runs); what persists in a [t] is the
    configuration and the cumulative per-domain busy time, which the
    benchmark harness reports next to its wall-clock numbers.

    Determinism: tasks are claimed in an arbitrary order, so tasks must
    be independent; callers wanting deterministic results should have
    task [i] write only slot [i] of a preallocated result array and
    reduce sequentially after [run] returns (see [Paths.extrema]).

    Nesting: [run] only spawns from the main domain. Called from a
    worker domain (e.g. a parallel analysis inside a pooled benchmark
    job) it degrades to a sequential loop on the calling domain rather
    than oversubscribing the machine. *)

type t

(** [create ?domains ()] is a pool of [domains] workers (the calling
    domain counts as worker 0; [domains - 1] further domains are spawned
    per [run]). Default: [Domain.recommended_domain_count ()]. Raises
    [Invalid_argument] when [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** Number of workers, including the calling domain. *)
val domains : t -> int

(** The shared default pool, sized [Domain.recommended_domain_count ()];
    created on first use. *)
val default : unit -> t

(** [run t ~tasks f] executes [f ~worker i] for every [i] in
    [0 .. tasks - 1] exactly once and returns when all have finished.
    [worker] is the index ([0 .. domains t - 1]) of the domain running
    the task — use it to pick a per-domain scratch buffer. If any task
    raises, one of the exceptions is re-raised in the caller after all
    workers have joined.

    A [t] must not be shared by two concurrent [run]s. *)
val run : t -> tasks:int -> (worker:int -> int -> unit) -> unit

(** Cumulative wall-clock ms each worker slot has spent executing tasks
    across every [run] so far (a fresh copy; index = worker). *)
val busy_ms : t -> float array

(** Reset the cumulative busy counters to zero. *)
val reset_stats : t -> unit

(** A bounded blocking queue for long-lived worker domains.

    [run] fans out a {e fixed} batch of tasks; a job {e server} instead
    keeps worker domains parked on a queue whose bound is the
    backpressure contract: producers that outrun the workers block (or
    see [try_push = false]) instead of growing an unbounded backlog.
    Safe across OCaml 5 domains ([Mutex]/[Condition] from the stdlib);
    FIFO per queue. *)
module Bqueue : sig
  type 'a t

  (** [create ~capacity ()] is an empty queue admitting at most
      [capacity] unconsumed elements. Raises [Invalid_argument] when
      [capacity < 1]. *)
  val create : capacity:int -> unit -> 'a t

  (** Elements currently queued (a racy snapshot). *)
  val length : 'a t -> int

  val capacity : 'a t -> int

  (** [try_push t x] enqueues [x] unless the queue is full or closed;
      [false] means "not accepted" (the backpressure signal). *)
  val try_push : 'a t -> 'a -> bool

  (** [push t x] blocks while the queue is full. Raises
      [Invalid_argument] if the queue is (or becomes) closed. *)
  val push : 'a t -> 'a -> unit

  (** [pop t] blocks while the queue is empty; [None] once the queue is
      closed {e and} drained — the worker-shutdown signal. *)
  val pop : 'a t -> 'a option

  (** Close the queue: no further pushes are accepted; queued elements
      drain; blocked and future [pop]s return [None] once empty.
      Idempotent. *)
  val close : 'a t -> unit

  val is_closed : 'a t -> bool
end
