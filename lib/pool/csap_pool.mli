(** A reusable work-stealing pool of OCaml 5 domains.

    Extracted and generalised from the benchmark harness's ad-hoc pool:
    a [run] fans a fixed number of independent tasks out over the pool's
    domains, claiming task indices from a shared atomic counter, and
    joins every worker before returning — so the caller may freely read
    anything the tasks wrote. Spawning happens per [run] (domains are
    not parked between runs); what persists in a [t] is the
    configuration and the cumulative per-domain busy time, which the
    benchmark harness reports next to its wall-clock numbers.

    Determinism: tasks are claimed in an arbitrary order, so tasks must
    be independent; callers wanting deterministic results should have
    task [i] write only slot [i] of a preallocated result array and
    reduce sequentially after [run] returns (see [Paths.extrema]).

    Nesting: [run] only spawns from the main domain. Called from a
    worker domain (e.g. a parallel analysis inside a pooled benchmark
    job) it degrades to a sequential loop on the calling domain rather
    than oversubscribing the machine. *)

type t

(** [create ?domains ()] is a pool of [domains] workers (the calling
    domain counts as worker 0; [domains - 1] further domains are spawned
    per [run]). Default: [Domain.recommended_domain_count ()]. Raises
    [Invalid_argument] when [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** Number of workers, including the calling domain. *)
val domains : t -> int

(** The shared default pool, sized [Domain.recommended_domain_count ()];
    created on first use. *)
val default : unit -> t

(** [run t ~tasks f] executes [f ~worker i] for every [i] in
    [0 .. tasks - 1] exactly once and returns when all have finished.
    [worker] is the index ([0 .. domains t - 1]) of the domain running
    the task — use it to pick a per-domain scratch buffer. If any task
    raises, one of the exceptions is re-raised in the caller after all
    workers have joined.

    A [t] must not be shared by two concurrent [run]s. *)
val run : t -> tasks:int -> (worker:int -> int -> unit) -> unit

(** Cumulative wall-clock ms each worker slot has spent executing tasks
    across every [run] so far (a fresh copy; index = worker). *)
val busy_ms : t -> float array

(** Reset the cumulative busy counters to zero. *)
val reset_stats : t -> unit
