type t = {
  domains : int;
  busy : float array;  (* cumulative per-worker busy time, in ms *)
}

let create ?domains () =
  let domains =
    match domains with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some d ->
      if d < 1 then invalid_arg "Csap_pool.create: domains < 1";
      d
  in
  { domains; busy = Array.make domains 0.0 }

let domains t = t.domains

let default_pool = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.lock default_lock;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
      let t = create () in
      default_pool := Some t;
      t
  in
  Mutex.unlock default_lock;
  t

let busy_ms t = Array.copy t.busy
let reset_stats t = Array.fill t.busy 0 (Array.length t.busy) 0.0

(* Each worker claims task indices from [next] until exhaustion and adds
   its busy time to its own [busy] slot; [Domain.join] publishes the
   writes, so the post-join reads race with nothing. The first exception
   (by worker claim order) is stashed and re-raised after every worker
   has joined, keeping the "all tasks attempted or abandoned, no domain
   leaked" invariant. *)
(* A classic bounded monitor queue over a ring buffer. Two conditions:
   [not_full] wakes blocked producers, [not_empty] wakes parked workers.
   [close] broadcasts both so every blocked party re-examines the
   state. *)
module Bqueue = struct
  type 'a t = {
    lock : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    buf : 'a option array;  (* ring; [None] marks a vacated slot *)
    mutable head : int;  (* next pop *)
    mutable len : int;
    mutable closed : bool;
  }

  let create ~capacity () =
    if capacity < 1 then invalid_arg "Bqueue.create: capacity < 1";
    {
      lock = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      buf = Array.make capacity None;
      head = 0;
      len = 0;
      closed = false;
    }

  let capacity t = Array.length t.buf

  let length t =
    Mutex.lock t.lock;
    let n = t.len in
    Mutex.unlock t.lock;
    n

  let[@inline] unlocked_push t x =
    t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
    t.len <- t.len + 1;
    Condition.signal t.not_empty

  let try_push t x =
    Mutex.lock t.lock;
    let ok = (not t.closed) && t.len < Array.length t.buf in
    if ok then unlocked_push t x;
    Mutex.unlock t.lock;
    ok

  let push t x =
    Mutex.lock t.lock;
    while (not t.closed) && t.len = Array.length t.buf do
      Condition.wait t.not_full t.lock
    done;
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Bqueue.push: closed"
    end;
    unlocked_push t x;
    Mutex.unlock t.lock

  let pop t =
    Mutex.lock t.lock;
    while t.len = 0 && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    let r =
      if t.len = 0 then None (* closed and drained *)
      else begin
        let x = t.buf.(t.head) in
        (* Null the vacated slot so a parked queue retains nothing. *)
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        Condition.signal t.not_full;
        x
      end
    in
    Mutex.unlock t.lock;
    r

  let close t =
    Mutex.lock t.lock;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.lock

  let is_closed t =
    Mutex.lock t.lock;
    let c = t.closed in
    Mutex.unlock t.lock;
    c
end

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Csap_pool.run: negative tasks";
  if tasks > 0 then begin
    let next = Atomic.make 0 in
    let failed : exn option Atomic.t = Atomic.make None in
    let worker w =
      let t0 = Unix.gettimeofday () in
      let rec loop () =
        if Atomic.get failed = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < tasks then begin
            (try f ~worker:w i
             with e ->
               ignore (Atomic.compare_and_set failed None (Some e)));
            loop ()
          end
        end
      in
      loop ();
      t.busy.(w) <- t.busy.(w) +. ((Unix.gettimeofday () -. t0) *. 1000.0)
    in
    let spawned =
      if t.domains <= 1 || tasks <= 1 || not (Domain.is_main_domain ()) then 0
      else min (t.domains - 1) (tasks - 1)
    in
    if spawned = 0 then worker 0
    else begin
      let doms = Array.init spawned (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
      worker 0;
      Array.iter Domain.join doms
    end;
    match Atomic.get failed with
    | Some e -> raise e
    | None -> ()
  end
