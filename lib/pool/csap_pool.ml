type t = {
  domains : int;
  busy : float array;  (* cumulative per-worker busy time, in ms *)
}

let create ?domains () =
  let domains =
    match domains with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some d ->
      if d < 1 then invalid_arg "Csap_pool.create: domains < 1";
      d
  in
  { domains; busy = Array.make domains 0.0 }

let domains t = t.domains

let default_pool = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.lock default_lock;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
      let t = create () in
      default_pool := Some t;
      t
  in
  Mutex.unlock default_lock;
  t

let busy_ms t = Array.copy t.busy
let reset_stats t = Array.fill t.busy 0 (Array.length t.busy) 0.0

(* Each worker claims task indices from [next] until exhaustion and adds
   its busy time to its own [busy] slot; [Domain.join] publishes the
   writes, so the post-join reads race with nothing. The first exception
   (by worker claim order) is stashed and re-raised after every worker
   has joined, keeping the "all tasks attempted or abandoned, no domain
   leaked" invariant. *)
let run t ~tasks f =
  if tasks < 0 then invalid_arg "Csap_pool.run: negative tasks";
  if tasks > 0 then begin
    let next = Atomic.make 0 in
    let failed : exn option Atomic.t = Atomic.make None in
    let worker w =
      let t0 = Unix.gettimeofday () in
      let rec loop () =
        if Atomic.get failed = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < tasks then begin
            (try f ~worker:w i
             with e ->
               ignore (Atomic.compare_and_set failed None (Some e)));
            loop ()
          end
        end
      in
      loop ();
      t.busy.(w) <- t.busy.(w) +. ((Unix.gettimeofday () -. t0) *. 1000.0)
    in
    let spawned =
      if t.domains <= 1 || tasks <= 1 || not (Domain.is_main_domain ()) then 0
      else min (t.domains - 1) (tasks - 1)
    in
    if spawned = 0 then worker 0
    else begin
      let doms = Array.init spawned (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
      worker 0;
      Array.iter Domain.join doms
    end;
    match Atomic.get failed with
    | Some e -> raise e
    | None -> ()
  end
