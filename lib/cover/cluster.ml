module Vset = Set.Make (Int)

type t = Vset.t

let of_list = Vset.of_list

let is_connected g s =
  match Vset.choose_opt s with
  | None -> false
  | Some start ->
    let visited = Hashtbl.create (Vset.cardinal s) in
    Hashtbl.replace visited start ();
    let stack = ref [ start ] in
    let rec loop () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        Csap_graph.Graph.iter_neighbors g v (fun u _ _ ->
            if Vset.mem u s && not (Hashtbl.mem visited u) then begin
              Hashtbl.replace visited u ();
              stack := u :: !stack
            end);
        loop ()
    in
    loop ();
    Hashtbl.length visited = Vset.cardinal s

let dijkstra_within g s ~src =
  if not (Vset.mem src s) then
    invalid_arg "Cluster.dijkstra_within: src outside cluster";
  let n = Csap_graph.Graph.n g in
  let dist = Array.make n max_int in
  let heap = Csap_graph.Indexed_heap.create n in
  dist.(src) <- 0;
  Csap_graph.Indexed_heap.insert heap src 0;
  let rec loop () =
    let u = Csap_graph.Indexed_heap.pop_min heap in
    if u >= 0 then begin
      let du = dist.(u) in
      Csap_graph.Graph.iter_neighbors g u (fun v w _ ->
          if Vset.mem v s && du + w < dist.(v) then begin
            dist.(v) <- du + w;
            Csap_graph.Indexed_heap.push heap v (du + w)
          end);
      loop ()
    end
  in
  loop ();
  dist

let eccentricity_within g s v =
  let dist = dijkstra_within g s ~src:v in
  Vset.fold (fun u acc -> max acc dist.(u)) s 0

let radius_and_center g s =
  if Vset.is_empty s then invalid_arg "Cluster.radius_and_center: empty";
  if not (is_connected g s) then
    invalid_arg "Cluster.radius_and_center: cluster not connected";
  Vset.fold
    (fun v ((best, _) as acc) ->
      let e = eccentricity_within g s v in
      if e < best then (e, v) else acc)
    s (max_int, -1)

let radius g s = fst (radius_and_center g s)

let is_cover g clusters =
  let n = Csap_graph.Graph.n g in
  let covered = Array.make n false in
  List.iter (fun s -> Vset.iter (fun v -> covered.(v) <- true) s) clusters;
  Array.for_all Fun.id covered

let max_degree n clusters =
  let deg = Array.make n 0 in
  List.iter
    (fun s -> Vset.iter (fun v -> deg.(v) <- deg.(v) + 1) s)
    clusters;
  Array.fold_left max 0 deg

let max_radius g clusters =
  List.fold_left (fun acc s -> max acc (radius g s)) 0 clusters

let subsumes ~coarse ~fine =
  List.for_all
    (fun s -> List.exists (fun t -> Vset.subset s t) coarse)
    fine
