type cluster_tree = {
  tree_id : int;
  root : int;
  members : int list;
  parent : int array;
  parent_weight : int array;
  depth : int array;
  height : int;
}

let members_set t = Cluster.of_list t.members

let children t =
  let tbl = Hashtbl.create (List.length t.members) in
  List.iter (fun v -> Hashtbl.replace tbl v []) t.members;
  List.iter
    (fun v ->
      let p = t.parent.(v) in
      if p >= 0 then Hashtbl.replace tbl p (v :: Hashtbl.find tbl p))
    t.members;
  (* Deterministic child order. *)
  Hashtbl.iter (fun v cs -> Hashtbl.replace tbl v (List.sort compare cs)) tbl;
  tbl

let spt_of_cluster g ~tree_id c ~center =
  let n = Csap_graph.Graph.n g in
  if not (Cluster.Vset.mem center c) then
    invalid_arg "Tree_cover.spt_of_cluster: center outside cluster";
  let dist = Array.make n max_int in
  let parent = Array.make n (-2) in
  let parent_weight = Array.make n 0 in
  let heap = Csap_graph.Indexed_heap.create n in
  dist.(center) <- 0;
  parent.(center) <- -1;
  Csap_graph.Indexed_heap.insert heap center 0;
  let rec loop () =
    let u = Csap_graph.Indexed_heap.pop_min heap in
    if u >= 0 then begin
      let du = dist.(u) in
      Csap_graph.Graph.iter_neighbors g u (fun v w _ ->
          if Cluster.Vset.mem v c then begin
            let dv = du + w in
            (* A settled [v] has dist(v) <= du < dv, so neither branch
               fires for it; no explicit settled set needed. *)
            if dv < dist.(v) then begin
              dist.(v) <- dv;
              parent.(v) <- u;
              parent_weight.(v) <- w;
              Csap_graph.Indexed_heap.push heap v dv
            end
            else if dv = dist.(v) && parent.(v) >= 0 && u < parent.(v) then begin
              parent.(v) <- u;
              parent_weight.(v) <- w
            end
          end);
      loop ()
    end
  in
  loop ();
  Cluster.Vset.iter
    (fun v ->
      if dist.(v) = max_int then
        invalid_arg "Tree_cover.spt_of_cluster: cluster not connected")
    c;
  let members = Cluster.Vset.elements c in
  let depth = Array.make n (-1) in
  List.iter (fun v -> depth.(v) <- dist.(v)) members;
  let height = List.fold_left (fun acc v -> max acc dist.(v)) 0 members in
  { tree_id; root = center; members; parent; parent_weight; depth; height }

type t = {
  trees : cluster_tree list;
  k : int;
  d : int;
}

let build g =
  let n = Csap_graph.Graph.n g in
  if n < 2 then invalid_arg "Tree_cover.build: graph too small";
  let d = Csap_graph.Paths.max_neighbor_distance g in
  (* Initial cover: one cluster per edge, holding a shortest u-v path. *)
  let path_cluster (e : Csap_graph.Graph.edge) =
    let { Csap_graph.Paths.dist = _; parent; _ } =
      Csap_graph.Paths.dijkstra g ~src:e.u
    in
    let rec walk v acc =
      if v = e.u then v :: acc else walk parent.(v) (v :: acc)
    in
    Cluster.of_list (walk e.v [])
  in
  let clusters =
    Array.to_list (Csap_graph.Graph.edges g) |> List.map path_cluster
  in
  let k =
    max 1 (int_of_float (ceil (log (float_of_int n) /. log 2.0)))
  in
  let coarse = Coarsen.coarsen g ~clusters ~k in
  let trees =
    List.mapi
      (fun i c ->
        let _, center = Cluster.radius_and_center g c in
        spt_of_cluster g ~tree_id:i c ~center)
      coarse
  in
  { trees; k; d }

let trees_at t v =
  List.filter_map
    (fun tr -> if tr.depth.(v) >= 0 then Some tr.tree_id else None)
    t.trees

let covering_tree t ~u ~v =
  let rec scan = function
    | [] -> failwith "Tree_cover.covering_tree: property 3 violated"
    | tr :: rest ->
      if tr.depth.(u) >= 0 && tr.depth.(v) >= 0 then tr.tree_id else scan rest
  in
  scan t.trees

let max_edge_sharing g t =
  Array.fold_left
    (fun acc (e : Csap_graph.Graph.edge) ->
      let count =
        List.length
          (List.filter
             (fun tr -> tr.depth.(e.u) >= 0 && tr.depth.(e.v) >= 0)
             t.trees)
      in
      max acc count)
    0 (Csap_graph.Graph.edges g)

let max_height t =
  List.fold_left (fun acc tr -> max acc tr.height) 0 t.trees
