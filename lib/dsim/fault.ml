type disposition =
  | Pass
  | Drop
  | Duplicate of float

type outage = {
  edge : int option;
  from_time : float;
  until_time : float;
}

type crash = {
  vertex : int;
  at : float;
  restart : float;
}

type plan = {
  name : string;
  disposition :
    edge_id:int -> dir:int -> nth:int -> now:float -> disposition;
  crashes : crash list;
}

let none =
  {
    name = "none";
    disposition = (fun ~edge_id:_ ~dir:_ ~nth:_ ~now:_ -> Pass);
    crashes = [];
  }

let validate_crashes name crashes =
  List.iter
    (fun { vertex; at; restart } ->
      if vertex < 0 then
        invalid_arg
          (Printf.sprintf "Fault.%s: negative crash vertex %d" name vertex);
      if not (at >= 0.0 && at < infinity) then
        invalid_arg
          (Printf.sprintf "Fault.%s: crash time %g not finite, >= 0" name at);
      if not (restart > at && restart < infinity) then
        invalid_arg
          (Printf.sprintf
             "Fault.%s: restart %g must be finite and after crash %g" name
             restart at))
    crashes

let validate_outages name outages =
  List.iter
    (fun { edge; from_time; until_time } ->
      (match edge with
      | Some e when e < 0 ->
        invalid_arg
          (Printf.sprintf "Fault.%s: negative outage edge %d" name e)
      | _ -> ());
      if not (from_time >= 0.0 && until_time > from_time) then
        invalid_arg
          (Printf.sprintf "Fault.%s: bad outage window [%g, %g)" name
             from_time until_time))
    outages

let make ?(crashes = []) ~name disposition =
  validate_crashes "make" crashes;
  { name; disposition; crashes }

let in_outage outages ~edge_id ~now =
  List.exists
    (fun { edge; from_time; until_time } ->
      (match edge with None -> true | Some e -> e = edge_id)
      && now >= from_time && now < until_time)
    outages

(* Salts separating the loss, duplication and duplicate-delay streams of
   one (seed, edge, dir, nth) identity; arbitrary odd constants. *)
let salt_loss = 0x1d
let salt_dup = 0x3b
let salt_dup_delay = 0x71

let seeded ?(loss = 0.0) ?(dup = 0.0) ?(outages = []) ?(crashes = []) seed =
  if not (loss >= 0.0 && loss < 1.0) then
    invalid_arg "Fault.seeded: loss must be in [0, 1)";
  if not (dup >= 0.0 && dup <= 1.0) then
    invalid_arg "Fault.seeded: dup must be in [0, 1]";
  validate_outages "seeded" outages;
  validate_crashes "seeded" crashes;
  {
    name = Printf.sprintf "seeded-%d" seed;
    disposition =
      (fun ~edge_id ~dir ~nth ~now ->
        if in_outage outages ~edge_id ~now then Drop
        else
          let slot = (2 * edge_id) + dir in
          if Delay.hash_unit seed slot nth salt_loss < loss then Drop
          else if Delay.hash_unit seed slot nth salt_dup < dup then
            (* The extra copy's delay is a fresh draw in (0, 1] of the
               edge weight, independent of the primary copy's delay. *)
            Duplicate (1.0 -. Delay.hash_unit seed slot nth salt_dup_delay)
          else Pass);
    crashes;
  }

let pp ppf t =
  Format.fprintf ppf "fault(%s%s)" t.name
    (match t.crashes with
    | [] -> ""
    | cs -> Printf.sprintf ", %d crashes" (List.length cs))
