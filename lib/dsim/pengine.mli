(** Partitioned discrete-event engine: the sequential {!Engine} semantics
    executed across K OCaml domains.

    The graph is split into K blocks ({!Csap_graph.Partition}); each
    domain owns one block's vertices, their handlers and a private event
    queue. Synchronisation is conservative: windows of simulated time
    whose width is the {e lookahead} — the minimum static delay lower
    bound over cut edges ({!Delay.lower_bound}) — run without
    communication, and cross-partition sends are exchanged through
    single-producer/single-consumer mailboxes drained at window barriers.
    When no positive bound exists (pure oracles), windows degenerate to
    single instants processed in lockstep sub-rounds bounded in {e key
    space}: each partition may process an event only while its key is
    below every peer's published minimum pending key at that instant.

    The engine is {b bit-identical} to {!Engine}: the sequential tie-break
    order (time, push sequence) is reconstructed from structural event
    keys — setup index, parent key plus birth rank, and dense global
    ranks assigned by an identical merge-sort of every partition's batch
    at each window barrier — so a protocol run under K domains produces
    exactly the metrics, final state and delivery order of the
    single-domain run.

    Restrictions compared to {!Engine}: the delay model must be
    order-independent ({!Delay.order_independent} — [Uniform]/[Jitter]
    advance shared RNG state in global sampling order and are rejected),
    and there is no fault-plan or trace support. Handlers receive a
    {!ctx} naming the executing partition instead of the engine itself;
    protocol state must be partitioned so each vertex's data is written
    only by its owning domain. *)

type 'msg t
(** A partitioned engine carrying ['msg]-typed payloads. *)

type 'msg ctx
(** Execution context of one partition, passed to every handler; all
    sends and reads of the clock go through it. *)

val create :
  ?delay:Delay.t ->
  ?partition:Csap_graph.Partition.t ->
  domains:int ->
  Csap_graph.Graph.t ->
  'msg t
(** [create ?delay ?partition ~domains g] readies an engine over [g]
    split into [domains] blocks ([>= 1]). [partition] defaults to
    {!Csap_graph.Partition.striped}; when given it must be a partition of
    [g] into exactly [domains] blocks. Raises [Invalid_argument] if the
    delay model is not order-independent. *)

val set_handler :
  'msg t -> int -> ('msg ctx -> src:int -> 'msg -> unit) -> unit
(** [set_handler t v f] installs [f] as vertex [v]'s message handler.
    Setup-time only. *)

val schedule :
  'msg t -> vertex:int -> delay:float -> ('msg ctx -> unit) -> unit
(** [schedule t ~vertex ~delay f] enqueues a setup-time event at absolute
    time [delay] on [vertex]'s partition (the bootstrap, mirroring
    {!Engine.schedule}). Setup events sort below all runtime events at
    equal times, in installation order — the sequential push order. *)

val send : 'msg ctx -> src:int -> dst:int -> 'msg -> unit
(** [send ctx ~src ~dst m] sends [m] along the edge [(src, dst)] with the
    engine's delay model and per-directed-edge FIFO clamp, identical to
    {!Engine.send}. [src] must belong to the executing partition (its
    send counters are partition-owned). *)

val schedule_ctx :
  'msg ctx -> vertex:int -> delay:float -> ('msg ctx -> unit) -> unit
(** [schedule_ctx ctx ~vertex ~delay f] schedules [f] on [vertex]'s
    partition at [now ctx +. delay] from inside a handler. *)

val now : 'msg ctx -> float
(** Simulated time of the event being processed. *)

val ctx_partition : 'msg ctx -> int
(** Index of the executing partition. *)

val run : 'msg t -> int
(** [run t] spawns [domains - 1] additional domains, executes every
    pending event to quiescence and returns the total number of events
    processed (equal to the sequential engine's count). If a handler
    raises, all domains unwind and the exception is re-raised (for the
    lowest-numbered failing partition). *)

val reset : ?delay:Delay.t -> 'msg t -> unit
(** [reset ?delay t] clears handlers, queues, mailboxes, FIFO clamps,
    send counters and metrics — same contract as {!Engine.reset}; the
    partition is kept. A new [delay] must be order-independent and
    recomputes the lookahead. *)

val metrics : 'msg t -> Metrics.t
(** Aggregated metrics, valid after {!run}: message and weighted-comm
    totals are summed across partitions, completion and last-delivery
    times are maxima — identical to the sequential run's metrics. *)

val graph : 'msg t -> Csap_graph.Graph.t
val partition : 'msg t -> Csap_graph.Partition.t
val domains : 'msg t -> int

val lookahead : 'msg t -> float
(** Current conservative window width: [infinity] when no cut edge
    exists, [0] when some cut edge has no static delay lower bound
    (lockstep mode). *)
