type kind =
  | Send
  | Deliver
  | Local
  | Dropped
  | Dup
  | Decision

type event = {
  kind : kind;
  time : float;
  seq : int;
  edge : int;
  dir : int;
  nth : int;
  src : int;
  dst : int;
  delay : float;
}

let dummy_event =
  {
    kind = Local;
    time = 0.0;
    seq = 0;
    edge = -1;
    dir = -1;
    nth = -1;
    src = -1;
    dst = -1;
    delay = 0.0;
  }

(* [capacity = 0] is an unbounded append-only buffer (doubling array);
   [capacity > 0] is a ring keeping the last [capacity] events, with the
   overwritten prefix counted in [dropped]. *)
type t = {
  capacity : int;
  mutable buf : event array;
  mutable len : int;
  mutable start : int;
  mutable dropped : int;
}

let create ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  { capacity; buf = [||]; len = 0; start = 0; dropped = 0 }

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy_event;
  t.len <- 0;
  t.start <- 0;
  t.dropped <- 0

let length t = t.len
let dropped t = t.dropped
let capacity t = t.capacity

let add t ev =
  if t.capacity > 0 then begin
    if Array.length t.buf < t.capacity then begin
      let buf = Array.make t.capacity dummy_event in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    if t.len < t.capacity then begin
      t.buf.((t.start + t.len) mod t.capacity) <- ev;
      t.len <- t.len + 1
    end
    else begin
      t.buf.(t.start) <- ev;
      t.start <- (t.start + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end
  end
  else begin
    let cap = Array.length t.buf in
    if t.len = cap then begin
      let buf = Array.make (max 64 (2 * cap)) dummy_event in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    t.buf.(t.len) <- ev;
    t.len <- t.len + 1
  end

let events t =
  Array.init t.len (fun i ->
      if t.capacity > 0 then t.buf.((t.start + i) mod t.capacity)
      else t.buf.(i))

let equal a b = a.len = b.len && events a = events b

(* An adaptive run's trace interleaves Decision records with the events
   proper; its oblivious replay emits none, so replay comparisons strip
   them first. Unbounded result: a stripped trace is a replay artifact,
   not a live ring. *)
let without_decisions t =
  let r = create () in
  Array.iter
    (fun ev -> match ev.kind with Decision -> () | _ -> add r ev)
    (events t);
  r.dropped <- t.dropped;
  r

let decisions t =
  Array.of_seq
    (Seq.filter (fun ev -> ev.kind = Decision) (Array.to_seq (events t)))

(* ---- JSONL ------------------------------------------------------------ *)

let kind_to_string = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Local -> "local"
  | Dropped -> "dropped"
  | Dup -> "dup"
  | Decision -> "decision"

let kind_of_string = function
  | "send" -> Send
  | "deliver" -> Deliver
  | "local" -> Local
  | "dropped" -> Dropped
  | "dup" -> Dup
  | "decision" -> Decision
  | s -> invalid_arg (Printf.sprintf "unknown kind %S" s)

(* %.17g round-trips every finite double; the engine rejects non-finite
   delays so no nan/inf ever reaches the writer. *)
let event_to_json ev =
  Printf.sprintf
    "{\"kind\":\"%s\",\"time\":%.17g,\"seq\":%d,\"edge\":%d,\"dir\":%d,\"nth\":%d,\"src\":%d,\"dst\":%d,\"delay\":%.17g}"
    (kind_to_string ev.kind) ev.time ev.seq ev.edge ev.dir ev.nth ev.src
    ev.dst ev.delay

let event_of_json line =
  try
    Scanf.sscanf line
      "{\"kind\":%S,\"time\":%f,\"seq\":%d,\"edge\":%d,\"dir\":%d,\"nth\":%d,\"src\":%d,\"dst\":%d,\"delay\":%f}"
      (fun kind time seq edge dir nth src dst delay ->
        { kind = kind_of_string kind; time; seq; edge; dir; nth; src; dst;
          delay })
  with Scanf.Scan_failure _ | End_of_file | Failure _ ->
    invalid_arg (Printf.sprintf "unparsable line %S" line)

let to_jsonl t =
  let buf = Buffer.create (64 * (t.len + 1)) in
  Array.iter
    (fun ev ->
      Buffer.add_string buf (event_to_json ev);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

(* Parse errors carry the 1-based line number (and the filename, when the
   input came from a file): a checkpoint-resume reading a half-written
   JSONL must be able to say exactly where the corruption starts. *)
let of_jsonl ?file s =
  let t = create () in
  List.iteri
    (fun i raw ->
      let line = String.trim raw in
      if line <> "" then
        match event_of_json line with
        | ev -> add t ev
        | exception Invalid_argument msg ->
          let where =
            match file with
            | None -> Printf.sprintf "line %d" (i + 1)
            | Some f -> Printf.sprintf "%s: line %d" f (i + 1)
          in
          invalid_arg (Printf.sprintf "Trace.of_jsonl: %s: %s" where msg))
    (String.split_on_char '\n' s);
  t

let save_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_jsonl ~file:path (really_input_string ic n))

(* ---- replay ----------------------------------------------------------- *)

let recorded ?(name = "recorded") t =
  if t.dropped > 0 then
    invalid_arg
      (Printf.sprintf
         "Trace.recorded: trace is a ring that dropped %d events; replay \
          needs a full (unbounded) trace"
         t.dropped);
  let tbl = Hashtbl.create (max 16 t.len) in
  Array.iter
    (fun ev ->
      match ev.kind with
      (* Decision records (adaptive adversaries) carry the same delay as
         the Send they precede, so a trace filtered down to decisions
         alone still replays; on a full trace the Send overwrite is a
         no-op. *)
      | Send | Decision ->
        Hashtbl.replace tbl ((2 * ev.edge) + ev.dir, ev.nth) ev.delay
      (* Dropped sends never sampled the delay model and Dup copies take
         their delay from the fault plan, so neither feeds the oracle:
         replaying under the same plan reproduces both without it. *)
      | Deliver | Local | Dropped | Dup -> ())
    (events t);
  Delay.oracle ~name (fun ~edge_id ~dir ~nth ~w:_ ->
      match Hashtbl.find_opt tbl ((2 * edge_id) + dir, nth) with
      | Some d -> d
      | None ->
        invalid_arg
          (Printf.sprintf
             "Trace.recorded: no recorded send for edge %d dir %d nth %d \
              (replayed execution diverged from the recording)"
             edge_id dir nth))

(* ---- ambient collection ---------------------------------------------- *)

(* Protocol entry points build their engines internally, so the explorer
   cannot thread a trace in by hand. The collector is a domain-local
   scope: every engine created inside [with_collector f] registers a
   fresh buffer (see [Engine.create]) and the scope returns them in
   creation order. Domain-local (not global) so pool workers exploring
   different schedules never share a collector. *)
type collector = {
  cap : int option;
  mutable traces : t list;  (* reverse creation order *)
}

let collector_key : collector option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let register () =
  let slot = Domain.DLS.get collector_key in
  match !slot with
  | None -> None
  | Some c ->
    let tr = create ?capacity:c.cap () in
    c.traces <- tr :: c.traces;
    Some tr

let with_collector ?capacity f =
  let slot = Domain.DLS.get collector_key in
  let prev = !slot in
  let c = { cap = capacity; traces = [] } in
  slot := Some c;
  match f () with
  | r ->
    slot := prev;
    (r, List.rev c.traces)
  | exception e ->
    slot := prev;
    raise e
