(** Execution traces: record a run's schedule, export it, replay it.

    A trace is a buffer of [Send]/[Deliver]/[Local] records stamped with
    simulated times, event sequence numbers, edge ids and per-directed-edge
    ordinals. The engine appends to an attached trace as it executes (see
    {!Engine.set_trace} and the ambient {!with_collector}); a completed
    trace can be exported as JSONL — the artifact the CI schedule-sweep
    uploads on failure — and turned back into a {!Delay.t} oracle with
    {!recorded}, which replays the exact recorded schedule: re-running the
    same protocol under it reproduces the original execution event for
    event (the replay contract, see DESIGN.md §10). *)

type kind =
  | Send  (** a message was sent (delay freshly sampled) *)
  | Deliver  (** a message was delivered to its handler *)
  | Local  (** a local event (timer/bootstrap) ran *)
  | Dropped
      (** a message was lost: at send time by the fault plan (loss,
          outage, down sender — no delay sampled), or at delivery time
          because the receiver was down or had crashed since the send *)
  | Dup
      (** the extra copy a {!Fault.Duplicate} disposition enqueued; its
          [delay] is the copy's sampled delay (from the fault plan, not
          the delay model) *)
  | Decision
      (** an adaptive {!Adversary} chose this send's delay; recorded
          immediately before the matching [Send] with the same identity
          and delay, so the decision trace alone replays the schedule
          (see {!recorded}) while {!without_decisions} recovers the
          event stream an oblivious replay produces *)

type event = {
  kind : kind;
  time : float;  (** simulated clock at the record *)
  seq : int;  (** engine sequence number of the queued event *)
  edge : int;  (** edge id; [-1] for [Local] *)
  dir : int;  (** [0] when the sender is the smaller endpoint; [-1] local *)
  nth : int;  (** ordinal of the message on its directed edge; [-1] local *)
  src : int;  (** sender; [-1] for [Local] *)
  dst : int;  (** receiver; [-1] for [Local] *)
  delay : float;  (** sampled delay ([Send] only; [0] otherwise) *)
}

type t

(** [create ()] is an unbounded trace; [create ~capacity ()] is a ring
    keeping only the last [capacity] events (older ones are dropped and
    counted — cheap enough to leave on in long sweeps, but not
    replayable). *)
val create : ?capacity:int -> unit -> t

(** Empty the buffer (capacity and ring/unbounded mode are kept). *)
val clear : t -> unit

(** Number of events currently held. *)
val length : t -> int

(** Events overwritten by the ring so far; [0] for unbounded traces. *)
val dropped : t -> int

(** The configured ring capacity; [0] means unbounded. *)
val capacity : t -> int

(** Append one event (the engine's hook; exposed for tests). *)
val add : t -> event -> unit

(** The held events, oldest first (a fresh array). *)
val events : t -> event array

(** Event-for-event equality of the held events. *)
val equal : t -> t -> bool

(** [without_decisions t] is [t] with every [Decision] record removed —
    the event stream an oblivious replay of [t]'s schedule produces.
    The replay contract for adaptive runs is
    [equal (without_decisions original) replayed]. *)
val without_decisions : t -> t

(** The [Decision] records of [t], oldest first. *)
val decisions : t -> event array

(** {2 JSONL}

    One JSON object per line, fields in fixed order; floats are printed
    with enough digits to round-trip, so
    [of_jsonl (to_jsonl t)] holds every event of [t] exactly. *)

val to_jsonl : t -> string

(** Parses traces produced by {!to_jsonl}. Raises [Invalid_argument] on
    malformed lines, naming the 1-based line number (and [file], when
    given) of the first bad line — precise enough to locate the
    truncation point of a half-written file. *)
val of_jsonl : ?file:string -> string -> t

val save_jsonl : t -> string -> unit
val load_jsonl : string -> t

(** {2 Replay} *)

(** [recorded t] is a {!Delay.t} oracle that replays the schedule recorded
    in [t]: the [nth] send on a directed edge gets exactly the delay that
    was sampled for it in the recorded run, so replaying the same
    deterministic protocol reproduces the original execution — identical
    event order and identical metrics. Raises [Invalid_argument] if [t]
    is a ring that dropped events, or (at sample time) if the replayed
    execution asks for a send the recording never made. *)
val recorded : ?name:string -> t -> Delay.t

(** {2 Ambient collection}

    Protocol entry points ([Flood.run], [Mst_ghs.run], ...) build their
    engines internally, so callers cannot attach traces by hand. Inside
    [with_collector f], every engine created by the current domain
    registers a fresh trace; the scope returns them in engine-creation
    order. Scopes are domain-local and nest (the previous collector is
    restored on exit), so pool workers exploring schedules in parallel
    never mix their traces. *)

(** [with_collector ?capacity f] runs [f], collecting a trace per engine
    created within. *)
val with_collector : ?capacity:int -> (unit -> 'a) -> 'a * t list

(** Called by [Engine.create]: a fresh registered trace when a collector
    is active on this domain, [None] otherwise. *)
val register : unit -> t option
