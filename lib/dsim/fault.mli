(** Fault plans: message loss, duplication, burst outages, crash-restart.

    The paper's model assumes reliable asynchronous links — every message
    sent on edge [e] arrives, after a delay in [(0, w(e)]]. A fault plan
    relaxes exactly the {e whether}, leaving the {e when} to the engine's
    {!Delay.t} model: at each send the plan assigns the message a
    {!disposition} — delivered, dropped, or delivered twice — as a pure
    function of the message's identity (directed edge, per-edge ordinal)
    and the send time, so faulty executions are as deterministic and
    replayable as clean ones ({!seeded} draws its Bernoulli coins from
    the same splitmix64 identity hash as {!Delay.seeded}). A plan also
    carries crash-restart events: while a vertex is down the engine drops
    its incoming deliveries and outgoing sends, deliveries pending at the
    crash are lost, and on restart the engine invokes the vertex's
    restart handler (see {!Engine.set_restart_handler} — the
    reliable-delivery shim hooks it to re-arm retransmission timers and
    run the protocol-supplied [on_restart]).

    Attach a plan with [Engine.create ?faults] / [Engine.reset ?faults].
    A run under {!none} is bit-identical — same metrics, same trace — to
    a run with no plan attached. *)

(** Fate of one message, decided at its send. *)
type disposition =
  | Pass  (** delivered normally *)
  | Drop  (** lost in flight: the send is paid for, nothing arrives *)
  | Duplicate of float
      (** delivered, plus a second copy whose delay is the carried
          fraction (in [(0, 1]]) of the edge weight; the extra copy
          costs no communication (the network, not the protocol,
          duplicated it) *)

(** A burst outage: messages sent on [edge] (all edges when [None])
    during [[from_time, until_time)] are dropped. *)
type outage = {
  edge : int option;
  from_time : float;
  until_time : float;
}

(** A crash-restart event: [vertex] goes down at time [at] and comes
    back at [restart]. Requires [0 <= at < restart], both finite. *)
type crash = {
  vertex : int;
  at : float;
  restart : float;
}

type plan = {
  name : string;
  disposition :
    edge_id:int -> dir:int -> nth:int -> now:float -> disposition;
      (** fate of the [nth] message (0-based) on directed edge
          [(edge_id, dir)] sent at time [now]. Must be pure — replay
          calls it again in the same order with the same arguments. *)
  crashes : crash list;
}

(** The zero-fault plan: every disposition is [Pass], no crashes. An
    engine running under it is bit-identical to one with no plan. *)
val none : plan

(** [make ~name disposition] wraps a custom disposition function;
    [?crashes] are validated as for {!seeded}. *)
val make :
  ?crashes:crash list ->
  name:string ->
  (edge_id:int -> dir:int -> nth:int -> now:float -> disposition) ->
  plan

(** [seeded ?loss ?dup ?outages ?crashes seed] is the reproducible
    random plan: each message is independently dropped with probability
    [loss] (in [[0, 1)]), else duplicated with probability [dup], with
    all coins drawn from a splitmix64 hash of
    [(seed, directed edge, nth)] — per message {e identity}, never per
    sampling order, so plans are stable under sharding and replay.
    [outages] adds deterministic burst-loss windows checked before the
    coins. Raises [Invalid_argument] on out-of-range probabilities or
    malformed windows/crashes. *)
val seeded :
  ?loss:float ->
  ?dup:float ->
  ?outages:outage list ->
  ?crashes:crash list ->
  int ->
  plan

val pp : Format.formatter -> plan -> unit
