(* See adversary.mli. The Obs view deliberately holds the engine's own
   arrays (clock slot, in-flight counters, send ordinals): observing is
   an array read, never a copy, so consulting an adaptive adversary adds
   O(1) per send on top of the decision procedure itself. *)

module Obs = struct
  type t = {
    m : int;
    clock : float array;  (* engine's one-slot clock *)
    inflight : int array;  (* per directed edge: 2*id + dir *)
    sent : int array;  (* engine's send ordinals, same indexing *)
    counts : int array;  (* slot 0: delivered-to-handler total *)
    queue_size : unit -> int;
    queue_min : unit -> float;
    sent_total : unit -> int;
  }

  let make ~m ~clock ~inflight ~sent ~counts ~queue_size ~queue_min
      ~sent_total =
    { m; clock; inflight; sent; counts; queue_size; queue_min; sent_total }

  let now t = t.clock.(0)
  let edges t = t.m
  let pending_on t ~edge_id ~dir = t.inflight.((2 * edge_id) + dir)

  let pending_edge t ~edge_id =
    t.inflight.(2 * edge_id) + t.inflight.((2 * edge_id) + 1)

  let busiest_edge t =
    let best = ref (-1) and best_load = ref 0 in
    for id = 0 to t.m - 1 do
      let load = t.inflight.(2 * id) + t.inflight.((2 * id) + 1) in
      if load > !best_load then begin
        best := id;
        best_load := load
      end
    done;
    !best

  let sent_on t ~edge_id ~dir = t.sent.((2 * edge_id) + dir)
  let sent_total t = t.sent_total ()
  let delivered_total t = t.counts.(0)
  let queue_size t = t.queue_size ()
  let queue_min_time t = t.queue_min ()
end

type adaptive = {
  name : string;
  next_delay : Obs.t -> edge_id:int -> dir:int -> nth:int -> w:int -> float;
  next_disposition :
    (Obs.t -> edge_id:int -> dir:int -> nth:int -> now:float ->
     Fault.disposition)
    option;
}

type t =
  | Oblivious of Delay.t
  | Adaptive of adaptive

let of_delay d = Oblivious d

let name = function
  | Oblivious d -> Format.asprintf "%a" Delay.pp d
  | Adaptive a -> a.name

let is_adaptive = function Oblivious _ -> false | Adaptive _ -> true

(* Matches Delay.epsilon: the "rush" delay of the structured oblivious
   adversaries, small enough to land first, positive so the schedule
   stays admissible. *)
let eps = 1e-6

let greedy_commax () =
  Adaptive
    {
      name = "greedy-commax";
      next_delay =
        (fun obs ~edge_id ~dir:_ ~nth:_ ~w ->
          (* Stall where the work already is — in-flight copies pile up
             behind the FIFO stamp — and rush everything else, so
             contention concentrates on one edge at a time. A send on an
             idle network stalls its own edge (it is about to be the
             busiest). *)
          let busiest = Obs.busiest_edge obs in
          if busiest < 0 || busiest = edge_id then float_of_int w else eps);
      next_disposition = None;
    }

let time_stretcher () =
  (* One-slot frontier (a float array, not a ref: unboxed store) — the
     latest arrival time this adversary has committed to so far. *)
  let frontier = [| 0.0 |] in
  Adaptive
    {
      name = "time-stretcher";
      next_delay =
        (fun obs ~edge_id:_ ~dir:_ ~nth:_ ~w ->
          let full = Obs.now obs +. float_of_int w in
          if full >= frontier.(0) then begin
            (* This send can push the completion frontier: take the whole
               admissible window. *)
            frontier.(0) <- full;
            float_of_int w
          end
          else
            (* Already overtaken — rushing it cannot shorten the run. *)
            eps);
      next_disposition = None;
    }

let builtin_specs = [ "greedy"; "stretch" ]

let of_spec = function
  | "greedy" -> Ok (greedy_commax ())
  | "stretch" -> Ok (time_stretcher ())
  | s ->
    Error
      (Printf.sprintf
         "unknown adversary spec %S (expected one of: %s)" s
         (String.concat ", " builtin_specs))

(* ---- ambient adversary ------------------------------------------------ *)

(* Same shape as Trace's ambient collector: a domain-local slot, saved
   and restored around the scope so scopes nest and pool workers on
   other domains never see it. *)
let ambient_key : adaptive option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ambient () = !(Domain.DLS.get ambient_key)

let with_ambient a f =
  let slot = Domain.DLS.get ambient_key in
  let prev = !slot in
  slot := Some a;
  match f () with
  | r ->
    slot := prev;
    r
  | exception e ->
    slot := prev;
    raise e
