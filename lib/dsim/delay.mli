(** Delay models for asynchronous links.

    The paper's model lets the delay of a message on edge [e] vary in
    [(0, w(e)]]. Every model below respects those bounds; protocols must be
    correct under all of them, while complexity measurements use [Exact]
    (the [w(e)]-normalised execution the paper's time bounds refer to).

    The paper's time bounds carry a universal quantifier — they must hold
    for {e every} delay assignment in [(0, w(e)]] — so besides the five
    fixed policies this module exposes a programmable {!Oracle}: an
    arbitrary function of the message's identity (edge id, direction,
    ordinal on that directed edge) that the schedule-adversary harness
    ({!Csap_sched.Sched_explore}) and trace replay ({!Trace.recorded})
    plug their schedules into. *)

(** A programmable schedule: [fn ~edge_id ~dir ~nth ~w] is the delay of
    the [nth] message (0-based) sent on the directed edge
    [(edge_id, dir)] of weight [w]. [dir] is [0] when the sender is the
    edge's smaller endpoint. The function must be pure — replay and
    sharded exploration call it in arbitrary order — and should return
    values in [(0, w]] (the engine rejects NaN/infinite/negative
    results). [name] appears in {!pp} and error messages. *)
type oracle = {
  name : string;
  fn : edge_id:int -> dir:int -> nth:int -> w:int -> float;
}

type t =
  | Exact  (** delay is exactly [w(e)] — the normalised schedule *)
  | Uniform of Csap_graph.Rng.t
      (** delay uniform in [(0, w(e)]], independently per message *)
  | Scaled of float
      (** delay is [c * w(e)] for a fixed [0 < c <= 1] — a uniformly
          fast network *)
  | Near_zero
      (** a tiny positive delay regardless of weight — the adversary that
          exposes algorithms relying on weights for timing *)
  | Jitter of Csap_graph.Rng.t
      (** delay in [[w(e)/2, w(e)]] — bounded jitter around the weight *)
  | Oracle of oracle  (** programmable per-message schedule *)

(** [sample t ~w] draws a delay in [(0, w]]; [w >= 1] required. Raises
    [Invalid_argument] on {!Oracle} (an oracle needs the per-message
    context; use {!sample_on}). *)
val sample : t -> w:int -> float

(** [sample_on t ~edge_id ~dir ~nth ~w] draws the delay of the [nth]
    message on directed edge [(edge_id, dir)]. For the five fixed
    policies this is exactly {!sample} (bit-identical; the context is
    ignored); for {!Oracle} it applies the oracle function. *)
val sample_on : t -> edge_id:int -> dir:int -> nth:int -> w:int -> float

(** [sample_into t ~edge_id ~dir ~nth ~w out] is {!sample_on} with the
    sample stored into [out.(0)] instead of returned — a float-array
    write instead of a boxed float return, so the engine's send path
    stays allocation-free under the static models (Exact, Scaled,
    Near_zero). Samples exactly like {!sample_on}: same RNG consumption
    order, same values. *)
val sample_into :
  t -> edge_id:int -> dir:int -> nth:int -> w:int -> float array -> unit

(** [oracle ~name fn] is [Oracle {name; fn}]. *)
val oracle :
  name:string -> (edge_id:int -> dir:int -> nth:int -> w:int -> float) -> t

(** {2 Built-in adversaries} *)

(** [slow_edge id] delays every message on edge [id] by its full weight
    (times [slow], default 1) while all other edges deliver almost
    instantly ([fast * w], default a tiny epsilon): the adversary that
    races the rest of the network past one straggling link. Both factors
    must lie in [(0, 1]]. *)
val slow_edge : ?slow:float -> ?fast:float -> int -> t

(** Direction-asymmetric schedule: messages from the smaller endpoint
    ([dir = 0]) take their full weight, replies cross almost instantly —
    the adversary that makes waves crossing an edge in opposite
    directions meet as unfairly as the model allows. *)
val race_crossing : t

(** [hash_unit a b c d] is the splitmix64 finalizer hash of the four ints
    mapped into [[0, 1)] — the per-message-identity uniform that {!seeded}
    is built on, exported so the fault layer ({!Fault.seeded}) draws its
    Bernoulli coins from the same generator family without sharing any
    stream state. *)
val hash_unit : int -> int -> int -> int -> float

(** [seeded seed] draws the delay of each message in [(0, w]] from a hash
    of [(seed, edge_id, dir, nth)]: deterministic per message {e identity}
    rather than per sampling order, so runs are reproducible under
    sharding and replay. Distinct seeds give independent schedules. *)
val seeded : int -> t

(** Whether sampling is a pure function of the message identity
    [(edge_id, dir, nth, w)] — true for [Exact], [Scaled], [Near_zero]
    and every [Oracle] (pure by contract), false for [Uniform] and
    [Jitter], which advance shared RNG state and therefore depend on the
    global sampling order. Only order-independent models can drive the
    partitioned engine ({!Pengine}), where sends from different domains
    interleave nondeterministically. *)
val order_independent : t -> bool

(** [lower_bound t ~w] is a static positive lower bound on every delay
    the model can produce on a weight-[w] edge, or [None] when no such
    bound exists ([Uniform]'s open interval, arbitrary [Oracle]s). The
    partitioned engine's conservative lookahead is the minimum of this
    bound over the cut edges; [None] forces lockstep windows. *)
val lower_bound : t -> w:int -> float option

val pp : Format.formatter -> t -> unit
