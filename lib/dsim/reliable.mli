(** Reliable exactly-once FIFO delivery over a faulty engine.

    The shim restores, on top of an engine running under a {!Fault.plan},
    exactly the link guarantee the paper's model assumes: every payload
    handed to {!send} is delivered to the receiving vertex's application
    handler exactly once, in per-directed-edge FIFO order — whatever the
    plan drops, duplicates or blacks out (as long as loss probability is
    below 1 and outage/crash windows are finite). The cost is the
    retransmission factor the fault sweep measures: acknowledgements plus
    timeout-driven retransmissions.

    Mechanics, per directed link: data packets carry per-link sequence
    numbers; the receiver delivers in sequence order (buffering gap
    packets, absorbing duplicates) and answers every data packet with a
    cumulative acknowledgement; the sender keeps unacked packets in a
    queue and retransmits them all when a timeout — initialised to
    [rto * w(e)] and doubled per silent timeout up to [max_rto * w(e)] —
    expires, driven by {!Engine.schedule} timers.

    Crash-restart follows the stable-storage model: a crashed vertex
    loses its in-flight messages and pending timers but keeps its link
    state (sequence numbers, unacked buffers, expected counters) and its
    application state. On restart the shim re-arms a fresh timer for
    every outgoing link with unacked data (stale timers are invalidated),
    then calls the protocol's {!set_on_restart} hook so it can rebuild
    any volatile state of its own. With the guarantee restored, a clean
    protocol needs no crash-specific logic — which is what lets the
    paper's protocols run unmodified through the shim. *)

(** The wire format the engine carries for a shimmed protocol. *)
type 'm packet =
  | Data of { seqno : int; payload : 'm }
  | Ack of { cum : int }  (** all seqnos [<= cum] received in order *)

type 'm t

(** [create ?rto ?max_rto eng] wraps [eng], installing a packet handler
    and a restart handler on every vertex (protocols register through
    {!set_handler} / {!set_on_restart} instead of the engine). [rto]
    (default 3) and [max_rto] (default 64) are per-weight factors: a
    link of weight [w] times out after [rto * w], backing off by
    doubling up to [max_rto * w]. Raises [Invalid_argument] unless
    [0 < rto <= max_rto]. *)
val create : ?rto:float -> ?max_rto:float -> 'm packet Engine.t -> 'm t

(** [send t ~src ~dst m] transmits [m] reliably over the edge
    [{src, dst}]; raises [Invalid_argument] when that edge does not
    exist. *)
val send : 'm t -> src:int -> dst:int -> 'm -> unit

(** [set_handler t v f] installs [v]'s application handler: [f] sees
    each payload exactly once, in per-link FIFO order. Payloads arriving
    at a vertex without a handler raise [Failure]. *)
val set_handler : 'm t -> int -> (src:int -> 'm -> unit) -> unit

(** [set_on_restart t v f] runs [f] when [v] restarts after a crash,
    after the shim has re-armed its retransmission timers. *)
val set_on_restart : 'm t -> int -> (unit -> unit) -> unit

(** The wrapped engine. *)
val engine : 'm t -> 'm packet Engine.t

(** Timeout-driven data retransmissions so far. *)
val retransmissions : 'm t -> int

(** Acknowledgement packets sent so far. *)
val acks_sent : 'm t -> int

(** Application-layer deliveries so far (each payload counted once). *)
val delivered : 'm t -> int

(** Payloads currently buffered as sent-but-unacknowledged, over all
    links; [0] once every send has been delivered and acknowledged. *)
val in_flight : 'm t -> int
