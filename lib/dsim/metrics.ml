type t = {
  mutable messages : int;
  mutable weighted_comm : int;
  mutable completion_time : float;
  mutable last_delivery_time : float;
  mutable events : int;
}

let create () =
  {
    messages = 0;
    weighted_comm = 0;
    completion_time = 0.0;
    last_delivery_time = 0.0;
    events = 0;
  }

let reset t =
  t.messages <- 0;
  t.weighted_comm <- 0;
  t.completion_time <- 0.0;
  t.last_delivery_time <- 0.0;
  t.events <- 0

let add_send t ~w =
  t.messages <- t.messages + 1;
  t.weighted_comm <- t.weighted_comm + w

let pp ppf t =
  Format.fprintf ppf "msgs=%d comm=%d time=%.2f events=%d" t.messages
    t.weighted_comm t.last_delivery_time t.events
