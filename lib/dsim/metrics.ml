type t = {
  mutable messages : int;
  mutable weighted_comm : int;
  mutable completion_time : float;
  mutable last_delivery_time : float;
  mutable events : int;
  mutable alloc_minor_words : float;
  mutable alloc_promoted_words : float;
  mutable alloc_major_collections : int;
}

let create () =
  {
    messages = 0;
    weighted_comm = 0;
    completion_time = 0.0;
    last_delivery_time = 0.0;
    events = 0;
    alloc_minor_words = 0.0;
    alloc_promoted_words = 0.0;
    alloc_major_collections = 0;
  }

let reset t =
  t.messages <- 0;
  t.weighted_comm <- 0;
  t.completion_time <- 0.0;
  t.last_delivery_time <- 0.0;
  t.events <- 0;
  t.alloc_minor_words <- 0.0;
  t.alloc_promoted_words <- 0.0;
  t.alloc_major_collections <- 0

let add_send t ~w =
  t.messages <- t.messages + 1;
  t.weighted_comm <- t.weighted_comm + w

(* One GC-snapshot delta folded into the accumulators; engines call this
   once per [run] (and once per worker domain in the partitioned
   engine — OCaml 5 GC counters are domain-local). *)
let add_alloc t ~minor_words ~promoted_words ~major_collections =
  t.alloc_minor_words <- t.alloc_minor_words +. minor_words;
  t.alloc_promoted_words <- t.alloc_promoted_words +. promoted_words;
  t.alloc_major_collections <- t.alloc_major_collections + major_collections

let pp ppf t =
  Format.fprintf ppf "msgs=%d comm=%d time=%.2f events=%d" t.messages
    t.weighted_comm t.last_delivery_time t.events
