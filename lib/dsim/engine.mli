(** Deterministic discrete-event simulator for asynchronous message passing.

    A protocol installs one handler per vertex; [send] enqueues a message on
    an incident edge with a delay drawn from the engine's {!Delay.t} model.
    Links are FIFO per direction (delivery order matches send order), local
    computation is instantaneous, and ties are broken by send order, so every
    execution is reproducible.

    Costs are accounted per the paper: each send adds [w(e)] communication.
    Per-edge traffic counters support congestion assertions (e.g. the
    controller's per-edge [O(log^2 c)] overhead). *)

type 'msg t

(** How [send] resolves [(src, dst)] to an edge. [Indexed] (the default)
    uses the graph's O(1)-amortised edge index; [Scan] is the historical
    O(degree) adjacency scan, kept so the microbenchmarks can measure the
    before/after difference on send-heavy workloads. *)
type edge_lookup =
  | Indexed
  | Scan

(** Which priority queue backs the event loop. [Packed] (the default) is
    the structure-of-arrays heap of {!Event_queue} — pushing or popping
    a delivery allocates zero heap words; [Boxed] is the historical
    generic heap over boxed event records, retained {e only} as the
    test oracle for the QCheck bit-identity suite (and the send-path
    microbenchmark pair). Both orders are the same total
    (time, send-order) order, so executions are identical either way.
    Uses outside [test/] and [bench/] trip the [boxed_oracle] alert. *)
type event_queue =
  | Packed
  | Boxed
      [@alert
        boxed_oracle
          "The Boxed event queue is a test oracle: it allocates per event \
           and exists only to cross-check the packed SOA queue. Use the \
           default Packed queue."]

(** [create ?delay ?faults ?edge_lookup ?event_queue g] builds an idle
    engine over the network [g]; the default delay model is
    {!Delay.Exact}. [?faults] attaches a {!Fault.plan}: each send is
    assigned a disposition (pass / drop / duplicate) by the plan, and the
    plan's crash events are scheduled (see {2:faults Faults} below).
    Without a plan — or under {!Fault.none} — behaviour is bit-identical
    to the historical reliable network.

    [?adversary] installs an {!Adversary.t}: an oblivious one is folded
    into the delay model (replacing [?delay]) and costs nothing; an
    adaptive one is consulted at every send with the engine's {!Adversary.Obs}
    view (see {2:adversaries Adversaries} below). Without the argument,
    an ambient adaptive adversary installed by
    {!Adversary.with_ambient} is picked up, exactly like the ambient
    trace collector. *)
val create :
  ?delay:Delay.t ->
  ?adversary:Adversary.t ->
  ?faults:Fault.plan ->
  ?edge_lookup:edge_lookup ->
  ?event_queue:event_queue ->
  Csap_graph.Graph.t ->
  'msg t

(** [reset ?delay ?faults t] rewinds [t] to the state [create] left it
    in — clock and send counter to zero, metrics and per-edge traffic
    zeroed, FIFO delivery stamps and per-edge send/delivery ordinals
    cleared, any attached trace emptied (kept attached), every handler
    uninstalled and
    the event queue emptied — without reallocating any per-vertex or
    per-edge array (the event queue also keeps its grown capacity).
    [?delay] optionally installs a new delay model, so multi-seed trial
    loops can reuse one engine per instance, swapping the seeded model
    each trial. Fault state is never carried across trials: the previous
    plan, down flags, crash epochs, pending crash events and restart
    handlers are all cleared, and [?faults] (absent by default — a reset
    engine is clean) installs a fresh plan. Adversary state follows the
    same discipline: observation counters are zeroed and the adaptive
    adversary is dropped unless [?adversary] (or an ambient
    {!Adversary.with_ambient} scope) installs one. A run after [reset]
    is indistinguishable from a run on a freshly created engine. *)
val reset :
  ?delay:Delay.t -> ?adversary:Adversary.t -> ?faults:Fault.plan ->
  'msg t -> unit

val graph : 'msg t -> Csap_graph.Graph.t

(** Current simulated time. *)
val now : 'msg t -> float

(** [set_handler t v f] installs [v]'s message handler. Messages delivered to
    a vertex without a handler raise [Failure]. *)
val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit

(** [send t ~src ~dst msg] transmits over the edge [{src, dst}]; raises
    [Invalid_argument] naming the offending [(src, dst)] pair when that
    edge does not exist, or when the delay model produces a delay that is
    not finite and non-negative (NaN would corrupt the event queue's
    strict ordering; see {!Delay.sample_on}). *)
val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** [schedule t ~delay f] runs the local event [f] after [delay] time;
    used to bootstrap protocols and for local timeouts. Local events cost no
    communication. Raises [Invalid_argument] unless [delay] is finite and
    non-negative (in particular, NaN is rejected). *)
val schedule : 'msg t -> delay:float -> (unit -> unit) -> unit

(** [run t] processes events until quiescence. [~max_events] guards against
    runaway protocols; [~comm_budget] stops once the weighted communication
    reaches the budget (used by the budgeted-restart hybrids). Returns the
    number of events processed.

    [~until] runs the slice of the execution up to a time limit: events at
    times [<= until] are processed, later ones stay queued, and when the
    slice completes — the queue drained or the next event lies beyond the
    limit — the clock advances to [Float.max (now t) until]. Sliced runs
    therefore compose: [run ~until:t1 t; run ~until:t2 t] visits the same
    states as [run ~until:t2 t], and timers scheduled between slices
    (relative to [now t = t1]) land where a continuous run puts them.
    The clock never moves backwards: a stale [until < now t] processes
    nothing and leaves the clock where it was. Runs cut short by
    [~max_events] or [~comm_budget] leave the clock at the last processed
    event. *)
val run :
  ?until:float -> ?max_events:int -> ?comm_budget:int -> 'msg t -> int

(** True when no events are pending. *)
val quiescent : 'msg t -> bool

val metrics : 'msg t -> Metrics.t

(** [edge_traffic t] maps edge id to the number of messages that crossed it
    (in either direction) so far. The returned array is a snapshot. *)
val edge_traffic : 'msg t -> int array

(** [send_count t] is the number of sends so far (= metrics messages). *)
val send_count : 'msg t -> int

(** {2:faults Faults}

    With a {!Fault.plan} attached the engine becomes an unreliable
    network under the same deterministic discipline: each send's fate is
    the plan's pure function of the message identity and send time.
    Dropped messages are paid for (communication and traffic) but never
    arrive — no delay is sampled for them, so the delay model sees
    exactly the surviving sends; duplicated messages arrive twice (the
    extra copy costs nothing — the network, not the protocol, duplicated
    it). Crash events take a vertex down at a plan-specified time: its
    pending deliveries are dropped (crash-epoch stamping — nothing scans
    the queue), deliveries and sends while down are dropped, and at the
    restart time the vertex's restart handler runs. Every fault shows up
    in an attached trace as a {!Trace.Dropped} or {!Trace.Dup} record,
    and a faulty execution replays exactly by re-running under the
    recorded delays ({!Trace.recorded}) and the same plan. *)

(** [set_restart_handler t v f] installs [f] to run when [v] restarts
    after a crash — the hook the reliable-delivery shim uses to re-arm
    retransmission timers and call the protocol's [on_restart]. *)
val set_restart_handler : 'msg t -> int -> (unit -> unit) -> unit

(** [is_down t v] is true while [v] is crashed. *)
val is_down : 'msg t -> int -> bool

(** The attached fault plan, if any. *)
val faults : 'msg t -> Fault.plan option

(** {2 Tracing}

    With a trace attached the engine appends a {!Trace.event} for every
    send and every dispatched event (deliveries and locals), enough to
    export the schedule and replay it via {!Trace.recorded}. [create]
    attaches a trace automatically when an ambient {!Trace.with_collector}
    scope is active on the current domain; [set_trace] attaches or
    detaches one by hand. Tracing is off ([None]) otherwise and costs
    nothing on the hot path. *)

(** [set_trace t tr] attaches ([Some]) or detaches ([None]) a trace;
    subsequent events are appended to it. *)
val set_trace : 'msg t -> Trace.t option -> unit

(** The currently attached trace, if any. *)
val trace : 'msg t -> Trace.t option

(** {2:adversaries Adversaries}

    With an adaptive {!Adversary.adaptive} attached the engine consults
    it instead of the delay model at every send, handing it a read-only
    {!Adversary.Obs} view (clock, per-edge in-flight counts, totals,
    queue head) that shares the engine's own state — observing allocates
    nothing. Each decision is recorded in an attached trace as a
    {!Trace.Decision} event immediately before its [Send] twin, so
    {!Trace.recorded} replays the adaptive schedule obliviously and
    reproduces the run event for event. When no fault plan is attached,
    an adversary's [next_disposition] may also drop or duplicate sends.
    Oblivious adversaries take the historical zero-allocation send path
    unchanged. *)

(** The attached adaptive adversary, if any ([None] on oblivious
    engines). *)
val adaptive_adversary : 'msg t -> Adversary.adaptive option
