(** Schedule adversaries: oblivious delay models and adaptive adversaries
    that observe engine state, under one interface.

    The paper's worst-case measures quantify over {e every} admissible
    schedule — including schedules chosen by an adversary who watches the
    protocol run and picks each delay to hurt the most. The oblivious
    {!Delay.t} models (seeded, slow-edge, race-crossing, replay oracles)
    fix the whole schedule before the run; an {e adaptive} adversary is
    instead consulted at each send with a read-only {!Obs} view of the
    engine (clock, per-edge in-flight counts, totals, queue head) and
    returns the next delay — still within the admissible window
    [(0, w(e)]] if it wants the run to stay a legal execution.

    Adaptivity is order-dependent, so the partitioned engine rejects it
    ({!Pengine} processes events out of global order inside a window);
    determinism is restored by {e replay}: every adaptive decision is
    recorded as a {!Trace.Decision} event, and {!Trace.recorded} turns
    the decision trace back into an oblivious oracle that reproduces the
    run event for event (DESIGN.md §17). *)

(** {2 The observation view} *)

module Obs : sig
  (** A read-only window onto a running engine: plain accessors over
      state the engine maintains anyway (shared arrays, no copying), so
      observing is O(1) per accessor — except the [busiest_edge] scan —
      and allocates nothing. *)
  type t

  (** Built by [Engine.create]; the arrays are shared with (and mutated
      by) the engine. Not for protocol code. *)
  val make :
    m:int ->
    clock:float array ->
    inflight:int array ->
    sent:int array ->
    counts:int array ->
    queue_size:(unit -> int) ->
    queue_min:(unit -> float) ->
    sent_total:(unit -> int) ->
    t

  (** Current simulated time. *)
  val now : t -> float

  (** Number of edges of the underlying graph. *)
  val edges : t -> int

  (** Deliveries currently in flight on the directed edge
      [(edge_id, dir)]. *)
  val pending_on : t -> edge_id:int -> dir:int -> int

  (** Deliveries in flight on [edge_id], both directions. *)
  val pending_edge : t -> edge_id:int -> int

  (** The edge with the most in-flight deliveries (ties to the lowest
      id); [-1] when nothing is in flight. O(edges). *)
  val busiest_edge : t -> int

  (** Messages sent so far on the directed edge [(edge_id, dir)]. *)
  val sent_on : t -> edge_id:int -> dir:int -> int

  (** Total paid transmissions so far (= the engine's message count). *)
  val sent_total : t -> int

  (** Messages delivered to handlers so far (drops excluded). *)
  val delivered_total : t -> int

  (** Events pending in the engine's queue (deliveries and timers). *)
  val queue_size : t -> int

  (** Time of the earliest pending event; [nan] when the queue is
      empty. *)
  val queue_min_time : t -> float
end

(** {2 Adversaries} *)

(** An adaptive adversary: consulted by the engine at each send.
    [next_delay] must return a finite, non-negative delay (the engine
    validates, exactly as for delay models); admissible schedules keep
    it within [(0, w]]. [next_disposition], when given, lets the
    adversary drop or duplicate messages — it is consulted only when no
    {!Fault.plan} is attached (a plan owns the disposition). *)
type adaptive = {
  name : string;
  next_delay : Obs.t -> edge_id:int -> dir:int -> nth:int -> w:int -> float;
  next_disposition :
    (Obs.t -> edge_id:int -> dir:int -> nth:int -> now:float ->
     Fault.disposition)
    option;
}

(** An adversary is either an oblivious delay model — the engine runs it
    on the unchanged zero-allocation path — or an adaptive decision
    procedure. *)
type t =
  | Oblivious of Delay.t
  | Adaptive of adaptive

val of_delay : Delay.t -> t

(** Display name ("oracle(seeded-7)", "greedy-commax", ...). *)
val name : t -> string

val is_adaptive : t -> bool

(** {2 Built-in adaptive adversaries}

    Both are deterministic functions of the observation, so their runs
    replay exactly from the decision trace. Fresh state per call — a
    returned adversary must not be shared across concurrent engines. *)

(** The greedy communication maximiser: stalls the edge that already has
    the most in-flight work by the full window [w] and rushes everything
    else, concentrating contention to force retries/echoes out of
    contention-sensitive protocols. *)
val greedy_commax : unit -> t

(** The time stretcher: lets a send extend the adversary's completion
    frontier by the full window [w] whenever it can, and rushes sends
    that cannot — every delivery lands just inside the allowed window or
    immediately, maximising the makespan a single chain can reach. *)
val time_stretcher : unit -> t

(** The built-in roster, by spec name (["greedy"; "stretch"]). *)
val builtin_specs : string list

(** [of_spec s] parses an adversary spec as accepted by
    [csap_cli --adversary] and farm cells: ["greedy"] and ["stretch"]
    build fresh built-ins. The error lists the vocabulary. *)
val of_spec : string -> (t, string) result

(** {2 Ambient adversary}

    Protocol entry points build their engines internally, so callers
    cannot thread an adversary in by hand. [with_ambient a f] runs [f]
    with [a] installed domain-locally: every engine created (or reset)
    inside picks it up, exactly like {!Trace.with_collector}. Scopes
    nest and are domain-local, so pool workers never share one. *)

val with_ambient : adaptive -> (unit -> 'a) -> 'a

(** The installed adaptive adversary of the current scope, if any
    (read by [Engine.create]/[Engine.reset] and guarded against by
    [Pengine]). *)
val ambient : unit -> adaptive option
