type 'm t = {
  graph : Csap_graph.Graph.t;
  send : src:int -> dst:int -> 'm -> unit;
  set_handler : int -> (src:int -> 'm -> unit) -> unit;
  set_on_restart : int -> (unit -> unit) -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  now : unit -> float;
  run : ?until:float -> ?max_events:int -> ?comm_budget:int -> unit -> int;
  quiescent : unit -> bool;
  metrics : unit -> Metrics.t;
  retransmissions : unit -> int;
}

type stats = {
  retransmissions : int;
  restarts : int;
}

let no_stats = { retransmissions = 0; restarts = 0 }

let of_engine eng =
  {
    graph = Engine.graph eng;
    send = (fun ~src ~dst m -> Engine.send eng ~src ~dst m);
    set_handler = (fun v f -> Engine.set_handler eng v f);
    set_on_restart = (fun v f -> Engine.set_restart_handler eng v f);
    schedule = (fun ~delay f -> Engine.schedule eng ~delay f);
    now = (fun () -> Engine.now eng);
    run =
      (fun ?until ?max_events ?comm_budget () ->
        Engine.run ?until ?max_events ?comm_budget eng);
    quiescent = (fun () -> Engine.quiescent eng);
    metrics = (fun () -> Engine.metrics eng);
    retransmissions = (fun () -> 0);
  }

let plain ?delay ?faults g = of_engine (Engine.create ?delay ?faults g)

let reliable ?delay ?faults ?rto ?max_rto g =
  let eng = Engine.create ?delay ?faults g in
  let shim = Reliable.create ?rto ?max_rto eng in
  {
    graph = g;
    send = (fun ~src ~dst m -> Reliable.send shim ~src ~dst m);
    set_handler = (fun v f -> Reliable.set_handler shim v f);
    set_on_restart = (fun v f -> Reliable.set_on_restart shim v f);
    schedule = (fun ~delay f -> Engine.schedule eng ~delay f);
    now = (fun () -> Engine.now eng);
    run =
      (fun ?until ?max_events ?comm_budget () ->
        Engine.run ?until ?max_events ?comm_budget eng);
    quiescent = (fun () -> Engine.quiescent eng);
    metrics = (fun () -> Engine.metrics eng);
    retransmissions = (fun () -> Reliable.retransmissions shim);
  }

let make ?reliable:(r = false) ?delay ?faults ?rto ?max_rto g =
  if r then reliable ?delay ?faults ?rto ?max_rto g
  else plain ?delay ?faults g

let monitor net =
  let restarts = ref 0 in
  for v = 0 to Csap_graph.Graph.n net.graph - 1 do
    net.set_on_restart v (fun () -> incr restarts)
  done;
  fun () -> { retransmissions = net.retransmissions (); restarts = !restarts }
