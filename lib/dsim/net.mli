(** A network endpoint abstraction over {!Engine} and {!Reliable}.

    Protocol entry points build their engines internally, so giving each
    of them a faults/reliable code path would mean duplicating every
    entry point per transport — the two transports have different wire
    types ([{!Engine.t}] over raw messages vs over {!Reliable.packet}s),
    which rules out a shared engine value. A [Net.t] closes over
    whichever transport it was built with and exposes the protocol-facing
    surface (send, handlers, timers, run, metrics), so one protocol body
    runs unchanged over a clean engine, a faulty engine, or a faulty
    engine behind the reliable shim. *)

type 'm t = {
  graph : Csap_graph.Graph.t;
  send : src:int -> dst:int -> 'm -> unit;
  set_handler : int -> (src:int -> 'm -> unit) -> unit;
  set_on_restart : int -> (unit -> unit) -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  now : unit -> float;
  run : ?until:float -> ?max_events:int -> ?comm_budget:int -> unit -> int;
  quiescent : unit -> bool;
  metrics : unit -> Metrics.t;
  retransmissions : unit -> int;  (** [0] on a plain transport *)
}

(** Transport-level bookkeeping of one run: retransmissions performed by
    the {!Reliable} shim (always [0] on a plain transport) and observed
    crash-restart events. *)
type stats = {
  retransmissions : int;
  restarts : int;
}

val no_stats : stats

(** [of_engine eng] wraps an existing engine as a plain (shimless)
    endpoint — for protocols that share one engine with engine-bound
    machinery (e.g. the {!Controller}) but whose components speak
    [Net.t]. *)
val of_engine : 'm Engine.t -> 'm t

(** [plain ?delay ?faults g] is a bare engine endpoint — the historical
    semantics (unreliable when a plan drops messages; nothing
    retransmits). *)
val plain : ?delay:Delay.t -> ?faults:Fault.plan -> Csap_graph.Graph.t -> 'm t

(** [reliable ?delay ?faults ?rto ?max_rto g] is an engine wrapped in the
    {!Reliable} shim: exactly-once FIFO application-layer delivery under
    any survivable fault plan, at the retransmission overhead. *)
val reliable :
  ?delay:Delay.t ->
  ?faults:Fault.plan ->
  ?rto:float ->
  ?max_rto:float ->
  Csap_graph.Graph.t ->
  'm t

(** [make ?reliable ?delay ?faults ?rto ?max_rto g] picks the transport
    by flag ([reliable] defaults to [false]). *)
val make :
  ?reliable:bool ->
  ?delay:Delay.t ->
  ?faults:Fault.plan ->
  ?rto:float ->
  ?max_rto:float ->
  Csap_graph.Graph.t ->
  'm t

(** [monitor net] installs a restart counter on every vertex (via
    [set_on_restart]) and returns a closure producing the run's
    transport {!stats}. Call before the protocol installs its own
    restart handlers only if it has none — the counter replaces any
    previously installed handler and vice versa. *)
val monitor : 'm t -> unit -> stats
