(** Weighted cost accounting for protocol executions (Section 1.3).

    [weighted_comm] is the paper's communication complexity: the sum of
    [w(e)] over every message sent. [last_delivery_time] is the physical
    time of the last message delivery — the paper's time complexity, which
    counts message propagation only: a local timer that fires after the
    last delivery ([completion_time] covers those too) costs no time,
    exactly as local computation is free in the model. *)

type t = {
  mutable messages : int;  (** number of messages sent *)
  mutable weighted_comm : int;  (** sum of w(e) over messages *)
  mutable completion_time : float;
      (** time of the last event processed, local timers included *)
  mutable last_delivery_time : float;
      (** time of the last message delivery; what {!Csap.Measures} reads *)
  mutable events : int;  (** events processed by the engine *)
}

val create : unit -> t
val reset : t -> unit

(** [add_send t ~w] accounts for one message on an edge of weight [w]. *)
val add_send : t -> w:int -> unit

val pp : Format.formatter -> t -> unit
