(** Weighted cost accounting for protocol executions (Section 1.3).

    [weighted_comm] is the paper's communication complexity: the sum of
    [w(e)] over every message sent. [last_delivery_time] is the physical
    time of the last message delivery — the paper's time complexity, which
    counts message propagation only: a local timer that fires after the
    last delivery ([completion_time] covers those too) costs no time,
    exactly as local computation is free in the model. *)

type t = {
  mutable messages : int;  (** number of messages sent *)
  mutable weighted_comm : int;  (** sum of w(e) over messages *)
  mutable completion_time : float;
      (** time of the last event processed, local timers included *)
  mutable last_delivery_time : float;
      (** time of the last message delivery; what {!Csap.Measures} reads *)
  mutable events : int;  (** events processed by the engine *)
  mutable alloc_minor_words : float;
      (** minor-heap words allocated during [run]s of this engine *)
  mutable alloc_promoted_words : float;
      (** words promoted to the major heap during [run]s *)
  mutable alloc_major_collections : int;
      (** major collections finished during [run]s *)
}

val create : unit -> t
val reset : t -> unit

(** [add_send t ~w] accounts for one message on an edge of weight [w]. *)
val add_send : t -> w:int -> unit

(** [add_alloc t ~minor_words ~promoted_words ~major_collections] folds
    one GC-snapshot delta (a [Gc.quick_stat] difference over a [run])
    into the allocation accumulators. Engines call it once per run —
    and once per worker domain in the partitioned engine, whose GC
    counters are domain-local. *)
val add_alloc :
  t -> minor_words:float -> promoted_words:float -> major_collections:int ->
  unit

val pp : Format.formatter -> t -> unit
