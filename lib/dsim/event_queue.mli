(** Allocation-free delivery queue for the engine's hot loop.

    A 4-ary min-heap keyed by [(time, seq)] — earliest time first, send
    order breaking ties — kept in full struct-of-arrays layout: times,
    sequence numbers, sources, destinations, crash epochs and payloads
    each live in their own flat array, so pushing a delivery writes six
    unboxed rows and allocates {e zero} heap words (no event record, no
    boxed key, no closure). Local events (timers, crash hooks) park
    their closure in a small side slot table and occupy a heap row
    tagged with [src = -1]; the caller allocated the closure anyway, so
    the queue itself still adds nothing per event.

    The minimum is read field-by-field ({!min_time}, {!min_src}, …) and
    removed with {!drop_min}, so popping never re-materialises an event
    value either. *)

type 'msg t

(** [create ?capacity ()] is an empty queue with room for [capacity]
    events (default 16) before the first geometric grow. Engines
    pre-size from the graph's edge count so steady-state runs never
    grow mid-flight. *)
val create : ?capacity:int -> unit -> 'msg t

val size : 'msg t -> int
val is_empty : 'msg t -> bool

(** [clear t] empties the queue in O(size), keeping the grown capacity —
    a reused queue never re-pays the doubling copies. Payload and
    closure slots are wiped so popped values can be collected. *)
val clear : 'msg t -> unit

(** [push_deliver t ~time ~seq ~src ~dst ~epoch payload] enqueues a
    delivery. [seq] values must be distinct across both push functions
    (the engine uses its send counter), making the pop order total.
    Allocation-free apart from amortised geometric growth. *)
val push_deliver :
  'msg t -> time:float -> seq:int -> src:int -> dst:int -> epoch:int ->
  'msg -> unit

(** [push_deliver_from t ~times ~at ...] is [push_deliver] with the time
    read from [times.(at)] inside the call. The engine's send path uses
    this to hand over the arrival time it just stored in its FIFO-stamp
    column: dune's dev profile compiles with [-opaque] (no cross-module
    inlining), so a float {e argument} would be boxed at every send,
    while an array-and-index crossing stays allocation-free. *)
val push_deliver_from :
  'msg t -> times:float array -> at:int -> seq:int -> src:int -> dst:int ->
  epoch:int -> 'msg -> unit

(** [push_local t ~time ~seq f] enqueues a local event holding [f]. *)
val push_local : 'msg t -> time:float -> seq:int -> (unit -> unit) -> unit

(** Earliest queued time. Raises [Invalid_argument] when empty. *)
val min_time : 'msg t -> float

(** The raw time column: index 0 is the current minimum's time when the
    queue is non-empty. Same [-opaque] story as {!push_deliver_from} —
    the engine's loop reads [(times q).(0)] as an unboxed load where a
    {!min_time} call would box its float return every iteration. The
    array is replaced on growth: re-fetch after any push, never cache
    across one. *)
val times : 'msg t -> float array

(** Sequence number of the next pop (the tie-break key of the minimum).
    Raises [Invalid_argument] when empty; used by the engine's tracer to
    stamp dispatched events. *)
val min_seq : 'msg t -> int

(** True when the minimum is a local event ([push_local]). Unchecked:
    only meaningful on a non-empty queue. *)
val min_is_local : 'msg t -> bool

(** Delivery fields of the minimum. Unchecked field reads: only
    meaningful on a non-empty queue whose minimum is a delivery. *)
val min_src : 'msg t -> int

val min_dst : 'msg t -> int
val min_epoch : 'msg t -> int
val min_payload : 'msg t -> 'msg

(** Closure of the minimum; only meaningful when [min_is_local]. *)
val min_local : 'msg t -> unit -> unit

(** Removes the minimum, releasing its payload or closure slot. Raises
    [Invalid_argument] when empty. *)
val drop_min : 'msg t -> unit
