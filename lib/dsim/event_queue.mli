(** Allocation-free event priority queue for the engine's hot loop.

    A binary min-heap keyed by [(time, seq)] — earliest time first, send
    order breaking ties — kept in structure-of-arrays layout so pushes
    and pops neither allocate nor call a comparison closure. *)

type 'a t

(** [create ~dummy] is an empty queue; [dummy] back-fills vacated payload
    slots so popped values can be collected. *)
val create : dummy:'a -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [clear t] empties the queue in O(size), keeping the grown capacity —
    a reused queue never re-pays the doubling copies. *)
val clear : 'a t -> unit

(** [add t ~time ~seq x] enqueues [x]. [seq] values must be distinct (the
    engine uses its send counter), making the pop order a total order. *)
val add : 'a t -> time:float -> seq:int -> 'a -> unit

(** Earliest queued time. Raises [Invalid_argument] when empty. *)
val min_time : 'a t -> float

(** Sequence number of the next pop (the tie-break key of the minimum).
    Raises [Invalid_argument] when empty; used by the engine's tracer to
    stamp dispatched events. *)
val min_seq : 'a t -> int

(** Removes and returns the payload with the least [(time, seq)] key.
    Raises [Invalid_argument] when empty. *)
val pop : 'a t -> 'a
