module G = Csap_graph.Graph
module Partition = Csap_graph.Partition

(* The partitioned engine must reproduce the sequential engine's
   (time, seq) processing order exactly, but a global push counter is
   the one thing K free-running domains cannot maintain. The replacement
   is a deterministic event key that encodes the *push order* without a
   shared counter:

   - [Init i]: the i-th setup-time schedule. Setup pushes precede every
     runtime push, so [Init] sorts below everything else.
   - [Child {tp; pk; kth}]: the kth push made while processing the
     parent event (processed at time [tp], carrying key [pk]). Children
     compare by (tp, pk, kth): parents processed earlier pushed earlier,
     equal-time parents are themselves key-ordered, and one parent's
     pushes are ordered by birth rank — exactly the sequential counter's
     order, reconstructed structurally.
   - [Rank r]: at every window barrier the events about to be processed
     (the "batch") are merge-sorted across partitions and their chain
     keys normalised to dense global positions. This is the (time, seq)
     normalisation at merge points: it keeps chains shallow (a key never
     outlives its window) and gives later [Child] keys a bounded anchor.

   Keys only ever decide ties between equal-time events, and windows
   partition simulated time, so normalising a window's batch cannot
   reorder anything relative to a later window. *)
type key =
  | Init of int
  | Rank of int
  | Child of { tp : float; pk : key; kth : int }

let rec compare_key a b =
  match (a, b) with
  | Init a, Init b -> Int.compare a b
  | Init _, _ -> -1
  | _, Init _ -> 1
  | Rank a, Rank b -> Int.compare a b
  | Rank _, Child _ -> -1
  | Child _, Rank _ -> 1
  | Child a, Child b ->
    let c = Float.compare a.tp b.tp in
    if c <> 0 then c
    else
      let c = compare_key a.pk b.pk in
      if c <> 0 then c else Int.compare a.kth b.kth

(* Events in struct-of-arrays form, mirroring the sequential engine's
   {!Event_queue}: one event is one row across six parallel columns —
   time, key, tag (0 = deliver, 1 = local), src, dst and an untyped
   data slot (the message payload, or the local closure). Rows back
   both the per-partition event heaps and the cross-partition
   mailboxes, so an event moves between domains as six column writes
   and is never re-materialised as a record. The [key] column still
   holds boxed structural keys — a [Child] key allocates at push; that
   is the price of ordering without a shared counter and is documented
   in DESIGN.md §14. *)
module Rows = struct
  type t = {
    mutable times : float array;
    mutable keys : key array;
    mutable tags : int array;
    mutable srcs : int array;
    mutable dsts : int array;
    mutable datas : Obj.t array;
    mutable len : int;
  }

  (* Immediate filler keeps [datas] non-float-tagged; the dummy key lets
     vacated rows drop their reference to popped keys. *)
  let filler = Obj.repr 0
  let dummy_key = Init 0

  let create () =
    {
      times = [||];
      keys = [||];
      tags = [||];
      srcs = [||];
      dsts = [||];
      datas = [||];
      len = 0;
    }

  let[@inline never] grow r =
    let cap = Array.length r.tags in
    let cap' = max 16 (2 * cap) in
    let times = Array.make cap' 0.0 in
    let keys = Array.make cap' dummy_key in
    let tags = Array.make cap' 0 in
    let srcs = Array.make cap' 0 in
    let dsts = Array.make cap' 0 in
    let datas = Array.make cap' filler in
    Array.blit r.times 0 times 0 r.len;
    Array.blit r.keys 0 keys 0 r.len;
    Array.blit r.tags 0 tags 0 r.len;
    Array.blit r.srcs 0 srcs 0 r.len;
    Array.blit r.dsts 0 dsts 0 r.len;
    Array.blit r.datas 0 datas 0 r.len;
    r.times <- times;
    r.keys <- keys;
    r.tags <- tags;
    r.srcs <- srcs;
    r.dsts <- dsts;
    r.datas <- datas

  let push r ~time ~key ~tag ~src ~dst data =
    let i = r.len in
    if i = Array.length r.tags then grow r;
    Array.unsafe_set r.times i time;
    Array.unsafe_set r.keys i key;
    Array.unsafe_set r.tags i tag;
    Array.unsafe_set r.srcs i src;
    Array.unsafe_set r.dsts i dst;
    Array.unsafe_set r.datas i data;
    r.len <- i + 1

  (* Keeps the grown capacity; keys and data are wiped so popped values
     don't leak through the reused arrays. *)
  let clear r =
    Array.fill r.keys 0 r.len dummy_key;
    Array.fill r.datas 0 r.len filler;
    r.len <- 0
end

(* 4-ary min-heap over a [Rows.t] keyed by (time, key) — the partitioned
   twin of {!Event_queue}'s (time, seq) heap. The sift loops use
   unchecked access on indices < len (heap shape invariant). *)
module Pheap = struct
  type t = Rows.t

  let create () = Rows.create ()
  let is_empty (h : t) = h.Rows.len = 0
  let clear = Rows.clear

  let less (h : t) i j =
    let ti = Array.unsafe_get h.Rows.times i in
    let tj = Array.unsafe_get h.Rows.times j in
    ti < tj
    || ti = tj
       && compare_key
            (Array.unsafe_get h.Rows.keys i)
            (Array.unsafe_get h.Rows.keys j)
          < 0

  let swap (h : t) i j =
    let r = h in
    let ft = Array.unsafe_get r.Rows.times i in
    Array.unsafe_set r.Rows.times i (Array.unsafe_get r.Rows.times j);
    Array.unsafe_set r.Rows.times j ft;
    let k = Array.unsafe_get r.Rows.keys i in
    Array.unsafe_set r.Rows.keys i (Array.unsafe_get r.Rows.keys j);
    Array.unsafe_set r.Rows.keys j k;
    let s = Array.unsafe_get r.Rows.tags i in
    Array.unsafe_set r.Rows.tags i (Array.unsafe_get r.Rows.tags j);
    Array.unsafe_set r.Rows.tags j s;
    let s = Array.unsafe_get r.Rows.srcs i in
    Array.unsafe_set r.Rows.srcs i (Array.unsafe_get r.Rows.srcs j);
    Array.unsafe_set r.Rows.srcs j s;
    let s = Array.unsafe_get r.Rows.dsts i in
    Array.unsafe_set r.Rows.dsts i (Array.unsafe_get r.Rows.dsts j);
    Array.unsafe_set r.Rows.dsts j s;
    let d = Array.unsafe_get r.Rows.datas i in
    Array.unsafe_set r.Rows.datas i (Array.unsafe_get r.Rows.datas j);
    Array.unsafe_set r.Rows.datas j d

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 4 in
      if less h i parent then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let len = h.Rows.len in
    let c = (4 * i) + 1 in
    if c < len then begin
      let best = c in
      let best = if c + 1 < len && less h (c + 1) best then c + 1 else best in
      let best = if c + 2 < len && less h (c + 2) best then c + 2 else best in
      let best = if c + 3 < len && less h (c + 3) best then c + 3 else best in
      if less h best i then begin
        swap h i best;
        sift_down h best
      end
    end

  let push h ~time ~key ~tag ~src ~dst data =
    Rows.push h ~time ~key ~tag ~src ~dst data;
    sift_up h (h.Rows.len - 1)

  (* Unchecked min readers: callers test [is_empty] first. *)
  let min_time (h : t) = Array.unsafe_get h.Rows.times 0
  let min_key (h : t) = Array.unsafe_get h.Rows.keys 0
  let min_tag (h : t) = Array.unsafe_get h.Rows.tags 0
  let min_src (h : t) = Array.unsafe_get h.Rows.srcs 0
  let min_dst (h : t) = Array.unsafe_get h.Rows.dsts 0
  let min_data (h : t) = Array.unsafe_get h.Rows.datas 0

  let drop_min (h : t) =
    let r = h in
    let last = r.Rows.len - 1 in
    r.Rows.len <- last;
    r.Rows.times.(0) <- Array.unsafe_get r.Rows.times last;
    r.Rows.keys.(0) <- Array.unsafe_get r.Rows.keys last;
    r.Rows.tags.(0) <- Array.unsafe_get r.Rows.tags last;
    r.Rows.srcs.(0) <- Array.unsafe_get r.Rows.srcs last;
    r.Rows.dsts.(0) <- Array.unsafe_get r.Rows.dsts last;
    r.Rows.datas.(0) <- Array.unsafe_get r.Rows.datas last;
    Array.unsafe_set r.Rows.keys last Rows.dummy_key;
    Array.unsafe_set r.Rows.datas last Rows.filler;
    if last > 0 then sift_down h 0
end

let tag_deliver = 0
let tag_local = 1

(* A sense-reversing barrier with abort: a crashing worker poisons the
   barrier so its peers unwind instead of deadlocking on the next
   phase. *)
module Barrier = struct
  exception Aborted

  type t = {
    m : Mutex.t;
    cv : Condition.t;
    total : int;
    mutable arrived : int;
    mutable phase : int;
    mutable aborted : bool;
  }

  let create total =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      total;
      arrived = 0;
      phase = 0;
      aborted = false;
    }

  let await b =
    Mutex.lock b.m;
    if b.aborted then begin
      Mutex.unlock b.m;
      raise Aborted
    end;
    let ph = b.phase in
    b.arrived <- b.arrived + 1;
    if b.arrived = b.total then begin
      b.arrived <- 0;
      b.phase <- ph + 1;
      Condition.broadcast b.cv;
      Mutex.unlock b.m
    end
    else begin
      while b.phase = ph && not b.aborted do
        Condition.wait b.cv b.m
      done;
      let ab = b.aborted in
      Mutex.unlock b.m;
      if ab then raise Aborted
    end

  let abort b =
    Mutex.lock b.m;
    b.aborted <- true;
    Condition.broadcast b.cv;
    Mutex.unlock b.m
end

(* Per-partition execution state. Handlers receive the ctx of the domain
   processing them; everything mutable in here is touched only by that
   domain while the run is live. *)
type 'msg ctx = {
  p : int;
  pe : 'msg t;
  heap : Pheap.t;
  (* Scratch rows the current window's batch is popped into (sorted —
     heap pops ascend) and re-keyed in; reused across windows. *)
  batch : Rows.t;
  pmetrics : Metrics.t;
  mutable clock : float;
  mutable cur_key : key;
  mutable kids : int;
  mutable rank_base : int;
  mutable processed : int;
}

and 'msg t = {
  g : G.t;
  part : Partition.t;
  k : int;
  mutable delay : Delay.t;
  mutable lookahead : float;
  handlers : ('msg ctx -> src:int -> 'msg -> unit) option array;
  (* Sender-owned directed-edge state, shared across domains without
     locks: slot [2 * edge_id + dir] is written only by the partition
     owning the sending endpoint, so all writes are disjoint words. *)
  send_counts : int array;
  last_delivery : float array;
  metrics : Metrics.t;
  mutable ctxs : 'msg ctx array;
  (* mailboxes.(src_p).(dst_p): flat SOA rows appended by src_p between
     barriers, drained column-to-column into dst_p's heap and cleared
     strictly on the other side of a barrier — single producer, single
     consumer, no lock, no per-event record. *)
  mailboxes : Rows.t array array;
  (* Barrier-published scratch: local queue minima, per-instant minimum
     keys (lockstep sub-rounds), and per-partition (time, key) snapshots
     of the window batches for the merge-rank. The snapshot arrays are
     reused across windows (grown geometrically, [pub_lens] bounds the
     live prefix) and copied out of [ctx.batch] so the in-place re-key
     never races a peer's merge read. Written before a barrier, read
     after it. *)
  mins : float array;
  minkeys : key option array;
  pub_times : float array array;
  pub_keys : key array array;
  pub_lens : int array;
  fails : (exn * Printexc.raw_backtrace) option array;
  mutable barrier : Barrier.t;
  mutable inits : (int * float * key * Obj.t) list;
  mutable init_count : int;
  mutable running : bool;
}

(* Conservative lookahead: cross-partition messages carry at least the
   minimum static delay lower bound over the cut edges, so a window of
   that width can run without hearing from other partitions. Any
   unbounded cut edge forces lockstep (zero-width) windows. *)
let lookahead_for g part delay =
  let la = ref infinity in
  (try
     Array.iter
       (fun id ->
         match Delay.lower_bound delay ~w:(G.edge g id).G.w with
         | None ->
           la := 0.0;
           raise Exit
         | Some b -> if b < !la then la := b)
       (Partition.cut_edges part)
   with Exit -> ());
  !la

let check_delay delay =
  if not (Delay.order_independent delay) then
    invalid_arg
      "Pengine: Uniform/Jitter delays sample shared RNG state in global \
       order; partitioned execution requires an order-independent model \
       (Exact, Scaled, Near_zero or a pure Oracle)"

(* Defense in depth behind Protocol.validate: an adaptive adversary's
   decisions depend on the global event order, which the partitioned
   loop does not preserve inside a window — so an ambient adversary
   scope must never silently leak into a Pengine run. *)
let check_no_adaptive what =
  match Adversary.ambient () with
  | None -> ()
  | Some a ->
    invalid_arg
      (Printf.sprintf
         "Pengine.%s: adaptive adversary %S is order-dependent; partitioned \
          execution requires an oblivious schedule (replay its decision \
          trace instead)"
         what a.Adversary.name)

let create ?(delay = Delay.Exact) ?partition ~domains g =
  if domains < 1 then invalid_arg "Pengine.create: domains >= 1 required";
  check_delay delay;
  check_no_adaptive "create";
  let part =
    match partition with
    | Some p ->
      if Partition.graph_id p <> G.id g then
        invalid_arg "Pengine.create: partition built over a different graph";
      if Partition.k p <> domains then
        invalid_arg "Pengine.create: partition block count <> domains";
      p
    | None -> Partition.striped g ~k:domains
  in
  let k = domains in
  let t =
    {
      g;
      part;
      k;
      delay;
      lookahead = lookahead_for g part delay;
      handlers = Array.make (G.n g) None;
      send_counts = Array.make (2 * G.m g) 0;
      last_delivery = Array.make (2 * G.m g) 0.0;
      metrics = Metrics.create ();
      ctxs = [||];
      mailboxes = Array.init k (fun _ -> Array.init k (fun _ -> Rows.create ()));
      mins = Array.make k infinity;
      minkeys = Array.make k None;
      pub_times = Array.make k [||];
      pub_keys = Array.make k [||];
      pub_lens = Array.make k 0;
      fails = Array.make k None;
      barrier = Barrier.create k;
      inits = [];
      init_count = 0;
      running = false;
    }
  in
  t.ctxs <-
    Array.init k (fun p ->
        {
          p;
          pe = t;
          heap = Pheap.create ();
          batch = Rows.create ();
          pmetrics = Metrics.create ();
          clock = 0.0;
          cur_key = Init 0;
          kids = 0;
          rank_base = 0;
          processed = 0;
        });
  t

let graph t = t.g
let partition t = t.part
let domains t = t.k
let lookahead t = t.lookahead
let metrics t = t.metrics

let set_handler t v f = t.handlers.(v) <- Some f

let schedule t ~vertex ~delay f =
  if t.running then
    invalid_arg "Pengine.schedule: run in progress (use schedule_ctx)";
  if vertex < 0 || vertex >= G.n t.g then
    invalid_arg (Printf.sprintf "Pengine.schedule: vertex %d out of range" vertex);
  if not (delay >= 0.0 && delay < infinity) then
    invalid_arg
      (Printf.sprintf
         "Pengine.schedule: invalid delay %g (must be finite, >= 0)" delay);
  let owner = Partition.part_of t.part vertex in
  t.inits <- (owner, delay, Init t.init_count, Obj.repr f) :: t.inits;
  t.init_count <- t.init_count + 1

let now ctx = ctx.clock
let ctx_partition ctx = ctx.p

(* The next push from the event being processed: (parent time, parent
   key, birth rank) — the structural (time, seq). *)
let child_key ctx =
  let key = Child { tp = ctx.clock; pk = ctx.cur_key; kth = ctx.kids } in
  ctx.kids <- ctx.kids + 1;
  key

let route ctx ~time ~key ~tag ~src ~dst data ~owner =
  if owner = ctx.p then Pheap.push ctx.heap ~time ~key ~tag ~src ~dst data
  else
    Rows.push ctx.pe.mailboxes.(ctx.p).(owner) ~time ~key ~tag ~src ~dst data

let send ctx ~src ~dst payload =
  let t = ctx.pe in
  if Partition.part_of t.part src <> ctx.p then
    invalid_arg
      (Printf.sprintf
         "Pengine.send: vertex %d is not owned by the executing partition %d"
         src ctx.p);
  let id = G.edge_id_between t.g src dst in
  if id < 0 then
    invalid_arg
      (Printf.sprintf "Pengine.send: no edge between %d and %d" src dst);
  let e = G.edge t.g id in
  let w = e.G.w in
  let dir = if src = e.G.u then 0 else 1 in
  let slot = (2 * id) + dir in
  let nth = t.send_counts.(slot) in
  t.send_counts.(slot) <- nth + 1;
  Metrics.add_send ctx.pmetrics ~w;
  let d = Delay.sample_on t.delay ~edge_id:id ~dir ~nth ~w in
  if not (d >= 0.0 && d < infinity) then
    invalid_arg
      (Printf.sprintf
         "Pengine.send: delay model produced invalid delay %g on edge %d" d id);
  (* Same FIFO clamp as the sequential engine; the slot is sender-owned,
     so the read-modify-write is single-threaded. *)
  let arrival = Float.max (ctx.clock +. d) t.last_delivery.(slot) in
  t.last_delivery.(slot) <- arrival;
  route ctx ~time:arrival ~key:(child_key ctx) ~tag:tag_deliver ~src ~dst
    (Obj.repr payload)
    ~owner:(Partition.part_of t.part dst)

let schedule_ctx ctx ~vertex ~delay f =
  let t = ctx.pe in
  if vertex < 0 || vertex >= G.n t.g then
    invalid_arg
      (Printf.sprintf "Pengine.schedule_ctx: vertex %d out of range" vertex);
  if not (delay >= 0.0 && delay < infinity) then
    invalid_arg
      (Printf.sprintf
         "Pengine.schedule_ctx: invalid delay %g (must be finite, >= 0)" delay);
  route ctx ~time:(ctx.clock +. delay) ~key:(child_key ctx) ~tag:tag_local
    ~src:(-1) ~dst:(-1) (Obj.repr f)
    ~owner:(Partition.part_of t.part vertex)

let[@inline never] no_handler src dst =
  failwith
    (Printf.sprintf "Pengine: no handler at vertex %d (message sent from %d)"
       dst src)

let dispatch ctx ~time ~key ~tag ~src ~dst data =
  ctx.clock <- Float.max ctx.clock time;
  ctx.cur_key <- key;
  ctx.kids <- 0;
  if tag = tag_deliver then begin
    (match ctx.pe.handlers.(dst) with
    | Some f -> f ctx ~src (Obj.obj data)
    | None -> no_handler src dst);
    ctx.pmetrics.Metrics.last_delivery_time <- ctx.clock
  end
  else (Obj.obj data : _ ctx -> unit) ctx;
  ctx.processed <- ctx.processed + 1;
  let m = ctx.pmetrics in
  m.Metrics.events <- m.Metrics.events + 1;
  m.Metrics.completion_time <- ctx.clock

(* Pop the heap minimum into [dispatch] — fields first, then the row is
   dropped in place; no event value is ever rebuilt. *)
let dispatch_min ctx =
  let h = ctx.heap in
  let time = Pheap.min_time h in
  let key = Pheap.min_key h in
  let tag = Pheap.min_tag h in
  let src = Pheap.min_src h in
  let dst = Pheap.min_dst h in
  let data = Pheap.min_data h in
  Pheap.drop_min h;
  dispatch ctx ~time ~key ~tag ~src ~dst data

(* Batch-drain the mailboxes addressed to this partition: column reads
   on the sender's rows, column writes into the local heap — the events
   cross the domain boundary without being re-boxed into records. *)
let drain t ctx =
  for q = 0 to t.k - 1 do
    if q <> ctx.p then begin
      let r = t.mailboxes.(q).(ctx.p) in
      let n = r.Rows.len in
      if n > 0 then begin
        for i = 0 to n - 1 do
          Pheap.push ctx.heap ~time:r.Rows.times.(i) ~key:r.Rows.keys.(i)
            ~tag:r.Rows.tags.(i) ~src:r.Rows.srcs.(i) ~dst:r.Rows.dsts.(i)
            r.Rows.datas.(i)
        done;
        Rows.clear r
      end
    end
  done

let local_min ctx =
  if Pheap.is_empty ctx.heap then infinity else Pheap.min_time ctx.heap

(* Pop the events this window will process into the scratch batch:
   times in [t0, t1) for positive lookahead, exactly t0 for lockstep.
   Heap pops come out already (time, key)-sorted. *)
let pop_batch t ctx ~t0 ~t1 =
  let h = ctx.heap in
  let continue = ref true in
  while !continue do
    if Pheap.is_empty h then continue := false
    else
      let time = Pheap.min_time h in
      if if t.lookahead > 0.0 then time < t1 else time <= t0 then begin
        Rows.push ctx.batch ~time ~key:(Pheap.min_key h) ~tag:(Pheap.min_tag h)
          ~src:(Pheap.min_src h) ~dst:(Pheap.min_dst h) (Pheap.min_data h);
        Pheap.drop_min h
      end
      else continue := false
  done

(* Publish an immutable (time, key) snapshot of the batch for the
   merge-rank; the copy means the in-place re-key of [ctx.batch] cannot
   race a peer still reading. The publish arrays are reused and grown
   geometrically. *)
let publish_batch t ctx =
  let b = ctx.batch in
  let n = b.Rows.len in
  if Array.length t.pub_times.(ctx.p) < n then begin
    let cap = max 16 (max n (2 * Array.length t.pub_times.(ctx.p))) in
    t.pub_times.(ctx.p) <- Array.make cap 0.0;
    t.pub_keys.(ctx.p) <- Array.make cap Rows.dummy_key
  end;
  Array.blit b.Rows.times 0 t.pub_times.(ctx.p) 0 n;
  Array.blit b.Rows.keys 0 t.pub_keys.(ctx.p) 0 n;
  t.pub_lens.(ctx.p) <- n

(* The (time, seq) normalisation: K-way merge every partition's
   published batch snapshot (each one sorted) into the globally-agreed
   order, rewriting this partition's chain keys as dense ranks. Each
   partition runs the same merge over the same published data, so no
   further synchronisation is needed to agree on ranks. Keys are unique
   across partitions, so the merge order is total. *)
let rank_batch t ctx =
  let total = ref 0 in
  for q = 0 to t.k - 1 do
    total := !total + t.pub_lens.(q)
  done;
  let total = !total in
  if total > 0 then begin
    let cursors = Array.make t.k 0 in
    for pos = 0 to total - 1 do
      let best = ref (-1) in
      for q = 0 to t.k - 1 do
        if cursors.(q) < t.pub_lens.(q) then
          if !best < 0 then best := q
          else begin
            let cb = cursors.(!best) and cq = cursors.(q) in
            let tb = t.pub_times.(!best).(cb) and tq = t.pub_times.(q).(cq) in
            if
              tq < tb
              || tq = tb
                 && compare_key t.pub_keys.(q).(cq) t.pub_keys.(!best).(cb) < 0
            then best := q
          end
      done;
      let q = !best in
      if q = ctx.p then
        ctx.batch.Rows.keys.(cursors.(q)) <- Rank (ctx.rank_base + pos);
      cursors.(q) <- cursors.(q) + 1
    done;
    ctx.rank_base <- ctx.rank_base + total;
    (* Reinsert the re-keyed batch rows into the local heap. *)
    let b = ctx.batch in
    for i = 0 to b.Rows.len - 1 do
      Pheap.push ctx.heap ~time:b.Rows.times.(i) ~key:b.Rows.keys.(i)
        ~tag:b.Rows.tags.(i) ~src:b.Rows.srcs.(i) ~dst:b.Rows.dsts.(i)
        b.Rows.datas.(i)
    done;
    Rows.clear b
  end

(* One lockstep sub-round bound: the smallest instant-t0 key any *other*
   partition may still process. Everything a peer sends in the future
   carries a key above its current minimum (children always outrank
   their parents), so processing strictly below this bound is safe. *)
let other_min_key t ctx =
  let bound = ref None in
  for q = 0 to t.k - 1 do
    if q <> ctx.p then
      match t.minkeys.(q) with
      | None -> ()
      | Some k -> (
        match !bound with
        | None -> bound := Some k
        | Some b -> if compare_key k b < 0 then bound := Some k)
  done;
  !bound

let process_window ctx ~t1 =
  let h = ctx.heap in
  let continue = ref true in
  while !continue do
    if Pheap.is_empty h || Pheap.min_time h >= t1 then continue := false
    else dispatch_min ctx
  done

let process_instant ctx ~t0 ~bound =
  let h = ctx.heap in
  let continue = ref true in
  while !continue do
    if
      (not (Pheap.is_empty h))
      && Pheap.min_time h = t0
      && (match bound with
         | None -> true
         | Some b -> compare_key (Pheap.min_key h) b < 0)
    then dispatch_min ctx
    else continue := false
  done

let minkey_at ctx ~t0 =
  if (not (Pheap.is_empty ctx.heap)) && Pheap.min_time ctx.heap = t0 then
    Some (Pheap.min_key ctx.heap)
  else None

(* Zero-lookahead windows: a single simulated instant, processed in
   global key order via sub-rounds. Each sub-round publishes every
   partition's minimum pending key at t0; a partition may process
   strictly below the minimum over its peers (the conservative null
   message in key space), then mailboxes are exchanged in case a
   zero-delay cross edge landed new work at the same instant. The
   partition holding the global minimum always progresses, so the loop
   terminates whenever the sequential run does. *)
let run_instant t ctx ~t0 =
  let b = t.barrier in
  let continue = ref true in
  while !continue do
    t.minkeys.(ctx.p) <- minkey_at ctx ~t0;
    Barrier.await b;
    let any = Array.exists Option.is_some t.minkeys in
    if not any then continue := false
    else begin
      let bound = other_min_key t ctx in
      process_instant ctx ~t0 ~bound;
      Barrier.await b;
      drain t ctx
    end
  done

let main_loop t ctx =
  let b = t.barrier in
  let continue = ref true in
  while !continue do
    drain t ctx;
    t.mins.(ctx.p) <- local_min ctx;
    Barrier.await b;
    let t0 = Array.fold_left Float.min infinity t.mins in
    if t0 = infinity then continue := false
    else begin
      let t1 = t0 +. t.lookahead in
      pop_batch t ctx ~t0 ~t1;
      publish_batch t ctx;
      Barrier.await b;
      rank_batch t ctx;
      if t.lookahead > 0.0 then begin
        process_window ctx ~t1;
        Barrier.await b
      end
      else run_instant t ctx ~t0
    end
  done

(* GC statistics are domain-local in OCaml 5, so each worker snapshots
   its own counters around the run and banks the delta into its
   per-partition metrics — captured even when the run unwinds through
   the barrier. *)
let worker t ctx =
  (* [Gc.minor_words ()] reads the allocation pointer; quick_stat's
     minor_words only advances at minor collections (OCaml 5.1). *)
  let g0 = Gc.quick_stat () in
  let w0 = Gc.minor_words () in
  (try main_loop t ctx with
  | Barrier.Aborted -> ()
  | e ->
    let bt = Printexc.get_raw_backtrace () in
    t.fails.(ctx.p) <- Some (e, bt);
    Barrier.abort t.barrier);
  let g1 = Gc.quick_stat () in
  Metrics.add_alloc ctx.pmetrics
    ~minor_words:(Gc.minor_words () -. w0)
    ~promoted_words:(g1.Gc.promoted_words -. g0.Gc.promoted_words)
    ~major_collections:(g1.Gc.major_collections - g0.Gc.major_collections)

let merge_metrics t =
  Metrics.reset t.metrics;
  let m = t.metrics in
  Array.iter
    (fun ctx ->
      let pm = ctx.pmetrics in
      m.Metrics.messages <- m.Metrics.messages + pm.Metrics.messages;
      m.Metrics.weighted_comm <-
        m.Metrics.weighted_comm + pm.Metrics.weighted_comm;
      m.Metrics.events <- m.Metrics.events + pm.Metrics.events;
      m.Metrics.completion_time <-
        Float.max m.Metrics.completion_time pm.Metrics.completion_time;
      m.Metrics.last_delivery_time <-
        Float.max m.Metrics.last_delivery_time pm.Metrics.last_delivery_time;
      (* Allocation is a sum over domains, not a max. *)
      Metrics.add_alloc m ~minor_words:pm.Metrics.alloc_minor_words
        ~promoted_words:pm.Metrics.alloc_promoted_words
        ~major_collections:pm.Metrics.alloc_major_collections)
    t.ctxs

let run t =
  if t.running then invalid_arg "Pengine.run: run already in progress";
  t.running <- true;
  t.barrier <- Barrier.create t.k;
  Array.fill t.fails 0 t.k None;
  List.iter
    (fun (owner, time, key, f) ->
      Pheap.push t.ctxs.(owner).heap ~time ~key ~tag:tag_local ~src:(-1)
        ~dst:(-1) f)
    (List.rev t.inits);
  t.inits <- [];
  let others =
    Array.init (t.k - 1) (fun i ->
        let ctx = t.ctxs.(i + 1) in
        Domain.spawn (fun () -> worker t ctx))
  in
  worker t t.ctxs.(0);
  Array.iter Domain.join others;
  t.running <- false;
  merge_metrics t;
  let failed = ref None in
  for p = t.k - 1 downto 0 do
    match t.fails.(p) with Some f -> failed := Some f | None -> ()
  done;
  (match !failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.fold_left (fun acc ctx -> acc + ctx.processed) 0 t.ctxs

let reset ?delay t =
  if t.running then invalid_arg "Pengine.reset: run in progress";
  check_no_adaptive "reset";
  (match delay with
  | Some d ->
    check_delay d;
    t.delay <- d;
    t.lookahead <- lookahead_for t.g t.part d
  | None -> ());
  Array.fill t.handlers 0 (Array.length t.handlers) None;
  Array.fill t.send_counts 0 (Array.length t.send_counts) 0;
  Array.fill t.last_delivery 0 (Array.length t.last_delivery) 0.0;
  Metrics.reset t.metrics;
  Array.iter
    (fun ctx ->
      Pheap.clear ctx.heap;
      Rows.clear ctx.batch;
      Metrics.reset ctx.pmetrics;
      ctx.clock <- 0.0;
      ctx.cur_key <- Init 0;
      ctx.kids <- 0;
      ctx.rank_base <- 0;
      ctx.processed <- 0)
    t.ctxs;
  Array.iter (fun row -> Array.iter Rows.clear row) t.mailboxes;
  Array.fill t.mins 0 t.k infinity;
  Array.fill t.minkeys 0 t.k None;
  (* Publish snapshots: drop stale key references, keep the capacity. *)
  for p = 0 to t.k - 1 do
    Array.fill t.pub_keys.(p) 0 (Array.length t.pub_keys.(p)) Rows.dummy_key;
    t.pub_lens.(p) <- 0
  done;
  Array.fill t.fails 0 t.k None;
  t.inits <- [];
  t.init_count <- 0
