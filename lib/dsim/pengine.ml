module G = Csap_graph.Graph
module Partition = Csap_graph.Partition
module Heap = Csap_graph.Heap

(* The partitioned engine must reproduce the sequential engine's
   (time, seq) processing order exactly, but a global push counter is
   the one thing K free-running domains cannot maintain. The replacement
   is a deterministic event key that encodes the *push order* without a
   shared counter:

   - [Init i]: the i-th setup-time schedule. Setup pushes precede every
     runtime push, so [Init] sorts below everything else.
   - [Child {tp; pk; kth}]: the kth push made while processing the
     parent event (processed at time [tp], carrying key [pk]). Children
     compare by (tp, pk, kth): parents processed earlier pushed earlier,
     equal-time parents are themselves key-ordered, and one parent's
     pushes are ordered by birth rank — exactly the sequential counter's
     order, reconstructed structurally.
   - [Rank r]: at every window barrier the events about to be processed
     (the "batch") are merge-sorted across partitions and their chain
     keys normalised to dense global positions. This is the (time, seq)
     normalisation at merge points: it keeps chains shallow (a key never
     outlives its window) and gives later [Child] keys a bounded anchor.

   Keys only ever decide ties between equal-time events, and windows
   partition simulated time, so normalising a window's batch cannot
   reorder anything relative to a later window. *)
type key =
  | Init of int
  | Rank of int
  | Child of { tp : float; pk : key; kth : int }

let rec compare_key a b =
  match (a, b) with
  | Init a, Init b -> compare (a : int) b
  | Init _, _ -> -1
  | _, Init _ -> 1
  | Rank a, Rank b -> compare (a : int) b
  | Rank _, Child _ -> -1
  | Child _, Rank _ -> 1
  | Child a, Child b ->
    let c = compare (a.tp : float) b.tp in
    if c <> 0 then c
    else
      let c = compare_key a.pk b.pk in
      if c <> 0 then c else compare (a.kth : int) b.kth

(* A sense-reversing barrier with abort: a crashing worker poisons the
   barrier so its peers unwind instead of deadlocking on the next
   phase. *)
module Barrier = struct
  exception Aborted

  type t = {
    m : Mutex.t;
    cv : Condition.t;
    total : int;
    mutable arrived : int;
    mutable phase : int;
    mutable aborted : bool;
  }

  let create total =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      total;
      arrived = 0;
      phase = 0;
      aborted = false;
    }

  let await b =
    Mutex.lock b.m;
    if b.aborted then begin
      Mutex.unlock b.m;
      raise Aborted
    end;
    let ph = b.phase in
    b.arrived <- b.arrived + 1;
    if b.arrived = b.total then begin
      b.arrived <- 0;
      b.phase <- ph + 1;
      Condition.broadcast b.cv;
      Mutex.unlock b.m
    end
    else begin
      while b.phase = ph && not b.aborted do
        Condition.wait b.cv b.m
      done;
      let ab = b.aborted in
      Mutex.unlock b.m;
      if ab then raise Aborted
    end

  let abort b =
    Mutex.lock b.m;
    b.aborted <- true;
    Condition.broadcast b.cv;
    Mutex.unlock b.m
end

type 'msg action =
  | Deliver of { src : int; dst : int; payload : 'msg }
  | Local of ('msg ctx -> unit)

and 'msg ev = { time : float; mutable key : key; action : 'msg action }

(* Per-partition execution state. Handlers receive the ctx of the domain
   processing them; everything mutable in here is touched only by that
   domain while the run is live. *)
and 'msg ctx = {
  p : int;
  pe : 'msg t;
  heap : 'msg ev Heap.t;
  pmetrics : Metrics.t;
  mutable clock : float;
  mutable cur_key : key;
  mutable kids : int;
  mutable rank_base : int;
  mutable processed : int;
}

and 'msg t = {
  g : G.t;
  part : Partition.t;
  k : int;
  mutable delay : Delay.t;
  mutable lookahead : float;
  handlers : ('msg ctx -> src:int -> 'msg -> unit) option array;
  (* Sender-owned directed-edge state, shared across domains without
     locks: slot [2 * edge_id + dir] is written only by the partition
     owning the sending endpoint, so all writes are disjoint words. *)
  send_counts : int array;
  last_delivery : float array;
  metrics : Metrics.t;
  mutable ctxs : 'msg ctx array;
  (* mailboxes.(src_p).(dst_p): appended by src_p between barriers,
     drained and cleared by dst_p strictly on the other side of a
     barrier — single producer, single consumer, no lock. *)
  mailboxes : 'msg ev list array array;
  (* Barrier-published scratch: local queue minima, per-instant minimum
     keys (lockstep sub-rounds), and immutable batch snapshots for the
     merge-rank. Written before a barrier, read after it. *)
  mins : float array;
  minkeys : key option array;
  batches : (float * key) array array;
  fails : (exn * Printexc.raw_backtrace) option array;
  mutable barrier : Barrier.t;
  mutable inits : (int * 'msg ev) list;
  mutable init_count : int;
  mutable running : bool;
}

let compare_ev a b =
  let c = compare (a.time : float) b.time in
  if c <> 0 then c else compare_key a.key b.key

(* Conservative lookahead: cross-partition messages carry at least the
   minimum static delay lower bound over the cut edges, so a window of
   that width can run without hearing from other partitions. Any
   unbounded cut edge forces lockstep (zero-width) windows. *)
let lookahead_for g part delay =
  let la = ref infinity in
  (try
     Array.iter
       (fun id ->
         match Delay.lower_bound delay ~w:(G.edge g id).G.w with
         | None ->
           la := 0.0;
           raise Exit
         | Some b -> if b < !la then la := b)
       (Partition.cut_edges part)
   with Exit -> ());
  !la

let check_delay delay =
  if not (Delay.order_independent delay) then
    invalid_arg
      "Pengine: Uniform/Jitter delays sample shared RNG state in global \
       order; partitioned execution requires an order-independent model \
       (Exact, Scaled, Near_zero or a pure Oracle)"

let create ?(delay = Delay.Exact) ?partition ~domains g =
  if domains < 1 then invalid_arg "Pengine.create: domains >= 1 required";
  check_delay delay;
  let part =
    match partition with
    | Some p ->
      if Partition.graph_id p <> G.id g then
        invalid_arg "Pengine.create: partition built over a different graph";
      if Partition.k p <> domains then
        invalid_arg "Pengine.create: partition block count <> domains";
      p
    | None -> Partition.striped g ~k:domains
  in
  let k = domains in
  let t =
    {
      g;
      part;
      k;
      delay;
      lookahead = lookahead_for g part delay;
      handlers = Array.make (G.n g) None;
      send_counts = Array.make (2 * G.m g) 0;
      last_delivery = Array.make (2 * G.m g) 0.0;
      metrics = Metrics.create ();
      ctxs = [||];
      mailboxes = Array.init k (fun _ -> Array.make k []);
      mins = Array.make k infinity;
      minkeys = Array.make k None;
      batches = Array.make k [||];
      fails = Array.make k None;
      barrier = Barrier.create k;
      inits = [];
      init_count = 0;
      running = false;
    }
  in
  t.ctxs <-
    Array.init k (fun p ->
        {
          p;
          pe = t;
          heap = Heap.create ~cmp:compare_ev;
          pmetrics = Metrics.create ();
          clock = 0.0;
          cur_key = Init 0;
          kids = 0;
          rank_base = 0;
          processed = 0;
        });
  t

let graph t = t.g
let partition t = t.part
let domains t = t.k
let lookahead t = t.lookahead
let metrics t = t.metrics

let set_handler t v f = t.handlers.(v) <- Some f

let schedule t ~vertex ~delay f =
  if t.running then
    invalid_arg "Pengine.schedule: run in progress (use schedule_ctx)";
  if vertex < 0 || vertex >= G.n t.g then
    invalid_arg (Printf.sprintf "Pengine.schedule: vertex %d out of range" vertex);
  if not (delay >= 0.0 && delay < infinity) then
    invalid_arg
      (Printf.sprintf
         "Pengine.schedule: invalid delay %g (must be finite, >= 0)" delay);
  let ev = { time = delay; key = Init t.init_count; action = Local f } in
  t.init_count <- t.init_count + 1;
  t.inits <- (Partition.part_of t.part vertex, ev) :: t.inits

let now ctx = ctx.clock
let ctx_partition ctx = ctx.p

(* The next push from the event being processed: (parent time, parent
   key, birth rank) — the structural (time, seq). *)
let child_key ctx =
  let key = Child { tp = ctx.clock; pk = ctx.cur_key; kth = ctx.kids } in
  ctx.kids <- ctx.kids + 1;
  key

let route ctx ev ~owner =
  if owner = ctx.p then Heap.add ctx.heap ev
  else begin
    let t = ctx.pe in
    t.mailboxes.(ctx.p).(owner) <- ev :: t.mailboxes.(ctx.p).(owner)
  end

let send ctx ~src ~dst payload =
  let t = ctx.pe in
  if Partition.part_of t.part src <> ctx.p then
    invalid_arg
      (Printf.sprintf
         "Pengine.send: vertex %d is not owned by the executing partition %d"
         src ctx.p);
  let id = G.edge_id_between t.g src dst in
  if id < 0 then
    invalid_arg
      (Printf.sprintf "Pengine.send: no edge between %d and %d" src dst);
  let e = G.edge t.g id in
  let w = e.G.w in
  let dir = if src = e.G.u then 0 else 1 in
  let slot = (2 * id) + dir in
  let nth = t.send_counts.(slot) in
  t.send_counts.(slot) <- nth + 1;
  Metrics.add_send ctx.pmetrics ~w;
  let d = Delay.sample_on t.delay ~edge_id:id ~dir ~nth ~w in
  if not (d >= 0.0 && d < infinity) then
    invalid_arg
      (Printf.sprintf
         "Pengine.send: delay model produced invalid delay %g on edge %d" d id);
  (* Same FIFO clamp as the sequential engine; the slot is sender-owned,
     so the read-modify-write is single-threaded. *)
  let arrival = Float.max (ctx.clock +. d) t.last_delivery.(slot) in
  t.last_delivery.(slot) <- arrival;
  route ctx
    { time = arrival; key = child_key ctx; action = Deliver { src; dst; payload } }
    ~owner:(Partition.part_of t.part dst)

let schedule_ctx ctx ~vertex ~delay f =
  let t = ctx.pe in
  if vertex < 0 || vertex >= G.n t.g then
    invalid_arg
      (Printf.sprintf "Pengine.schedule_ctx: vertex %d out of range" vertex);
  if not (delay >= 0.0 && delay < infinity) then
    invalid_arg
      (Printf.sprintf
         "Pengine.schedule_ctx: invalid delay %g (must be finite, >= 0)" delay);
  route ctx
    { time = ctx.clock +. delay; key = child_key ctx; action = Local f }
    ~owner:(Partition.part_of t.part vertex)

let dispatch ctx ev =
  ctx.clock <- Float.max ctx.clock ev.time;
  ctx.cur_key <- ev.key;
  ctx.kids <- 0;
  (match ev.action with
  | Local f -> f ctx
  | Deliver { src; dst; payload } -> (
    match ctx.pe.handlers.(dst) with
    | Some f -> f ctx ~src payload
    | None ->
      failwith
        (Printf.sprintf
           "Pengine: no handler at vertex %d (message sent from %d)" dst src)));
  ctx.processed <- ctx.processed + 1;
  let m = ctx.pmetrics in
  m.Metrics.events <- m.Metrics.events + 1;
  m.Metrics.completion_time <- ctx.clock;
  match ev.action with
  | Deliver _ -> m.Metrics.last_delivery_time <- ctx.clock
  | Local _ -> ()

let drain t ctx =
  for q = 0 to t.k - 1 do
    if q <> ctx.p then begin
      match t.mailboxes.(q).(ctx.p) with
      | [] -> ()
      | evs ->
        t.mailboxes.(q).(ctx.p) <- [];
        List.iter (Heap.add ctx.heap) evs
    end
  done

let local_min ctx =
  match Heap.peek_min ctx.heap with
  | Some ev -> ev.time
  | None -> infinity

(* Pop the events this window will process: times in [t0, t1) for
   positive lookahead, exactly t0 for lockstep. Heap pops come out
   already (time, key)-sorted. *)
let pop_batch t ctx ~t0 ~t1 =
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    match Heap.peek_min ctx.heap with
    | Some ev
      when (if t.lookahead > 0.0 then ev.time < t1 else ev.time <= t0) ->
      ignore (Heap.pop_min ctx.heap);
      acc := ev :: !acc
    | _ -> continue := false
  done;
  Array.of_list (List.rev !acc)

(* The (time, seq) normalisation: merge every partition's batch snapshot
   into one globally-agreed order and rewrite the chain keys as dense
   ranks. Each partition runs the same sort over the same published
   data, so no further synchronisation is needed to agree on ranks. *)
let rank_batch t ctx batch =
  let total = Array.fold_left (fun acc b -> acc + Array.length b) 0 t.batches in
  if total > 0 then begin
    let combined = Array.make total (0.0, Init 0, 0, 0) in
    let i = ref 0 in
    Array.iteri
      (fun q b ->
        Array.iteri
          (fun idx (time, key) ->
            combined.(!i) <- (time, key, q, idx);
            incr i)
          b)
      t.batches;
    Array.sort
      (fun (ta, ka, _, _) (tb, kb, _, _) ->
        let c = compare (ta : float) tb in
        if c <> 0 then c else compare_key ka kb)
      combined;
    Array.iteri
      (fun pos (_, _, q, idx) ->
        if q = ctx.p then batch.(idx).key <- Rank (ctx.rank_base + pos))
      combined;
    ctx.rank_base <- ctx.rank_base + total;
    Array.iter (Heap.add ctx.heap) batch
  end

(* One lockstep sub-round bound: the smallest instant-t0 key any *other*
   partition may still process. Everything a peer sends in the future
   carries a key above its current minimum (children always outrank
   their parents), so processing strictly below this bound is safe. *)
let other_min_key t ctx =
  let bound = ref None in
  for q = 0 to t.k - 1 do
    if q <> ctx.p then
      match t.minkeys.(q) with
      | None -> ()
      | Some k -> (
        match !bound with
        | None -> bound := Some k
        | Some b -> if compare_key k b < 0 then bound := Some k)
  done;
  !bound

let process_window ctx ~t1 =
  let continue = ref true in
  while !continue do
    match Heap.peek_min ctx.heap with
    | Some ev when ev.time < t1 ->
      ignore (Heap.pop_min ctx.heap);
      dispatch ctx ev
    | _ -> continue := false
  done

let process_instant ctx ~t0 ~bound =
  let continue = ref true in
  while !continue do
    match Heap.peek_min ctx.heap with
    | Some ev
      when ev.time = t0
           && (match bound with
              | None -> true
              | Some b -> compare_key ev.key b < 0) ->
      ignore (Heap.pop_min ctx.heap);
      dispatch ctx ev
    | _ -> continue := false
  done

let minkey_at ctx ~t0 =
  match Heap.peek_min ctx.heap with
  | Some ev when ev.time = t0 -> Some ev.key
  | _ -> None

(* Zero-lookahead windows: a single simulated instant, processed in
   global key order via sub-rounds. Each sub-round publishes every
   partition's minimum pending key at t0; a partition may process
   strictly below the minimum over its peers (the conservative null
   message in key space), then mailboxes are exchanged in case a
   zero-delay cross edge landed new work at the same instant. The
   partition holding the global minimum always progresses, so the loop
   terminates whenever the sequential run does. *)
let run_instant t ctx ~t0 =
  let b = t.barrier in
  let continue = ref true in
  while !continue do
    t.minkeys.(ctx.p) <- minkey_at ctx ~t0;
    Barrier.await b;
    let any = Array.exists Option.is_some t.minkeys in
    if not any then continue := false
    else begin
      let bound = other_min_key t ctx in
      process_instant ctx ~t0 ~bound;
      Barrier.await b;
      drain t ctx
    end
  done

let main_loop t ctx =
  let b = t.barrier in
  let continue = ref true in
  while !continue do
    drain t ctx;
    t.mins.(ctx.p) <- local_min ctx;
    Barrier.await b;
    let t0 = Array.fold_left Float.min infinity t.mins in
    if t0 = infinity then continue := false
    else begin
      let t1 = t0 +. t.lookahead in
      let batch = pop_batch t ctx ~t0 ~t1 in
      t.batches.(ctx.p) <- Array.map (fun ev -> (ev.time, ev.key)) batch;
      Barrier.await b;
      rank_batch t ctx batch;
      if t.lookahead > 0.0 then begin
        process_window ctx ~t1;
        Barrier.await b
      end
      else run_instant t ctx ~t0
    end
  done

let worker t ctx =
  try main_loop t ctx with
  | Barrier.Aborted -> ()
  | e ->
    let bt = Printexc.get_raw_backtrace () in
    t.fails.(ctx.p) <- Some (e, bt);
    Barrier.abort t.barrier

let merge_metrics t =
  Metrics.reset t.metrics;
  let m = t.metrics in
  Array.iter
    (fun ctx ->
      let pm = ctx.pmetrics in
      m.Metrics.messages <- m.Metrics.messages + pm.Metrics.messages;
      m.Metrics.weighted_comm <-
        m.Metrics.weighted_comm + pm.Metrics.weighted_comm;
      m.Metrics.events <- m.Metrics.events + pm.Metrics.events;
      m.Metrics.completion_time <-
        Float.max m.Metrics.completion_time pm.Metrics.completion_time;
      m.Metrics.last_delivery_time <-
        Float.max m.Metrics.last_delivery_time pm.Metrics.last_delivery_time)
    t.ctxs

let run t =
  if t.running then invalid_arg "Pengine.run: run already in progress";
  t.running <- true;
  t.barrier <- Barrier.create t.k;
  Array.fill t.fails 0 t.k None;
  List.iter
    (fun (owner, ev) -> Heap.add t.ctxs.(owner).heap ev)
    (List.rev t.inits);
  t.inits <- [];
  let others =
    Array.init (t.k - 1) (fun i ->
        let ctx = t.ctxs.(i + 1) in
        Domain.spawn (fun () -> worker t ctx))
  in
  worker t t.ctxs.(0);
  Array.iter Domain.join others;
  t.running <- false;
  merge_metrics t;
  let failed = ref None in
  for p = t.k - 1 downto 0 do
    match t.fails.(p) with Some f -> failed := Some f | None -> ()
  done;
  (match !failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.fold_left (fun acc ctx -> acc + ctx.processed) 0 t.ctxs

let reset ?delay t =
  if t.running then invalid_arg "Pengine.reset: run in progress";
  (match delay with
  | Some d ->
    check_delay d;
    t.delay <- d;
    t.lookahead <- lookahead_for t.g t.part d
  | None -> ());
  Array.fill t.handlers 0 (Array.length t.handlers) None;
  Array.fill t.send_counts 0 (Array.length t.send_counts) 0;
  Array.fill t.last_delivery 0 (Array.length t.last_delivery) 0.0;
  Metrics.reset t.metrics;
  Array.iter
    (fun ctx ->
      Heap.clear ctx.heap;
      Metrics.reset ctx.pmetrics;
      ctx.clock <- 0.0;
      ctx.cur_key <- Init 0;
      ctx.kids <- 0;
      ctx.rank_base <- 0;
      ctx.processed <- 0)
    t.ctxs;
  Array.iter (fun row -> Array.fill row 0 t.k []) t.mailboxes;
  Array.fill t.mins 0 t.k infinity;
  Array.fill t.minkeys 0 t.k None;
  Array.fill t.batches 0 t.k [||];
  Array.fill t.fails 0 t.k None;
  t.inits <- [];
  t.init_count <- 0
