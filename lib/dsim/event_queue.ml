(* A 4-ary min-heap over (time, seq) keys in full structure-of-arrays
   layout: times in a flat [float array] (unboxed), seq/src/dst/epoch in
   parallel [int array]s, payloads in an untyped [Obj.t array]. A
   delivery push is six unboxed row writes plus a sift — zero heap
   words — where the previous design allocated a [Deliver] record per
   message. Local closures go through a side slot table ([locals] plus
   a free-list stack) and are encoded in the rows as [src = -1] with
   the slot index in [dst], so the heap arrays stay homogeneous.

   The payload column is created with an immediate filler, giving the
   array a non-float tag; stores and reads are generic (pointer-sized),
   so any ['msg] — including boxed floats — round-trips unchanged.

   Compared with a generic binary heap of boxed event records this
   removes every per-event allocation on the push/pop path, replaces
   closure-driven comparison with inline primitive compares, and halves
   the sift depth — the engine's event loop spends most of its time
   here. The sift loops use unchecked array access; every index is
   < len by the heap shape invariant. *)

type 'msg t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable srcs : int array;  (* -1 marks a local event *)
  mutable dsts : int array;  (* local events: slot index into [locals] *)
  mutable epochs : int array;
  mutable data : Obj.t array;
  mutable len : int;
  (* Side table for local-event closures; [free] is a stack of vacant
     slot indices below [nlocals]. *)
  mutable locals : (unit -> unit) array;
  mutable free : int array;
  mutable nfree : int;
  mutable nlocals : int;
}

(* Immediate filler: keeps [data] non-float-tagged and lets vacated rows
   drop their reference to popped payloads. *)
let filler = Obj.repr 0
let no_local () = ()

let create ?(capacity = 16) () =
  let cap = max 1 capacity in
  {
    times = Array.make cap 0.0;
    seqs = Array.make cap 0;
    srcs = Array.make cap 0;
    dsts = Array.make cap 0;
    epochs = Array.make cap 0;
    data = Array.make cap filler;
    len = 0;
    locals = [||];
    free = [||];
    nfree = 0;
    nlocals = 0;
  }

let size t = t.len
let is_empty t = t.len = 0

(* Keeps the grown capacity, so a reused queue never re-pays the doubling
   copies; payload and closure slots are wiped so popped values don't
   leak. *)
let clear t =
  Array.fill t.data 0 t.len filler;
  Array.fill t.locals 0 t.nlocals no_local;
  t.len <- 0;
  t.nfree <- 0;
  t.nlocals <- 0

let[@inline never] grow t =
  let cap = Array.length t.seqs in
  let cap' = max 16 (2 * cap) in
  let times = Array.make cap' 0.0 in
  let seqs = Array.make cap' 0 in
  let srcs = Array.make cap' 0 in
  let dsts = Array.make cap' 0 in
  let epochs = Array.make cap' 0 in
  let data = Array.make cap' filler in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.srcs 0 srcs 0 t.len;
  Array.blit t.dsts 0 dsts 0 t.len;
  Array.blit t.epochs 0 epochs 0 t.len;
  Array.blit t.data 0 data 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.srcs <- srcs;
  t.dsts <- dsts;
  t.epochs <- epochs;
  t.data <- data

(* Strict (time, seq) lexicographic order; seqs are distinct, so this is a
   total order and the queue is deterministic. *)
let[@inline] less t i j =
  let ti = Array.unsafe_get t.times i and tj = Array.unsafe_get t.times j in
  ti < tj
  || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let[@inline] swap t i j =
  let ft = Array.unsafe_get t.times i in
  Array.unsafe_set t.times i (Array.unsafe_get t.times j);
  Array.unsafe_set t.times j ft;
  let s = Array.unsafe_get t.seqs i in
  Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs j);
  Array.unsafe_set t.seqs j s;
  let s = Array.unsafe_get t.srcs i in
  Array.unsafe_set t.srcs i (Array.unsafe_get t.srcs j);
  Array.unsafe_set t.srcs j s;
  let s = Array.unsafe_get t.dsts i in
  Array.unsafe_set t.dsts i (Array.unsafe_get t.dsts j);
  Array.unsafe_set t.dsts j s;
  let s = Array.unsafe_get t.epochs i in
  Array.unsafe_set t.epochs i (Array.unsafe_get t.epochs j);
  Array.unsafe_set t.epochs j s;
  let d = Array.unsafe_get t.data i in
  Array.unsafe_set t.data i (Array.unsafe_get t.data j);
  Array.unsafe_set t.data j d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let len = t.len in
  let c = (4 * i) + 1 in
  if c < len then begin
    let best = c in
    let best = if c + 1 < len && less t (c + 1) best then c + 1 else best in
    let best = if c + 2 < len && less t (c + 2) best then c + 2 else best in
    let best = if c + 3 < len && less t (c + 3) best then c + 3 else best in
    if less t best i then begin
      swap t i best;
      sift_down t best
    end
  end

let[@inline] push_row t ~time ~seq ~src ~dst ~epoch payload =
  let i = t.len in
  if i = Array.length t.seqs then grow t;
  Array.unsafe_set t.times i time;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.srcs i src;
  Array.unsafe_set t.dsts i dst;
  Array.unsafe_set t.epochs i epoch;
  Array.unsafe_set t.data i payload;
  t.len <- i + 1;
  sift_up t i

let[@inline] push_deliver t ~time ~seq ~src ~dst ~epoch payload =
  push_row t ~time ~seq ~src ~dst ~epoch (Obj.repr payload)

(* The time crosses the module boundary inside a float array instead of
   as a float argument: dune's dev profile compiles with [-opaque], so
   cross-module calls are never inlined and a float argument would be
   boxed at every send. The engine passes its FIFO-stamp column and the
   slot it just stored the arrival into. *)
let push_deliver_from t ~times ~at ~seq ~src ~dst ~epoch payload =
  push_row t ~time:times.(at) ~seq ~src ~dst ~epoch (Obj.repr payload)

let[@inline never] grow_locals t =
  let cap = Array.length t.locals in
  let cap' = max 16 (2 * cap) in
  let locals = Array.make cap' no_local in
  let free = Array.make cap' 0 in
  Array.blit t.locals 0 locals 0 t.nlocals;
  Array.blit t.free 0 free 0 t.nfree;
  t.locals <- locals;
  t.free <- free

let push_local t ~time ~seq f =
  let slot =
    if t.nfree > 0 then begin
      t.nfree <- t.nfree - 1;
      t.free.(t.nfree)
    end
    else begin
      if t.nlocals = Array.length t.locals then grow_locals t;
      let s = t.nlocals in
      t.nlocals <- s + 1;
      s
    end
  in
  t.locals.(slot) <- f;
  push_row t ~time ~seq ~src:(-1) ~dst:slot ~epoch:0 filler

(* The raises live out of line so the readers stay small enough to
   inline — [min_time] in particular must inline into the engine loop,
   or its float return is boxed on every iteration. *)
let[@inline never] empty_min_time () : float =
  invalid_arg "Event_queue.min_time: empty"

let[@inline never] empty_min_seq () : int =
  invalid_arg "Event_queue.min_seq: empty"

let[@inline] min_time t =
  if t.len = 0 then empty_min_time () else Array.unsafe_get t.times 0

let[@inline] min_seq t =
  if t.len = 0 then empty_min_seq () else Array.unsafe_get t.seqs 0

(* Raw time column for the engine's loop: under [-opaque] a [min_time]
   call returns a boxed float per iteration, while reading the returned
   array at 0 is an unboxed load. Must be re-fetched after any push —
   growth replaces the array. *)
let times t = t.times

(* The remaining min readers are unchecked: the engine reads them only
   after [min_time] (or an emptiness test) has established len > 0. *)
let[@inline] min_is_local t = Array.unsafe_get t.srcs 0 < 0
let[@inline] min_src t = Array.unsafe_get t.srcs 0
let[@inline] min_dst t = Array.unsafe_get t.dsts 0
let[@inline] min_epoch t = Array.unsafe_get t.epochs 0
let[@inline] min_payload t = Obj.obj (Array.unsafe_get t.data 0)
let[@inline] min_local t = t.locals.(t.dsts.(0))

let drop_min t =
  if t.len = 0 then invalid_arg "Event_queue.drop_min: empty";
  (* Release the local slot (if any) back to the free stack. *)
  if Array.unsafe_get t.srcs 0 < 0 then begin
    let slot = Array.unsafe_get t.dsts 0 in
    t.locals.(slot) <- no_local;
    t.free.(t.nfree) <- slot;
    t.nfree <- t.nfree + 1
  end;
  let last = t.len - 1 in
  t.len <- last;
  t.times.(0) <- Array.unsafe_get t.times last;
  t.seqs.(0) <- Array.unsafe_get t.seqs last;
  t.srcs.(0) <- Array.unsafe_get t.srcs last;
  t.dsts.(0) <- Array.unsafe_get t.dsts last;
  t.epochs.(0) <- Array.unsafe_get t.epochs last;
  t.data.(0) <- Array.unsafe_get t.data last;
  Array.unsafe_set t.data last filler;
  if last > 0 then sift_down t 0
