(* A 4-ary min-heap over (time, seq) keys in structure-of-arrays layout:
   the times live in a flat [float array] (unboxed), the tie-breaking
   sequence numbers and payloads in parallel arrays. Compared with a
   generic binary heap of boxed event records this removes every
   per-event allocation on the push/pop path, replaces closure-driven
   comparison with inline primitive compares, and halves the sift depth
   — the engine's event loop spends most of its time here. The sift
   loops use unchecked array access; every index is < len by the heap
   shape invariant. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;  (* fills the unused tail of [data] so pops don't leak *)
}

let create ~dummy = { times = [||]; seqs = [||]; data = [||]; len = 0; dummy }

(* Keeps the grown capacity, so a reused queue never re-pays the doubling
   copies; the payload tail is overwritten with [dummy] so popped values
   don't leak. *)
let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let size t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.seqs in
  if t.len = cap then begin
    let cap' = max 16 (2 * cap) in
    let times = Array.make cap' 0.0 in
    let seqs = Array.make cap' 0 in
    let data = Array.make cap' t.dummy in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.seqs 0 seqs 0 t.len;
    Array.blit t.data 0 data 0 t.len;
    t.times <- times;
    t.seqs <- seqs;
    t.data <- data
  end

(* Strict (time, seq) lexicographic order; seqs are distinct, so this is a
   total order and the queue is deterministic. *)
let[@inline] less t i j =
  let ti = Array.unsafe_get t.times i and tj = Array.unsafe_get t.times j in
  ti < tj
  || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let[@inline] swap t i j =
  let ft = Array.unsafe_get t.times i in
  Array.unsafe_set t.times i (Array.unsafe_get t.times j);
  Array.unsafe_set t.times j ft;
  let s = Array.unsafe_get t.seqs i in
  Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs j);
  Array.unsafe_set t.seqs j s;
  let d = Array.unsafe_get t.data i in
  Array.unsafe_set t.data i (Array.unsafe_get t.data j);
  Array.unsafe_set t.data j d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let len = t.len in
  let c = (4 * i) + 1 in
  if c < len then begin
    let best = c in
    let best = if c + 1 < len && less t (c + 1) best then c + 1 else best in
    let best = if c + 2 < len && less t (c + 2) best then c + 2 else best in
    let best = if c + 3 < len && less t (c + 3) best then c + 3 else best in
    if less t best i then begin
      swap t i best;
      sift_down t best
    end
  end

let add t ~time ~seq x =
  grow t;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.data.(i) <- x;
  t.len <- i + 1;
  sift_up t i

let min_time t =
  if t.len = 0 then invalid_arg "Event_queue.min_time: empty";
  t.times.(0)

let min_seq t =
  if t.len = 0 then invalid_arg "Event_queue.min_seq: empty";
  t.seqs.(0)

let pop t =
  if t.len = 0 then invalid_arg "Event_queue.pop: empty";
  let x = t.data.(0) in
  let last = t.len - 1 in
  t.len <- last;
  t.times.(0) <- t.times.(last);
  t.seqs.(0) <- t.seqs.(last);
  t.data.(0) <- t.data.(last);
  t.data.(last) <- t.dummy;
  if last > 0 then sift_down t 0;
  x
