module G = Csap_graph.Graph

type 'm packet =
  | Data of { seqno : int; payload : 'm }
  | Ack of { cum : int }

type 'm t = {
  eng : 'm packet Engine.t;
  g : G.t;
  rto_factor : float;
  max_rto_factor : float;
  (* Directed-link state, indexed by slot = 2 * edge_id + dir (dir = 0
     when the sender is the edge's smaller endpoint) — the engine's own
     directed-edge indexing. Sender side: *)
  next_seq : int array;
  unacked : (int * 'm) Queue.t array;  (* (seqno, payload), seqno order *)
  timer_armed : bool array;
  timer_epoch : int array;  (* bumped to invalidate in-flight timers *)
  rto : float array;  (* current timeout; grows by doubling, capped *)
  (* Receiver side: *)
  expected : int array;  (* next in-order seqno on this incoming link *)
  ooo : (int * int, 'm) Hashtbl.t;  (* (slot, seqno) -> buffered payload *)
  (* Application layer: *)
  handlers : (src:int -> 'm -> unit) option array;
  on_restart : (unit -> unit) option array;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable delivered : int;
}

let slot_of t ~src ~dst =
  let id = G.edge_id_between t.g src dst in
  if id < 0 then
    invalid_arg
      (Printf.sprintf "Reliable.send: no edge between %d and %d" src dst);
  let e = G.edge t.g id in
  (2 * id) + (if src = e.G.u then 0 else 1)

let weight_of_slot t slot = (G.edge t.g (slot / 2)).G.w

let base_rto t slot = t.rto_factor *. float_of_int (weight_of_slot t slot)

(* Sender endpoint of a directed slot. *)
let sender_of_slot t slot =
  let e = G.edge t.g (slot / 2) in
  if slot land 1 = 0 then e.G.u else e.G.v

let receiver_of_slot t slot =
  let e = G.edge t.g (slot / 2) in
  if slot land 1 = 0 then e.G.v else e.G.u

let retransmissions t = t.retransmissions
let acks_sent t = t.acks_sent
let delivered t = t.delivered
let engine t = t.eng

let in_flight t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.unacked

(* Arm the retransmission timer for [slot] unless already armed. The
   closure validates its epoch at fire time, so stale timers (after a
   crash-restart re-arm) are no-ops. *)
let rec ensure_timer t slot =
  if not t.timer_armed.(slot) then begin
    t.timer_armed.(slot) <- true;
    let epoch = t.timer_epoch.(slot) in
    Engine.schedule t.eng ~delay:t.rto.(slot) (fun () ->
        on_timer t slot epoch)
  end

and on_timer t slot epoch =
  if epoch = t.timer_epoch.(slot) then begin
    t.timer_armed.(slot) <- false;
    if not (Queue.is_empty t.unacked.(slot)) then begin
      let src = sender_of_slot t slot in
      if Engine.is_down t.eng src then
        (* The sender is crashed: its volatile timers are lost. The
           restart handler re-arms every link with unacked data. *)
        ()
      else begin
        let dst = receiver_of_slot t slot in
        Queue.iter
          (fun (seqno, payload) ->
            t.retransmissions <- t.retransmissions + 1;
            Engine.send t.eng ~src ~dst (Data { seqno; payload }))
          t.unacked.(slot);
        t.rto.(slot) <-
          Float.min
            (2.0 *. t.rto.(slot))
            (t.max_rto_factor *. float_of_int (weight_of_slot t slot));
        ensure_timer t slot
      end
    end
  end

let send t ~src ~dst payload =
  let slot = slot_of t ~src ~dst in
  let seqno = t.next_seq.(slot) in
  t.next_seq.(slot) <- seqno + 1;
  Queue.push (seqno, payload) t.unacked.(slot);
  Engine.send t.eng ~src ~dst (Data { seqno; payload });
  ensure_timer t slot

let deliver_app t ~me ~src payload =
  match t.handlers.(me) with
  | Some f ->
    t.delivered <- t.delivered + 1;
    f ~src payload
  | None ->
    failwith
      (Printf.sprintf "Reliable: no handler at vertex %d (message from %d)"
         me src)

let handle_data t ~me ~src seqno payload =
  let slot = slot_of t ~src ~dst:me in
  if seqno = t.expected.(slot) then begin
    (* In order: deliver, then drain any buffered successors. *)
    t.expected.(slot) <- seqno + 1;
    deliver_app t ~me ~src payload;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt t.ooo (slot, t.expected.(slot)) with
      | Some p ->
        Hashtbl.remove t.ooo (slot, t.expected.(slot));
        t.expected.(slot) <- t.expected.(slot) + 1;
        deliver_app t ~me ~src p
      | None -> continue := false
    done
  end
  else if seqno > t.expected.(slot) then begin
    (* A gap (the missing seqnos were lost): buffer until they arrive.
       Duplicates of a buffered packet are absorbed by the replace. *)
    Hashtbl.replace t.ooo (slot, seqno) payload
  end;
  (* seqno < expected: a duplicate of an already-delivered packet — the
     cumulative ack below tells the sender to stop resending it. *)
  t.acks_sent <- t.acks_sent + 1;
  Engine.send t.eng ~src:me ~dst:src (Ack { cum = t.expected.(slot) - 1 })

let handle_ack t ~me ~src cum =
  (* [me] is the sender of the acked stream: the slot is me -> src. *)
  let slot = slot_of t ~src:me ~dst:src in
  let popped = ref false in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.unacked.(slot) with
    | Some (seqno, _) when seqno <= cum ->
      ignore (Queue.pop t.unacked.(slot));
      popped := true
    | _ -> continue := false
  done;
  (* Progress: restart the backoff from the link's base timeout. *)
  if !popped then t.rto.(slot) <- base_rto t slot

let set_handler t v f = t.handlers.(v) <- Some f
let set_on_restart t v f = t.on_restart.(v) <- Some f

(* Crash-restart recovery (stable-storage model, see DESIGN.md §11): the
   shim's link state survives the crash; what died with the node are its
   in-flight messages and pending timers. On restart, every outgoing link
   with unacked data gets its backoff reset and a fresh timer (stale ones
   are invalidated via the epoch), then the protocol's own [on_restart]
   runs. *)
let handle_restart t v =
  G.iter_neighbors t.g v (fun u _ _ ->
      let slot = slot_of t ~src:v ~dst:u in
      t.timer_epoch.(slot) <- t.timer_epoch.(slot) + 1;
      t.timer_armed.(slot) <- false;
      if not (Queue.is_empty t.unacked.(slot)) then begin
        t.rto.(slot) <- base_rto t slot;
        ensure_timer t slot
      end);
  match t.on_restart.(v) with Some f -> f () | None -> ()

let create ?(rto = 3.0) ?(max_rto = 64.0) eng =
  if not (rto > 0.0 && rto < infinity) then
    invalid_arg "Reliable.create: rto must be finite and positive";
  if not (max_rto >= rto) then
    invalid_arg "Reliable.create: max_rto must be >= rto";
  let g = Engine.graph eng in
  let slots = 2 * G.m g in
  let t =
    {
      eng;
      g;
      rto_factor = rto;
      max_rto_factor = max_rto;
      next_seq = Array.make slots 0;
      unacked = Array.init slots (fun _ -> Queue.create ());
      timer_armed = Array.make slots false;
      timer_epoch = Array.make slots 0;
      rto = Array.make slots 0.0;
      expected = Array.make slots 0;
      ooo = Hashtbl.create 64;
      handlers = Array.make (G.n g) None;
      on_restart = Array.make (G.n g) None;
      retransmissions = 0;
      acks_sent = 0;
      delivered = 0;
    }
  in
  for slot = 0 to slots - 1 do
    t.rto.(slot) <- base_rto t slot
  done;
  for v = 0 to G.n g - 1 do
    Engine.set_handler eng v (fun ~src pkt ->
        match pkt with
        | Data { seqno; payload } -> handle_data t ~me:v ~src seqno payload
        | Ack { cum } -> handle_ack t ~me:v ~src cum);
    Engine.set_restart_handler eng v (fun () -> handle_restart t v)
  done;
  t
