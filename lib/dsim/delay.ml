type oracle = {
  name : string;
  fn : edge_id:int -> dir:int -> nth:int -> w:int -> float;
}

type t =
  | Exact
  | Uniform of Csap_graph.Rng.t
  | Scaled of float
  | Near_zero
  | Jitter of Csap_graph.Rng.t
  | Oracle of oracle

let epsilon = 1e-6

let sample t ~w =
  assert (w >= 1);
  let fw = float_of_int w in
  match t with
  | Exact -> fw
  | Uniform rng ->
    let u = Csap_graph.Rng.float rng in
    (* (0, w]: map [0,1) to (0, w] by flipping the interval. *)
    (1.0 -. u) *. fw
  | Scaled c ->
    assert (c > 0.0 && c <= 1.0);
    c *. fw
  | Near_zero -> epsilon
  | Jitter rng ->
    let u = Csap_graph.Rng.float rng in
    (0.5 +. (0.5 *. (1.0 -. u))) *. fw
  | Oracle { name; _ } ->
    invalid_arg
      (Printf.sprintf
         "Delay.sample: oracle %S needs per-message context (use sample_on)"
         name)

let sample_on t ~edge_id ~dir ~nth ~w =
  match t with
  | Oracle { fn; _ } -> fn ~edge_id ~dir ~nth ~w
  | _ -> sample t ~w

(* [sample_on], but the sample is stored into [out.(0)] instead of
   returned: a float returned across a non-inlined call is boxed, and
   the engine's send path must not allocate. Each branch stores its
   result directly (a float-array write, unboxed), so the static models
   (Exact, Scaled, Near_zero) produce zero heap words; the RNG and
   oracle models still pay their callee's boxed return. Must sample
   exactly like [sample_on] — same RNG consumption, same values. *)
let sample_into t ~edge_id ~dir ~nth ~w out =
  assert (w >= 1);
  let fw = float_of_int w in
  match t with
  | Exact -> out.(0) <- fw
  | Uniform rng ->
    let u = Csap_graph.Rng.float rng in
    out.(0) <- (1.0 -. u) *. fw
  | Scaled c ->
    assert (c > 0.0 && c <= 1.0);
    out.(0) <- c *. fw
  | Near_zero -> out.(0) <- epsilon
  | Jitter rng ->
    let u = Csap_graph.Rng.float rng in
    out.(0) <- (0.5 +. (0.5 *. (1.0 -. u))) *. fw
  | Oracle { fn; _ } -> out.(0) <- fn ~edge_id ~dir ~nth ~w

let oracle ~name fn = Oracle { name; fn }

let slow_edge ?(slow = 1.0) ?(fast = epsilon) target =
  if not (slow > 0.0 && slow <= 1.0) then
    invalid_arg "Delay.slow_edge: slow must be in (0, 1]";
  if not (fast > 0.0 && fast <= 1.0) then
    invalid_arg "Delay.slow_edge: fast must be in (0, 1]";
  Oracle
    {
      name = Printf.sprintf "slow-edge-%d" target;
      fn =
        (fun ~edge_id ~dir:_ ~nth:_ ~w ->
          if edge_id = target then slow *. float_of_int w else fast);
    }

let race_crossing =
  Oracle
    {
      name = "race-crossing";
      fn =
        (fun ~edge_id:_ ~dir ~nth:_ ~w ->
          if dir = 0 then float_of_int w else epsilon);
    }

(* splitmix64 finalizer; the per-message seeded oracle hashes
   (seed, edge, dir, nth) so the delay of a message depends only on its
   identity, never on the global sampling order — which is what makes
   seeded schedules shardable across domains and replayable. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let hash4 a b c d =
  let feed acc v =
    mix64 (Int64.add (Int64.logxor acc (Int64.of_int v)) golden)
  in
  feed (feed (feed (feed golden a) b) c) d

(* Top 53 bits -> [0, 1). *)
let to_unit h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let hash_unit a b c d = to_unit (hash4 a b c d)

let seeded seed =
  Oracle
    {
      name = Printf.sprintf "seeded-%d" seed;
      fn =
        (fun ~edge_id ~dir ~nth ~w ->
          let u = to_unit (hash4 seed edge_id dir nth) in
          (1.0 -. u) *. float_of_int w);
    }

let order_independent = function
  | Exact | Scaled _ | Near_zero | Oracle _ -> true
  | Uniform _ | Jitter _ -> false

let lower_bound t ~w =
  let fw = float_of_int w in
  match t with
  | Exact -> Some fw
  | Scaled c -> Some (c *. fw)
  | Near_zero -> Some epsilon
  | Jitter _ -> Some (0.5 *. fw)
  | Uniform _ ->
    (* (0, w]: the infimum 0 is open, so no positive static bound. *)
    None
  | Oracle _ -> None

let pp ppf = function
  | Exact -> Format.fprintf ppf "exact"
  | Uniform _ -> Format.fprintf ppf "uniform(0,w]"
  | Scaled c -> Format.fprintf ppf "scaled(%g)" c
  | Near_zero -> Format.fprintf ppf "near-zero"
  | Jitter _ -> Format.fprintf ppf "jitter[w/2,w]"
  | Oracle { name; _ } -> Format.fprintf ppf "oracle(%s)" name
