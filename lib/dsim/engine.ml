(* The Boxed queue constructor is alert-flagged for everyone else (it is
   a test oracle, not a production path); the engine itself must of
   course still implement it. *)
[@@@alert "-boxed_oracle"]

type 'msg action =
  | Deliver of { src : int; dst : int; payload : 'msg; epoch : int }
    (* [epoch] is the receiver's crash epoch at send time: a crash bumps
       the epoch, so deliveries pending at the crash arrive stale and are
       dropped — without scanning the event queue at crash time. *)
  | Local of (unit -> unit)

(* Boxed event records, used only by the historical [Boxed] queue. *)
type 'msg event = {
  time : float;
  seq : int;
  action : 'msg action;
}

type edge_lookup =
  | Indexed
  | Scan

type event_queue =
  | Packed
  | Boxed

type 'msg queue =
  | Q_packed of 'msg Event_queue.t
  | Q_boxed of 'msg event Csap_graph.Heap.t

type 'msg t = {
  g : Csap_graph.Graph.t;
  mutable delay : Delay.t;
  lookup : edge_lookup;
  queue : 'msg queue;
  handlers : (src:int -> 'msg -> unit) option array;
  metrics : Metrics.t;
  traffic : int array;
  (* Last scheduled delivery time per directed edge, to keep links FIFO.
     Index: 2 * edge_id + direction (0 when src = edge.u). *)
  last_delivery : float array;
  (* Messages sent so far per directed edge — the [nth] fed to delay
     oracles and trace records. *)
  send_counts : int array;
  (* Messages delivered so far per directed edge; only advanced while a
     trace is attached (FIFO links make the nth delivery the nth send). *)
  deliver_counts : int array;
  mutable trace : Trace.t option;
  (* The simulation clock, in a one-slot float array rather than a
     mutable float field: a float stored into a mixed record is boxed
     (one minor allocation per store), a float-array write is not — and
     the clock is written once per event. [fscratch] holds the delay
     sample for the same reason: cold consumers (trace records, error
     messages) read it back from the slot, so the hot path's sample
     never escapes into a boxed argument. *)
  clock : float array;
  fscratch : float array;
  mutable seq : int;
  (* Fault layer; [faults = None] keeps the historical reliable-network
     semantics bit-for-bit (down/epoch stay all-false/zero). *)
  mutable faults : Fault.plan option;
  down : bool array;
  epoch : int array;
  restart_handlers : (unit -> unit) option array;
  (* Adaptive adversary layer. [adaptive = None] (the oblivious case)
     keeps the send path exactly on the historical zero-allocation
     route: the observation state below is then never read and only the
     [inflight]/[obs_counts] maintenance sites — each a one-word match
     on [t.adaptive] — are crossed. *)
  mutable adaptive : Adversary.adaptive option;
  obs : Adversary.Obs.t;
  (* Deliveries currently queued per directed edge (2 * id + dir);
     maintained only while an adaptive adversary is attached. *)
  inflight : int array;
  (* Slot 0: messages delivered to handlers (drops excluded); same
     maintenance discipline as [inflight]. *)
  obs_counts : int array;
}

(* Explicit monomorphic compares: polymorphic [compare] on a float walks
   the boxed representation through the generic C path (and orders NaN
   inconsistently with [Float.compare]'s total order). The event times
   here are validated non-NaN, so this order agrees with the packed
   queue's strict [(<)] order. *)
let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

(* [Float.max] without the cross-module call (which boxes its result)
   and without the NaN/signed-zero cases: every float on these paths is
   validated non-NaN and non-negative. *)
let[@inline] fmax (a : float) b = if a >= b then a else b

(* Local (timer / crash) events; setup-path pushes, not the hot path. *)
let push_local t time f =
  (match t.queue with
  | Q_packed q -> Event_queue.push_local q ~time ~seq:t.seq f
  | Q_boxed q -> Csap_graph.Heap.add q { time; seq = t.seq; action = Local f });
  t.seq <- t.seq + 1

(* Crash-restart events run as ordinary local events: at [at] the vertex
   goes down and its epoch advances (dropping every pending delivery); at
   [restart] it comes back up and its restart handler — looked up at fire
   time, so handlers installed after [create] are seen — runs. Installed
   at create/reset time, so they take the lowest sequence numbers and win
   same-time ties against protocol bootstraps. *)
let install_faults t = function
  | None -> ()
  | Some plan ->
    let n = Array.length t.down in
    List.iter
      (fun { Fault.vertex = v; at; restart } ->
        if v < 0 || v >= n then
          invalid_arg
            (Printf.sprintf "Engine: crash vertex %d out of range" v);
        push_local t at (fun () ->
            t.down.(v) <- true;
            t.epoch.(v) <- t.epoch.(v) + 1);
        push_local t restart (fun () ->
            t.down.(v) <- false;
            match t.restart_handlers.(v) with
            | Some f -> f ()
            | None -> ()))
      plan.Fault.crashes

(* An explicit [?adversary] wins; otherwise an ambient adaptive
   adversary (see [Adversary.with_ambient]) is picked up exactly like
   the ambient trace collector. An oblivious adversary is just a delay
   model — it replaces [delay] and leaves the hot path untouched. *)
let resolve_adversary ~delay adversary =
  match adversary with
  | Some (Adversary.Oblivious d) -> (d, None)
  | Some (Adversary.Adaptive a) -> (delay, Some a)
  | None -> (delay, Adversary.ambient ())

let create ?(delay = Delay.Exact) ?adversary ?faults ?(edge_lookup = Indexed)
    ?(event_queue = Packed) g =
  let m = Csap_graph.Graph.m g in
  let queue =
    match event_queue with
    | Packed ->
      (* Pre-sized from the edge count (capped — growth is geometric
         and amortised-free anyway) so steady-state floods never
         grow the heap mid-run. *)
      Q_packed (Event_queue.create ~capacity:(max 16 (min (2 * m) 65536)) ())
    | Boxed -> Q_boxed (Csap_graph.Heap.create ~cmp:compare_events)
  in
  let metrics = Metrics.create () in
  let clock = Array.make 1 0.0 in
  let send_counts = Array.make (2 * m) 0 in
  let inflight = Array.make (2 * m) 0 in
  let obs_counts = Array.make 1 0 in
  let queue_size () =
    match queue with
    | Q_packed q -> Event_queue.size q
    | Q_boxed q -> Csap_graph.Heap.size q
  in
  let queue_min () =
    match queue with
    | Q_packed q ->
      if Event_queue.is_empty q then Float.nan else (Event_queue.times q).(0)
    | Q_boxed q -> (
      match Csap_graph.Heap.peek_min q with
      | Some e -> e.time
      | None -> Float.nan)
  in
  let obs =
    Adversary.Obs.make ~m ~clock ~inflight ~sent:send_counts
      ~counts:obs_counts ~queue_size ~queue_min
      ~sent_total:(fun () -> metrics.Metrics.messages)
  in
  let delay, adaptive = resolve_adversary ~delay adversary in
  let t =
    {
      g;
      delay;
      lookup = edge_lookup;
      queue;
      handlers = Array.make (Csap_graph.Graph.n g) None;
      metrics;
      traffic = Array.make m 0;
      last_delivery = Array.make (2 * m) 0.0;
      send_counts;
      deliver_counts = Array.make (2 * m) 0;
      trace = Trace.register ();
      clock;
      fscratch = Array.make 1 0.0;
      seq = 0;
      faults;
      down = Array.make (Csap_graph.Graph.n g) false;
      epoch = Array.make (Csap_graph.Graph.n g) 0;
      restart_handlers = Array.make (Csap_graph.Graph.n g) None;
      adaptive;
      obs;
      inflight;
      obs_counts;
    }
  in
  install_faults t faults;
  t

(* Rewinds the engine to its just-created state without reallocating any
   of the per-vertex / per-edge arrays (handlers, traffic, FIFO stamps)
   or shedding the event queue's grown capacity — multi-seed trial loops
   reuse one engine per instance instead of rebuilding O(n + m) state
   per trial. *)
let reset ?delay ?adversary ?faults t =
  (match delay with Some d -> t.delay <- d | None -> ());
  (* Mirrors [create]: an explicit adversary or an ambient adaptive one
     is installed; otherwise the engine comes back oblivious (adversary
     state never leaks between trials). *)
  let delay', adaptive = resolve_adversary ~delay:t.delay adversary in
  t.delay <- delay';
  t.adaptive <- adaptive;
  Array.fill t.inflight 0 (Array.length t.inflight) 0;
  t.obs_counts.(0) <- 0;
  (match t.queue with
  | Q_packed q -> Event_queue.clear q
  | Q_boxed q -> Csap_graph.Heap.clear q);
  Array.fill t.handlers 0 (Array.length t.handlers) None;
  Metrics.reset t.metrics;
  Array.fill t.traffic 0 (Array.length t.traffic) 0;
  Array.fill t.last_delivery 0 (Array.length t.last_delivery) 0.0;
  Array.fill t.send_counts 0 (Array.length t.send_counts) 0;
  Array.fill t.deliver_counts 0 (Array.length t.deliver_counts) 0;
  (match t.trace with Some tr -> Trace.clear tr | None -> ());
  t.clock.(0) <- 0.0;
  t.seq <- 0;
  (* Fault state never leaks between trials: the plan, down flags, crash
     epochs and restart handlers are all cleared; [?faults] installs a
     fresh plan (and its crash events) for the next trial. *)
  t.faults <- faults;
  Array.fill t.down 0 (Array.length t.down) false;
  Array.fill t.epoch 0 (Array.length t.epoch) 0;
  Array.fill t.restart_handlers 0 (Array.length t.restart_handlers) None;
  install_faults t faults

let graph t = t.g
let now t = t.clock.(0)

let set_trace t trace = t.trace <- trace
let trace t = t.trace
let adaptive_adversary t = t.adaptive

let set_handler t v f = t.handlers.(v) <- Some f

let set_restart_handler t v f = t.restart_handlers.(v) <- Some f
let is_down t v = t.down.(v)
let faults t = t.faults

let queue_empty t =
  match t.queue with
  | Q_packed q -> Event_queue.is_empty q
  | Q_boxed q -> Csap_graph.Heap.is_empty q

let trace_send_kind t kind ~id ~dir ~nth ~src ~dst ~delay =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.add tr
      {
        Trace.kind;
        time = t.clock.(0);
        seq = t.seq;
        edge = id;
        dir;
        nth;
        src;
        dst;
        delay;
      }

(* Send-path trace record reading the delay back from the scratch slot:
   passing the sample as a float argument would force it boxed on the
   (trace-off) hot path too. *)
let[@inline never] trace_send_scratch t kind ~id ~dir ~nth ~src ~dst =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.add tr
      {
        Trace.kind;
        time = t.clock.(0);
        seq = t.seq;
        edge = id;
        dir;
        nth;
        src;
        dst;
        delay = t.fscratch.(0);
      }

let[@inline never] invalid_sample t id =
  invalid_arg
    (Printf.sprintf
       "Engine.send: delay model produced invalid delay %g on edge %d"
       t.fscratch.(0) id)

(* Deliver push on either queue backend; the cold paths (duplicates) use
   this, the hot path inlines the packed case to keep [arrival]
   unboxed. *)
let push_deliver_any t ~time ~src ~dst payload =
  (match t.queue with
  | Q_packed q ->
    Event_queue.push_deliver q ~time ~seq:t.seq ~src ~dst
      ~epoch:t.epoch.(dst) payload
  | Q_boxed q ->
    Csap_graph.Heap.add q
      {
        time;
        seq = t.seq;
        action = Deliver { src; dst; payload; epoch = t.epoch.(dst) };
      });
  t.seq <- t.seq + 1

(* Adaptive consult, out of line: the decision procedure reads the
   shared Obs view and its float return is boxed on the way back into
   the scratch slot — the price of adaptivity, paid only when
   [t.adaptive] is [Some]. *)
let[@inline never] adaptive_sample t a ~id ~dir ~nth ~w =
  t.fscratch.(0) <- a.Adversary.next_delay t.obs ~edge_id:id ~dir ~nth ~w

(* Observation upkeep at the delivery-enqueue site; only under an
   adaptive adversary (the counters are dead weight otherwise). *)
let[@inline never] note_enqueue t ~slot =
  t.inflight.(slot) <- t.inflight.(slot) + 1

(* Observation upkeep at the delivery-pop site: the in-flight counter
   comes down (even for crash-dropped deliveries — they left the queue)
   and the delivered total advances for real deliveries. Runs before the
   handler, so the handler's own sends observe up-to-date state. *)
let[@inline never] note_delivery t ~dropped ~src ~dst =
  let id =
    match t.lookup with
    | Indexed -> Csap_graph.Graph.edge_id_between t.g src dst
    | Scan -> Csap_graph.Graph.edge_id_between_scan t.g src dst
  in
  let e = Csap_graph.Graph.edge t.g id in
  let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
  let slot = (2 * id) + dir in
  t.inflight.(slot) <- t.inflight.(slot) - 1;
  if not dropped then t.obs_counts.(0) <- t.obs_counts.(0) + 1

let send t ~src ~dst payload =
  (* The per-message hot path: an O(1)-amortised indexed lookup (no
     allocation) instead of scanning the adjacency list of [src]. *)
  let id =
    match t.lookup with
    | Indexed -> Csap_graph.Graph.edge_id_between t.g src dst
    | Scan -> Csap_graph.Graph.edge_id_between_scan t.g src dst
  in
  if id < 0 then
    invalid_arg
      (Printf.sprintf "Engine.send: no edge between %d and %d" src dst);
  let e = Csap_graph.Graph.edge t.g id in
  let w = e.Csap_graph.Graph.w in
  let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
  let slot = (2 * id) + dir in
  let nth = t.send_counts.(slot) in
  t.send_counts.(slot) <- nth + 1;
  let disp =
    match t.faults with
    | None -> (
      (* No plan: an adaptive adversary with a disposition procedure may
         still drop/duplicate (a fault plan, when attached, owns the
         disposition — the adversary then only schedules). *)
      match t.adaptive with
      | Some { Adversary.next_disposition = Some nd; _ } ->
        nd t.obs ~edge_id:id ~dir ~nth ~now:t.clock.(0)
      | _ -> Fault.Pass)
    | Some plan ->
      (* A down sender executes nothing, so a send reaching here (a stale
         timer closure) transmits nothing and pays nothing. *)
      if t.down.(src) then Fault.Drop
      else plan.Fault.disposition ~edge_id:id ~dir ~nth ~now:t.clock.(0)
  in
  match disp with
  | Fault.Drop ->
    if not t.down.(src) then begin
      (* The transmission happened and is paid for; it just never
         arrives. No delay is sampled — the message has no arrival. *)
      Metrics.add_send t.metrics ~w;
      t.traffic.(id) <- t.traffic.(id) + 1
    end;
    trace_send_kind t Trace.Dropped ~id ~dir ~nth ~src ~dst ~delay:0.0
  | Fault.Pass | Fault.Duplicate _ -> (
    Metrics.add_send t.metrics ~w;
    t.traffic.(id) <- t.traffic.(id) + 1;
    (match t.adaptive with
    | None -> Delay.sample_into t.delay ~edge_id:id ~dir ~nth ~w t.fscratch
    | Some a -> adaptive_sample t a ~id ~dir ~nth ~w);
    let d = Array.unsafe_get t.fscratch 0 in
    (* Validate the sample once, at the send site: NaN fails every
       comparison (it would corrupt the heap's strict (<) order), infinities
       stall the clock, negatives run time backwards. *)
    if not (d >= 0.0 && d < infinity) then invalid_sample t id;
    (* The adaptive decision is recorded before its Send twin: the
       decision records alone form a replayable oblivious schedule. *)
    (match t.adaptive with
    | None -> ()
    | Some _ -> trace_send_scratch t Trace.Decision ~id ~dir ~nth ~src ~dst);
    trace_send_scratch t Trace.Send ~id ~dir ~nth ~src ~dst;
    let arrival =
      fmax (Array.unsafe_get t.clock 0 +. d) (Array.unsafe_get t.last_delivery slot)
    in
    Array.unsafe_set t.last_delivery slot arrival;
    (match t.queue with
    | Q_packed q ->
      (* Zero heap words: six unboxed row writes into the SOA queue. The
         arrival crosses into the queue via the FIFO-stamp column just
         written — a float argument would be boxed ([-opaque] blocks
         cross-module inlining). *)
      Event_queue.push_deliver_from q ~times:t.last_delivery ~at:slot
        ~seq:t.seq ~src ~dst ~epoch:(Array.unsafe_get t.epoch dst) payload
    | Q_boxed q ->
      (* The oracle path re-reads the FIFO stamp (= [arrival]) so the
         hot path's unboxed arrival never escapes into the record. *)
      Csap_graph.Heap.add q
        {
          time = t.last_delivery.(slot);
          seq = t.seq;
          action = Deliver { src; dst; payload; epoch = t.epoch.(dst) };
        });
    t.seq <- t.seq + 1;
    (match t.adaptive with
    | None -> ()
    | Some _ -> note_enqueue t ~slot);
    match disp with
    | Fault.Duplicate u ->
      (* The network's extra copy: same identity, its own delay (the
         plan's fraction of the weight), FIFO-clamped like any arrival,
         free of communication cost. *)
      let d2 = u *. float_of_int w in
      if not (d2 >= 0.0 && d2 < infinity) then
        invalid_arg
          (Printf.sprintf
             "Engine.send: fault plan produced invalid duplicate delay %g \
              on edge %d"
             d2 id);
      trace_send_kind t Trace.Dup ~id ~dir ~nth ~src ~dst ~delay:d2;
      let arrival2 = Float.max (t.clock.(0) +. d2) t.last_delivery.(slot) in
      t.last_delivery.(slot) <- arrival2;
      push_deliver_any t ~time:arrival2 ~src ~dst payload;
      (match t.adaptive with
      | None -> ()
      | Some _ -> note_enqueue t ~slot)
    | _ -> ())

let schedule t ~delay f =
  if not (delay >= 0.0 && delay < infinity) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: invalid delay %g (must be finite, >= 0)"
         delay);
  push_local t (t.clock.(0) +. delay) f

let quiescent t = queue_empty t

let[@inline never] no_handler src dst =
  failwith
    (Printf.sprintf "Engine: no handler at vertex %d (message sent from %d)"
       dst src)

(* ---- the boxed oracle loop --------------------------------------------- *)
(* Kept verbatim in spirit from the historical generic loop; it dispatches
   boxed [action] values and allocates freely — the QCheck identity suite
   runs it against the packed loop below. *)

let dispatch t = function
  | Local f -> f ()
  | Deliver { src; dst; payload; epoch = _ } -> (
    match t.handlers.(dst) with
    | Some f -> f ~src payload
    | None -> no_handler src dst)

(* True when a popped delivery is lost to a crash: the receiver is down
   right now, or crashed (and so shed its pending deliveries) after the
   message was sent. *)
let delivery_dropped t = function
  | Deliver { dst; epoch; _ } -> t.down.(dst) || epoch <> t.epoch.(dst)
  | Local _ -> false

let trace_deliver t tr seq ~dropped ~src ~dst =
  let id =
    match t.lookup with
    | Indexed -> Csap_graph.Graph.edge_id_between t.g src dst
    | Scan -> Csap_graph.Graph.edge_id_between_scan t.g src dst
  in
  let e = Csap_graph.Graph.edge t.g id in
  let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
  let slot = (2 * id) + dir in
  let nth =
    if dropped then -1
    else begin
      let nth = t.deliver_counts.(slot) in
      t.deliver_counts.(slot) <- nth + 1;
      nth
    end
  in
  Trace.add tr
    {
      Trace.kind = (if dropped then Trace.Dropped else Trace.Deliver);
      time = t.clock.(0);
      seq;
      edge = id;
      dir;
      nth;
      src;
      dst;
      delay = 0.0;
    }

let trace_local t tr seq =
  Trace.add tr
    {
      Trace.kind = Trace.Local;
      time = t.clock.(0);
      seq;
      edge = -1;
      dir = -1;
      nth = -1;
      src = -1;
      dst = -1;
      delay = 0.0;
    }

let record_dispatch t tr seq ~dropped action =
  match action with
  | Deliver { src; dst; _ } -> trace_deliver t tr seq ~dropped ~src ~dst
  | Local _ -> trace_local t tr seq

let run_boxed ~until ~max_events ~comm_budget t q =
  let processed = ref 0 in
  let continue = ref true in
  let limit_reached = ref false in
  while
    !continue && !processed < max_events
    && t.metrics.Metrics.weighted_comm < comm_budget
  do
    if Csap_graph.Heap.is_empty q then begin
      limit_reached := true;
      continue := false
    end
    else
      let ev =
        match Csap_graph.Heap.peek_min q with
        | Some e -> e
        | None -> assert false
      in
      match until with
      | Some limit when ev.time > limit ->
        limit_reached := true;
        continue := false
      | _ ->
        ignore (Csap_graph.Heap.pop_min q);
        t.clock.(0) <- Float.max t.clock.(0) ev.time;
        let dropped = delivery_dropped t ev.action in
        (match (t.adaptive, ev.action) with
        | Some _, Deliver { src; dst; _ } -> note_delivery t ~dropped ~src ~dst
        | _ -> ());
        (match t.trace with
        | Some tr -> record_dispatch t tr ev.seq ~dropped ev.action
        | None -> ());
        if not dropped then dispatch t ev.action;
        incr processed;
        t.metrics.Metrics.events <- t.metrics.Metrics.events + 1;
        t.metrics.Metrics.completion_time <- t.clock.(0);
        (match ev.action with
        | Deliver _ when not dropped ->
          t.metrics.Metrics.last_delivery_time <- t.clock.(0)
        | Deliver _ | Local _ -> ())
  done;
  !limit_reached

(* ---- the packed hot loop ------------------------------------------------ *)
(* Specialised to the SOA queue: the minimum is read field-by-field and
   dropped in place, so processing a delivery allocates nothing — no
   popped event value, no action match, no boxed clock store. The two
   per-event float metrics accumulate in local float refs (flat
   one-field float records, unboxed stores) and flush into the mixed
   [Metrics.t] record once, after the loop. *)

let run_packed ~until ~max_events ~comm_budget t q =
  let processed = ref 0 in
  let continue = ref true in
  let limit_reached = ref false in
  let events = ref t.metrics.Metrics.events in
  (* The two per-event float metrics accumulate in a flat float array —
     NOT [float ref]s: ['a ref] at [float] is a generic one-field
     record, so every [:=] would box the float. Slot 0 is
     completion_time, slot 1 last_delivery_time; flushed into the mixed
     [Metrics.t] record once, after the loop. *)
  let facc =
    [|
      t.metrics.Metrics.completion_time; t.metrics.Metrics.last_delivery_time;
    |]
  in
  let flush () =
    t.metrics.Metrics.events <- !events;
    t.metrics.Metrics.completion_time <- facc.(0);
    t.metrics.Metrics.last_delivery_time <- facc.(1)
  in
  (try
     while
       !continue && !processed < max_events
       && t.metrics.Metrics.weighted_comm < comm_budget
     do
       if Event_queue.is_empty q then begin
         limit_reached := true;
         continue := false
       end
       else begin
         (* Unboxed read of the minimum's time straight off the SOA
            column ([min_time]'s float return would box under
            [-opaque]). Fetched every iteration: a handler's sends can
            grow — and so replace — the column array. *)
         let time = Array.unsafe_get (Event_queue.times q) 0 in
         let beyond =
           match until with Some limit -> time > limit | None -> false
         in
         if beyond then begin
           limit_reached := true;
           continue := false
         end
         else begin
           let seq =
             match t.trace with Some _ -> Event_queue.min_seq q | None -> 0
           in
           if Event_queue.min_is_local q then begin
             let f = Event_queue.min_local q in
             Event_queue.drop_min q;
             t.clock.(0) <- fmax (Array.unsafe_get t.clock 0) time;
             (match t.trace with
             | Some tr -> trace_local t tr seq
             | None -> ());
             f ();
             incr processed;
             events := !events + 1;
             Array.unsafe_set facc 0 (Array.unsafe_get t.clock 0)
           end
           else begin
             let src = Event_queue.min_src q in
             let dst = Event_queue.min_dst q in
             let epoch = Event_queue.min_epoch q in
             let payload = Event_queue.min_payload q in
             Event_queue.drop_min q;
             t.clock.(0) <- fmax (Array.unsafe_get t.clock 0) time;
             let dropped =
               Array.unsafe_get t.down dst
               || epoch <> Array.unsafe_get t.epoch dst
             in
             (match t.adaptive with
             | None -> ()
             | Some _ -> note_delivery t ~dropped ~src ~dst);
             (match t.trace with
             | Some tr -> trace_deliver t tr seq ~dropped ~src ~dst
             | None -> ());
             if not dropped then begin
               match Array.unsafe_get t.handlers dst with
               | Some f -> f ~src payload
               | None -> no_handler src dst
             end;
             incr processed;
             events := !events + 1;
             Array.unsafe_set facc 0 (Array.unsafe_get t.clock 0);
             if not dropped then
               Array.unsafe_set facc 1 (Array.unsafe_get t.clock 0)
           end
         end
       end
     done
   with e ->
     flush ();
     raise e);
  flush ();
  !limit_reached

let run ?until ?(max_events = max_int) ?(comm_budget = max_int) t =
  (* [Gc.minor_words ()] reads the live allocation pointer;
     [quick_stat]'s minor_words field only advances at minor
     collections (OCaml 5.1), which would report 0 for any run that
     fits in one minor heap. *)
  let g0 = Gc.quick_stat () in
  let w0 = Gc.minor_words () in
  let events0 = t.metrics.Metrics.events in
  let limit_reached =
    match t.queue with
    | Q_packed q -> run_packed ~until ~max_events ~comm_budget t q
    | Q_boxed q -> run_boxed ~until ~max_events ~comm_budget t q
  in
  (* Sliced runs compose: after [run ~until:t1] the clock sits at [t1]
     even on quiescence (so relative timers scheduled between slices land
     where a continuous run puts them), and a stale [until < now] never
     moves the clock backwards. Runs cut short by [max_events] or
     [comm_budget] stop at the last processed event instead. *)
  (match until with
  | Some limit when limit_reached -> t.clock.(0) <- Float.max t.clock.(0) limit
  | _ -> ());
  let g1 = Gc.quick_stat () in
  Metrics.add_alloc t.metrics
    ~minor_words:(Gc.minor_words () -. w0)
    ~promoted_words:(g1.Gc.promoted_words -. g0.Gc.promoted_words)
    ~major_collections:(g1.Gc.major_collections - g0.Gc.major_collections);
  t.metrics.Metrics.events - events0

let metrics t = t.metrics

let edge_traffic t = Array.copy t.traffic

let send_count t = t.metrics.Metrics.messages
