type 'msg action =
  | Deliver of { src : int; dst : int; payload : 'msg; epoch : int }
    (* [epoch] is the receiver's crash epoch at send time: a crash bumps
       the epoch, so deliveries pending at the crash arrive stale and are
       dropped — without scanning the event queue at crash time. *)
  | Local of (unit -> unit)

(* Boxed event records, used only by the historical [Boxed] queue. *)
type 'msg event = {
  time : float;
  seq : int;
  action : 'msg action;
}

type edge_lookup =
  | Indexed
  | Scan

type event_queue =
  | Packed
  | Boxed

type 'msg queue =
  | Q_packed of 'msg action Event_queue.t
  | Q_boxed of 'msg event Csap_graph.Heap.t

type 'msg t = {
  g : Csap_graph.Graph.t;
  mutable delay : Delay.t;
  lookup : edge_lookup;
  queue : 'msg queue;
  handlers : (src:int -> 'msg -> unit) option array;
  metrics : Metrics.t;
  traffic : int array;
  (* Last scheduled delivery time per directed edge, to keep links FIFO.
     Index: 2 * edge_id + direction (0 when src = edge.u). *)
  last_delivery : float array;
  (* Messages sent so far per directed edge — the [nth] fed to delay
     oracles and trace records. *)
  send_counts : int array;
  (* Messages delivered so far per directed edge; only advanced while a
     trace is attached (FIFO links make the nth delivery the nth send). *)
  deliver_counts : int array;
  mutable trace : Trace.t option;
  mutable clock : float;
  mutable seq : int;
  (* Fault layer; [faults = None] keeps the historical reliable-network
     semantics bit-for-bit (down/epoch stay all-false/zero). *)
  mutable faults : Fault.plan option;
  down : bool array;
  epoch : int array;
  restart_handlers : (unit -> unit) option array;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let push t time action =
  (match t.queue with
  | Q_packed q -> Event_queue.add q ~time ~seq:t.seq action
  | Q_boxed q -> Csap_graph.Heap.add q { time; seq = t.seq; action });
  t.seq <- t.seq + 1

(* Crash-restart events run as ordinary local events: at [at] the vertex
   goes down and its epoch advances (dropping every pending delivery); at
   [restart] it comes back up and its restart handler — looked up at fire
   time, so handlers installed after [create] are seen — runs. Installed
   at create/reset time, so they take the lowest sequence numbers and win
   same-time ties against protocol bootstraps. *)
let install_faults t = function
  | None -> ()
  | Some plan ->
    let n = Array.length t.down in
    List.iter
      (fun { Fault.vertex = v; at; restart } ->
        if v < 0 || v >= n then
          invalid_arg
            (Printf.sprintf "Engine: crash vertex %d out of range" v);
        push t at
          (Local
             (fun () ->
               t.down.(v) <- true;
               t.epoch.(v) <- t.epoch.(v) + 1));
        push t restart
          (Local
             (fun () ->
               t.down.(v) <- false;
               match t.restart_handlers.(v) with
               | Some f -> f ()
               | None -> ())))
      plan.Fault.crashes

let create ?(delay = Delay.Exact) ?faults ?(edge_lookup = Indexed)
    ?(event_queue = Packed) g =
  let t =
    {
      g;
      delay;
      lookup = edge_lookup;
      queue =
        (match event_queue with
        | Packed -> Q_packed (Event_queue.create ~dummy:(Local (fun () -> ())))
        | Boxed -> Q_boxed (Csap_graph.Heap.create ~cmp:compare_events));
      handlers = Array.make (Csap_graph.Graph.n g) None;
      metrics = Metrics.create ();
      traffic = Array.make (Csap_graph.Graph.m g) 0;
      last_delivery = Array.make (2 * Csap_graph.Graph.m g) 0.0;
      send_counts = Array.make (2 * Csap_graph.Graph.m g) 0;
      deliver_counts = Array.make (2 * Csap_graph.Graph.m g) 0;
      trace = Trace.register ();
      clock = 0.0;
      seq = 0;
      faults;
      down = Array.make (Csap_graph.Graph.n g) false;
      epoch = Array.make (Csap_graph.Graph.n g) 0;
      restart_handlers = Array.make (Csap_graph.Graph.n g) None;
    }
  in
  install_faults t faults;
  t

(* Rewinds the engine to its just-created state without reallocating any
   of the per-vertex / per-edge arrays (handlers, traffic, FIFO stamps)
   or shedding the event queue's grown capacity — multi-seed trial loops
   reuse one engine per instance instead of rebuilding O(n + m) state
   per trial. *)
let reset ?delay ?faults t =
  (match delay with Some d -> t.delay <- d | None -> ());
  (match t.queue with
  | Q_packed q -> Event_queue.clear q
  | Q_boxed q -> Csap_graph.Heap.clear q);
  Array.fill t.handlers 0 (Array.length t.handlers) None;
  Metrics.reset t.metrics;
  Array.fill t.traffic 0 (Array.length t.traffic) 0;
  Array.fill t.last_delivery 0 (Array.length t.last_delivery) 0.0;
  Array.fill t.send_counts 0 (Array.length t.send_counts) 0;
  Array.fill t.deliver_counts 0 (Array.length t.deliver_counts) 0;
  (match t.trace with Some tr -> Trace.clear tr | None -> ());
  t.clock <- 0.0;
  t.seq <- 0;
  (* Fault state never leaks between trials: the plan, down flags, crash
     epochs and restart handlers are all cleared; [?faults] installs a
     fresh plan (and its crash events) for the next trial. *)
  t.faults <- faults;
  Array.fill t.down 0 (Array.length t.down) false;
  Array.fill t.epoch 0 (Array.length t.epoch) 0;
  Array.fill t.restart_handlers 0 (Array.length t.restart_handlers) None;
  install_faults t faults

let graph t = t.g
let now t = t.clock

let set_trace t trace = t.trace <- trace
let trace t = t.trace

let set_handler t v f = t.handlers.(v) <- Some f

let set_restart_handler t v f = t.restart_handlers.(v) <- Some f
let is_down t v = t.down.(v)
let faults t = t.faults

let queue_empty t =
  match t.queue with
  | Q_packed q -> Event_queue.is_empty q
  | Q_boxed q -> Csap_graph.Heap.is_empty q

(* Time of the next event; only called when the queue is non-empty. *)
let next_time t =
  match t.queue with
  | Q_packed q -> Event_queue.min_time q
  | Q_boxed q -> (
    match Csap_graph.Heap.peek_min q with
    | Some e -> e.time
    | None -> assert false)

(* Sequence number of the next event; only called when the queue is
   non-empty (the tracer's event stamp). *)
let next_seq t =
  match t.queue with
  | Q_packed q -> Event_queue.min_seq q
  | Q_boxed q -> (
    match Csap_graph.Heap.peek_min q with
    | Some e -> e.seq
    | None -> assert false)

let pop_action t =
  match t.queue with
  | Q_packed q -> Event_queue.pop q
  | Q_boxed q -> (
    match Csap_graph.Heap.pop_min q with
    | Some e -> e.action
    | None -> assert false)

let trace_send_kind t kind ~id ~dir ~nth ~src ~dst ~delay =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.add tr
      {
        Trace.kind;
        time = t.clock;
        seq = t.seq;
        edge = id;
        dir;
        nth;
        src;
        dst;
        delay;
      }

let send t ~src ~dst payload =
  (* The per-message hot path: an O(1)-amortised indexed lookup (no
     allocation) instead of scanning the adjacency list of [src]. *)
  let id =
    match t.lookup with
    | Indexed -> Csap_graph.Graph.edge_id_between t.g src dst
    | Scan -> Csap_graph.Graph.edge_id_between_scan t.g src dst
  in
  if id < 0 then
    invalid_arg
      (Printf.sprintf "Engine.send: no edge between %d and %d" src dst);
  let e = Csap_graph.Graph.edge t.g id in
  let w = e.Csap_graph.Graph.w in
  let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
  let slot = (2 * id) + dir in
  let nth = t.send_counts.(slot) in
  t.send_counts.(slot) <- nth + 1;
  let disp =
    match t.faults with
    | None -> Fault.Pass
    | Some plan ->
      (* A down sender executes nothing, so a send reaching here (a stale
         timer closure) transmits nothing and pays nothing. *)
      if t.down.(src) then Fault.Drop
      else plan.Fault.disposition ~edge_id:id ~dir ~nth ~now:t.clock
  in
  match disp with
  | Fault.Drop ->
    if not t.down.(src) then begin
      (* The transmission happened and is paid for; it just never
         arrives. No delay is sampled — the message has no arrival. *)
      Metrics.add_send t.metrics ~w;
      t.traffic.(id) <- t.traffic.(id) + 1
    end;
    trace_send_kind t Trace.Dropped ~id ~dir ~nth ~src ~dst ~delay:0.0
  | Fault.Pass | Fault.Duplicate _ -> (
    Metrics.add_send t.metrics ~w;
    t.traffic.(id) <- t.traffic.(id) + 1;
    let d = Delay.sample_on t.delay ~edge_id:id ~dir ~nth ~w in
    (* Validate the sample once, at the send site: NaN fails every
       comparison (it would corrupt the heap's strict (<) order), infinities
       stall the clock, negatives run time backwards. *)
    if not (d >= 0.0 && d < infinity) then
      invalid_arg
        (Printf.sprintf
           "Engine.send: delay model produced invalid delay %g on edge %d" d
           id);
    trace_send_kind t Trace.Send ~id ~dir ~nth ~src ~dst ~delay:d;
    let arrival = t.clock +. d in
    let arrival = Float.max arrival t.last_delivery.(slot) in
    t.last_delivery.(slot) <- arrival;
    push t arrival (Deliver { src; dst; payload; epoch = t.epoch.(dst) });
    match disp with
    | Fault.Duplicate u ->
      (* The network's extra copy: same identity, its own delay (the
         plan's fraction of the weight), FIFO-clamped like any arrival,
         free of communication cost. *)
      let d2 = u *. float_of_int w in
      if not (d2 >= 0.0 && d2 < infinity) then
        invalid_arg
          (Printf.sprintf
             "Engine.send: fault plan produced invalid duplicate delay %g \
              on edge %d"
             d2 id);
      trace_send_kind t Trace.Dup ~id ~dir ~nth ~src ~dst ~delay:d2;
      let arrival2 = Float.max (t.clock +. d2) t.last_delivery.(slot) in
      t.last_delivery.(slot) <- arrival2;
      push t arrival2 (Deliver { src; dst; payload; epoch = t.epoch.(dst) })
    | _ -> ())

let schedule t ~delay f =
  if not (delay >= 0.0 && delay < infinity) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: invalid delay %g (must be finite, >= 0)"
         delay);
  push t (t.clock +. delay) (Local f)

let quiescent t = queue_empty t

let dispatch t = function
  | Local f -> f ()
  | Deliver { src; dst; payload; epoch = _ } -> (
    match t.handlers.(dst) with
    | Some f -> f ~src payload
    | None ->
      failwith
        (Printf.sprintf
           "Engine: no handler at vertex %d (message sent from %d)" dst src))

(* True when a popped delivery is lost to a crash: the receiver is down
   right now, or crashed (and so shed its pending deliveries) after the
   message was sent. *)
let delivery_dropped t = function
  | Deliver { dst; epoch; _ } -> t.down.(dst) || epoch <> t.epoch.(dst)
  | Local _ -> false

let record_dispatch t tr seq ~dropped action =
  match action with
  | Deliver { src; dst; _ } ->
    let id =
      match t.lookup with
      | Indexed -> Csap_graph.Graph.edge_id_between t.g src dst
      | Scan -> Csap_graph.Graph.edge_id_between_scan t.g src dst
    in
    let e = Csap_graph.Graph.edge t.g id in
    let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
    let slot = (2 * id) + dir in
    let nth =
      if dropped then -1
      else begin
        let nth = t.deliver_counts.(slot) in
        t.deliver_counts.(slot) <- nth + 1;
        nth
      end
    in
    Trace.add tr
      {
        Trace.kind = (if dropped then Trace.Dropped else Trace.Deliver);
        time = t.clock;
        seq;
        edge = id;
        dir;
        nth;
        src;
        dst;
        delay = 0.0;
      }
  | Local _ ->
    Trace.add tr
      {
        Trace.kind = Trace.Local;
        time = t.clock;
        seq;
        edge = -1;
        dir = -1;
        nth = -1;
        src = -1;
        dst = -1;
        delay = 0.0;
      }

let run ?until ?(max_events = max_int) ?(comm_budget = max_int) t =
  let processed = ref 0 in
  let continue = ref true in
  (* True when the run stopped because it exhausted everything up to
     [until] (queue drained, or next event beyond the limit) — the cases
     where the clock may legitimately advance to the limit. *)
  let limit_reached = ref false in
  while
    !continue && !processed < max_events
    && t.metrics.Metrics.weighted_comm < comm_budget
  do
    if queue_empty t then begin
      limit_reached := true;
      continue := false
    end
    else
      let time = next_time t in
      match until with
      | Some limit when time > limit ->
        limit_reached := true;
        continue := false
      | _ ->
        let seq =
          match t.trace with Some _ -> next_seq t | None -> 0
        in
        let action = pop_action t in
        t.clock <- Float.max t.clock time;
        let dropped = delivery_dropped t action in
        (match t.trace with
        | Some tr -> record_dispatch t tr seq ~dropped action
        | None -> ());
        if not dropped then dispatch t action;
        incr processed;
        t.metrics.Metrics.events <- t.metrics.Metrics.events + 1;
        t.metrics.Metrics.completion_time <- t.clock;
        (match action with
        | Deliver _ when not dropped ->
          t.metrics.Metrics.last_delivery_time <- t.clock
        | Deliver _ | Local _ -> ())
  done;
  (* Sliced runs compose: after [run ~until:t1] the clock sits at [t1]
     even on quiescence (so relative timers scheduled between slices land
     where a continuous run puts them), and a stale [until < now] never
     moves the clock backwards. Runs cut short by [max_events] or
     [comm_budget] stop at the last processed event instead. *)
  (match until with
  | Some limit when !limit_reached -> t.clock <- Float.max t.clock limit
  | _ -> ());
  !processed

let metrics t = t.metrics

let edge_traffic t = Array.copy t.traffic

let send_count t = t.metrics.Metrics.messages
