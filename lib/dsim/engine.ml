type 'msg action =
  | Deliver of { src : int; dst : int; payload : 'msg }
  | Local of (unit -> unit)

(* Boxed event records, used only by the historical [Boxed] queue. *)
type 'msg event = {
  time : float;
  seq : int;
  action : 'msg action;
}

type edge_lookup =
  | Indexed
  | Scan

type event_queue =
  | Packed
  | Boxed

type 'msg queue =
  | Q_packed of 'msg action Event_queue.t
  | Q_boxed of 'msg event Csap_graph.Heap.t

type 'msg t = {
  g : Csap_graph.Graph.t;
  mutable delay : Delay.t;
  lookup : edge_lookup;
  queue : 'msg queue;
  handlers : (src:int -> 'msg -> unit) option array;
  metrics : Metrics.t;
  traffic : int array;
  (* Last scheduled delivery time per directed edge, to keep links FIFO.
     Index: 2 * edge_id + direction (0 when src = edge.u). *)
  last_delivery : float array;
  (* Messages sent so far per directed edge — the [nth] fed to delay
     oracles and trace records. *)
  send_counts : int array;
  (* Messages delivered so far per directed edge; only advanced while a
     trace is attached (FIFO links make the nth delivery the nth send). *)
  deliver_counts : int array;
  mutable trace : Trace.t option;
  mutable clock : float;
  mutable seq : int;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(delay = Delay.Exact) ?(edge_lookup = Indexed)
    ?(event_queue = Packed) g =
  {
    g;
    delay;
    lookup = edge_lookup;
    queue =
      (match event_queue with
      | Packed -> Q_packed (Event_queue.create ~dummy:(Local (fun () -> ())))
      | Boxed -> Q_boxed (Csap_graph.Heap.create ~cmp:compare_events));
    handlers = Array.make (Csap_graph.Graph.n g) None;
    metrics = Metrics.create ();
    traffic = Array.make (Csap_graph.Graph.m g) 0;
    last_delivery = Array.make (2 * Csap_graph.Graph.m g) 0.0;
    send_counts = Array.make (2 * Csap_graph.Graph.m g) 0;
    deliver_counts = Array.make (2 * Csap_graph.Graph.m g) 0;
    trace = Trace.register ();
    clock = 0.0;
    seq = 0;
  }

(* Rewinds the engine to its just-created state without reallocating any
   of the per-vertex / per-edge arrays (handlers, traffic, FIFO stamps)
   or shedding the event queue's grown capacity — multi-seed trial loops
   reuse one engine per instance instead of rebuilding O(n + m) state
   per trial. *)
let reset ?delay t =
  (match delay with Some d -> t.delay <- d | None -> ());
  (match t.queue with
  | Q_packed q -> Event_queue.clear q
  | Q_boxed q -> Csap_graph.Heap.clear q);
  Array.fill t.handlers 0 (Array.length t.handlers) None;
  Metrics.reset t.metrics;
  Array.fill t.traffic 0 (Array.length t.traffic) 0;
  Array.fill t.last_delivery 0 (Array.length t.last_delivery) 0.0;
  Array.fill t.send_counts 0 (Array.length t.send_counts) 0;
  Array.fill t.deliver_counts 0 (Array.length t.deliver_counts) 0;
  (match t.trace with Some tr -> Trace.clear tr | None -> ());
  t.clock <- 0.0;
  t.seq <- 0

let graph t = t.g
let now t = t.clock

let set_trace t trace = t.trace <- trace
let trace t = t.trace

let set_handler t v f = t.handlers.(v) <- Some f

let push t time action =
  (match t.queue with
  | Q_packed q -> Event_queue.add q ~time ~seq:t.seq action
  | Q_boxed q -> Csap_graph.Heap.add q { time; seq = t.seq; action });
  t.seq <- t.seq + 1

let queue_empty t =
  match t.queue with
  | Q_packed q -> Event_queue.is_empty q
  | Q_boxed q -> Csap_graph.Heap.is_empty q

(* Time of the next event; only called when the queue is non-empty. *)
let next_time t =
  match t.queue with
  | Q_packed q -> Event_queue.min_time q
  | Q_boxed q -> (
    match Csap_graph.Heap.peek_min q with
    | Some e -> e.time
    | None -> assert false)

(* Sequence number of the next event; only called when the queue is
   non-empty (the tracer's event stamp). *)
let next_seq t =
  match t.queue with
  | Q_packed q -> Event_queue.min_seq q
  | Q_boxed q -> (
    match Csap_graph.Heap.peek_min q with
    | Some e -> e.seq
    | None -> assert false)

let pop_action t =
  match t.queue with
  | Q_packed q -> Event_queue.pop q
  | Q_boxed q -> (
    match Csap_graph.Heap.pop_min q with
    | Some e -> e.action
    | None -> assert false)

let send t ~src ~dst payload =
  (* The per-message hot path: an O(1)-amortised indexed lookup (no
     allocation) instead of scanning the adjacency list of [src]. *)
  let id =
    match t.lookup with
    | Indexed -> Csap_graph.Graph.edge_id_between t.g src dst
    | Scan -> Csap_graph.Graph.edge_id_between_scan t.g src dst
  in
  if id < 0 then
    invalid_arg
      (Printf.sprintf "Engine.send: no edge between %d and %d" src dst);
  let e = Csap_graph.Graph.edge t.g id in
  let w = e.Csap_graph.Graph.w in
  Metrics.add_send t.metrics ~w;
  t.traffic.(id) <- t.traffic.(id) + 1;
  let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
  let slot = (2 * id) + dir in
  let nth = t.send_counts.(slot) in
  t.send_counts.(slot) <- nth + 1;
  let d = Delay.sample_on t.delay ~edge_id:id ~dir ~nth ~w in
  (* Validate the sample once, at the send site: NaN fails every
     comparison (it would corrupt the heap's strict (<) order), infinities
     stall the clock, negatives run time backwards. *)
  if not (d >= 0.0 && d < infinity) then
    invalid_arg
      (Printf.sprintf
         "Engine.send: delay model produced invalid delay %g on edge %d" d
         id);
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.add tr
      {
        Trace.kind = Trace.Send;
        time = t.clock;
        seq = t.seq;
        edge = id;
        dir;
        nth;
        src;
        dst;
        delay = d;
      });
  let arrival = t.clock +. d in
  let arrival = Float.max arrival t.last_delivery.(slot) in
  t.last_delivery.(slot) <- arrival;
  push t arrival (Deliver { src; dst; payload })

let schedule t ~delay f =
  if not (delay >= 0.0 && delay < infinity) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: invalid delay %g (must be finite, >= 0)"
         delay);
  push t (t.clock +. delay) (Local f)

let quiescent t = queue_empty t

let dispatch t = function
  | Local f -> f ()
  | Deliver { src; dst; payload } -> (
    match t.handlers.(dst) with
    | Some f -> f ~src payload
    | None ->
      failwith
        (Printf.sprintf
           "Engine: no handler at vertex %d (message sent from %d)" dst src))

let record_dispatch t tr seq action =
  match action with
  | Deliver { src; dst; _ } ->
    let id =
      match t.lookup with
      | Indexed -> Csap_graph.Graph.edge_id_between t.g src dst
      | Scan -> Csap_graph.Graph.edge_id_between_scan t.g src dst
    in
    let e = Csap_graph.Graph.edge t.g id in
    let dir = if src = e.Csap_graph.Graph.u then 0 else 1 in
    let slot = (2 * id) + dir in
    let nth = t.deliver_counts.(slot) in
    t.deliver_counts.(slot) <- nth + 1;
    Trace.add tr
      {
        Trace.kind = Trace.Deliver;
        time = t.clock;
        seq;
        edge = id;
        dir;
        nth;
        src;
        dst;
        delay = 0.0;
      }
  | Local _ ->
    Trace.add tr
      {
        Trace.kind = Trace.Local;
        time = t.clock;
        seq;
        edge = -1;
        dir = -1;
        nth = -1;
        src = -1;
        dst = -1;
        delay = 0.0;
      }

let run ?until ?(max_events = max_int) ?(comm_budget = max_int) t =
  let processed = ref 0 in
  let continue = ref true in
  (* True when the run stopped because it exhausted everything up to
     [until] (queue drained, or next event beyond the limit) — the cases
     where the clock may legitimately advance to the limit. *)
  let limit_reached = ref false in
  while
    !continue && !processed < max_events
    && t.metrics.Metrics.weighted_comm < comm_budget
  do
    if queue_empty t then begin
      limit_reached := true;
      continue := false
    end
    else
      let time = next_time t in
      match until with
      | Some limit when time > limit ->
        limit_reached := true;
        continue := false
      | _ ->
        let seq =
          match t.trace with Some _ -> next_seq t | None -> 0
        in
        let action = pop_action t in
        t.clock <- Float.max t.clock time;
        (match t.trace with
        | Some tr -> record_dispatch t tr seq action
        | None -> ());
        dispatch t action;
        incr processed;
        t.metrics.Metrics.events <- t.metrics.Metrics.events + 1;
        t.metrics.Metrics.completion_time <- t.clock;
        (match action with
        | Deliver _ -> t.metrics.Metrics.last_delivery_time <- t.clock
        | Local _ -> ())
  done;
  (* Sliced runs compose: after [run ~until:t1] the clock sits at [t1]
     even on quiescence (so relative timers scheduled between slices land
     where a continuous run puts them), and a stale [until < now] never
     moves the clock backwards. Runs cut short by [max_events] or
     [comm_budget] stop at the last processed event instead. *)
  (match until with
  | Some limit when !limit_reached -> t.clock <- Float.max t.clock limit
  | _ -> ());
  !processed

let metrics t = t.metrics

let edge_traffic t = Array.copy t.traffic

let send_count t = t.metrics.Metrics.messages
