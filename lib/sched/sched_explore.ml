module G = Csap_graph.Graph
module Tree = Csap_graph.Tree
module Paths = Csap_graph.Paths
module Mst = Csap_graph.Mst
module Delay = Csap_dsim.Delay
module Fault = Csap_dsim.Fault
module Trace = Csap_dsim.Trace
module Adversary = Csap_dsim.Adversary
module Measures = Csap.Measures

type schedule = {
  label : string;
  make : unit -> Adversary.t;
}

let oblivious label make_delay =
  { label; make = (fun () -> Adversary.of_delay (make_delay ())) }

let seeded_schedules k =
  if k < 0 then invalid_arg "Sched_explore.seeded_schedules: negative count";
  List.init k (fun i ->
      (* Seeds spaced by a large odd constant so adjacent schedules don't
         share splitmix streams. *)
      oblivious
        (Printf.sprintf "seeded-%d" i)
        (fun () -> Delay.seeded (0x5eed + (i * 0x10001))))

(* Heaviest edge, lowest id on ties — a deterministic pick of the link the
   slow-edge adversary stalls. *)
let heaviest_edge g =
  let best = ref 0 and best_w = ref min_int in
  Array.iteri
    (fun id e ->
      if e.G.w > !best_w then begin
        best := id;
        best_w := e.G.w
      end)
    (G.edges g);
  !best

let adversarial_schedules g =
  let heavy = heaviest_edge g in
  [
    oblivious
      (Printf.sprintf "slow-edge-%d" heavy)
      (fun () -> Delay.slow_edge heavy);
    oblivious "race-crossing" (fun () -> Delay.race_crossing);
    oblivious "near-zero" (fun () -> Delay.Near_zero);
  ]

(* The adaptive roster: adversaries that observe the engine and pick each
   delay online (fresh state per run via [make]). Their decision traces
   replay as oblivious schedules — [explore ~check_replay] asserts it. *)
let adaptive_schedules () =
  [
    { label = "greedy-commax"; make = (fun () -> Adversary.greedy_commax ()) };
    {
      label = "time-stretcher";
      make = (fun () -> Adversary.time_stretcher ());
    };
  ]

type target = {
  name : string;
  execute : G.t -> Adversary.t -> (Measures.t, string) result;
}

(* ------------------------------------------------------------------ *)
(* Registry-driven targets: every protocol in {!Csap.Protocol.registry} *)
(* can be swept; the invariant is the registry entry's own oracle       *)
(* check, so there is no per-protocol wiring here.                      *)
(* ------------------------------------------------------------------ *)

module Protocol = Csap.Protocol

let target_suffix ~needs_root root strip =
  (match root with
  | Some r when needs_root -> Printf.sprintf "-src%d" r
  | _ -> "")
  ^ match strip with Some s -> Printf.sprintf "-s%d" s | None -> ""

let protocol_target ?root ?pulses ?strip ?k ?q entry =
  let (module P : Protocol.S) = entry in
  {
    name = P.name ^ target_suffix ~needs_root:P.caps.Protocol.needs_root
             root strip;
    execute =
      (fun g adversary ->
        let cfg =
          Protocol.Run.make ?root ~adversary ?pulses ?strip ?k ?q g
        in
        let o = Protocol.execute entry cfg in
        match P.invariant cfg o with
        | Ok () -> Ok o.Protocol.Outcome.measures
        | Error e -> Error (Printf.sprintf "%s: %s" P.name e));
  }

let target_for ?root ?pulses ?strip ?k ?q name =
  protocol_target ?root ?pulses ?strip ?k ?q (Protocol.find_exn name)

(* The sweep roster: one target per trade-off family, cheap enough for
   every (schedule x target) pair of a sweep. *)
let registry_targets ?(root = 0) () =
  [
    target_for ~root "flood";
    target_for "mst-ghs";
    target_for ~root "spt-synch";
    target_for ~root ~strip:2 "spt-recur";
    target_for ~root "sync-alpha";
  ]

type run_result = {
  target : string;
  schedule : string;
  ok : bool;
  violation : string option;
  measures : Measures.t;
}

(* The sweep grid as a flat cell list: what [explore] iterates and what
   external executors (the bench farm) enumerate to run the same work
   cell-by-cell with checkpoints in between. *)
let sweep_cells ~targets ~schedules =
  List.concat_map (fun t -> List.map (fun s -> (t, s)) schedules) targets

let run_cell g ((t : target), (s : schedule)) =
  match t.execute g (s.make ()) with
  | Ok m ->
    {
      target = t.name;
      schedule = s.label;
      ok = true;
      violation = None;
      measures = m;
    }
  | Error e ->
    {
      target = t.name;
      schedule = s.label;
      ok = false;
      violation = Some e;
      measures = Measures.zero;
    }
  | exception e ->
    {
      target = t.name;
      schedule = s.label;
      ok = false;
      violation = Some (Printexc.to_string e);
      measures = Measures.zero;
    }

type summary = {
  target_name : string;
  runs : run_result array;
  worst_time : float;
  worst_comm : int;
  failures : int;
}

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    label

let mkdir_p dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let explore ?pool ?trace_dir ?(check_replay = false) g ~targets ~schedules =
  let targets = Array.of_list targets in
  let schedules = Array.of_list schedules in
  let nt = Array.length targets and ns = Array.length schedules in
  let results = Array.make (nt * ns) None in
  if nt > 0 && ns > 0 then begin
    let pool = match pool with Some p -> p | None -> Csap_pool.default () in
    Csap_pool.run pool ~tasks:(nt * ns) (fun ~worker:_ i ->
        results.(i) <-
          Some (run_cell g (targets.(i / ns), schedules.(i mod ns))))
  end;
  (* Replay audit (sequential: trace collectors are domain-local): record
     each passing run's trace, re-run it as an oblivious schedule under
     [Trace.recorded], and demand event-for-event equality modulo the
     Decision records only the recorded (possibly adaptive) run emits.
     This is what turns an adaptive worst case into a certificate: the
     decision trace alone reproduces the cost. *)
  if check_replay then
    Array.iteri
      (fun i r ->
        match r with
        | Some r when r.ok ->
          let t = targets.(i / ns) and s = schedules.(i mod ns) in
          let (), traces =
            Trace.with_collector (fun () ->
                ignore (t.execute g (s.make ())))
          in
          (match traces with
          | [ tr ] ->
            let (), traces2 =
              Trace.with_collector (fun () ->
                  ignore
                    (t.execute g (Adversary.of_delay (Trace.recorded tr))))
            in
            let ok =
              match traces2 with
              | [ tr2 ] -> Trace.equal (Trace.without_decisions tr) tr2
              | _ -> false
            in
            if not ok then
              results.(i) <-
                Some
                  {
                    r with
                    ok = false;
                    violation = Some "replay: re-run from trace diverged";
                  }
          | _ ->
            results.(i) <-
              Some
                {
                  r with
                  ok = false;
                  violation = Some "replay: expected exactly one engine trace";
                })
        | _ -> ())
      results;
  (* Failures get their schedule dumped: re-run the same deterministic
     (target, schedule) pair under a collector and write every engine's
     trace, replayable via [Trace.recorded]. *)
  (match trace_dir with
  | None -> ()
  | Some dir ->
    Array.iteri
      (fun i r ->
        match r with
        | Some r when not r.ok ->
          mkdir_p dir;
          let t = targets.(i / ns) and s = schedules.(i mod ns) in
          let (), traces =
            Trace.with_collector (fun () ->
                try ignore (t.execute g (s.make ())) with _ -> ())
          in
          List.iteri
            (fun j tr ->
              Trace.save_jsonl tr
                (Filename.concat dir
                   (Printf.sprintf "%s--%s--%d.jsonl" (sanitize t.name)
                      (sanitize s.label) j)))
            traces
        | _ -> ())
      results);
  Array.to_list
    (Array.mapi
       (fun ti (t : target) ->
         let runs =
           Array.init ns (fun si ->
               match results.((ti * ns) + si) with
               | Some r -> r
               | None -> assert false)
         in
         let worst_time = ref 0.0 and worst_comm = ref 0 and failures = ref 0 in
         Array.iter
           (fun r ->
             if r.ok then begin
               worst_time := Float.max !worst_time r.measures.Measures.time;
               worst_comm := max !worst_comm r.measures.Measures.comm
             end
             else incr failures)
           runs;
         {
           target_name = t.name;
           runs;
           worst_time = !worst_time;
           worst_comm = !worst_comm;
           failures = !failures;
         })
       targets)

(* ------------------------------------------------------------------ *)
(* Fault sweep: protocols behind the reliable shim under fault plans.  *)
(* ------------------------------------------------------------------ *)

type fault_schedule = {
  flabel : string;
  fmake : unit -> Fault.plan;
}

let fault_schedules g k =
  if k < 0 then invalid_arg "Sched_explore.fault_schedules: negative count";
  (* Time scale for outage/crash windows: the weighted diameter bounds a
     clean flood; faulty runs last longer, so windows placed within it
     are guaranteed to overlap the execution. *)
  let scale = float_of_int (max 1 (Paths.diameter g)) in
  let heavy = heaviest_edge g in
  let n = G.n g in
  List.init k (fun i ->
      (* Seeds spaced like the delay schedules' so fault and delay
         randomness never share splitmix streams. *)
      let seed = 0xfa17 + (i * 0x20003) in
      match i mod 4 with
      | 0 ->
        {
          flabel = Printf.sprintf "loss-%d" i;
          fmake = (fun () -> Fault.seeded ~loss:0.15 seed);
        }
      | 1 ->
        {
          flabel = Printf.sprintf "loss-dup-%d" i;
          fmake = (fun () -> Fault.seeded ~loss:0.08 ~dup:0.12 seed);
        }
      | 2 ->
        {
          flabel = Printf.sprintf "outage-%d" i;
          fmake =
            (fun () ->
              Fault.seeded ~loss:0.05
                ~outages:
                  [
                    {
                      Fault.edge = Some heavy;
                      from_time = 0.25 *. scale;
                      until_time = 0.75 *. scale;
                    };
                  ]
                seed);
        }
      | _ ->
        let v = 1 + ((i / 4) mod max 1 (n - 1)) in
        {
          flabel = Printf.sprintf "crash-v%d-%d" v i;
          fmake =
            (fun () ->
              Fault.seeded ~loss:0.05
                ~crashes:
                  [
                    {
                      Fault.vertex = v;
                      at = 0.3 *. scale;
                      restart = 0.9 *. scale;
                    };
                  ]
                seed);
        })

type fault_target = {
  fname : string;
  fexecute : G.t -> Adversary.t -> Fault.plan -> (Measures.t, string) result;
  fclean : G.t -> Measures.t;
}

(* Registry-driven fault targets: the protocol runs behind the reliable
   shim under the given plan; the clean baseline is the same registry
   run with no plan and no shim. *)
let protocol_fault_target ?root ?pulses ?strip ?k ?q entry =
  let (module P : Protocol.S) = entry in
  {
    fname =
      "rel-" ^ P.name
      ^ target_suffix ~needs_root:P.caps.Protocol.needs_root root strip;
    fexecute =
      (fun g adversary plan ->
        let cfg =
          Protocol.Run.make ?root ~adversary ~faults:plan ~reliable:true
            ?pulses ?strip ?k ?q g
        in
        let o = Protocol.execute entry cfg in
        match P.invariant cfg o with
        | Ok () -> Ok o.Protocol.Outcome.measures
        | Error e -> Error (Printf.sprintf "rel-%s: %s" P.name e));
    fclean =
      (fun g ->
        (Protocol.run ?root ?pulses ?strip ?k ?q entry g)
          .Protocol.Outcome.measures);
  }

let fault_target_for ?root ?pulses ?strip ?k ?q name =
  protocol_fault_target ?root ?pulses ?strip ?k ?q (Protocol.find_exn name)

(* The fault-sweep roster: every registry protocol that supports both a
   raw fault plan and the reliable shim and is cheap enough to sweep. *)
let registry_fault_targets ?(root = 0) () =
  [
    fault_target_for ~root "flood";
    fault_target_for ~root "dfs-token";
    fault_target_for ~root "mst-centr";
    fault_target_for "mst-ghs";
    fault_target_for ~root "spt-synch";
    fault_target_for ~root "global-sum";
  ]

type fault_run = {
  frun_target : string;
  fdelay : string;
  fschedule : string;
  fok : bool;
  fviolation : string option;
  fmeasures : Measures.t;
  foverhead : float;
}

let fault_sweep_cells ~targets ~delays ~faults =
  List.concat_map
    (fun t ->
      List.concat_map (fun d -> List.map (fun f -> (t, d, f)) faults) delays)
    targets

let run_fault_cell g ~clean_comm ((t : fault_target), d, (f : fault_schedule))
    =
  let denom = float_of_int (max 1 clean_comm) in
  match t.fexecute g (d.make ()) (f.fmake ()) with
  | Ok m ->
    {
      frun_target = t.fname;
      fdelay = d.label;
      fschedule = f.flabel;
      fok = true;
      fviolation = None;
      fmeasures = m;
      foverhead = float_of_int m.Measures.comm /. denom;
    }
  | Error e ->
    {
      frun_target = t.fname;
      fdelay = d.label;
      fschedule = f.flabel;
      fok = false;
      fviolation = Some e;
      fmeasures = Measures.zero;
      foverhead = 0.0;
    }
  | exception e ->
    {
      frun_target = t.fname;
      fdelay = d.label;
      fschedule = f.flabel;
      fok = false;
      fviolation = Some (Printexc.to_string e);
      fmeasures = Measures.zero;
      foverhead = 0.0;
    }

type fault_summary = {
  ftarget_name : string;
  fruns : fault_run array;
  clean_comm : int;
  worst_overhead : float;
  mean_overhead : float;
  ffailures : int;
}

let explore_faults ?pool ?trace_dir ?(check_replay = false) g ~targets
    ~delays ~faults =
  let targets = Array.of_list targets in
  let delays = Array.of_list delays in
  let faults = Array.of_list faults in
  let nt = Array.length targets in
  let nd = Array.length delays in
  let nf = Array.length faults in
  (* Clean baselines (default delay model, no faults): the overhead
     denominator. *)
  let clean = Array.map (fun (t : fault_target) -> t.fclean g) targets in
  let per = nd * nf in
  let results = Array.make (nt * per) None in
  let split i = (i / per, i mod per / nf, i mod nf) in
  if nt > 0 && per > 0 then begin
    let pool = match pool with Some p -> p | None -> Csap_pool.default () in
    Csap_pool.run pool ~tasks:(nt * per) (fun ~worker:_ i ->
        let ti, di, fi = split i in
        results.(i) <-
          Some
            (run_fault_cell g
               ~clean_comm:clean.(ti).Measures.comm
               (targets.(ti), delays.(di), faults.(fi))))
  end;
  (* Replay audit (sequential: trace collectors are domain-local): record
     each passing run's trace, re-run it under [Trace.recorded] with the
     same fault plan, and demand event-for-event equality. A mismatch
     turns the run into a failure. *)
  if check_replay then
    Array.iteri
      (fun i r ->
        match r with
        | Some r when r.fok ->
          let ti, di, fi = split i in
          let t = targets.(ti) and d = delays.(di) and f = faults.(fi) in
          let (), traces =
            Trace.with_collector (fun () ->
                ignore (t.fexecute g (d.make ()) (f.fmake ())))
          in
          (match traces with
          | [ tr ] ->
            let (), traces2 =
              Trace.with_collector (fun () ->
                  ignore
                    (t.fexecute g
                       (Adversary.of_delay (Trace.recorded tr))
                       (f.fmake ())))
            in
            let ok =
              match traces2 with
              | [ tr2 ] -> Trace.equal (Trace.without_decisions tr) tr2
              | _ -> false
            in
            if not ok then
              results.(i) <-
                Some
                  {
                    r with
                    fok = false;
                    fviolation =
                      Some "replay: re-run from trace diverged";
                    foverhead = 0.0;
                  }
          | _ ->
            results.(i) <-
              Some
                {
                  r with
                  fok = false;
                  fviolation =
                    Some "replay: expected exactly one engine trace";
                  foverhead = 0.0;
                })
        | _ -> ())
      results;
  (* Failures get a replayable artifact: re-run the same deterministic
     (target, delay, fault) triple under a collector and dump JSONL. *)
  (match trace_dir with
  | None -> ()
  | Some dir ->
    Array.iteri
      (fun i r ->
        match r with
        | Some r when not r.fok ->
          mkdir_p dir;
          let ti, di, fi = split i in
          let t = targets.(ti) and d = delays.(di) and f = faults.(fi) in
          let (), traces =
            Trace.with_collector (fun () ->
                try ignore (t.fexecute g (d.make ()) (f.fmake ()))
                with _ -> ())
          in
          List.iteri
            (fun j tr ->
              Trace.save_jsonl tr
                (Filename.concat dir
                   (Printf.sprintf "%s--%s--%s--%d.jsonl" (sanitize t.fname)
                      (sanitize d.label) (sanitize f.flabel) j)))
            traces
        | _ -> ())
      results);
  Array.to_list
    (Array.mapi
       (fun ti (t : fault_target) ->
         let fruns =
           Array.init per (fun j ->
               match results.((ti * per) + j) with
               | Some r -> r
               | None -> assert false)
         in
         let worst = ref 0.0 and sum = ref 0.0 in
         let passed = ref 0 and failures = ref 0 in
         Array.iter
           (fun r ->
             if r.fok then begin
               worst := Float.max !worst r.foverhead;
               sum := !sum +. r.foverhead;
               incr passed
             end
             else incr failures)
           fruns;
         {
           ftarget_name = t.fname;
           fruns;
           clean_comm = clean.(ti).Measures.comm;
           worst_overhead = !worst;
           mean_overhead = (if !passed = 0 then 0.0 else !sum /. float_of_int !passed);
           ffailures = !failures;
         })
       targets)
