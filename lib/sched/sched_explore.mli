(** Adversarial-schedule exploration.

    The paper's complexity measures quantify over {e all} executions: the
    adversary picks any delay in [(0, w(e)]] per message. A protocol's
    correctness must therefore be schedule-invariant, and its worst-case
    time/communication is a maximum over schedules. This harness runs
    protocol targets under a battery of schedules — seeded pseudo-random
    ones, structured oblivious adversaries (see {!Delay.slow_edge},
    {!Delay.race_crossing}) and {e adaptive} adversaries that observe the
    execution as it unfolds ({!Csap_dsim.Adversary}) — checks each run's
    output against a sequential oracle (Kruskal/Dijkstra/the synchronous
    reference executor), and reports the worst time and communication
    observed.

    Runs are sharded over a {!Csap_pool.t}; each run gets a fresh delay
    model built by its schedule's [make], so the sweep is deterministic
    regardless of how tasks land on workers. When a run violates its
    invariant the failing execution is re-run under
    {!Trace.with_collector} and its traces dumped as JSONL next to the
    results — the artifact CI uploads, replayable with
    {!Trace.recorded}. *)

(** A named way to build an adversary. [make] is called once per run so
    stateful adversaries (adaptive built-ins, [Recorded]-style oracles,
    RNG-backed models) never leak state between runs. *)
type schedule = {
  label : string;
  make : unit -> Csap_dsim.Adversary.t;
}

(** [seeded_schedules k] is [k] per-message-seeded schedules (see
    {!Delay.seeded}) with distinct seeds. *)
val seeded_schedules : int -> schedule list

(** [adversarial_schedules g] is the built-in adversary battery for [g]:
    the heaviest edge slowed to its full weight while everything else
    races ahead ({!Delay.slow_edge}), direction-asymmetric delays that
    maximise message crossings ({!Delay.race_crossing}), and the
    near-instantaneous schedule ({!Delay.Near_zero}). *)
val adversarial_schedules : Csap_graph.Graph.t -> schedule list

(** The adaptive roster: the built-in observing adversaries
    ({!Csap_dsim.Adversary.greedy_commax},
    {!Csap_dsim.Adversary.time_stretcher}), each constructed fresh per
    run. Runs under these emit a replayable decision trace
    ({!Csap_dsim.Trace.Decision}); pair with [explore]'s [check_replay]
    to certify every adaptive worst case as an oblivious schedule. *)
val adaptive_schedules : unit -> schedule list

(** A protocol under test: [execute g adversary] runs it on [g] under
    the adversary (oblivious or adaptive), checks the schedule-invariant
    output against a sequential oracle, and returns the run's measures —
    or a description of the violated invariant. *)
type target = {
  name : string;
  execute :
    Csap_graph.Graph.t ->
    Csap_dsim.Adversary.t ->
    (Csap.Measures.t, string) result;
}

(** [protocol_target entry] wraps a {!Csap.Protocol} registry entry as a
    sweep target: the run goes through {!Csap.Protocol.execute} with the
    schedule's adversary, and the invariant is the entry's own oracle
    check. Knobs ([root], [pulses], [strip], [k], [q]) are forwarded into
    the {!Csap.Protocol.Run.cfg}. *)
val protocol_target :
  ?root:int ->
  ?pulses:int ->
  ?strip:int ->
  ?k:int ->
  ?q:float ->
  Csap.Protocol.entry ->
  target

(** [target_for name] is {!protocol_target} of
    [Csap.Protocol.find_exn name]; raises [Invalid_argument] on an
    unknown protocol. *)
val target_for :
  ?root:int -> ?pulses:int -> ?strip:int -> ?k:int -> ?q:float -> string
  -> target

(** The standard sweep roster — one registry target per trade-off family
    (flood, GHS, both SPT constructions, synchronizer alpha), cheap
    enough for a full (schedule x target) sweep. *)
val registry_targets : ?root:int -> unit -> target list

(** One (target, schedule) run. *)
type run_result = {
  target : string;
  schedule : string;
  ok : bool;
  violation : string option;  (** why the invariant failed, when [not ok] *)
  measures : Csap.Measures.t;  (** zero when the run failed *)
}

(** {2 Enumerable sweep cells}

    A sweep is a grid; these expose it as a flat list of independent
    cells so external executors (the bench farm, a job server) can run
    the {e same} work the in-process sweep runs — one cell at a time,
    in any order, with checkpointing between cells. [explore] itself
    runs over this enumeration, so both paths share one code path. *)

(** [sweep_cells ~targets ~schedules] is the (target, schedule) grid in
    [explore]'s order: target-major, schedule-minor. *)
val sweep_cells :
  targets:target list -> schedules:schedule list -> (target * schedule) list

(** [run_cell g (t, s)] executes one cell: [t] under a fresh adversary
    from [s]. Never raises — an exception becomes a failed
    {!run_result}. *)
val run_cell : Csap_graph.Graph.t -> target * schedule -> run_result

(** Per-target aggregate over all schedules. *)
type summary = {
  target_name : string;
  runs : run_result array;  (** in schedule order *)
  worst_time : float;  (** max completion time over passing runs *)
  worst_comm : int;  (** max weighted communication over passing runs *)
  failures : int;
}

(** [explore ?pool ?trace_dir ?check_replay g ~targets ~schedules] runs
    every target under every schedule, sharded over [pool] (default
    {!Csap_pool.default}), and returns one summary per target, in target
    order. With [check_replay] (default [false]), each passing run is
    re-executed under a trace collector and then {e replayed} — re-run
    under {!Csap_dsim.Trace.recorded} of its own trace as an oblivious
    oracle — demanding event-for-event equality modulo the
    {!Csap_dsim.Trace.Decision} records only the recorded run emits;
    divergence marks the run failed. This is the certificate that an
    adaptive worst case is reproducible as an oblivious schedule. With
    [trace_dir], each failing run is re-executed under a trace collector
    and its traces written to
    [trace_dir/<target>--<schedule>--<i>.jsonl] (the directory is
    created if missing). *)
val explore :
  ?pool:Csap_pool.t ->
  ?trace_dir:string ->
  ?check_replay:bool ->
  Csap_graph.Graph.t ->
  targets:target list ->
  schedules:schedule list ->
  summary list

(** {2 Fault sweep}

    The same quantification extended to faulty networks: the adversary
    now also picks which messages to lose or duplicate, which links to
    black out and which vertices to crash (a {!Csap_dsim.Fault.plan}).
    Protocols run behind the {!Csap_dsim.Reliable} shim, so the oracle
    checks are the {e same} as the clean sweep's — the shim is what makes
    them hold — and the interesting number becomes the retransmission
    overhead factor: weighted communication under faults divided by the
    clean unwrapped run's. *)

(** A named way to build a fault plan; [fmake] is called once per run. *)
type fault_schedule = {
  flabel : string;
  fmake : unit -> Csap_dsim.Fault.plan;
}

(** [fault_schedules g k] is [k] seeded plans cycling through four
    shapes: pure loss, loss + duplication, loss + a burst outage on the
    heaviest edge, and loss + a crash-restart of one vertex (never the
    conventional source 0). Outage and crash windows are placed within
    the weighted diameter of [g] so they overlap any execution. *)
val fault_schedules : Csap_graph.Graph.t -> int -> fault_schedule list

(** A protocol under fault test: [fexecute g adversary plan] runs the
    shim-wrapped protocol and checks the clean oracle; [fclean g] runs
    the unwrapped protocol on the fault-free network — the overhead
    denominator. *)
type fault_target = {
  fname : string;
  fexecute :
    Csap_graph.Graph.t ->
    Csap_dsim.Adversary.t ->
    Csap_dsim.Fault.plan ->
    (Csap.Measures.t, string) result;
  fclean : Csap_graph.Graph.t -> Csap.Measures.t;
}

(** [protocol_fault_target entry] wraps a registry entry as a fault
    target: [fexecute] runs it behind the reliable shim under the plan
    and checks the entry's own invariant (the shim is what makes the
    clean oracle hold under faults); [fclean] is the same registry run
    with no plan and no shim. *)
val protocol_fault_target :
  ?root:int ->
  ?pulses:int ->
  ?strip:int ->
  ?k:int ->
  ?q:float ->
  Csap.Protocol.entry ->
  fault_target

(** [fault_target_for name] is {!protocol_fault_target} of
    [Csap.Protocol.find_exn name]. *)
val fault_target_for :
  ?root:int -> ?pulses:int -> ?strip:int -> ?k:int -> ?q:float -> string
  -> fault_target

(** The standard fault roster: every registry protocol that supports
    both raw fault plans and the reliable shim and is cheap enough to
    sweep (flood, DFS, MST_centr, GHS, SPT_synch, global-sum). *)
val registry_fault_targets : ?root:int -> unit -> fault_target list

(** One (target, delay schedule, fault plan) run. *)
type fault_run = {
  frun_target : string;
  fdelay : string;
  fschedule : string;
  fok : bool;
  fviolation : string option;
  fmeasures : Csap.Measures.t;  (** zero when the run failed *)
  foverhead : float;
      (** weighted comm of this run / the target's clean comm; [0] when
          the run failed *)
}

(** [fault_sweep_cells ~targets ~delays ~faults] is the (target, delay,
    fault) grid in [explore_faults]'s order: target-major, delay-next,
    fault-minor. *)
val fault_sweep_cells :
  targets:fault_target list ->
  delays:schedule list ->
  faults:fault_schedule list ->
  (fault_target * schedule * fault_schedule) list

(** [run_fault_cell g ~clean_comm (t, d, f)] executes one fault cell;
    [clean_comm] is the target's fault-free weighted communication (the
    overhead denominator, [t.fclean g]). Never raises. *)
val run_fault_cell :
  Csap_graph.Graph.t ->
  clean_comm:int ->
  fault_target * schedule * fault_schedule ->
  fault_run

(** Per-target aggregate over all (delay, fault) pairs. *)
type fault_summary = {
  ftarget_name : string;
  fruns : fault_run array;  (** delay-major, fault-minor order *)
  clean_comm : int;  (** the unwrapped fault-free run's weighted comm *)
  worst_overhead : float;  (** max over passing runs *)
  mean_overhead : float;  (** mean over passing runs *)
  ffailures : int;
}

(** [explore_faults ?pool ?trace_dir ?check_replay g ~targets ~delays
    ~faults] runs every target under every (delay schedule, fault plan)
    pair, sharded over [pool]. With [check_replay] (default [false]),
    each passing run is re-executed under a trace collector and then
    {e replayed} — re-run under {!Csap_dsim.Trace.recorded} of its own
    trace with the same fault plan — demanding event-for-event equality;
    divergence marks the run failed. With [trace_dir], each failing
    run's traces are written to
    [trace_dir/<target>--<delay>--<fault>--<i>.jsonl]. *)
val explore_faults :
  ?pool:Csap_pool.t ->
  ?trace_dir:string ->
  ?check_replay:bool ->
  Csap_graph.Graph.t ->
  targets:fault_target list ->
  delays:schedule list ->
  faults:fault_schedule list ->
  fault_summary list
