(** Indexed binary min-heap over int keys [0 .. capacity-1] with int
    priorities and [decrease_key].

    Built for the Dijkstra/Prim hot paths: every operation is
    allocation-free, each key occupies at most one slot (no lazy-deletion
    duplicates), and ties are broken by key, so draining the heap yields
    the same order as a tuple heap over [(priority, key)]. *)

type t

(** [create capacity] is an empty heap accepting keys [0..capacity-1]. *)
val create : int -> t

val capacity : t -> int
val size : t -> int
val is_empty : t -> bool

(** [mem t k] is whether key [k] is currently in the heap. *)
val mem : t -> int -> bool

(** [priority t k] is [k]'s current priority. Raises [Invalid_argument]
    when [k] is absent. *)
val priority : t -> int -> int

(** [insert t k p] adds the absent key [k] with priority [p]; O(log n).
    Raises [Invalid_argument] if [k] is already present. *)
val insert : t -> int -> int -> unit

(** [decrease_key t k p] lowers the present key [k]'s priority to [p];
    O(log n). Raises [Invalid_argument] when [k] is absent or [p] is
    larger than the current priority. *)
val decrease_key : t -> int -> int -> unit

(** [push t k p] is [insert] when [k] is absent, [decrease_key] when
    present with a larger priority, and a no-op otherwise — the Dijkstra
    relaxation primitive. *)
val push : t -> int -> int -> unit

(** [min_key t] is the key with the smallest [(priority, key)], without
    removing it; [-1] when empty. *)
val min_key : t -> int

(** [pop_min t] removes and returns the key with the smallest
    [(priority, key)]; [-1] when empty. O(log n). *)
val pop_min : t -> int

(** [clear t] empties the heap in O(size). *)
val clear : t -> unit
