(* Elements are stored in an [Obj.t] array behind an immediate filler
   (the same trick as the simulator's SOA event queue): the backing
   array is created from the filler, so it is never float-tagged and
   generic reads/writes round-trip any ['a] — including boxed floats —
   unchanged.

   The filler matters for retention, not speed: the engine's boxed
   event queue parks [Local] closures and message payloads in here, and
   a popped slot that keeps its old pointer would hold the previous
   trial's closures (and everything they capture) live until the slot
   happens to be overwritten. Every vacated slot — on [pop_min], on
   [to_sorted_list]'s drain and on [clear] — is therefore nulled back
   to the filler; [clear] keeps the grown capacity so a reused heap
   never re-pays the doubling copies. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : Obj.t array;
  mutable len : int;
}

let filler = Obj.repr 0

let create ~cmp = { cmp; data = [||]; len = 0 }

let size t = t.len

let is_empty t = t.len = 0

let[@inline] get t i : 'a = Obj.obj (Array.unsafe_get t.data i)

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let new_cap = max 8 (2 * cap) in
    (* Fresh capacity is filler, never a live element: [Array.make cap x]
       would pin [x] in every unused slot. *)
    let data = Array.make new_cap filler in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.len && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t x =
  grow t;
  t.data.(t.len) <- Obj.repr x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek_min t = if t.len = 0 then None else Some (get t 0)

let pop_min t =
  if t.len = 0 then None
  else begin
    let min : 'a = get t 0 in
    t.len <- t.len - 1;
    if t.len > 0 then t.data.(0) <- t.data.(t.len);
    (* Null the vacated slot: the popped element (or the moved tail's
       stale duplicate) must not stay reachable through the heap. *)
    t.data.(t.len) <- filler;
    if t.len > 0 then sift_down t 0;
    Some min
  end

let clear t =
  (* Keep the grown capacity; wipe the occupied prefix so cleared
     elements can be collected (slots >= len are already filler). *)
  Array.fill t.data 0 t.len filler;
  t.len <- 0

let of_list ~cmp xs =
  match xs with
  | [] -> create ~cmp
  | _ ->
    let n = List.length xs in
    let data = Array.make n filler in
    List.iteri (fun i x -> data.(i) <- Obj.repr x) xs;
    let t = { cmp; data; len = n } in
    for i = (t.len / 2) - 1 downto 0 do
      sift_down t i
    done;
    t

let to_sorted_list t =
  let rec drain acc =
    match pop_min t with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
