let bfs_hops g ~src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors g v (fun u _ _ ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
  done;
  dist

let hop_diameter g =
  if not (Graph.is_connected g) then
    invalid_arg "Traversal.hop_diameter: graph is disconnected";
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    Array.iter (fun d -> if d > !best then best := d) (bfs_hops g ~src:v)
  done;
  !best

let dfs_preorder g ~src =
  let n = Graph.n g in
  let visited = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  let stack = ref [ src ] in
  let off = Graph.csr_offsets g in
  let nbr = Graph.csr_neighbors g in
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if not visited.(v) then begin
        visited.(v) <- true;
        order := v :: !order;
        incr count;
        (* Push in reverse adjacency order so exploration follows it. *)
        for i = off.(v + 1) - 1 downto off.(v) do
          let u = nbr.(i) in
          if not visited.(u) then stack := u :: !stack
        done
      end;
      loop ()
  in
  loop ();
  Array.of_list (List.rev !order)

let components g =
  let n = Graph.n g in
  let ids = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if ids.(v) < 0 then begin
      let id = !count in
      incr count;
      let stack = ref [ v ] in
      ids.(v) <- id;
      let rec loop () =
        match !stack with
        | [] -> ()
        | x :: rest ->
          stack := rest;
          Graph.iter_neighbors g x (fun u _ _ ->
              if ids.(u) < 0 then begin
                ids.(u) <- id;
                stack := u :: !stack
              end);
          loop ()
      in
      loop ()
    end
  done;
  (ids, !count)

let spanning_tree_dfs g ~root =
  let n = Graph.n g in
  let parents = Array.make n (-1) in
  let weights = Array.make n 0 in
  let visited = Array.make n false in
  visited.(root) <- true;
  let count = ref 1 in
  let stack = ref [ root ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Graph.iter_neighbors g v (fun u w _ ->
          if not visited.(u) then begin
            visited.(u) <- true;
            parents.(u) <- v;
            weights.(u) <- w;
            incr count;
            stack := u :: !stack
          end);
      loop ()
  in
  loop ();
  if !count <> n then
    invalid_arg "Traversal.spanning_tree_dfs: graph is disconnected";
  Tree.of_parents ~root ~parents ~weights
