type t = {
  n : int;
  m : int;
  script_e : int;
  script_v : int;
  script_d : int;
  d : int;
  w_max : int;
}

(* Computing the parameters costs n Dijkstras plus an MST; the benchmark
   harness asks for them once per table row on the same instance. Memoize
   per graph identity ({!Graph.id}), behind a mutex so the parallel bench
   harness's domains can share the cache. The compute itself runs outside
   the lock: two domains racing on the same graph both compute the same
   pure value, and one insert wins.

   The cache is bounded: graph ids never repeat, so long bench runs over
   thousands of generated graphs would otherwise grow it without limit.
   Eviction is insertion-order (FIFO) — [order] queues keys as they are
   first stored, and once over capacity the oldest entries are dropped.
   Recency is irrelevant here: the harness computes each instance's
   parameters in a burst of nearby table rows and never returns to it. *)
let default_cache_capacity = 4096

let cache : (int, t) Hashtbl.t = Hashtbl.create 64
let order : int Queue.t = Queue.create ()
let capacity = ref default_cache_capacity
let cache_lock = Mutex.create ()

(* Call with [cache_lock] held. *)
let evict_over_capacity () =
  while Hashtbl.length cache > !capacity do
    Hashtbl.remove cache (Queue.pop order)
  done

let cache_find key =
  Mutex.lock cache_lock;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_lock;
  r

let cache_store key p =
  Mutex.lock cache_lock;
  if not (Hashtbl.mem cache key) then begin
    Hashtbl.add cache key p;
    Queue.push key order;
    evict_over_capacity ()
  end;
  Mutex.unlock cache_lock

let cache_capacity () = !capacity

let set_cache_capacity c =
  if c < 1 then invalid_arg "Params.set_cache_capacity: capacity < 1";
  Mutex.lock cache_lock;
  capacity := c;
  evict_over_capacity ();
  Mutex.unlock cache_lock

let cache_size () =
  Mutex.lock cache_lock;
  let s = Hashtbl.length cache in
  Mutex.unlock cache_lock;
  s

let cached g = cache_find (Graph.id g) <> None

let cache_clear () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Queue.clear order;
  Mutex.unlock cache_lock

let compute g =
  let key = Graph.id g in
  match cache_find key with
  | Some p -> p
  | None ->
    let e = Paths.extrema g in
    let p =
      {
        n = Graph.n g;
        m = Graph.m g;
        script_e = Graph.total_weight g;
        script_v = Mst.weight g;
        script_d = e.Paths.diameter;
        d = e.Paths.max_neighbor;
        w_max = Graph.max_weight g;
      }
    in
    cache_store key p;
    p

let pp ppf t =
  Format.fprintf ppf
    "n=%d m=%d E=%d V=%d D=%d d=%d W=%d" t.n t.m t.script_e t.script_v
    t.script_d t.d t.w_max

let invariants_hold t =
  t.script_v <= t.script_e
  && t.script_d <= t.script_e
  && t.d <= t.w_max
  && (t.n <= 1 || t.script_v <= (t.n - 1) * t.script_d)
  && t.script_d <= max 1 t.script_v (* every distance <= some MST path *)
