type t = {
  n : int;
  m : int;
  script_e : int;
  script_v : int;
  script_d : int;
  d : int;
  w_max : int;
}

(* Computing the parameters costs n Dijkstras plus an MST; the benchmark
   harness asks for them once per table row on the same instance. Memoize
   per graph identity ({!Graph.id}), behind a mutex so the parallel bench
   harness's domains can share the cache. The compute itself runs outside
   the lock: two domains racing on the same graph both compute the same
   pure value, and one insert wins. *)
let cache : (int, t) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()

let cache_find key =
  Mutex.lock cache_lock;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_lock;
  r

let cache_store key p =
  Mutex.lock cache_lock;
  (* Bound the cache: the harness creates thousands of short-lived
     instances; entries are tiny but ids never repeat. *)
  if Hashtbl.length cache >= 8192 then Hashtbl.reset cache;
  if not (Hashtbl.mem cache key) then Hashtbl.add cache key p;
  Mutex.unlock cache_lock

let compute g =
  let key = Graph.id g in
  match cache_find key with
  | Some p -> p
  | None ->
    let e = Paths.extrema g in
    let p =
      {
        n = Graph.n g;
        m = Graph.m g;
        script_e = Graph.total_weight g;
        script_v = Mst.weight g;
        script_d = e.Paths.diameter;
        d = e.Paths.max_neighbor;
        w_max = Graph.max_weight g;
      }
    in
    cache_store key p;
    p

let pp ppf t =
  Format.fprintf ppf
    "n=%d m=%d E=%d V=%d D=%d d=%d W=%d" t.n t.m t.script_e t.script_v
    t.script_d t.d t.w_max

let invariants_hold t =
  t.script_v <= t.script_e
  && t.script_d <= t.script_e
  && t.d <= t.w_max
  && (t.n <= 1 || t.script_v <= (t.n - 1) * t.script_d)
  && t.script_d <= max 1 t.script_v (* every distance <= some MST path *)
