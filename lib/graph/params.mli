(** The paper's weighted network parameters (Section 1.3).

    - [script_e]  = [w(G)], total edge weight — the cost of transmitting one
      message over every edge;
    - [script_v]  = [w(MST)] — the minimal cost of reaching all vertices;
    - [script_d]  = [Diam(G)], weighted diameter — the maximal cost of
      transmitting a message between a pair of vertices;
    - [d]         = the largest weighted distance between two neighbours;
    - [w_max]     = the maximal edge weight [W]. *)

type t = {
  n : int;
  m : int;
  script_e : int;
  script_v : int;
  script_d : int;
  d : int;
  w_max : int;
}

(** Compute every parameter; requires a connected graph. O(n m log n) the
    first time; results are memoized per graph instance (keyed by
    {!Graph.id}, thread-safe), so repeated calls on the same graph — one
    per benchmark row — are O(1). *)
val compute : Graph.t -> t

val pp : Format.formatter -> t -> unit

(** Sanity relations from the paper: [script_v <= script_e],
    [script_d <= script_v] (any distance is at most some MST path),
    [script_d <= script_e], [d <= w_max], and Fact 6.3:
    [script_v <= (n-1) * script_d]. *)
val invariants_hold : t -> bool
