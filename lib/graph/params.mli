(** The paper's weighted network parameters (Section 1.3).

    - [script_e]  = [w(G)], total edge weight — the cost of transmitting one
      message over every edge;
    - [script_v]  = [w(MST)] — the minimal cost of reaching all vertices;
    - [script_d]  = [Diam(G)], weighted diameter — the maximal cost of
      transmitting a message between a pair of vertices;
    - [d]         = the largest weighted distance between two neighbours;
    - [w_max]     = the maximal edge weight [W]. *)

type t = {
  n : int;
  m : int;
  script_e : int;
  script_v : int;
  script_d : int;
  d : int;
  w_max : int;
}

(** Compute every parameter; requires a connected graph. O(n m log n) the
    first time; results are memoized per graph instance (keyed by
    {!Graph.id}), so repeated calls on the same graph — one per benchmark
    row — are O(1).

    The cache is domain-safe: lookups and inserts are serialised behind a
    mutex while the computation itself runs outside the lock, so domains
    of a {!Csap_pool} sweep or a {!Csap_dsim.Pengine} run may call
    [compute] concurrently. Two domains racing on the same graph both
    compute the same pure result and the second insert is a no-op
    (asserted by a multi-domain stress test).

    The memo cache holds at most {!cache_capacity} entries; beyond that
    the oldest insertions are evicted (FIFO), so bench runs over
    thousands of generated graphs don't grow it without limit. *)
val compute : Graph.t -> t

(** {2 Memo-cache controls} *)

(** Current capacity bound (default 4096 entries). *)
val cache_capacity : unit -> int

(** [set_cache_capacity c] rebounds the cache to [c >= 1] entries,
    evicting oldest-first if it is currently over. Raises
    [Invalid_argument] on [c < 1]. *)
val set_cache_capacity : int -> unit

(** Number of memoized entries right now. *)
val cache_size : unit -> int

(** Whether [g]'s parameters are currently memoized. *)
val cached : Graph.t -> bool

(** Drop every memoized entry (used by tests). *)
val cache_clear : unit -> unit

val pp : Format.formatter -> t -> unit

(** Sanity relations from the paper: [script_v <= script_e],
    [script_d <= script_v] (any distance is at most some MST path),
    [script_d <= script_e], [d <= w_max], and Fact 6.3:
    [script_v <= (n-1) * script_d]. *)
val invariants_hold : t -> bool
