(** Edge-cut vertex partitions for the partitioned simulation engine.

    A partition splits the vertex set into [k] blocks; every edge whose
    endpoints land in different blocks is a {e cut edge}. The
    partitioned engine ([Csap_dsim.Pengine]) runs one domain per block
    and derives its conservative lookahead from the minimum delay lower
    bound over the cut edges, so a good partition is one with few,
    heavy cut edges. Both partitioners here are deliberately cheap —
    O(n + m) — because graph construction at n = 10^6 must stay
    generator-bound. *)

type t

(** [striped g ~k] assigns vertex [v] to block [v * k / n]: contiguous
    vertex-id ranges. On families whose ids are laid out geographically
    (grids in row-major order, paths) this is already a near-minimal
    cut. Raises [Invalid_argument] unless [1 <= k <= n]. *)
val striped : Graph.t -> k:int -> t

(** [bfs g ~k] orders vertices by BFS from vertex 0 (restarting at the
    lowest unvisited vertex if disconnected) and stripes that order
    into [k] contiguous blocks, grouping topological neighbourhoods
    when vertex ids carry no locality. *)
val bfs : Graph.t -> k:int -> t

(** Number of blocks. *)
val k : t -> int

(** Identity of the graph this partition was built over (see
    {!Graph.id}); consumers validate it before trusting the vertex
    assignment. *)
val graph_id : t -> int

(** [part_of t v] is the block of vertex [v], in [0 .. k-1]. *)
val part_of : t -> int -> int

(** [size t p] is the number of vertices in block [p]. *)
val size : t -> int -> int

(** Ids of the edges crossing between blocks, in ascending edge-id
    order. The array is the partition's own — do not mutate. *)
val cut_edges : t -> int array

(** Number of cut edges. *)
val cut_size : t -> int

(** Minimum weight over the cut edges, or [max_int] when the cut is
    empty (single block, or a disconnected family that splits cleanly).
    Raises [Invalid_argument] when [g] is not the partitioned graph. *)
val min_cut_weight : Graph.t -> t -> int

val pp : Format.formatter -> t -> unit
