type t = {
  graph_id : int;
  n : int;
  k : int;
  part : int array;
  sizes : int array;
  cut_edges : int array;
}

let check_k ~n k =
  if k < 1 then invalid_arg "Partition: k >= 1 required";
  if n > 0 && k > n then
    invalid_arg
      (Printf.sprintf "Partition: k = %d exceeds vertex count %d" k n)

(* Derive everything but the vertex assignment: block sizes and the ids
   of edges whose endpoints land in different blocks, in edge-id order
   (so the cut enumeration is deterministic). *)
let finish g ~k part =
  let n = Graph.n g in
  let sizes = Array.make k 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) part;
  let edges = Graph.edges g in
  let cut = ref [] in
  let count = ref 0 in
  for id = Array.length edges - 1 downto 0 do
    let e = edges.(id) in
    if part.(e.Graph.u) <> part.(e.Graph.v) then begin
      cut := id :: !cut;
      incr count
    end
  done;
  {
    graph_id = Graph.id g;
    n;
    k;
    part;
    sizes;
    cut_edges = Array.of_list !cut;
  }

let striped g ~k =
  let n = Graph.n g in
  check_k ~n k;
  let part = Array.init n (fun v -> v * k / max 1 n) in
  finish g ~k part

let bfs g ~k =
  let n = Graph.n g in
  check_k ~n k;
  (* BFS visit order from vertex 0 (restarting at the lowest unvisited
     vertex on disconnected graphs), then contiguous blocks of that
     order: neighbouring vertices tend to share a block, cutting fewer
     edges than vertex-id stripes on families whose ids are not already
     laid out geographically. *)
  let order = Array.make n 0 in
  let visited = Array.make n false in
  let queue = Queue.create () in
  let pos = ref 0 in
  for start = 0 to n - 1 do
    if not visited.(start) then begin
      visited.(start) <- true;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order.(v) <- !pos;
        incr pos;
        Graph.iter_neighbors g v (fun u _ _ ->
            if not visited.(u) then begin
              visited.(u) <- true;
              Queue.add u queue
            end)
      done
    end
  done;
  let part = Array.init n (fun v -> order.(v) * k / max 1 n) in
  finish g ~k part

let k t = t.k
let graph_id t = t.graph_id
let part_of t v = t.part.(v)
let size t p = t.sizes.(p)
let cut_edges t = t.cut_edges
let cut_size t = Array.length t.cut_edges

let min_cut_weight g t =
  if Graph.id g <> t.graph_id then
    invalid_arg "Partition.min_cut_weight: partition of a different graph";
  Array.fold_left
    (fun acc id -> min acc (Graph.edge g id).Graph.w)
    max_int t.cut_edges

let pp ppf t =
  Format.fprintf ppf "partition k=%d n=%d cut=%d sizes=[%s]" t.k t.n
    (cut_size t)
    (String.concat ";" (Array.to_list (Array.map string_of_int t.sizes)))
