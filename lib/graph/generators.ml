let path n ~w =
  if n < 1 then invalid_arg "Generators.path: n >= 1 required";
  Graph.create ~n (List.init (n - 1) (fun i -> (i, i + 1, w)))

let cycle n ~w =
  if n < 3 then invalid_arg "Generators.cycle: n >= 3 required";
  Graph.create ~n (List.init n (fun i -> (i, (i + 1) mod n, w)))

let star n ~w =
  if n < 2 then invalid_arg "Generators.star: n >= 2 required";
  Graph.create ~n (List.init (n - 1) (fun i -> (0, i + 1, w)))

let complete n ~w =
  if n < 2 then invalid_arg "Generators.complete: n >= 2 required";
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      edges := (u, v, w) :: !edges
    done
  done;
  Graph.create ~n !edges

let grid rows cols ~w =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid: empty grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1), w) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c, w) :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) !edges

let binary_tree n ~w =
  if n < 1 then invalid_arg "Generators.binary_tree: n >= 1 required";
  Graph.create ~n (List.init (n - 1) (fun i -> (i + 1, i / 2, w)))

let random_tree rng n ~wmax =
  if n < 1 then invalid_arg "Generators.random_tree: n >= 1 required";
  if wmax < 1 then invalid_arg "Generators.random_tree: wmax >= 1 required";
  (* Random attachment: vertex i > 0 hangs off a uniform earlier vertex,
     after a random relabelling so the shape is not biased toward low ids. *)
  let label = Array.init n (fun i -> i) in
  Rng.shuffle rng label;
  let edges = ref [] in
  for i = 1 to n - 1 do
    let p = Rng.int rng i in
    edges := (label.(i), label.(p), Rng.int_in rng 1 wmax) :: !edges
  done;
  Graph.create ~n !edges

let random_connected rng n ~extra_edges ~wmax =
  let tree = random_tree rng n ~wmax in
  let existing = Hashtbl.create (n + extra_edges) in
  Array.iter
    (fun (e : Graph.edge) -> Hashtbl.replace existing (e.u, e.v) ())
    (Graph.edges tree);
  let extras = ref [] in
  let added = ref 0 in
  let attempts = ref 0 in
  let max_possible = (n * (n - 1) / 2) - (n - 1) in
  let budget = min extra_edges max_possible in
  while !added < budget && !attempts < 100 * (budget + 1) do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    let u, v = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem existing (u, v)) then begin
      Hashtbl.replace existing (u, v) ();
      extras := (u, v, Rng.int_in rng 1 wmax) :: !extras;
      incr added
    end
  done;
  let tree_edges =
    Array.to_list (Graph.edges tree)
    |> List.map (fun (e : Graph.edge) -> (e.u, e.v, e.w))
  in
  Graph.create ~n (tree_edges @ !extras)

let random_geometric rng n ~degree ~scale =
  if n < 2 then invalid_arg "Generators.random_geometric: n >= 2 required";
  let xs = Array.init n (fun _ -> Rng.float rng) in
  let ys = Array.init n (fun _ -> Rng.float rng) in
  let dist2 i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    (dx *. dx) +. (dy *. dy)
  in
  let weight i j =
    max 1 (int_of_float (Float.round (scale *. sqrt (dist2 i j))))
  in
  let existing = Hashtbl.create (n * degree) in
  let edges = ref [] in
  let add i j =
    let u, v = if i < j then (i, j) else (j, i) in
    if u <> v && not (Hashtbl.mem existing (u, v)) then begin
      Hashtbl.replace existing (u, v) ();
      edges := (u, v, weight u v) :: !edges
    end
  in
  (* Connectivity backbone: Euclidean MST via Prim on the complete graph. *)
  let in_tree = Array.make n false in
  let best = Array.make n infinity in
  let best_to = Array.make n (-1) in
  in_tree.(0) <- true;
  for j = 1 to n - 1 do
    best.(j) <- dist2 0 j;
    best_to.(j) <- 0
  done;
  for _ = 1 to n - 1 do
    let pick = ref (-1) in
    for j = 0 to n - 1 do
      if (not in_tree.(j)) && (!pick < 0 || best.(j) < best.(!pick)) then
        pick := j
    done;
    let j = !pick in
    in_tree.(j) <- true;
    add j best_to.(j);
    for k = 0 to n - 1 do
      if (not in_tree.(k)) && dist2 j k < best.(k) then begin
        best.(k) <- dist2 j k;
        best_to.(k) <- j
      end
    done
  done;
  (* Local links: each vertex connects to its nearest neighbours until the
     requested average degree is reached. *)
  let target_edges = max (n - 1) (n * degree / 2) in
  let k = ref 1 in
  while List.length !edges < target_edges && !k < n - 1 do
    for i = 0 to n - 1 do
      let order = Array.init n (fun j -> j) in
      Array.sort (fun a b -> compare (dist2 i a) (dist2 i b)) order;
      (* order.(0) = i itself; link to the !k-th nearest neighbour. *)
      if !k < n then add i order.(!k)
    done;
    incr k
  done;
  Graph.create ~n !edges

let lollipop clique_n path_n ~w =
  if clique_n < 2 then invalid_arg "Generators.lollipop: clique too small";
  let n = clique_n + path_n in
  let edges = ref [] in
  for u = 0 to clique_n - 2 do
    for v = u + 1 to clique_n - 1 do
      edges := (u, v, w) :: !edges
    done
  done;
  for i = 0 to path_n - 1 do
    let prev = if i = 0 then clique_n - 1 else clique_n + i - 1 in
    edges := (prev, clique_n + i, w) :: !edges
  done;
  Graph.create ~n !edges

let pow4 x = x * x * x * x

let lower_bound_gn n ~x =
  if n < 4 then invalid_arg "Generators.lower_bound_gn: n >= 4 required";
  if x < 2 then invalid_arg "Generators.lower_bound_gn: x >= 2 required";
  let heavy = pow4 x in
  let path_edges = List.init (n - 1) (fun i -> (i, i + 1, x)) in
  let bypass =
    List.init (n / 2) (fun i -> (i, n - 1 - i, heavy))
    |> List.filter (fun (u, v, _) -> u < v && v - u > 1)
  in
  Graph.create ~n (path_edges @ bypass)

let lower_bound_gn_i n ~i ~x =
  if i < 0 || i >= n / 2 then
    invalid_arg "Generators.lower_bound_gn_i: i out of range";
  let heavy = pow4 x in
  let base = lower_bound_gn n ~x in
  let partner = n - 1 - i in
  let kept =
    Array.to_list (Graph.edges base)
    |> List.filter (fun (e : Graph.edge) -> not (e.u = i && e.v = partner))
    |> List.map (fun (e : Graph.edge) -> (e.u, e.v, e.w))
  in
  (* Fresh pendant vertices n and n+1 replace the bypass edge. *)
  Graph.create ~n:(n + 2) (((i, n, heavy)) :: ((partner, n + 1, heavy)) :: kept)

let chorded_cycle n ~chord_w =
  if n < 5 then invalid_arg "Generators.chorded_cycle: n >= 5 required";
  if chord_w < 1 then invalid_arg "Generators.chorded_cycle: bad weight";
  let ring = List.init n (fun i -> (i, (i + 1) mod n, 1)) in
  let chords = List.init n (fun i -> (i, (i + 2) mod n, chord_w)) in
  let chords =
    List.filter
      (fun (u, v, _) ->
        let u, v = if u < v then (u, v) else (v, u) in
        v - u = 2 || (u = 0 && v = n - 2) || (u = 1 && v = n - 1))
      chords
  in
  (* Deduplicate: normalise and drop duplicates defensively. *)
  let seen = Hashtbl.create n in
  let uniq =
    List.filter
      (fun (u, v, _) ->
        let key = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (ring @ chords)
  in
  Graph.create ~n uniq

(* ------------------------------------------------------------------ *)
(* Streaming builders: the million-vertex path.                        *)
(*                                                                     *)
(* Each generator below describes its family as a replayable edge      *)
(* stream fed to [Graph.of_stream]'s two-pass CSR construction — no    *)
(* (src, dst, w) tuple list ever exists. Randomness is re-derived per  *)
(* row from a pure seed mix so the count and fill passes replay the    *)
(* identical sequence. The [grid_stream] / [lower_bound_gn_stream]     *)
(* variants emit the exact edge-id order of their tuple-based          *)
(* counterparts (asserted by tests), so either construction yields     *)
(* interchangeable graphs.                                             *)
(* ------------------------------------------------------------------ *)

let grid_stream rows cols ~w =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid_stream: empty grid";
  let id r c = (r * cols) + c in
  (* [grid] conses right-then-down edges in scan order and hands the
     accumulated list (reverse push order) to [Graph.create]; replaying
     that exact id order means walking cells backwards, down-edge before
     right-edge. *)
  Graph.of_stream ~n:(rows * cols) (fun f ->
      for r = rows - 1 downto 0 do
        for c = cols - 1 downto 0 do
          if r + 1 < rows then f (id r c) (id (r + 1) c) w;
          if c + 1 < cols then f (id r c) (id r (c + 1)) w
        done
      done)

let lower_bound_gn_stream n ~x =
  if n < 4 then invalid_arg "Generators.lower_bound_gn_stream: n >= 4 required";
  if x < 2 then invalid_arg "Generators.lower_bound_gn_stream: x >= 2 required";
  let heavy = pow4 x in
  Graph.of_stream ~n (fun f ->
      for i = 0 to n - 2 do
        f i (i + 1) x
      done;
      for i = 0 to (n / 2) - 1 do
        let partner = n - 1 - i in
        if i < partner && partner - i > 1 then f i partner heavy
      done)

(* Per-row RNG: splitmix64's finalizer decorrelates consecutive seeds,
   so a cheap injective mix of (seed, row) is enough for independent
   replayable row streams. *)
let row_rng ~seed u = Rng.create ((seed * 1_000_003) + u)

(* Geometric skip to the next sampled neighbour: Bernoulli(p) per pair
   collapses to one logarithm per present edge. *)
let geometric_skip rng ~p =
  if p >= 1.0 then 1
  else
    let r = Rng.float rng in
    1 + int_of_float (log (1.0 -. r) /. log (1.0 -. p))

let gnp ?(connected = false) ~seed n ~p ~wmax =
  if n < 1 then invalid_arg "Generators.gnp: n >= 1 required";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Generators.gnp: p must be in [0, 1]";
  if wmax < 1 then invalid_arg "Generators.gnp: wmax >= 1 required";
  Graph.of_stream ~n (fun f ->
      for u = 0 to n - 2 do
        if connected then begin
          (* Path backbone for guaranteed connectivity; skipped when row
             [u]'s own first edge is already {u, u+1} (the only possible
             duplicate, since row samples only move forward). *)
          let probe = row_rng ~seed:(seed + 1) u in
          let dup = p > 0.0 && geometric_skip (row_rng ~seed u) ~p = 1 in
          if not dup then f u (u + 1) (Rng.int_in probe 1 wmax)
        end;
        if p > 0.0 then begin
          let rng = row_rng ~seed u in
          let v = ref u in
          let continue = ref true in
          while !continue do
            v := !v + geometric_skip rng ~p;
            if !v < n then f u !v (Rng.int_in rng 1 wmax)
            else continue := false
          done
        end
      done)

let bkj_star_cycle k ~heavy =
  if k < 3 then invalid_arg "Generators.bkj_star_cycle: k >= 3 required";
  if heavy < 1 then invalid_arg "Generators.bkj_star_cycle: bad weight";
  let n = k + 1 in
  let spokes = List.init k (fun i -> (0, i + 1, heavy)) in
  let rim = List.init (k - 1) (fun i -> (i + 1, i + 2, 1)) in
  Graph.create ~n (spokes @ rim)
