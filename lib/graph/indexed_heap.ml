(* Indexed binary min-heap over int keys [0 .. capacity-1] with int
   priorities. Each key appears at most once; [push] either inserts or
   decreases, so Dijkstra-style loops allocate nothing per relaxation and
   never hold duplicate entries (unlike the lazy-deletion pattern over
   {!Heap}). Ties are broken by key, matching the [(dist, vertex)]
   lexicographic order of the tuple-heap formulation. *)

type t = {
  capacity : int;
  heap : int array;  (* position -> key *)
  pos : int array;  (* key -> position, or -1 when absent *)
  prio : int array;  (* key -> priority (meaningful when present) *)
  mutable len : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Indexed_heap.create: negative capacity";
  {
    capacity;
    heap = Array.make capacity 0;
    pos = Array.make capacity (-1);
    prio = Array.make capacity 0;
    len = 0;
  }

let capacity t = t.capacity
let size t = t.len
let is_empty t = t.len = 0

let check_key t k =
  if k < 0 || k >= t.capacity then invalid_arg "Indexed_heap: key out of range"

let mem t k =
  check_key t k;
  t.pos.(k) >= 0

let priority t k =
  check_key t k;
  if t.pos.(k) < 0 then invalid_arg "Indexed_heap.priority: absent key";
  t.prio.(k)

(* [less t a b] orders keys by (priority, key). *)
let less t a b = t.prio.(a) < t.prio.(b) || (t.prio.(a) = t.prio.(b) && a < b)

let swap t i j =
  let ki = t.heap.(i) and kj = t.heap.(j) in
  t.heap.(i) <- kj;
  t.heap.(j) <- ki;
  t.pos.(kj) <- i;
  t.pos.(ki) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && less t t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t k p =
  check_key t k;
  if t.pos.(k) >= 0 then invalid_arg "Indexed_heap.insert: key present";
  t.heap.(t.len) <- k;
  t.pos.(k) <- t.len;
  t.prio.(k) <- p;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let decrease_key t k p =
  check_key t k;
  if t.pos.(k) < 0 then invalid_arg "Indexed_heap.decrease_key: absent key";
  if p > t.prio.(k) then
    invalid_arg "Indexed_heap.decrease_key: priority increase";
  t.prio.(k) <- p;
  sift_up t t.pos.(k)

let push t k p =
  check_key t k;
  if t.pos.(k) < 0 then insert t k p
  else if p < t.prio.(k) then decrease_key t k p

let min_key t = if t.len = 0 then -1 else t.heap.(0)

let pop_min t =
  if t.len = 0 then -1
  else begin
    let k = t.heap.(0) in
    t.pos.(k) <- -1;
    t.len <- t.len - 1;
    if t.len > 0 then begin
      let last = t.heap.(t.len) in
      t.heap.(0) <- last;
      t.pos.(last) <- 0;
      sift_down t 0
    end;
    k
  end

let clear t =
  for i = 0 to t.len - 1 do
    t.pos.(t.heap.(i)) <- -1
  done;
  t.len <- 0
