(** Resizable binary min-heap over an arbitrary ordering.

    Used by Dijkstra / Prim (with [(priority, vertex)] pairs and lazy
    deletion) and by the discrete-event simulator's boxed oracle event
    queue. Vacated slots are nulled on {!pop_min} and {!clear}, so
    popped elements — engine [Local] closures in the oracle queue, and
    whatever they capture — never stay reachable through the heap's
    backing array. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [add t x] inserts [x]; O(log n). *)
val add : 'a t -> 'a -> unit

(** [peek_min t] is the minimum element without removing it. *)
val peek_min : 'a t -> 'a option

(** [pop_min t] removes and returns the minimum element; O(log n). The
    vacated slot is nulled, so the heap keeps no reference to it. *)
val pop_min : 'a t -> 'a option

(** [clear t] removes every element, nulling the occupied slots while
    keeping the grown capacity (a reused heap never re-pays the
    doubling copies). *)
val clear : 'a t -> unit

(** [of_list ~cmp xs] heapifies [xs]; O(n). *)
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

(** [to_sorted_list t] drains the heap, returning elements in ascending
    order. The heap is empty afterwards. *)
val to_sorted_list : 'a t -> 'a list
