type edge = { u : int; v : int; w : int }

(* Adjacency is compressed-sparse-row: vertex [v]'s incident edges live in
   slots [off.(v) .. off.(v+1) - 1] of the flat parallel arrays [nbr]
   (other endpoint), [wt] (weight) and [eid] (edge id), in per-vertex
   edge-id order — the same order the historical boxed
   [(nbr, w, eid) array array] used, so every traversal that migrated to
   the flat rows visits neighbours in the identical sequence. Plain int
   arrays: neighbour loops touch three cache-friendly flat arrays instead
   of pointer-chasing boxed tuples, allocate nothing, and the whole
   structure can be shared freely across domains (immutable after
   [create]). *)
type t = {
  n : int;
  id : int;
  edges : edge array;
  off : int array;  (* length n + 1; off.(n) = 2m *)
  nbr : int array;
  wt : int array;
  eid : int array;
  (* Hot-path edge index: per-vertex neighbour ids sorted ascending (flat,
     sharing [off]), with the incident edge id and the position of the
     neighbour within the vertex's CSR row kept aligned, so membership
     queries binary-search instead of scanning the whole row. *)
  sorted_nbr : int array;
  sorted_eid : int array;
  sorted_pos : int array;
}

let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1

let normalise_edge n (u, v, w) =
  if u = v then invalid_arg "Graph.create: self-loop";
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Graph.create: endpoint out of range";
  if w < 1 then invalid_arg "Graph.create: weight must be >= 1";
  if u < v then { u; v; w } else { u = v; v = u; w }

(* Sorted-adjacency index over finished CSR rows: sort each row's
   (neighbour, edge id, position) triples by neighbour id. *)
let build_sorted_index ~n ~off ~nbr ~eid =
  let two_m = Array.length nbr in
  let sorted_nbr = Array.make two_m 0
  and sorted_eid = Array.make two_m 0
  and sorted_pos = Array.make two_m 0 in
  let max_deg = ref 0 in
  for v = 0 to n - 1 do
    max_deg := max !max_deg (off.(v + 1) - off.(v))
  done;
  let triples = Array.make !max_deg (0, 0, 0) in
  for v = 0 to n - 1 do
    let lo = off.(v) in
    let d = off.(v + 1) - lo in
    for i = 0 to d - 1 do
      triples.(i) <- (nbr.(lo + i), eid.(lo + i), i)
    done;
    let slice = Array.sub triples 0 d in
    Array.sort compare slice;
    Array.iteri
      (fun i (u, id, pos) ->
        sorted_nbr.(lo + i) <- u;
        sorted_eid.(lo + i) <- id;
        sorted_pos.(lo + i) <- pos)
      slice
  done;
  (sorted_nbr, sorted_eid, sorted_pos)

(* Shared CSR finisher over a validated, normalised edge array. *)
let of_edge_array ~n edges =
  let m = Array.length edges in
  let off = Array.make (n + 1) 0 in
  Array.iter
    (fun e ->
      off.(e.u) <- off.(e.u) + 1;
      off.(e.v) <- off.(e.v) + 1)
    edges;
  (* Prefix-sum the degrees into row offsets. *)
  let total = ref 0 in
  for v = 0 to n do
    let d = off.(v) in
    off.(v) <- !total;
    if v < n then total := !total + d
  done;
  let nbr = Array.make (2 * m) 0
  and wt = Array.make (2 * m) 0
  and eid = Array.make (2 * m) 0 in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id e ->
      let slot v x =
        let i = off.(v) + fill.(v) in
        fill.(v) <- fill.(v) + 1;
        nbr.(i) <- x;
        wt.(i) <- e.w;
        eid.(i) <- id
      in
      slot e.u e.v;
      slot e.v e.u)
    edges;
  let sorted_nbr, sorted_eid, sorted_pos =
    build_sorted_index ~n ~off ~nbr ~eid
  in
  {
    n;
    id = next_id ();
    edges;
    off;
    nbr;
    wt;
    eid;
    sorted_nbr;
    sorted_eid;
    sorted_pos;
  }

let create ~n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let edges = Array.of_list (List.map (normalise_edge n) edge_list) in
  let m = Array.length edges in
  let seen = Hashtbl.create m in
  Array.iter
    (fun e ->
      if Hashtbl.mem seen (e.u, e.v) then
        invalid_arg "Graph.create: duplicate edge";
      Hashtbl.add seen (e.u, e.v) ())
    edges;
  of_edge_array ~n edges

let of_stream ~n iter =
  if n < 0 then invalid_arg "Graph.of_stream: negative n";
  (* Count pass: degrees and edge count only — no tuple list, no
     per-edge allocation. Endpoint/weight validation happens here so the
     fill pass can trust the stream. Duplicate detection is skipped: it
     needs O(m) auxiliary hash state, which is exactly what this path
     exists to avoid; generators feeding it must emit each edge once. *)
  let off = Array.make (n + 1) 0 in
  let m = ref 0 in
  iter (fun u v w ->
      if u = v then invalid_arg "Graph.of_stream: self-loop";
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_stream: endpoint out of range";
      if w < 1 then invalid_arg "Graph.of_stream: weight must be >= 1";
      off.(u) <- off.(u) + 1;
      off.(v) <- off.(v) + 1;
      incr m);
  let m = !m in
  let total = ref 0 in
  for v = 0 to n do
    let d = off.(v) in
    off.(v) <- !total;
    if v < n then total := !total + d
  done;
  (* Fill pass: the generator replays the identical stream; edge ids are
     assigned in stream order, matching what [create] would produce on
     the same sequence. *)
  let edges = Array.make m { u = 0; v = 0; w = 0 } in
  let nbr = Array.make (2 * m) 0
  and wt = Array.make (2 * m) 0
  and eid = Array.make (2 * m) 0 in
  let fill = Array.make n 0 in
  let id = ref 0 in
  iter (fun u v w ->
      if !id >= m then
        invalid_arg "Graph.of_stream: stream grew between passes";
      let u, v = if u < v then (u, v) else (v, u) in
      edges.(!id) <- { u; v; w };
      let slot x other =
        let i = off.(x) + fill.(x) in
        fill.(x) <- fill.(x) + 1;
        nbr.(i) <- other;
        wt.(i) <- w;
        eid.(i) <- !id
      in
      slot u v;
      slot v u;
      incr id);
  if !id <> m then invalid_arg "Graph.of_stream: stream shrank between passes";
  let sorted_nbr, sorted_eid, sorted_pos =
    build_sorted_index ~n ~off ~nbr ~eid
  in
  {
    n;
    id = next_id ();
    edges;
    off;
    nbr;
    wt;
    eid;
    sorted_nbr;
    sorted_eid;
    sorted_pos;
  }

let n t = t.n
let m t = Array.length t.edges
let id t = t.id
let edges t = t.edges
let edge t id = t.edges.(id)
(* Materialised on demand (not cached): the deprecated shim is a cold
   path, and caching it would cost O(m) boxed tuples on every graph —
   prohibitive for the streaming million-vertex families. *)
let neighbors t v =
  let lo = t.off.(v) in
  Array.init
    (t.off.(v + 1) - lo)
    (fun i -> (t.nbr.(lo + i), t.wt.(lo + i), t.eid.(lo + i)))
let degree t v = t.off.(v + 1) - t.off.(v)

let csr_offsets t = t.off
let csr_neighbors t = t.nbr
let csr_weights t = t.wt
let csr_edge_ids t = t.eid

(* The row bounds come from [off], which the shape invariant keeps within
   [0 .. 2m], so the unchecked reads below stay in range. *)
let[@inline] iter_neighbors t v f =
  let hi = Array.unsafe_get t.off (v + 1) in
  for i = Array.unsafe_get t.off v to hi - 1 do
    f
      (Array.unsafe_get t.nbr i)
      (Array.unsafe_get t.wt i)
      (Array.unsafe_get t.eid i)
  done

let[@inline] fold_neighbors t v f init =
  let acc = ref init in
  let hi = Array.unsafe_get t.off (v + 1) in
  for i = Array.unsafe_get t.off v to hi - 1 do
    acc :=
      f !acc
        (Array.unsafe_get t.nbr i)
        (Array.unsafe_get t.wt i)
        (Array.unsafe_get t.eid i)
  done;
  !acc

(* Below this degree a linear scan over the (cache-resident) CSR row beats
   the binary search's branching. *)
let small_degree = 8

(* Top-level so the scan needs no closure: this sits on [Engine.send]'s
   allocation-free hot path (and classic-mode ocamlopt allocates local
   recursive closures per call). *)
let rec scan_row t v i hi =
  if i >= hi then -1
  else if t.nbr.(i) = v then t.eid.(i)
  else scan_row t v (i + 1) hi

let edge_id_between_scan t u v = scan_row t v t.off.(u) t.off.(u + 1)

(* Binary search for [v] in [u]'s sorted neighbour row; returns the slot
   in the sorted arrays, or -1. *)
let sorted_slot t u v =
  let base = t.off.(u) in
  let lo = ref base and hi = ref t.off.(u + 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.sorted_nbr.(mid) < v then lo := mid + 1 else hi := mid
  done;
  if !lo < t.off.(u + 1) && t.sorted_nbr.(!lo) = v then !lo else -1

let edge_id_between t u v =
  (* Query from the endpoint with the smaller degree. Branchy swap, not
     a tuple: [let u, v = if .. then (u, v) else (v, u)] allocates the
     pair on every send. *)
  let swap = degree t u > degree t v in
  let a = if swap then v else u in
  let b = if swap then u else v in
  if degree t a <= small_degree then edge_id_between_scan t a b
  else
    let s = sorted_slot t a b in
    if s < 0 then -1 else t.sorted_eid.(s)

let edge_between t u v =
  let id = edge_id_between t u v in
  if id < 0 then None else Some (t.edges.(id).w, id)

let neighbor_index t u v =
  if degree t u <= small_degree then begin
    let lo = t.off.(u) in
    let hi = t.off.(u + 1) in
    let rec scan i =
      if i >= hi then -1 else if t.nbr.(i) = v then i - lo else scan (i + 1)
    in
    scan lo
  end
  else
    let s = sorted_slot t u v in
    if s < 0 then -1 else t.sorted_pos.(s)

let other_endpoint e x =
  if e.u = x then e.v
  else begin
    assert (e.v = x);
    e.u
  end

let total_weight t = Array.fold_left (fun acc e -> acc + e.w) 0 t.edges

let max_weight t = Array.fold_left (fun acc e -> max acc e.w) 0 t.edges

let is_connected t =
  if t.n <= 1 then true
  else begin
    let visited = Array.make t.n false in
    let stack = ref [ 0 ] in
    visited.(0) <- true;
    let count = ref 1 in
    let rec loop () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        iter_neighbors t v (fun u _ _ ->
            if not visited.(u) then begin
              visited.(u) <- true;
              incr count;
              stack := u :: !stack
            end);
        loop ()
    in
    loop ();
    !count = t.n
  end

let map_weights t f =
  create ~n:t.n
    (Array.to_list (Array.map (fun e -> (e.u, e.v, f e)) t.edges))

let subgraph t ~keep_edge =
  create ~n:t.n
    (Array.to_list t.edges
    |> List.filter keep_edge
    |> List.map (fun e -> (e.u, e.v, e.w)))

let compare_edges a b =
  let c = compare a.w b.w in
  if c <> 0 then c
  else
    let c = compare a.u b.u in
    if c <> 0 then c else compare a.v b.v

let pp_edge ppf e = Format.fprintf ppf "{%d,%d}:%d" e.u e.v e.w

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>graph n=%d m=%d@ %a@]" t.n (m t)
    (Format.pp_print_array ~pp_sep:Format.pp_print_space pp_edge)
    t.edges
