type edge = { u : int; v : int; w : int }

type t = {
  n : int;
  id : int;
  edges : edge array;
  adj : (int * int * int) array array;
  (* Hot-path edge index, built once in [create]: per-vertex neighbour ids
     sorted ascending, with the incident edge id kept aligned. Plain int
     arrays so lookups allocate nothing and the structure can be shared
     freely across domains. *)
  idx_nbr : int array array;
  idx_eid : int array array;
  idx_pos : int array array;  (* position of the neighbour in [adj] *)
}

let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1

let normalise_edge n (u, v, w) =
  if u = v then invalid_arg "Graph.create: self-loop";
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Graph.create: endpoint out of range";
  if w < 1 then invalid_arg "Graph.create: weight must be >= 1";
  if u < v then { u; v; w } else { u = v; v = u; w }

let create ~n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let edges = Array.of_list (List.map (normalise_edge n) edge_list) in
  let seen = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun e ->
      if Hashtbl.mem seen (e.u, e.v) then
        invalid_arg "Graph.create: duplicate edge";
      Hashtbl.add seen (e.u, e.v) ())
    edges;
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id e ->
      adj.(e.u).(fill.(e.u)) <- (e.v, e.w, id);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, e.w, id);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  (* Sorted-adjacency index: sort each vertex's (neighbour, edge id) pairs
     by neighbour id so membership queries binary-search instead of
     scanning the whole adjacency list. *)
  let idx_nbr = Array.make n [||]
  and idx_eid = Array.make n [||]
  and idx_pos = Array.make n [||] in
  let pairs = Array.make (Array.fold_left max 0 deg) (0, 0, 0) in
  for v = 0 to n - 1 do
    let d = deg.(v) in
    for i = 0 to d - 1 do
      let u, _, id = adj.(v).(i) in
      pairs.(i) <- (u, id, i)
    done;
    let slice = Array.sub pairs 0 d in
    Array.sort compare slice;
    idx_nbr.(v) <- Array.map (fun (u, _, _) -> u) slice;
    idx_eid.(v) <- Array.map (fun (_, id, _) -> id) slice;
    idx_pos.(v) <- Array.map (fun (_, _, i) -> i) slice
  done;
  { n; id = next_id (); edges; adj; idx_nbr; idx_eid; idx_pos }

let n t = t.n
let m t = Array.length t.edges
let id t = t.id
let edges t = t.edges
let edge t id = t.edges.(id)
let neighbors t v = t.adj.(v)
let degree t v = Array.length t.adj.(v)

(* Below this degree a linear scan over the (cache-resident) adjacency
   array beats the binary search's branching. *)
let small_degree = 8

let edge_id_between_scan t u v =
  let nbrs = t.adj.(u) in
  let len = Array.length nbrs in
  let rec scan i =
    if i >= len then -1
    else
      let x, _, id = nbrs.(i) in
      if x = v then id else scan (i + 1)
  in
  scan 0

let edge_id_between t u v =
  (* Query from the endpoint with the smaller degree. *)
  let u, v =
    if Array.length t.adj.(u) <= Array.length t.adj.(v) then (u, v)
    else (v, u)
  in
  let nbrs = t.idx_nbr.(u) in
  let len = Array.length nbrs in
  if len <= small_degree then edge_id_between_scan t u v
  else begin
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if nbrs.(mid) < v then lo := mid + 1 else hi := mid
    done;
    if !lo < len && nbrs.(!lo) = v then t.idx_eid.(u).(!lo) else -1
  end

let edge_between t u v =
  let id = edge_id_between t u v in
  if id < 0 then None else Some (t.edges.(id).w, id)

let neighbor_index t u v =
  let nbrs = t.idx_nbr.(u) in
  let len = Array.length nbrs in
  if len <= small_degree then begin
    let adj = t.adj.(u) in
    let rec scan i =
      if i >= len then -1
      else
        let x, _, _ = adj.(i) in
        if x = v then i else scan (i + 1)
    in
    scan 0
  end
  else begin
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if nbrs.(mid) < v then lo := mid + 1 else hi := mid
    done;
    if !lo < len && nbrs.(!lo) = v then t.idx_pos.(u).(!lo) else -1
  end

let other_endpoint e x =
  if e.u = x then e.v
  else begin
    assert (e.v = x);
    e.u
  end

let total_weight t = Array.fold_left (fun acc e -> acc + e.w) 0 t.edges

let max_weight t = Array.fold_left (fun acc e -> max acc e.w) 0 t.edges

let is_connected t =
  if t.n <= 1 then true
  else begin
    let visited = Array.make t.n false in
    let stack = ref [ 0 ] in
    visited.(0) <- true;
    let count = ref 1 in
    let visit (u, _, _) =
      if not visited.(u) then begin
        visited.(u) <- true;
        incr count;
        stack := u :: !stack
      end
    in
    let rec loop () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        Array.iter visit t.adj.(v);
        loop ()
    in
    loop ();
    !count = t.n
  end

let map_weights t f =
  create ~n:t.n
    (Array.to_list (Array.map (fun e -> (e.u, e.v, f e)) t.edges))

let subgraph t ~keep_edge =
  create ~n:t.n
    (Array.to_list t.edges
    |> List.filter keep_edge
    |> List.map (fun e -> (e.u, e.v, e.w)))

let compare_edges a b =
  let c = compare a.w b.w in
  if c <> 0 then c
  else
    let c = compare a.u b.u in
    if c <> 0 then c else compare a.v b.v

let pp_edge ppf e = Format.fprintf ppf "{%d,%d}:%d" e.u e.v e.w

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>graph n=%d m=%d@ %a@]" t.n (m t)
    (Format.pp_print_array ~pp_sep:Format.pp_print_space pp_edge)
    t.edges
