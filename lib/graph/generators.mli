(** Graph families used by the tests, examples and benchmark harness.

    Every generator returns a connected graph; randomised ones are seeded
    through {!Rng.t} and fully deterministic. *)

(** [path n ~w] is the path [0 - 1 - ... - n-1] with uniform weight [w]. *)
val path : int -> w:int -> Graph.t

(** [cycle n ~w] is the n-cycle with uniform weight [w]; requires [n >= 3]. *)
val cycle : int -> w:int -> Graph.t

(** [star n ~w] joins vertex [0] to every other vertex. *)
val star : int -> w:int -> Graph.t

(** [complete n ~w] is K_n with uniform weight [w]. *)
val complete : int -> w:int -> Graph.t

(** [grid rows cols ~w] is the rows x cols mesh with uniform weight [w]. *)
val grid : int -> int -> w:int -> Graph.t

(** [binary_tree n ~w] is the complete-binary-tree-shaped tree on [n]
    vertices (vertex [i]'s parent is [(i-1)/2]). *)
val binary_tree : int -> w:int -> Graph.t

(** [random_tree rng n ~wmax] is a uniform random labelled tree with
    independent uniform weights in [1, wmax]. *)
val random_tree : Rng.t -> int -> wmax:int -> Graph.t

(** [random_connected rng n ~extra_edges ~wmax] is a random tree plus
    [extra_edges] additional random non-duplicate edges, weights uniform in
    [1, wmax]. *)
val random_connected : Rng.t -> int -> extra_edges:int -> wmax:int -> Graph.t

(** [random_geometric rng n ~degree ~scale] places [n] points uniformly in
    the unit square, connects each point to its nearest neighbours until the
    average degree reaches [degree], adds a Euclidean-MST backbone so the
    result is connected, and weights each edge by
    [max 1 (round (scale * euclidean distance))]. A WAN-like family: edge
    weight correlates with geometric length. *)
val random_geometric : Rng.t -> int -> degree:int -> scale:float -> Graph.t

(** [lollipop clique_n path_n ~w] is a clique with a path tail. *)
val lollipop : int -> int -> w:int -> Graph.t

(** The lower-bound family [G_n] of Section 7.1 (Figure 7): a path
    [1 - 2 - ... - n] with weight-[x] edges, plus bypass edges
    [(i, n+1-i)] for [1 <= i < n/2] with weight [x^4].

    Vertices are 0-based here: path edges [(i, i+1)] for [0 <= i < n-1] of
    weight [x], bypass edges [(i, n-1-i)] of weight [x^4]. The MST is the
    path, so script-V = (n-1) x, while script-E = Theta(n x^4). Requires
    [n >= 4] and [x >= 2]; the caller must keep [x^4] within [max_int]. *)
val lower_bound_gn : int -> x:int -> Graph.t

(** The modified family [G_n^i] of Figure 8: [G_n] where the bypass edge
    [(i, n-1-i)] (0-based) is replaced by pendant edges [(i, v)] and
    [(n-1-i, w)] to two fresh vertices [v = n], [w = n+1], both of weight
    [x^4]. Used by the indistinguishability experiment. *)
val lower_bound_gn_i : int -> i:int -> x:int -> Graph.t

(** [chorded_cycle n ~chord_w] is the weight-1 n-cycle plus heavy chords
    [(i, i+2)] of weight [chord_w]: a family where the paper's parameter
    [d] stays 2 while [W = chord_w] grows, separating clock synchronizers
    alpha* (Theta(W) pulse delay) from gamma* (O(d log^2 n)).
    Requires [n >= 5]. *)
val chorded_cycle : int -> chord_w:int -> Graph.t

(** [bkj_star_cycle k ~heavy] is the classical BKJ83-style family showing
    SPT weight Omega(n * V) and MST diameter Omega(n * D): a hub [0] joined
    to [k] rim vertices by spokes of weight [heavy], with consecutive rim
    vertices joined by weight-1 edges. *)
val bkj_star_cycle : int -> heavy:int -> Graph.t

(** {2 Streaming builders}

    Large-n variants built through {!Graph.of_stream}'s two-pass CSR
    construction: no [(src, dst, w)] tuple list is ever materialised, so
    a 10^6–10^7-vertex family costs O(E) flat-array words. Randomness is
    re-derived per row from pure seed mixes, making the two passes
    replay identically. *)

(** [grid_stream rows cols ~w] builds the {e identical} graph to
    [grid rows cols ~w] — same vertex ids, same edge-id order — without
    the intermediate edge list. *)
val grid_stream : int -> int -> w:int -> Graph.t

(** [lower_bound_gn_stream n ~x] builds the identical graph to
    [lower_bound_gn n ~x] (same edge-id order) without the intermediate
    edge list; the §7.1 family at million-vertex scale. *)
val lower_bound_gn_stream : int -> x:int -> Graph.t

(** [gnp ~seed n ~p ~wmax] is Gilbert's G(n, p) with independent uniform
    weights in [[1, wmax]], sampled by per-row geometric skips — O(E)
    work and allocation, never Theta(n^2) coin flips. Deterministic in
    [(seed, n, p, wmax)].

    With [~connected:true] (default [false]) a path backbone
    [(i, i+1)] is woven in wherever the row's own sample did not already
    produce that edge, guaranteeing connectivity (flood and SPT targets
    require it) at the cost of at most [n - 1] extra edges. *)
val gnp : ?connected:bool -> seed:int -> int -> p:float -> wmax:int -> Graph.t
