let prim g ~root =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Mst.prim: empty graph";
  let in_tree = Array.make n false in
  let parents = Array.make n (-1) in
  let weights = Array.make n 0 in
  (* Heap of candidate edges (edge, child): child joins via edge. *)
  let cmp (e1, _) (e2, _) = Graph.compare_edges e1 e2 in
  let heap = Heap.create ~cmp in
  let absorb v =
    in_tree.(v) <- true;
    Graph.iter_neighbors g v (fun u _ id ->
        if not in_tree.(u) then Heap.add heap (Graph.edge g id, u))
  in
  absorb root;
  let count = ref 1 in
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (e, child) ->
      if not in_tree.(child) then begin
        parents.(child) <- Graph.other_endpoint e child;
        weights.(child) <- e.w;
        incr count;
        absorb child;
        loop ()
      end
      else loop ()
  in
  loop ();
  if !count <> n then invalid_arg "Mst.prim: graph is disconnected";
  Tree.of_parents ~root ~parents ~weights

let kruskal g =
  let ids = Array.init (Graph.m g) (fun i -> i) in
  Array.sort
    (fun a b -> Graph.compare_edges (Graph.edge g a) (Graph.edge g b))
    ids;
  let uf = Union_find.create (Graph.n g) in
  Array.fold_left
    (fun acc id ->
      let e = Graph.edge g id in
      if Union_find.union uf e.u e.v then id :: acc else acc)
    [] ids
  |> List.rev

let weight g =
  if not (Graph.is_connected g) then
    invalid_arg "Mst.weight: graph is disconnected";
  List.fold_left (fun acc id -> acc + (Graph.edge g id).w) 0 (kruskal g)

let is_mst g t =
  Tree.is_spanning_tree_of g t && Tree.total_weight t = weight g
