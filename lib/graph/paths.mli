(** Weighted shortest paths, shortest-path trees and distance parameters. *)

(** Distances and parent pointers from a single source. [dist.(v)] is
    [max_int] and [parent.(v) = -1] when [v] is unreachable. *)
type sssp = {
  src : int;
  dist : int array;
  parent : int array;
}

(** Dijkstra's algorithm over an indexed heap with [decrease_key]:
    O((m + n) log n) with no per-relaxation allocation and no duplicate
    heap entries. *)
val dijkstra : Graph.t -> src:int -> sssp

(** The historical lazy-deletion Dijkstra over the generic {!Heap}. Kept
    as a reference implementation: regression tests check that
    {!dijkstra} reproduces its [dist] {e and} [parent] arrays exactly,
    and the microbenchmarks report the before/after speedup. *)
val dijkstra_lazy : Graph.t -> src:int -> sssp

(** Bellman-Ford, used as an independent reference in tests; O(nm). *)
val bellman_ford : Graph.t -> src:int -> sssp

(** [spt g ~src] is the shortest-path tree rooted at [src].

    Ties between equal-length paths are broken deterministically (smallest
    parent id). Raises [Invalid_argument] when [g] is disconnected. *)
val spt : Graph.t -> src:int -> Tree.t

(** [dist g u v] is the weighted distance; [max_int] when disconnected. *)
val dist : Graph.t -> int -> int -> int

(** Weighted eccentricity of a vertex. *)
val eccentricity : Graph.t -> int -> int

(** Every all-sources distance parameter, from one sweep of [n] Dijkstras
    sharing their buffers. *)
type extrema = {
  diameter : int;  (** the paper's script-D *)
  radius : int;  (** [min_v Rad(v, G)] *)
  center : int;  (** a vertex attaining the radius *)
  max_neighbor : int;  (** the paper's [d] *)
}

(** [extrema g] computes diameter, radius/centre and [d] in a single
    all-sources sweep — the back-end of {!diameter},
    {!radius_and_center} and the memoized [Params.compute]. Requires a
    connected graph. O(n (m + n) log n). *)
val extrema : Graph.t -> extrema

(** Weighted diameter [Diam(G)]; the paper's script-D. Requires a connected
    graph. O(n (m + n) log n). *)
val diameter : Graph.t -> int

(** Weighted radius [min_v Rad(v, G)] and a centre vertex attaining it. *)
val radius_and_center : Graph.t -> int * int

(** The paper's [d = max_{(u,v) in E} dist(u,v)]: the largest weighted
    distance between two *neighbouring* vertices. Always [<= W]. *)
val max_neighbor_distance : Graph.t -> int
