(** Weighted shortest paths, shortest-path trees and distance parameters. *)

(** Distances and parent pointers from a single source. [dist.(v)] is
    [max_int] and [parent.(v) = -1] when [v] is unreachable. *)
type sssp = {
  src : int;
  dist : int array;
  parent : int array;
}

(** Dijkstra's algorithm over an indexed heap with [decrease_key]:
    O((m + n) log n) with no per-relaxation allocation and no duplicate
    heap entries. The relaxation scan reads the graph's flat CSR rows. *)
val dijkstra : Graph.t -> src:int -> sssp

(** The pre-CSR indexed-heap Dijkstra, walking the boxed tuple rows of
    [Graph.neighbors]. Kept as the before side of the CSR
    microbenchmark ([bench_micro]'s "dijkstra n256 tuple" kernel) and as
    a test oracle: {!dijkstra} must reproduce its [dist] {e and}
    [parent] arrays exactly. *)
val dijkstra_tuple : Graph.t -> src:int -> sssp

(** The historical lazy-deletion Dijkstra over the generic {!Heap}. Kept
    as a reference implementation: regression tests check that
    {!dijkstra} reproduces its [dist] {e and} [parent] arrays exactly,
    and the microbenchmarks report the before/after speedup. *)
val dijkstra_lazy : Graph.t -> src:int -> sssp

(** Bellman-Ford, used as an independent reference in tests; O(nm). *)
val bellman_ford : Graph.t -> src:int -> sssp

(** [spt g ~src] is the shortest-path tree rooted at [src].

    Ties between equal-length paths are broken deterministically (smallest
    parent id). Raises [Invalid_argument] when [g] is disconnected. *)
val spt : Graph.t -> src:int -> Tree.t

(** [dist g u v] is the weighted distance; [max_int] when disconnected. *)
val dist : Graph.t -> int -> int -> int

(** Weighted eccentricity of a vertex. *)
val eccentricity : Graph.t -> int -> int

(** Every all-sources distance parameter, from one sweep of [n] Dijkstras
    sharing their buffers. *)
type extrema = {
  diameter : int;  (** the paper's script-D *)
  radius : int;  (** [min_v Rad(v, G)] *)
  center : int;  (** a vertex attaining the radius *)
  max_neighbor : int;  (** the paper's [d] *)
}

(** [extrema g] computes diameter, radius/centre and [d] from an
    all-sources sweep — the back-end of {!diameter},
    {!radius_and_center} and the memoized [Params.compute]. Requires a
    connected graph. O(n (m + n) log n) work.

    The n source Dijkstras are sharded across [pool] (default:
    {!Csap_pool.default}) with per-domain scratch buffers; each source
    writes its own summary slot and the reduction runs sequentially in
    source order, so the result is bit-identical to {!extrema_seq}
    whatever the pool's schedule. Sweeps below ~64 sources, pools of one
    domain, and calls from inside a pool worker all run sequentially on
    the calling domain. *)
val extrema : ?pool:Csap_pool.t -> Graph.t -> extrema

(** The sequential sweep, kept as the oracle the parallel {!extrema} is
    property-tested against. *)
val extrema_seq : Graph.t -> extrema

(** [all_pairs g] is the full distance matrix: row [v] holds
    [dist(v, u)] for every [u], [max_int] when unreachable. Rows are
    computed by the same pool-sharded Dijkstra sweep as {!extrema};
    row [v] is identical to [(dijkstra g ~src:v).dist] regardless of
    schedule. *)
val all_pairs : ?pool:Csap_pool.t -> Graph.t -> int array array

(** Weighted diameter [Diam(G)]; the paper's script-D. Requires a connected
    graph. O(n (m + n) log n). *)
val diameter : Graph.t -> int

(** Weighted radius [min_v Rad(v, G)] and a centre vertex attaining it. *)
val radius_and_center : Graph.t -> int * int

(** The paper's [d = max_{(u,v) in E} dist(u,v)]: the largest weighted
    distance between two *neighbouring* vertices. Always [<= W]. *)
val max_neighbor_distance : Graph.t -> int
