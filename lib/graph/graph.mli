(** Weighted undirected communication graphs [G = (V, E, w)].

    Vertices are [0 .. n-1]. Edge weights are positive integers: the paper
    assumes [W = poly(n)], and a weight [w(e)] is at once the cost of sending
    one message over [e] and an upper bound on its delay.

    The structure is immutable after construction. *)

type edge = {
  u : int;  (** smaller endpoint *)
  v : int;  (** larger endpoint *)
  w : int;  (** weight, [>= 1] *)
}

type t

(** [create ~n edges] builds a graph on vertices [0..n-1].

    Raises [Invalid_argument] on self-loops, duplicate edges, weights [< 1],
    or endpoints out of range. Edge endpoints are normalised so [u < v]. *)
val create : n:int -> (int * int * int) list -> t

(** Number of vertices. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** A unique identity for this graph value, assigned at construction.
    Monotonically increasing and domain-safe; used to key per-instance
    memoization caches (see {!Params.compute}). *)
val id : t -> int

(** All edges, in a fixed order; the index of an edge in this array is its
    stable edge id. *)
val edges : t -> edge array

(** [edge t id] is the edge with id [id]. *)
val edge : t -> int -> edge

(** [neighbors t v] lists [(u, w, edge_id)] for every edge [{v,u}] incident
    to [v]. The returned array is shared: do not mutate. *)
val neighbors : t -> int -> (int * int * int) array

(** [degree t v] is the number of incident edges. *)
val degree : t -> int -> int

(** [edge_between t u v] is [Some (w, edge_id)] when [{u,v}] is an edge.

    Served by a per-vertex edge index built once in [create]: O(1) for
    bounded-degree vertices, O(log deg) by sorted-adjacency binary search
    for high-degree ones. Allocation-free callers should prefer
    {!edge_id_between}. *)
val edge_between : t -> int -> int -> (int * int) option

(** [edge_id_between t u v] is the id of edge [{u,v}], or [-1] when absent.
    Same complexity as {!edge_between} but allocates nothing — this is the
    simulator's per-message lookup (see [Engine.send]). *)
val edge_id_between : t -> int -> int -> int

(** The pre-index reference lookup: a linear scan of [u]'s adjacency list,
    O(degree u). Kept for the before/after microbenchmarks and as a test
    oracle for the indexed path. *)
val edge_id_between_scan : t -> int -> int -> int

(** [neighbor_index t u v] is the position of [v] in [neighbors t u], or
    [-1] when [{u,v}] is not an edge. Same indexed complexity as
    {!edge_between}; used by protocols that keep per-port state. *)
val neighbor_index : t -> int -> int -> int

(** [other_endpoint e x] is the endpoint of [e] that is not [x]. *)
val other_endpoint : edge -> int -> int

(** Total edge weight [w(G)]; the paper's script-E. *)
val total_weight : t -> int

(** Maximum edge weight [W]. *)
val max_weight : t -> int

(** Whether the graph is connected (vacuously true for [n <= 1]). *)
val is_connected : t -> bool

(** [map_weights t f] is a graph with the same topology where edge [e] has
    weight [f e]; [f] must return weights [>= 1]. *)
val map_weights : t -> (edge -> int) -> t

(** [subgraph t ~keep_edge] retains the same vertex set and only the edges
    satisfying the predicate. *)
val subgraph : t -> keep_edge:(edge -> bool) -> t

(** Compare edges by [(w, u, v)] lexicographically. Distinct edges always
    compare unequal, giving the canonical distinct-weight order required by
    GHS-style algorithms. *)
val compare_edges : edge -> edge -> int

val pp : Format.formatter -> t -> unit
val pp_edge : Format.formatter -> edge -> unit
