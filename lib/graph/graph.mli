(** Weighted undirected communication graphs [G = (V, E, w)].

    Vertices are [0 .. n-1]. Edge weights are positive integers: the paper
    assumes [W = poly(n)], and a weight [w(e)] is at once the cost of sending
    one message over [e] and an upper bound on its delay.

    The structure is immutable after construction. *)

type edge = {
  u : int;  (** smaller endpoint *)
  v : int;  (** larger endpoint *)
  w : int;  (** weight, [>= 1] *)
}

type t

(** [create ~n edges] builds a graph on vertices [0..n-1].

    Raises [Invalid_argument] on self-loops, duplicate edges, weights [< 1],
    or endpoints out of range. Edge endpoints are normalised so [u < v]. *)
val create : n:int -> (int * int * int) list -> t

(** [of_stream ~n iter] builds a graph from a replayable edge stream:
    [iter f] must call [f u v w] once per edge, and is invoked {e twice}
    — a count pass (degrees and edge count) and a fill pass writing the
    CSR arrays directly. No intermediate tuple list is materialised, so
    an m-edge graph builds in O(m) flat-array words; this is the
    million-vertex generator path.

    Edge ids are assigned in stream order, so a generator emitting the
    same sequence as a tuple list fed to {!create} produces an
    identical graph. The two passes must replay identically (generators
    derive weights from pure hashes or re-seeded RNGs, never shared
    mutable state); a stream that changes length between passes raises
    [Invalid_argument]. Self-loops, out-of-range endpoints and weights
    [< 1] are rejected as in {!create}, but {e duplicate edges are not
    detected} — avoiding the O(m) hash table is the point — so callers
    must guarantee each undirected edge appears once. *)
val of_stream : n:int -> ((int -> int -> int -> unit) -> unit) -> t

(** Number of vertices. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** A unique identity for this graph value, assigned at construction.
    Monotonically increasing and domain-safe; used to key per-instance
    memoization caches (see {!Params.compute}). *)
val id : t -> int

(** All edges, in a fixed order; the index of an edge in this array is its
    stable edge id. *)
val edges : t -> edge array

(** [edge t id] is the edge with id [id]. *)
val edge : t -> int -> edge

(** [neighbors t v] lists [(u, w, edge_id)] for every edge [{v,u}] incident
    to [v].

    Deprecated compatibility shim over the flat CSR rows, materialised
    afresh on every call (an O(degree) boxed-tuple allocation — it is no
    longer cached, so large graphs pay nothing for its existence). New
    code should use the allocation-free {!iter_neighbors} /
    {!fold_neighbors}; remaining cold call sites silence the alert
    explicitly. *)
val neighbors : t -> int -> (int * int * int) array
[@@alert
  deprecated
    "per-call allocating shim: use iter_neighbors / fold_neighbors instead"]

(** [iter_neighbors t v f] calls [f u w edge_id] for every edge [{v,u}]
    incident to [v], in the same per-vertex edge-id order {!neighbors}
    uses. Allocation-free: the loop reads the graph's flat CSR rows. *)
val iter_neighbors : t -> int -> (int -> int -> int -> unit) -> unit

(** [fold_neighbors t v f init] folds [f acc u w edge_id] over [v]'s
    incident edges in the same order as {!iter_neighbors}. *)
val fold_neighbors : t -> int -> ('a -> int -> int -> int -> 'a) -> 'a -> 'a

(** [degree t v] is the number of incident edges; O(1) from the CSR row
    offsets. *)
val degree : t -> int -> int

(** {2 Raw CSR rows}

    The adjacency lives in compressed-sparse-row form: vertex [v]'s
    incident edges occupy slots [csr_offsets t .(v) .. csr_offsets t
    .(v+1) - 1] of the flat parallel arrays below, in per-vertex edge-id
    order. Exposed for same-repo hot loops (Dijkstra's relaxation scan)
    and layout tests; the arrays are the graph's own — do not mutate. *)

(** Row offsets; length [n + 1], with [csr_offsets t .(n) = 2 * m]. *)
val csr_offsets : t -> int array

(** Other endpoint per slot; length [2 * m]. *)
val csr_neighbors : t -> int array

(** Edge weight per slot; length [2 * m]. *)
val csr_weights : t -> int array

(** Edge id per slot; length [2 * m]. *)
val csr_edge_ids : t -> int array

(** [edge_between t u v] is [Some (w, edge_id)] when [{u,v}] is an edge.

    Served by a per-vertex edge index built once in [create]: O(1) for
    bounded-degree vertices, O(log deg) by sorted-adjacency binary search
    for high-degree ones. Allocation-free callers should prefer
    {!edge_id_between}. *)
val edge_between : t -> int -> int -> (int * int) option

(** [edge_id_between t u v] is the id of edge [{u,v}], or [-1] when absent.
    Same complexity as {!edge_between} but allocates nothing — this is the
    simulator's per-message lookup (see [Engine.send]). *)
val edge_id_between : t -> int -> int -> int

(** The pre-index reference lookup: a linear scan of [u]'s adjacency list,
    O(degree u). Kept for the before/after microbenchmarks and as a test
    oracle for the indexed path. *)
val edge_id_between_scan : t -> int -> int -> int

(** [neighbor_index t u v] is the position of [v] in [neighbors t u], or
    [-1] when [{u,v}] is not an edge. Same indexed complexity as
    {!edge_between}; used by protocols that keep per-port state. *)
val neighbor_index : t -> int -> int -> int

(** [other_endpoint e x] is the endpoint of [e] that is not [x]. *)
val other_endpoint : edge -> int -> int

(** Total edge weight [w(G)]; the paper's script-E. *)
val total_weight : t -> int

(** Maximum edge weight [W]. *)
val max_weight : t -> int

(** Whether the graph is connected (vacuously true for [n <= 1]). *)
val is_connected : t -> bool

(** [map_weights t f] is a graph with the same topology where edge [e] has
    weight [f e]; [f] must return weights [>= 1]. *)
val map_weights : t -> (edge -> int) -> t

(** [subgraph t ~keep_edge] retains the same vertex set and only the edges
    satisfying the predicate. *)
val subgraph : t -> keep_edge:(edge -> bool) -> t

(** Compare edges by [(w, u, v)] lexicographically. Distinct edges always
    compare unequal, giving the canonical distinct-weight order required by
    GHS-style algorithms. *)
val compare_edges : edge -> edge -> int

val pp : Format.formatter -> t -> unit
val pp_edge : Format.formatter -> edge -> unit
