type sssp = {
  src : int;
  dist : int array;
  parent : int array;
}

(* The hot-path Dijkstra: indexed heap with decrease_key, so each vertex
   occupies at most one heap slot, relaxations allocate nothing, and the
   pop order matches the historical (dist, vertex) tuple order (the heap
   breaks priority ties by key). The relaxation scan reads the graph's
   raw CSR rows — three flat int arrays — instead of walking boxed
   adjacency tuples.

   A vertex popped from the heap is settled: every later relaxation
   reaching it offers dv = du + w > du >= dist(v) (weights are >= 1), so
   neither the improvement branch nor the equal-distance parent tie-break
   can fire for it — no explicit [settled] array is needed. *)
let dijkstra_into g ~src ~dist ~parent heap =
  let n = Graph.n g in
  Array.fill dist 0 n max_int;
  Array.fill parent 0 n (-1);
  Indexed_heap.clear heap;
  dist.(src) <- 0;
  Indexed_heap.insert heap src 0;
  let off = Graph.csr_offsets g in
  let nbr = Graph.csr_neighbors g in
  let wt = Graph.csr_weights g in
  let rec loop () =
    let u = Indexed_heap.pop_min heap in
    if u >= 0 then begin
      let du = dist.(u) in
      (* Row bounds come from [off] and neighbor ids are < n by the CSR
         shape invariant, so the unchecked reads stay in range. *)
      let hi = Array.unsafe_get off (u + 1) in
      for i = Array.unsafe_get off u to hi - 1 do
        let v = Array.unsafe_get nbr i in
        let dv = du + Array.unsafe_get wt i in
        let dcur = Array.unsafe_get dist v in
        if dv < dcur then begin
          Array.unsafe_set dist v dv;
          Array.unsafe_set parent v u;
          Indexed_heap.push heap v dv
        end
        else if dv = dcur && u < Array.unsafe_get parent v then
          Array.unsafe_set parent v u
      done;
      loop ()
    end
  in
  loop ()

let dijkstra g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  dijkstra_into g ~src ~dist ~parent (Indexed_heap.create n);
  { src; dist; parent }

(* The pre-CSR formulation of [dijkstra_into]: same indexed heap, but the
   relaxation scan walks the boxed tuple rows of [Graph.neighbors]. Kept
   as the before side of the CSR microbenchmark and as a test oracle for
   the flat-row path. *)
let dijkstra_tuple g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(src) <- 0;
  Indexed_heap.insert heap src 0;
  let neighbors = (Graph.neighbors [@alert "-deprecated"]) in
  let rec loop () =
    let u = Indexed_heap.pop_min heap in
    if u >= 0 then begin
      let du = dist.(u) in
      let nbrs = neighbors g u in
      for i = 0 to Array.length nbrs - 1 do
        let v, w, _ = nbrs.(i) in
        let dv = du + w in
        if dv < dist.(v) then begin
          dist.(v) <- dv;
          parent.(v) <- u;
          Indexed_heap.push heap v dv
        end
        else if dv = dist.(v) && u < parent.(v) then parent.(v) <- u
      done;
      loop ()
    end
  in
  loop ();
  { src; dist; parent }

(* The historical lazy-deletion formulation over the generic {!Heap},
   kept as a reference: the regression tests check the indexed version
   against it edge-for-edge, and the microbenchmarks report the
   before/after speedup. *)
let dijkstra_lazy g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let cmp (d1, v1) (d2, v2) =
    let c = compare d1 d2 in
    if c <> 0 then c else compare v1 v2
  in
  let heap = Heap.create ~cmp in
  dist.(src) <- 0;
  Heap.add heap (0, src);
  let relax u du v w =
    let dv = du + w in
    if
      (not settled.(v))
      && (dv < dist.(v) || (dv = dist.(v) && u < parent.(v)))
    then begin
      dist.(v) <- dv;
      parent.(v) <- u;
      Heap.add heap (dv, v)
    end
  in
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (du, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        assert (du = dist.(u));
        Graph.iter_neighbors g u (fun v w _ -> relax u du v w);
        loop ()
      end
      else loop ()
  in
  loop ();
  { src; dist; parent }

let bellman_ford g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  dist.(src) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (e : Graph.edge) ->
        let relax a b =
          if dist.(a) < max_int then begin
            let d = dist.(a) + e.w in
            if d < dist.(b) || (d = dist.(b) && a < parent.(b)) then begin
              dist.(b) <- d;
              parent.(b) <- a;
              changed := true
            end
          end
        in
        relax e.u e.v;
        relax e.v e.u)
      (Graph.edges g)
  done;
  { src; dist; parent }

let spt g ~src =
  let { dist; parent; _ } = dijkstra g ~src in
  Array.iter
    (fun d ->
      if d = max_int then invalid_arg "Paths.spt: graph is disconnected")
    dist;
  let n = Graph.n g in
  let weights =
    Array.init n (fun v -> if v = src then 0 else dist.(v) - dist.(parent.(v)))
  in
  Tree.of_parents ~root:src ~parents:parent ~weights

let dist g u v = (dijkstra g ~src:u).dist.(v)

let eccentricity g v =
  Array.fold_left max 0 (dijkstra g ~src:v).dist

type extrema = {
  diameter : int;
  radius : int;
  center : int;
  max_neighbor : int;
}

(* Per-source summaries of one Dijkstra, shared by the sequential and the
   pool-sharded sweeps so both reduce the very same numbers. *)
let source_summaries g ~src ~dist =
  let ecc = Array.fold_left max 0 dist in
  let local_max = ref 0 in
  Graph.iter_neighbors g src (fun u _ _ ->
      if dist.(u) > !local_max then local_max := dist.(u));
  (ecc, !local_max)

(* The deterministic reduction over per-source summaries, in source
   order — shared by both sweeps, so the parallel result is bit-identical
   to the sequential one (the centre is the smallest vertex attaining the
   radius either way). *)
let reduce_extrema ~ecc ~local_max =
  let n = Array.length ecc in
  let diameter = ref 0 in
  let radius = ref max_int and center = ref 0 in
  let max_neighbor = ref 0 in
  for v = 0 to n - 1 do
    if ecc.(v) > !diameter then diameter := ecc.(v);
    if ecc.(v) < !radius then begin
      radius := ecc.(v);
      center := v
    end;
    if local_max.(v) > !max_neighbor then max_neighbor := local_max.(v)
  done;
  {
    diameter = !diameter;
    radius = !radius;
    center = !center;
    max_neighbor = !max_neighbor;
  }

(* One sweep of n Dijkstras, reusing the distance/parent buffers and the
   heap, yields every all-sources distance parameter at once. Kept as
   the sequential oracle for the pool-sharded [extrema]. *)
let extrema_seq g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.extrema: graph is disconnected";
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  let ecc = Array.make n 0 in
  let local_max = Array.make n 0 in
  for v = 0 to n - 1 do
    dijkstra_into g ~src:v ~dist ~parent heap;
    let e, lm = source_summaries g ~src:v ~dist in
    ecc.(v) <- e;
    local_max.(v) <- lm
  done;
  reduce_extrema ~ecc ~local_max

(* Sources sharded over the domain pool: each worker owns one scratch
   (dist, parent, heap) triple, every source writes only its own summary
   slots, and the reduction runs sequentially in source order after the
   join — so the result is bit-identical whatever the pool's schedule
   (checked against [extrema_seq] by the qcheck suite). Small sweeps stay
   on the calling domain: below ~64 sources the Dijkstras are cheaper
   than spawning. *)
let parallel_cutoff = 64

let extrema ?pool g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.extrema: graph is disconnected";
  let n = Graph.n g in
  let pool =
    match pool with Some p -> p | None -> Csap_pool.default ()
  in
  if n < parallel_cutoff || Csap_pool.domains pool <= 1 then extrema_seq g
  else begin
    let ecc = Array.make n 0 in
    let local_max = Array.make n 0 in
    let scratch =
      Array.init (Csap_pool.domains pool) (fun _ ->
          (Array.make n max_int, Array.make n (-1), Indexed_heap.create n))
    in
    Csap_pool.run pool ~tasks:n (fun ~worker v ->
        let dist, parent, heap = scratch.(worker) in
        dijkstra_into g ~src:v ~dist ~parent heap;
        let e, lm = source_summaries g ~src:v ~dist in
        ecc.(v) <- e;
        local_max.(v) <- lm);
    reduce_extrema ~ecc ~local_max
  end

let all_pairs ?pool g =
  let n = Graph.n g in
  let pool =
    match pool with Some p -> p | None -> Csap_pool.default ()
  in
  let rows = Array.make n [||] in
  if n < parallel_cutoff || Csap_pool.domains pool <= 1 then begin
    let dist = Array.make n max_int in
    let parent = Array.make n (-1) in
    let heap = Indexed_heap.create n in
    for v = 0 to n - 1 do
      dijkstra_into g ~src:v ~dist ~parent heap;
      rows.(v) <- Array.copy dist
    done
  end
  else begin
    let scratch =
      Array.init (Csap_pool.domains pool) (fun _ ->
          (Array.make n max_int, Array.make n (-1), Indexed_heap.create n))
    in
    Csap_pool.run pool ~tasks:n (fun ~worker v ->
        let dist, parent, heap = scratch.(worker) in
        dijkstra_into g ~src:v ~dist ~parent heap;
        rows.(v) <- Array.copy dist)
  end;
  rows

let diameter g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.diameter: graph is disconnected";
  (extrema g).diameter

let radius_and_center g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.radius_and_center: graph is disconnected";
  let e = extrema g in
  (e.radius, e.center)

let max_neighbor_distance g =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  let best = ref 0 in
  for v = 0 to n - 1 do
    dijkstra_into g ~src:v ~dist ~parent heap;
    Graph.iter_neighbors g v (fun u _ _ ->
        if dist.(u) > !best then best := dist.(u))
  done;
  !best
