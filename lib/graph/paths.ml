type sssp = {
  src : int;
  dist : int array;
  parent : int array;
}

(* The hot-path Dijkstra: indexed heap with decrease_key, so each vertex
   occupies at most one heap slot, relaxations allocate nothing, and the
   pop order matches the historical (dist, vertex) tuple order (the heap
   breaks priority ties by key).

   A vertex popped from the heap is settled: every later relaxation
   reaching it offers dv = du + w > du >= dist(v) (weights are >= 1), so
   neither the improvement branch nor the equal-distance parent tie-break
   can fire for it — no explicit [settled] array is needed. *)
let dijkstra_into g ~src ~dist ~parent heap =
  let n = Graph.n g in
  Array.fill dist 0 n max_int;
  Array.fill parent 0 n (-1);
  Indexed_heap.clear heap;
  dist.(src) <- 0;
  Indexed_heap.insert heap src 0;
  let rec loop () =
    let u = Indexed_heap.pop_min heap in
    if u >= 0 then begin
      let du = dist.(u) in
      let nbrs = Graph.neighbors g u in
      for i = 0 to Array.length nbrs - 1 do
        let v, w, _ = nbrs.(i) in
        let dv = du + w in
        if dv < dist.(v) then begin
          dist.(v) <- dv;
          parent.(v) <- u;
          Indexed_heap.push heap v dv
        end
        else if dv = dist.(v) && u < parent.(v) then parent.(v) <- u
      done;
      loop ()
    end
  in
  loop ()

let dijkstra g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  dijkstra_into g ~src ~dist ~parent (Indexed_heap.create n);
  { src; dist; parent }

(* The historical lazy-deletion formulation over the generic {!Heap},
   kept as a reference: the regression tests check the indexed version
   against it edge-for-edge, and the microbenchmarks report the
   before/after speedup. *)
let dijkstra_lazy g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let cmp (d1, v1) (d2, v2) =
    let c = compare d1 d2 in
    if c <> 0 then c else compare v1 v2
  in
  let heap = Heap.create ~cmp in
  dist.(src) <- 0;
  Heap.add heap (0, src);
  let relax u du (v, w, _) =
    let dv = du + w in
    if
      (not settled.(v))
      && (dv < dist.(v) || (dv = dist.(v) && u < parent.(v)))
    then begin
      dist.(v) <- dv;
      parent.(v) <- u;
      Heap.add heap (dv, v)
    end
  in
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (du, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        assert (du = dist.(u));
        Array.iter (relax u du) (Graph.neighbors g u);
        loop ()
      end
      else loop ()
  in
  loop ();
  { src; dist; parent }

let bellman_ford g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  dist.(src) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (e : Graph.edge) ->
        let relax a b =
          if dist.(a) < max_int then begin
            let d = dist.(a) + e.w in
            if d < dist.(b) || (d = dist.(b) && a < parent.(b)) then begin
              dist.(b) <- d;
              parent.(b) <- a;
              changed := true
            end
          end
        in
        relax e.u e.v;
        relax e.v e.u)
      (Graph.edges g)
  done;
  { src; dist; parent }

let spt g ~src =
  let { dist; parent; _ } = dijkstra g ~src in
  Array.iter
    (fun d ->
      if d = max_int then invalid_arg "Paths.spt: graph is disconnected")
    dist;
  let n = Graph.n g in
  let weights =
    Array.init n (fun v -> if v = src then 0 else dist.(v) - dist.(parent.(v)))
  in
  Tree.of_parents ~root:src ~parents:parent ~weights

let dist g u v = (dijkstra g ~src:u).dist.(v)

let eccentricity g v =
  Array.fold_left max 0 (dijkstra g ~src:v).dist

type extrema = {
  diameter : int;
  radius : int;
  center : int;
  max_neighbor : int;
}

(* One sweep of n Dijkstras, reusing the distance/parent buffers and the
   heap, yields every all-sources distance parameter at once. This is the
   back-end for [diameter], [radius_and_center], [max_neighbor_distance]
   and the memoized [Params.compute]. *)
let extrema g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.extrema: graph is disconnected";
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  let diameter = ref 0 in
  let radius = ref max_int and center = ref 0 in
  let max_neighbor = ref 0 in
  for v = 0 to n - 1 do
    dijkstra_into g ~src:v ~dist ~parent heap;
    let ecc = Array.fold_left max 0 dist in
    if ecc > !diameter then diameter := ecc;
    if ecc < !radius then begin
      radius := ecc;
      center := v
    end;
    Array.iter
      (fun (u, _, _) -> if dist.(u) > !max_neighbor then max_neighbor := dist.(u))
      (Graph.neighbors g v)
  done;
  {
    diameter = !diameter;
    radius = !radius;
    center = !center;
    max_neighbor = !max_neighbor;
  }

let diameter g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.diameter: graph is disconnected";
  (extrema g).diameter

let radius_and_center g =
  if not (Graph.is_connected g) then
    invalid_arg "Paths.radius_and_center: graph is disconnected";
  let e = extrema g in
  (e.radius, e.center)

let max_neighbor_distance g =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  let best = ref 0 in
  for v = 0 to n - 1 do
    dijkstra_into g ~src:v ~dist ~parent heap;
    Array.iter
      (fun (u, _, _) -> if dist.(u) > !best then best := dist.(u))
      (Graph.neighbors g v)
  done;
  !best
