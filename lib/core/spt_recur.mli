(** Algorithm SPT_recur (Section 9.2, Figure 9).

    The paper reduces weighted SPT to BFS on the unit-subdivided network
    (an edge of weight [w] becomes a path of [w] unit edges) and applies
    the strip method of [Awe89]: the [script-D] distance layers are
    processed in {e strips} of [s] layers; synchronisation is paid once per
    strip instead of once per layer, at the price of letting relaxation
    inside a strip run unsynchronised (bounded corrections).

    This implementation keeps the subdivision implicit — a message
    crossing [e] costs and takes [w(e)], exactly like its [w(e)] unit
    hops — and instantiates one recursion level of [Awe89]:

    - vertices announce {e offers} [dist(u) + w] over incident edges, but
      only during the strip whose distance range the offer falls in
      (heavy edges sleep until the wavefront's strip arrives);
    - within a strip, joins and corrections propagate asynchronously
      (Bellman-Ford, bounded by the strip depth);
    - strips are separated by a broadcast over the partial tree, and
      strip-end is detected with genuine Dijkstra-Scholten termination
      detection [DS80] (the procedure the paper itself builds on in
      Sections 5 and 9.2): every offer and tree forward is acknowledged,
      engagements close bottom-up, and the closing acknowledgements
      aggregate the count of newly joined vertices — so the source learns
      completion and progress from the same cascade, fully in-protocol.

    Small [s] means many global synchronisation rounds; large [s] means
    more correction traffic within strips — the Figure 9 trade-off, swept
    by bench F9. *)

type result = {
  tree : Csap_graph.Tree.t;
  measures : Measures.t;
  strips : int;  (** strips processed *)
  offer_comm : int;  (** exploration + correction traffic *)
  sync_comm : int;  (** strip-boundary synchronisation traffic *)
  transport : Csap_dsim.Net.stats;
}

(** [run ?delay ?faults ?reliable g ~source ~strip] computes the SPT from
    [source]; [strip] is the strip depth [s >= 1]. [~reliable:true] routes
    all traffic through the {!Csap_dsim.Reliable} shim. Raises
    [Invalid_argument] when [source] is outside [0, n). *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  source:int ->
  strip:int ->
  result

(** Budgeted variant for the hybrid: [None] when the communication budget
    ran out first. *)
val try_run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?comm_budget:int ->
  Csap_graph.Graph.t ->
  source:int ->
  strip:int ->
  result option

(** [default_strip g] - the balanced choice [~ sqrt(script-D * d)],
    clamped to [>= 1]. *)
val default_strip : Csap_graph.Graph.t -> int
