(** Asynchronous distance-wave SPT (the [O(script-E)]-communication end
    of the Section 9 trade-off, run natively asynchronous).

    Distributed Bellman-Ford: the source announces; a vertex that
    improves its distance estimate adopts the sender as parent and
    re-announces [d + w] to every other neighbour. At quiescence
    [dist.(v)] is the true weighted distance (every relaxation the
    sequential algorithm would do eventually happens), under {e any}
    delay model.

    Under the normalised schedule ([Exact]) a candidate of value [d]
    arrives at time exactly [d], so the first arrival at each vertex
    carries its true distance: one improvement per vertex,
    [O(script-E)] messages and [script-D] time — matching CON_flood's
    costs while also solving weighted SPT. Under adversarial schedules
    communication can blow up (the classical Bellman-Ford exponential
    worst case), which is the gap SPT_synch's synchronizer pipeline
    closes; measuring that gap is this protocol's role in the suite. *)

type result = {
  tree : Csap_graph.Tree.t;  (** parents = last improving announcement *)
  dist : int array;  (** true weighted distances at quiescence *)
  measures : Measures.t;
}

(** [run ?delay g ~source] runs on the sequential engine; requires a
    connected graph. *)
val run : ?delay:Csap_dsim.Delay.t -> Csap_graph.Graph.t -> source:int -> result

(** [run_partitioned ?delay ?partition ~domains g ~source] runs on the
    partitioned engine ({!Csap_dsim.Pengine}); bit-identical to [run]
    under any order-independent delay model. *)
val run_partitioned :
  ?delay:Csap_dsim.Delay.t ->
  ?partition:Csap_graph.Partition.t ->
  domains:int ->
  Csap_graph.Graph.t ->
  source:int ->
  result
