(** Optimal computation of global functions (Sections 1.4.1 and 2).

    A {e symmetric compact} function [GS86] is determined by an associative,
    commutative combiner [g]: the value on any argument subset has a compact
    representation, and
    [f(x1..xn) = g(f(x1..xk), f(x_k+1..xn))]. Examples: sum, max, min, and,
    or, xor.

    The protocol runs a convergecast followed by a broadcast on a spanning
    tree: every tree edge carries exactly one message in each direction, so
    communication is [2 w(T)] and time is at most [2 height(T)]. Run on a
    shallow-light tree this meets the paper's optimal [O(V)] communication
    and [O(D)] time (Corollary 2.3); the matching lower bounds are Theorem
    2.1. *)

(** A symmetric compact function: a commutative, associative combiner. *)
type 'a spec = {
  name : string;
  combine : 'a -> 'a -> 'a;
}

val sum : int spec
val max_value : int spec
val min_value : int spec
val xor : int spec
val logical_and : bool spec
val logical_or : bool spec

type 'a result = {
  outputs : 'a array;  (** the function value, produced at every vertex *)
  measures : Measures.t;
  transport : Csap_dsim.Net.stats;
}

(** [run ?delay ?faults ?reliable g ~tree ~values spec] computes
    [f(values)] over [tree] (a spanning tree of [g]); every vertex outputs
    the result. [~reliable:true] routes the convergecast/broadcast through
    the {!Csap_dsim.Reliable} shim. *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  tree:Csap_graph.Tree.t ->
  values:'a array ->
  'a spec ->
  'a result

(** [run_optimal ?delay ?q g ~root ~values spec] builds an SLT and runs on
    it — the paper's upper bound construction (Corollary 2.3). *)
val run_optimal :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?q:float ->
  Csap_graph.Graph.t ->
  root:int ->
  values:'a array ->
  'a spec ->
  'a result

(** [broadcast ?delay ?q g ~source ~payload] — the paper's observation that
    broadcasting is a symmetric compact function: the payload at [source],
    a neutral value elsewhere, combined with [max]. Every vertex outputs
    [payload] at the optimal [O(V)] communication / [O(D)] time. *)
val broadcast :
  ?delay:Csap_dsim.Delay.t ->
  ?q:float ->
  Csap_graph.Graph.t ->
  source:int ->
  payload:int ->
  int result
