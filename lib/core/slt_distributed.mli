(** Distributed construction of shallow-light trees (Theorem 2.7).

    Stages, as in the paper's proof:

    + build the MST with MST_centr ([O(n script-V)] communication) — the
      full-information invariant leaves every vertex knowing the tree;
    + build the SPT with SPT_centr — likewise, every vertex knows the tree
      and the distances;
    + {e stretch the MST into a line}: a token walks the Euler tour of the
      MST carrying the breakpoint scan of the SLT algorithm (each vertex
      evaluates the [T_S]-distance test locally from its full-information
      copy), returns the breakpoints to the root, and the root broadcasts
      the resulting subgraph [G'] over the tree;
    + compute the final shortest-path tree inside [G'] with SPT_centr.

    Total: [O(script-V n^2)] communication and [O(script-D n^2)] time
    shapes, dominated by the two full-information SPT constructions. *)

type result = {
  tree : Csap_graph.Tree.t;  (** the shallow-light tree *)
  q : float;
  measures : Measures.t;  (** all four stages summed *)
  mst_measures : Measures.t;
  spt_measures : Measures.t;
  walk_measures : Measures.t;
  final_measures : Measures.t;
  transport : Csap_dsim.Net.stats;  (** all four stages summed *)
}

(** [run ?delay ?faults ?reliable ?q g ~root] builds an SLT distributedly.
    The result satisfies the same Lemma 2.4 / 2.5 bounds as {!Slt.build}
    (and selects the same subgraph [G']). [~reliable:true] routes every
    stage through the {!Csap_dsim.Reliable} shim. Raises
    [Invalid_argument] when [root] is outside [0, n). *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?q:float ->
  Csap_graph.Graph.t ->
  root:int ->
  result
