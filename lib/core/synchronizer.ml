module Net = Csap_dsim.Net
module G = Csap_graph.Graph
module SP = Csap_dsim.Sync_protocol

type ('s, 'm) outcome = {
  states : 's array;
  deliveries : 'm SP.delivery list;
  pulses : int;
  proto_comm : int;
  ack_comm : int;
  control_comm : int;
  total : Measures.t;
  amortized_comm : float;
  amortized_time : float;
  retransmissions : int;
}

(* ------------------------------------------------------------------ *)
(* Partition of a level graph into low-radius clusters ([Awe85a]).     *)
(* ------------------------------------------------------------------ *)

module Partition = struct
  type t = {
    cluster_of : int array;
    parent : int array;
    children : int list array;
    root_of : int array;
    preferred : (int * int) list;
    k : int;
    hop_radius : int;
  }

  let build g ~edges ~k =
    if k < 2 then invalid_arg "Partition.build: k >= 2 required";
    let n = G.n g in
    (* Adjacency restricted to the level edges. *)
    let adj = Array.make n [] in
    List.iter
      (fun id ->
        let e = G.edge g id in
        adj.(e.G.u) <- e.G.v :: adj.(e.G.u);
        adj.(e.G.v) <- e.G.u :: adj.(e.G.v))
      edges;
    let cluster_of = Array.make n (-1) in
    let parent = Array.make n (-1) in
    let children = Array.make n [] in
    let roots = ref [] in
    let cluster_count = ref 0 in
    let hop_radius = ref 0 in
    for seed = 0 to n - 1 do
      if cluster_of.(seed) < 0 then begin
        let cid = !cluster_count in
        incr cluster_count;
        roots := seed :: !roots;
        cluster_of.(seed) <- cid;
        (* Grow BFS layers while the next layer multiplies the size by k. *)
        let members = ref [ seed ] in
        let frontier = ref [ seed ] in
        let depth = ref 0 in
        let continue = ref true in
        while !continue do
          let layer =
            List.concat_map
              (fun v ->
                List.filter (fun u -> cluster_of.(u) < 0) adj.(v))
              !frontier
            |> List.sort_uniq compare
            |> List.filter (fun u -> cluster_of.(u) < 0)
          in
          let size = List.length !members in
          if layer <> [] && List.length layer + size >= k * size then begin
            (* Absorb the layer, hooking each vertex to a frontier parent. *)
            List.iter
              (fun u ->
                cluster_of.(u) <- cid;
                let p =
                  List.find (fun x -> List.mem x !frontier) adj.(u)
                in
                parent.(u) <- p;
                children.(p) <- u :: children.(p))
              layer;
            members := layer @ !members;
            frontier := layer;
            incr depth
          end
          else continue := false
        done;
        if !depth > !hop_radius then hop_radius := !depth
      end
    done;
    let root_of = Array.make !cluster_count (-1) in
    List.iter (fun r -> root_of.(cluster_of.(r)) <- r) !roots;
    (* One preferred edge per adjacent cluster pair. *)
    let pref_tbl = Hashtbl.create 16 in
    List.iter
      (fun id ->
        let e = G.edge g id in
        let a = cluster_of.(e.G.u) and b = cluster_of.(e.G.v) in
        if a <> b then begin
          let key = (min a b, max a b) in
          if not (Hashtbl.mem pref_tbl key) then
            Hashtbl.replace pref_tbl key (e.G.u, e.G.v)
        end)
      edges;
    let preferred = Hashtbl.fold (fun _ e acc -> e :: acc) pref_tbl [] in
    {
      cluster_of;
      parent;
      children;
      root_of;
      preferred;
      k;
      hop_radius = !hop_radius;
    }
end

(* ------------------------------------------------------------------ *)
(* Shared protocol-execution core with acknowledgement-based safety.   *)
(* ------------------------------------------------------------------ *)

type 'm wire =
  | Proto of { sent_at : int; payload : 'm }
  | Ack of { sent_at : int }
  | Ctrl of int
(* Control payloads are encoded as ints by each synchronizer:
   see the [encode_*] functions below. *)

type ('s, 'm) core = {
  net : 'm wire Net.t;
  g : G.t;
  protocol : ('s, 'm) SP.t;
  pulses : int;
  check_in_synch : bool;
  states : 's array;
  executed : int array;  (* highest pulse executed per vertex *)
  buffer : (int * int, (int * 'm) list) Hashtbl.t;  (* (v, arrival) -> msgs *)
  outstanding : (int * int, int) Hashtbl.t;  (* (v, pulse) -> unacked *)
  outstanding_lvl : (int * int * int, int) Hashtbl.t;
      (* (v, pulse, level) -> unacked *)
  mutable deliveries : 'm SP.delivery list;
  mutable proto_comm : int;
  mutable ack_comm : int;
  cleared : int -> int -> bool;  (* may vertex execute pulse p? *)
  mutable on_executed : int -> int -> unit;
  mutable on_safe : int -> int -> unit;  (* all sends of (v, pulse) acked *)
  mutable on_safe_level : int -> pulse:int -> level:int -> unit;
}

let level_of_weight w =
  let rec go l x = if x <= 1 then l else go (l + 1) (x / 2) in
  go 0 w

let tbl_add tbl key delta =
  let v = (try Hashtbl.find tbl key with Not_found -> 0) + delta in
  if v = 0 then Hashtbl.remove tbl key else Hashtbl.replace tbl key v;
  v

let make_core ?(check_in_synch = false) net g protocol ~pulses ~cleared =
  let n = G.n g in
  {
    net;
    g;
    protocol;
    pulses;
    check_in_synch;
    states = Array.init n (fun v -> protocol.SP.init g ~me:v);
    executed = Array.make n (-1);
    buffer = Hashtbl.create 64;
    outstanding = Hashtbl.create 64;
    outstanding_lvl = Hashtbl.create 64;
    deliveries = [];
    proto_comm = 0;
    ack_comm = 0;
    cleared;
    on_executed = (fun _ _ -> ());
    on_safe = (fun _ _ -> ());
    on_safe_level = (fun _ ~pulse:_ ~level:_ -> ());
  }

(* Execute as many pulses as the synchronizer has cleared. *)
let rec core_try_execute c v =
  let p = c.executed.(v) + 1 in
  if p <= c.pulses && (p = 0 || c.cleared v p) then begin
    let inbox =
      (try Hashtbl.find c.buffer (v, p) with Not_found -> [])
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Hashtbl.remove c.buffer (v, p);
    let state, sends =
      c.protocol.SP.on_pulse c.g ~me:v ~pulse:p ~inbox c.states.(v)
    in
    c.states.(v) <- state;
    c.executed.(v) <- p;
    (* Transmit, tracking outstanding acknowledgements. *)
    let levels_touched = ref [] in
    List.iter
      (fun (dst, payload) ->
        match G.edge_between c.g v dst with
        | None -> invalid_arg "Synchronizer: send to non-neighbour"
        | Some (w, _) ->
          if c.check_in_synch && p mod w <> 0 then
            invalid_arg "Synchronizer: protocol not in synch with network";
          c.proto_comm <- c.proto_comm + w;
          let level = level_of_weight w in
          ignore (tbl_add c.outstanding (v, p) 1);
          ignore (tbl_add c.outstanding_lvl (v, p, level) 1);
          if not (List.mem level !levels_touched) then
            levels_touched := level :: !levels_touched;
          c.net.Net.send ~src:v ~dst (Proto { sent_at = p; payload }))
      sends;
    ignore !levels_touched;
    c.on_executed v p;
    (* A pulse with no sends is immediately safe. *)
    if not (Hashtbl.mem c.outstanding (v, p)) then c.on_safe v p;
    core_try_execute c v
  end

let core_handle_proto c ~me ~src ~sent_at payload =
  let w =
    match G.edge_between c.g me src with
    | Some (w, _) -> w
    | None -> assert false
  in
  let arrival = sent_at + w in
  c.deliveries <-
    { SP.pulse = arrival; src; dst = me; payload } :: c.deliveries;
  if arrival <= c.pulses then begin
    let old = try Hashtbl.find c.buffer (me, arrival) with Not_found -> [] in
    Hashtbl.replace c.buffer (me, arrival) ((src, payload) :: old)
  end;
  c.ack_comm <- c.ack_comm + w;
  c.net.Net.send ~src:me ~dst:src (Ack { sent_at })

let core_handle_ack c ~me ~src ~sent_at =
  let w =
    match G.edge_between c.g me src with
    | Some (w, _) -> w
    | None -> assert false
  in
  let level = level_of_weight w in
  let left = tbl_add c.outstanding (me, sent_at) (-1) in
  assert (left >= 0);
  let left_lvl = tbl_add c.outstanding_lvl (me, sent_at, level) (-1) in
  assert (left_lvl >= 0);
  if left = 0 then c.on_safe me sent_at;
  if left_lvl = 0 then c.on_safe_level me ~pulse:sent_at ~level

let finish ?comm_budget c start_all =
  c.net.Net.schedule ~delay:0.0 (fun () ->
      for v = 0 to G.n c.g - 1 do
        start_all v
      done);
  ignore (c.net.Net.run ?comm_budget ());
  let total = Measures.of_metrics (c.net.Net.metrics ()) in
  (* On a reliable transport, the shim's own traffic (transport-level
     acks and retransmissions) lands in [control_comm] alongside the
     synchronizer's control messages: it is overhead the protocol did
     not ask for. *)
  let control_comm = total.Measures.comm - c.proto_comm - c.ack_comm in
  {
    states = c.states;
    deliveries = List.rev c.deliveries;
    pulses = c.pulses;
    proto_comm = c.proto_comm;
    ack_comm = c.ack_comm;
    control_comm;
    total;
    amortized_comm =
      float_of_int (c.ack_comm + control_comm)
      /. float_of_int (max 1 c.pulses);
    amortized_time = total.Measures.time /. float_of_int (max 1 c.pulses);
    retransmissions = c.net.Net.retransmissions ();
  }

(* ------------------------------------------------------------------ *)
(* Synchronizer alpha_w: SAFE exchanged with every neighbour.          *)
(* ------------------------------------------------------------------ *)

(* Ctrl encoding for alpha/beta: the pulse number. *)

let run_alpha ?delay ?faults ?reliable g protocol ~pulses =
  let n = G.n g in
  let net = Net.make ?reliable ?delay ?faults g in
  (* heard.(v).(i): highest pulse for which neighbour i declared safe. *)
  let heard = Array.init n (fun v -> Array.make (G.degree g v) (-1)) in
  let neighbor_index = Array.init n (fun _ -> Hashtbl.create 4) in
  for v = 0 to n - 1 do
    let i = ref 0 in
    G.iter_neighbors g v (fun u _ _ ->
        Hashtbl.replace neighbor_index.(v) u !i;
        incr i)
  done;
  let cleared v p =
    p = 0 || Array.for_all (fun h -> h >= p - 1) heard.(v)
  in
  let core = make_core net g protocol ~pulses ~cleared in
  core.on_safe <-
    (fun v p ->
      G.iter_neighbors g v (fun u _ _ -> net.Net.send ~src:v ~dst:u (Ctrl p)));
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src msg ->
        match msg with
        | Proto { sent_at; payload } ->
          core_handle_proto core ~me:v ~src ~sent_at payload
        | Ack { sent_at } ->
          core_handle_ack core ~me:v ~src ~sent_at
        | Ctrl p ->
          let i = Hashtbl.find neighbor_index.(v) src in
          heard.(v).(i) <- max heard.(v).(i) p;
          core_try_execute core v)
  done;
  finish core (fun v -> core_try_execute core v)

(* ------------------------------------------------------------------ *)
(* Synchronizer beta_w: one global tree with a leader.                 *)
(* Ctrl encoding: 2p = Ready(p) upward, 2p+1 = Go(p) downward.         *)
(* ------------------------------------------------------------------ *)

let run_beta ?delay ?faults ?reliable ?tree g protocol ~pulses =
  let tree =
    match tree with
    | Some t -> t
    | None ->
      let _, center = Csap_graph.Paths.radius_and_center g in
      (Slt.build g ~root:center).Slt.tree
  in
  let n = G.n g in
  let root = Csap_graph.Tree.root tree in
  let net = Net.make ?reliable ?delay ?faults g in
  let n_children =
    Array.init n (fun v -> List.length (Csap_graph.Tree.children tree v))
  in
  (* ready.(v): count of children subtree-safe reports for current pulse;
     self_safe.(v): highest pulse v itself is safe for; released: highest
     pulse the root has released. *)
  let ready = Array.make n 0 in
  let self_safe = Array.make n (-1) in
  let go = Array.make n 0 in
  let cleared v p = p <= go.(v) in
  let core = make_core net g protocol ~pulses ~cleared in
  let subtree_check v p =
    if self_safe.(v) >= p && ready.(v) = n_children.(v) then begin
      ready.(v) <- 0;
      if v = root then begin
        if p < pulses then begin
          List.iter
            (fun c -> net.Net.send ~src:root ~dst:c (Ctrl ((2 * (p + 1)) + 1)))
            (Csap_graph.Tree.children tree root);
          go.(root) <- p + 1;
          core_try_execute core root
        end
      end
      else
        match Csap_graph.Tree.parent tree v with
        | Some (parent, _) -> net.Net.send ~src:v ~dst:parent (Ctrl (2 * p))
        | None -> assert false
    end
  in
  core.on_safe <-
    (fun v p ->
      self_safe.(v) <- max self_safe.(v) p;
      subtree_check v p);
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src msg ->
        match msg with
        | Proto { sent_at; payload } ->
          core_handle_proto core ~me:v ~src ~sent_at payload
        | Ack { sent_at } -> core_handle_ack core ~me:v ~src ~sent_at
        | Ctrl enc ->
          if enc mod 2 = 0 then begin
            (* Ready(p) from a child. *)
            let p = enc / 2 in
            ready.(v) <- ready.(v) + 1;
            subtree_check v p
          end
          else begin
            (* Go(p) from the parent. *)
            let p = enc / 2 in
            go.(v) <- max go.(v) p;
            List.iter
              (fun c -> net.Net.send ~src:v ~dst:c (Ctrl ((2 * p) + 1)))
              (Csap_graph.Tree.children tree v);
            core_try_execute core v
          end)
  done;
  finish core (fun v -> core_try_execute core v)

(* ------------------------------------------------------------------ *)
(* Synchronizer gamma_w: per-weight-class cluster partitions.          *)
(* ------------------------------------------------------------------ *)

(* Ctrl encoding for gamma_w: kind + level + round packed as
   ((round * 64 + level) * 8 + kind), kinds 0..4. *)

type gamma_kind =
  | KSafe
  | KCsafe
  | KPsafe
  | KReady
  | KGo

let encode_gamma kind ~level ~round =
  let k =
    match kind with
    | KSafe -> 0
    | KCsafe -> 1
    | KPsafe -> 2
    | KReady -> 3
    | KGo -> 4
  in
  (((round * 64) + level) * 8) + k

let decode_gamma enc =
  let k = enc mod 8 in
  let rest = enc / 8 in
  let level = rest mod 64 in
  let round = rest / 64 in
  let kind =
    match k with
    | 0 -> KSafe
    | 1 -> KCsafe
    | 2 -> KPsafe
    | 3 -> KReady
    | 4 -> KGo
    | _ -> assert false
  in
  (kind, level, round)

let run_gamma_w ?delay ?faults ?reliable ?comm_budget ?(k = 2)
    ?(levels = `Partition) g protocol ~pulses =
  if not (Normalize.is_normalized g) then
    invalid_arg "Synchronizer.run_gamma_w: network not normalized";
  let n = G.n g in
  let w_max = G.max_weight g in
  let max_level = level_of_weight w_max in
  (* Level structures. [`Partition]: E_l = edges of weight exactly 2^l
     (each edge cleaned at its own class). [`Divisible]: the paper's
     literal E_l = edges of weight divisible by 2^l - heavier edges are
     redundantly cleaned at every lower level too (the ablation bench SY
     measures the difference). *)
  let level_edges =
    Array.init (max_level + 1) (fun l ->
        Array.to_list (Array.mapi (fun id (e : G.edge) -> (id, e)) (G.edges g))
        |> List.filter_map (fun (id, (e : G.edge)) ->
               let le = level_of_weight e.w in
               let keep =
                 match levels with
                 | `Partition -> le = l
                 | `Divisible -> le >= l
               in
               if keep then Some id else None))
  in
  let parts =
    Array.map (fun edges -> Partition.build g ~edges ~k) level_edges
  in
  (* Preferred-edge incidences per level and vertex. *)
  let pref_nbrs = Array.init (max_level + 1) (fun _ -> Array.make n []) in
  Array.iteri
    (fun l (part : Partition.t) ->
      List.iter
        (fun (a, b) ->
          pref_nbrs.(l).(a) <- b :: pref_nbrs.(l).(a);
          pref_nbrs.(l).(b) <- a :: pref_nbrs.(l).(b))
        part.Partition.preferred)
    parts;
  (* A vertex participates in level l only if its cluster has edges or
     preferred neighbours; otherwise clearance is trivial. *)
  let trivial = Array.make_matrix (max_level + 1) n true in
  Array.iteri
    (fun l part ->
      List.iter
        (fun id ->
          let e = G.edge g id in
          trivial.(l).(e.G.u) <- false;
          trivial.(l).(e.G.v) <- false)
        level_edges.(l);
      (* Members of non-singleton clusters participate too. *)
      Array.iteri
        (fun v p -> if p >= 0 then trivial.(l).(v) <- false)
        part.Partition.parent)
    parts;
  let net = Net.make ?reliable ?delay ?faults g in
  (* go.(v).(l): latest round of level l released at v. *)
  let go = Array.init n (fun _ -> Array.make (max_level + 1) 0) in
  let cleared v p =
    let ok = ref true in
    for l = 0 to max_level do
      if p mod (1 lsl l) = 0 then begin
        let round = p / (1 lsl l) in
        if (not trivial.(l).(v)) && go.(v).(l) < round then ok := false
      end
    done;
    !ok
  in
  let core =
    make_core ~check_in_synch:true net g protocol ~pulses ~cleared
  in
  (* Round bookkeeping, keyed by (level, round, vertex). *)
  let safe_got = Hashtbl.create 64 in
  let ready_got = Hashtbl.create 64 in
  let csafe_got = Hashtbl.create 64 in
  let psafe_got = Hashtbl.create 64 in
  let released = Array.init (max_level + 1) (fun l ->
      Array.make (Array.length parts.(l).Partition.root_of) 0)
  in
  let max_round l = (pulses / (1 lsl l)) + 1 in
  let send_ctrl v dst kind ~level ~round =
    net.Net.send ~src:v ~dst (Ctrl (encode_gamma kind ~level ~round))
  in
  (* Forward declarations via references to break the mutual recursion
     between the safety cascade and the release cascade. *)
  let rec safe_contribution l r v =
    (* v (or a child subtree) contributes to round-r safety in its
       cluster. Count: children + 1 for v's own safety. *)
    let part = parts.(l) in
    let needed = List.length part.Partition.children.(v) + 1 in
    let have = tbl_add safe_got (l, r, v) 1 in
    assert (have <= needed);
    if have = needed then begin
      if part.Partition.parent.(v) < 0 then cluster_safe l r v
      else send_ctrl v part.Partition.parent.(v) KSafe ~level:l ~round:r
    end

  and cluster_safe l r leader_v =
    (* The whole cluster is safe: broadcast Csafe down the cluster tree. *)
    csafe_cascade l r leader_v

  and csafe_cascade l r v =
    Hashtbl.replace csafe_got (l, r, v) ();
    List.iter
      (fun c -> send_ctrl v c KCsafe ~level:l ~round:r)
      parts.(l).Partition.children.(v);
    (* Notify neighbouring clusters over incident preferred edges. *)
    List.iter
      (fun u -> send_ctrl v u KPsafe ~level:l ~round:r)
      pref_nbrs.(l).(v);
    ready_check l r v

  and ready_check l r v =
    (* v is self-ready when its cluster is safe and every incident
       preferred edge has delivered the neighbour cluster's safety. *)
    let self_ready =
      Hashtbl.mem csafe_got (l, r, v)
      && (try Hashtbl.find psafe_got (l, r, v) with Not_found -> 0)
         = List.length pref_nbrs.(l).(v)
      && not (Hashtbl.mem ready_got (l, r, -1 - v))
      (* sentinel: self-contribution already counted *)
    in
    if self_ready then begin
      Hashtbl.replace ready_got (l, r, -1 - v) 0;
      ready_contribution l r v
    end

  and ready_contribution l r v =
    let part = parts.(l) in
    let needed = List.length part.Partition.children.(v) + 1 in
    let have = tbl_add ready_got (l, r, v) 1 in
    assert (have <= needed);
    if have = needed then begin
      if part.Partition.parent.(v) < 0 then begin
        (* Leader: release round r of level l. *)
        let cid = part.Partition.cluster_of.(v) in
        assert (released.(l).(cid) = r - 1 || released.(l).(cid) >= r);
        if released.(l).(cid) < r then begin
          released.(l).(cid) <- r;
          go_cascade l r v
        end
      end
      else send_ctrl v part.Partition.parent.(v) KReady ~level:l ~round:r
    end

  and go_cascade l r v =
    go.(v).(l) <- max go.(v).(l) r;
    List.iter
      (fun c -> send_ctrl v c KGo ~level:l ~round:r)
      parts.(l).Partition.children.(v);
    core_try_execute core v
  in
  (* Hook the core: when a vertex's level-l sends of pulse p are acked (or
     there were none), it contributes to the safety of round p/2^l + 1.
     In [`Divisible] mode, level-l safety additionally needs every heavier
     batch of the same pulse acked, and a cleared heavy batch can unlock
     several lower levels at once. *)
  let contributed = Hashtbl.create 64 in
  let heavier_clear v p l =
    match levels with
    | `Partition -> true
    | `Divisible ->
      let ok = ref true in
      for j = l to max_level do
        if Hashtbl.mem core.outstanding_lvl (v, p, j) then ok := false
      done;
      !ok
  in
  let try_contribute v p l =
    if
      l <= max_level
      && (not trivial.(l).(v))
      && p mod (1 lsl l) = 0
      && (not (Hashtbl.mem core.outstanding_lvl (v, p, l)))
      && heavier_clear v p l
      && not (Hashtbl.mem contributed (v, p, l))
    then begin
      let r = (p / (1 lsl l)) + 1 in
      if r <= max_round l then begin
        Hashtbl.replace contributed (v, p, l) ();
        safe_contribution l r v
      end
    end
  in
  core.on_safe_level <-
    (fun v ~pulse ~level ->
      match levels with
      | `Partition -> try_contribute v pulse level
      | `Divisible ->
        (* A cleared batch may complete the safety of every level below. *)
        for l = 0 to min level max_level do
          try_contribute v pulse l
        done);
  core.on_executed <-
    (fun v p ->
      (* Trivial levels need no safety protocol; non-trivial levels with no
         outstanding sends at this pulse become safe instantly. *)
      for l = 0 to max_level do
        try_contribute v p l
      done);
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src msg ->
        match msg with
        | Proto { sent_at; payload } ->
          core_handle_proto core ~me:v ~src ~sent_at payload
        | Ack { sent_at } -> core_handle_ack core ~me:v ~src ~sent_at
        | Ctrl enc ->
          let kind, level, round = decode_gamma enc in
          (match kind with
          | KSafe -> safe_contribution level round v
          | KCsafe -> csafe_cascade level round v
          | KPsafe ->
            ignore (tbl_add psafe_got (level, round, v) 1);
            ready_check level round v
          | KReady -> ready_contribution level round v
          | KGo -> go_cascade level round v))
  done;
  finish ?comm_budget core (fun v -> core_try_execute core v)

let run_transformed ?delay ?faults ?reliable ?comm_budget ?k g protocol
    ~pulses =
  let g' = Normalize.graph g in
  let p' = Normalize.protocol ~original:g protocol in
  let total_pulses =
    Normalize.pulses_needed ~original_pulses:pulses ~w_max:(G.max_weight g)
  in
  let outcome =
    run_gamma_w ?delay ?faults ?reliable ?comm_budget ?k g' p'
      ~pulses:total_pulses
  in
  let inner = Array.map Normalize.inner_state outcome.states in
  (inner, outcome)
