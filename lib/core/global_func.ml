module Net = Csap_dsim.Net
module Tree = Csap_graph.Tree

type 'a spec = {
  name : string;
  combine : 'a -> 'a -> 'a;
}

let sum = { name = "sum"; combine = ( + ) }
let max_value = { name = "max"; combine = max }
let min_value = { name = "min"; combine = min }
let xor = { name = "xor"; combine = ( lxor ) }
let logical_and = { name = "and"; combine = ( && ) }
let logical_or = { name = "or"; combine = ( || ) }

type 'a result = {
  outputs : 'a array;
  measures : Measures.t;
  transport : Net.stats;
}

type 'a msg =
  | Up of 'a
  | Down of 'a

let run ?delay ?faults ?reliable g ~tree ~values spec =
  let n = Csap_graph.Graph.n g in
  if Array.length values <> n then
    invalid_arg "Global_func.run: one value per vertex required";
  if not (Tree.is_spanning_tree_of g tree) then
    invalid_arg "Global_func.run: not a spanning tree of the graph";
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let outputs = Array.map (fun v -> v) values in
  let produced = Array.make n false in
  let acc = Array.copy values in
  let pending = Array.init n (fun v -> List.length (Tree.children tree v)) in
  let send_up v =
    match Tree.parent tree v with
    | Some (p, _) -> net.Net.send ~src:v ~dst:p (Up acc.(v))
    | None ->
      (* Root: the global value is ready; start the broadcast. *)
      outputs.(v) <- acc.(v);
      produced.(v) <- true;
      List.iter
        (fun c -> net.Net.send ~src:v ~dst:c (Down acc.(v)))
        (Tree.children tree v)
  in
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src msg ->
        match msg with
        | Up x ->
          acc.(v) <- spec.combine acc.(v) x;
          pending.(v) <- pending.(v) - 1;
          assert (pending.(v) >= 0);
          if pending.(v) = 0 then send_up v
        | Down x ->
          ignore src;
          outputs.(v) <- x;
          produced.(v) <- true;
          List.iter
            (fun c -> net.Net.send ~src:v ~dst:c (Down x))
            (Tree.children tree v))
  done;
  net.Net.schedule ~delay:0.0 (fun () ->
      for v = 0 to n - 1 do
        if pending.(v) = 0 then send_up v
      done);
  ignore (net.Net.run ());
  assert (Array.for_all Fun.id produced);
  {
    outputs;
    measures = Measures.of_metrics (net.Net.metrics ());
    transport = stats ();
  }

let run_optimal ?delay ?faults ?reliable ?q g ~root ~values spec =
  let slt = Slt.build ?q g ~root in
  run ?delay ?faults ?reliable g ~tree:slt.Slt.tree ~values spec

let broadcast ?delay ?q g ~source ~payload =
  let values =
    Array.init (Csap_graph.Graph.n g) (fun v ->
        if v = source then payload else min_int)
  in
  run_optimal ?delay ?q g ~root:source ~values max_value
