(** Algorithm SPT_synch (Section 9.1).

    The synchronous weighted SPT protocol is a distance wave: the source
    announces 0 at pulse 0; a vertex that improves its distance estimate
    announces the new value to all neighbours. On the weighted synchronous
    network a value sent at pulse [p] over [e] arrives at pulse [p + w(e)]
    carrying exactly the distance of the arrival pulse, so every vertex
    learns its true distance at pulse [dist(s, v)], sends once, and the
    protocol finishes in [script-D] pulses with [O(script-E)]
    communication.

    Combining it with synchronizer gamma_w through the Lemma 4.5
    transformation gives the asynchronous algorithm of Corollary 9.1:
    [O(script-E + script-D k n log n)] communication and
    [O(script-D log_k n log n)] time. *)

type state = {
  dist : int;  (** [max_int] until reached *)
  parent : int;  (** [-1] at the source / until reached *)
}

(** The synchronous protocol (runnable under {!Csap_dsim.Sync_runner} or
    any synchronizer). Messages carry the sender's distance. *)
val protocol : source:int -> (state, int) Csap_dsim.Sync_protocol.t

(** Run on the weighted synchronous network (the reference). *)
val run_synchronous :
  Csap_graph.Graph.t -> source:int -> state array * int
(** returns final states and the weighted communication *)

type result = {
  tree : Csap_graph.Tree.t;
  measures : Measures.t;  (** whole execution, synchronizer included *)
  proto_comm : int;  (** the protocol's own share, [O(script-E)] *)
  overhead_comm : int;  (** acks + synchronizer control *)
  transformed_pulses : int;
  transport : Csap_dsim.Net.stats;
      (** shim retransmissions; restarts are not surfaced by the
          synchronizer pipeline (always [0]) *)
}

(** [run ?delay ?faults ?reliable ?k g ~source] — the full asynchronous
    pipeline: normalize, wrap with gamma_w, run, extract the SPT. The
    number of synchronous pulses simulated is [script-D + 1] (the wave is
    complete by then). [faults] injects a fault plan into the underlying
    engine (the normalized graph keeps [g]'s topology and edge ids, so a
    plan built for [g] applies unchanged); correctness under loss
    requires [~reliable:true], which routes everything through the
    {!Csap_dsim.Reliable} shim. *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?k:int ->
  Csap_graph.Graph.t ->
  source:int ->
  result

(** Budgeted variant for the hybrid: [None] when the communication budget
    ran out before every vertex was reached. *)
val try_run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?comm_budget:int ->
  ?k:int ->
  Csap_graph.Graph.t ->
  source:int ->
  result option
