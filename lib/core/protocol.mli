(** The unified protocol registry.

    Every message-passing protocol in the library is wrapped as a
    first-class module implementing {!S}: one {!Run.cfg} describes a run
    (graph, root, delay model, fault plan, reliable shim, knobs), one
    {!Outcome.t} describes its result (paper measures, transport
    bookkeeping, a protocol-specific payload), and one [invariant]
    checks the outcome against the sequential oracles (Dijkstra,
    Kruskal, the synchronous reference execution, causality).

    The registry is the single wiring point for the benchmark harness,
    the schedule/fault sweeps ({!Csap_sched.Sched_explore}) and the CLI:
    adding a protocol here makes it runnable, sweepable and checkable
    everywhere at once. *)

(** Run configuration shared by every protocol. *)
module Run : sig
  (** Extensible reusable-engine handle; protocols with per-graph
      reusable state (currently only [flood]) add a constructor. *)
  type handle = ..

  type cfg = {
    graph : Csap_graph.Graph.t;
    root : int;  (** source / root vertex; ignored when not needed *)
    delay : Csap_dsim.Delay.t option;  (** [None] = {!Csap_dsim.Delay.Exact} *)
    adversary : Csap_dsim.Adversary.t option;
        (** schedule adversary; an oblivious one replaces [delay] (the
            two knobs conflict), an adaptive one is installed ambiently
            around the run (requires {!caps.supports_adaptive}) *)
    faults : Csap_dsim.Fault.plan option;
    reliable : bool;  (** route through the {!Csap_dsim.Reliable} shim *)
    trace : string option;
        (** dump engine traces as [<prefix>--<name>--<i>.jsonl] *)
    engine : handle option;  (** reusable engine from [make_engine] *)
    pulses : int option;  (** clock / synchronizer protocols *)
    strip : int option;  (** SPT_recur strip depth *)
    k : int option;  (** gamma_w cluster parameter *)
    q : float option;  (** SLT balance parameter *)
    domains : int option;
        (** [> 1]: run on the partitioned engine ({!Csap_dsim.Pengine})
            across that many OCaml domains; requires
            {!caps.supports_domains} *)
  }

  (** Smart constructor; [root] defaults to [0], [reliable] to [false],
      every knob to the protocol's own default. *)
  val make :
    ?root:int ->
    ?delay:Csap_dsim.Delay.t ->
    ?adversary:Csap_dsim.Adversary.t ->
    ?faults:Csap_dsim.Fault.plan ->
    ?reliable:bool ->
    ?trace:string ->
    ?engine:handle ->
    ?pulses:int ->
    ?strip:int ->
    ?k:int ->
    ?q:float ->
    ?domains:int ->
    Csap_graph.Graph.t ->
    cfg

  (** The effective delay oracle: the uniform deterministic default
      ({!Csap_dsim.Delay.Exact}) when none was given. *)
  val delay : cfg -> Csap_dsim.Delay.t
end

(** Uniform run outcome. *)
module Outcome : sig
  (** Protocol-specific payload, extensible for out-of-tree protocols. *)
  type payload = ..

  type payload +=
    | No_payload
    | Spanning_tree of Csap_graph.Tree.t
    | Flood_wave of { tree : Csap_graph.Tree.t; arrival : float array }
    | Dfs_walk of { tree : Csap_graph.Tree.t; est_c : int; est_r : int }
    | Clock_pulses of Clock_sync.result
    | Sync_states of {
        source : int;
        states : Spt_synch.state array;
        pulses : int;
        proto_comm : int;
      }
    | Outputs of int array
    | Gn_bounds of Lower_bound.gn_run

  type t = {
    protocol : string;
    measures : Measures.t;  (** the paper's (comm, time, messages) *)
    retransmissions : int;  (** reliable-shim retransmissions *)
    restarts : int;  (** crash-restart events observed *)
    payload : payload;
    info : (string * string) list;  (** protocol-specific scalars *)
  }

  (** The constructed tree, when the payload carries one. *)
  val tree : t -> Csap_graph.Tree.t option
end

type category =
  | Connectivity
  | Mst
  | Spt
  | Slt
  | Global
  | Clock
  | Synchronizer
  | Bound

val category_name : category -> string

(** Capability flags consulted by {!execute} and the sweep builders. *)
type caps = {
  needs_root : bool;  (** validates [cfg.root] against [0, n) *)
  supports_faults : bool;  (** accepts a raw {!Csap_dsim.Fault.plan} *)
  supports_reliable : bool;  (** accepts [reliable = true] *)
  synchronous_only : bool;
      (** a synchronizer driving a synchronous protocol *)
  reuses_engine : bool;  (** [make_engine] returns a handle *)
  fixed_family : bool;  (** builds its own graph from size parameters *)
  supports_domains : bool;
      (** runs on the partitioned engine when [cfg.domains > 1] *)
  supports_adaptive : bool;
      (** accepts an adaptive {!Csap_dsim.Adversary.t} (true for every
          protocol that actually consults its delay model; the
          lower-bound family ignores schedules and rejects it) *)
}

val default_caps : caps
(** root required; faults, reliable and adaptive adversaries supported;
    nothing else set *)

val allowed_vars : category -> Bound.var list
(** The parameters a claim in this category may mention: the global
    graph parameters for Connectivity–Global, additionally the
    neighbour distance [d] for Clock/Synchronizer, and only
    [n], [E], [V] for the lower-bound family. *)

(** A machine-checked cost claim: the paper's bound for one metric as
    a symbolic {!Bound.expr}, checked against measured sweeps by the
    BD bench figure and [csap_cli bounds --check]. *)
module Claim : sig
  type metric = Comm | Time

  val metric_name : metric -> string

  type t = {
    metric : metric;
    bound : Bound.expr;  (** canonical *)
    regime : string option;
        (** the capability regime the claim holds in, when narrower
            than "any clean run" *)
  }

  (** Parse the bound from {!Bound.of_string} syntax; raises
      [Invalid_argument] on a malformed expression. *)
  val comm : ?regime:string -> string -> t

  val time : ?regime:string -> string -> t
  val to_string : t -> string
end

(** One registered protocol. *)
module type S = sig
  val name : string
  val summary : string
  val category : category
  val caps : caps

  (** The paper's claimed cost bounds, as symbolic expressions over the
      measured parameters. Never empty: at least a communication claim;
      a time claim unless the protocol reports no meaningful time. *)
  val claimed : Claim.t list

  (** Build a reusable engine handle for multi-trial loops on the same
      graph; [None] when the protocol has no reusable state. *)
  val make_engine : ?delay:Csap_dsim.Delay.t -> Csap_graph.Graph.t
    -> Run.handle option

  (** Raw runner; called by {!execute} after uniform validation. *)
  val run : Run.cfg -> Outcome.t

  (** Check the outcome against the sequential oracles. *)
  val invariant : Run.cfg -> Outcome.t -> (unit, string) result
end

type entry = (module S)

(** The reusable-engine handle of the [flood] entry. *)
type Run.handle += Flood_engine of Flood.engine

(** Every protocol in the library, in paper order. *)
val registry : entry list

val names : unit -> string list
val find : string -> entry option

(** Raises [Invalid_argument] on an unknown name. *)
val find_exn : string -> entry

(** Uniform validation: root range ([Invalid_argument] with
    ["<name>: root <r> out of range [0, <n>)"]), fault/reliable/domains/
    adversary support against {!caps}. Capability rejections involving a
    knob name it uniformly — ["<name>: <knob>: <reason>"] for the
    [domains] and [adversary] knobs. [domains > 1] additionally excludes
    faults, the reliable shim, traces, order-dependent delay models and
    adaptive adversaries (order-dependent by construction); [adversary]
    conflicts with an explicit [delay]. *)
val validate : entry -> Run.cfg -> unit

(** [execute entry cfg] validates, runs, and (when [cfg.trace] is set)
    collects and dumps engine traces. An oblivious [cfg.adversary] is
    folded into the delay model; an adaptive one is installed via
    {!Csap_dsim.Adversary.with_ambient} for the scope of the run, so the
    protocol's internally built engines consult it — and, with
    [cfg.trace] set, the dumped traces carry its replayable
    {!Csap_dsim.Trace.Decision} records. *)
val execute : entry -> Run.cfg -> Outcome.t

(** [run entry graph] — {!execute} with an inline {!Run.make}. *)
val run :
  ?root:int ->
  ?delay:Csap_dsim.Delay.t ->
  ?adversary:Csap_dsim.Adversary.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?trace:string ->
  ?engine:Run.handle ->
  ?pulses:int ->
  ?strip:int ->
  ?k:int ->
  ?q:float ->
  ?domains:int ->
  entry ->
  Csap_graph.Graph.t ->
  Outcome.t
