type t = {
  comm : int;
  time : float;
  messages : int;
}

let zero = { comm = 0; time = 0.0; messages = 0 }

let of_metrics (m : Csap_dsim.Metrics.t) =
  {
    comm = m.Csap_dsim.Metrics.weighted_comm;
    (* Last *delivery*, not last event: a straggler local timer scheduled
       past the final delivery is free in the paper's time measure. *)
    time = m.Csap_dsim.Metrics.last_delivery_time;
    messages = m.Csap_dsim.Metrics.messages;
  }

let add a b =
  {
    comm = a.comm + b.comm;
    time = a.time +. b.time;
    messages = a.messages + b.messages;
  }

(* A quotient against a degenerate bound (zero, negative, NaN) carries
   no information; report NaN rather than a signed infinity the table
   aggregators would propagate. *)
let ratio ~measured ~bound =
  if not (bound > 0.0) then nan else measured /. bound

let pp ppf t =
  Format.fprintf ppf "comm=%d time=%.1f msgs=%d" t.comm t.time t.messages
