(** Network synchronizers for the weighted case (Section 4).

    A synchronizer lets a weighted {e synchronous} protocol (delay on [e]
    exactly [w(e)]) run on a weighted {e asynchronous} network (delay on [e]
    anywhere in [(0, w(e)]]). Safety is detected with acknowledgements
    (Definition 4.1); the synchronizers differ in how the "all neighbours
    safe" information is disseminated, trading communication against time
    per pulse:

    - {b alpha_w}: exchange SAFE with every neighbour each pulse.
      [C_p = O(script-E)], [T_p = O(W)].
    - {b beta_w}: convergecast/broadcast on one global tree.
      [C_p = O(n)] tree messages ([O(w(T))] weighted), [T_p = O(script-D)].
    - {b gamma_w}: the paper's construction. The network must be normalized
      and the protocol in synch with it (use {!Normalize}). Edges are
      partitioned into weight classes [E_i = {e : w(e) = 2^i}]; an
      [Awe85a]-style cluster partition with parameter [k] is built per
      level, and a level-[i] round (synchronizer gamma on [G_i]) clears the
      messages of super-pulse [p/2^i] once per [2^i] pulses — heavy edges
      are cleaned exponentially less often, which is what beats the naive
      [O(W)] overhead. Amortized overheads (Lemma 4.8):
      [C_p = O(k n log W)], [T_p = O(log_k n log W)].

    The paper states [E_i] as "weights divisible by [2^i]"; with normalized
    weights and in-synch protocols, clearing each edge exactly at its own
    weight class gives the same guarantee (a weight-[2^j] edge's messages
    exist only at multiples of [2^j] and are cleared by level [j]) with
    strictly less control traffic, so this implementation uses the
    partition form. *)

(** Outcome of a synchronized execution, with the synchronizer's own
    traffic separated from the protocol's. *)
type ('s, 'm) outcome = {
  states : 's array;
  deliveries : 'm Csap_dsim.Sync_protocol.delivery list;
      (** protocol messages in consumption order, with arrival pulses —
          comparable to {!Csap_dsim.Sync_runner.run}'s log *)
  pulses : int;
  proto_comm : int;  (** weighted communication of protocol messages *)
  ack_comm : int;  (** weighted communication of acknowledgements *)
  control_comm : int;  (** weighted communication of synchronizer control *)
  total : Measures.t;
  amortized_comm : float;  (** (ack + control) / pulses — the paper's C_p *)
  amortized_time : float;  (** completion time / pulses — the paper's T_p *)
  retransmissions : int;
      (** transport-level retransmissions ([0] on a plain transport) *)
}

(** Every synchronizer below accepts [?faults] (a {!Csap_dsim.Fault.plan}
    injected into the engine) and [?reliable] (default [false]; route all
    traffic — protocol, acks and control alike — through the
    {!Csap_dsim.Reliable} shim). A synchronizer is correct under message
    loss only with [~reliable:true]: its safety detection assumes
    exactly-once links, which the shim restores at the cost of
    transport-level acks and retransmissions (reported in
    [control_comm] / [retransmissions]). *)

(** [run_alpha ?delay g p ~pulses] — synchronizer alpha_w. Works on any
    weighted network and synchronous protocol. *)
val run_alpha :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  ('s, 'm) Csap_dsim.Sync_protocol.t ->
  pulses:int ->
  ('s, 'm) outcome

(** [run_beta ?delay ?tree g p ~pulses] — synchronizer beta_w over [tree]
    (default: shallow-light tree from a centre). *)
val run_beta :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?tree:Csap_graph.Tree.t ->
  Csap_graph.Graph.t ->
  ('s, 'm) Csap_dsim.Sync_protocol.t ->
  pulses:int ->
  ('s, 'm) outcome

(** [run_gamma_w ?delay ?k g p ~pulses] — synchronizer gamma_w with cluster
    parameter [k >= 2] (default 2). Requires a normalized graph
    ([Invalid_argument] otherwise) and a protocol in synch with it (checked
    at run time on every send).

    [levels] selects the level-set construction: [`Partition] (default,
    each edge cleaned at its own weight class) or [`Divisible] (the
    paper's literal "weights divisible by 2^i" — heavier edges are
    redundantly cleaned at every lower level; same guarantee, strictly
    more control traffic; kept as a measurable ablation). *)
val run_gamma_w :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?comm_budget:int ->
  ?k:int ->
  ?levels:[ `Partition | `Divisible ] ->
  Csap_graph.Graph.t ->
  ('s, 'm) Csap_dsim.Sync_protocol.t ->
  pulses:int ->
  ('s, 'm) outcome

(** [run_transformed ?delay ?k g p ~pulses] — the full pipeline of Section
    4: normalize [g] and [p] (Lemma 4.5), then run gamma_w. [pulses] counts
    {e original} protocol pulses; returns the outcome over the transformed
    network together with the inner states extracted. *)
val run_transformed :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?comm_budget:int ->
  ?k:int ->
  Csap_graph.Graph.t ->
  ('s, 'm) Csap_dsim.Sync_protocol.t ->
  pulses:int ->
  's array * (('s, 'm) Normalize.state, 'm Normalize.envelope) outcome

(** {2 The per-level cluster partition (exposed for tests)} *)

module Partition : sig
  type t = {
    cluster_of : int array;  (** dense cluster ids *)
    parent : int array;  (** intracluster BFS tree; [-1] at cluster roots *)
    children : int list array;
    root_of : int array;  (** cluster id -> root vertex *)
    preferred : (int * int) list;
        (** one edge per adjacent cluster pair, as vertex pairs *)
    k : int;
    hop_radius : int;  (** max BFS depth over clusters *)
  }

  (** [build g ~edges ~k] partitions the subgraph [(V, edges)] (edge ids of
      [g]); vertices with no incident edge become singleton clusters.
      Growth rule per [Awe85a]: keep absorbing the next BFS layer while it
      multiplies the cluster size by [>= k], giving hop radius
      [<= log_k n] and at most [(k-1) n] intercluster edges charged per
      cluster. *)
  val build : Csap_graph.Graph.t -> edges:int list -> k:int -> t
end
