(** Distributed depth-first search with cost estimates (Section 6.2).

    A single token performs the DFS; every edge is traversed at most twice
    (visit + reject, or visit + retreat), giving [O(script-E)] communication
    and time. The algorithm maintains the paper's two estimates:

    - the {e center estimate} [EST_C], carried with the token: the exact
      total weight of edges traversed so far;
    - the {e root estimate} [EST_R], kept at the root and refreshed whenever
      the next traversal would double [EST_C] relative to it. Refreshing
      moves the centre of activity to the root and back, which at most
      doubles the communication (a geometric sum), and gives the root a
      2-approximate, monotone view of the spending — the handle used by the
      hybrid algorithms of Sections 7-8 to suspend the costlier branch.

    The module exposes a composable interface ([create]/[handle]/[start])
    so CON_hybrid can multiplex it with MST_centr on one engine, plus a
    standalone [run]. *)

type msg

(** Protocol state; ['m] is the transport's message type. *)
type 'm t

(** [create ~net ~inject ~root ...] allocates the protocol state over a
    {!Csap_dsim.Net} endpoint whose message type embeds [msg] via
    [inject].

    [may_proceed] is polled at the root each time the root estimate rises;
    returning [false] suspends the token at the root until {!resume}.
    [on_root_estimate] fires at the root on every estimate refresh. *)
val create :
  net:'m Csap_dsim.Net.t ->
  inject:(msg -> 'm) ->
  root:int ->
  ?may_proceed:(unit -> bool) ->
  ?on_root_estimate:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit ->
  'm t

(** Dispatch an embedded message to the protocol. *)
val handle : 'm t -> me:int -> src:int -> msg -> unit

(** Inject the token at the root (schedules a time-0 local event). *)
val start : 'm t -> unit

(** Release a token suspended by [may_proceed]; call when the engine's
    centre of activity is at the root. No-op when not suspended. *)
val resume : 'm t -> unit

val finished : 'm t -> bool

(** The DFS tree; only valid once [finished]. *)
val tree : 'm t -> Csap_graph.Tree.t

val root_estimate : 'm t -> int
val center_estimate : 'm t -> int

(** {2 Standalone} *)

type result = {
  dfs_tree : Csap_graph.Tree.t;
  measures : Measures.t;
  final_center_estimate : int;
  final_root_estimate : int;
  transport : Csap_dsim.Net.stats;
}

(** [run ?delay ?faults ?reliable g ~root] performs a complete DFS on its
    own transport. With [~reliable:true] all traffic runs through the
    {!Csap_dsim.Reliable} shim, making the walk correct under any
    survivable fault plan; with raw [faults] a dropped token deadlocks
    the run ([failwith] on non-termination). Raises [Invalid_argument]
    when [root] is outside [0, n). *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  root:int ->
  result
