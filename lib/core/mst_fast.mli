(** Algorithm MST_fast (Section 8.3).

    MST_ghs scans edges serially and in full weight, so a single heavy
    non-tree edge can cost [Theta(script-E)] time. MST_fast removes both
    bottlenecks with the paper's two ideas:

    + {b guess doubling}: each fragment root keeps a guess [g] (initially
      1) for the weight of its minimum outgoing edge; a search round only
      probes edges of weight [<= g], and if the search fails the root
      doubles [g] and repeats — heavy edges are simply never touched until
      the MST forces them;
    + {b parallel scanning}: within a round, a vertex probes all its
      eligible edges concurrently instead of serially.

    The fragment structure runs in globally synchronised Boruvka phases
    (the "simple algorithm" of Section 8.1): every phase, each fragment
    selects its minimum outgoing edge (with the doubling search), then all
    fragments merge along the selected edges; a global barrier over a
    shallow-light coordination tree separates the select and merge steps,
    implementing the synchronisation the paper says the phases require.
    There are [<= log2 n] phases and [O(log script-V)] doubling rounds per
    phase, giving the paper's
    [O(script-E log n log script-V)] communication and
    [O(Diam(MST) log script-V log n)]-shaped time. *)

type result = {
  mst : Csap_graph.Tree.t;
  measures : Measures.t;
  phases : int;  (** Boruvka phases executed, [<= log2 n] *)
  scan_rounds : int;  (** total doubling rounds across fragments *)
  transport : Csap_dsim.Net.stats;
}

(** [run ?delay ?faults ?reliable g] computes the MST; [~reliable:true]
    routes all traffic through the {!Csap_dsim.Reliable} shim. *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  result
