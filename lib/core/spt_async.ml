module Engine = Csap_dsim.Engine
module Pengine = Csap_dsim.Pengine
module G = Csap_graph.Graph

type result = {
  tree : Csap_graph.Tree.t;
  dist : int array;
  measures : Measures.t;
}

(* Messages carry the full candidate distance for the receiver (sender's
   distance plus the edge weight), so the handler needs no edge lookup to
   evaluate an improvement. *)

let finish ~source ~dist ~parent ~parent_w ~metrics ~completion =
  if Array.exists (fun d -> d = max_int) dist then
    invalid_arg "Spt_async: graph is disconnected";
  let tree =
    Csap_graph.Tree.of_parents ~root:source ~parents:parent ~weights:parent_w
  in
  let measures =
    { (Measures.of_metrics metrics) with Measures.time = completion }
  in
  { tree; dist; measures }

let run ?delay g ~source =
  let n = G.n g in
  if source < 0 || source >= n then
    invalid_arg "Spt_async.run: source out of range";
  let eng = Engine.create ?delay g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let parent_w = Array.make n 0 in
  let completion = ref 0.0 in
  let announce v ~except ~d =
    G.iter_neighbors g v (fun u w _ ->
        if u <> except then Engine.send eng ~src:v ~dst:u (d + w))
  in
  for v = 0 to n - 1 do
    Engine.set_handler eng v (fun ~src d ->
        if d < dist.(v) then begin
          dist.(v) <- d;
          parent.(v) <- src;
          (match G.edge_between g v src with
          | Some (w, _) -> parent_w.(v) <- w
          | None -> assert false);
          completion := Engine.now eng;
          announce v ~except:src ~d
        end)
  done;
  Engine.schedule eng ~delay:0.0 (fun () ->
      dist.(source) <- 0;
      announce source ~except:(-1) ~d:0);
  ignore (Engine.run eng);
  finish ~source ~dist ~parent ~parent_w ~metrics:(Engine.metrics eng)
    ~completion:!completion

(* Identical protocol logic on the partitioned engine; [completion] is
   the only cross-vertex aggregate, so it is tracked per partition and
   reduced with max after the join. *)
let run_partitioned ?delay ?partition ~domains g ~source =
  let n = G.n g in
  if source < 0 || source >= n then
    invalid_arg "Spt_async.run_partitioned: source out of range";
  let eng = Pengine.create ?delay ?partition ~domains g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let parent_w = Array.make n 0 in
  let completion = Array.make domains 0.0 in
  let announce ctx v ~except ~d =
    G.iter_neighbors g v (fun u w _ ->
        if u <> except then Pengine.send ctx ~src:v ~dst:u (d + w))
  in
  for v = 0 to n - 1 do
    Pengine.set_handler eng v (fun ctx ~src d ->
        if d < dist.(v) then begin
          dist.(v) <- d;
          parent.(v) <- src;
          (match G.edge_between g v src with
          | Some (w, _) -> parent_w.(v) <- w
          | None -> assert false);
          let p = Pengine.ctx_partition ctx in
          completion.(p) <- Float.max completion.(p) (Pengine.now ctx);
          announce ctx v ~except:src ~d
        end)
  done;
  Pengine.schedule eng ~vertex:source ~delay:0.0 (fun ctx ->
      dist.(source) <- 0;
      announce ctx source ~except:(-1) ~d:0);
  ignore (Pengine.run eng);
  finish ~source ~dist ~parent ~parent_w ~metrics:(Pengine.metrics eng)
    ~completion:(Array.fold_left Float.max 0.0 completion)
