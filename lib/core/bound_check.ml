module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Params = Csap_graph.Params

type sample = {
  label : string;
  params : Params.t;
  measures : Measures.t;
}

type claim_verdict = {
  claim : Protocol.Claim.t;
  verdict : Bound.verdict;
}

type report = {
  name : string;
  family : string;
  samples : sample list;
  claims : claim_verdict list;
}

(* ------------------------------------------------------------------ *)
(* Sweeps.                                                             *)
(* ------------------------------------------------------------------ *)

let grid_w = 3

let grids sizes =
  List.map
    (fun (r, c) ->
      (Printf.sprintf "grid %dx%d" r c, Gen.grid r c ~w:grid_w))
    sizes

(* Three cost tiers: quadratic-and-worse protocols sweep small grids,
   the near-linear ones go wider so the fit sees a decade of growth. *)
let small = [ (3, 4); (4, 4); (4, 5); (5, 5); (6, 6) ]
let mid = [ (4, 4); (5, 5); (6, 6); (7, 7); (8, 8) ]
let large = [ (4, 4); (5, 6); (7, 7); (8, 9); (10, 10); (11, 12) ]

(* The G_n sweep: the run rebuilds the family from the carrier graph's
   size parameters (n vertices, max weight x), so a weight-x path is
   the canonical carrier. *)
let gn_x = 4

let gn_carriers =
  List.map
    (fun n -> (Printf.sprintf "G_%d x=%d" n gn_x, Gen.path n ~w:gn_x))
    [ 8; 12; 16; 24; 32; 48; 64; 96; 128 ]

let sweep (module P : Protocol.S) =
  if P.caps.Protocol.fixed_family then ("lower-bound G_n", gn_carriers)
  else
    let tier =
      match P.name with
      | "flood" | "dfs-token" | "spt-async" | "global-sum" | "clock-alpha"
      | "clock-beta" | "clock-gamma" ->
        large
      | "mst-ghs" | "mst-fast" | "spt-synch" | "spt-recur" | "spt-hybrid" ->
        mid
      | _ -> small
    in
    ("grid", grids tier)

(* ------------------------------------------------------------------ *)
(* Measuring and fitting.                                              *)
(* ------------------------------------------------------------------ *)

(* The graph whose parameters the claims range over: normally the one
   we ran on, but a [fixed_family] entry rebuilt its own family from
   the carrier's size parameters — mirror that rebuild. *)
let measured_graph (module P : Protocol.S) g =
  if P.caps.Protocol.fixed_family then
    Gen.lower_bound_gn (max 4 (G.n g)) ~x:(max 2 (G.max_weight g))
  else g

let measure ((module P : Protocol.S) as entry) g =
  let cfg = Protocol.Run.make g in
  let o = Protocol.execute entry cfg in
  {
    label = "";
    params = Params.compute (measured_graph (module P) g);
    measures = o.Protocol.Outcome.measures;
  }

let metric_value (m : Measures.t) = function
  | Protocol.Claim.Comm -> float_of_int m.Measures.comm
  | Protocol.Claim.Time -> m.Measures.time

let check_entry ?slope_tol ((module P : Protocol.S) as entry) =
  let family, instances = sweep (module P) in
  let samples =
    List.map
      (fun (label, g) -> { (measure entry g) with label })
      instances
  in
  let claims =
    List.map
      (fun (claim : Protocol.Claim.t) ->
        let pts =
          List.map
            (fun s -> (s.params, metric_value s.measures claim.metric))
            samples
        in
        { claim; verdict = Bound.check ?slope_tol claim.bound pts })
      P.claimed
  in
  { name = P.name; family; samples; claims }

let check_all ?slope_tol () =
  List.map (check_entry ?slope_tol) Protocol.registry

let failures r =
  List.filter (fun cv -> not cv.verdict.Bound.within) r.claims

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s (%s, %d samples):" r.name r.family
    (List.length r.samples);
  List.iter
    (fun cv ->
      Format.fprintf ppf "@,  %-40s %a"
        (Protocol.Claim.to_string cv.claim)
        Bound.pp_verdict cv.verdict)
    r.claims;
  Format.fprintf ppf "@]"
