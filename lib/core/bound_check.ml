module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Params = Csap_graph.Params

type sample = {
  label : string;
  params : Params.t;
  measures : Measures.t;
}

type claim_verdict = {
  claim : Protocol.Claim.t;
  verdict : Bound.verdict;
}

(* Which adversary the measures were taken under: the claims are
   worst-case bounds, so fitting worst-case-over-a-battery measures
   against them is the sharper check — but the batteries are heuristic
   (they under-approximate the true sup), so only [Clean] fits gate. *)
type regime = Clean | Sched_worst | Adaptive_worst

let regime_name = function
  | Clean -> "clean"
  | Sched_worst -> "sched-worst"
  | Adaptive_worst -> "adaptive-worst"

type report = {
  name : string;
  family : string;
  regime : regime;
  samples : sample list;
  claims : claim_verdict list;
}

(* ------------------------------------------------------------------ *)
(* Sweeps.                                                             *)
(* ------------------------------------------------------------------ *)

let grid_w = 3

let grids sizes =
  List.map
    (fun (r, c) ->
      (Printf.sprintf "grid %dx%d" r c, Gen.grid r c ~w:grid_w))
    sizes

(* Three cost tiers: quadratic-and-worse protocols sweep small grids,
   the near-linear ones go wider so the fit sees a decade of growth. *)
let small = [ (3, 4); (4, 4); (4, 5); (5, 5); (6, 6) ]
let mid = [ (4, 4); (5, 5); (6, 6); (7, 7); (8, 8) ]
let large = [ (4, 4); (5, 6); (7, 7); (8, 9); (10, 10); (11, 12) ]

(* The G_n sweep: the run rebuilds the family from the carrier graph's
   size parameters (n vertices, max weight x), so a weight-x path is
   the canonical carrier. *)
let gn_x = 4

let gn_carriers =
  List.map
    (fun n -> (Printf.sprintf "G_%d x=%d" n gn_x, Gen.path n ~w:gn_x))
    [ 8; 12; 16; 24; 32; 48; 64; 96; 128 ]

let sweep (module P : Protocol.S) =
  if P.caps.Protocol.fixed_family then ("lower-bound G_n", gn_carriers)
  else
    let tier =
      match P.name with
      | "flood" | "dfs-token" | "spt-async" | "global-sum" | "clock-alpha"
      | "clock-beta" | "clock-gamma" ->
        large
      | "mst-ghs" | "mst-fast" | "spt-synch" | "spt-recur" | "spt-hybrid" ->
        mid
      | _ -> small
    in
    ("grid", grids tier)

(* ------------------------------------------------------------------ *)
(* Measuring and fitting.                                              *)
(* ------------------------------------------------------------------ *)

(* The graph whose parameters the claims range over: normally the one
   we ran on, but a [fixed_family] entry rebuilt its own family from
   the carrier's size parameters — mirror that rebuild. *)
let measured_graph (module P : Protocol.S) g =
  if P.caps.Protocol.fixed_family then
    Gen.lower_bound_gn (max 4 (G.n g)) ~x:(max 2 (G.max_weight g))
  else g

let measure ((module P : Protocol.S) as entry) g =
  let cfg = Protocol.Run.make g in
  let o = Protocol.execute entry cfg in
  {
    label = "";
    params = Params.compute (measured_graph (module P) g);
    measures = o.Protocol.Outcome.measures;
  }

(* Heaviest edge, lowest id on ties — the link the slow-edge schedule
   stalls (same pick as the explorer's adversarial battery). *)
let heaviest_edge g =
  let best = ref 0 and best_w = ref min_int in
  Array.iteri
    (fun id e ->
      if e.G.w > !best_w then begin
        best := id;
        best_w := e.G.w
      end)
    (G.edges g);
  !best

(* Worst-case batteries built from the dsim primitives directly (this
   module sits below the explorer, which owns the full rosters). *)
let regime_battery regime g =
  let module A = Csap_dsim.Adversary in
  let module D = Csap_dsim.Delay in
  match regime with
  | Clean -> [ A.Oblivious D.Exact ]
  | Sched_worst ->
    List.map
      (fun d -> A.Oblivious d)
      ([ D.Exact; D.Near_zero; D.race_crossing; D.slow_edge (heaviest_edge g) ]
      @ List.map (fun i -> D.seeded (0x5eed + (i * 0x10001))) [ 0; 1; 2; 3 ])
  | Adaptive_worst -> [ A.greedy_commax (); A.time_stretcher () ]

(* Per-metric maxima over the battery: a synthetic worst-case sample
   (its comm and time generally come from different runs, as the
   paper's per-measure worst cases do). *)
let measure_regime ((module P : Protocol.S) as entry) regime g =
  match regime with
  | Clean -> measure entry g
  | _ ->
    let worst =
      List.fold_left
        (fun (acc : Measures.t) adversary ->
          let cfg = Protocol.Run.make ~adversary g in
          let m = (Protocol.execute entry cfg).Protocol.Outcome.measures in
          {
            Measures.comm = max acc.Measures.comm m.Measures.comm;
            time = Float.max acc.Measures.time m.Measures.time;
            messages = max acc.Measures.messages m.Measures.messages;
          })
        Measures.zero (regime_battery regime g)
    in
    {
      label = "";
      params = Params.compute (measured_graph (module P) g);
      measures = worst;
    }

let metric_value (m : Measures.t) = function
  | Protocol.Claim.Comm -> float_of_int m.Measures.comm
  | Protocol.Claim.Time -> m.Measures.time

let check_entry_regime ?slope_tol ~regime ((module P : Protocol.S) as entry) =
  let family, instances = sweep (module P) in
  (* Worst-case regimes stay on the small tier: the battery multiplies
     the per-instance cost, and a worst-case fit needs fewer points. *)
  let instances =
    if regime = Clean then instances
    else if P.caps.Protocol.fixed_family then instances
    else grids small
  in
  let samples =
    List.map
      (fun (label, g) -> { (measure_regime entry regime g) with label })
      instances
  in
  let claims =
    List.map
      (fun (claim : Protocol.Claim.t) ->
        let pts =
          List.map
            (fun s -> (s.params, metric_value s.measures claim.metric))
            samples
        in
        { claim; verdict = Bound.check ?slope_tol claim.bound pts })
      P.claimed
  in
  { name = P.name; family; regime; samples; claims }

let check_entry ?slope_tol entry =
  check_entry_regime ?slope_tol ~regime:Clean entry

let check_all ?slope_tol () =
  List.map (check_entry ?slope_tol) Protocol.registry

(* The worst-case roster: one cheap target per trade-off family, the
   same spread the explorer sweeps (the rest of the registry would
   re-measure the same engines at battery-multiplied cost). *)
let regime_roster () =
  List.filter_map Protocol.find
    [ "flood"; "mst-ghs"; "spt-synch"; "spt-recur"; "sync-alpha" ]

let check_regimes ?slope_tol () =
  List.concat_map
    (fun entry ->
      List.map
        (fun regime -> check_entry_regime ?slope_tol ~regime entry)
        [ Sched_worst; Adaptive_worst ])
    (regime_roster ())

let failures r =
  List.filter (fun cv -> not cv.verdict.Bound.within) r.claims

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s (%s, %s, %d samples):" r.name r.family
    (regime_name r.regime)
    (List.length r.samples);
  List.iter
    (fun cv ->
      Format.fprintf ppf "@,  %-40s %a"
        (Protocol.Claim.to_string cv.claim)
        Bound.pp_verdict cv.verdict)
    r.claims;
  Format.fprintf ppf "@]"
