(** The hybrid connectivity / spanning-tree algorithm CON_hybrid
    (Section 7.2).

    Runs the token DFS (cost [Theta(script-E)]) and the full-information
    MST_centr (cost [Theta(n V)]) in parallel on the same network. The root
    keeps both algorithms' monotone spend estimates [W_a] (DFS) and [W_b]
    (MST_centr) and at any moment permits only the algorithm whose estimate
    is currently smaller, suspending the other at the root. Estimates are
    2-approximate and refresh on doubling, so the total cost exceeds the
    cheaper algorithm's by at most a constant factor:
    [O(min{script-E, n V})] communication — matching the paper's lower
    bound (Section 7.1). *)

type winner =
  | Dfs  (** the DFS token finished first *)
  | Mst_centr  (** the full-information MST finished first *)

type result = {
  spanning_tree : Csap_graph.Tree.t;  (** from the winning algorithm *)
  winner : winner;
  measures : Measures.t;
  dfs_estimate : int;  (** final W_a *)
  mst_estimate : int;  (** final W_b *)
  transport : Csap_dsim.Net.stats;
}

(** [run ?delay ?faults ?reliable g ~root] runs the hybrid to completion;
    [~reliable:true] routes both component algorithms through the
    {!Csap_dsim.Reliable} shim. Raises [Invalid_argument] when [root] is
    outside [0, n). *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  root:int ->
  result
